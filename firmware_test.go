package qei

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// arrayFW is a minimal custom firmware: a fixed-size array of
// [key (8 B) | value (8 B)] entries scanned linearly — the simplest
// possible CFA added through the public extension API.
type arrayFW struct{}

const arrayType uint8 = 50

func (arrayFW) TypeCode() uint8 { return arrayType }
func (arrayFW) Name() string    { return "array50" }
func (arrayFW) NumStates() int  { return 2 }

func (arrayFW) Step(q *FirmwareQuery, state FirmwareState) FirmwareRequest {
	const scan FirmwareState = 1
	switch state {
	case FirmwareStart:
		q.Pos = 0
		return FirmwareContinue(scan, true,
			FirmwareMemRead(uint64(q.KeyAddr), 8),
			FirmwareMemRead(uint64(q.Header.Root), 16))
	case scan:
		if uint64(q.Pos) >= q.Header.Size {
			return FirmwareFinish(false, 0)
		}
		ea := q.Header.Root + Addr(q.Pos*16)
		stored, err := q.AS.ReadU64(ea)
		if err != nil {
			return FirmwareFail(err)
		}
		want := binary.LittleEndian.Uint64(q.Key[:8])
		cmp := FirmwareCompare(uint64(ea), 8)
		if stored == want {
			v, err := q.AS.ReadU64(ea + 8)
			if err != nil {
				return FirmwareFail(err)
			}
			return FirmwareFinish(true, v, cmp)
		}
		q.Pos++
		return FirmwareContinue(scan, false, cmp, FirmwareMemRead(uint64(ea+16), 16))
	default:
		return FirmwareFail(fmt.Errorf("array50: bad state %d", state))
	}
}

func TestPublicFirmwareExtension(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	if err := sys.RegisterFirmware(arrayFW{}); err != nil {
		t.Fatal(err)
	}
	// Duplicate registration must be rejected.
	if err := sys.RegisterFirmware(arrayFW{}); err == nil {
		t.Fatal("duplicate firmware accepted")
	}

	// Lay out 32 entries by hand through the public Write API.
	n := 32
	body := make([]byte, n*16)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(body[i*16:], uint64(0xA000+i))
		binary.LittleEndian.PutUint64(body[i*16+8:], uint64(7000+i))
	}
	root := sys.Write(body)
	table, err := sys.WriteTableHeader("array50", arrayType, root, 8, uint64(n), 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		var key [8]byte
		binary.LittleEndian.PutUint64(key[:], uint64(0xA000+i))
		res, err := sys.Query(table, key[:])
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != uint64(7000+i) {
			t.Fatalf("entry %d: %+v", i, res)
		}
	}
	var miss [8]byte
	binary.LittleEndian.PutUint64(miss[:], 0xFFFF)
	res, err := sys.Query(table, miss[:])
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("absent key found")
	}
	// Later entries must cost more cycles (linear scan through the CFA).
	var k0, kLast [8]byte
	binary.LittleEndian.PutUint64(k0[:], 0xA000)
	binary.LittleEndian.PutUint64(kLast[:], uint64(0xA000+n-1))
	r0, _ := sys.Query(table, k0[:])
	rL, _ := sys.Query(table, kLast[:])
	if rL.Latency <= r0.Latency {
		t.Fatalf("last entry (%d cyc) should cost more than first (%d cyc)", rL.Latency, r0.Latency)
	}
}

func TestWriteTableHeaderValidation(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	if _, err := sys.WriteTableHeader("x", 0, 0x1000, 8, 1, 0, 0); err == nil {
		t.Fatal("reserved type code accepted")
	}
	if _, err := sys.WriteTableHeader("x", 60, 0x1000, 0, 1, 0, 0); err == nil {
		t.Fatal("zero key length accepted")
	}
}

func TestValidateFirmwarePublic(t *testing.T) {
	if err := ValidateFirmware(arrayFW{}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeThroughPublicAPI(t *testing.T) {
	// The built-in B+-tree via the full public path.
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(1000, 16, 50)
	tb, err := sys.BuildBTree(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		res, err := sys.Query(tb, keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("key %d: %+v", i, res)
		}
	}
}
