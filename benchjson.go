package qei

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"qei/internal/metrics"
	"qei/internal/runner"
	"qei/internal/scheme"
	"qei/internal/workload"
)

// BenchResult is one machine-readable benchmark record: a workload run
// under one integration scheme, its cycle counts, its speedup over the
// software baseline, and the key simulator counters for that run. It is
// the schema behind qeibench -json (BENCH_<exp>.json files).
type BenchResult struct {
	// Experiment is the registry name that produced the record ("bench").
	Experiment string `json:"experiment"`
	// Workload is the benchmark name (dpdk, rocksdb, ...).
	Workload string `json:"workload"`
	// Scheme is the integration scheme the accelerator ran under.
	Scheme string `json:"scheme"`
	// BaselineCycles is the software run's makespan on the same inputs.
	BaselineCycles uint64 `json:"baseline_cycles"`
	// Cycles is the accelerated run's makespan.
	Cycles uint64 `json:"cycles"`
	// Queries is the number of probes the run performed.
	Queries uint64 `json:"queries"`
	// CyclesPerQuery is Cycles/Queries for the accelerated run.
	CyclesPerQuery float64 `json:"cycles_per_query"`
	// Speedup is BaselineCycles/Cycles (whole-run, not ROI-scoped).
	Speedup float64 `json:"speedup"`
	// Counters holds the non-zero key metrics of the accelerated run
	// (see benchCounters for the selection).
	Counters map[string]uint64 `json:"counters"`
	// WallNanos and BaselineWallNanos record host wall-clock time for
	// the accelerated and baseline runs. Unlike every field above they
	// depend on the machine running the simulator, so they are excluded
	// from golden comparisons (see TestBenchGoldenCycles) and omitted
	// when zero to keep old files parseable.
	WallNanos         int64 `json:"wall_ns,omitempty"`
	BaselineWallNanos int64 `json:"baseline_wall_ns,omitempty"`
	// Allocs records host heap allocations during the accelerated run —
	// host-dependent like the wall-clock fields (batch records carry it).
	Allocs uint64 `json:"allocs,omitempty"`
}

// clearWallClock zeroes the host-dependent fields of r so the remaining
// simulated quantities can be compared byte-for-byte across machines.
func clearWallClock(r *BenchResult) {
	r.WallNanos = 0
	r.BaselineWallNanos = 0
	r.Allocs = 0
}

// benchCounters is the metric subset copied into each BenchResult: the
// accelerator's work profile plus the shared-resource pressure counters
// the paper's evaluation discusses.
var benchCounters = []string{
	"qei/queries",
	"qei/cee/transitions",
	"qei/mem/lines",
	"qei/cmp/local",
	"qei/cmp/remote",
	"qei/dpu/hash_ops",
	"qei/exceptions",
	"qei/translation_cycles",
	"qei/data_access_cycles",
	"noc/sends",
	"dram/accesses",
}

// RunBench executes the workload × scheme benchmark matrix with metrics
// attached and returns one record per cell, in workload-major order
// (deterministic at any worker count). When the options carry a
// MetricsCollector, each accelerated run's full snapshot is merged into
// it as well.
func RunBench(s Scale, opts ...ExpOption) ([]BenchResult, error) {
	return runBenchOn(benchesFor(s), opts)
}

// runBenchOn is RunBench over an explicit benchmark list (tests use a
// trimmed set to keep the suite fast).
func runBenchOn(benches []workload.Benchmark, opts []ExpOption) ([]BenchResult, error) {
	cfg := expConfigFor(opts)
	groups, err := runner.Map(cfg.ctx, cfg.par, benches,
		func(_ context.Context, _ int, b workload.Benchmark) ([]BenchResult, error) {
			swStart := time.Now()
			sw, err := workload.RunBaseline(b, workload.Full, workload.WithWarmup())
			if err != nil {
				return nil, err
			}
			swWall := time.Since(swStart)
			var out []BenchResult
			for _, k := range scheme.Kinds() {
				// Bench always measures counters, collector or not.
				reg := metrics.NewRegistry()
				hwStart := time.Now()
				hw, err := workload.RunQEI(b, k, workload.Full,
					workload.WithWarmup(), workload.WithMetrics(reg))
				if err != nil {
					return nil, err
				}
				hwWall := time.Since(hwStart)
				if hw.Mismatches != 0 {
					return nil, fmt.Errorf("qei: bench %s/%s produced %d wrong results", b.Name(), k, hw.Mismatches)
				}
				cfg.collect(hw)
				counters := make(map[string]uint64)
				for _, name := range benchCounters {
					if v := hw.Metrics.Value(name); v != 0 {
						counters[name] = v
					}
				}
				r := BenchResult{
					Experiment:     "bench",
					Workload:       b.Name(),
					Scheme:         k.String(),
					BaselineCycles: sw.Cycles,
					Cycles:         hw.Cycles,
					Queries:        uint64(hw.Queries),
					Speedup:        float64(sw.Cycles) / float64(hw.Cycles),
					Counters:       counters,

					WallNanos:         hwWall.Nanoseconds(),
					BaselineWallNanos: swWall.Nanoseconds(),
				}
				if hw.Queries > 0 {
					r.CyclesPerQuery = float64(hw.Cycles) / float64(hw.Queries)
				}
				out = append(out, r)
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	var results []BenchResult
	for _, g := range groups {
		results = append(results, g...)
	}
	return results, nil
}

// BenchMatrix renders RunBench as a TableData for the experiment
// registry ("bench"); qeibench -json emits the same runs as JSON.
func BenchMatrix(s Scale, opts ...ExpOption) (TableData, error) {
	rs, err := RunBench(s, opts...)
	t := TableData{
		Title: "Bench — per-scheme cycles, speedup, and key counters",
		Headers: []string{"workload", "scheme", "cycles", "cyc_per_query",
			"speedup_x", "cee_transitions", "remote_cmp", "dram"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Scheme, f("%d", r.Cycles), f("%.1f", r.CyclesPerQuery),
			f("%.2f", r.Speedup),
			f("%d", r.Counters["qei/cee/transitions"]),
			f("%d", r.Counters["qei/cmp/remote"]),
			f("%d", r.Counters["dram/accesses"]),
		})
	}
	return t, err
}

// WriteBenchJSON writes results as indented JSON to
// <dir>/BENCH_<name>.json and returns the file path.
func WriteBenchJSON(dir, name string, results []BenchResult) (string, error) {
	path := filepath.Join(dir, "BENCH_"+name+".json")
	return path, WriteBenchJSONFile(path, results)
}

// WriteBenchJSONFile writes bench records to an explicit file path
// (qeibench's -benchjson flag; WriteBenchJSON derives the name).
func WriteBenchJSONFile(path string, results []BenchResult) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
