package qei

// Tests for the level-wise batch engine: plan resolution, parity with
// the per-query path (clean, under chaos, and across mutations),
// determinism, the foreign-stall error contract of the windowed path,
// and batched admission in the serving frontend.

import (
	"errors"
	"math/rand"
	"testing"

	iqei "qei/internal/qei"
	"qei/internal/serve"
)

func TestPlanBatch(t *testing.T) {
	cases := []struct {
		kind     StructKind
		n        int
		mode     BatchMode
		grouping string
	}{
		{KindBTree, 64, BatchLevelWise, "levels"},
		{KindBST, 16, BatchLevelWise, "levels"},
		{KindSkipList, 4, BatchLevelWise, "levels"},
		{KindCuckoo, 64, BatchLevelWise, "bucket phases"},
		{KindHashTable, 8, BatchLevelWise, "bucket phases"},
		{KindLinkedList, 32, BatchLevelWise, "chunked scan"},
		{KindTrie, 64, BatchWindowed, "windowed"},
		// Tiny batches have nothing to amortize.
		{KindBTree, 3, BatchWindowed, "windowed"},
		{KindCuckoo, 1, BatchWindowed, "windowed"},
	}
	for _, c := range cases {
		p := PlanBatch(c.kind, c.n)
		if p.Mode != c.mode || p.Grouping != c.grouping {
			t.Errorf("PlanBatch(%s, %d) = %s/%q, want %s/%q",
				c.kind, c.n, p.Mode, p.Grouping, c.mode, c.grouping)
		}
		if p.Mode == BatchAuto {
			t.Errorf("PlanBatch(%s, %d) left mode unresolved", c.kind, c.n)
		}
	}
}

// batchTestProbes draws a shuffled probe set over keys with duplicates
// and absent keys mixed in.
func batchTestProbes(keys, absent [][]byte, n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	probes := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i > 0 && rng.Intn(6) == 0:
			probes = append(probes, probes[rng.Intn(len(probes))])
		case rng.Intn(6) == 0:
			probes = append(probes, absent[rng.Intn(len(absent))])
		default:
			probes = append(probes, keys[rng.Intn(len(keys))])
		}
	}
	return probes
}

// TestQueryBatchLevelWiseMatchesPerQuery pins the engine's core
// contract on a clean machine: for every built-in fixed-key kind, the
// level-wise batch returns exactly what sequential per-query lookups
// return, probe for probe, under shuffled order, duplicates, and
// misses.
func TestQueryBatchLevelWiseMatchesPerQuery(t *testing.T) {
	for _, kind := range batchKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			keys, vals := testKeys(256, 16, 21)
			absent, _ := testKeys(32, 16, 22)
			probes := batchTestProbes(keys, absent, 48, 23)

			s := NewSystem(CoreIntegrated)
			tb, err := s.Build(kind, keys, vals)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.QueryBatch(tb, probes, WithBatchMode(BatchLevelWise))
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range probes {
				want, err := s.Query(tb, p)
				if err != nil {
					t.Fatal(err)
				}
				g := got[i]
				if g.Found != want.Found || g.Value != want.Value || (g.Err == nil) != (want.Err == nil) {
					t.Fatalf("probe %d: batch (found=%v value=%d err=%v) != per-query (found=%v value=%d err=%v)",
						i, g.Found, g.Value, g.Err, want.Found, want.Value, want.Err)
				}
			}
		})
	}
}

// TestQueryBatchLevelWiseUnderChaosAndMutation is the property test:
// with fault injection and the cycle watchdog armed, fallback enabled,
// and software mutations interleaved between batches, the level-wise
// batch's architectural answers still equal sequential per-query
// lookups on the same table state — and the epoch GC records zero
// read-after-retire violations.
func TestQueryBatchLevelWiseUnderChaosAndMutation(t *testing.T) {
	for _, kind := range []StructKind{KindBST, KindSkipList, KindCuckoo} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			s := NewSystem(CoreIntegrated,
				// Recoverable chaos only: timing faults and spurious traps
				// retry/fall back to the correct answer; flip corrupts data
				// silently and no execution strategy can agree on it.
				WithFaultInjection(MustParseFaultSpec("17:nocdelay=0.05,spurious=0.02,evict=0.05,shootdown=0.05")),
				WithQueryCycleBudget(2_000_000),
				WithFallback(FallbackPolicy{AfterFaults: 2}))
			keys, vals := testKeys(128, 16, 41)
			absent, extra := testKeys(64, 16, 42)
			mt, err := s.BuildMutable(kind, keys, vals)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(43))
			live := append([][]byte(nil), keys...)
			for round := 0; round < 4; round++ {
				// Mutate between batches: a few inserts of fresh keys and
				// deletes of live ones.
				for i := 0; i < 6; i++ {
					j := round*8 + i
					if i%2 == 0 && j < len(absent) {
						if err := mt.Insert(absent[j], extra[j]); err != nil {
							t.Fatal(err)
						}
						live = append(live, absent[j])
					} else if len(live) > 8 {
						di := rng.Intn(len(live))
						if _, err := mt.Delete(live[di]); err != nil {
							t.Fatal(err)
						}
						live = append(live[:di], live[di+1:]...)
					}
				}
				probes := batchTestProbes(live, absent, 32, 44+int64(round))
				got, err := s.QueryBatch(mt.Table, probes, WithBatchMode(BatchLevelWise))
				if err != nil {
					t.Fatal(err)
				}
				for i, p := range probes {
					want, err := s.Query(mt.Table, p)
					if err != nil {
						t.Fatal(err)
					}
					g := got[i]
					// Under chaos with fallback armed, the architectural
					// answer (found/value) is the invariant; latency and the
					// recovery route may differ.
					if g.Found != want.Found || g.Value != want.Value {
						t.Fatalf("round %d probe %d: batch (found=%v value=%d) != per-query (found=%v value=%d)",
							round, i, g.Found, g.Value, want.Found, want.Value)
					}
				}
			}
			if v := s.EpochViolations(); v != 0 {
				t.Fatalf("%d read-after-retire epoch violations", v)
			}
		})
	}
}

// TestQueryBatchLevelWiseDeterministic pins determinism: two fresh
// machines given the identical batch produce identical cycle counts,
// results, and engine counters.
func TestQueryBatchLevelWiseDeterministic(t *testing.T) {
	keys, vals := testKeys(512, 16, 51)
	absent, _ := testKeys(32, 16, 52)
	probes := batchTestProbes(keys, absent, 64, 53)

	run := func() ([]Result, uint64, iqei.Stats) {
		s := NewSystem(CoreIntegrated)
		tb, err := s.Build(KindBTree, keys, vals)
		if err != nil {
			t.Fatal(err)
		}
		start := s.Now()
		rs, err := s.QueryBatch(tb, probes, WithBatchMode(BatchLevelWise))
		if err != nil {
			t.Fatal(err)
		}
		return rs, s.Now() - start, s.accel.Stats()
	}
	r1, c1, st1 := run()
	r2, c2, st2 := run()
	if c1 != c2 {
		t.Fatalf("batch cycles differ across identical runs: %d vs %d", c1, c2)
	}
	if st1 != st2 {
		t.Fatalf("engine stats differ across identical runs:\n%+v\n%+v", st1, st2)
	}
	for i := range r1 {
		if r1[i].Found != r2[i].Found || r1[i].Value != r2[i].Value || r1[i].Latency != r2[i].Latency {
			t.Fatalf("probe %d differs across identical runs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
	if st1.BatchTranslationsSaved == 0 || st1.BatchLinesDeduped == 0 {
		t.Fatalf("amortization counters flat: %+v", st1)
	}
}

// TestQueryBatchForeignStall pins the windowed path's foreign-stall
// contract: when every QST entry is held by foreign entries that can
// never complete, QueryBatch surfaces an error satisfying
// errors.Is(err, ErrQSTFull) instead of spinning or panicking.
func TestQueryBatchForeignStall(t *testing.T) {
	keys, vals := testKeys(64, 16, 61)
	s := NewSystem(CoreIntegrated)
	tb, err := s.Build(KindBTree, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	// Swap in a zero-capacity accelerator over the same machine and
	// firmware registry: every issue sees a full QST with no in-flight
	// entry that could ever retire — the never-completing-foreigners
	// condition in its purest form.
	p := s.accel.Params()
	p.QSTEntriesPerInstance = 0
	s.accel = iqei.New(s.m, p, s.reg, 0)

	_, err = s.QueryBatch(tb, keys[:8], WithBatchMode(BatchWindowed))
	if err == nil {
		t.Fatal("windowed batch on a fully-foreign QST returned no error")
	}
	if !errors.Is(err, ErrQSTFull) {
		t.Fatalf("foreign-stall error does not satisfy errors.Is(err, ErrQSTFull): %v", err)
	}
}

// TestServeBatchedAdmission pins the serving frontend's batched path:
// the same stream served with and without batched admission retires
// every request with identical architectural answers, and the batch
// report carries the flush and amortization counters.
func TestServeBatchedAdmission(t *testing.T) {
	cfg := DefaultServingConfig()
	cfg.Requests = 160
	cfg.Kind = KindBTree
	cfg.KeepResults = true

	plain, err := RunServing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BatchAdmit = 8
	batched, err := RunServing(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if batched.Batch == nil {
		t.Fatal("batched run carries no batch report")
	}
	if batched.Batch.Batches == 0 || batched.Batch.BatchedReads == 0 {
		t.Fatalf("batched run flushed nothing: %+v", batched.Batch)
	}
	if batched.Batch.TranslationsSaved == 0 {
		t.Fatalf("batched run amortized no translations: %+v", batched.Batch)
	}
	if plain.Batch != nil {
		t.Fatal("plain run unexpectedly carries a batch report")
	}
	if got, want := batched.Total.Requests, plain.Total.Requests; got != want {
		t.Fatalf("batched run retired %d requests, plain retired %d", got, want)
	}
	for seq := range plain.Results {
		p, b := plain.Results[seq], batched.Results[seq]
		if p.Found != b.Found || p.Value != b.Value {
			t.Fatalf("request %d: batched (found=%v value=%d) != plain (found=%v value=%d)",
				seq, b.Found, b.Value, p.Found, p.Value)
		}
	}
	if v := batched.EpochViolations; v != 0 {
		t.Fatalf("%d epoch violations under batched admission", v)
	}

	// The software walker has no batch path; batched admission on it is
	// a configuration error, not a silent fallback.
	cfg.Backend = "baseline"
	if _, err := RunServing(cfg); err == nil {
		t.Fatal("baseline backend accepted batched admission")
	}

	// Batched admission under writes keeps read-your-writes ordering:
	// the run must still match its unbatched twin per request.
	wcfg := DefaultServingConfig()
	wcfg.Requests = 160
	wcfg.Kind = KindBST
	wcfg.WriteFraction = 0.25
	wcfg.KeepResults = true
	wplain, err := RunServing(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	wcfg.BatchAdmit = 8
	wbatched, err := RunServing(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	for seq := range wplain.Results {
		p, b := wplain.Results[seq], wbatched.Results[seq]
		if p.Found != b.Found || p.Value != b.Value {
			t.Fatalf("write-mix request %d: batched (found=%v value=%d) != plain (found=%v value=%d)",
				seq, b.Found, b.Value, p.Found, p.Value)
		}
	}
	if v := wbatched.EpochViolations; v != 0 {
		t.Fatalf("%d epoch violations under batched admission with writes", v)
	}
}

// The qei adapter is the batch-capable backend the server requires.
var _ serve.BatchBackend = (*qeiServeBackend)(nil)
