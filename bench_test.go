package qei

// One benchmark per table and figure of the paper's evaluation section
// (see DESIGN.md's experiment index), plus ablation benches for the
// design choices the paper argues for. Each bench prints the regenerated
// rows via b.Log so `go test -bench . -benchmem` reproduces the paper's
// data set; EXPERIMENTS.md records paper-vs-measured values.
//
// Scale: benches honour -short (small configurations); full paper-scale
// runs are the default.

import (
	"flag"
	"fmt"
	"testing"

	"qei/internal/machine"
	"qei/internal/scheme"
	"qei/internal/workload"
)

// -expworkers picks the worker count for experiment fan-out in the
// figure benchmarks (0 = GOMAXPROCS, 1 = serial). Output is identical
// at any setting; only wall-clock changes.
var expWorkers = flag.Int("expworkers", 0, "experiment worker count (0 = GOMAXPROCS)")

func expOpts() []ExpOption {
	return []ExpOption{WithParallelism(*expWorkers)}
}

func benchScale(b *testing.B) Scale {
	if testing.Short() {
		return Small
	}
	return FullScale
}

func logTable(b *testing.B, t TableData) {
	b.Helper()
	b.Log("\n" + t.String())
}

// BenchmarkFig1QueryTimeShare regenerates Fig. 1.
func BenchmarkFig1QueryTimeShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Fig1QueryTimeShare(benchScale(b), expOpts()...)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkTab1SchemeMatrix regenerates Tab. I.
func BenchmarkTab1SchemeMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := TabI()
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkTab2Config regenerates Tab. II.
func BenchmarkTab2Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := TabII()
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkFig7Speedup regenerates Fig. 7 (the headline result).
func BenchmarkFig7Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Fig7Speedup(benchScale(b), expOpts()...)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkFig8LatencySweep regenerates Fig. 8.
func BenchmarkFig8LatencySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Fig8LatencySweep(benchScale(b), expOpts()...)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkFig9EndToEnd regenerates Fig. 9.
func BenchmarkFig9EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Fig9EndToEnd(benchScale(b), expOpts()...)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkFig10TupleSpace regenerates Fig. 10.
func BenchmarkFig10TupleSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Fig10TupleSpace(benchScale(b), expOpts()...)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkFig11InstrReduction regenerates Fig. 11.
func BenchmarkFig11InstrReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Fig11InstrReduction(benchScale(b), expOpts()...)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkTab3AreaPower regenerates Tab. III.
func BenchmarkTab3AreaPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := TabIII()
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkFig12DynamicPower regenerates Fig. 12.
func BenchmarkFig12DynamicPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Fig12DynamicPower(benchScale(b), expOpts()...)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkNoCUtilization checks the Sec. V hotspot/bandwidth claim.
func BenchmarkNoCUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := NoCUtilization(benchScale(b), expOpts()...)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

func ablationBench(small, full workload.Benchmark, b *testing.B) workload.Benchmark {
	if testing.Short() {
		return small
	}
	return full
}

// BenchmarkAblationQSTSize sweeps the QST depth: the paper picks 10
// entries as the balance point (50-90% occupancy, Sec. VI-A).
func BenchmarkAblationQSTSize(b *testing.B) {
	bench := ablationBench(workload.SmallJVM(), workload.DefaultJVM(), b)
	for i := 0; i < b.N; i++ {
		var rows TableData
		rows.Title = "Ablation — QST entries vs ROI cycles (Core-integrated, JVM)"
		rows.Headers = []string{"qst_entries", "roi_cycles", "occupancy"}
		for _, entries := range []int{2, 5, 10, 20, 40} {
			p := scheme.ForKind(scheme.CoreIntegrated)
			p.QSTEntriesPerInstance = entries
			run, err := workload.RunQEIWithParams(bench, p, workload.ROIOnly,
				workload.WithWarmup(), workload.WithBatch(entries))
			if err != nil {
				b.Fatal(err)
			}
			rows.Rows = append(rows.Rows, []string{
				fmt.Sprintf("%d", entries),
				fmt.Sprintf("%d", run.Cycles),
				fmt.Sprintf("%.2f", run.Accel.Occupancy()),
			})
		}
		if i == 0 {
			logTable(b, rows)
		}
	}
}

// BenchmarkAblationRemoteCompare toggles the CHA comparators: without
// them the Core-integrated scheme must pull large keys through its L2.
func BenchmarkAblationRemoteCompare(b *testing.B) {
	bench := ablationBench(workload.SmallRocksDB(), workload.DefaultRocksDB(), b)
	for i := 0; i < b.N; i++ {
		var rows TableData
		rows.Title = "Ablation — remote (CHA) vs local comparison (RocksDB, 100B keys)"
		rows.Headers = []string{"comparators", "roi_cycles", "remote_compares", "mem_lines"}
		for _, remote := range []bool{true, false} {
			p := scheme.ForKind(scheme.CoreIntegrated)
			p.RemoteCompare = remote
			run, err := workload.RunQEIWithParams(bench, p, workload.ROIOnly, workload.WithWarmup())
			if err != nil {
				b.Fatal(err)
			}
			label := "remote (CHA)"
			if !remote {
				label = "local (fetch)"
			}
			rows.Rows = append(rows.Rows, []string{
				label,
				fmt.Sprintf("%d", run.Cycles),
				fmt.Sprintf("%d", run.Accel.RemoteCompares),
				fmt.Sprintf("%d", run.Accel.MemLines),
			})
		}
		if i == 0 {
			logTable(b, rows)
		}
	}
}

// BenchmarkAblationTranslation compares the three translation paths on
// one CHA-placed accelerator.
func BenchmarkAblationTranslation(b *testing.B) {
	bench := ablationBench(workload.SmallJVM(), workload.DefaultJVM(), b)
	for i := 0; i < b.N; i++ {
		var rows TableData
		rows.Title = "Ablation — translation path (CHA placement, JVM)"
		rows.Headers = []string{"translation", "roi_cycles"}
		for _, k := range []scheme.Kind{scheme.CHATLB, scheme.CHANoTLB} {
			run, err := workload.RunQEI(bench, k, workload.ROIOnly, workload.WithWarmup())
			if err != nil {
				b.Fatal(err)
			}
			rows.Rows = append(rows.Rows, []string{
				scheme.ForKind(k).Translation.String(),
				fmt.Sprintf("%d", run.Cycles),
			})
		}
		if i == 0 {
			logTable(b, rows)
		}
	}
}

// BenchmarkAblationBatch sweeps the QUERY_B software batch size.
func BenchmarkAblationBatch(b *testing.B) {
	bench := ablationBench(workload.SmallDPDK(), workload.DefaultDPDK(), b)
	for i := 0; i < b.N; i++ {
		var rows TableData
		rows.Title = "Ablation — QUERY_B batch size (DPDK, Core-integrated)"
		rows.Headers = []string{"batch", "roi_cycles"}
		for _, batch := range []int{1, 2, 5, 10, 20} {
			run, err := workload.RunQEI(bench, scheme.CoreIntegrated, workload.ROIOnly,
				workload.WithWarmup(), workload.WithBatch(batch))
			if err != nil {
				b.Fatal(err)
			}
			rows.Rows = append(rows.Rows, []string{
				fmt.Sprintf("%d", batch),
				fmt.Sprintf("%d", run.Cycles),
			})
		}
		if i == 0 {
			logTable(b, rows)
		}
	}
}

// BenchmarkAblationSkew compares uniform and Zipf-skewed (YCSB-like,
// s=0.99) query streams on the DPDK FIB: hot keys keep the software
// baseline in its private caches, so skew narrows the accelerator's
// advantage — quantifying where QEI's speedup comes from.
func BenchmarkAblationSkew(b *testing.B) {
	uniB := ablationBench(workload.SmallDPDK(), workload.DefaultDPDK(), b)
	var skewB workload.Benchmark
	if testing.Short() {
		skewB = workload.SmallSkewedDPDK()
	} else {
		skewB = workload.DefaultSkewedDPDK()
	}
	for i := 0; i < b.N; i++ {
		var rows TableData
		rows.Title = "Ablation — query-key skew (DPDK, Core-integrated)"
		rows.Headers = []string{"distribution", "sw_cyc_per_query", "speedup_x"}
		for _, bench := range []workload.Benchmark{uniB, skewB} {
			sw, err := workload.RunBaseline(bench, workload.ROIOnly, workload.WithWarmup())
			if err != nil {
				b.Fatal(err)
			}
			hw, err := workload.RunQEI(bench, scheme.CoreIntegrated, workload.ROIOnly, workload.WithWarmup())
			if err != nil {
				b.Fatal(err)
			}
			rows.Rows = append(rows.Rows, []string{
				bench.Name(),
				fmt.Sprintf("%.1f", float64(sw.Cycles)/float64(sw.Queries)),
				fmt.Sprintf("%.2f", float64(sw.Cycles)/float64(hw.Cycles)),
			})
		}
		if i == 0 {
			logTable(b, rows)
		}
	}
}

// BenchmarkAblationIndexStructure compares the two classic ordered
// indexes over identical keys: the skip list (RocksDB memtable) against
// a B+-tree. The B+-tree's shallow, wide nodes need far fewer dependent
// fetches per query, so it suits the accelerator's pipelined CFAs
// better — a structure-choice insight the abstraction makes measurable.
func BenchmarkAblationIndexStructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var rows TableData
		rows.Title = "Ablation — index structure under QEI (same 100B keys)"
		rows.Headers = []string{"structure", "accel_cycles_per_query", "lines_per_query"}
		for _, kind := range []string{"skiplist", "btree"} {
			sys := NewSystem(CoreIntegrated)
			keys, vals := testKeys(4000, 100, 60)
			var tb Table
			var err error
			if kind == "skiplist" {
				tb, err = sys.BuildSkipList(keys, vals)
			} else {
				tb, err = sys.BuildBTree(keys, vals)
			}
			if err != nil {
				b.Fatal(err)
			}
			var total uint64
			n := 300
			for q := 0; q < n; q++ {
				res, err := sys.Query(tb, keys[(q*13)%len(keys)])
				if err != nil {
					b.Fatal(err)
				}
				if !res.Found {
					b.Fatal("lookup missed")
				}
				total += res.Latency
			}
			st := sys.Stats()
			rows.Rows = append(rows.Rows, []string{
				kind,
				fmt.Sprintf("%.0f", float64(total)/float64(n)),
				fmt.Sprintf("%.1f", float64(st.MemLines)/float64(st.Queries)),
			})
		}
		if i == 0 {
			logTable(b, rows)
		}
	}
}

// BenchmarkScalability runs the multi-core scalability study behind
// Tab. I's Scalability column.
func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Scalability(benchScale(b), expOpts()...)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkTailLatency runs the open-loop latency extension experiment.
func BenchmarkTailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := TailLatency(benchScale(b), expOpts()...)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkAblationHugePage compares the default fragmented layout with
// the physically contiguous (huge-page) layout prior accelerators assume
// (Sec. II-B, Challenge 3): with contiguity, translation would be
// trivial, but the paper argues cloud services cannot rely on it.
func BenchmarkAblationHugePage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var rows TableData
		rows.Title = "Ablation — fragmented vs contiguous physical layout"
		rows.Headers = []string{"layout", "contiguous", "pages_mapped"}
		for _, contiguous := range []bool{false, true} {
			cfg := machine.DefaultConfig()
			cfg.ContiguousFrames = contiguous
			m := machine.New(cfg)
			start := m.AS.Brk()
			bench := workload.SmallDPDK()
			if _, err := bench.Build(m); err != nil {
				b.Fatal(err)
			}
			label := "fragmented (default)"
			if contiguous {
				label = "huge-page assumption"
			}
			rows.Rows = append(rows.Rows, []string{
				label,
				fmt.Sprintf("%v", m.AS.Contiguous(start, uint64(m.AS.Brk()-start))),
				fmt.Sprintf("%d", m.AS.MappedPages()),
			})
		}
		if i == 0 {
			logTable(b, rows)
		}
	}
}

// BenchmarkBenchMatrix regenerates the machine-readable benchmark
// matrix (qeibench -json).
func BenchmarkBenchMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := BenchMatrix(benchScale(b), expOpts()...)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkObservedQuery quantifies the wall-clock cost of live
// instrumentation on the hot path (compare with BenchmarkQuerySingle;
// simulated cycles are asserted identical by
// TestObservabilityZeroCycleImpact).
func BenchmarkObservedQuery(b *testing.B) {
	sys := NewSystem(CoreIntegrated, WithMetrics(), WithTrace())
	keys, vals := testKeys(1000, 16, 42)
	table := sys.MustBuildCuckoo(keys, vals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.Query(table, keys[i%len(keys)])
		if err != nil {
			b.Fatal(err)
		}
		if !res.Found {
			b.Fatal("lookup missed")
		}
	}
}

// BenchmarkQuerySingle measures one accelerated query end to end through
// the public API (the library's hot path).
func BenchmarkQuerySingle(b *testing.B) {
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(1000, 16, 42)
	table := sys.MustBuildCuckoo(keys, vals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.Query(table, keys[i%len(keys)])
		if err != nil {
			b.Fatal(err)
		}
		if !res.Found {
			b.Fatal("lookup missed")
		}
	}
}
