package qei

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"qei/internal/serve"
)

// TestQueryBatchOverCapacity pins the over-QST-capacity contract of
// QueryBatch: a batch several times the QST capacity completes without
// ever surfacing ErrQSTFull, and returns one result per key in key
// order.
func TestQueryBatchOverCapacity(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	cap := sys.QSTCapacity()
	n := 3*cap + 5
	keys, vals := testKeys(n, 16, 11)
	tb := sys.MustBuildCuckoo(keys, vals)

	results, err := sys.QueryBatch(tb, keys)
	if err != nil {
		t.Fatalf("QueryBatch over capacity (%d keys, QST %d): %v", n, cap, err)
	}
	if len(results) != n {
		t.Fatalf("got %d results for %d keys", len(results), n)
	}
	for i, r := range results {
		if !r.Found || r.Value != vals[i] {
			t.Fatalf("key %d: %+v want value %d — results not in key order", i, r, vals[i])
		}
	}

	// Misses interleaved past capacity stay in key order too.
	miss := make([][]byte, cap+3)
	for i := range miss {
		miss[i] = []byte("absent-key-0123!")
	}
	mres, err := sys.QueryBatch(tb, miss)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range mres {
		if r.Found {
			t.Fatalf("miss %d reported found", i)
		}
	}
}

// TestServingReplayIdentical pins the record/replay contract: serving a
// trace read back from the JSONL recording produces a byte-identical
// report to the live run that generated the stream.
func TestServingReplayIdentical(t *testing.T) {
	cfg := DefaultServingConfig()
	cfg.Requests = 120
	cfg.Tenants = 3

	live, err := RunServing(cfg)
	if err != nil {
		t.Fatal(err)
	}

	gen := cfg.GenConfig()
	reqs, err := serve.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := serve.WriteTrace(&buf, gen, reqs); err != nil {
		t.Fatal(err)
	}
	rgen, rreqs, err := serve.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ReplayServing(cfg, rgen, rreqs)
	if err != nil {
		t.Fatal(err)
	}

	lj, _ := json.Marshal(live)
	rj, _ := json.Marshal(replayed)
	if !bytes.Equal(lj, rj) {
		t.Fatalf("replayed report differs from live run:\nlive   %s\nreplay %s", lj, rj)
	}
}

// TestServingGenParallelIdentical pins end-to-end determinism across
// generation worker counts: the served report is identical whether the
// stream was generated serially or by a worker pool.
func TestServingGenParallelIdentical(t *testing.T) {
	base := DefaultServingConfig()
	base.Requests = 100
	base.Tenants = 3

	var want *serve.Report
	for _, workers := range []int{1, 4} {
		cfg := base
		cfg.GenWorkers = workers
		rep, err := RunServing(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = rep
			continue
		}
		if !reflect.DeepEqual(want, rep) {
			t.Fatalf("report differs at GenWorkers=%d:\nwant %+v\ngot  %+v", workers, want, rep)
		}
	}
}

// TestServingBackendsAgreeOnValues pins backend interchangeability: the
// accelerator and the software baseline serve the identical stream
// through the shared Backend interface and return the same Found/Value
// for every request (cycle counts legitimately differ).
func TestServingBackendsAgreeOnValues(t *testing.T) {
	for _, kind := range []StructKind{KindCuckoo, KindBST, KindSkipList} {
		cfg := DefaultServingConfig()
		cfg.Requests = 90
		cfg.Tenants = 3
		cfg.Kind = kind
		cfg.KeepResults = true

		reports := map[string]*serve.Report{}
		for _, be := range ServingBackends() {
			c := cfg
			c.Backend = be
			rep, err := RunServing(c)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, be, err)
			}
			if rep.Backend != be {
				t.Fatalf("report names backend %q, want %q", rep.Backend, be)
			}
			reports[be] = rep
		}
		q, b := reports["qei"], reports["baseline"]
		if len(q.Results) != cfg.Requests || len(b.Results) != cfg.Requests {
			t.Fatalf("%s: kept %d/%d results, want %d", kind, len(q.Results), len(b.Results), cfg.Requests)
		}
		for i := range q.Results {
			qr, br := q.Results[i], b.Results[i]
			if qr.Found != br.Found || qr.Value != br.Value {
				t.Fatalf("%s request %d: qei (found=%v value=%d) vs baseline (found=%v value=%d)",
					kind, i, qr.Found, qr.Value, br.Found, br.Value)
			}
			if (qr.Err == nil) != (br.Err == nil) {
				t.Fatalf("%s request %d: fault disagreement: qei=%v baseline=%v", kind, i, qr.Err, br.Err)
			}
		}
		if q.Total.Found == 0 {
			t.Fatalf("%s: no request found its key — stream not exercising tables", kind)
		}
	}
}

// TestServingMixedReadWrite drives a 20%-write stream through both real
// backends: tenant tables build mutable, software mutations interleave
// with in-flight accelerated lookups, and the two backends still agree
// on every request's architectural outcome. The mixed run replays
// byte-identically from its recorded trace.
func TestServingMixedReadWrite(t *testing.T) {
	cfg := DefaultServingConfig()
	cfg.Requests = 160
	cfg.Tenants = 3
	cfg.WriteFraction = 0.2
	cfg.DeleteFraction = 0.3
	cfg.KeepResults = true

	reports := map[string]*serve.Report{}
	for _, be := range ServingBackends() {
		c := cfg
		c.Backend = be
		rep, err := RunServing(c)
		if err != nil {
			t.Fatalf("%s: %v", be, err)
		}
		if rep.Total.Writes == 0 {
			t.Fatalf("%s: mixed stream retired no writes", be)
		}
		if rep.Total.Requests+rep.Total.Writes != uint64(cfg.Requests) {
			t.Fatalf("%s: reads %d + writes %d != %d", be, rep.Total.Requests, rep.Total.Writes, cfg.Requests)
		}
		if rep.Total.WriteP99 == 0 {
			t.Fatalf("%s: write latency never observed", be)
		}
		reports[be] = rep
	}
	q, b := reports["qei"], reports["baseline"]
	for i := range q.Results {
		qr, br := q.Results[i], b.Results[i]
		if qr.Found != br.Found || qr.Value != br.Value {
			t.Fatalf("request %d: qei (found=%v value=%d) vs baseline (found=%v value=%d)",
				i, qr.Found, qr.Value, br.Found, br.Value)
		}
	}

	// Trace round trip: the op annotations survive and the replay is
	// byte-identical to the live qei run.
	gen := cfg.GenConfig()
	reqs, err := serve.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := serve.WriteTrace(&buf, gen, reqs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"op":"put"`)) || !bytes.Contains(buf.Bytes(), []byte(`"op":"del"`)) {
		t.Fatal("trace carries no op annotations")
	}
	rgen, rreqs, err := serve.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ReplayServing(cfg, rgen, rreqs)
	if err != nil {
		t.Fatal(err)
	}
	lj, _ := json.Marshal(reports["qei"])
	rj, _ := json.Marshal(replayed)
	if !bytes.Equal(lj, rj) {
		t.Fatalf("mixed-stream replay differs from live run:\nlive   %s\nreplay %s", lj, rj)
	}
}

// TestNewServingBackendUnknown pins the error for unregistered names.
func TestNewServingBackendUnknown(t *testing.T) {
	if _, err := NewServingBackend("gpu", NewSystem(CoreIntegrated)); err == nil {
		t.Fatal("expected error for unknown backend name")
	}
}

// TestBuildGenericMatchesTyped pins that the generic Build entrypoint
// and the typed wrappers construct equivalent tables: same kind, same
// lookup answers on machines with identical seeds.
func TestBuildGenericMatchesTyped(t *testing.T) {
	keys, vals := testKeys(128, 16, 5)
	sysA := NewSystem(CoreIntegrated, WithSeed(3))
	sysB := NewSystem(CoreIntegrated, WithSeed(3))

	ta, err := sysA.Build(KindBST, keys, vals, WithBSTPayload(16))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := sysB.BuildBST(keys, vals, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ta.Kind != tb.Kind || ta.KeyLen != tb.KeyLen {
		t.Fatalf("table metadata differs: %+v vs %+v", ta, tb)
	}
	for i := 0; i < 32; i++ {
		ra, err := sysA.Query(ta, keys[i])
		if err != nil {
			t.Fatal(err)
		}
		rb, err := sysB.Query(tb, keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if ra.Found != rb.Found || ra.Value != rb.Value || ra.Latency != rb.Latency {
			t.Fatalf("key %d: generic %+v vs typed %+v", i, ra, rb)
		}
	}

	if _, err := sysA.Build(KindCustom, keys, vals); err == nil {
		t.Fatal("Build(KindCustom) should fail")
	} else if !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("Build(KindCustom) = %v, want ErrUnknownKind", err)
	}
}

// TestDeprecatedObservabilityAliases pins that the old option names
// keep working and mean the same thing as the renamed ones.
func TestDeprecatedObservabilityAliases(t *testing.T) {
	sys := NewSystem(CoreIntegrated, WithTracing(), WithTrace())
	keys, vals := testKeys(8, 16, 9)
	tb := sys.MustBuildCuckoo(keys, vals)
	if _, err := sys.Query(tb, keys[0]); err != nil {
		t.Fatal(err)
	}
	if doc := sys.ExportTrace(); doc == "" {
		t.Fatal("deprecated WithTracing/WithTrace produced no trace document")
	}
}
