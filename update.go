package qei

import (
	"errors"
	"fmt"
	"math/rand"

	"qei/internal/dstruct"
	"qei/internal/mem"
)

// Update operations. Per the paper (Sec. IV-A), QEI accelerates queries
// only; inserts and deletes remain software routines. Because the
// accelerator and the cores read the same coherent simulated memory, a
// Query issued immediately after an update observes it.
//
// Consistency between writers and in-flight queries follows the
// epoch-based protocol of internal/epoch: every query pins the current
// epoch at QST admission, mutators retire unlinked nodes into the
// epoch's limbo list instead of freeing them, and the allocator only
// reuses a node's memory once the QST has drained past the retiring
// epoch. A query that raced an unlink therefore still walks valid (if
// stale) bytes — the snapshot-at-admission semantics the paper's
// read-intensive usage model assumes — and the read-after-retire
// watcher (epoch/read_after_retire) proves the protocol holds.
//
// Handles returned by the Build functions are immutable descriptors; to
// mutate a structure, create it with the Mutable variants below, which
// return a handle carrying the mutation state.

// defaultMaxLoad is the cuckoo load-factor ceiling that triggers an
// online rehash before the kick loop starts thrashing (DPDK resizes in
// the same regime). SetMaxLoadFactor overrides it per table.
const defaultMaxLoad = 0.85

// mutableBTreeFanout is deliberately smaller than BuildBTree's read-only
// fanout of 16 so streaming workloads exercise node splits and merges at
// experiment scale rather than only at millions of keys.
const mutableBTreeFanout = 8

// MutStats counts a mutable table's software-routine activity. The
// streaming experiment asserts the structural-maintenance paths
// (rehash, split, merge, rebuild) actually ran.
type MutStats struct {
	// Inserts and Deletes count successful operations (Deletes only
	// those that removed a present key).
	Inserts uint64
	Deletes uint64
	// Rehashes counts online cuckoo bucket-array doublings; Rebuilds
	// counts BST scapegoat rebuilds.
	Rehashes uint64
	Rebuilds uint64
	// Splits and Merges count B+-tree node rebalances.
	Splits uint64
	Merges uint64
	// RetiredNodes counts extents handed to the epoch GC's limbo list.
	RetiredNodes uint64
}

// MutableTable wraps a Table with software update operations.
type MutableTable struct {
	Table
	sys     *System
	ck      *dstruct.Cuckoo
	sl      *dstruct.SkipList
	bs      *dstruct.BST
	ll      *dstruct.LinkedList
	bt      *dstruct.BTree
	rng     *rand.Rand
	maxLoad float64
	stats   MutStats
}

// BuildMutableCuckoo is BuildCuckoo returning an updatable handle.
func (s *System) BuildMutableCuckoo(keys [][]byte, values []uint64) (*MutableTable, error) {
	if err := validateKV(keys, values); err != nil {
		return nil, err
	}
	s.ensureGC()
	c := dstruct.BuildCuckoo(s.m.AS, uint64(len(keys)), 8, 0x9E37, keys, values)
	return &MutableTable{
		Table:   Table{header: c.HeaderAddr, Kind: KindCuckoo, KeyLen: int(c.KeyLen)},
		sys:     s,
		ck:      c,
		maxLoad: defaultMaxLoad,
	}, nil
}

// BuildMutableSkipList is BuildSkipList returning an updatable handle.
func (s *System) BuildMutableSkipList(keys [][]byte, values []uint64) (*MutableTable, error) {
	if err := validateKV(keys, values); err != nil {
		return nil, err
	}
	s.ensureGC()
	sl := dstruct.BuildSkipList(s.m.AS, 7, keys, values)
	return &MutableTable{
		Table: Table{header: sl.HeaderAddr, Kind: KindSkipList, KeyLen: int(sl.KeyLen)},
		sys:   s,
		sl:    sl,
		rng:   rand.New(rand.NewSource(s.seed)),
	}, nil
}

// BuildMutableBST is BuildBST returning an updatable handle.
func (s *System) BuildMutableBST(keys [][]byte, values []uint64, payload int) (*MutableTable, error) {
	if err := validateKV(keys, values); err != nil {
		return nil, err
	}
	if payload < 0 {
		return nil, fmt.Errorf("qei: negative payload %d", payload)
	}
	s.ensureGC()
	b := dstruct.BuildBST(s.m.AS, 7, payload, keys, values)
	return &MutableTable{
		Table: Table{header: b.HeaderAddr, Kind: KindBST, KeyLen: int(b.KeyLen)},
		sys:   s,
		bs:    b,
	}, nil
}

// BuildMutableLinkedList is BuildLinkedList returning an updatable handle.
func (s *System) BuildMutableLinkedList(keys [][]byte, values []uint64) (*MutableTable, error) {
	if err := validateKV(keys, values); err != nil {
		return nil, err
	}
	s.ensureGC()
	l := dstruct.BuildLinkedList(s.m.AS, keys, values)
	return &MutableTable{
		Table: Table{header: l.HeaderAddr, Kind: KindLinkedList, KeyLen: int(l.KeyLen)},
		sys:   s,
		ll:    l,
	}, nil
}

// BuildMutableBTree is BuildBTree returning an updatable handle. The
// tree uses a smaller fanout than the read-only bulk loader so update
// streams exercise splits and merges.
func (s *System) BuildMutableBTree(keys [][]byte, values []uint64) (*MutableTable, error) {
	if err := validateKV(keys, values); err != nil {
		return nil, err
	}
	s.ensureGC()
	b := dstruct.BuildBTree(s.m.AS, mutableBTreeFanout, keys, values)
	return &MutableTable{
		Table: Table{header: b.HeaderAddr, Kind: KindBTree, KeyLen: int(b.KeyLen)},
		sys:   s,
		bt:    b,
	}, nil
}

// BuildMutable builds an updatable table of the given kind — the
// generic entry point the stream engine uses. Kinds without software
// mutators (hash table chains, tries) return ErrUnsupportedOp; BSTs get
// payload 0 (use BuildMutableBST directly for object-tree payloads).
func (s *System) BuildMutable(kind StructKind, keys [][]byte, values []uint64) (*MutableTable, error) {
	switch kind {
	case KindCuckoo:
		return s.BuildMutableCuckoo(keys, values)
	case KindSkipList:
		return s.BuildMutableSkipList(keys, values)
	case KindBST:
		return s.BuildMutableBST(keys, values, 0)
	case KindLinkedList:
		return s.BuildMutableLinkedList(keys, values)
	case KindBTree:
		return s.BuildMutableBTree(keys, values)
	case KindHashTable, KindTrie:
		return nil, fmt.Errorf("qei: %w: no mutable builder for %s", ErrUnsupportedOp, kind)
	default:
		return nil, fmt.Errorf("qei: %w: %d", ErrUnknownKind, int(kind))
	}
}

// SetMaxLoadFactor overrides the cuckoo load-factor ceiling that
// triggers an online rehash (default 0.85). The streaming experiment
// lowers it to force a rehash at experiment scale. It is ignored for
// non-cuckoo tables.
func (t *MutableTable) SetMaxLoadFactor(f float64) {
	if f > 0 {
		t.maxLoad = f
	}
}

// MutStats reports the table's accumulated mutation activity.
func (t *MutableTable) MutStats() MutStats {
	st := t.stats
	if t.bt != nil {
		st.Splits = uint64(t.bt.Splits)
		st.Merges = uint64(t.bt.Merges)
	}
	return st
}

// retire hands freed node extents to the epoch GC's limbo list; their
// memory is reused only after every query admitted before this point
// has drained from the QST.
func (t *MutableTable) retire(exts ...mem.Extent) {
	for _, e := range exts {
		if e.Size == 0 {
			continue
		}
		t.sys.gc.Retire(e)
		t.stats.RetiredNodes++
	}
}

// Insert adds or updates a key/value pair in software. The cycle cost of
// the software routine is not modelled (updates are rare in the paper's
// read-intensive target workloads); its memory effects are — new nodes
// come from the epoch-aware allocator and replaced structures are
// retired, not freed.
func (t *MutableTable) Insert(key []byte, value uint64) error {
	as, gc := t.sys.m.AS, t.sys.gc
	var err error
	switch {
	case t.ck != nil:
		err = t.insertCuckoo(key, value)
	case t.sl != nil:
		err = t.sl.Insert(as, gc, t.rng, key, value)
	case t.bs != nil:
		err = t.insertBST(key, value)
	case t.bt != nil:
		_, err = t.bt.Insert(as, gc, key, value)
	case t.ll != nil:
		err = t.ll.InsertFront(as, gc, key, value)
	default:
		return fmt.Errorf("qei: %w: Insert on %s", ErrUnsupportedOp, t.Kind)
	}
	if err != nil {
		return err
	}
	t.stats.Inserts++
	gc.Bump()
	return nil
}

// insertCuckoo inserts with online resizing: a rehash to double the
// buckets fires when the load factor crosses the ceiling, and again if
// the kick loop still reports the table full (bad luck on a dense
// table). The old bucket array is retired, never freed — a query
// admitted against it finishes against it.
func (t *MutableTable) insertCuckoo(key []byte, value uint64) error {
	if t.ck.LoadFactor() >= t.maxLoad {
		if err := t.rehash(t.ck.NBuckets * 2); err != nil {
			return err
		}
	}
	for attempt := 0; ; attempt++ {
		err := t.ck.Insert(t.sys.m.AS, key, value)
		if err == nil {
			return nil
		}
		if !errors.Is(err, dstruct.ErrTableFull) || attempt >= 2 {
			return err
		}
		if err := t.rehash(t.ck.NBuckets * 2); err != nil {
			return err
		}
	}
}

// rehash doubles the cuckoo bucket array. Whether the rehash published
// the new array or rolled back to the old one, the extent it returns is
// the array that is now unreachable from the header — retire it.
func (t *MutableTable) rehash(nBuckets uint64) error {
	unreachable, err := t.ck.Rehash(t.sys.m.AS, t.sys.gc, nBuckets)
	t.retire(unreachable)
	if err != nil {
		return err
	}
	t.stats.Rehashes++
	return nil
}

// insertBST inserts and, when the tree has degenerated past the
// scapegoat depth bound, rebuilds it balanced, retiring every old node.
func (t *MutableTable) insertBST(key []byte, value uint64) error {
	as, gc := t.sys.m.AS, t.sys.gc
	if err := t.bs.Insert(as, gc, key, value); err != nil {
		return err
	}
	if t.bs.NeedsRebuild() {
		freed, err := t.bs.Rebuild(as, gc)
		if err != nil {
			return err
		}
		t.retire(freed...)
		t.stats.Rebuilds++
	}
	return nil
}

// Delete removes a key, reporting whether it existed. Unlinked nodes
// are retired to the epoch GC so an in-flight query that already read a
// pointer to one still walks valid bytes. Hash-table chains and tries
// have no mutators and return ErrUnsupportedOp.
func (t *MutableTable) Delete(key []byte) (bool, error) {
	as, gc := t.sys.m.AS, t.sys.gc
	var ok bool
	var err error
	switch {
	case t.ck != nil:
		// Cuckoo deletion clears the entry in place: no node to retire.
		ok, err = t.ck.Delete(as, key)
	case t.sl != nil:
		var e mem.Extent
		ok, e, err = t.sl.Delete(as, key)
		if ok {
			t.retire(e)
		}
	case t.bs != nil:
		var e mem.Extent
		ok, e, err = t.bs.Delete(as, key)
		if ok {
			t.retire(e)
		}
	case t.bt != nil:
		var freed []mem.Extent
		ok, freed, err = t.bt.Delete(as, key)
		t.retire(freed...)
	case t.ll != nil:
		var e mem.Extent
		ok, e, err = t.ll.Remove(as, key)
		if ok {
			t.retire(e)
		}
	default:
		return false, fmt.Errorf("qei: %w: Delete on %s", ErrUnsupportedOp, t.Kind)
	}
	if err != nil {
		return ok, err
	}
	if ok {
		t.stats.Deletes++
	}
	gc.Bump()
	return ok, nil
}

// Query runs an accelerated lookup against the mutable table.
func (t *MutableTable) Query(key []byte) (Result, error) {
	return t.sys.Query(t.Table, key)
}
