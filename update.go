package qei

import (
	"fmt"
	"math/rand"

	"qei/internal/dstruct"
)

// Update operations. Per the paper (Sec. IV-A), QEI accelerates queries
// only; inserts and deletes remain software routines. Because the
// accelerator and the cores read the same coherent simulated memory, a
// Query issued immediately after an update observes it — the library
// exposes the updates so applications can mix both, as the paper's
// read-intensive usage model intends.
//
// Handles returned by the Build functions are immutable descriptors; to
// mutate a structure, create it with the Mutable variants below, which
// return a handle carrying the mutation state.

// MutableTable wraps a Table with software update operations.
type MutableTable struct {
	Table
	sys *System
	ck  *dstruct.Cuckoo
	sl  *dstruct.SkipList
	bs  *dstruct.BST
	ll  *dstruct.LinkedList
	rng *rand.Rand
}

// BuildMutableCuckoo is BuildCuckoo returning an updatable handle.
func (s *System) BuildMutableCuckoo(keys [][]byte, values []uint64) (*MutableTable, error) {
	if err := validateKV(keys, values); err != nil {
		return nil, err
	}
	c := dstruct.BuildCuckoo(s.m.AS, uint64(len(keys)), 8, 0x9E37, keys, values)
	return &MutableTable{
		Table: Table{header: c.HeaderAddr, Kind: KindCuckoo, KeyLen: int(c.KeyLen)},
		sys:   s,
		ck:    c,
	}, nil
}

// BuildMutableSkipList is BuildSkipList returning an updatable handle.
func (s *System) BuildMutableSkipList(keys [][]byte, values []uint64) (*MutableTable, error) {
	if err := validateKV(keys, values); err != nil {
		return nil, err
	}
	sl := dstruct.BuildSkipList(s.m.AS, 7, keys, values)
	return &MutableTable{
		Table: Table{header: sl.HeaderAddr, Kind: KindSkipList, KeyLen: int(sl.KeyLen)},
		sys:   s,
		sl:    sl,
		rng:   rand.New(rand.NewSource(s.seed)),
	}, nil
}

// BuildMutableBST is BuildBST returning an updatable handle.
func (s *System) BuildMutableBST(keys [][]byte, values []uint64, payload int) (*MutableTable, error) {
	if err := validateKV(keys, values); err != nil {
		return nil, err
	}
	if payload < 0 {
		return nil, fmt.Errorf("qei: negative payload %d", payload)
	}
	b := dstruct.BuildBST(s.m.AS, 7, payload, keys, values)
	return &MutableTable{
		Table: Table{header: b.HeaderAddr, Kind: KindBST, KeyLen: int(b.KeyLen)},
		sys:   s,
		bs:    b,
	}, nil
}

// BuildMutableLinkedList is BuildLinkedList returning an updatable handle.
func (s *System) BuildMutableLinkedList(keys [][]byte, values []uint64) (*MutableTable, error) {
	if err := validateKV(keys, values); err != nil {
		return nil, err
	}
	l := dstruct.BuildLinkedList(s.m.AS, keys, values)
	return &MutableTable{
		Table: Table{header: l.HeaderAddr, Kind: KindLinkedList, KeyLen: int(l.KeyLen)},
		sys:   s,
		ll:    l,
	}, nil
}

// Insert adds or updates a key/value pair in software. The cycle cost of
// the software routine is not modelled (updates are rare in the paper's
// read-intensive target workloads).
func (t *MutableTable) Insert(key []byte, value uint64) error {
	switch {
	case t.ck != nil:
		return t.ck.Insert(t.sys.m.AS, key, value)
	case t.sl != nil:
		return t.sl.Insert(t.sys.m.AS, t.rng, key, value)
	case t.bs != nil:
		return t.bs.Insert(t.sys.m.AS, key, value)
	case t.ll != nil:
		return t.ll.InsertFront(t.sys.m.AS, key, value)
	default:
		return fmt.Errorf("qei: %s does not support Insert", t.Kind)
	}
}

// Delete removes a key, reporting whether it existed. Only cuckoo tables
// and linked lists support deletion in this reproduction.
func (t *MutableTable) Delete(key []byte) (bool, error) {
	switch {
	case t.ck != nil:
		return t.ck.Delete(t.sys.m.AS, key)
	case t.ll != nil:
		return t.ll.Remove(t.sys.m.AS, key)
	default:
		return false, fmt.Errorf("qei: %s does not support Delete", t.Kind)
	}
}

// Query runs an accelerated lookup against the mutable table.
func (t *MutableTable) Query(key []byte) (Result, error) {
	return t.sys.Query(t.Table, key)
}
