package qei

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestLoadMachineSpecPresetsAndErrors(t *testing.T) {
	for _, name := range MachinePresets() {
		spec, err := LoadMachineSpec(name)
		if err != nil {
			t.Fatalf("LoadMachineSpec(%q): %v", name, err)
		}
		if spec.Cores() != 24 {
			t.Errorf("%s: Cores() = %d, want 24 (Tab. II)", name, spec.Cores())
		}
	}
	if _, err := LoadMachineSpec("not-a-preset"); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown preset: error = %v, want ErrBadConfig", err)
	}

	// A bad file fails with the offending field, wrapping ErrBadConfig.
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"cores": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMachineSpec(path); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad file: error = %v, want ErrBadConfig", err)
	}
}

func TestMachineSpecJSONRoundTrip(t *testing.T) {
	spec := DefaultMachineSpec()
	data, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadMachineSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("spec JSON round trip not byte-identical")
	}
	if back.Name() != "tab2" {
		t.Errorf("Name() = %q, want tab2", back.Name())
	}
}

// TestWithMachineSpecDefaultIdentical pins that building a System on
// the default spec behaves exactly like the literal default machine.
func TestWithMachineSpecDefaultIdentical(t *testing.T) {
	keys := [][]byte{[]byte("aaaaaaaa"), []byte("bbbbbbbb"), []byte("cccccccc")}
	vals := []uint64{1, 2, 3}
	run := func(opts ...Option) (Result, error) {
		sys := NewSystem(CoreIntegrated, opts...)
		tab, err := sys.BuildCuckoo(keys, vals)
		if err != nil {
			return Result{}, err
		}
		return sys.Query(tab, keys[1])
	}
	plain, err := run()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := run(WithMachineSpec(DefaultMachineSpec()))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Latency != spec.Latency || plain.Value != spec.Value || plain.Found != spec.Found {
		t.Errorf("default spec drifts from the literal default: %+v vs %+v", plain, spec)
	}
	// The zero value behaves like the default spec too.
	zero, err := run(WithMachineSpec(MachineSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	if zero.Latency != plain.Latency {
		t.Errorf("zero-value spec latency %d != default %d", zero.Latency, plain.Latency)
	}
}

// TestWithMachineSpecCustomChip runs a query on a smaller swept chip.
func TestWithMachineSpecCustomChip(t *testing.T) {
	d := DefaultMachineSpec().desc()
	d.Cores = 8
	d.Mesh.Cols, d.Mesh.Rows = 4, 4
	d.MemStops = []int{0, 15}
	spec := MachineSpec{d: d}

	sys := NewSystem(CHATLB, WithMachineSpec(spec))
	keys := [][]byte{[]byte("aaaaaaaa"), []byte("bbbbbbbb")}
	tab, err := sys.BuildSkipList(keys, []uint64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(tab, keys[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Value != 10 {
		t.Errorf("query on 8-core chip: %+v", res)
	}
}

func TestServingOnMachineSpec(t *testing.T) {
	cfg := DefaultServingConfig()
	cfg.Backend = "qei"
	cfg.Requests = 40
	cfg.Tenants = 2
	spec := DefaultMachineSpec()
	cfg.Machine = &spec
	rep, err := RunServing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 40 {
		t.Errorf("served %d requests, want 40", rep.Requests)
	}
}
