package qei

import (
	"context"
	"testing"
)

// TestExperimentParallelDeterminism is the tentpole guarantee: an
// experiment fanned across workers renders byte-identically to its
// serial run.
func TestExperimentParallelDeterminism(t *testing.T) {
	serial, err := Fig1QueryTimeShare(Small, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig1QueryTimeShare(Small, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.String(), parallel.String(); s != p {
		t.Fatalf("parallel output diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
	if s, p := serial.CSV(), parallel.CSV(); s != p {
		t.Fatal("parallel CSV diverges from serial")
	}
}

func TestExperimentContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fig1QueryTimeShare(Small, WithContext(ctx), WithParallelism(2)); err == nil {
		t.Fatal("cancelled context did not stop the experiment")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if e.Name == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete registry entry %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate experiment name %q", e.Name)
		}
		seen[e.Name] = true
	}
	// The static tables run through the same signature.
	for _, name := range []string{"tab1", "tab2", "tab3"} {
		if !seen[name] {
			t.Fatalf("registry missing %s", name)
		}
	}
	tab, err := Experiments()[1].Run(Small) // tab1
	if err != nil || len(tab.Rows) == 0 {
		t.Fatalf("static experiment: %v, %d rows", err, len(tab.Rows))
	}
}
