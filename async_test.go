package qei

import (
	"errors"
	"strings"
	"testing"
)

// TestAsyncLifecycle walks the full Sec. IV-D story: issue, interrupt,
// observe the abort through the sentinel errors, reissue.
func TestAsyncLifecycle(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(64, 32, 11)
	tb, err := sys.BuildSkipList(keys, vals)
	if err != nil {
		t.Fatal(err)
	}

	h, err := sys.QueryAsync(tb, keys[0])
	if err != nil {
		t.Fatal(err)
	}
	// The query is in flight at the issue point: Poll must not advance
	// the clock and must report ErrResultPending.
	before := sys.Now()
	if _, err := sys.Poll(h); !errors.Is(err, ErrResultPending) {
		t.Fatalf("Poll on in-flight query: err = %v, want ErrResultPending", err)
	}
	if sys.Now() != before {
		t.Fatalf("Poll advanced the clock %d -> %d", before, sys.Now())
	}

	// Interrupt flushes it; both Wait and Poll now report ErrAborted.
	sys.Interrupt()
	if !sys.Aborted(h) {
		t.Fatal("query not aborted by interrupt")
	}
	if _, err := sys.Wait(h); !errors.Is(err, ErrAborted) {
		t.Fatalf("Wait on aborted query: err = %v, want ErrAborted", err)
	}
	if _, err := sys.Poll(h); !errors.Is(err, ErrAborted) {
		t.Fatalf("Poll on aborted query: err = %v, want ErrAborted", err)
	}

	// Software reissues; the retry completes and verifies.
	h2, err := sys.QueryAsync(tb, keys[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Wait(h2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Value != vals[0] {
		t.Fatalf("reissued query: %+v want value %d", res, vals[0])
	}
	// Once the clock has passed completion, Poll agrees with Wait.
	if res2, err := sys.Poll(h2); err != nil || res2.Value != vals[0] {
		t.Fatalf("Poll after completion: %+v, %v", res2, err)
	}
}

func TestWaitUnknownHandle(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	if _, err := sys.Wait(AsyncHandle{tag: 999}); !errors.Is(err, ErrUnknownHandle) {
		t.Fatalf("err = %v, want ErrUnknownHandle", err)
	}
	if _, err := sys.Poll(AsyncHandle{tag: 999}); !errors.Is(err, ErrUnknownHandle) {
		t.Fatalf("Poll: err = %v, want ErrUnknownHandle", err)
	}
}

func TestQueryAsyncQSTFull(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(64, 32, 12)
	tb, err := sys.BuildSkipList(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	cap := sys.QSTCapacity()
	handles := make([]AsyncHandle, 0, cap)
	full := false
	// Issue until the architectural bound trips. The clock advances at
	// each accept, so early queries may retire mid-loop; issuing 4x the
	// capacity guarantees the bound is reached if it is enforced at all.
	for i := 0; i < 4*cap; i++ {
		h, err := sys.QueryAsync(tb, keys[i%len(keys)])
		if errors.Is(err, ErrQSTFull) {
			full = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if !full {
		t.Fatalf("issued %d queries (QST capacity %d) without ErrQSTFull", 4*cap, cap)
	}
	// List-2 recovery: drain one completion, reissue, and verify.
	if _, err := sys.Wait(handles[0]); err != nil {
		t.Fatal(err)
	}
	h, err := sys.QueryAsync(tb, keys[0])
	if err != nil {
		t.Fatalf("reissue after drain: %v", err)
	}
	if res, err := sys.Wait(h); err != nil || !res.Found {
		t.Fatalf("drained reissue: %+v, %v", res, err)
	}
}

func TestQueryBatch(t *testing.T) {
	sys := NewSystem(CHATLB)
	keys, vals := testKeys(200, 16, 13)
	tb := sys.MustBuildCuckoo(keys, vals)

	// Batch twice the QST capacity so the window logic has to recycle
	// entries.
	n := 2 * sys.QSTCapacity()
	if n > len(keys) {
		n = len(keys)
	}
	results, err := sys.QueryBatch(tb, keys[:n])
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("%d results for %d keys", len(results), n)
	}
	for i, r := range results {
		if !r.Found || r.Value != vals[i] {
			t.Fatalf("batch result %d: %+v want %d", i, r, vals[i])
		}
	}

	// A missing key reports Found=false, not an error.
	miss := [][]byte{make([]byte, 16)}
	res, err := sys.QueryBatch(tb, miss)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Found {
		t.Fatal("absent key reported found")
	}
}

func TestQueryBatchWindow(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(64, 32, 14)
	tb, err := sys.BuildSkipList(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := sys.QueryBatch(tb, keys[:30])
	if err != nil {
		t.Fatal(err)
	}
	sys2 := NewSystem(CoreIntegrated)
	tb2, err := sys2.BuildSkipList(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := sys2.QueryBatch(tb2, keys[:30], WithWindow(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range wide {
		if wide[i].Value != narrow[i].Value || wide[i].Found != narrow[i].Found {
			t.Fatalf("window changed result %d: %+v vs %+v", i, wide[i], narrow[i])
		}
	}
	// Window 1 serializes the batch; the clock must end later than the
	// overlapped run.
	if sys2.Now() <= sys.Now() {
		t.Fatalf("serial window finished at %d, overlapped at %d", sys2.Now(), sys.Now())
	}
}

func TestNewSystemOptions(t *testing.T) {
	base := NewSystem(CoreIntegrated)
	big := NewSystem(CoreIntegrated, WithQSTSize(32))
	if big.QSTCapacity() <= base.QSTCapacity() {
		t.Fatalf("WithQSTSize(32): capacity %d not above default %d",
			big.QSTCapacity(), base.QSTCapacity())
	}

	traced := NewSystem(CoreIntegrated, WithQuerySpans())
	keys, vals := testKeys(8, 16, 15)
	tb := traced.MustBuildCuckoo(keys, vals)
	if _, err := traced.Query(tb, keys[0]); err != nil {
		t.Fatal(err)
	}
	if doc := traced.ExportTrace(); !strings.Contains(doc, `"cat":"qst"`) {
		t.Fatalf("WithQuerySpans recorded no spans: %s", doc)
	}

	// WithSeed steers the mutable skip list's level coins: same seed,
	// same layout; the structures stay queryable either way.
	for _, seed := range []int64{1, 42} {
		s := NewSystem(CoreIntegrated, WithSeed(seed))
		mt, err := s.BuildMutableSkipList(keys, vals)
		if err != nil {
			t.Fatal(err)
		}
		if err := mt.Insert([]byte("0123456789abcdef"), 777); err != nil {
			t.Fatal(err)
		}
		res, err := mt.Query([]byte("0123456789abcdef"))
		if err != nil || !res.Found || res.Value != 777 {
			t.Fatalf("seed %d: inserted key not found: %+v, %v", seed, res, err)
		}
	}
}

func TestStructKindRoundTrip(t *testing.T) {
	for _, k := range StructKinds() {
		got, err := ParseStructKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseStructKind(%q) = %v, %v", k.String(), got, err)
		}
		if k.TypeCode() == 0 {
			t.Fatalf("built-in kind %s has no type code", k)
		}
	}
	if _, err := ParseStructKind("quadtree"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if k, err := ParseStructKind(" Cuckoo "); err != nil || k != KindCuckoo {
		t.Fatalf("case/space-insensitive parse failed: %v, %v", k, err)
	}
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(8, 16, 16)
	tb := sys.MustBuildCuckoo(keys, vals)
	if tb.Kind != KindCuckoo || tb.Name() != "cuckoo" {
		t.Fatalf("builder kind: %v (%s)", tb.Kind, tb.Name())
	}
}
