package sim

import "testing"

// These tests pin the edge semantics of RunUntil/Advance that the
// workload runners depend on. They were written against the original
// boxed-heap implementation before the queue was rewritten (PR 5) and
// must keep passing unchanged.

// Same-cycle work scheduled BY the last event inside RunUntil's limit
// must fire within the same RunUntil call, even when that event sits
// exactly at the limit: RunUntil re-examines the queue after every
// step, so an After(0) cascade at the limit drains before now is
// pinned to the limit.
func TestRunUntilFiresSameCycleWorkAddedByLastEvent(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func() {
		order = append(order, 1)
		e.After(0, func() {
			order = append(order, 2)
			e.After(0, func() { order = append(order, 3) })
		})
	})
	e.RunUntil(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("After(0) cascade at the limit fired as %v, want [1 2 3]", order)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d, want 10", e.Now())
	}
}

// An event below the limit that schedules work beyond the limit leaves
// that work queued; now lands on the limit, and the deferred work still
// observes its own cycle when a later Run drains it.
func TestRunUntilLeavesBeyondLimitWorkQueued(t *testing.T) {
	e := NewEngine()
	var fired []Cycle
	e.At(5, func() {
		e.After(20, func() { fired = append(fired, e.Now()) })
	})
	if got := e.RunUntil(12); got != 12 {
		t.Fatalf("RunUntil returned %d, want 12", got)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 1 || fired[0] != 25 {
		t.Fatalf("deferred event fired at %v, want [25]", fired)
	}
}

// After RunUntil pins now to the limit, scheduling At(limit) is legal
// (not "the past") and such events fire at the limit, FIFO after any
// already-queued same-cycle events.
func TestRunUntilThenScheduleAtLimit(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 1) })
	e.RunUntil(20)
	e.At(20, func() { order = append(order, 0) })
	e.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("order = %v, want [0 1]", order)
	}
}

// RunUntil with a limit behind now is a no-op that reports the current
// (unchanged) cycle.
func TestRunUntilBehindNowIsNoOp(t *testing.T) {
	e := NewEngine()
	e.Advance(50)
	if got := e.RunUntil(10); got != 50 {
		t.Fatalf("RunUntil(10) after Advance(50) returned %d, want 50", got)
	}
	if e.Now() != 50 {
		t.Fatalf("Now() = %d, want 50", e.Now())
	}
}

// Advance allows landing exactly ON a pending event's cycle (only
// strictly-earlier events may not be skipped), and that event then
// fires at its cycle.
func TestAdvanceOntoPendingEventCycle(t *testing.T) {
	e := NewEngine()
	var at Cycle
	e.At(40, func() { at = e.Now() })
	e.Advance(40) // must not panic: nothing is skipped
	if e.Now() != 40 {
		t.Fatalf("Now() = %d, want 40", e.Now())
	}
	e.Run()
	if at != 40 {
		t.Fatalf("event fired at %d, want 40", at)
	}
}

// A top-level After(0) fires at the current cycle without moving the
// clock, and same-cycle FIFO holds across the heap/fast-path boundary:
// events queued At(now) earlier still fire before a later After(0).
func TestAfterZeroFiresAtCurrentCycle(t *testing.T) {
	e := NewEngine()
	e.Advance(7)
	var order []int
	e.At(7, func() { order = append(order, 0) })
	e.After(0, func() { order = append(order, 1) })
	e.Run()
	if e.Now() != 7 {
		t.Fatalf("Now() = %d, want 7", e.Now())
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("order = %v, want [0 1]", order)
	}
}
