package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Cycle
	for _, c := range []Cycle{50, 10, 30, 20, 40} {
		c := c
		e.At(c, func() { got = append(got, c) })
	}
	e.Run()
	want := []Cycle{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle order[%d] = %d, want %d", i, v, i)
		}
	}
	if e.Now() != 7 {
		t.Fatalf("Now() = %d, want 7", e.Now())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Cycle
	e.At(100, func() {
		e.After(25, func() { at = e.Now() })
	})
	e.Run()
	if at != 125 {
		t.Fatalf("nested After fired at %d, want 125", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	e := NewEngine()
	fired := map[Cycle]bool{}
	for _, c := range []Cycle{5, 10, 15, 20} {
		c := c
		e.At(c, func() { fired[c] = true })
	}
	e.RunUntil(12)
	if !fired[5] || !fired[10] {
		t.Fatal("events at 5 and 10 should have fired")
	}
	if fired[15] || fired[20] {
		t.Fatal("events past the limit fired early")
	}
	if e.Now() != 12 {
		t.Fatalf("Now() = %d, want 12", e.Now())
	}
	e.Run()
	if !fired[15] || !fired[20] {
		t.Fatal("remaining events did not fire on Run")
	}
}

func TestAdvance(t *testing.T) {
	e := NewEngine()
	e.Advance(42)
	if e.Now() != 42 {
		t.Fatalf("Now() = %d, want 42", e.Now())
	}
	e.At(50, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("Advance over a pending event did not panic")
		}
	}()
	e.Advance(60)
}

func TestRunForBounds(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.At(Cycle(i), func() { count++ })
	}
	e.RunFor(4)
	if count != 4 {
		t.Fatalf("RunFor(4) executed %d events", count)
	}
	if e.Fired() != 4 {
		t.Fatalf("Fired() = %d, want 4", e.Fired())
	}
}

// Property: for any set of scheduled cycles, events fire in sorted order and
// the clock ends at the max.
func TestPropertyOrdering(t *testing.T) {
	f := func(cycles []uint16) bool {
		e := NewEngine()
		var got []Cycle
		for _, c := range cycles {
			c := Cycle(c)
			e.At(c, func() { got = append(got, c) })
		}
		e.Run()
		want := make([]Cycle, len(cycles))
		for i, c := range cycles {
			want[i] = Cycle(c)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving scheduling during execution preserves causality
// (every event observes Now() == its scheduled cycle).
func TestPropertyCausality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := NewEngine()
	ok := true
	var spawn func(depth int)
	spawn = func(depth int) {
		if depth == 0 {
			return
		}
		d := Cycle(rng.Intn(20))
		target := e.Now() + d
		e.After(d, func() {
			if e.Now() != target {
				ok = false
			}
			spawn(depth - 1)
		})
	}
	for i := 0; i < 50; i++ {
		spawn(5)
	}
	e.Run()
	if !ok {
		t.Fatal("an event observed a wrong current cycle")
	}
}
