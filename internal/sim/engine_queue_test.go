package sim

// Property test for the value-heap + same-cycle-ring event queue: its
// observable firing order must match the original boxed container/heap
// implementation on randomized seeded schedules, including same-cycle
// FIFO ties, nested scheduling from inside events, RunUntil windows,
// and engine reuse via Reset.

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent / refHeap / refEngine reproduce the pre-PR-5 boxed-heap
// engine verbatim (minus the unexercised helpers); they are the
// ordering oracle.
type refEvent struct {
	at    Cycle
	seq   uint64
	fn    Event
	index int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	ev := x.(*refEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type refEngine struct {
	now    Cycle
	seq    uint64
	events refHeap
}

func (e *refEngine) At(at Cycle, fn Event) {
	if at < e.now {
		panic("ref: past")
	}
	heap.Push(&e.events, &refEvent{at: at, seq: e.seq, fn: fn})
	e.seq++
}

func (e *refEngine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*refEvent)
	e.now = ev.at
	ev.fn()
	return true
}

func (e *refEngine) RunUntil(limit Cycle) {
	for e.events.Len() > 0 && e.events[0].at <= limit {
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

func (e *refEngine) Run() {
	for e.Step() {
	}
}

// schedStep is one action of a generated schedule. Both engines replay
// the same schedule; events append (id, firing cycle) to a log.
type schedStep struct {
	delay  Cycle // scheduling offset from now at execution time
	id     int
	nested int // how many follow-up events this event schedules
}

// genSchedule builds a deterministic random schedule from seed.
func genSchedule(rng *rand.Rand, n int) []schedStep {
	steps := make([]schedStep, n)
	for i := range steps {
		d := Cycle(rng.Intn(8)) // small range forces same-cycle ties
		if rng.Intn(4) == 0 {
			d = 0 // extra After(0) pressure
		}
		steps[i] = schedStep{delay: d, id: i, nested: rng.Intn(3)}
	}
	return steps
}

type fireLog struct {
	entries []struct {
		id int
		at Cycle
	}
}

func (l *fireLog) hit(id int, at Cycle) {
	l.entries = append(l.entries, struct {
		id int
		at Cycle
	}{id, at})
}

// replay drives a schedule through either engine via the tiny scheduler
// interface both satisfy.
type queueLike interface {
	At(Cycle, Event)
	Step() bool
}

func replay(t *testing.T, q queueLike, nowOf func() Cycle, steps []schedStep, rng *rand.Rand, log *fireLog) {
	var spawn func(s schedStep, depth int)
	spawn = func(s schedStep, depth int) {
		at := nowOf() + s.delay
		q.At(at, func() {
			log.hit(s.id, nowOf())
			if depth < 3 {
				for k := 0; k < s.nested; k++ {
					spawn(schedStep{
						delay:  Cycle(rng.Intn(5)),
						id:     s.id*10 + k + 1,
						nested: s.nested - 1,
					}, depth+1)
				}
			}
		})
	}
	for _, s := range steps {
		spawn(s, 0)
		// Interleave partial draining so scheduling happens at varied
		// current cycles, not just cycle 0.
		if rng.Intn(3) == 0 {
			q.Step()
		}
	}
	for q.Step() {
	}
}

func sameLogs(a, b *fireLog) bool {
	if len(a.entries) != len(b.entries) {
		return false
	}
	for i := range a.entries {
		if a.entries[i] != b.entries[i] {
			return false
		}
	}
	return true
}

func TestQueueMatchesBoxedHeapReference(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		steps := genSchedule(rand.New(rand.NewSource(seed)), 60)

		var refLog fireLog
		ref := &refEngine{}
		replay(t, ref, func() Cycle { return ref.now }, steps, rand.New(rand.NewSource(seed+1000)), &refLog)

		var newLog fireLog
		e := NewEngine()
		replay(t, e, func() Cycle { return e.Now() }, steps, rand.New(rand.NewSource(seed+1000)), &newLog)

		if !sameLogs(&refLog, &newLog) {
			t.Fatalf("seed %d: firing order diverges from boxed-heap reference\nref: %v\nnew: %v",
				seed, refLog.entries, newLog.entries)
		}
		if e.Now() != ref.now {
			t.Fatalf("seed %d: final cycle %d, reference %d", seed, e.Now(), ref.now)
		}
	}
}

// A Reset engine must behave exactly like a fresh one, including on
// schedules that stress the same-cycle ring.
func TestResetReuseMatchesFreshEngine(t *testing.T) {
	reused := NewEngine()
	for seed := int64(0); seed < 20; seed++ {
		steps := genSchedule(rand.New(rand.NewSource(seed)), 40)

		var freshLog fireLog
		fresh := NewEngine()
		replay(t, fresh, func() Cycle { return fresh.Now() }, steps, rand.New(rand.NewSource(seed+2000)), &freshLog)

		reused.Reset()
		var reusedLog fireLog
		replay(t, reused, func() Cycle { return reused.Now() }, steps, rand.New(rand.NewSource(seed+2000)), &reusedLog)

		if !sameLogs(&freshLog, &reusedLog) {
			t.Fatalf("seed %d: reused engine diverges from fresh engine", seed)
		}
		if reused.Now() != fresh.Now() || reused.Fired() != fresh.Fired() {
			t.Fatalf("seed %d: reused end state (now %d, fired %d) != fresh (now %d, fired %d)",
				seed, reused.Now(), reused.Fired(), fresh.Now(), fresh.Fired())
		}
	}
}

// Reset discards pending events and restores a zero-state engine.
func TestResetDiscardsPending(t *testing.T) {
	e := NewEngine()
	e.At(5, func() { t.Fatal("stale event fired after Reset") })
	e.Advance(5)
	e.After(0, func() { t.Fatal("stale ring event fired after Reset") })
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Fired() != 0 {
		t.Fatalf("Reset left now=%d pending=%d fired=%d", e.Now(), e.Pending(), e.Fired())
	}
	fired := false
	e.At(3, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 3 {
		t.Fatalf("engine unusable after Reset: fired=%v now=%d", fired, e.Now())
	}
}

// RunUntil windows must agree with the reference across random limits.
func TestRunUntilWindowsMatchReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ref := &refEngine{}
		e := NewEngine()
		var refLog, newLog fireLog
		for i := 0; i < 40; i++ {
			at := Cycle(rng.Intn(100))
			id := i
			if at >= ref.now {
				ref.At(at, func() { refLog.hit(id, ref.now) })
			}
			if at >= e.Now() {
				e.At(at, func() { newLog.hit(id, e.Now()) })
			}
			if rng.Intn(4) == 0 {
				limit := Cycle(rng.Intn(120))
				if limit >= ref.now {
					ref.RunUntil(limit)
					e.RunUntil(limit)
				}
			}
		}
		ref.Run()
		e.Run()
		if !sameLogs(&refLog, &newLog) {
			t.Fatalf("seed %d: RunUntil firing order diverges", seed)
		}
		if e.Now() != ref.now {
			t.Fatalf("seed %d: final cycle %d, reference %d", seed, e.Now(), ref.now)
		}
	}
}
