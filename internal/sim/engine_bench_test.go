package sim

import "testing"

// BenchmarkEngineScheduleRun measures the bulk schedule-then-drain
// pattern of the open-loop experiments: many events at spread-out
// cycles, then Run. The engine is Reset between iterations, so the
// steady state is allocation-free.
func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		for c := Cycle(0); c < 1024; c++ {
			e.At(c*3, fn)
		}
		e.Run()
	}
}

// BenchmarkEngineAfterZero measures the same-cycle fast path: chains of
// After(0) work, the pattern of zero-latency hand-offs.
func BenchmarkEngineAfterZero(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		n := 0
		var fn Event
		fn = func() {
			if n++; n < 256 {
				e.After(0, fn)
			}
		}
		e.After(1, fn)
		e.Run()
	}
}

// BenchmarkEngineMixed interleaves scheduling and stepping with
// same-cycle ties, approximating the accelerator's event mix.
func BenchmarkEngineMixed(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		for k := 0; k < 512; k++ {
			e.At(Cycle(k%7)+e.Now(), fn)
			if k%3 == 0 {
				e.Step()
			}
		}
		e.Run()
	}
}
