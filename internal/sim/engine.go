// Package sim provides the discrete-event simulation engine that drives
// every timed component in the QEI reproduction: the out-of-order core
// model, the cache hierarchy, the NoC, and the accelerator itself.
//
// The engine maintains a global cycle counter and a priority queue of
// scheduled events. Events scheduled for the same cycle fire in the order
// they were scheduled, which keeps runs fully deterministic.
//
// The queue is an index-free binary min-heap over scheduledEvent VALUES
// (no per-event boxing, no container/heap interface dispatch), plus a
// FIFO ring that absorbs the very common After(0)/same-cycle case
// without touching the heap at all. Engines are reusable across jobs
// via Reset, so steady-state scheduling performs zero allocations once
// the backing arrays have grown to the schedule's high-water mark.
package sim

import "fmt"

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a particular cycle.
type Event func()

type scheduledEvent struct {
	at  Cycle
	seq uint64 // tie-breaker: schedule order
	fn  Event
}

// eventLess orders events by (cycle, schedule order): the FIFO
// tie-break on seq is what makes runs deterministic.
func eventLess(a, b scheduledEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a deterministic discrete-event simulator.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now   Cycle
	seq   uint64
	fired uint64
	// heap holds events with at >= now in a value min-heap.
	heap []scheduledEvent
	// ring holds events scheduled for the current cycle (After(0) and
	// friends) in FIFO order; ringHead indexes the next entry to fire.
	// Every ring entry has at == now and a seq greater than any
	// same-cycle entry in the heap, so the merge in next() stays a pure
	// (at, seq) comparison.
	ring     []scheduledEvent
	ringHead int
}

// NewEngine returns an engine positioned at cycle 0 with no pending events.
func NewEngine() *Engine { return &Engine{} }

// Reset returns the engine to cycle 0 with no pending events, keeping
// the queue's backing arrays so a reused engine schedules without
// allocating. Pending events (if any) are discarded.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.fired = 0
	clear(e.heap) // drop closure references
	e.heap = e.heap[:0]
	clear(e.ring)
	e.ring = e.ring[:0]
	e.ringHead = 0
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting to execute.
func (e *Engine) Pending() int { return len(e.heap) + len(e.ring) - e.ringHead }

// At schedules fn to run at absolute cycle at. Scheduling in the past
// (before Now) panics: it would silently corrupt causality.
func (e *Engine) At(at Cycle, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now (%d)", at, e.now))
	}
	ev := scheduledEvent{at: at, seq: e.seq, fn: fn}
	e.seq++
	if at == e.now {
		e.ring = append(e.ring, ev)
		return
	}
	e.push(ev)
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn Event) {
	e.At(e.now+delay, fn)
}

// push inserts ev into the value heap (sift-up).
func (e *Engine) push(ev scheduledEvent) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.heap = h
}

// popHeap removes and returns the heap minimum (sift-down).
func (e *Engine) popHeap() scheduledEvent {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = scheduledEvent{} // drop closure reference
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && eventLess(h[r], h[l]) {
			m = r
		}
		if !eventLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	e.heap = h
	return top
}

// next peeks at the earliest pending event without removing it. The
// second return is false when nothing is pending.
func (e *Engine) next() (scheduledEvent, bool) {
	if e.ringHead < len(e.ring) {
		// Ring entries are at the current cycle, so nothing in the heap
		// can precede them except a same-cycle event with a smaller seq.
		if len(e.heap) > 0 && eventLess(e.heap[0], e.ring[e.ringHead]) {
			return e.heap[0], true
		}
		return e.ring[e.ringHead], true
	}
	if len(e.heap) > 0 {
		return e.heap[0], true
	}
	return scheduledEvent{}, false
}

// pop removes and returns the earliest pending event.
func (e *Engine) pop() scheduledEvent {
	if e.ringHead < len(e.ring) {
		if len(e.heap) > 0 && eventLess(e.heap[0], e.ring[e.ringHead]) {
			return e.popHeap()
		}
		ev := e.ring[e.ringHead]
		e.ring[e.ringHead] = scheduledEvent{} // drop closure reference
		e.ringHead++
		if e.ringHead == len(e.ring) {
			e.ring = e.ring[:0]
			e.ringHead = 0
		}
		return ev
	}
	return e.popHeap()
}

// Step executes the earliest pending event, advancing Now to its cycle.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.Pending() == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue is empty and returns the final cycle.
func (e *Engine) Run() Cycle {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with cycle <= limit. Events beyond the limit
// remain queued. It returns the engine's cycle after the last executed
// event (or limit if the engine advanced past it with nothing to do).
func (e *Engine) RunUntil(limit Cycle) Cycle {
	for {
		ev, ok := e.next()
		if !ok || ev.at > limit {
			break
		}
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
	return e.now
}

// RunFor executes the next n events or until the queue drains.
func (e *Engine) RunFor(n int) {
	for i := 0; i < n && e.Step(); i++ {
	}
}

// Advance moves the clock forward without executing events. It panics if
// pending events would be skipped, or if target is in the past.
func (e *Engine) Advance(target Cycle) {
	if target < e.now {
		panic(fmt.Sprintf("sim: cannot advance backwards from %d to %d", e.now, target))
	}
	if ev, ok := e.next(); ok && ev.at < target {
		panic(fmt.Sprintf("sim: advancing to %d would skip event at %d", target, ev.at))
	}
	e.now = target
}
