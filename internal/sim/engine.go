// Package sim provides the discrete-event simulation engine that drives
// every timed component in the QEI reproduction: the out-of-order core
// model, the cache hierarchy, the NoC, and the accelerator itself.
//
// The engine maintains a global cycle counter and a priority queue of
// scheduled events. Events scheduled for the same cycle fire in the order
// they were scheduled, which keeps runs fully deterministic.
package sim

import (
	"container/heap"
	"fmt"
)

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a particular cycle.
type Event func()

type scheduledEvent struct {
	at    Cycle
	seq   uint64 // tie-breaker: schedule order
	fn    Event
	index int // heap index
}

type eventHeap []*scheduledEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*scheduledEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulator.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now    Cycle
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewEngine returns an engine positioned at cycle 0 with no pending events.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting to execute.
func (e *Engine) Pending() int { return e.events.Len() }

// At schedules fn to run at absolute cycle at. Scheduling in the past
// (before Now) panics: it would silently corrupt causality.
func (e *Engine) At(at Cycle, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now (%d)", at, e.now))
	}
	ev := &scheduledEvent{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn Event) {
	e.At(e.now+delay, fn)
}

// Step executes the earliest pending event, advancing Now to its cycle.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*scheduledEvent)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue is empty and returns the final cycle.
func (e *Engine) Run() Cycle {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with cycle <= limit. Events beyond the limit
// remain queued. It returns the engine's cycle after the last executed
// event (or limit if the engine advanced past it with nothing to do).
func (e *Engine) RunUntil(limit Cycle) Cycle {
	for e.events.Len() > 0 && e.events[0].at <= limit {
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
	return e.now
}

// RunFor executes the next n events or until the queue drains.
func (e *Engine) RunFor(n int) {
	for i := 0; i < n && e.Step(); i++ {
	}
}

// Advance moves the clock forward without executing events. It panics if
// pending events would be skipped, or if target is in the past.
func (e *Engine) Advance(target Cycle) {
	if target < e.now {
		panic(fmt.Sprintf("sim: cannot advance backwards from %d to %d", e.now, target))
	}
	if e.events.Len() > 0 && e.events[0].at < target {
		panic(fmt.Sprintf("sim: advancing to %d would skip event at %d", target, e.events[0].at))
	}
	e.now = target
}
