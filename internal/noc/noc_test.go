package noc

import (
	"testing"
	"testing/quick"
)

func TestCoordRoundTrip(t *testing.T) {
	m := New(DefaultConfig())
	for s := Stop(0); int(s) < m.Stops(); s++ {
		c, r := m.Coord(s)
		if m.StopAt(c, r) != s {
			t.Fatalf("StopAt(Coord(%d)) = %d", s, m.StopAt(c, r))
		}
	}
}

func TestHopsManhattan(t *testing.T) {
	m := New(DefaultConfig())
	a := m.StopAt(0, 0)
	b := m.StopAt(5, 3)
	if got := m.Hops(a, b); got != 8 {
		t.Fatalf("Hops corner-to-corner = %d, want 8", got)
	}
	if got := m.Hops(a, a); got != 0 {
		t.Fatalf("Hops self = %d, want 0", got)
	}
}

func TestLatencyComposition(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	a, b := m.StopAt(0, 0), m.StopAt(2, 1)
	// 3 hops, 4 routers with the default 1+1 cycle costs.
	want := uint64(3)*cfg.HopLatency + uint64(4)*cfg.RouterLatency
	if got := m.Latency(a, b); got != want {
		t.Fatalf("Latency = %d, want %d", got, want)
	}
	if got := m.RoundTrip(a, b); got != 2*want {
		t.Fatalf("RoundTrip = %d, want %d", got, 2*want)
	}
}

func TestLocalDeliveryPaysRouter(t *testing.T) {
	m := New(DefaultConfig())
	if got := m.Latency(3, 3); got != m.Config().RouterLatency {
		t.Fatalf("self latency = %d, want %d", got, m.Config().RouterLatency)
	}
}

func TestSendAccountsTraffic(t *testing.T) {
	m := New(DefaultConfig())
	a, b := m.StopAt(0, 0), m.StopAt(3, 0)
	m.Send(a, b, 64)
	m.ObserveWindow(100)
	peak, total := m.LinkUtilization()
	if total != 3*64 { // three links on the row
		t.Fatalf("total bytes = %d, want %d", total, 3*64)
	}
	wantPeak := 64.0 / (100 * m.Config().LinkBytesPerCycle)
	if peak != wantPeak {
		t.Fatalf("peak utilization = %g, want %g", peak, wantPeak)
	}
}

func TestXYRoutingDeterministic(t *testing.T) {
	m := New(DefaultConfig())
	a, b := m.StopAt(1, 1), m.StopAt(4, 3)
	m.Send(a, b, 10)
	hot := m.Hotspots(100)
	// XY: traverse columns first at row 1, then down column 4.
	if len(hot) != m.Hops(a, b) {
		t.Fatalf("links touched = %d, want %d", len(hot), m.Hops(a, b))
	}
	for _, h := range hot {
		if h.Bytes != 10 {
			t.Fatalf("link %d->%d carried %d bytes, want 10", h.From, h.To, h.Bytes)
		}
	}
}

func TestHotspotsOrdering(t *testing.T) {
	m := New(DefaultConfig())
	m.Send(m.StopAt(0, 0), m.StopAt(1, 0), 100) // one link, 100 B
	m.Send(m.StopAt(2, 0), m.StopAt(3, 0), 40)  // one link, 40 B
	hot := m.Hotspots(2)
	if len(hot) != 2 || hot[0].Bytes != 100 || hot[1].Bytes != 40 {
		t.Fatalf("hotspots = %+v", hot)
	}
}

func TestResetTraffic(t *testing.T) {
	m := New(DefaultConfig())
	m.Send(0, 5, 64)
	m.ObserveWindow(10)
	m.ResetTraffic()
	peak, total := m.LinkUtilization()
	if peak != 0 || total != 0 {
		t.Fatalf("after reset: peak=%g total=%d", peak, total)
	}
}

func TestMeanUtilization(t *testing.T) {
	cfg := Config{Cols: 2, Rows: 1, HopLatency: 1, RouterLatency: 1, LinkBytesPerCycle: 10}
	m := New(cfg)
	m.Send(0, 1, 50)
	m.ObserveWindow(10)
	// 2 directed links, capacity 10 cycles * 10 B * 2 = 200; 50 moved.
	if got := m.MeanUtilization(); got != 0.25 {
		t.Fatalf("MeanUtilization = %g, want 0.25", got)
	}
}

// Property: latency is symmetric and satisfies the triangle inequality
// (true for Manhattan distance with uniform per-hop costs).
func TestPropertyLatencyMetric(t *testing.T) {
	m := New(DefaultConfig())
	n := m.Stops()
	f := func(ai, bi, ci uint8) bool {
		a := Stop(int(ai) % n)
		b := Stop(int(bi) % n)
		c := Stop(int(ci) % n)
		if m.Latency(a, b) != m.Latency(b, a) {
			return false
		}
		// Subtract the injection-router constant before checking the
		// triangle inequality on the distance part.
		rl := m.Config().RouterLatency
		d := func(x, y Stop) uint64 { return m.Latency(x, y) - rl }
		return d(a, c) <= d(a, b)+d(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: a Send touches exactly Hops(a,b) links and conserves bytes.
func TestPropertySendConservation(t *testing.T) {
	f := func(ai, bi uint8, payload uint16) bool {
		m := New(DefaultConfig())
		n := m.Stops()
		a := Stop(int(ai) % n)
		b := Stop(int(bi) % n)
		m.Send(a, b, uint64(payload))
		m.ObserveWindow(1)
		_, total := m.LinkUtilization()
		return total == uint64(m.Hops(a, b))*uint64(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
