package noc

import (
	"qei/internal/metrics"
	"qei/internal/trace"
)

// RegisterMetrics publishes mesh traffic counters under r, pull-based:
// total transfers, total bytes across all links, and the mean link
// utilization in milli-units (fixed-point, so snapshots stay uint64 and
// merge deterministically).
func (m *Mesh) RegisterMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.RegisterFunc("sends", func() uint64 { return m.sends })
	r.RegisterFunc("total_bytes", m.TotalBytes)
	r.RegisterFunc("mean_util_milli", func() uint64 {
		return uint64(m.MeanUtilization() * 1000)
	})
}

// SetTracer attaches the unified tracer; SendAt emits transfer spans on
// it. A nil tracer keeps transfers trace-free.
func (m *Mesh) SetTracer(tr *trace.Tracer) { m.tr = tr }

// SendAt is Send with the injection cycle threaded through: the transfer
// appears in the trace as an "xfer" span on the NoC track, with the
// source stop as the tid so concurrent transfers from different stops
// stay on separate lanes.
func (m *Mesh) SendAt(a, b Stop, bytes, at uint64) uint64 {
	lat := m.Send(a, b, bytes)
	m.tr.Span("noc", "xfer", at, at+lat, trace.PidNoC, int(a), nil)
	return lat
}
