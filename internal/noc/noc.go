// Package noc models the on-chip mesh network connecting core tiles, LLC
// slices (via their CHAs), memory controllers, and — in the Device-based
// integration schemes — a centralized accelerator stop.
//
// The model is latency- and bandwidth-oriented rather than flit-accurate:
// a transfer between two stops costs a per-hop latency plus a router
// latency, and every link it crosses accrues the transferred bytes so that
// hotspot and utilization analyses (Sec. V, "each QEI accelerator can
// saturate as much as 8% of the mesh NoC bandwidth") can be reproduced.
// XY dimension-ordered routing keeps paths deterministic.
package noc

import (
	"fmt"
	"sort"

	"qei/internal/faultinject"
	"qei/internal/trace"
)

// Stop identifies a network stop (tile) on the mesh.
type Stop int

// Config describes the mesh geometry and timing.
type Config struct {
	// Cols and Rows give the mesh dimensions. Stops are numbered
	// row-major: stop = row*Cols + col.
	Cols, Rows int
	// HopLatency is the cycles to traverse one link.
	HopLatency uint64
	// RouterLatency is the cycles spent in each router on the path
	// (including the injection router).
	RouterLatency uint64
	// LinkBytesPerCycle is the bandwidth of one mesh link in bytes/cycle.
	LinkBytesPerCycle float64
}

// DefaultConfig is a 6x4 mesh (24 stops) approximating a Skylake-SP die,
// 1 cycle per hop, 1 cycle per router, 32 B/cycle links.
func DefaultConfig() Config {
	return Config{
		Cols:              6,
		Rows:              4,
		HopLatency:        1,
		RouterLatency:     1,
		LinkBytesPerCycle: 32,
	}
}

// Directed-link direction indices for the flat traffic table: the link
// leaving stop s toward its east/west/south/north neighbour lives at
// linkBytes[s*linkDirs+dir].
const (
	dirEast = iota
	dirWest
	dirSouth
	dirNorth
	linkDirs
)

// Mesh is a 2-D mesh NoC.
//
// Per-link traffic lives in a flat array indexed by (stop, direction)
// rather than a map keyed by stop pairs: Send is on the path of every
// simulated cache miss, and accounting a route is then pure index
// arithmetic with no per-transfer allocation.
type Mesh struct {
	cfg       Config
	linkBytes []uint64
	// totalCycles tracks the window over which utilization is measured.
	windowCycles uint64
	// sends counts transfers for the metrics registry.
	sends uint64
	// tr receives transfer spans from SendAt; nil keeps Send trace-free.
	tr *trace.Tracer
	// fi may delay or drop transfers (see SetFaultInjector); nil
	// disables injection.
	fi *faultinject.Injector
	// drops counts transfers that were dropped and retransmitted.
	drops uint64
}

// New creates a mesh with the given configuration.
func New(cfg Config) *Mesh {
	if cfg.Cols <= 0 || cfg.Rows <= 0 {
		panic("noc: mesh dimensions must be positive")
	}
	return &Mesh{cfg: cfg, linkBytes: make([]uint64, cfg.Cols*cfg.Rows*linkDirs)}
}

// neighbour returns the stop adjacent to s in direction dir, or -1 when
// the link would leave the mesh.
func (m *Mesh) neighbour(s Stop, dir int) Stop {
	c, r := m.Coord(s)
	switch dir {
	case dirEast:
		c++
	case dirWest:
		c--
	case dirSouth:
		r++
	default:
		r--
	}
	if c < 0 || c >= m.cfg.Cols || r < 0 || r >= m.cfg.Rows {
		return -1
	}
	return Stop(r*m.cfg.Cols + c)
}

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Stops returns the number of stops on the mesh.
func (m *Mesh) Stops() int { return m.cfg.Cols * m.cfg.Rows }

// Coord returns the (col, row) coordinates of a stop.
func (m *Mesh) Coord(s Stop) (col, row int) {
	if int(s) < 0 || int(s) >= m.Stops() {
		panic(fmt.Sprintf("noc: stop %d out of range [0,%d)", s, m.Stops()))
	}
	return int(s) % m.cfg.Cols, int(s) / m.cfg.Cols
}

// StopAt returns the stop at (col, row).
func (m *Mesh) StopAt(col, row int) Stop {
	if col < 0 || col >= m.cfg.Cols || row < 0 || row >= m.cfg.Rows {
		panic(fmt.Sprintf("noc: coordinate (%d,%d) out of range", col, row))
	}
	return Stop(row*m.cfg.Cols + col)
}

// Hops returns the Manhattan distance between two stops.
func (m *Mesh) Hops(a, b Stop) int {
	ac, ar := m.Coord(a)
	bc, br := m.Coord(b)
	return abs(ac-bc) + abs(ar-br)
}

// Latency returns the one-way latency in cycles for a message from a to b.
// A message to the local stop still pays one router traversal.
func (m *Mesh) Latency(a, b Stop) uint64 {
	hops := uint64(m.Hops(a, b))
	routers := hops + 1
	return hops*m.cfg.HopLatency + routers*m.cfg.RouterLatency
}

// RoundTrip returns the request+response latency between two stops.
func (m *Mesh) RoundTrip(a, b Stop) uint64 {
	return 2 * m.Latency(a, b)
}

// accountRoute walks the XY route from a to b, adding bytes to every
// directed link it crosses. No route slice is materialized: the walk is
// coordinate arithmetic over the flat traffic table.
func (m *Mesh) accountRoute(a, b Stop, bytes uint64) {
	ac, ar := m.Coord(a)
	bc, br := m.Coord(b)
	c, r := ac, ar
	for c != bc {
		s := r*m.cfg.Cols + c
		if c < bc {
			m.linkBytes[s*linkDirs+dirEast] += bytes
			c++
		} else {
			m.linkBytes[s*linkDirs+dirWest] += bytes
			c--
		}
	}
	for r != br {
		s := r*m.cfg.Cols + c
		if r < br {
			m.linkBytes[s*linkDirs+dirSouth] += bytes
			r++
		} else {
			m.linkBytes[s*linkDirs+dirNorth] += bytes
			r--
		}
	}
}

// Send accounts a transfer of bytes from a to b along the XY route and
// returns its one-way latency. Timing is returned, not scheduled; callers
// compose it with the sim engine.
func (m *Mesh) Send(a, b Stop, bytes uint64) uint64 {
	m.sends++
	m.accountRoute(a, b, bytes)
	lat := m.Latency(a, b)
	// Injected congestion stretches this transfer by a few cycles; an
	// injected drop forces a full retransmission — the message pays the
	// path twice (link traffic included) plus a detection timeout.
	lat += m.fi.NoCDelayCycles()
	if m.fi.NoCDrop() {
		m.drops++
		m.accountRoute(a, b, bytes)
		lat = lat*2 + dropTimeout
	}
	return lat
}

// dropTimeout is the fixed detection delay before a dropped mesh
// message is retransmitted.
const dropTimeout = 16

// Drops reports how many transfers were dropped and retransmitted by
// fault injection.
func (m *Mesh) Drops() uint64 { return m.drops }

// SetFaultInjector attaches the fault-injection harness; while fi is
// armed, transfers may be delayed or dropped-and-retransmitted. A nil
// injector keeps transfer timing exact.
func (m *Mesh) SetFaultInjector(fi *faultinject.Injector) { m.fi = fi }

// ObserveWindow extends the utilization-measurement window to cycles.
func (m *Mesh) ObserveWindow(cycles uint64) {
	if cycles > m.windowCycles {
		m.windowCycles = cycles
	}
}

// TotalBytes returns the bytes moved across all links since the last
// reset, independent of the observation window.
func (m *Mesh) TotalBytes() uint64 {
	var total uint64
	for _, b := range m.linkBytes {
		total += b
	}
	return total
}

// LinkUtilization returns the utilization (0..1+) of the busiest link over
// the observed window, and the total bytes moved across all links.
// A zero observation window yields zero utilization (no divide).
func (m *Mesh) LinkUtilization() (peak float64, totalBytes uint64) {
	if m.windowCycles == 0 {
		return 0, 0
	}
	capacity := float64(m.windowCycles) * m.cfg.LinkBytesPerCycle
	if capacity == 0 {
		return 0, m.TotalBytes()
	}
	for _, b := range m.linkBytes {
		totalBytes += b
		if u := float64(b) / capacity; u > peak {
			peak = u
		}
	}
	return peak, totalBytes
}

// MeanUtilization returns the average utilization across all physical
// links of the mesh (including idle ones).
func (m *Mesh) MeanUtilization() float64 {
	if m.windowCycles == 0 {
		return 0
	}
	nLinks := 2 * (m.cfg.Rows*(m.cfg.Cols-1) + m.cfg.Cols*(m.cfg.Rows-1))
	if nLinks == 0 {
		return 0
	}
	capacity := float64(m.windowCycles) * m.cfg.LinkBytesPerCycle * float64(nLinks)
	if capacity == 0 {
		return 0
	}
	return float64(m.TotalBytes()) / capacity
}

// HotspotReport lists the n busiest links, descending by bytes.
type HotspotEntry struct {
	From, To Stop
	Bytes    uint64
}

// Hotspots returns the n busiest links, ordered by a total key —
// (bytes desc, from, to) — under a stable sort, so the report is fully
// deterministic regardless of traversal or sort-internals order.
func (m *Mesh) Hotspots(n int) []HotspotEntry {
	var entries []HotspotEntry
	for i, b := range m.linkBytes {
		if b == 0 {
			continue // untouched link: never carried a transfer
		}
		from := Stop(i / linkDirs)
		to := m.neighbour(from, i%linkDirs)
		if to < 0 {
			continue
		}
		entries = append(entries, HotspotEntry{From: from, To: to, Bytes: b})
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Bytes != entries[j].Bytes {
			return entries[i].Bytes > entries[j].Bytes
		}
		if entries[i].From != entries[j].From {
			return entries[i].From < entries[j].From
		}
		return entries[i].To < entries[j].To
	})
	if n < len(entries) {
		entries = entries[:n]
	}
	return entries
}

// ResetTraffic clears accumulated traffic counters (geometry unchanged).
func (m *Mesh) ResetTraffic() {
	clear(m.linkBytes)
	m.windowCycles = 0
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
