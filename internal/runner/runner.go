// Package runner is the deterministic worker-pool harness that fans
// independent simulation jobs across OS threads. Every experiment point
// (one workload × scheme × ablation configuration) builds its own
// machine.Machine, so jobs share no mutable state and can execute in any
// interleaving; the pool collects results strictly by input index, which
// makes the rendered output of a parallel run byte-identical to the
// serial run. The harness is the substrate for qei.RunAll, the parallel
// experiment CLIs, and every future scaling study (sharding, open-loop
// load generation, multi-backend).
package runner

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested parallelism: n when positive, else
// GOMAXPROCS (the number of OS threads Go will actually run on).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(ctx, i, items[i]) for every item on up to workers
// goroutines and returns the results in input order. workers <= 0 uses
// GOMAXPROCS. The first failing job (lowest input index) determines the
// returned error, and its failure cancels the context handed to jobs
// that have not completed, so long sweeps stop promptly. Jobs must be
// independent: fn owns everything it touches except read-only inputs.
func Map[I, O any](ctx context.Context, workers int, items []I, fn func(ctx context.Context, i int, item I) (O, error)) ([]O, error) {
	n := len(items)
	if n == 0 {
		return nil, ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]O, n)
	if workers == 1 {
		// Serial fast path: identical semantics, no goroutines.
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			o, err := fn(ctx, i, item)
			if err != nil {
				return nil, err
			}
			out[i] = o
		}
		return out, nil
	}

	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := jctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				o, err := fn(jctx, i, items[i])
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				out[i] = o
			}
		}()
	}
	wg.Wait()

	// Deterministic error selection: the lowest-index job error wins,
	// preferring real failures over cancellations it caused.
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return nil, err
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return out, nil
}
