package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 4, 8, 200} {
		out, err := Map(context.Background(), workers, items,
			func(_ context.Context, i int, item int) (int, error) {
				return item * item, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	items := []string{"a", "bb", "ccc", "dddd", "eeeee", "ffffff", "g"}
	run := func(workers int) []int {
		out, err := Map(context.Background(), workers, items,
			func(_ context.Context, i int, s string) (int, error) {
				// Uneven job durations shuffle completion order.
				time.Sleep(time.Duration(len(s)%3) * time.Millisecond)
				return len(s) + i, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, w := range []int{2, 4, 7} {
		par := run(w)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: out[%d] = %d, serial %d", w, i, par[i], serial[i])
			}
		}
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	items := make([]int, 32)
	_, err := Map(context.Background(), 8, items,
		func(_ context.Context, i int, _ int) (int, error) {
			switch i {
			case 3:
				return 0, errLow
			case 20:
				return 0, errHigh
			}
			return i, nil
		})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want %v", err, errLow)
	}
}

func TestMapErrorCancelsRemainingJobs(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	items := make([]int, 1000)
	_, err := Map(context.Background(), 4, items,
		func(ctx context.Context, i int, _ int) (int, error) {
			started.Add(1)
			if i == 0 {
				return 0, boom
			}
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Cancellation must have skipped the bulk of the queue: skipped jobs
	// record the context error without invoking fn.
	if n := started.Load(); n == int64(len(items)) {
		t.Fatalf("all %d jobs ran despite cancellation", n)
	}
}

func TestMapParentContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 4, []int{1, 2, 3},
		func(context.Context, int, int) (int, error) { return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapEmptyAndWorkersDefault(t *testing.T) {
	out, err := Map(context.Background(), 0, nil,
		func(context.Context, int, int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("empty map: %v %v", out, err)
	}
	if w := Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", w)
	}
	if w := Workers(3); w != 3 {
		t.Fatalf("Workers(3) = %d", w)
	}
}

func TestMapConcurrencyBound(t *testing.T) {
	var inFlight, peak atomic.Int64
	items := make([]int, 64)
	_, err := Map(context.Background(), 4, items,
		func(_ context.Context, i int, _ int) (int, error) {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			inFlight.Add(-1)
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 4 {
		t.Fatalf("peak in-flight %d exceeds 4 workers", p)
	}
}

func TestMapWrappedCancellationStillReportsRealError(t *testing.T) {
	real := fmt.Errorf("point 1: %w", errors.New("mismatch"))
	_, err := Map(context.Background(), 2, []int{0, 1},
		func(ctx context.Context, i int, _ int) (int, error) {
			if i == 1 {
				time.Sleep(5 * time.Millisecond) // let job 0 park first
				return 0, real
			}
			// Job 0 observes the cancellation job 1 caused and wraps it;
			// its lower index must not shadow the real failure.
			<-ctx.Done()
			return 0, fmt.Errorf("job %d: %w", i, ctx.Err())
		})
	if !errors.Is(err, real) {
		t.Fatalf("err = %v, want the real failure", err)
	}
}
