// Package tlb models translation lookaside buffers and the page-walk cost
// paid on a miss.
//
// Address translation is central to the paper's argument (Sec. II-B,
// Challenge 3, and Sec. V): an accelerator needs *some* translation path,
// and the choice — dedicated TLB per CHA, round trips to the core's MMU,
// or sharing the core's L2-TLB — drives both performance (Fig. 7/8) and
// area (Tab. III). This package provides the set-associative TLB used in
// all of those configurations.
package tlb

import (
	"fmt"

	"qei/internal/faultinject"
	"qei/internal/mem"
	"qei/internal/trace"
)

// Config describes a TLB's geometry and timing.
type Config struct {
	Entries    int    // total entries
	Ways       int    // associativity
	HitLatency uint64 // cycles for a hit
}

// L2TLBConfig matches the paper's 1024-entry second-level TLB (the size it
// also gives the dedicated CHA TLBs in the CHA-TLB scheme).
func L2TLBConfig() Config {
	return Config{Entries: 1024, Ways: 8, HitLatency: 7}
}

// L1TLBConfig is a small first-level data TLB.
func L1TLBConfig() Config {
	return Config{Entries: 64, Ways: 4, HitLatency: 1}
}

// TLB is a set-associative translation cache with true-LRU replacement.
//
// Tag and LRU state are flat arrays indexed set*ways+way, and the set
// index is an AND when the set count is a power of two (every
// configuration here) — same layout rationale as cache.Cache.
type TLB struct {
	cfg      Config
	sets     int
	ways     int
	setMask  uint64
	setsPow2 bool
	tags     []uint64 // virtual page numbers; ^0 = invalid
	lru      []uint64 // higher = more recent
	stamp    uint64
	hits     uint64
	misses   uint64
	flushes  uint64
	// fi may force a shootdown-flush ahead of a lookup (see
	// SetFaultInjector); nil disables injection.
	fi *faultinject.Injector
}

// New builds a TLB from cfg. Entries must be divisible by Ways.
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic(fmt.Sprintf("tlb: bad geometry %d entries / %d ways", cfg.Entries, cfg.Ways))
	}
	sets := cfg.Entries / cfg.Ways
	t := &TLB{cfg: cfg, sets: sets, ways: cfg.Ways}
	if sets&(sets-1) == 0 {
		t.setsPow2 = true
		t.setMask = uint64(sets - 1)
	}
	t.tags = make([]uint64, cfg.Entries)
	t.lru = make([]uint64, cfg.Entries)
	for i := range t.tags {
		t.tags[i] = ^uint64(0)
	}
	return t
}

func (t *TLB) setIndex(vp uint64) uint64 {
	if t.setsPow2 {
		return vp & t.setMask
	}
	return vp % uint64(t.sets)
}

// Config returns the TLB geometry.
func (t *TLB) Config() Config { return t.cfg }

// SetFaultInjector attaches the fault-injection harness; while fi is
// armed, a lookup may be preceded by an injected shootdown flush. A nil
// injector keeps lookups exact and free.
func (t *TLB) SetFaultInjector(fi *faultinject.Injector) { t.fi = fi }

// Lookup checks whether the page containing a is cached, updating LRU and
// statistics. It returns hit=true and the hit latency on a hit.
func (t *TLB) Lookup(a mem.VAddr) (hit bool, latency uint64) {
	// An injected shootdown (remote munmap IPI) lands just before the
	// probe: the whole TLB is invalidated and this lookup must miss.
	if t.fi.TLBShootdown() {
		t.Flush()
	}
	vp := a.Page()
	base := int(t.setIndex(vp)) * t.ways
	for i, tag := range t.tags[base : base+t.ways] {
		if tag == vp {
			t.stamp++
			t.lru[base+i] = t.stamp
			t.hits++
			return true, t.cfg.HitLatency
		}
	}
	t.misses++
	return false, t.cfg.HitLatency
}

// Insert caches the translation for the page containing a, evicting the
// least-recently-used way of its set if needed.
func (t *TLB) Insert(a mem.VAddr) {
	vp := a.Page()
	base := int(t.setIndex(vp)) * t.ways
	victim := 0
	oldest := ^uint64(0)
	for i, tag := range t.tags[base : base+t.ways] {
		if tag == vp {
			t.stamp++
			t.lru[base+i] = t.stamp
			return
		}
		if t.lru[base+i] < oldest {
			oldest = t.lru[base+i]
			victim = i
		}
	}
	t.stamp++
	t.tags[base+victim] = vp
	t.lru[base+victim] = t.stamp
}

// Flush invalidates every entry (context switch / interrupt handling).
func (t *TLB) Flush() {
	for i := range t.tags {
		t.tags[i] = ^uint64(0)
		t.lru[i] = 0
	}
	t.flushes++
}

// Stats reports accumulated hit/miss counts.
func (t *TLB) Stats() (hits, misses, flushes uint64) {
	return t.hits, t.misses, t.flushes
}

// HitRate returns hits/(hits+misses), or 0 before any lookups.
func (t *TLB) HitRate() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.hits) / float64(total)
}

// Walker models a hardware page-table walker. A walk costs one memory
// access per level; the per-access latency is a parameter because walks
// hit in different places (page-walk caches, LLC) in real machines.
type Walker struct {
	as           *mem.AddressSpace
	perLevel     uint64
	walks        uint64
	faults       uint64
	totalLatency uint64

	// tr (with pid/tid, see SetTracer) receives page-walk spans from
	// WalkAt; nil keeps walks trace-free.
	tr  *trace.Tracer
	pid int
	tid int
}

// NewWalker creates a walker over as with the given per-level access cost.
func NewWalker(as *mem.AddressSpace, perLevelLatency uint64) *Walker {
	return &Walker{as: as, perLevel: perLevelLatency}
}

// Walk translates a, returning the physical address, the walk latency,
// and a fault if the page is unmapped (a faulting walk still traverses
// all levels before discovering the hole). WalkAt is the cycle-stamped
// variant that also emits a trace span.
func (w *Walker) Walk(a mem.VAddr) (mem.PAddr, uint64, error) {
	return w.walk(a)
}

func (w *Walker) walk(a mem.VAddr) (mem.PAddr, uint64, error) {
	w.walks++
	lat := uint64(w.as.WalkLevels()) * w.perLevel
	w.totalLatency += lat
	pa, err := w.as.Translate(a)
	if err != nil {
		w.faults++
		return 0, lat, err
	}
	return pa, lat, nil
}

// Stats reports walk counts, faults, and cumulative walk cycles.
func (w *Walker) Stats() (walks, faults, totalLatency uint64) {
	return w.walks, w.faults, w.totalLatency
}

// Hierarchy is a two-level TLB (L1 + shared L2) in front of a walker —
// the translation path of a core, which QEI's Core-integrated scheme taps
// at the L2-TLB (Sec. V-A).
type Hierarchy struct {
	L1     *TLB
	L2     *TLB
	Walker *Walker
}

// NewHierarchy builds the standard core translation path.
func NewHierarchy(as *mem.AddressSpace, perLevelWalk uint64) *Hierarchy {
	return NewHierarchyGeom(as, perLevelWalk, L1TLBConfig(), L2TLBConfig())
}

// NewHierarchyGeom is NewHierarchy with explicit TLB geometry — the
// materialization path for declarative machine descriptions (hwdesc).
func NewHierarchyGeom(as *mem.AddressSpace, perLevelWalk uint64, l1, l2 Config) *Hierarchy {
	return &Hierarchy{
		L1:     New(l1),
		L2:     New(l2),
		Walker: NewWalker(as, perLevelWalk),
	}
}

// Translate resolves a through L1 → L2 → walker, filling upper levels on
// the way back. It returns the physical address and total latency.
func (h *Hierarchy) Translate(a mem.VAddr) (mem.PAddr, uint64, error) {
	if hit, lat := h.L1.Lookup(a); hit {
		pa, err := h.Walker.as.Translate(a)
		return pa, lat, err
	}
	lat := h.L1.Config().HitLatency // L1 probe cost on miss
	if hit, l2lat := h.L2.Lookup(a); hit {
		h.L1.Insert(a)
		pa, err := h.Walker.as.Translate(a)
		return pa, lat + l2lat, err
	}
	lat += h.L2.Config().HitLatency
	pa, wlat, err := h.Walker.Walk(a)
	lat += wlat
	if err != nil {
		return 0, lat, err
	}
	h.L2.Insert(a)
	h.L1.Insert(a)
	return pa, lat, nil
}

// TranslateL2 resolves a through the L2 TLB only (the accelerator's path
// in the Core-integrated scheme — it shares the L2-TLB but not the L1).
func (h *Hierarchy) TranslateL2(a mem.VAddr) (mem.PAddr, uint64, error) {
	if hit, lat := h.L2.Lookup(a); hit {
		pa, err := h.Walker.as.Translate(a)
		return pa, lat, err
	}
	lat := h.L2.Config().HitLatency
	pa, wlat, err := h.Walker.Walk(a)
	lat += wlat
	if err != nil {
		return 0, lat, err
	}
	h.L2.Insert(a)
	return pa, lat, nil
}

// Flush clears both TLB levels.
func (h *Hierarchy) Flush() {
	h.L1.Flush()
	h.L2.Flush()
}

// SetFaultInjector attaches the fault-injection harness to both TLB
// levels (the walker is exact: a page walk reads architected page
// tables, which the fault model leaves intact).
func (h *Hierarchy) SetFaultInjector(fi *faultinject.Injector) {
	h.L1.SetFaultInjector(fi)
	h.L2.SetFaultInjector(fi)
}
