package tlb

import (
	"testing"
	"testing/quick"

	"qei/internal/mem"
)

func vaddr(page uint64) mem.VAddr { return mem.VAddr(page << mem.PageShift) }

func TestMissThenHit(t *testing.T) {
	tl := New(Config{Entries: 16, Ways: 4, HitLatency: 2})
	a := vaddr(5)
	if hit, _ := tl.Lookup(a); hit {
		t.Fatal("fresh TLB should miss")
	}
	tl.Insert(a)
	hit, lat := tl.Lookup(a)
	if !hit || lat != 2 {
		t.Fatalf("after Insert: hit=%v lat=%d", hit, lat)
	}
	hits, misses, _ := tl.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits %d misses", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// Single set of 2 ways: pages with same set index collide.
	tl := New(Config{Entries: 2, Ways: 2, HitLatency: 1})
	tl.Insert(vaddr(0))
	tl.Insert(vaddr(1))
	// Touch page 0 so page 1 becomes LRU.
	tl.Lookup(vaddr(0))
	tl.Insert(vaddr(2)) // evicts page 1
	if hit, _ := tl.Lookup(vaddr(1)); hit {
		t.Fatal("page 1 should have been evicted (LRU)")
	}
	if hit, _ := tl.Lookup(vaddr(0)); !hit {
		t.Fatal("page 0 should survive")
	}
	if hit, _ := tl.Lookup(vaddr(2)); !hit {
		t.Fatal("page 2 should be present")
	}
}

func TestFlushClearsAll(t *testing.T) {
	tl := New(L1TLBConfig())
	for p := uint64(0); p < 32; p++ {
		tl.Insert(vaddr(p))
	}
	tl.Flush()
	for p := uint64(0); p < 32; p++ {
		if hit, _ := tl.Lookup(vaddr(p)); hit {
			t.Fatalf("page %d survived flush", p)
		}
	}
	_, _, flushes := tl.Stats()
	if flushes != 1 {
		t.Fatalf("flushes = %d, want 1", flushes)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry did not panic")
		}
	}()
	New(Config{Entries: 10, Ways: 3, HitLatency: 1})
}

func TestWalkerLatencyAndFaults(t *testing.T) {
	as := mem.NewAddressSpace(mem.NewPhysical())
	a := as.Alloc(mem.PageSize, mem.PageSize)
	w := NewWalker(as, 30)
	pa, lat, err := w.Walk(a)
	if err != nil {
		t.Fatal(err)
	}
	if lat != uint64(as.WalkLevels())*30 {
		t.Fatalf("walk latency = %d", lat)
	}
	want, _ := as.Translate(a)
	if pa != want {
		t.Fatalf("walk result %#x, want %#x", uint64(pa), uint64(want))
	}
	if _, _, err := w.Walk(mem.VAddr(0xffff0000)); err == nil {
		t.Fatal("walk of unmapped page should fault")
	}
	walks, faults, total := w.Stats()
	if walks != 2 || faults != 1 || total != 2*uint64(as.WalkLevels())*30 {
		t.Fatalf("walker stats = %d %d %d", walks, faults, total)
	}
}

func TestHierarchyFillsUpward(t *testing.T) {
	as := mem.NewAddressSpace(mem.NewPhysical())
	a := as.Alloc(mem.PageSize, mem.PageSize)
	h := NewHierarchy(as, 30)

	// First access: L1 miss + L2 miss + full walk.
	_, lat1, err := h.Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	wantWalk := h.L1.Config().HitLatency + h.L2.Config().HitLatency + uint64(as.WalkLevels())*30
	if lat1 != wantWalk {
		t.Fatalf("cold translate latency = %d, want %d", lat1, wantWalk)
	}
	// Second access: L1 hit.
	_, lat2, err := h.Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	if lat2 != h.L1.Config().HitLatency {
		t.Fatalf("warm translate latency = %d, want %d", lat2, h.L1.Config().HitLatency)
	}
}

func TestTranslateL2SkipsL1(t *testing.T) {
	as := mem.NewAddressSpace(mem.NewPhysical())
	a := as.Alloc(mem.PageSize, mem.PageSize)
	h := NewHierarchy(as, 30)
	if _, _, err := h.TranslateL2(a); err != nil {
		t.Fatal(err)
	}
	// L2 now warm; accelerator-path translation is an L2 hit.
	_, lat, err := h.TranslateL2(a)
	if err != nil {
		t.Fatal(err)
	}
	if lat != h.L2.Config().HitLatency {
		t.Fatalf("L2 path latency = %d, want %d", lat, h.L2.Config().HitLatency)
	}
	// The L1 must not have been polluted by accelerator translations.
	if hit, _ := h.L1.Lookup(a); hit {
		t.Fatal("TranslateL2 polluted the L1 TLB")
	}
}

func TestHierarchyFaultPropagates(t *testing.T) {
	as := mem.NewAddressSpace(mem.NewPhysical())
	h := NewHierarchy(as, 30)
	if _, _, err := h.Translate(mem.VAddr(0xdeadbeef000)); err == nil {
		t.Fatal("expected fault")
	}
	if _, _, err := h.TranslateL2(mem.VAddr(0xdeadbeef000)); err == nil {
		t.Fatal("expected fault on L2 path")
	}
}

// Property: after Insert(p), Lookup(p) hits until ways distinct conflicting
// pages are inserted.
func TestPropertyInsertThenHit(t *testing.T) {
	f := func(pages []uint16) bool {
		tl := New(Config{Entries: 64, Ways: 4, HitLatency: 1})
		for _, p := range pages {
			a := vaddr(uint64(p))
			tl.Insert(a)
			if hit, _ := tl.Lookup(a); !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: hit rate of repeated sequential sweeps over a working set that
// fits is 100% after the first sweep.
func TestPropertyCapacityBehaviour(t *testing.T) {
	tl := New(Config{Entries: 64, Ways: 4, HitLatency: 1})
	for p := uint64(0); p < 64; p++ {
		tl.Insert(vaddr(p))
	}
	for sweep := 0; sweep < 3; sweep++ {
		for p := uint64(0); p < 64; p++ {
			if hit, _ := tl.Lookup(vaddr(p)); !hit {
				t.Fatalf("sweep %d: page %d missed although working set fits", sweep, p)
			}
		}
	}
}
