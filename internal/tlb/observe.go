package tlb

import (
	"qei/internal/mem"
	"qei/internal/metrics"
	"qei/internal/trace"
)

// RegisterMetrics publishes one TLB array's counters under r
// (pull-based; hot lookup paths untouched).
func (t *TLB) RegisterMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.RegisterFunc("hits", func() uint64 { return t.hits })
	r.RegisterFunc("misses", func() uint64 { return t.misses })
	r.RegisterFunc("flushes", func() uint64 { return t.flushes })
}

// RegisterMetrics publishes the walker's counters under r.
func (w *Walker) RegisterMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.RegisterFunc("walks", func() uint64 { return w.walks })
	r.RegisterFunc("faults", func() uint64 { return w.faults })
	r.RegisterFunc("walk_cycles", func() uint64 { return w.totalLatency })
}

// RegisterMetrics publishes the full two-level hierarchy: l1/…, l2/…,
// walker/….
func (h *Hierarchy) RegisterMetrics(r *metrics.Registry) {
	h.L1.RegisterMetrics(r.Scoped("l1"))
	h.L2.RegisterMetrics(r.Scoped("l2"))
	h.Walker.RegisterMetrics(r.Scoped("walker"))
}

// SetTracer routes the walker's page-walk spans onto the given trace
// track (pid/tid identify the component that owns this walker — a
// core's TLB lane or a CHA's dedicated walker).
func (w *Walker) SetTracer(tr *trace.Tracer, pid, tid int) {
	w.tr = tr
	w.pid = pid
	w.tid = tid
}

// SetTracer attaches the tracer to the hierarchy's walker.
func (h *Hierarchy) SetTracer(tr *trace.Tracer, pid, tid int) {
	h.Walker.SetTracer(tr, pid, tid)
}

// WalkAt is Walk with the issue cycle threaded through: the walk appears
// in the trace as a "page_walk" span covering its full latency, marked
// "page_fault" instead when the page is unmapped.
func (w *Walker) WalkAt(a mem.VAddr, at uint64) (mem.PAddr, uint64, error) {
	pa, lat, err := w.walk(a)
	if w.tr != nil {
		name := "page_walk"
		if err != nil {
			name = "page_fault"
		}
		w.tr.Span("tlb", name, at, at+lat, w.pid, w.tid, nil)
	}
	return pa, lat, err
}

// TranslateAt is Translate with the issue cycle threaded through, so a
// miss's page walk lands at the right point on the timeline.
func (h *Hierarchy) TranslateAt(a mem.VAddr, at uint64) (mem.PAddr, uint64, error) {
	if hit, lat := h.L1.Lookup(a); hit {
		pa, err := h.Walker.as.Translate(a)
		return pa, lat, err
	}
	lat := h.L1.Config().HitLatency
	if hit, l2lat := h.L2.Lookup(a); hit {
		h.L1.Insert(a)
		pa, err := h.Walker.as.Translate(a)
		return pa, lat + l2lat, err
	}
	lat += h.L2.Config().HitLatency
	pa, wlat, err := h.Walker.WalkAt(a, at+lat)
	lat += wlat
	if err != nil {
		return 0, lat, err
	}
	h.L2.Insert(a)
	h.L1.Insert(a)
	return pa, lat, nil
}

// TranslateL2At is TranslateL2 with the issue cycle threaded through
// (the Core-integrated accelerator's translation path).
func (h *Hierarchy) TranslateL2At(a mem.VAddr, at uint64) (mem.PAddr, uint64, error) {
	if hit, lat := h.L2.Lookup(a); hit {
		pa, err := h.Walker.as.Translate(a)
		return pa, lat, err
	}
	lat := h.L2.Config().HitLatency
	pa, wlat, err := h.Walker.WalkAt(a, at+lat)
	lat += wlat
	if err != nil {
		return 0, lat, err
	}
	h.L2.Insert(a)
	return pa, lat, nil
}
