package stream

import (
	"bytes"
	"reflect"
	"testing"
)

func testConfig() Config {
	return Config{
		InitialKeys:    64,
		Ops:            300,
		KeyLen:         16,
		WriteFraction:  0.4,
		DeleteFraction: 0.4,
		KeySkew:        0.99,
		Window:         4,
		Seed:           7,
	}
}

func TestGenerateDeterministicAndMixed(t *testing.T) {
	a, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal configs generated different workloads")
	}
	var gets, puts, dels, fresh int
	for _, op := range a.Ops {
		switch op.Kind {
		case Get:
			gets++
		case Put:
			puts++
			if op.Key[7] >= 64 || op.Key[6] != 0 {
				fresh++
			}
		case Del:
			dels++
		}
		if len(op.Key) != 16 {
			t.Fatalf("key length %d", len(op.Key))
		}
	}
	if gets == 0 || puts == 0 || dels == 0 || fresh == 0 {
		t.Fatalf("stream not mixed: %d gets %d puts (%d fresh) %d dels", gets, puts, fresh, dels)
	}
	c := testConfig()
	c.Seed = 8
	d, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Ops, d.Ops) {
		t.Fatal("different seeds generated identical streams")
	}
}

func TestKeyForUniqueAndRanked(t *testing.T) {
	cfg := testConfig()
	seen := map[string]bool{}
	for r := 0; r < 500; r++ {
		k := KeyFor(cfg, r)
		if seen[string(k)] {
			t.Fatalf("rank %d key collides", r)
		}
		seen[string(k)] = true
		if r > 0 && bytes.Compare(KeyFor(cfg, r-1), k) >= 0 {
			t.Fatal("keys not ordered by rank")
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	wl, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, wl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wl, got) {
		t.Fatal("trace round trip lost information")
	}
}

// fakeTarget is a synchronous map-backed Target whose lookups complete
// at admission — the engine's windowing and verification logic under
// test without a simulator.
type fakeTarget struct {
	m map[string]uint64
	// wrongAfter forces a wrong value on every lookup admitted after
	// the given op count (mismatch-detector teeth); -1 disables.
	wrongAfter int
	admitted   int
}

type fakeHandle Outcome

func (f *fakeTarget) Insert(key []byte, value uint64) error {
	f.m[string(key)] = value
	return nil
}

func (f *fakeTarget) Delete(key []byte) (bool, error) {
	_, ok := f.m[string(key)]
	delete(f.m, string(key))
	return ok, nil
}

func (f *fakeTarget) QueryAsync(key []byte) (Handle, error) {
	v, ok := f.m[string(key)]
	f.admitted++
	if f.wrongAfter >= 0 && f.admitted > f.wrongAfter {
		v ^= 0xBAD
	}
	return fakeHandle(Outcome{Found: ok, Value: v, Latency: uint64(100 + f.admitted)}), nil
}

func (f *fakeTarget) Wait(h Handle) (Outcome, error) {
	return Outcome(h.(fakeHandle)), nil
}

func newFake(wl *Workload) *fakeTarget {
	f := &fakeTarget{m: map[string]uint64{}, wrongAfter: -1}
	keys, vals := wl.InitialTable()
	for i, k := range keys {
		f.m[string(k)] = vals[i]
	}
	return f
}

func TestRunVerifiesAgainstModel(t *testing.T) {
	wl, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(wl, newFake(wl), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != wl.Cfg.Ops || rep.Gets+rep.Puts+rep.Dels != rep.Ops {
		t.Fatalf("op accounting: %+v", rep)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("%d mismatches against a faithful target", rep.Mismatches)
	}
	if rep.Hits == 0 || rep.Misses == 0 {
		t.Fatalf("stream exercised no miss path: %+v", rep)
	}
	if rep.MaxOutstanding != wl.Cfg.Window {
		t.Fatalf("window never filled: max outstanding %d, want %d", rep.MaxOutstanding, wl.Cfg.Window)
	}
	if rep.P99 < rep.P50 || rep.P50 == 0 {
		t.Fatalf("latency percentiles: %+v", rep)
	}

	// Same workload, same target: identical digest.
	rep2, err := Run(wl, newFake(wl), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Digest != rep.Digest {
		t.Fatal("identical runs produced different digests")
	}
}

func TestRunDetectsWrongValues(t *testing.T) {
	wl, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := newFake(wl)
	f.wrongAfter = 10
	rep, err := Run(wl, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches == 0 {
		t.Fatal("corrupted lookups not flagged as mismatches")
	}
	clean, err := Run(wl, newFake(wl), nil)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Digest == rep.Digest {
		t.Fatal("digest blind to corrupted values")
	}
}
