// Package stream generates and drives seeded, replayable read-write
// operation streams against a mutable table: the workload side of the
// streaming mutation engine. A stream mixes accelerated lookups with
// software inserts and deletes (configurable write fraction, Zipf key
// skew), keeps a bounded window of lookups in flight so writers really
// do race in-flight queries, and verifies every lookup against a host
// model snapshotted at admission — the epoch protocol's
// snapshot-at-admission semantics made checkable.
//
// A stream is a pure function of its Config: two generations with equal
// configs are byte-identical, and a recorded trace replays to the same
// digest as the live run that produced it.
package stream

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"qei/internal/workload"
)

// Kind is one operation's type.
type Kind uint8

// The three stream operations: accelerated lookup, software insert (or
// in-place update), software delete.
const (
	Get Kind = iota
	Put
	Del
)

func (k Kind) String() string {
	switch k {
	case Get:
		return "get"
	case Put:
		return "put"
	case Del:
		return "del"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// parseKind is String's inverse, for trace decoding.
func parseKind(s string) (Kind, error) {
	switch s {
	case "get":
		return Get, nil
	case "put":
		return Put, nil
	case "del":
		return Del, nil
	default:
		return 0, fmt.Errorf("stream: unknown op kind %q", s)
	}
}

// Op is one stream operation in issue order.
type Op struct {
	// Kind is the operation; Key its probe/update key.
	Kind Kind
	Key  []byte
	// Value is the stored value for Put ops (unused otherwise).
	Value uint64
}

// Config describes one operation stream. The stream is a pure function
// of the config.
type Config struct {
	// InitialKeys is the table population bulk-loaded before the stream
	// starts; ranks 0..InitialKeys-1 form the hot set.
	InitialKeys int `json:"initial_keys"`
	// Ops is the total operation count.
	Ops int `json:"ops"`
	// KeyLen is the fixed key length in bytes (>= 8: the first eight
	// encode the key's rank).
	KeyLen int `json:"key_len"`
	// WriteFraction is the probability an operation mutates (0 = pure
	// reads, matching the pre-streaming engine byte for byte).
	WriteFraction float64 `json:"write_fraction"`
	// DeleteFraction is the probability a mutation deletes instead of
	// inserting/updating.
	DeleteFraction float64 `json:"delete_fraction"`
	// KeySkew is the Zipf exponent of hot-set key choice (0 = uniform,
	// 0.99 = the YCSB default).
	KeySkew float64 `json:"key_skew"`
	// Window bounds the number of lookups concurrently in flight (the
	// QST occupancy the stream sustains while writers mutate).
	Window int `json:"window"`
	// Seed drives every random choice.
	Seed int64 `json:"seed"`
}

// Validate checks the config's invariants.
func (c Config) Validate() error {
	switch {
	case c.InitialKeys < 1:
		return fmt.Errorf("stream: %d initial keys", c.InitialKeys)
	case c.Ops < 1:
		return fmt.Errorf("stream: %d ops", c.Ops)
	case c.KeyLen < 8:
		return fmt.Errorf("stream: key length %d < 8", c.KeyLen)
	case c.WriteFraction < 0 || c.WriteFraction > 1:
		return fmt.Errorf("stream: write fraction %g outside [0,1]", c.WriteFraction)
	case c.DeleteFraction < 0 || c.DeleteFraction > 1:
		return fmt.Errorf("stream: delete fraction %g outside [0,1]", c.DeleteFraction)
	case c.Window < 1:
		return fmt.Errorf("stream: window %d < 1", c.Window)
	}
	return nil
}

// KeyFor returns the stream's key of the given rank: the first eight
// bytes encode the rank big-endian (so fresh inserts land on the right
// edge of ordered structures and keep splitting it), the tail is a
// deterministic per-(seed,rank) byte pattern. Keys are unique by
// construction.
func KeyFor(cfg Config, rank int) []byte {
	k := make([]byte, cfg.KeyLen)
	binary.BigEndian.PutUint64(k[:8], uint64(rank))
	x := uint64(cfg.Seed)*0x9E3779B97F4A7C15 ^ uint64(rank) | 1
	for i := 8; i < cfg.KeyLen; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		k[i] = byte(x)
	}
	return k
}

// InitValue returns the value bulk-loaded under rank's key (non-zero,
// unique per rank).
func InitValue(rank int) uint64 {
	return uint64(rank+1) * 0x9E3779B97F4A7C15
}

// Workload is a generated (or trace-loaded) stream: the config plus the
// materialized operation list.
type Workload struct {
	Cfg Config
	Ops []Op
}

// InitialTable materializes the bulk-load population in rank order.
func (w *Workload) InitialTable() (keys [][]byte, values []uint64) {
	keys = make([][]byte, w.Cfg.InitialKeys)
	values = make([]uint64, w.Cfg.InitialKeys)
	for r := range keys {
		keys[r] = KeyFor(w.Cfg, r)
		values[r] = InitValue(r)
	}
	return keys, values
}

// Generate produces the operation stream: lookups and deletes pick
// Zipf-skewed ranks from the hot set (a quarter of lookups instead
// target keys inserted by the stream itself, once any exist), inserts
// alternate between fresh right-edge ranks — growing the structure so
// splits and rehashes fire — and in-place updates of hot keys.
func Generate(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pick := workload.NewZipfPicker(cfg.InitialKeys, cfg.KeySkew, cfg.Seed^0x5EED)
	ops := make([]Op, 0, cfg.Ops)
	fresh := 0
	for i := 0; i < cfg.Ops; i++ {
		var op Op
		switch {
		case rng.Float64() < cfg.WriteFraction:
			if rng.Float64() < cfg.DeleteFraction {
				op = Op{Kind: Del, Key: KeyFor(cfg, pick.Next())}
				break
			}
			rank := pick.Next()
			if rng.Intn(2) == 0 {
				rank = cfg.InitialKeys + fresh
				fresh++
			}
			op = Op{Kind: Put, Key: KeyFor(cfg, rank), Value: rng.Uint64()}
		default:
			rank := pick.Next()
			if fresh > 0 && rng.Intn(4) == 0 {
				rank = cfg.InitialKeys + rng.Intn(fresh)
			}
			op = Op{Kind: Get, Key: KeyFor(cfg, rank)}
		}
		ops = append(ops, op)
	}
	return &Workload{Cfg: cfg, Ops: ops}, nil
}
