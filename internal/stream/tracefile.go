package stream

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// Recorded-trace format: JSON Lines, like the serving layer's traces.
// The first line is a header carrying the format version and the full
// Config (so a replay can rebuild the bulk-loaded table the stream
// mutates); every following line is one operation in issue order, with
// the op kind first so mixed read-write traces stay greppable:
//
//	{"v":1,"stream":{"initial_keys":96,...}}
//	{"seq":0,"op":"get","key":"000000000000002a41..."}
//	{"seq":1,"op":"put","key":"...","value":9021352398172}
//	{"seq":2,"op":"del","key":"..."}

// traceVersion is the current trace-format version.
const traceVersion = 1

type traceHeader struct {
	Version int    `json:"v"`
	Stream  Config `json:"stream"`
}

type traceRec struct {
	Seq   int    `json:"seq"`
	Op    string `json:"op"`
	Key   string `json:"key"`
	Value uint64 `json:"value,omitempty"`
}

// WriteTrace records a workload as JSONL: header line, then one line
// per operation in issue order.
func WriteTrace(w io.Writer, wl *Workload) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Version: traceVersion, Stream: wl.Cfg}); err != nil {
		return err
	}
	for i, op := range wl.Ops {
		rec := traceRec{Seq: i, Op: op.Kind.String(), Key: hex.EncodeToString(op.Key)}
		if op.Kind == Put {
			rec.Value = op.Value
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a recorded JSONL trace back into the workload
// WriteTrace saved. The returned workload replays byte-identically to
// the live run it recorded.
func ReadTrace(r io.Reader) (*Workload, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("stream: empty trace")
	}
	var hdr traceHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("stream: trace header: %w", err)
	}
	if hdr.Version != traceVersion {
		return nil, fmt.Errorf("stream: trace version %d, want %d", hdr.Version, traceVersion)
	}
	wl := &Workload{Cfg: hdr.Stream}
	for line := 2; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec traceRec
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("stream: trace line %d: %w", line, err)
		}
		kind, err := parseKind(rec.Op)
		if err != nil {
			return nil, fmt.Errorf("stream: trace line %d: %w", line, err)
		}
		key, err := hex.DecodeString(rec.Key)
		if err != nil {
			return nil, fmt.Errorf("stream: trace line %d key: %w", line, err)
		}
		wl.Ops = append(wl.Ops, Op{Kind: kind, Key: key, Value: rec.Value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return wl, nil
}
