package stream

import (
	"fmt"
	"sort"

	"qei/internal/metrics"
)

// Handle is an opaque in-flight lookup identifier minted by a Target.
type Handle interface{}

// Outcome is one completed lookup as the issuing core observed it.
type Outcome struct {
	Found bool
	Value uint64
	// Latency is the lookup's end-to-end cycle count.
	Latency uint64
	// Faulted marks a lookup that completed with an architectural
	// exception (fault injection); its Found/Value carry no meaning and
	// it is excluded from model verification.
	Faulted bool
}

// Target is the mutable table a stream drives: software mutations plus
// windowed asynchronous lookups. Implementations must retrieve results
// in admission order (the engine drains its window FIFO).
type Target interface {
	Insert(key []byte, value uint64) error
	Delete(key []byte) (bool, error)
	QueryAsync(key []byte) (Handle, error)
	Wait(h Handle) (Outcome, error)
}

// Report summarizes one stream run. Digest folds every operation's
// outcome — including lookup latencies — into one value, so two runs
// are behaviorally identical iff their digests match.
type Report struct {
	Ops, Gets, Puts, Dels int
	// Hits/Misses partition verified lookups; Mismatches counts lookups
	// (or deletes) whose outcome disagreed with the host model's
	// admission-time snapshot; Faulted counts lookups that completed
	// with an architectural exception.
	Hits, Misses, Mismatches, Faulted uint64
	// MaxOutstanding is the peak number of lookups in flight — proof
	// the writers really raced admitted queries.
	MaxOutstanding int
	// P50/P99 are lookup latency percentiles in cycles.
	P50, P99 uint64
	Digest   uint64
}

// pending is one admitted lookup awaiting its result, with the model's
// admission-time expectation.
type pending struct {
	h        Handle
	seq      int
	expFound bool
	expVal   uint64
}

// engine carries one run's verification state.
type engine struct {
	t     Target
	model map[string]uint64
	queue []pending
	lats  []uint64
	rep   Report
}

// fnv1a folds bytes into the running digest.
func fnv1a(h uint64, bs ...byte) uint64 {
	if h == 0 {
		h = 14695981039346656037
	}
	for _, b := range bs {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func (e *engine) mix(vs ...uint64) {
	for _, v := range vs {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		e.rep.Digest = fnv1a(e.rep.Digest, b[:]...)
	}
}

// drainOne retrieves the oldest in-flight lookup and verifies it
// against the expectation snapshotted at its admission.
func (e *engine) drainOne() error {
	p := e.queue[0]
	e.queue = e.queue[1:]
	out, err := e.t.Wait(p.h)
	if err != nil {
		return fmt.Errorf("stream: op %d wait: %w", p.seq, err)
	}
	if out.Faulted {
		e.rep.Faulted++
		e.mix(uint64(p.seq), ^uint64(0))
		return nil
	}
	if out.Found {
		e.rep.Hits++
	} else {
		e.rep.Misses++
	}
	if out.Found != p.expFound || (out.Found && out.Value != p.expVal) {
		e.rep.Mismatches++
	}
	e.lats = append(e.lats, out.Latency)
	var f uint64
	if out.Found {
		f = 1
	}
	e.mix(uint64(p.seq), f, out.Value, out.Latency)
	return nil
}

// Run drives the workload against t: mutations apply immediately while
// up to Cfg.Window lookups stay in flight across them, so retired nodes
// sit in limbo under live pins. Lookups are verified against a host
// model snapshotted at admission. With a non-nil registry the run's
// counters register under stream/ (nil is a free no-op, like all
// registry wiring).
func Run(wl *Workload, t Target, reg *metrics.Registry) (*Report, error) {
	if err := wl.Cfg.Validate(); err != nil {
		return nil, err
	}
	e := &engine{t: t, model: make(map[string]uint64, wl.Cfg.InitialKeys)}
	for r := 0; r < wl.Cfg.InitialKeys; r++ {
		e.model[string(KeyFor(wl.Cfg, r))] = InitValue(r)
	}
	s := reg.Scoped("stream")
	s.RegisterFunc("ops_total", func() uint64 { return uint64(e.rep.Ops) })
	s.RegisterFunc("gets", func() uint64 { return uint64(e.rep.Gets) })
	s.RegisterFunc("puts", func() uint64 { return uint64(e.rep.Puts) })
	s.RegisterFunc("dels", func() uint64 { return uint64(e.rep.Dels) })
	s.RegisterFunc("hits", func() uint64 { return e.rep.Hits })
	s.RegisterFunc("misses", func() uint64 { return e.rep.Misses })
	s.RegisterFunc("mismatches", func() uint64 { return e.rep.Mismatches })
	s.RegisterFunc("faulted", func() uint64 { return e.rep.Faulted })

	for seq, op := range wl.Ops {
		e.rep.Ops++
		switch op.Kind {
		case Put:
			e.rep.Puts++
			if err := t.Insert(op.Key, op.Value); err != nil {
				return nil, fmt.Errorf("stream: op %d put: %w", seq, err)
			}
			e.model[string(op.Key)] = op.Value
			e.mix(uint64(seq), uint64(Put), op.Value)
		case Del:
			e.rep.Dels++
			ok, err := t.Delete(op.Key)
			if err != nil {
				return nil, fmt.Errorf("stream: op %d del: %w", seq, err)
			}
			_, inModel := e.model[string(op.Key)]
			if ok != inModel {
				e.rep.Mismatches++
			}
			delete(e.model, string(op.Key))
			var okBit uint64
			if ok {
				okBit = 1
			}
			e.mix(uint64(seq), uint64(Del), okBit)
		case Get:
			e.rep.Gets++
			if len(e.queue) >= wl.Cfg.Window {
				if err := e.drainOne(); err != nil {
					return nil, err
				}
			}
			h, err := t.QueryAsync(op.Key)
			if err != nil {
				return nil, fmt.Errorf("stream: op %d get: %w", seq, err)
			}
			exp, inModel := e.model[string(op.Key)]
			e.queue = append(e.queue, pending{h: h, seq: seq, expFound: inModel, expVal: exp})
			if len(e.queue) > e.rep.MaxOutstanding {
				e.rep.MaxOutstanding = len(e.queue)
			}
		default:
			return nil, fmt.Errorf("stream: op %d has unknown kind %d", seq, op.Kind)
		}
	}
	for len(e.queue) > 0 {
		if err := e.drainOne(); err != nil {
			return nil, err
		}
	}
	if len(e.lats) > 0 {
		sort.Slice(e.lats, func(a, b int) bool { return e.lats[a] < e.lats[b] })
		e.rep.P50 = e.lats[len(e.lats)/2]
		e.rep.P99 = e.lats[len(e.lats)*99/100]
	}
	rep := e.rep
	return &rep, nil
}
