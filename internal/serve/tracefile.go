package serve

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// Recorded-trace format: JSON Lines. The first line is a header carrying
// the format version and the full GenConfig (so a replay can rebuild the
// tenant tables the stream probes); every following line is one request
// in arrival order. The format is append-friendly and greppable:
//
//	{"v":1,"gen":{"tenants":4,...}}
//	{"seq":0,"tenant":0,"at":93,"key":"00000000000000010a0b..."}
//	{"seq":1,"tenant":2,"at":118,"key":"..."}

// traceVersion is the current trace-format version.
const traceVersion = 1

type traceHeader struct {
	Version int       `json:"v"`
	Gen     GenConfig `json:"gen"`
}

type traceRec struct {
	Seq    int    `json:"seq"`
	Tenant int    `json:"tenant"`
	At     uint64 `json:"at"`
	Key    string `json:"key"`
	// Op and Value are omitted for lookups, so read-only traces are
	// byte-identical to the pre-write format (still version 1).
	Op    string `json:"op,omitempty"`
	Value uint64 `json:"value,omitempty"`
}

// WriteTrace records a generated stream as JSONL: header line, then one
// line per request in stream order.
func WriteTrace(w io.Writer, cfg GenConfig, reqs []Request) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Version: traceVersion, Gen: cfg}); err != nil {
		return err
	}
	for i := range reqs {
		r := &reqs[i]
		rec := traceRec{Seq: r.Seq, Tenant: r.Tenant, At: r.At, Key: hex.EncodeToString(r.Key),
			Op: string(r.Op), Value: r.Value}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a recorded JSONL trace back into the config and
// request stream WriteTrace saved. The returned stream replays
// byte-identically to the live generated run it recorded.
func ReadTrace(r io.Reader) (GenConfig, []Request, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return GenConfig{}, nil, err
		}
		return GenConfig{}, nil, fmt.Errorf("serve: empty trace")
	}
	var hdr traceHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return GenConfig{}, nil, fmt.Errorf("serve: trace header: %w", err)
	}
	if hdr.Version != traceVersion {
		return GenConfig{}, nil, fmt.Errorf("serve: trace version %d, want %d", hdr.Version, traceVersion)
	}
	var reqs []Request
	for line := 2; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec traceRec
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return GenConfig{}, nil, fmt.Errorf("serve: trace line %d: %w", line, err)
		}
		key, err := hex.DecodeString(rec.Key)
		if err != nil {
			return GenConfig{}, nil, fmt.Errorf("serve: trace line %d key: %w", line, err)
		}
		switch Op(rec.Op) {
		case OpGet, OpPut, OpDel:
		default:
			return GenConfig{}, nil, fmt.Errorf("serve: trace line %d: unknown op %q", line, rec.Op)
		}
		reqs = append(reqs, Request{Seq: rec.Seq, Tenant: rec.Tenant, At: rec.At, Key: key,
			Op: Op(rec.Op), Value: rec.Value})
	}
	if err := sc.Err(); err != nil {
		return GenConfig{}, nil, err
	}
	return hdr.Gen, reqs, nil
}
