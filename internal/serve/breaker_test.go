package serve

import "testing"

// tb returns a breaker with a small, test-friendly window: 8 buckets of
// 128 cycles, tripping at 50% faults over at least 4 samples, holding
// open for 512 cycles, closing after 2 probe successes.
func tb() *Breaker {
	return NewBreaker(BreakerConfig{
		Window:         1024,
		Buckets:        8,
		TripRate:       0.5,
		MinSamples:     4,
		OpenFor:        512,
		HalfOpenProbes: 2,
	})
}

func TestBreakerTripsAtRate(t *testing.T) {
	b := tb()
	// Three faults are below MinSamples: no trip yet.
	for i := uint64(0); i < 3; i++ {
		b.Record(i*10, false)
		if b.State() != BreakerClosed {
			t.Fatalf("tripped on sample %d, below MinSamples", i+1)
		}
	}
	b.Record(30, false)
	if b.State() != BreakerOpen {
		t.Fatal("4 faults out of 4 did not trip")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	if b.Allow(40) {
		t.Fatal("open breaker allowed the primary")
	}
	if b.FastFails() != 1 {
		t.Fatalf("fastFails = %d, want 1", b.FastFails())
	}
}

func TestBreakerHealthyMajorityStaysClosed(t *testing.T) {
	b := tb()
	// 1 fault in 10 is far under the 50% trip rate.
	for i := uint64(0); i < 10; i++ {
		b.Record(i*10, i != 3)
	}
	if b.State() != BreakerClosed {
		t.Fatal("healthy stream tripped the breaker")
	}
	if !b.Allow(200) {
		t.Fatal("closed breaker refused the primary")
	}
}

func TestBreakerWindowAgesOutFaults(t *testing.T) {
	b := tb()
	// Three faults (just under MinSamples) at cycle ~0.
	for i := uint64(0); i < 3; i++ {
		b.Record(i, false)
	}
	// A full window later they have aged out: a lone fresh fault among
	// three successes is 25%, under the 50% trip rate, so the breaker
	// must stay closed — unless the stale faults wrongly still count.
	for i := uint64(0); i < 3; i++ {
		b.Record(2000+i*10, true)
	}
	b.Record(2040, false)
	if b.State() != BreakerClosed {
		t.Fatal("aged-out faults still counted against the window")
	}
}

func TestBreakerHalfOpenCloseAndRetrip(t *testing.T) {
	b := tb()
	for i := uint64(0); i < 4; i++ {
		b.Record(i, false)
	}
	if b.State() != BreakerOpen {
		t.Fatal("no trip")
	}
	openedAt := b.OpenedAt()
	// Before the hold expires: fast-fail.
	if b.Allow(openedAt + 100) {
		t.Fatal("allowed during open hold")
	}
	// After: half-open, bounded probes.
	if !b.Allow(openedAt + 600) {
		t.Fatal("no probe after hold expired")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after hold, want half-open", b.State())
	}
	if !b.Allow(openedAt + 610) {
		t.Fatal("second probe refused")
	}
	// Probe bound reached (HalfOpenProbes = 2): next is a fast-fail.
	if b.Allow(openedAt + 620) {
		t.Fatal("probe bound not enforced")
	}
	if b.Probes() != 2 {
		t.Fatalf("probes = %d, want 2", b.Probes())
	}
	// Two probe successes close it.
	b.Record(openedAt+700, true)
	b.Record(openedAt+710, true)
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after %d probe successes, want closed", b.State(), 2)
	}

	// Trip again, half-open again, and this time a probe fault reopens.
	for i := uint64(0); i < 4; i++ {
		b.Record(openedAt+800+i, false)
	}
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("second trip missing: state %v trips %d", b.State(), b.Trips())
	}
	if !b.Allow(b.OpenedAt() + 600) {
		t.Fatal("no probe on second half-open")
	}
	b.Record(b.OpenedAt()+700, false)
	if b.State() != BreakerOpen || b.Trips() != 3 {
		t.Fatalf("probe fault did not re-trip: state %v trips %d", b.State(), b.Trips())
	}
}

// TestBreakerDeterministic pins that the automaton is a pure function
// of the fed (cycle, outcome) sequence — the property replay identity
// rests on.
func TestBreakerDeterministic(t *testing.T) {
	run := func() (BreakerState, uint64, uint64, uint64) {
		b := tb()
		x := uint64(99)
		for i := uint64(0); i < 500; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			now := i * 37
			if b.Allow(now) {
				b.Record(now+20, x%3 != 0)
			}
		}
		return b.State(), b.Trips(), b.FastFails(), b.Probes()
	}
	s1, t1, f1, p1 := run()
	s2, t2, f2, p2 := run()
	if s1 != s2 || t1 != t2 || f1 != f2 || p1 != p2 {
		t.Fatalf("same sequence diverged: (%v %d %d %d) vs (%v %d %d %d)",
			s1, t1, f1, p1, s2, t2, f2, p2)
	}
	if t1 == 0 || f1 == 0 {
		t.Fatalf("sequence exercised no trips (%d) or fast-fails (%d)", t1, f1)
	}
}
