// Package serve is the multi-tenant serving frontend over the simulated
// machine: the request-level layer that turns the one-experiment-at-a-
// time simulator into a cloud serving system under open-loop load.
//
// It has three layers:
//
//  1. A Backend adapter interface (ReqBench-style platform adapter, cf.
//     Tailwind's accelerator-vs-software placement): Build tables, issue
//     Query/QueryAsync/Poll against them, read Stats — so the same
//     request trace drives the QEI accelerator, the software baseline
//     walker, or any future backend interchangeably. The adapters
//     themselves live in the root qei package (they wrap *qei.System);
//     this package sees only the interface.
//
//  2. A deterministic, seeded open-loop workload generator and trace
//     format: N tenants with Zipf-skewed popularity, per-tenant
//     Zipf-skewed key choice, and a configurable aggregate arrival rate
//     in simulated cycles. Each tenant owns its own table(s) in the
//     shared simulated address space. Streams can be recorded to JSONL
//     and replayed byte-identically.
//
//  3. Per-tenant QST admission/QoS and latency accounting: an admission
//     controller bounds each tenant's in-flight QST slots, a streaming
//     HdrHistogram-style latency collector yields p50/p99/p999 over
//     simulated cycles, and SLO-violation counters register in the
//     simulator-wide metrics registry.
//
// Determinism contract: generation, admission, and accounting are pure
// functions of (GenConfig, seed); parallel-tenant generation is
// byte-identical to serial, matching the repo-wide rule that parallelism
// never changes output.
package serve

import "errors"

// Op identifies a request's operation kind. The zero value is a lookup,
// so read-only streams — and every v1 trace, which predates the op
// field — need no annotation and replay unchanged.
type Op string

// The three request operations: accelerated lookup (the default),
// software insert/update, software delete.
const (
	OpGet Op = ""
	OpPut Op = "put"
	OpDel Op = "del"
)

func (o Op) String() string {
	if o == OpGet {
		return "get"
	}
	return string(o)
}

// Table is an opaque backend table handle: Build returns it and Query
// routes on it. Backends define the concrete type.
type Table any

// Handle is an opaque in-flight async query handle, mirroring the
// accelerator's QST tag without exposing it.
type Handle any

// Sentinel errors of the adapter contract. Adapters translate their
// platform's errors into these so the server's control flow is
// backend-independent.
var (
	// ErrBackendFull is returned by QueryAsync when the backend cannot
	// accept another in-flight query (every QST entry occupied); the
	// server frees a slot by waiting on an older query and reissues.
	ErrBackendFull = errors.New("serve: backend admission full")
	// ErrPending is returned by Poll while the query has not completed
	// at the backend's current clock.
	ErrPending = errors.New("serve: result pending")
)

// Result is one request's architectural outcome as observed by the
// serving layer.
type Result struct {
	// Found/Value are the query's architectural answer.
	Found bool
	Value uint64
	// Done is the simulated cycle the result became visible; the server
	// derives end-to-end latency as Done - arrival.
	Done uint64
	// Err carries a per-query fault (accelerator exception or software
	// walker error); the request still retires.
	Err error
}

// Stats is the backend-activity summary surfaced per run.
type Stats struct {
	// Queries is the number of queries the backend executed.
	Queries uint64
	// Exceptions counts queries that faulted architecturally.
	Exceptions uint64
}

// Backend is the pluggable platform adapter the serving frontend drives.
// A Backend owns one simulated machine and its issue clock; all cycle
// values are that machine's simulated cycles. Implementations are not
// safe for concurrent use — one goroutine owns a backend for a run.
type Backend interface {
	// Name identifies the backend in reports ("qei", "baseline").
	Name() string
	// Build lays out one table of the named structure kind ("cuckoo",
	// "skiplist", ...) holding keys/values in the machine's address
	// space and returns its handle.
	Build(kind string, keys [][]byte, values []uint64) (Table, error)
	// Query is a blocking lookup, advancing the clock to completion.
	Query(t Table, key []byte) (Result, error)
	// QueryAsync issues a non-blocking lookup, advancing the clock only
	// to the acceptance point. It returns ErrBackendFull when no slot is
	// free. Backends without async execution (the software walker) may
	// execute eagerly and hand back an already-complete handle.
	QueryAsync(t Table, key []byte) (Handle, error)
	// Poll checks an async query without moving the clock, returning
	// ErrPending while it is still executing at Now().
	Poll(h Handle) (Result, error)
	// Wait retrieves an async query's result, advancing the clock to its
	// completion if needed.
	Wait(h Handle) (Result, error)
	// Now returns the current simulated cycle; Advance models idle time
	// between arrivals.
	Now() uint64
	Advance(n uint64)
	// Capacity is the backend's in-flight query bound (QST entries); the
	// admission controller splits it across tenants.
	Capacity() int
	// Stats reports accumulated backend activity.
	Stats() Stats
}

// BatchBackend is the optional batched-read extension of Backend: a
// backend whose platform has a batched query path (the level-wise
// engine under qei.System.QueryBatch) implements it, and the server
// uses it only when Config.BatchAdmit enables batched admission. The
// call is synchronous — it advances the backend clock to the batch's
// completion — and returns one Result per key, in key order, with
// per-query faults in Result.Err.
type BatchBackend interface {
	QueryBatch(t Table, keys [][]byte) ([]Result, error)
}

// Mutator is the optional write-path extension of Backend: a backend
// that also supports software mutations implements it, and the server
// requires it only when the request stream actually contains writes —
// read-only streams run on plain Backends untouched. Mutations are
// software routines on the backend's machine (per the paper, QEI
// accelerates queries only), so they apply immediately; the server
// charges their cycle cost to the clock (Config.WriteCost).
type Mutator interface {
	// BuildMutable lays out one updatable table of the named kind; the
	// returned handle is accepted by Query/QueryAsync and Insert/Delete
	// alike.
	BuildMutable(kind string, keys [][]byte, values []uint64) (Table, error)
	// Insert adds or updates a key/value pair in software.
	Insert(t Table, key []byte, value uint64) error
	// Delete removes a key, reporting whether it existed.
	Delete(t Table, key []byte) (bool, error)
}
