package serve

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"qei/internal/runner"
	"qei/internal/workload"
)

// GenConfig describes one synthetic multi-tenant request stream. The
// stream is a pure function of the config (including Seed): two
// generations with equal configs are byte-identical, at any generation
// parallelism.
type GenConfig struct {
	// Tenants is the number of tenants; tenant popularity follows
	// Zipf(TenantSkew) over tenant rank (tenant 0 hottest).
	Tenants int `json:"tenants"`
	// Requests is the total request count across all tenants.
	Requests int `json:"requests"`
	// KeysPerTenant is each tenant's table population; per-request key
	// choice follows Zipf(KeySkew) over key rank.
	KeysPerTenant int `json:"keys_per_tenant"`
	// KeyLen is the fixed key length in bytes (>= 8: the first eight
	// bytes encode tenant and key rank).
	KeyLen int `json:"key_len"`
	// Kind is the structure kind each tenant's table is built as
	// ("cuckoo", "skiplist", "hashtable", "bst", "btree", "linkedlist").
	Kind string `json:"kind"`
	// TenantSkew and KeySkew are the Zipf exponents (0 = uniform,
	// 0.99 = the YCSB default).
	TenantSkew float64 `json:"tenant_skew"`
	KeySkew    float64 `json:"key_skew"`
	// MeanGap is the aggregate open-loop arrival process's mean
	// inter-arrival time in simulated cycles: requests arrive whether or
	// not earlier ones finished.
	MeanGap uint64 `json:"mean_gap"`
	// Seed drives every random choice.
	Seed int64 `json:"seed"`
	// WriteFraction makes that share of each tenant's requests software
	// mutations instead of lookups; of those, DeleteFraction are deletes
	// and the rest are upserts. Both default to 0 (read-only), and a
	// zero WriteFraction draws nothing from the write RNG, so pre-write
	// streams and their traces stay byte-identical.
	WriteFraction  float64 `json:"write_fraction,omitempty"`
	DeleteFraction float64 `json:"delete_fraction,omitempty"`
}

// Validate checks the config's invariants.
func (c GenConfig) Validate() error {
	switch {
	case c.Tenants < 1:
		return fmt.Errorf("serve: %d tenants", c.Tenants)
	case c.Requests < 1:
		return fmt.Errorf("serve: %d requests", c.Requests)
	case c.KeysPerTenant < 1:
		return fmt.Errorf("serve: %d keys per tenant", c.KeysPerTenant)
	case c.KeyLen < 8:
		return fmt.Errorf("serve: key length %d < 8", c.KeyLen)
	case c.MeanGap < 1:
		return fmt.Errorf("serve: zero mean arrival gap")
	case c.WriteFraction < 0 || c.WriteFraction > 1:
		return fmt.Errorf("serve: write fraction %v outside [0,1]", c.WriteFraction)
	case c.DeleteFraction < 0 || c.DeleteFraction > 1:
		return fmt.Errorf("serve: delete fraction %v outside [0,1]", c.DeleteFraction)
	}
	return nil
}

// Request is one serving-layer request: tenant, probe key, and its
// open-loop arrival cycle.
type Request struct {
	// Seq is the request's position in the merged stream (arrival order).
	Seq int
	// Tenant is the issuing tenant's index.
	Tenant int
	// At is the arrival cycle: the server may not issue earlier, and
	// end-to-end latency is measured from it.
	At uint64
	// Key is the probe key (one of the tenant's TenantKeys).
	Key []byte
	// Op is the operation kind; the zero value is a lookup.
	Op Op
	// Value is the payload of an OpPut request (ignored otherwise).
	Value uint64
}

// tenantSeed derives an independent deterministic sub-seed for tenant t.
func tenantSeed(seed int64, t, salt int) int64 {
	x := uint64(seed) ^ 0x9E3779B97F4A7C15*uint64(t+1) ^ 0x85EBCA6B*uint64(salt+1)
	// xorshift mix so adjacent tenants do not share low bits.
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return int64(x >> 1)
}

// zipfWeights returns the normalized Zipf(s) popularity of n ranks.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// tenantCounts splits the total request budget across tenants by Zipf
// weight using largest-remainder rounding (deterministic; every tenant
// with weight gets its floor share, leftovers go to the largest
// fractional parts, ties to the lower tenant index).
func tenantCounts(cfg GenConfig) []int {
	w := zipfWeights(cfg.Tenants, cfg.TenantSkew)
	counts := make([]int, cfg.Tenants)
	type frac struct {
		t int
		f float64
	}
	fracs := make([]frac, cfg.Tenants)
	assigned := 0
	for t, wt := range w {
		exact := wt * float64(cfg.Requests)
		counts[t] = int(exact)
		assigned += counts[t]
		fracs[t] = frac{t, exact - float64(counts[t])}
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
	for i := 0; assigned < cfg.Requests; i++ {
		counts[fracs[i%len(fracs)].t]++
		assigned++
	}
	return counts
}

// TenantKey returns tenant t's key of the given popularity rank: the
// first four bytes encode the tenant, the next four the rank, and the
// tail is a deterministic per-key byte pattern. Keys are unique within
// and across tenants.
func TenantKey(cfg GenConfig, t, rank int) []byte {
	k := make([]byte, cfg.KeyLen)
	binary.BigEndian.PutUint32(k[0:4], uint32(t))
	binary.BigEndian.PutUint32(k[4:8], uint32(rank))
	x := uint64(t)<<32 | uint64(rank) | 1
	for i := 8; i < cfg.KeyLen; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		k[i] = byte(x)
	}
	return k
}

// TenantValue returns the value stored under tenant t's rank-r key:
// unique across the machine and never zero (trie-safe), so backends can
// be cross-checked value-for-value.
func TenantValue(t, rank int) uint64 {
	return uint64(t+1)<<32 | uint64(rank+1)
}

// TenantKeys materializes tenant t's full table contents in rank order —
// what the server hands to Backend.Build.
func TenantKeys(cfg GenConfig, t int) (keys [][]byte, values []uint64) {
	keys = make([][]byte, cfg.KeysPerTenant)
	values = make([]uint64, cfg.KeysPerTenant)
	for r := range keys {
		keys[r] = TenantKey(cfg, t, r)
		values[r] = TenantValue(t, r)
	}
	return keys, values
}

// genTenant produces tenant t's private request sub-stream: count
// requests with Zipf(KeySkew) key ranks and an open-loop arrival process
// whose mean gap is the aggregate gap divided by the tenant's
// popularity share. Entirely a function of (cfg, t, count).
func genTenant(cfg GenConfig, t, count int, share float64) []Request {
	if count == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(tenantSeed(cfg.Seed, t, 0)))
	pick := workload.NewZipfPicker(cfg.KeysPerTenant, cfg.KeySkew, tenantSeed(cfg.Seed, t, 1))
	// The write decision stream has its own sub-seeded source, created
	// only when writes are enabled: a read-only config consumes exactly
	// the draws it always did, keeping its streams byte-identical.
	var wrng *rand.Rand
	if cfg.WriteFraction > 0 {
		wrng = rand.New(rand.NewSource(tenantSeed(cfg.Seed, t, 2)))
	}
	gap := uint64(math.Round(float64(cfg.MeanGap) / share))
	if gap < 1 {
		gap = 1
	}
	reqs := make([]Request, count)
	at := uint64(0)
	for i := range reqs {
		// Uniform in [1, 2*gap-1]: mean gap, never zero, deterministic.
		at += 1 + uint64(rng.Int63n(int64(2*gap-1)))
		req := Request{Tenant: t, At: at, Key: TenantKey(cfg, t, pick.Next())}
		if wrng != nil && wrng.Float64() < cfg.WriteFraction {
			if wrng.Float64() < cfg.DeleteFraction {
				req.Op = OpDel
			} else {
				req.Op = OpPut
				req.Value = wrng.Uint64() | 1 // never zero: trie-safe
			}
		}
		reqs[i] = req
	}
	return reqs
}

// Generate produces the merged open-loop request stream serially.
func Generate(cfg GenConfig) ([]Request, error) {
	return GenerateParallel(cfg, 1)
}

// GenerateParallel produces the same stream with per-tenant generation
// fanned across workers (<= 0 means GOMAXPROCS). Each tenant's
// sub-stream is an independent pure function of the config, and the
// merge orders by (arrival, tenant), so the output is byte-identical to
// Generate at any worker count.
func GenerateParallel(cfg GenConfig, workers int) ([]Request, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	counts := tenantCounts(cfg)
	w := zipfWeights(cfg.Tenants, cfg.TenantSkew)
	tenants := make([]int, cfg.Tenants)
	for t := range tenants {
		tenants[t] = t
	}
	streams, err := runner.Map(context.Background(), workers, tenants,
		func(_ context.Context, _ int, t int) ([]Request, error) {
			return genTenant(cfg, t, counts[t], w[t]), nil
		})
	if err != nil {
		return nil, err
	}
	var merged []Request
	for _, s := range streams {
		merged = append(merged, s...)
	}
	// Stable by arrival with tenant tie-break: per-tenant order is
	// already ascending, so the merge is totally determined.
	sort.SliceStable(merged, func(a, b int) bool {
		if merged[a].At != merged[b].At {
			return merged[a].At < merged[b].At
		}
		return merged[a].Tenant < merged[b].Tenant
	})
	for i := range merged {
		merged[i].Seq = i
	}
	return merged, nil
}
