package serve

// Circuit breaker for the primary serving backend. The serving layer
// treats the accelerator as an unreliable fast path with the software
// walker as safety net (Tailwind's placement discipline); the breaker is
// the wholesale version of that judgment. It watches the primary's
// fault rate over a sliding window of simulated cycles and, once the
// window turns rotten, stops offering it requests at all: admission is
// bypassed and every request routes straight to the failover backend
// until a deterministic half-open probe phase proves the primary healthy
// again. Everything is driven off the backend's simulated clock, so a
// replayed trace walks the breaker through the identical state sequence.

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int

const (
	// BreakerClosed: healthy; requests flow to the primary backend.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the window tripped; requests fast-fail to the
	// failover backend without touching the primary.
	BreakerOpen
	// BreakerHalfOpen: the open hold expired; a bounded number of probe
	// requests test the primary while everything else stays failed over.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "invalid"
}

// Defaults for the zero BreakerConfig. The window is sized to hold a
// few dozen typical request lifetimes at the default serving gap, so a
// burst of injected faults trips it within one soak but a lone fault
// ages out before the next one lands.
const (
	DefaultBreakerWindow     = 32768
	DefaultBreakerBuckets    = 8
	DefaultBreakerTripRate   = 0.5
	DefaultBreakerMinSamples = 8
	DefaultBreakerProbes     = 4
)

// BreakerConfig tunes the primary-path circuit breaker. The zero value
// means "enabled with defaults"; set Disabled to opt out while keeping
// the rest of the resilience layer.
type BreakerConfig struct {
	// Disabled turns the breaker off entirely: requests always try the
	// primary (per-request retry/failover still applies).
	Disabled bool `json:"disabled,omitempty"`
	// Window is the sliding fault-rate window in simulated cycles.
	// 0 uses DefaultBreakerWindow.
	Window uint64 `json:"window,omitempty"`
	// Buckets subdivides the window; outcomes age out a bucket at a
	// time, so more buckets track the rate more smoothly for a little
	// more state. 0 uses DefaultBreakerBuckets.
	Buckets int `json:"buckets,omitempty"`
	// TripRate is the fault fraction within the window at which the
	// breaker opens. 0 uses DefaultBreakerTripRate.
	TripRate float64 `json:"trip_rate,omitempty"`
	// MinSamples is the minimum window population before TripRate is
	// evaluated — a single early fault must not trip an idle breaker.
	// 0 uses DefaultBreakerMinSamples.
	MinSamples uint64 `json:"min_samples,omitempty"`
	// OpenFor is how long an open breaker holds before half-opening, in
	// simulated cycles. 0 uses Window.
	OpenFor uint64 `json:"open_for,omitempty"`
	// HalfOpenProbes is both the cap on concurrently in-flight probe
	// requests while half-open and the number of consecutive probe
	// successes that close the breaker. A probe fault reopens it.
	// 0 uses DefaultBreakerProbes.
	HalfOpenProbes int `json:"half_open_probes,omitempty"`
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window == 0 {
		c.Window = DefaultBreakerWindow
	}
	if c.Buckets <= 0 {
		c.Buckets = DefaultBreakerBuckets
	}
	if c.TripRate <= 0 {
		c.TripRate = DefaultBreakerTripRate
	}
	if c.MinSamples == 0 {
		c.MinSamples = DefaultBreakerMinSamples
	}
	if c.OpenFor == 0 {
		c.OpenFor = c.Window
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = DefaultBreakerProbes
	}
	return c
}

// Breaker is the deterministic sliding-window circuit breaker. All
// decisions are pure functions of the (simulated-cycle, outcome)
// sequence fed to Allow/Record, so serial, parallel-generated, and
// replayed runs see identical state transitions. Not safe for
// concurrent use — like the server, one goroutine owns it.
type Breaker struct {
	cfg   BreakerConfig
	width uint64 // cycles per bucket

	state    BreakerState
	ok, bad  []uint64 // per-bucket outcome counts, ring-indexed
	slot     uint64   // absolute bucket index holding the latest Record
	openedAt uint64   // cycle of the last Closed/HalfOpen -> Open trip

	probeInflight int // half-open probes currently outstanding
	probeOK       int // consecutive half-open probe successes

	trips     uint64
	fastFails uint64
	probes    uint64
}

// NewBreaker builds a breaker with cfg's zero fields defaulted.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{
		cfg:   cfg,
		width: cfg.Window / uint64(cfg.Buckets),
		ok:    make([]uint64, cfg.Buckets),
		bad:   make([]uint64, cfg.Buckets),
	}
}

// rotate ages the window forward to the bucket containing cycle now,
// clearing every bucket that fell out of it.
func (b *Breaker) rotate(now uint64) {
	abs := now / b.width
	if abs <= b.slot {
		return
	}
	n := abs - b.slot
	if n > uint64(b.cfg.Buckets) {
		n = uint64(b.cfg.Buckets)
	}
	for i := uint64(1); i <= n; i++ {
		idx := (b.slot + i) % uint64(b.cfg.Buckets)
		b.ok[idx] = 0
		b.bad[idx] = 0
	}
	b.slot = abs
}

func (b *Breaker) counts() (ok, bad uint64) {
	for i := range b.ok {
		ok += b.ok[i]
		bad += b.bad[i]
	}
	return ok, bad
}

func (b *Breaker) trip(now uint64) {
	b.state = BreakerOpen
	b.openedAt = now
	b.trips++
	// Drop the rotten window so a later close starts from a clean slate
	// instead of instantly re-tripping on stale faults.
	for i := range b.ok {
		b.ok[i] = 0
		b.bad[i] = 0
	}
}

// Allow reports whether a request arriving at cycle now may try the
// primary backend. false means route it to the failover path (counted
// as a fast-fail). An open breaker whose hold has expired half-opens
// here and admits up to HalfOpenProbes concurrent probes.
func (b *Breaker) Allow(now uint64) bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now < b.openedAt+b.cfg.OpenFor {
			b.fastFails++
			return false
		}
		b.state = BreakerHalfOpen
		b.probeInflight = 0
		b.probeOK = 0
		fallthrough
	default: // BreakerHalfOpen
		if b.probeInflight >= b.cfg.HalfOpenProbes {
			b.fastFails++
			return false
		}
		b.probeInflight++
		b.probes++
		return true
	}
}

// Record feeds one primary-backend outcome (ok = completed without a
// fault) observed at cycle now into the window and runs the state
// machine: a closed breaker trips when the window's fault rate reaches
// TripRate with at least MinSamples outcomes; a half-open breaker
// closes after HalfOpenProbes consecutive successes and reopens on any
// fault.
func (b *Breaker) Record(now uint64, ok bool) {
	b.rotate(now)
	if b.state == BreakerHalfOpen {
		if b.probeInflight > 0 {
			b.probeInflight--
		}
		if !ok {
			b.trip(now)
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			b.state = BreakerClosed
		}
		return
	}
	idx := b.slot % uint64(b.cfg.Buckets)
	if ok {
		b.ok[idx]++
	} else {
		b.bad[idx]++
	}
	if b.state != BreakerClosed || ok {
		return
	}
	okN, badN := b.counts()
	if okN+badN >= b.cfg.MinSamples && float64(badN) >= b.cfg.TripRate*float64(okN+badN) {
		b.trip(now)
	}
}

// State returns the current automaton state.
func (b *Breaker) State() BreakerState { return b.state }

// OpenedAt returns the cycle of the most recent trip.
func (b *Breaker) OpenedAt() uint64 { return b.openedAt }

// Trips counts Closed/HalfOpen -> Open transitions.
func (b *Breaker) Trips() uint64 { return b.trips }

// FastFails counts requests refused the primary while open (or while
// half-open past the probe bound) and routed to the failover path.
func (b *Breaker) FastFails() uint64 { return b.fastFails }

// Probes counts requests admitted to the primary while half-open.
func (b *Breaker) Probes() uint64 { return b.probes }

// BreakerReport is the breaker's summary row in a serving Report.
type BreakerReport struct {
	State     string `json:"state"`
	Trips     uint64 `json:"trips"`
	FastFails uint64 `json:"fast_fails"`
	Probes    uint64 `json:"probes"`
}
