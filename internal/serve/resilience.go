package serve

import "errors"

// ErrAdmissionStall is returned (wrapped) by Run when admission control
// wedges: a tenant is over its in-flight bound — or the backend reports
// itself full — while nothing is actually in flight to drain. That is
// never a load condition (load waits, or sheds under a resilience
// deadline); it means the backend's capacity accounting and the
// admission controller disagree, i.e. a backend bug.
var ErrAdmissionStall = errors.New("serve: admission stalled with nothing in flight")

// Defaults for the zero Resilience fields.
const (
	// DefaultMaxRetries: one retry before failover. The QEI engine
	// already retries transient faults from the root internally; a
	// fault that surfaces here has beaten that, so the serving layer
	// spends one more attempt and then degrades.
	DefaultMaxRetries = 1
	// DefaultRetryBackoff is the simulated-cycle pause before the first
	// retry, doubling per attempt.
	DefaultRetryBackoff = 64
)

// Resilience configures the serving resilience layer: per-request
// deadlines with load shedding, bounded retry of faulting queries on
// the primary backend, per-request failover to a software safety-net
// backend, and a circuit breaker that routes around a rotten primary
// wholesale. A nil *Resilience in Config disables the layer entirely —
// the server then behaves exactly as it did before the layer existed,
// byte for byte.
type Resilience struct {
	// Deadline is the per-request completion budget in simulated cycles
	// from arrival. A request that cannot be issued — or whose faulting
	// execution cannot be retried — before its deadline is shed:
	// counted per tenant (TenantStats.Shed, serve/shed), its wait still
	// observed in the latency histograms, never an error. Writes are
	// never shed (they are state the rest of the stream depends on).
	// 0 disables shedding.
	Deadline uint64
	// MaxRetries bounds how many times one request's faulting query is
	// reissued on the primary backend before failing over. 0 uses
	// DefaultMaxRetries; negative disables retries.
	MaxRetries int
	// RetryBackoff is the simulated-cycle pause charged before the
	// first retry, doubling on each subsequent attempt. The pause
	// advances the shared clock, so backoff is charged honestly to the
	// request's (and every later request's) latency. 0 uses
	// DefaultRetryBackoff.
	RetryBackoff uint64
	// Failover is the safety-net backend a faulting request degrades to
	// once its retries are exhausted. It must share the primary's
	// machine and clock — the tables Run built on the primary are
	// queried on it directly (the qei/baseline adapters over one System
	// satisfy this). nil disables both failover and the breaker; faults
	// then retire with their error exactly as without the layer.
	Failover Backend
	// Breaker tunes the primary-path circuit breaker; the zero value
	// enables it with defaults. Ignored (no breaker) without Failover.
	Breaker BreakerConfig
}

func (r *Resilience) maxRetries() int {
	switch {
	case r.MaxRetries < 0:
		return 0
	case r.MaxRetries == 0:
		return DefaultMaxRetries
	}
	return r.MaxRetries
}

// retryBackoff is the pause before reissue number attempt (0-based).
func (r *Resilience) retryBackoff(attempt int) uint64 {
	base := r.RetryBackoff
	if base == 0 {
		base = DefaultRetryBackoff
	}
	if attempt > 32 {
		attempt = 32
	}
	return base << uint(attempt)
}
