package serve

import (
	"bytes"
	"math"
	"reflect"
	"sort"
	"testing"

	"qei/internal/metrics"
)

func testGen() GenConfig {
	return GenConfig{
		Tenants:       4,
		Requests:      400,
		KeysPerTenant: 64,
		KeyLen:        16,
		Kind:          "cuckoo",
		TenantSkew:    0.99,
		KeySkew:       0.99,
		MeanGap:       50,
		Seed:          7,
	}
}

func TestGenerateSerialParallelIdentical(t *testing.T) {
	cfg := testGen()
	serial, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := GenerateParallel(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("parallel generation (%d workers) differs from serial", workers)
		}
	}
}

func TestGenerateDeterministicAndSkewed(t *testing.T) {
	cfg := testGen()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config generated different streams")
	}
	if len(a) != cfg.Requests {
		t.Fatalf("generated %d requests, want %d", len(a), cfg.Requests)
	}
	// Arrival order, sequential Seq.
	for i := range a {
		if a[i].Seq != i {
			t.Fatalf("request %d has seq %d", i, a[i].Seq)
		}
		if i > 0 && a[i].At < a[i-1].At {
			t.Fatalf("arrivals out of order at %d: %d < %d", i, a[i].At, a[i-1].At)
		}
	}
	// Zipf tenant popularity: tenant 0 must dominate tenant N-1.
	counts := make([]int, cfg.Tenants)
	for _, r := range a {
		counts[r.Tenant]++
	}
	if counts[0] <= counts[cfg.Tenants-1] {
		t.Fatalf("tenant popularity not skewed: %v", counts)
	}
	// Different seed, different stream.
	cfg2 := cfg
	cfg2.Seed = 8
	c, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical streams")
	}
}

func TestTenantCountsExact(t *testing.T) {
	for _, tenants := range []int{1, 3, 7, 24} {
		for _, reqs := range []int{1, 10, 997} {
			cfg := GenConfig{Tenants: tenants, Requests: reqs, TenantSkew: 0.99}
			counts := tenantCounts(cfg)
			sum := 0
			for _, c := range counts {
				sum += c
			}
			if sum != reqs {
				t.Fatalf("tenants=%d requests=%d: counts sum to %d", tenants, reqs, sum)
			}
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	cfg := testGen()
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, cfg, reqs); err != nil {
		t.Fatal(err)
	}
	gotCfg, gotReqs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotCfg != cfg {
		t.Fatalf("config round-trip: got %+v want %+v", gotCfg, cfg)
	}
	if !reflect.DeepEqual(gotReqs, reqs) {
		t.Fatal("request stream round-trip differs")
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	var h LatencyHist
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max %d", h.Max())
	}
	checks := []struct {
		q     float64
		exact uint64
	}{{0.50, 500}, {0.99, 990}, {0.999, 999}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		rel := math.Abs(float64(got)-float64(c.exact)) / float64(c.exact)
		if rel > 0.07 {
			t.Errorf("q%.3f = %d, want ~%d (rel err %.3f)", c.q, got, c.exact, rel)
		}
		if got > h.Max() {
			t.Errorf("q%.3f = %d exceeds max %d", c.q, got, h.Max())
		}
	}
	// Bucket mapping sanity: every value lands in a bucket whose range
	// contains it.
	for _, v := range []uint64{0, 1, 31, 32, 33, 1000, 1 << 20, 1<<40 + 12345} {
		i := bucketIndex(v)
		if bucketMax(i) < v {
			t.Errorf("value %d maps to bucket %d with max %d", v, i, bucketMax(i))
		}
		if i > 0 && bucketMax(i-1) >= v {
			t.Errorf("value %d maps above bucket %d (max %d)", v, i-1, bucketMax(i-1))
		}
	}
}

func TestLatencyHistMerge(t *testing.T) {
	var a, b, all LatencyHist
	for v := uint64(0); v < 500; v++ {
		a.Observe(v * 3)
		all.Observe(v * 3)
	}
	for v := uint64(0); v < 300; v++ {
		b.Observe(v * 7)
		all.Observe(v * 7)
	}
	a.Merge(&b)
	if a != all {
		t.Fatal("merged histogram differs from directly-fed histogram")
	}
}

func TestAdmission(t *testing.T) {
	a := NewAdmission(2, 2)
	if !a.TryAcquire(0) || !a.TryAcquire(0) {
		t.Fatal("under-bound acquire refused")
	}
	if a.TryAcquire(0) {
		t.Fatal("over-bound acquire admitted")
	}
	if a.Throttled(0) != 1 {
		t.Fatalf("throttled %d, want 1", a.Throttled(0))
	}
	if !a.TryAcquire(1) {
		t.Fatal("tenant 1 starved by tenant 0's bound")
	}
	a.Release(0)
	if !a.TryAcquire(0) {
		t.Fatal("released slot not reusable")
	}
	if NewAdmission(1, 0).Limit() != 1 {
		t.Fatal("limit not clamped to 1")
	}
}

// fakeBackend is a synthetic adapter for server-loop tests: tables are
// maps, each query completes a fixed latency after issue, and at most
// cap queries may be in flight.
type fakeBackend struct {
	now      uint64
	lat      uint64
	cap      int
	inflight int
	queries  uint64
	writes   uint64
	tables   []map[string]uint64
}

type fakeTable int

type fakeHandle struct {
	res  Result
	done bool
}

func (f *fakeBackend) Name() string { return "fake" }

func (f *fakeBackend) Build(kind string, keys [][]byte, values []uint64) (Table, error) {
	m := make(map[string]uint64, len(keys))
	for i, k := range keys {
		m[string(k)] = values[i]
	}
	f.tables = append(f.tables, m)
	return fakeTable(len(f.tables) - 1), nil
}

func (f *fakeBackend) lookup(t Table, key []byte) Result {
	f.queries++
	v, ok := f.tables[int(t.(fakeTable))][string(key)]
	return Result{Found: ok, Value: v, Done: f.now + f.lat}
}

func (f *fakeBackend) Query(t Table, key []byte) (Result, error) {
	res := f.lookup(t, key)
	f.now = res.Done
	return res, nil
}

func (f *fakeBackend) QueryAsync(t Table, key []byte) (Handle, error) {
	if f.inflight >= f.cap {
		return nil, ErrBackendFull
	}
	f.inflight++
	return &fakeHandle{res: f.lookup(t, key)}, nil
}

func (f *fakeBackend) finish(h *fakeHandle) {
	if !h.done {
		h.done = true
		f.inflight--
	}
}

func (f *fakeBackend) Poll(h Handle) (Result, error) {
	fh := h.(*fakeHandle)
	if fh.res.Done > f.now {
		return Result{}, ErrPending
	}
	f.finish(fh)
	return fh.res, nil
}

func (f *fakeBackend) Wait(h Handle) (Result, error) {
	fh := h.(*fakeHandle)
	if fh.res.Done > f.now {
		f.now = fh.res.Done
	}
	f.finish(fh)
	return fh.res, nil
}

func (f *fakeBackend) Now() uint64      { return f.now }
func (f *fakeBackend) Advance(n uint64) { f.now += n }
func (f *fakeBackend) Capacity() int    { return f.cap }
func (f *fakeBackend) Stats() Stats     { return Stats{Queries: f.queries} }

// fakeBackend also implements Mutator: map tables are mutable as-is.
func (f *fakeBackend) BuildMutable(kind string, keys [][]byte, values []uint64) (Table, error) {
	return f.Build(kind, keys, values)
}

func (f *fakeBackend) Insert(t Table, key []byte, value uint64) error {
	f.tables[int(t.(fakeTable))][string(key)] = value
	f.writes++
	return nil
}

func (f *fakeBackend) Delete(t Table, key []byte) (bool, error) {
	m := f.tables[int(t.(fakeTable))]
	_, ok := m[string(key)]
	delete(m, string(key))
	f.writes++
	return ok, nil
}

// roBackend strips the Mutator methods off a fakeBackend, modeling a
// backend with no write path.
type roBackend struct{ f *fakeBackend }

func (r roBackend) Name() string { return r.f.Name() }
func (r roBackend) Build(kind string, keys [][]byte, values []uint64) (Table, error) {
	return r.f.Build(kind, keys, values)
}
func (r roBackend) Query(t Table, key []byte) (Result, error)      { return r.f.Query(t, key) }
func (r roBackend) QueryAsync(t Table, key []byte) (Handle, error) { return r.f.QueryAsync(t, key) }
func (r roBackend) Poll(h Handle) (Result, error)                  { return r.f.Poll(h) }
func (r roBackend) Wait(h Handle) (Result, error)                  { return r.f.Wait(h) }
func (r roBackend) Now() uint64                                    { return r.f.Now() }
func (r roBackend) Advance(n uint64)                               { r.f.Advance(n) }
func (r roBackend) Capacity() int                                  { return r.f.Capacity() }
func (r roBackend) Stats() Stats                                   { return r.f.Stats() }

func TestServerRunFake(t *testing.T) {
	cfg := Config{Gen: testGen(), SLO: 400, KeepResults: true}
	reqs, err := Generate(cfg.Gen)
	if err != nil {
		t.Fatal(err)
	}
	b := &fakeBackend{lat: 200, cap: 8}
	rep, err := Run(b, cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Requests != uint64(len(reqs)) {
		t.Fatalf("retired %d of %d requests", rep.Total.Requests, len(reqs))
	}
	// Every generated key was built into its tenant's table.
	if rep.Total.Found != rep.Total.Requests {
		t.Fatalf("found %d of %d", rep.Total.Found, rep.Total.Requests)
	}
	// Values match the deterministic tenant/rank encoding.
	for i, res := range rep.Results {
		want := TenantValue(reqs[i].Tenant, int(res.Value&0xFFFFFFFF)-1)
		if res.Value != want {
			t.Fatalf("request %d value %#x does not decode", i, res.Value)
		}
	}
	// Minimum possible latency is the backend's service time.
	if rep.Total.P50 < b.lat {
		t.Fatalf("p50 %d below service latency %d", rep.Total.P50, b.lat)
	}
	if rep.Total.P50 > rep.Total.P99 || rep.Total.P99 > rep.Total.P999 {
		t.Fatalf("percentiles not monotone: %d %d %d", rep.Total.P50, rep.Total.P99, rep.Total.P999)
	}
	sumReq := uint64(0)
	for _, ts := range rep.Tenants {
		sumReq += ts.Requests
	}
	if sumReq != rep.Total.Requests {
		t.Fatal("per-tenant requests do not sum to total")
	}
}

func TestServerDeterministicAndMetrics(t *testing.T) {
	gen := testGen()
	reqs, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*Report, *metrics.Registry) {
		reg := metrics.NewRegistry()
		cfg := Config{Gen: gen, SLO: 300, SlotsPerTenant: 2, Metrics: reg}
		rep, err := Run(&fakeBackend{lat: 250, cap: 8}, cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rep, reg
	}
	r1, reg1 := run()
	r2, reg2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("two identical runs produced different reports")
	}
	if reg1.Snapshot().String() != reg2.Snapshot().String() {
		t.Fatal("two identical runs produced different metric snapshots")
	}
	snap := reg1.Snapshot()
	if v := snap.Value("serve/requests"); v != uint64(len(reqs)) {
		t.Fatalf("serve/requests = %d, want %d", v, len(reqs))
	}
	if v := snap.Value("serve/tenant0/requests"); v != r1.Tenants[0].Requests {
		t.Fatalf("serve/tenant0/requests = %d, want %d", v, r1.Tenants[0].Requests)
	}
	if v := snap.Value("serve/latency_p99"); v != r1.Total.P99 {
		t.Fatalf("serve/latency_p99 = %d, want %d", v, r1.Total.P99)
	}
	// A saturating open loop with a tight per-tenant bound must actually
	// throttle and violate the SLO somewhere.
	if r1.Total.Throttled == 0 {
		t.Fatal("no throttling under saturation")
	}
	if r1.Total.SLOViolations == 0 {
		t.Fatal("no SLO violations under saturation")
	}
}

func TestServerAdmissionIsolation(t *testing.T) {
	// One hot tenant at 4x the load of three cold ones: with per-tenant
	// slots the cold tenants' p99 must stay well below the hot tenant's.
	gen := testGen()
	gen.TenantSkew = 1.5 // sharpen the skew
	gen.MeanGap = 30     // saturate
	reqs, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(&fakeBackend{lat: 400, cap: 8}, Config{Gen: gen, SlotsPerTenant: 2}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := rep.Tenants[0], rep.Tenants[gen.Tenants-1]
	if hot.Requests <= cold.Requests {
		t.Fatalf("skew missing: hot %d cold %d", hot.Requests, cold.Requests)
	}
	if cold.P99 > hot.P99 {
		t.Fatalf("cold tenant p99 %d above hot tenant p99 %d despite admission bound", cold.P99, hot.P99)
	}
}

func TestRunRejectsBadStream(t *testing.T) {
	gen := testGen()
	reqs := []Request{{Seq: 0, Tenant: gen.Tenants + 3, At: 0, Key: make([]byte, gen.KeyLen)}}
	if _, err := Run(&fakeBackend{lat: 10, cap: 4}, Config{Gen: gen}, reqs); err == nil {
		t.Fatal("out-of-range tenant accepted")
	}
}

func TestGenConfigValidate(t *testing.T) {
	bad := []GenConfig{
		{},
		{Tenants: 1, Requests: 1, KeysPerTenant: 1, KeyLen: 4, MeanGap: 1},
		{Tenants: 1, Requests: 1, KeysPerTenant: 1, KeyLen: 8, MeanGap: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := testGen().Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestTenantKeysUnique(t *testing.T) {
	cfg := testGen()
	seen := make(map[string]bool)
	for tn := 0; tn < cfg.Tenants; tn++ {
		keys, values := TenantKeys(cfg, tn)
		if len(keys) != cfg.KeysPerTenant || len(values) != cfg.KeysPerTenant {
			t.Fatal("wrong population")
		}
		for r, k := range keys {
			if len(k) != cfg.KeyLen {
				t.Fatalf("key length %d", len(k))
			}
			if seen[string(k)] {
				t.Fatalf("duplicate key tenant %d rank %d", tn, r)
			}
			seen[string(k)] = true
			if values[r] == 0 {
				t.Fatal("zero value")
			}
		}
	}
}

// testGenRW is testGen with a 30% write mix (of which 30% deletes).
func testGenRW() GenConfig {
	cfg := testGen()
	cfg.WriteFraction = 0.3
	cfg.DeleteFraction = 0.3
	return cfg
}

// Enabling writes must not perturb the read-side stream: arrivals, keys
// and tenants are drawn from their own RNGs, so the mixed stream is the
// read-only stream with ops annotated onto it.
func TestGenerateWritesPreserveArrivals(t *testing.T) {
	ro, err := Generate(testGen())
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Generate(testGenRW())
	if err != nil {
		t.Fatal(err)
	}
	if len(ro) != len(rw) {
		t.Fatalf("stream lengths differ: %d vs %d", len(ro), len(rw))
	}
	var gets, puts, dels int
	for i := range rw {
		if rw[i].At != ro[i].At || rw[i].Tenant != ro[i].Tenant || !bytes.Equal(rw[i].Key, ro[i].Key) {
			t.Fatalf("request %d read side diverged: %+v vs %+v", i, rw[i], ro[i])
		}
		switch rw[i].Op {
		case OpGet:
			gets++
		case OpPut:
			puts++
			if rw[i].Value == 0 {
				t.Fatalf("request %d: zero put value", i)
			}
		case OpDel:
			dels++
		}
	}
	if gets == 0 || puts == 0 || dels == 0 {
		t.Fatalf("stream not mixed: %d gets %d puts %d dels", gets, puts, dels)
	}
}

func TestTraceRoundTripWithOps(t *testing.T) {
	cfg := testGenRW()
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, cfg, reqs); err != nil {
		t.Fatal(err)
	}
	gotCfg, gotReqs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotCfg != cfg || !reflect.DeepEqual(gotReqs, reqs) {
		t.Fatal("mixed-stream trace round-trip differs")
	}

	// Read-only traces never mention ops — byte-compatible with the
	// pre-write format.
	buf.Reset()
	roReqs, err := Generate(testGen())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&buf, testGen(), roReqs); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"op"`)) ||
		bytes.Contains(buf.Bytes(), []byte("write_fraction")) {
		t.Fatal("read-only trace mentions write fields")
	}
}

func TestServerMixedReadWrite(t *testing.T) {
	gen := testGenRW()
	reqs, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*Report, *metrics.Registry) {
		reg := metrics.NewRegistry()
		cfg := Config{Gen: gen, SLO: 400, WriteCost: 100, KeepResults: true, Metrics: reg}
		rep, err := Run(&fakeBackend{lat: 200, cap: 8}, cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rep, reg
	}
	rep, reg := run()
	if rep.Total.Writes == 0 {
		t.Fatal("mixed stream retired no writes")
	}
	if got := rep.Total.Requests + rep.Total.Writes; got != uint64(len(reqs)) {
		t.Fatalf("reads %d + writes %d != %d requests", rep.Total.Requests, rep.Total.Writes, len(reqs))
	}
	// Deletes must make some subsequent lookups miss.
	if rep.Total.Found == rep.Total.Requests {
		t.Fatal("every lookup hit despite deletes")
	}
	// Write latency includes the configured mutation cost.
	if rep.Total.WriteP50 < 100 || rep.Total.WriteP99 < rep.Total.WriteP50 {
		t.Fatalf("write percentiles: p50 %d p99 %d", rep.Total.WriteP50, rep.Total.WriteP99)
	}
	snap := reg.Snapshot()
	if v := snap.Value("serve/writes"); v != rep.Total.Writes {
		t.Fatalf("serve/writes = %d, want %d", v, rep.Total.Writes)
	}
	// Put results carry the written value; del results report prior
	// existence.
	for i, res := range rep.Results {
		if reqs[i].Op == OpPut && (res.Value != reqs[i].Value || !res.Found) {
			t.Fatalf("request %d put result %+v", i, res)
		}
	}
	// Deterministic: an identical rerun matches field for field.
	rep2, _ := run()
	if !reflect.DeepEqual(rep, rep2) {
		t.Fatal("mixed-stream rerun diverged")
	}
}

func TestServerWritesNeedMutator(t *testing.T) {
	gen := testGenRW()
	reqs, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(roBackend{&fakeBackend{lat: 10, cap: 4}}, Config{Gen: gen}, reqs)
	if err == nil {
		t.Fatal("write stream accepted by a backend with no write path")
	}
}

func TestGenConfigValidateWriteFractions(t *testing.T) {
	for _, bad := range []GenConfig{
		func() GenConfig { c := testGen(); c.WriteFraction = -0.1; return c }(),
		func() GenConfig { c := testGen(); c.WriteFraction = 1.5; return c }(),
		func() GenConfig { c := testGen(); c.DeleteFraction = 2; return c }(),
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("bad write fractions accepted: %+v", bad)
		}
	}
}

// sortedQuantiles cross-checks hist quantiles against exact sorted-slice
// quantiles on a skewed sample set.
func TestLatencyHistVsExact(t *testing.T) {
	var h LatencyHist
	var samples []uint64
	x := uint64(12345)
	for i := 0; i < 20000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v := x % 100000
		if i%100 == 0 {
			v *= 50 // heavy tail
		}
		h.Observe(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		idx := int(q*float64(len(samples))) - 1
		if idx < 0 {
			idx = 0
		}
		exact := samples[idx]
		got := h.Quantile(q)
		if exact == 0 {
			continue
		}
		rel := math.Abs(float64(got)-float64(exact)) / float64(exact)
		if rel > 0.07 {
			t.Errorf("q%.3f: hist %d vs exact %d (rel %.3f)", q, got, exact, rel)
		}
	}
}
