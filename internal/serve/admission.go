package serve

// Admission is the per-tenant QoS controller: it bounds how many QST
// slots each tenant may hold in flight, so one hot tenant cannot starve
// the others out of the shared accelerator (the multi-tenant isolation
// argument of the paper's cloud setting). The bound is enforced at issue
// time; a request over its tenant's bound waits for one of that tenant's
// own queries to retire, and the wait is charged to the request's
// end-to-end latency (open loop: arrivals never pause).
type Admission struct {
	limit    int
	inflight []int
	// throttled counts admission waits per tenant — how often the bound
	// actually bit.
	throttled []uint64
}

// NewAdmission builds a controller for tenants tenants with the given
// per-tenant in-flight slot limit (values below 1 are clamped to 1, so
// progress is always possible).
func NewAdmission(tenants, perTenant int) *Admission {
	if perTenant < 1 {
		perTenant = 1
	}
	return &Admission{
		limit:     perTenant,
		inflight:  make([]int, tenants),
		throttled: make([]uint64, tenants),
	}
}

// Limit returns the per-tenant slot bound.
func (a *Admission) Limit() int { return a.limit }

// TryAcquire claims a slot for tenant t, reporting whether it was under
// its bound. A refusal is counted as a throttle event.
func (a *Admission) TryAcquire(t int) bool {
	if a.inflight[t] >= a.limit {
		a.throttled[t]++
		return false
	}
	a.inflight[t]++
	return true
}

// Release returns tenant t's slot on retirement.
func (a *Admission) Release(t int) {
	if a.inflight[t] <= 0 {
		panic("serve: admission release without acquire")
	}
	a.inflight[t]--
}

// Inflight returns tenant t's current in-flight count.
func (a *Admission) Inflight(t int) int { return a.inflight[t] }

// Throttled returns how many times tenant t was refused at its bound.
func (a *Admission) Throttled(t int) uint64 { return a.throttled[t] }
