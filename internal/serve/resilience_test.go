package serve

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"qei/internal/metrics"
	"qei/internal/trace"
)

var errInjected = errors.New("injected fault")

// flakyBackend is a fakeBackend whose first failFirst queries complete
// with a fault riding in Result.Err (the accelerator-exception shape):
// the query retires normally, the answer is garbage.
type flakyBackend struct {
	fakeBackend
	failFirst uint64
}

func (f *flakyBackend) QueryAsync(t Table, key []byte) (Handle, error) {
	h, err := f.fakeBackend.QueryAsync(t, key)
	if err != nil {
		return nil, err
	}
	if f.queries <= f.failFirst {
		fh := h.(*fakeHandle)
		fh.res.Err = errInjected
		fh.res.Found = false
		fh.res.Value = 0
	}
	return h, nil
}

// softBackend is the test safety net: blocking queries over the
// primary's own tables on the shared clock, at a higher fixed latency —
// the same shape as the software walker over the accelerator's machine.
type softBackend struct {
	p       *fakeBackend
	lat     uint64
	queries uint64
}

func (s *softBackend) Name() string { return "soft" }
func (s *softBackend) Build(kind string, keys [][]byte, values []uint64) (Table, error) {
	return nil, errors.New("soft: tables are built on the primary")
}
func (s *softBackend) Query(t Table, key []byte) (Result, error) {
	s.queries++
	v, ok := s.p.tables[int(t.(fakeTable))][string(key)]
	s.p.now += s.lat
	return Result{Found: ok, Value: v, Done: s.p.now}, nil
}
func (s *softBackend) QueryAsync(t Table, key []byte) (Handle, error) {
	res, err := s.Query(t, key)
	if err != nil {
		return nil, err
	}
	return &fakeHandle{res: res, done: true}, nil
}
func (s *softBackend) Poll(h Handle) (Result, error) { return h.(*fakeHandle).res, nil }
func (s *softBackend) Wait(h Handle) (Result, error) { return h.(*fakeHandle).res, nil }
func (s *softBackend) Now() uint64                   { return s.p.now }
func (s *softBackend) Advance(n uint64)              { s.p.now += n }
func (s *softBackend) Capacity() int                 { return 1 }
func (s *softBackend) Stats() Stats                  { return Stats{Queries: s.queries} }

// smallGen is a low-rate single-skew stream small enough that every
// resilience outcome is hand-checkable.
func smallGen(requests int) GenConfig {
	cfg := testGen()
	cfg.Requests = requests
	cfg.MeanGap = 500
	return cfg
}

func TestResilienceRetryRecovers(t *testing.T) {
	gen := smallGen(40)
	reqs, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	b := &flakyBackend{fakeBackend: fakeBackend{lat: 100, cap: 8}, failFirst: 1}
	soft := &softBackend{p: &b.fakeBackend, lat: 1000}
	cfg := Config{Gen: gen, Resilience: &Resilience{
		MaxRetries: 2,
		Failover:   soft,
		Breaker:    BreakerConfig{Disabled: true},
	}}
	rep, err := Run(b, cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// The one faulting query is retried once; the retry (query #2)
	// succeeds, so nothing fails over and no fault reaches the report.
	if rep.Total.Retries != 1 {
		t.Fatalf("retries = %d, want 1", rep.Total.Retries)
	}
	if rep.Total.FailedOver != 0 || soft.queries != 0 {
		t.Fatalf("failover used (%d, soft %d) though the retry succeeded", rep.Total.FailedOver, soft.queries)
	}
	if rep.Total.Faults != 0 {
		t.Fatalf("faults = %d surfaced despite recovery", rep.Total.Faults)
	}
	if rep.Total.Requests != uint64(len(reqs)) || rep.Total.Found != uint64(len(reqs)) {
		t.Fatalf("requests %d found %d, want %d", rep.Total.Requests, rep.Total.Found, len(reqs))
	}
}

func TestResilienceFailoverAfterRetries(t *testing.T) {
	gen := smallGen(40)
	reqs, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	// Every primary query faults, forever.
	b := &flakyBackend{fakeBackend: fakeBackend{lat: 100, cap: 8}, failFirst: 1 << 60}
	soft := &softBackend{p: &b.fakeBackend, lat: 1000}
	cfg := Config{Gen: gen, KeepResults: true, Resilience: &Resilience{
		MaxRetries: 1,
		Failover:   soft,
		Breaker:    BreakerConfig{Disabled: true},
	}}
	rep, err := Run(b, cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(len(reqs))
	if rep.Total.Retries != n {
		t.Fatalf("retries = %d, want one per request (%d)", rep.Total.Retries, n)
	}
	if rep.Total.FailedOver != n || soft.queries != n {
		t.Fatalf("failedOver = %d soft = %d, want %d", rep.Total.FailedOver, soft.queries, n)
	}
	// The safety net answers correctly: degraded, not wrong.
	if rep.Total.Found != n || rep.Total.Faults != 0 {
		t.Fatalf("found %d faults %d, want %d found 0 faults", rep.Total.Found, rep.Total.Faults, n)
	}
	for i, res := range rep.Results {
		want := TenantValue(reqs[i].Tenant, int(res.Value&0xFFFFFFFF)-1)
		if !res.Found || res.Value != want {
			t.Fatalf("request %d failed-over result %+v does not decode", i, res)
		}
	}
	// Degraded latency is charged honestly: every request paid at least
	// the software walk.
	if rep.Total.P50 < soft.lat {
		t.Fatalf("p50 %d below the software latency %d", rep.Total.P50, soft.lat)
	}
}

func TestResilienceBreakerRoutesAroundPrimary(t *testing.T) {
	gen := smallGen(200)
	reqs, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	b := &flakyBackend{fakeBackend: fakeBackend{lat: 100, cap: 8}, failFirst: 1 << 60}
	soft := &softBackend{p: &b.fakeBackend, lat: 300}
	reg := metrics.NewRegistry()
	cfg := Config{Gen: gen, Metrics: reg, Resilience: &Resilience{
		MaxRetries: -1,
		Failover:   soft,
		Breaker:    BreakerConfig{Window: 4096, MinSamples: 4, OpenFor: 1 << 40},
	}}
	rep, err := Run(b, cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breaker == nil {
		t.Fatal("no breaker report")
	}
	if rep.Breaker.Trips == 0 || rep.Breaker.State != "open" {
		t.Fatalf("breaker did not trip and hold: %+v", rep.Breaker)
	}
	if rep.Breaker.FastFails == 0 {
		t.Fatal("open breaker fast-failed nothing")
	}
	// Once open, the primary stops seeing queries: it handled only the
	// pre-trip prefix, the safety net everything.
	if b.queries >= uint64(len(reqs))/2 {
		t.Fatalf("primary still served %d of %d queries with the breaker open", b.queries, len(reqs))
	}
	if rep.Total.Requests != uint64(len(reqs)) || rep.Total.Found != uint64(len(reqs)) {
		t.Fatalf("requests %d found %d, want %d", rep.Total.Requests, rep.Total.Found, len(reqs))
	}
	snap := reg.Snapshot()
	if v := snap.Value("serve/breaker/trips"); v != rep.Breaker.Trips {
		t.Fatalf("serve/breaker/trips = %d, want %d", v, rep.Breaker.Trips)
	}
	if v := snap.Value("serve/breaker/state"); v != uint64(BreakerOpen) {
		t.Fatalf("serve/breaker/state = %d, want %d (open)", v, uint64(BreakerOpen))
	}
	if v := snap.Value("serve/failover"); v != rep.Total.FailedOver {
		t.Fatalf("serve/failover = %d, want %d", v, rep.Total.FailedOver)
	}
}

func TestResilienceBreakerRecovers(t *testing.T) {
	gen := smallGen(300)
	reqs, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	// The primary is rotten for its first 12 queries, then heals.
	b := &flakyBackend{fakeBackend: fakeBackend{lat: 100, cap: 8}, failFirst: 12}
	soft := &softBackend{p: &b.fakeBackend, lat: 300}
	tr := trace.New(0)
	cfg := Config{Gen: gen, Trace: tr, Resilience: &Resilience{
		MaxRetries: -1,
		Failover:   soft,
		Breaker:    BreakerConfig{Window: 2048, MinSamples: 4, OpenFor: 2048, HalfOpenProbes: 2},
	}}
	rep, err := Run(b, cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breaker.Trips == 0 {
		t.Fatal("rotten prefix never tripped the breaker")
	}
	if rep.Breaker.State != "closed" {
		t.Fatalf("breaker state %q at end of a healed run, want closed", rep.Breaker.State)
	}
	if rep.Breaker.Probes == 0 {
		t.Fatal("breaker closed without probing")
	}
	// After closing, the healed primary serves the tail.
	if b.queries < uint64(len(reqs))/2 {
		t.Fatalf("primary served only %d of %d queries after healing", b.queries, len(reqs))
	}
	// The degraded stretch shows up as a trace span, the trip as a point.
	var sawTrip, sawDegraded, sawFailover bool
	for _, e := range tr.Events() {
		switch e.Name {
		case "breaker_trip":
			sawTrip = true
		case "breaker_degraded":
			sawDegraded = true
		case "failover":
			sawFailover = true
		}
		if e.Pid != trace.PidServe && e.Cat == "serve" {
			t.Fatalf("serve event on pid %d, want %d", e.Pid, trace.PidServe)
		}
	}
	if !sawTrip || !sawDegraded || !sawFailover {
		t.Fatalf("missing trace events: trip=%v degraded=%v failover=%v", sawTrip, sawDegraded, sawFailover)
	}
}

func TestResilienceDeadlineSheds(t *testing.T) {
	gen := testGen()
	gen.Tenants = 1
	gen.Requests = 60
	gen.MeanGap = 50 // arrivals far outpace the 2000-cycle service time
	reqs, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	b := &fakeBackend{lat: 2000, cap: 1}
	cfg := Config{Gen: gen, SlotsPerTenant: 1, Metrics: reg,
		Resilience: &Resilience{Deadline: 3000}}
	rep, err := Run(b, cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Shed == 0 {
		t.Fatal("saturated run with a tight deadline shed nothing")
	}
	if rep.Total.Requests+rep.Total.Shed != uint64(len(reqs)) {
		t.Fatalf("completed %d + shed %d != %d", rep.Total.Requests, rep.Total.Shed, len(reqs))
	}
	// Shed never surfaces as a fault or an error.
	if rep.Total.Faults != 0 {
		t.Fatalf("shedding recorded %d faults", rep.Total.Faults)
	}
	// The fix under test: shed requests' waits land in the aggregate
	// histogram (serve/requests reads its population), so the tail is
	// not silently flattered.
	snap := reg.Snapshot()
	if v := snap.Value("serve/requests"); v != uint64(len(reqs)) {
		t.Fatalf("aggregate histogram holds %d observations, want %d (shed included)", v, len(reqs))
	}
	if v := snap.Value("serve/shed"); v != rep.Total.Shed {
		t.Fatalf("serve/shed = %d, want %d", v, rep.Total.Shed)
	}
	if v := snap.Value("serve/tenant0/shed"); v != rep.Tenants[0].Shed {
		t.Fatalf("serve/tenant0/shed = %d, want %d", v, rep.Tenants[0].Shed)
	}
}

// TestAdmissionStallBackendFull drives the backend-full stall: a
// backend that reports capacity but admits nothing wedges the server
// with an empty queue, which must surface as ErrAdmissionStall.
func TestAdmissionStallBackendFull(t *testing.T) {
	gen := smallGen(4)
	reqs, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	b := &fakeBackend{lat: 100, cap: 0}
	_, err = Run(b, Config{Gen: gen, SlotsPerTenant: 2}, reqs)
	if err == nil {
		t.Fatal("zero-capacity backend served the stream")
	}
	if !errors.Is(err, ErrAdmissionStall) {
		t.Fatalf("err = %v, want ErrAdmissionStall", err)
	}
}

// TestAdmissionStallTenantBound drives the tenant-bound stall through a
// poisoned admission controller: the tenant is at its limit with
// nothing of its own in flight — unreachable through Run's public
// balance, i.e. exactly the accounting bug the sentinel names.
func TestAdmissionStallTenantBound(t *testing.T) {
	gen := smallGen(4)
	reqs, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer(&fakeBackend{lat: 100, cap: 8}, Config{Gen: gen, SlotsPerTenant: 1}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Leak the tenant's only slot.
	if !s.adm.TryAcquire(reqs[0].Tenant) {
		t.Fatal("could not poison the admission controller")
	}
	err = s.serve(&reqs[0])
	if err == nil {
		t.Fatal("stalled tenant served")
	}
	if !errors.Is(err, ErrAdmissionStall) {
		t.Fatalf("err = %v, want ErrAdmissionStall", err)
	}
}

// TestResilienceOffIsByteIdentical pins the opt-in contract: a nil
// Resilience and a present-but-idle one produce identical reports on a
// clean run, and the clean report's JSON carries no resilience fields.
func TestResilienceOffIsByteIdentical(t *testing.T) {
	gen := testGen()
	reqs, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	run := func(res *Resilience) *Report {
		rep, err := Run(&fakeBackend{lat: 200, cap: 8}, Config{Gen: gen, SLO: 400, Resilience: res}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	off := run(nil)
	idle := run(&Resilience{Deadline: 1 << 50})
	if !reflect.DeepEqual(off, idle) {
		t.Fatalf("idle resilience changed the report:\noff  %+v\nidle %+v", off, idle)
	}
	j, err := json.Marshal(off)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"shed", "retries", "failed_over", "breaker", "faults_injected", "epoch_violations"} {
		if strings.Contains(string(j), `"`+field+`"`) {
			t.Fatalf("clean report JSON mentions %q: %s", field, j)
		}
	}
}

// TestResilienceDeterministic pins run-to-run identity of the full
// chaos ladder: retries, failovers, shedding, and breaker trips all
// live on the simulated clock, so two identical runs match exactly.
func TestResilienceDeterministic(t *testing.T) {
	gen := testGen()
	gen.Requests = 300
	reqs, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Report {
		b := &flakyBackend{fakeBackend: fakeBackend{lat: 300, cap: 8}, failFirst: 40}
		soft := &softBackend{p: &b.fakeBackend, lat: 900}
		rep, err := Run(b, Config{Gen: gen, SLO: 1000, Resilience: &Resilience{
			Deadline: 20000,
			Failover: soft,
			Breaker:  BreakerConfig{Window: 2048, MinSamples: 4, OpenFor: 2048, HalfOpenProbes: 2},
		}}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("identical chaos runs produced different reports")
	}
	if r1.Total.Retries == 0 || r1.Total.FailedOver == 0 || r1.Breaker.Trips == 0 {
		t.Fatalf("chaos run exercised nothing: %+v breaker %+v", r1.Total, r1.Breaker)
	}
}
