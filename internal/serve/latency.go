package serve

import "math/bits"

// LatencyHist is a streaming latency collector over simulated cycles:
// HdrHistogram-style fixed buckets — exact below 32 cycles, then 16
// logarithmic sub-buckets per power of two — so recording is O(1) with
// no per-sample allocation and quantiles carry a bounded ~6% relative
// error at any magnitude. All state is uint64 counts, so two histograms
// fed the same samples are byte-identical regardless of feed order.
type LatencyHist struct {
	counts [histBuckets]uint64
	count  uint64
	sum    uint64
	max    uint64
}

const (
	// histLinear is the exact linear range: values < 32 get their own
	// bucket.
	histLinear = 32
	// histSubBits gives 2^4 = 16 sub-buckets per octave above the linear
	// range.
	histSubBits = 4
	// histBuckets covers the full uint64 range: 32 linear + 16 per
	// octave for exponents 5..63.
	histBuckets = histLinear + (64-5)*(1<<histSubBits)
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < histLinear {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= 5
	sub := int((v >> uint(exp-histSubBits)) & (1<<histSubBits - 1))
	return histLinear + (exp-5)<<histSubBits + sub
}

// bucketMax returns the largest value a bucket holds — the quantile
// estimate reported for samples landing in it.
func bucketMax(i int) uint64 {
	if i < histLinear {
		return uint64(i)
	}
	i -= histLinear
	exp := 5 + i>>histSubBits
	sub := uint64(i & (1<<histSubBits - 1))
	width := uint64(1) << uint(exp-histSubBits)
	return uint64(1)<<uint(exp) + (sub+1)*width - 1
}

// Observe records one latency sample.
func (h *LatencyHist) Observe(v uint64) {
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *LatencyHist) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *LatencyHist) Sum() uint64 { return h.sum }

// Max returns the exact largest sample (0 when empty).
func (h *LatencyHist) Max() uint64 { return h.max }

// Mean returns the exact average (0 when empty).
func (h *LatencyHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile sample (0 <= q <= 1), clamped to the exact observed max so
// p999-of-few-samples never exceeds reality. 0 when empty.
func (h *LatencyHist) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based; ceil without float drift.
	rank := uint64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketMax(i)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds other's samples into h (bucket layouts are identical by
// construction). Merging is commutative and associative.
func (h *LatencyHist) Merge(other *LatencyHist) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}
