package serve

import (
	"errors"
	"fmt"

	"qei/internal/metrics"
)

// Config configures one serving run on top of a generated (or replayed)
// request stream.
type Config struct {
	// Gen is the stream's generation config; Run rebuilds each tenant's
	// table from it (TenantKeys), so a recorded trace replays against
	// identical structures.
	Gen GenConfig
	// SlotsPerTenant bounds each tenant's in-flight QST slots. <= 0
	// derives a fair share: backend capacity / tenants, clamped to 1.
	SlotsPerTenant int
	// SLO is the per-request latency objective in simulated cycles;
	// requests whose end-to-end latency exceeds it count as violations.
	// 0 disables SLO accounting.
	SLO uint64
	// Metrics, when non-nil, receives per-tenant serving counters
	// (serve/tenant<N>/requests, .../slo_violations, .../p99, ...)
	// alongside the simulator's component metrics.
	Metrics *metrics.Registry
	// KeepResults retains every request's Result in Report.Results
	// (indexed by Request.Seq) — the hook the backend-equivalence tests
	// use. Off for large runs.
	KeepResults bool
	// WriteCost is the simulated-cycle charge per software mutation
	// (mutations are host routines; QEI accelerates queries only). 0
	// uses defaultWriteCost.
	WriteCost uint64
}

// defaultWriteCost approximates a software insert/delete's execution
// time: a few cache-missing probes plus the splice, ~an order above a
// hot lookup.
const defaultWriteCost = 500

func (c Config) writeCost() uint64 {
	if c.WriteCost > 0 {
		return c.WriteCost
	}
	return defaultWriteCost
}

// TenantStats is one tenant's serving outcome (Tenant == -1 for the
// aggregate row).
type TenantStats struct {
	Tenant        int     `json:"tenant"`
	Requests      uint64  `json:"requests"`
	Found         uint64  `json:"found"`
	Faults        uint64  `json:"faults"`
	Throttled     uint64  `json:"throttled"`
	SLOViolations uint64  `json:"slo_violations"`
	MeanLatency   float64 `json:"mean_latency"`
	P50           uint64  `json:"p50"`
	P99           uint64  `json:"p99"`
	P999          uint64  `json:"p999"`
	MaxLatency    uint64  `json:"max_latency"`
	// Write-path counters; omitted from JSON on read-only runs so
	// existing reports stay byte-identical. Requests above counts reads
	// only — Requests+Writes is the tenant's full stream.
	Writes   uint64 `json:"writes,omitempty"`
	WriteP50 uint64 `json:"write_p50,omitempty"`
	WriteP99 uint64 `json:"write_p99,omitempty"`
}

// Report is the outcome of one serving run: per-tenant percentile rows,
// the aggregate row, and backend totals. Latencies are end-to-end
// simulated cycles: arrival to result visibility, queueing included.
type Report struct {
	Backend        string `json:"backend"`
	Requests       int    `json:"requests"`
	SlotsPerTenant int    `json:"slots_per_tenant"`
	Capacity       int    `json:"capacity"`
	// MakespanCycles is the backend clock when the last request retired.
	MakespanCycles uint64        `json:"makespan_cycles"`
	Queries        uint64        `json:"queries"`
	Exceptions     uint64        `json:"exceptions"`
	Tenants        []TenantStats `json:"tenants"`
	Total          TenantStats   `json:"total"`
	// Results holds per-request results by Seq when Config.KeepResults
	// was set; excluded from JSON output.
	Results []Result `json:"-"`
}

// tenantAcct is the per-tenant accounting the server keeps while a run
// is in flight.
type tenantAcct struct {
	hist     LatencyHist
	whist    LatencyHist
	requests uint64
	writes   uint64
	found    uint64
	faults   uint64
	sloViol  uint64
}

// inflight is one issued-but-unretired request.
type inflight struct {
	tenant int
	seq    int
	at     uint64
	h      Handle
}

// Run drives the request stream through the backend: tables are built
// per tenant, requests issue in arrival order under the open-loop clock
// (arrivals never wait for completions), per-tenant admission bounds
// in-flight slots, and every request's end-to-end latency lands in the
// tenant's histogram. The run is single-goroutine and deterministic:
// identical (backend state, cfg, reqs) yield identical reports.
func Run(b Backend, cfg Config, reqs []Request) (*Report, error) {
	if err := cfg.Gen.Validate(); err != nil {
		return nil, err
	}
	tenants := cfg.Gen.Tenants
	// A stream with any mutation needs the backend's write path; tables
	// are then built updatable. Read-only streams keep the plain Backend
	// contract and immutable layouts.
	var mut Mutator
	for i := range reqs {
		if reqs[i].Op != OpGet {
			m, ok := b.(Mutator)
			if !ok {
				return nil, fmt.Errorf("serve: stream has writes but backend %s has no write path", b.Name())
			}
			mut = m
			break
		}
	}
	tables := make([]Table, tenants)
	for t := range tables {
		keys, values := TenantKeys(cfg.Gen, t)
		var tbl Table
		var err error
		if mut != nil {
			tbl, err = mut.BuildMutable(cfg.Gen.Kind, keys, values)
		} else {
			tbl, err = b.Build(cfg.Gen.Kind, keys, values)
		}
		if err != nil {
			return nil, fmt.Errorf("serve: tenant %d build: %w", t, err)
		}
		tables[t] = tbl
	}

	slots := cfg.SlotsPerTenant
	if slots <= 0 {
		slots = b.Capacity() / tenants
	}
	adm := NewAdmission(tenants, slots)
	acct := make([]tenantAcct, tenants)
	var total, wtotal LatencyHist
	var rep Report
	if cfg.KeepResults {
		rep.Results = make([]Result, len(reqs))
	}
	registerMetrics(cfg.Metrics, adm, acct, &total, &wtotal)

	retire := func(q inflight, res Result) {
		lat := uint64(0)
		if res.Done > q.at {
			lat = res.Done - q.at
		}
		a := &acct[q.tenant]
		a.hist.Observe(lat)
		total.Observe(lat)
		a.requests++
		if res.Found {
			a.found++
		}
		if res.Err != nil {
			a.faults++
		}
		if cfg.SLO > 0 && lat > cfg.SLO {
			a.sloViol++
		}
		if cfg.KeepResults && q.seq >= 0 && q.seq < len(rep.Results) {
			rep.Results[q.seq] = res
		}
		adm.Release(q.tenant)
	}

	var queue []inflight
	// waitOne retires queue[i], advancing the clock to its completion.
	waitOne := func(i int) error {
		q := queue[i]
		res, err := b.Wait(q.h)
		if err != nil {
			return fmt.Errorf("serve: request %d: %w", q.seq, err)
		}
		retire(q, res)
		queue = append(queue[:i], queue[i+1:]...)
		return nil
	}
	// pollRetire retires everything already complete at the current
	// clock, without advancing it.
	pollRetire := func() error {
		kept := queue[:0]
		for _, q := range queue {
			res, err := b.Poll(q.h)
			if errors.Is(err, ErrPending) {
				kept = append(kept, q)
				continue
			}
			if err != nil {
				return fmt.Errorf("serve: request %d: %w", q.seq, err)
			}
			retire(q, res)
		}
		queue = kept
		return nil
	}

	for i := range reqs {
		req := &reqs[i]
		if req.Tenant < 0 || req.Tenant >= tenants {
			return nil, fmt.Errorf("serve: request %d names tenant %d of %d", req.Seq, req.Tenant, tenants)
		}
		if now := b.Now(); now < req.At {
			b.Advance(req.At - now)
		}
		if err := pollRetire(); err != nil {
			return nil, err
		}
		// Writes apply immediately in software, bypassing QST admission:
		// the mutator runs on the host while earlier lookups stay in
		// flight (epoch reclamation keeps them consistent). The mutation
		// routine's execution time advances the clock and is charged to
		// this request's write latency.
		if req.Op != OpGet {
			var res Result
			switch req.Op {
			case OpPut:
				if err := mut.Insert(tables[req.Tenant], req.Key, req.Value); err != nil {
					return nil, fmt.Errorf("serve: request %d put: %w", req.Seq, err)
				}
				res = Result{Found: true, Value: req.Value}
			case OpDel:
				ok, err := mut.Delete(tables[req.Tenant], req.Key)
				if err != nil {
					return nil, fmt.Errorf("serve: request %d del: %w", req.Seq, err)
				}
				res = Result{Found: ok}
			default:
				return nil, fmt.Errorf("serve: request %d has unknown op %q", req.Seq, req.Op)
			}
			b.Advance(cfg.writeCost())
			res.Done = b.Now()
			lat := uint64(0)
			if res.Done > req.At {
				lat = res.Done - req.At
			}
			a := &acct[req.Tenant]
			a.writes++
			a.whist.Observe(lat)
			wtotal.Observe(lat)
			if cfg.SLO > 0 && lat > cfg.SLO {
				a.sloViol++
			}
			if cfg.KeepResults && req.Seq >= 0 && req.Seq < len(rep.Results) {
				rep.Results[req.Seq] = res
			}
			continue
		}
		// Per-tenant admission: over-bound requests wait on their own
		// tenant's oldest in-flight query — other tenants keep their
		// slots — and the wait is charged to this request's latency.
		for !adm.TryAcquire(req.Tenant) {
			idx := -1
			for j := range queue {
				if queue[j].tenant == req.Tenant {
					idx = j
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("serve: tenant %d over admission bound with nothing in flight", req.Tenant)
			}
			if err := waitOne(idx); err != nil {
				return nil, err
			}
		}
		h, err := b.QueryAsync(tables[req.Tenant], req.Key)
		for errors.Is(err, ErrBackendFull) {
			// The shared QST is exhausted by other tenants: drain the
			// globally oldest query and reissue.
			if len(queue) == 0 {
				return nil, fmt.Errorf("serve: backend full with nothing in flight")
			}
			if werr := waitOne(0); werr != nil {
				return nil, werr
			}
			h, err = b.QueryAsync(tables[req.Tenant], req.Key)
		}
		if err != nil {
			return nil, fmt.Errorf("serve: request %d issue: %w", req.Seq, err)
		}
		queue = append(queue, inflight{tenant: req.Tenant, seq: req.Seq, at: req.At, h: h})
	}
	for len(queue) > 0 {
		if err := waitOne(0); err != nil {
			return nil, err
		}
	}

	rep.Backend = b.Name()
	rep.Requests = len(reqs)
	rep.SlotsPerTenant = adm.Limit()
	rep.Capacity = b.Capacity()
	rep.MakespanCycles = b.Now()
	st := b.Stats()
	rep.Queries = st.Queries
	rep.Exceptions = st.Exceptions
	rep.Tenants = make([]TenantStats, tenants)
	for t := range acct {
		rep.Tenants[t] = tenantRow(t, &acct[t], adm.Throttled(t))
	}
	agg := tenantAcct{hist: total, whist: wtotal}
	var thrTotal uint64
	for t := range acct {
		agg.requests += acct[t].requests
		agg.writes += acct[t].writes
		agg.found += acct[t].found
		agg.faults += acct[t].faults
		agg.sloViol += acct[t].sloViol
		thrTotal += adm.Throttled(t)
	}
	rep.Total = tenantRow(-1, &agg, thrTotal)
	return &rep, nil
}

// tenantRow renders one accounting record as a report row.
func tenantRow(t int, a *tenantAcct, throttled uint64) TenantStats {
	return TenantStats{
		Tenant:        t,
		Requests:      a.requests,
		Found:         a.found,
		Faults:        a.faults,
		Throttled:     throttled,
		SLOViolations: a.sloViol,
		MeanLatency:   a.hist.Mean(),
		P50:           a.hist.Quantile(0.50),
		P99:           a.hist.Quantile(0.99),
		P999:          a.hist.Quantile(0.999),
		MaxLatency:    a.hist.Max(),
		Writes:        a.writes,
		WriteP50:      a.whist.Quantile(0.50),
		WriteP99:      a.whist.Quantile(0.99),
	}
}

// registerMetrics publishes the serving counters into the simulator
// registry (nil-safe): per-tenant request/violation/throttle counts and
// latency percentiles under serve/tenant<N>/, aggregates under serve/.
// Everything is pull-based (RegisterFunc), so the serving hot loop pays
// nothing for it.
func registerMetrics(reg *metrics.Registry, adm *Admission, acct []tenantAcct, total, wtotal *LatencyHist) {
	if reg == nil {
		return
	}
	sreg := reg.Scoped("serve")
	for t := range acct {
		t := t
		a := &acct[t]
		treg := sreg.Scoped(fmt.Sprintf("tenant%d", t))
		treg.RegisterFunc("requests", func() uint64 { return a.requests })
		treg.RegisterFunc("writes", func() uint64 { return a.writes })
		treg.RegisterFunc("found", func() uint64 { return a.found })
		treg.RegisterFunc("faults", func() uint64 { return a.faults })
		treg.RegisterFunc("slo_violations", func() uint64 { return a.sloViol })
		treg.RegisterFunc("throttled", func() uint64 { return adm.Throttled(t) })
		treg.RegisterFunc("latency_p50", func() uint64 { return a.hist.Quantile(0.50) })
		treg.RegisterFunc("latency_p99", func() uint64 { return a.hist.Quantile(0.99) })
		treg.RegisterFunc("latency_p999", func() uint64 { return a.hist.Quantile(0.999) })
	}
	sreg.RegisterFunc("requests", func() uint64 { return total.Count() })
	sreg.RegisterFunc("writes", func() uint64 { return wtotal.Count() })
	sreg.RegisterFunc("latency_p50", func() uint64 { return total.Quantile(0.50) })
	sreg.RegisterFunc("latency_p99", func() uint64 { return total.Quantile(0.99) })
	sreg.RegisterFunc("latency_p999", func() uint64 { return total.Quantile(0.999) })
	sreg.RegisterFunc("write_p99", func() uint64 { return wtotal.Quantile(0.99) })
}
