package serve

import (
	"errors"
	"fmt"

	"qei/internal/metrics"
	"qei/internal/trace"
)

// Config configures one serving run on top of a generated (or replayed)
// request stream.
type Config struct {
	// Gen is the stream's generation config; Run rebuilds each tenant's
	// table from it (TenantKeys), so a recorded trace replays against
	// identical structures.
	Gen GenConfig
	// SlotsPerTenant bounds each tenant's in-flight QST slots. <= 0
	// derives a fair share: backend capacity / tenants, clamped to 1.
	SlotsPerTenant int
	// SLO is the per-request latency objective in simulated cycles;
	// requests whose end-to-end latency exceeds it count as violations.
	// 0 disables SLO accounting.
	SLO uint64
	// Metrics, when non-nil, receives per-tenant serving counters
	// (serve/tenant<N>/requests, .../slo_violations, .../p99, ...)
	// alongside the simulator's component metrics.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives serving-layer events on the serve
	// track: breaker-degraded spans, per-request failover spans, and
	// shed points, cycle-aligned with the machine's component tracks.
	Trace *trace.Tracer
	// KeepResults retains every request's Result in Report.Results
	// (indexed by Request.Seq) — the hook the backend-equivalence tests
	// use. Off for large runs.
	KeepResults bool
	// WriteCost is the simulated-cycle charge per software mutation
	// (mutations are host routines; QEI accelerates queries only). 0
	// uses defaultWriteCost.
	WriteCost uint64
	// Resilience enables deadlines/shedding, bounded retry, failover,
	// and the circuit breaker. nil keeps the legacy behavior: faults
	// retire with their error, admission waits are unbounded, and the
	// report carries none of the resilience fields.
	Resilience *Resilience
	// BatchAdmit, when > 1, turns on batched admission: lookups buffer
	// per tenant and flush through the backend's BatchBackend path in
	// groups of up to BatchAdmit keys. A tenant's buffer also flushes
	// before any of its writes (so reads issued before a write never
	// observe it) and at end of stream. Batched lookups bypass QST slot
	// admission, retry, and the breaker — the batch engine defers
	// faulting queries to the per-query path internally — but the
	// deadline shed still applies at arrival. Requires the backend to
	// implement BatchBackend.
	BatchAdmit int
}

// defaultWriteCost approximates a software insert/delete's execution
// time: a few cache-missing probes plus the splice, ~an order above a
// hot lookup.
const defaultWriteCost = 500

func (c Config) writeCost() uint64 {
	if c.WriteCost > 0 {
		return c.WriteCost
	}
	return defaultWriteCost
}

// TenantStats is one tenant's serving outcome (Tenant == -1 for the
// aggregate row).
type TenantStats struct {
	Tenant        int     `json:"tenant"`
	Requests      uint64  `json:"requests"`
	Found         uint64  `json:"found"`
	Faults        uint64  `json:"faults"`
	Throttled     uint64  `json:"throttled"`
	SLOViolations uint64  `json:"slo_violations"`
	MeanLatency   float64 `json:"mean_latency"`
	P50           uint64  `json:"p50"`
	P99           uint64  `json:"p99"`
	P999          uint64  `json:"p999"`
	MaxLatency    uint64  `json:"max_latency"`
	// Write-path counters; omitted from JSON on read-only runs so
	// existing reports stay byte-identical. Requests above counts reads
	// only — Requests+Writes is the tenant's full stream.
	Writes   uint64 `json:"writes,omitempty"`
	WriteP50 uint64 `json:"write_p50,omitempty"`
	WriteP99 uint64 `json:"write_p99,omitempty"`
	// Resilience counters; zero (and omitted from JSON) unless
	// Config.Resilience was set and the run actually shed, retried, or
	// degraded. Shed requests are excluded from Requests but their
	// admission wait still lands in the latency percentiles above;
	// failed-over requests are counted in Requests with their full
	// degraded latency.
	Shed       uint64 `json:"shed,omitempty"`
	Retries    uint64 `json:"retries,omitempty"`
	FailedOver uint64 `json:"failed_over,omitempty"`
}

// Report is the outcome of one serving run: per-tenant percentile rows,
// the aggregate row, and backend totals. Latencies are end-to-end
// simulated cycles: arrival to result visibility, queueing included.
type Report struct {
	Backend        string `json:"backend"`
	Requests       int    `json:"requests"`
	SlotsPerTenant int    `json:"slots_per_tenant"`
	Capacity       int    `json:"capacity"`
	// MakespanCycles is the backend clock when the last request retired.
	MakespanCycles uint64        `json:"makespan_cycles"`
	Queries        uint64        `json:"queries"`
	Exceptions     uint64        `json:"exceptions"`
	Tenants        []TenantStats `json:"tenants"`
	Total          TenantStats   `json:"total"`
	// Breaker summarizes the primary-path circuit breaker; nil when the
	// resilience layer (or its breaker) is off.
	Breaker *BreakerReport `json:"breaker,omitempty"`
	// Batch summarizes batched admission; nil unless Config.BatchAdmit
	// enabled it. The server fills Batches/BatchedReads; the engine-side
	// amortization counters are stamped by the qei layer from the
	// accelerator's stats.
	Batch *BatchReport `json:"batch,omitempty"`
	// FaultsInjected and EpochViolations are stamped by the qei layer
	// (RunServing/ReplayServing) when fault injection or epoch
	// reclamation are armed on the machine; zero otherwise.
	FaultsInjected  uint64 `json:"faults_injected,omitempty"`
	EpochViolations uint64 `json:"epoch_violations,omitempty"`
	// Results holds per-request results by Seq when Config.KeepResults
	// was set; excluded from JSON output.
	Results []Result `json:"-"`
}

// BatchReport summarizes one run's batched admission: how the stream
// was grouped (server-side) and what the level-wise engine amortized
// (stamped by the qei layer from accelerator stats).
type BatchReport struct {
	// Batches and BatchedReads count the server-side grouping: flushes
	// issued and lookups they carried.
	Batches      uint64 `json:"batches"`
	BatchedReads uint64 `json:"batched_reads"`
	// Engine-side amortization counters, zero unless the qei layer
	// stamps them after the run.
	Levels            uint64 `json:"levels,omitempty"`
	TranslationsSaved uint64 `json:"translations_saved,omitempty"`
	CoalescedProbes   uint64 `json:"coalesced_probes,omitempty"`
	Deferred          uint64 `json:"deferred,omitempty"`
}

// tenantAcct is the per-tenant accounting the server keeps while a run
// is in flight.
type tenantAcct struct {
	hist       LatencyHist
	whist      LatencyHist
	requests   uint64
	writes     uint64
	found      uint64
	faults     uint64
	sloViol    uint64
	shed       uint64
	retries    uint64
	failedOver uint64
}

// pendingGet is one lookup buffered for batched admission.
type pendingGet struct {
	seq int
	at  uint64
	key []byte
}

// inflight is one issued-but-unretired request.
type inflight struct {
	tenant  int
	seq     int
	at      uint64
	key     []byte
	attempt int // primary issues so far, beyond the first
	h       Handle
}

// server is the in-flight state of one serving run: the backend, the
// per-tenant tables and accounting, the admission controller, the
// in-flight queue, and (when Config.Resilience is set) the resilience
// machinery. One run, one server, one goroutine.
type server struct {
	b   Backend
	mut Mutator
	cfg Config
	res *Resilience
	brk *Breaker

	tables []Table
	adm    *Admission
	acct   []tenantAcct
	total  LatencyHist
	wtotal LatencyHist
	queue  []inflight
	rep    *Report

	// Batched admission state (Config.BatchAdmit > 1): the batch-capable
	// backend view, per-tenant pending lookups, and flush counters.
	bb           BatchBackend
	pending      [][]pendingGet
	batches      uint64
	batchedReads uint64

	// degradedSince is the cycle the breaker last left Closed, for the
	// breaker-degraded trace span; nil while Closed.
	degradedSince *uint64
}

// Run drives the request stream through the backend: tables are built
// per tenant, requests issue in arrival order under the open-loop clock
// (arrivals never wait for completions), per-tenant admission bounds
// in-flight slots, and every request's end-to-end latency lands in the
// tenant's histogram. With Config.Resilience set, requests past their
// deadline are shed, faulting queries are retried and then failed over
// to the safety-net backend, and a circuit breaker routes around a
// rotten primary. The run is single-goroutine and deterministic:
// identical (backend state, cfg, reqs) yield identical reports.
func Run(b Backend, cfg Config, reqs []Request) (*Report, error) {
	s, err := newServer(b, cfg, reqs)
	if err != nil {
		return nil, err
	}
	return s.run(reqs)
}

// newServer validates the config, builds the per-tenant tables, and
// assembles the run state.
func newServer(b Backend, cfg Config, reqs []Request) (*server, error) {
	if err := cfg.Gen.Validate(); err != nil {
		return nil, err
	}
	tenants := cfg.Gen.Tenants
	// A stream with any mutation needs the backend's write path; tables
	// are then built updatable. Read-only streams keep the plain Backend
	// contract and immutable layouts.
	var mut Mutator
	for i := range reqs {
		if reqs[i].Op != OpGet {
			m, ok := b.(Mutator)
			if !ok {
				return nil, fmt.Errorf("serve: stream has writes but backend %s has no write path", b.Name())
			}
			mut = m
			break
		}
	}
	tables := make([]Table, tenants)
	for t := range tables {
		keys, values := TenantKeys(cfg.Gen, t)
		var tbl Table
		var err error
		if mut != nil {
			tbl, err = mut.BuildMutable(cfg.Gen.Kind, keys, values)
		} else {
			tbl, err = b.Build(cfg.Gen.Kind, keys, values)
		}
		if err != nil {
			return nil, fmt.Errorf("serve: tenant %d build: %w", t, err)
		}
		tables[t] = tbl
	}

	slots := cfg.SlotsPerTenant
	if slots <= 0 {
		slots = b.Capacity() / tenants
	}
	s := &server{
		b:      b,
		mut:    mut,
		cfg:    cfg,
		res:    cfg.Resilience,
		tables: tables,
		adm:    NewAdmission(tenants, slots),
		acct:   make([]tenantAcct, tenants),
		rep:    &Report{},
	}
	if s.res != nil && s.res.Failover != nil && !s.res.Breaker.Disabled {
		s.brk = NewBreaker(s.res.Breaker)
	}
	if cfg.BatchAdmit > 1 {
		bb, ok := b.(BatchBackend)
		if !ok {
			return nil, fmt.Errorf("serve: batched admission needs a batch path but backend %s has none", b.Name())
		}
		s.bb = bb
		s.pending = make([][]pendingGet, tenants)
		s.rep.Batch = &BatchReport{}
	}
	if cfg.KeepResults {
		s.rep.Results = make([]Result, len(reqs))
	}
	s.registerMetrics(cfg.Metrics)
	return s, nil
}

func (s *server) run(reqs []Request) (*Report, error) {
	for i := range reqs {
		if err := s.serve(&reqs[i]); err != nil {
			return nil, err
		}
	}
	// End of stream: flush every tenant's buffered lookups (tenant order,
	// for determinism), then drain the async queue.
	for t := range s.pending {
		if err := s.flushBatch(t); err != nil {
			return nil, err
		}
	}
	for len(s.queue) > 0 {
		if err := s.waitOne(0); err != nil {
			return nil, err
		}
	}
	// A breaker still degraded at end of run closes its trace span at
	// the final clock.
	if s.degradedSince != nil {
		s.cfg.Trace.Span("serve", "breaker_degraded", *s.degradedSince, s.b.Now(), trace.PidServe, 0, nil)
		s.degradedSince = nil
	}
	return s.report(len(reqs)), nil
}

// serve processes one arrival: advance the clock, drain completions,
// then route the request — write path, shed, breaker fast-fail, or
// admission + async issue on the primary.
func (s *server) serve(req *Request) error {
	if req.Tenant < 0 || req.Tenant >= len(s.tables) {
		return fmt.Errorf("serve: request %d names tenant %d of %d", req.Seq, req.Tenant, len(s.tables))
	}
	if now := s.b.Now(); now < req.At {
		s.b.Advance(req.At - now)
	}
	if err := s.pollRetire(); err != nil {
		return err
	}
	if req.Op != OpGet {
		// Read-your-writes under batching: lookups this tenant buffered
		// before the write must execute against the pre-write structure,
		// so its buffer flushes first.
		if s.bb != nil {
			if err := s.flushBatch(req.Tenant); err != nil {
				return err
			}
		}
		return s.serveWrite(req)
	}
	// Deadline check at issue: the backlog ahead of this request has
	// already burned its whole budget, so don't spend a slot on it.
	if s.pastDeadline(req.At) {
		s.shed(req.Tenant, req.Seq, req.At)
		return nil
	}
	// Batched admission: buffer the lookup and flush the tenant's group
	// through the level-wise engine once it reaches BatchAdmit keys.
	if s.bb != nil {
		s.pending[req.Tenant] = append(s.pending[req.Tenant], pendingGet{seq: req.Seq, at: req.At, key: req.Key})
		if len(s.pending[req.Tenant]) >= s.cfg.BatchAdmit {
			return s.flushBatch(req.Tenant)
		}
		return nil
	}
	// Breaker fast-fail: while the primary is judged rotten, requests
	// route to the software path wholesale. The software query is
	// synchronous, so no admission slot is taken.
	if s.brk != nil && !s.allowPrimary() {
		return s.failover(req.Tenant, req.Seq, req.At, req.Key)
	}
	// Per-tenant admission: over-bound requests wait on their own
	// tenant's oldest in-flight query — other tenants keep their
	// slots — and the wait is charged to this request's latency.
	for !s.adm.TryAcquire(req.Tenant) {
		idx := -1
		for j := range s.queue {
			if s.queue[j].tenant == req.Tenant {
				idx = j
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("serve: tenant %d over admission bound: %w", req.Tenant, ErrAdmissionStall)
		}
		if err := s.waitOne(idx); err != nil {
			return err
		}
		if s.pastDeadline(req.At) {
			s.shed(req.Tenant, req.Seq, req.At)
			return nil
		}
	}
	h, err := s.b.QueryAsync(s.tables[req.Tenant], req.Key)
	for errors.Is(err, ErrBackendFull) {
		// The shared QST is exhausted by other tenants: drain the
		// globally oldest query and reissue.
		if len(s.queue) == 0 {
			s.adm.Release(req.Tenant)
			return fmt.Errorf("serve: backend full: %w", ErrAdmissionStall)
		}
		if werr := s.waitOne(0); werr != nil {
			return werr
		}
		if s.pastDeadline(req.At) {
			s.adm.Release(req.Tenant)
			s.shed(req.Tenant, req.Seq, req.At)
			return nil
		}
		h, err = s.b.QueryAsync(s.tables[req.Tenant], req.Key)
	}
	if err != nil {
		return fmt.Errorf("serve: request %d issue: %w", req.Seq, err)
	}
	s.queue = append(s.queue, inflight{tenant: req.Tenant, seq: req.Seq, at: req.At, key: req.Key, h: h})
	return nil
}

// flushBatch executes one tenant's buffered lookups as a single batch
// on the backend's batched path and retires every one of them. The
// batch runs synchronously — the backend clock advances to the batch's
// completion — so a buffered request's latency spans from its arrival
// to the whole group's finish: the batching wait is charged, not
// hidden.
func (s *server) flushBatch(tenant int) error {
	pend := s.pending[tenant]
	if len(pend) == 0 {
		return nil
	}
	s.pending[tenant] = nil
	keys := make([][]byte, len(pend))
	for i := range pend {
		keys[i] = pend[i].key
	}
	start := s.b.Now()
	rs, err := s.bb.QueryBatch(s.tables[tenant], keys)
	if err != nil {
		return fmt.Errorf("serve: tenant %d batch flush: %w", tenant, err)
	}
	if len(rs) != len(pend) {
		return fmt.Errorf("serve: tenant %d batch flush: %d results for %d keys", tenant, len(rs), len(pend))
	}
	s.cfg.Trace.Span("serve", fmt.Sprintf("batch_flush/%d", len(pend)), start, s.b.Now(), trace.PidServe, tenant, nil)
	s.batches++
	s.batchedReads += uint64(len(pend))
	for i := range pend {
		res := rs[i]
		if res.Done == 0 {
			res.Done = s.b.Now()
		}
		s.retire(tenant, pend[i].seq, pend[i].at, res)
	}
	return nil
}

// serveWrite applies one mutation. Writes apply immediately in
// software, bypassing QST admission: the mutator runs on the host while
// earlier lookups stay in flight (epoch reclamation keeps them
// consistent). The mutation routine's execution time advances the clock
// and is charged to this request's write latency. Writes are never shed
// — dropping state the rest of the stream depends on is not "degraded
// but correct".
func (s *server) serveWrite(req *Request) error {
	var res Result
	switch req.Op {
	case OpPut:
		if err := s.mut.Insert(s.tables[req.Tenant], req.Key, req.Value); err != nil {
			return fmt.Errorf("serve: request %d put: %w", req.Seq, err)
		}
		res = Result{Found: true, Value: req.Value}
	case OpDel:
		ok, err := s.mut.Delete(s.tables[req.Tenant], req.Key)
		if err != nil {
			return fmt.Errorf("serve: request %d del: %w", req.Seq, err)
		}
		res = Result{Found: ok}
	default:
		return fmt.Errorf("serve: request %d has unknown op %q", req.Seq, req.Op)
	}
	s.b.Advance(s.cfg.writeCost())
	res.Done = s.b.Now()
	lat := uint64(0)
	if res.Done > req.At {
		lat = res.Done - req.At
	}
	a := &s.acct[req.Tenant]
	a.writes++
	a.whist.Observe(lat)
	s.wtotal.Observe(lat)
	if s.cfg.SLO > 0 && lat > s.cfg.SLO {
		a.sloViol++
	}
	s.keepResult(req.Seq, res)
	return nil
}

// waitOne retires queue[i], advancing the clock to its completion (and
// walking the resilience ladder if it faulted).
func (s *server) waitOne(i int) error {
	q := s.queue[i]
	s.queue = append(s.queue[:i], s.queue[i+1:]...)
	res, err := s.b.Wait(q.h)
	if err != nil {
		return fmt.Errorf("serve: request %d: %w", q.seq, err)
	}
	return s.finish(q, res)
}

// pollRetire retires everything already complete at the current clock,
// without advancing it. Completions are collected first and finished
// after the scan: finish may requeue a retry, which would otherwise
// clobber the in-place compaction.
func (s *server) pollRetire() error {
	kept := s.queue[:0]
	var done []inflight
	var results []Result
	for _, q := range s.queue {
		res, err := s.b.Poll(q.h)
		if errors.Is(err, ErrPending) {
			kept = append(kept, q)
			continue
		}
		if err != nil {
			return fmt.Errorf("serve: request %d: %w", q.seq, err)
		}
		done = append(done, q)
		results = append(results, res)
	}
	s.queue = kept
	for i := range done {
		if err := s.finish(done[i], results[i]); err != nil {
			return err
		}
	}
	return nil
}

// finish settles one completed primary execution. Clean results retire;
// faulting ones walk the resilience ladder — shed if the deadline has
// passed, retried on the primary while attempts remain and the breaker
// is closed, then failed over to the safety-net backend (or retired
// with their fault when there is none).
func (s *server) finish(q inflight, res Result) error {
	s.recordPrimary(res.Err == nil)
	if res.Err == nil || s.res == nil {
		s.adm.Release(q.tenant)
		s.retire(q.tenant, q.seq, q.at, res)
		return nil
	}
	if s.pastDeadline(q.at) {
		s.adm.Release(q.tenant)
		s.shed(q.tenant, q.seq, q.at)
		return nil
	}
	if q.attempt < s.res.maxRetries() && (s.brk == nil || s.brk.State() == BreakerClosed) {
		// Back off on the shared clock — the pause is charged to this
		// request and everything queued behind it — then reissue on the
		// slot the request still holds.
		s.b.Advance(s.res.retryBackoff(q.attempt))
		h, err := s.b.QueryAsync(s.tables[q.tenant], q.key)
		if err == nil {
			s.acct[q.tenant].retries++
			s.queue = append(s.queue, inflight{tenant: q.tenant, seq: q.seq, at: q.at, key: q.key, attempt: q.attempt + 1, h: h})
			return nil
		}
		if !errors.Is(err, ErrBackendFull) {
			s.adm.Release(q.tenant)
			return fmt.Errorf("serve: request %d retry: %w", q.seq, err)
		}
		// Every QST entry is occupied: skip the retry and degrade now
		// rather than stalling the pipeline behind one request.
	}
	s.adm.Release(q.tenant)
	if s.res.Failover == nil {
		s.retire(q.tenant, q.seq, q.at, res)
		return nil
	}
	return s.failover(q.tenant, q.seq, q.at, q.key)
}

// failover executes one request on the safety-net backend, charging the
// full degraded latency — queueing, burned retries, and the software
// walk — to the request.
func (s *server) failover(tenant, seq int, at uint64, key []byte) error {
	start := s.b.Now()
	res, err := s.res.Failover.Query(s.tables[tenant], key)
	if err != nil {
		return fmt.Errorf("serve: request %d failover: %w", seq, err)
	}
	s.cfg.Trace.Span("serve", "failover", start, s.b.Now(), trace.PidServe, tenant, nil)
	s.acct[tenant].failedOver++
	s.retire(tenant, seq, at, res)
	return nil
}

// retire folds one completed request into its tenant's accounting.
func (s *server) retire(tenant, seq int, at uint64, res Result) {
	lat := uint64(0)
	if res.Done > at {
		lat = res.Done - at
	}
	a := &s.acct[tenant]
	a.hist.Observe(lat)
	s.total.Observe(lat)
	a.requests++
	if res.Found {
		a.found++
	}
	if res.Err != nil {
		a.faults++
	}
	if s.cfg.SLO > 0 && lat > s.cfg.SLO {
		a.sloViol++
	}
	s.keepResult(seq, res)
}

// shed drops one request past its deadline. Its wait so far still lands
// in the latency histograms — excluding it would silently flatter the
// tail the deadline was protecting.
func (s *server) shed(tenant, seq int, at uint64) {
	wait := uint64(0)
	if now := s.b.Now(); now > at {
		wait = now - at
	}
	a := &s.acct[tenant]
	a.hist.Observe(wait)
	s.total.Observe(wait)
	a.shed++
	s.cfg.Trace.Point("serve", "shed", s.b.Now(), trace.PidServe, tenant, nil)
	s.keepResult(seq, Result{Done: s.b.Now()})
}

func (s *server) keepResult(seq int, res Result) {
	if s.cfg.KeepResults && seq >= 0 && seq < len(s.rep.Results) {
		s.rep.Results[seq] = res
	}
}

func (s *server) pastDeadline(at uint64) bool {
	return s.res != nil && s.res.Deadline > 0 && s.b.Now() > at+s.res.Deadline
}

// allowPrimary asks the breaker whether the arriving request may try
// the primary, tracking state transitions for the trace span.
func (s *server) allowPrimary() bool {
	prev := s.brk.State()
	ok := s.brk.Allow(s.b.Now())
	s.breakerMoved(prev)
	return ok
}

// recordPrimary feeds one primary outcome to the breaker.
func (s *server) recordPrimary(ok bool) {
	if s.brk == nil {
		return
	}
	prev := s.brk.State()
	s.brk.Record(s.b.Now(), ok)
	s.breakerMoved(prev)
}

// breakerMoved emits trace events on breaker state transitions: a point
// at each trip, and a span covering each full degraded (non-Closed)
// stretch once the breaker closes again.
func (s *server) breakerMoved(prev BreakerState) {
	cur := s.brk.State()
	if cur == prev {
		return
	}
	now := s.b.Now()
	if cur == BreakerOpen {
		s.cfg.Trace.Point("serve", "breaker_trip", now, trace.PidServe, 0, nil)
	}
	if cur != BreakerClosed && s.degradedSince == nil {
		at := now
		s.degradedSince = &at
	}
	if cur == BreakerClosed && s.degradedSince != nil {
		s.cfg.Trace.Span("serve", "breaker_degraded", *s.degradedSince, now, trace.PidServe, 0, nil)
		s.degradedSince = nil
	}
}

// report assembles the final Report from the run's accounting.
func (s *server) report(requests int) *Report {
	rep := s.rep
	rep.Backend = s.b.Name()
	rep.Requests = requests
	rep.SlotsPerTenant = s.adm.Limit()
	rep.Capacity = s.b.Capacity()
	rep.MakespanCycles = s.b.Now()
	st := s.b.Stats()
	rep.Queries = st.Queries
	rep.Exceptions = st.Exceptions
	rep.Tenants = make([]TenantStats, len(s.acct))
	for t := range s.acct {
		rep.Tenants[t] = tenantRow(t, &s.acct[t], s.adm.Throttled(t))
	}
	agg := tenantAcct{hist: s.total, whist: s.wtotal}
	var thrTotal uint64
	for t := range s.acct {
		a := &s.acct[t]
		agg.requests += a.requests
		agg.writes += a.writes
		agg.found += a.found
		agg.faults += a.faults
		agg.sloViol += a.sloViol
		agg.shed += a.shed
		agg.retries += a.retries
		agg.failedOver += a.failedOver
		thrTotal += s.adm.Throttled(t)
	}
	rep.Total = tenantRow(-1, &agg, thrTotal)
	if rep.Batch != nil {
		rep.Batch.Batches = s.batches
		rep.Batch.BatchedReads = s.batchedReads
	}
	if s.brk != nil {
		rep.Breaker = &BreakerReport{
			State:     s.brk.State().String(),
			Trips:     s.brk.Trips(),
			FastFails: s.brk.FastFails(),
			Probes:    s.brk.Probes(),
		}
	}
	return rep
}

// tenantRow renders one accounting record as a report row.
func tenantRow(t int, a *tenantAcct, throttled uint64) TenantStats {
	return TenantStats{
		Tenant:        t,
		Requests:      a.requests,
		Found:         a.found,
		Faults:        a.faults,
		Throttled:     throttled,
		SLOViolations: a.sloViol,
		MeanLatency:   a.hist.Mean(),
		P50:           a.hist.Quantile(0.50),
		P99:           a.hist.Quantile(0.99),
		P999:          a.hist.Quantile(0.999),
		MaxLatency:    a.hist.Max(),
		Writes:        a.writes,
		WriteP50:      a.whist.Quantile(0.50),
		WriteP99:      a.whist.Quantile(0.99),
		Shed:          a.shed,
		Retries:       a.retries,
		FailedOver:    a.failedOver,
	}
}

// registerMetrics publishes the serving counters into the simulator
// registry (nil-safe): per-tenant request/violation/throttle counts and
// latency percentiles under serve/tenant<N>/, aggregates under serve/,
// breaker state under serve/breaker/. Everything is pull-based
// (RegisterFunc), so the serving hot loop pays nothing for it. Note
// serve/requests reads the aggregate histogram's population, which
// under a resilience deadline includes shed requests (their wait is
// observed too); completed reads alone are the per-tenant sums.
func (s *server) registerMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	sreg := reg.Scoped("serve")
	for t := range s.acct {
		t := t
		a := &s.acct[t]
		treg := sreg.Scoped(fmt.Sprintf("tenant%d", t))
		treg.RegisterFunc("requests", func() uint64 { return a.requests })
		treg.RegisterFunc("writes", func() uint64 { return a.writes })
		treg.RegisterFunc("found", func() uint64 { return a.found })
		treg.RegisterFunc("faults", func() uint64 { return a.faults })
		treg.RegisterFunc("slo_violations", func() uint64 { return a.sloViol })
		treg.RegisterFunc("throttled", func() uint64 { return s.adm.Throttled(t) })
		treg.RegisterFunc("latency_p50", func() uint64 { return a.hist.Quantile(0.50) })
		treg.RegisterFunc("latency_p99", func() uint64 { return a.hist.Quantile(0.99) })
		treg.RegisterFunc("latency_p999", func() uint64 { return a.hist.Quantile(0.999) })
		treg.RegisterFunc("shed", func() uint64 { return a.shed })
		treg.RegisterFunc("retries", func() uint64 { return a.retries })
		treg.RegisterFunc("failover", func() uint64 { return a.failedOver })
	}
	sreg.RegisterFunc("requests", func() uint64 { return s.total.Count() })
	sreg.RegisterFunc("writes", func() uint64 { return s.wtotal.Count() })
	sreg.RegisterFunc("latency_p50", func() uint64 { return s.total.Quantile(0.50) })
	sreg.RegisterFunc("latency_p99", func() uint64 { return s.total.Quantile(0.99) })
	sreg.RegisterFunc("latency_p999", func() uint64 { return s.total.Quantile(0.999) })
	sreg.RegisterFunc("write_p99", func() uint64 { return s.wtotal.Quantile(0.99) })
	sreg.RegisterFunc("shed", func() uint64 { return s.sumAcct(func(a *tenantAcct) uint64 { return a.shed }) })
	sreg.RegisterFunc("retries", func() uint64 { return s.sumAcct(func(a *tenantAcct) uint64 { return a.retries }) })
	sreg.RegisterFunc("failover", func() uint64 { return s.sumAcct(func(a *tenantAcct) uint64 { return a.failedOver }) })
	if s.cfg.BatchAdmit > 1 {
		breg := sreg.Scoped("batch")
		breg.RegisterFunc("batches", func() uint64 { return s.batches })
		breg.RegisterFunc("batched_reads", func() uint64 { return s.batchedReads })
	}
	if s.brk != nil {
		breg := sreg.Scoped("breaker")
		breg.RegisterFunc("state", func() uint64 { return uint64(s.brk.State()) })
		breg.RegisterFunc("trips", func() uint64 { return s.brk.Trips() })
		breg.RegisterFunc("fast_fails", func() uint64 { return s.brk.FastFails() })
		breg.RegisterFunc("probes", func() uint64 { return s.brk.Probes() })
	}
}

func (s *server) sumAcct(f func(*tenantAcct) uint64) uint64 {
	var n uint64
	for t := range s.acct {
		n += f(&s.acct[t])
	}
	return n
}
