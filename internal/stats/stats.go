// Package stats provides small reporting utilities shared by the
// benchmark harnesses: aligned text tables for the figure/table
// reproductions and a couple of numeric helpers.
package stats

import (
	"fmt"
	"strings"
)

// Table accumulates rows for aligned text rendering.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSVField escapes one cell per RFC 4180: fields containing commas,
// double quotes, or line breaks are wrapped in double quotes with
// embedded quotes doubled; everything else passes through unchanged.
func CSVField(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
}

// CSVRow renders one escaped, comma-joined CSV record (no newline).
func CSVRow(cells []string) string {
	esc := make([]string, len(cells))
	for i, c := range cells {
		esc[i] = CSVField(c)
	}
	return strings.Join(esc, ",")
}

// CSV renders the table as comma-separated values (header first),
// escaping cells per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(CSVRow(t.headers))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(CSVRow(r))
		b.WriteByte('\n')
	}
	return b.String()
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Speedup formats a speedup factor the way the paper quotes them.
func Speedup(baseline, accelerated float64) float64 {
	if accelerated == 0 {
		return 0
	}
	return baseline / accelerated
}

// GeoMean returns the geometric mean of xs (0 if empty or non-positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	prod := 1.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		prod *= x
	}
	// nth root via successive halving-free math: use exp(log) without
	// importing math — keep it simple and import math instead.
	return nthRoot(prod, len(xs))
}

func nthRoot(x float64, n int) float64 {
	// Newton iteration for the nth root; x > 0.
	if x == 0 {
		return 0
	}
	g := x
	if g > 1 {
		g = 1 + (x-1)/float64(n)
	}
	for i := 0; i < 64; i++ {
		gp := g
		pow := 1.0
		for j := 0; j < n-1; j++ {
			pow *= g
		}
		g = ((float64(n)-1)*g + x/pow) / float64(n)
		if diff := g - gp; diff < 1e-12 && diff > -1e-12 {
			break
		}
	}
	return g
}
