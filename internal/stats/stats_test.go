package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "name", "value")
	tab.AddRow("alpha", 1.5)
	tab.AddRow("a-much-longer-name", 42)
	out := tab.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "a-much-longer-name") {
		t.Fatal("row missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns aligned: both data rows start their second column at the
	// same offset.
	idx1 := strings.Index(lines[3], "1.500")
	idx2 := strings.Index(lines[4], "42")
	if idx1 != idx2 {
		t.Fatalf("columns misaligned: %d vs %d\n%s", idx1, idx2, out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("x", "a", "b")
	tab.AddRow("v", 2)
	csv := tab.CSV()
	if csv != "a,b\nv,2\n" {
		t.Fatalf("CSV = %q", csv)
	}
	if tab.Rows() != 1 {
		t.Fatalf("Rows() = %d", tab.Rows())
	}
}

func TestCSVField(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"", ""},
		{"a,b", "\"a,b\""},
		{"say \"hi\"", "\"say \"\"hi\"\"\""},
		{"two\nlines", "\"two\nlines\""},
		{"cr\rhere", "\"cr\rhere\""},
		{"mix,\"q\"\nall", "\"mix,\"\"q\"\"\nall\""},
	}
	for _, c := range cases {
		if got := CSVField(c.in); got != c.want {
			t.Errorf("CSVField(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableCSVEscapesCells(t *testing.T) {
	tab := NewTable("x", "name,with,commas", "b")
	tab.AddRow("v\"q\"", "line\nbreak")
	csv := tab.CSV()
	want := "\"name,with,commas\",b\n\"v\"\"q\"\"\",\"line\nbreak\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestCSVRow(t *testing.T) {
	if got := CSVRow([]string{"a", "b,c", "d"}); got != "a,\"b,c\",d" {
		t.Fatalf("CSVRow = %q", got)
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(100, 25) != 4 {
		t.Fatal("Speedup(100,25) != 4")
	}
	if Speedup(100, 0) != 0 {
		t.Fatal("division by zero not guarded")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("GeoMean(2,8) = %g, want 4", g)
	}
	if g := GeoMean([]float64{5}); math.Abs(g-5) > 1e-9 {
		t.Fatalf("GeoMean(5) = %g", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("GeoMean with non-positive input should be 0")
	}
	// 3-element case with an irrational root.
	g := GeoMean([]float64{1, 10, 100})
	if math.Abs(g-10) > 1e-6 {
		t.Fatalf("GeoMean(1,10,100) = %g, want 10", g)
	}
}
