package cfa

import (
	"bytes"
	"math/rand"
	"testing"

	"qei/internal/dstruct"
	"qei/internal/mem"
)

func newAS() *mem.AddressSpace {
	return mem.NewAddressSpace(mem.NewPhysical())
}

func genKeys(n, keyLen int, seed int64) ([][]byte, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	keys := make([][]byte, 0, n)
	vals := make([]uint64, 0, n)
	for len(keys) < n {
		k := make([]byte, keyLen)
		rng.Read(k)
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		keys = append(keys, k)
		vals = append(vals, uint64(len(keys))*13+1)
	}
	return keys, vals
}

// stageKey writes a probe key into simulated memory and returns its addr.
func stageKey(as *mem.AddressSpace, key []byte) mem.VAddr {
	a := as.AllocLines(uint64(len(key)))
	as.MustWrite(a, key)
	return a
}

func TestRegistryHasAllBuiltins(t *testing.T) {
	r := DefaultRegistry()
	if r.Len() != 7 {
		t.Fatalf("registry has %d programs, want 7", r.Len())
	}
	for _, tc := range []uint8{
		dstruct.TypeLinkedList, dstruct.TypeHashTable, dstruct.TypeCuckoo,
		dstruct.TypeSkipList, dstruct.TypeBST, dstruct.TypeTrie, dstruct.TypeBTree,
	} {
		if _, ok := r.Lookup(tc); !ok {
			t.Fatalf("type %s not registered", dstruct.TypeName(tc))
		}
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(LinkedListProgram{}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(LinkedListProgram{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

type badProgram struct{ states int }

func (b badProgram) TypeCode() uint8              { return 99 }
func (b badProgram) Name() string                 { return "bad" }
func (b badProgram) NumStates() int               { return b.states }
func (b badProgram) Step(*Query, StateID) Request { return Finish(false, 0) }

func TestValidateProgramStateBounds(t *testing.T) {
	if err := ValidateProgram(badProgram{states: 255}); err == nil {
		t.Fatal("255-state program accepted (254 + 2 reserved is the cap)")
	}
	if err := ValidateProgram(badProgram{states: 0}); err == nil {
		t.Fatal("0-state program accepted")
	}
	if err := ValidateProgram(badProgram{states: 200}); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestLinkedListCFA(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(30, 16, 1)
	l := dstruct.BuildLinkedList(as, keys, vals)
	reg := DefaultRegistry()
	for i, k := range keys {
		ka := stageKey(as, k)
		res, err := Run(reg, as, l.HeaderAddr, ka, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("key %d: %+v want %d", i, res, vals[i])
		}
	}
	ka := stageKey(as, make([]byte, 16))
	res, err := Run(reg, as, l.HeaderAddr, ka, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("absent key found")
	}
	// Full scan: at least one mem line per node.
	if res.MemLines < 30 {
		t.Fatalf("miss scan fetched %d lines, want >= 30", res.MemLines)
	}
}

func TestHashTableCFA(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(300, 16, 2)
	ht := dstruct.BuildHashTable(as, 64, 9, keys, vals)
	reg := DefaultRegistry()
	for i, k := range keys {
		res, err := Run(reg, as, ht.HeaderAddr, stageKey(as, k), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("key %d: %+v want %d", i, res, vals[i])
		}
		if res.Ops[OpHash] != 1 {
			t.Fatalf("hash table query used %d hash ops, want 1", res.Ops[OpHash])
		}
	}
}

func TestCuckooCFA(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(1000, 16, 3)
	c := dstruct.BuildCuckoo(as, 512, 4, 11, keys, vals)
	reg := DefaultRegistry()
	for i, k := range keys {
		res, err := Run(reg, as, c.HeaderAddr, stageKey(as, k), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("key %d: %+v want %d", i, res, vals[i])
		}
		// Fixed small access count: header + key + at most 2 buckets.
		if res.MemLines > 8 {
			t.Fatalf("cuckoo query fetched %d lines, want <= 8", res.MemLines)
		}
	}
	res, _ := Run(reg, as, c.HeaderAddr, stageKey(as, make([]byte, 16)), 0)
	if res.Found {
		t.Fatal("absent key found")
	}
}

func TestSkipListCFA(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(500, 32, 4)
	sl := dstruct.BuildSkipList(as, 5, keys, vals)
	reg := DefaultRegistry()
	for i, k := range keys {
		res, err := Run(reg, as, sl.HeaderAddr, stageKey(as, k), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("key %d: found=%v value=%d want %d", i, res.Found, res.Value, vals[i])
		}
	}
	res, _ := Run(reg, as, sl.HeaderAddr, stageKey(as, bytes.Repeat([]byte{0xff}, 32)), 0)
	if res.Found {
		t.Fatal("absent key found")
	}
}

func TestBSTCFA(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(600, 8, 5)
	b := dstruct.BuildBST(as, 7, 64, keys, vals)
	reg := DefaultRegistry()
	for i, k := range keys {
		res, err := Run(reg, as, b.HeaderAddr, stageKey(as, k), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("key %d: found=%v value=%d want %d", i, res.Found, res.Value, vals[i])
		}
	}
}

func TestTrieCFAMatchesReference(t *testing.T) {
	as := newAS()
	kws := [][]byte{[]byte("he"), []byte("she"), []byte("his"), []byte("hers")}
	tr := dstruct.BuildTrie(as, kws, []uint64{1, 2, 3, 4})
	input := []byte("ushers and his heroes")
	want, err := dstruct.ScanTrieRef(as, tr.HeaderAddr, input)
	if err != nil {
		t.Fatal(err)
	}
	reg := DefaultRegistry()
	ka := stageKey(as, input)
	res, err := Run(reg, as, tr.HeaderAddr, ka, len(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != len(want) {
		t.Fatalf("CFA matches %v, reference %v", res.Matches, want)
	}
	for i := range want {
		if res.Matches[i] != want[i] {
			t.Fatalf("match %d: CFA %d, reference %d", i, res.Matches[i], want[i])
		}
	}
}

func TestCFAAgreesWithReferenceAcrossStructures(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(200, 16, 6)
	reg := DefaultRegistry()

	headers := map[string]mem.VAddr{
		"hashtable": dstruct.BuildHashTable(as, 64, 3, keys, vals).HeaderAddr,
		"cuckoo":    dstruct.BuildCuckoo(as, 128, 4, 3, keys, vals).HeaderAddr,
		"skiplist":  dstruct.BuildSkipList(as, 3, keys, vals).HeaderAddr,
		"bst":       dstruct.BuildBST(as, 3, 64, keys, vals).HeaderAddr,
	}
	for name, hdr := range headers {
		for i, k := range keys {
			res, err := Run(reg, as, hdr, stageKey(as, k), 0)
			if err != nil {
				t.Fatalf("%s key %d: %v", name, i, err)
			}
			if !res.Found || res.Value != vals[i] {
				t.Fatalf("%s key %d: found=%v value=%d want %d", name, i, res.Found, res.Value, vals[i])
			}
		}
	}
}

func TestWrongTypeFaults(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(5, 16, 7)
	dstruct.BuildLinkedList(as, keys, vals)
	// Force the cuckoo program onto a linked-list header via a registry
	// with remapped type codes.
	q := &Query{AS: as, Header: dstruct.Header{Type: dstruct.TypeLinkedList}, Key: keys[0]}
	req := CuckooProgram{}.Step(q, StateStart)
	if req.Next != StateException || req.Fault == nil {
		t.Fatal("cuckoo CFA accepted a linked-list header")
	}
}

func TestUnknownStateFaults(t *testing.T) {
	q := &Query{Header: dstruct.Header{Type: dstruct.TypeLinkedList}}
	req := LinkedListProgram{}.Step(q, StateID(200))
	if req.Next != StateException {
		t.Fatal("undefined state did not fault")
	}
}

// firmwareExtension demonstrates the paper's firmware-update path: a new
// data structure type (a fixed-size array of key/value pairs, scanned
// linearly) added without touching the engine.
type arrayProgram struct{}

const typeArray uint8 = 42

func (arrayProgram) TypeCode() uint8 { return typeArray }
func (arrayProgram) Name() string    { return "array" }
func (arrayProgram) NumStates() int  { return 3 }

func (p arrayProgram) Step(q *Query, state StateID) Request {
	stride := uint64(q.Header.KeyLen) + 8
	switch state {
	case StateStart:
		q.Level = 0
		return Continue(stComp, true,
			MemRead(q.KeyAddr, uint64(q.Header.KeyLen)),
			MemRead(q.Header.Root, stride))
	case stComp:
		if uint64(q.Level) >= q.Header.Size {
			return Finish(false, 0)
		}
		ea := q.Header.Root + mem.VAddr(uint64(q.Level)*stride)
		stored := make([]byte, q.Header.KeyLen)
		if err := q.AS.Read(ea, stored); err != nil {
			return Fail(err)
		}
		cmp := Compare(ea, uint64(q.Header.KeyLen))
		if bytes.Equal(stored, q.Key) {
			v, err := q.AS.ReadU64(ea + mem.VAddr(q.Header.KeyLen))
			if err != nil {
				return Fail(err)
			}
			return Finish(true, v, cmp)
		}
		q.Level++
		return Continue(stComp, false, cmp, MemRead(ea+mem.VAddr(stride), stride))
	default:
		return Fail(errBadState("array", state))
	}
}

func TestFirmwareUpdateNewStructure(t *testing.T) {
	as := newAS()
	reg := DefaultRegistry()
	if err := reg.Register(arrayProgram{}); err != nil {
		t.Fatal(err)
	}
	// Lay out a 10-element array structure by hand.
	keys, vals := genKeys(10, 16, 8)
	stride := uint64(16 + 8)
	arr := as.AllocLines(10 * stride)
	for i, k := range keys {
		as.MustWrite(arr+mem.VAddr(uint64(i)*stride), k)
		var vb [8]byte
		for j := 0; j < 8; j++ {
			vb[j] = byte(vals[i] >> (8 * j))
		}
		as.MustWrite(arr+mem.VAddr(uint64(i)*stride+16), vb[:])
	}
	hdr := dstruct.WriteHeader(as, dstruct.Header{
		Root: arr, Type: typeArray, KeyLen: 16, Size: 10,
	})
	for i, k := range keys {
		res, err := Run(reg, as, hdr, stageKey(as, k), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("array key %d: %+v want %d", i, res, vals[i])
		}
	}
}

func TestRunawayFirmwareBounded(t *testing.T) {
	as := newAS()
	reg := NewRegistry()
	if err := reg.Register(loopProgram{}); err != nil {
		t.Fatal(err)
	}
	hdr := dstruct.WriteHeader(as, dstruct.Header{Type: 43, KeyLen: 8})
	ka := stageKey(as, make([]byte, 8))
	if _, err := Run(reg, as, hdr, ka, 0); err == nil {
		t.Fatal("runaway CFA not detected")
	}
}

type loopProgram struct{}

func (loopProgram) TypeCode() uint8 { return 43 }
func (loopProgram) Name() string    { return "loop" }
func (loopProgram) NumStates() int  { return 2 }
func (loopProgram) Step(q *Query, s StateID) Request {
	return Continue(StateID(1), false)
}

func TestBTreeCFA(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(2000, 16, 45)
	bt := dstruct.BuildBTree(as, 16, keys, vals)
	reg := DefaultRegistry()
	for i := 0; i < 300; i++ {
		res, err := Run(reg, as, bt.HeaderAddr, stageKey(as, keys[i]), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("key %d: found=%v value=%d want %d", i, res.Found, res.Value, vals[i])
		}
		// Logarithmic work: height ~3 node fetches plus header/key.
		if res.MemLines > 30 {
			t.Fatalf("btree query fetched %d lines — not logarithmic", res.MemLines)
		}
	}
	res, err := Run(reg, as, bt.HeaderAddr, stageKey(as, make([]byte, 16)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("absent key found")
	}
}
