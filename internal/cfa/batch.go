package cfa

import (
	"bytes"

	"qei/internal/dstruct"
	"qei/internal/mem"
)

// Batch-aware firmware mode. The level-wise batch engine (package qei)
// executes one CFA transition per query per round and groups the
// round's memory micro-ops across the whole batch: one translation per
// distinct page, node lines deduplicated and fetched in ascending
// streaming order. Most firmware batches well as-is — a transition per
// round naturally walks tree and skip-list structures one level at a
// time, hash chains and linked lists in lock-step chunks — but a
// program whose single transition fans out over multiple independent
// memory sites serializes poorly when the engine phases the batch.
// Such firmware implements BatchProgram to expose an alternative
// stepping structure for batch mode.

// stAltComp is the batch-mode cuckoo state probing the alternative
// bucket (phase two). It extends the shared state numbering of
// programs.go; per-query mode never enters it.
const stAltComp StateID = 6

// BatchProgram is the optional batch-aware mode of a CFA program.
// BatchStep must be functionally equivalent to Step — identical
// found/value/fault outcomes for any query — but may phase the walk
// differently so that each transition touches one memory site, letting
// the level-wise engine group that site's accesses across the batch.
// The engine falls back to Step for programs without it.
type BatchProgram interface {
	Program
	// BatchStep executes the batch-mode transition out of state for q.
	BatchStep(q *Query, state StateID) Request
}

// BatchStepper returns the stepping function the level-wise engine
// should drive p with: BatchStep when p opts into batch mode, Step
// otherwise.
func BatchStepper(p Program) func(q *Query, state StateID) Request {
	if bp, ok := p.(BatchProgram); ok {
		return bp.BatchStep
	}
	return p.Step
}

// cuckooFindIn scans one bucket's slots for the staged key, returning
// the stored value on a match. Shared by the per-query Step (which
// probes both buckets in one transition) and the batch-mode phases.
func cuckooFindIn(q *Query, base mem.VAddr) (uint64, bool, error) {
	occOff, valOff, keyOff := dstruct.CuckooEntryFieldOffsets()
	entrySize := dstruct.CuckooEntrySize(int(q.Header.KeyLen))
	for s := 0; s < int(q.Header.Subtype); s++ {
		ea := base + mem.VAddr(uint64(s)*entrySize)
		occ, err := q.AS.ReadU64(ea + mem.VAddr(occOff))
		if err != nil {
			return 0, false, err
		}
		if occ&1 == 0 {
			continue
		}
		stored := make([]byte, q.Header.KeyLen)
		if err := q.AS.Read(ea+mem.VAddr(keyOff), stored); err != nil {
			return 0, false, err
		}
		if bytes.Equal(stored, q.Key) {
			v, err := q.AS.ReadU64(ea + mem.VAddr(valOff))
			return v, err == nil, err
		}
	}
	return 0, false, nil
}

// BatchStep implements BatchProgram: the two candidate buckets are
// probed as two phased transitions — all primary buckets in one round,
// the misses' alternative buckets in the next — instead of the
// per-query mode's single both-buckets transition. Outcomes are
// identical to Step: the primary bucket is searched first, and only a
// miss consults the alternative bucket.
func (p CuckooProgram) BatchStep(q *Query, state StateID) Request {
	bucketBytes := dstruct.CuckooBucketSize(int(q.Header.KeyLen), int(q.Header.Subtype))
	switch state {
	case StateStart, stHash:
		return p.Step(q, state)

	case stComp:
		// Phase one: the primary bucket only.
		v, found, err := cuckooFindIn(q, q.Node)
		if err != nil {
			return Fail(err)
		}
		cmp := Compare(q.Node, bucketBytes)
		if found {
			return Finish(true, v, cmp)
		}
		return Continue(stAltComp, false, cmp)

	case stAltComp:
		// Phase two: the alternative bucket, misses only.
		v, found, err := cuckooFindIn(q, q.AltNode)
		if err != nil {
			return Fail(err)
		}
		return Finish(found, v, Compare(q.AltNode, bucketBytes))

	default:
		return Fail(errBadState(p.Name(), state))
	}
}
