// Package cfa implements the configurable finite automaton (CFA) model at
// the heart of QEI (Sec. III).
//
// A CFA has fixed transition structure but configurable parameters: one
// CFA ("program", in firmware terms) exists per data-structure type, and
// every in-flight query executes its type's CFA with its own parameters
// (key, header metadata, cursor state). The paper's abstraction reduces
// every query to five steps built from three micro-operation kinds —
// memory access (cacheline granularity), arithmetic, and comparison —
// and that is exactly the vocabulary a state handler here may emit.
//
// The CFA Execution Engine (package qei) owns all timing: a state handler
// only decides *what* micro-operations the transition needs and *which*
// state comes next. Handlers perform functional reads of simulated memory
// to steer the walk, mirroring how the hardware's intermediate-data field
// staged the fetched cacheline before the next transition (Sec. IV-B).
//
// New data structures are supported by registering a new Program in a
// Registry — the software analogue of the paper's firmware update path
// for the microcoded CEE (Sec. IV-B). Registry.Validate enforces the
// hardware limits: at most 256 states, type codes unique, reserved states
// respected.
package cfa

import (
	"fmt"

	"qei/internal/dstruct"
	"qei/internal/mem"
)

// StateID names a CFA state. The QST stores it in one byte, capping each
// CFA at 256 states (Sec. IV-B).
type StateID uint8

// Reserved states shared by all CFAs.
const (
	// StateStart is the entry state: the engine has just accepted the
	// query and fetched nothing.
	StateStart StateID = 0
	// StateDone and StateException are terminal.
	StateDone      StateID = 254
	StateException StateID = 255
)

// OpKind enumerates the micro-operation vocabulary of the DPU
// (Sec. IV-B): memory access, arithmetic (plain and hash), comparison.
type OpKind int

const (
	// OpMemRead fetches Bytes bytes starting at Addr (charged per
	// cacheline; QEI reads at 64 B granularity).
	OpMemRead OpKind = iota
	// OpCompare compares Bytes bytes of in-memory data at Addr against
	// the staged key (64 bits per comparator cycle). The integration
	// scheme decides whether it runs on a local comparator or remotely in
	// the CHA owning Addr.
	OpCompare
	// OpALU is Bytes/8 cycles of plain arithmetic on intermediate data.
	OpALU
	// OpHash runs the hashing unit over Bytes bytes of staged key.
	OpHash
)

func (k OpKind) String() string {
	switch k {
	case OpMemRead:
		return "mem"
	case OpCompare:
		return "cmp"
	case OpALU:
		return "alu"
	case OpHash:
		return "hash"
	default:
		return "op?"
	}
}

// Op is one micro-operation request.
type Op struct {
	Kind  OpKind
	Addr  mem.VAddr
	Bytes uint64
}

// MemRead builds a memory micro-op covering [addr, addr+bytes).
func MemRead(addr mem.VAddr, bytes uint64) Op {
	return Op{Kind: OpMemRead, Addr: addr, Bytes: bytes}
}

// Compare builds a comparison micro-op over bytes at addr.
func Compare(addr mem.VAddr, bytes uint64) Op {
	return Op{Kind: OpCompare, Addr: addr, Bytes: bytes}
}

// ALU builds an arithmetic micro-op of the given width.
func ALU(bytes uint64) Op { return Op{Kind: OpALU, Bytes: bytes} }

// HashOp builds a hashing micro-op over bytes of key.
func HashOp(bytes uint64) Op { return Op{Kind: OpHash, Bytes: bytes} }

// Request is what a state transition asks of the engine: perform these
// micro-ops (in parallel if Parallel, else back-to-back), then re-invoke
// the CFA in state Next. Terminal requests set Done/Fault instead.
type Request struct {
	Ops      []Op
	Parallel bool
	Next     StateID

	// Terminal outcome (when Next == StateDone or StateException).
	Found bool
	Value uint64
	Fault error
}

// Continue builds a non-terminal request.
func Continue(next StateID, parallel bool, ops ...Op) Request {
	return Request{Ops: ops, Parallel: parallel, Next: next}
}

// Finish builds a successful terminal request.
func Finish(found bool, value uint64, ops ...Op) Request {
	return Request{Ops: ops, Next: StateDone, Found: found, Value: value}
}

// Fail builds an exception terminal request (Sec. IV-D).
func Fail(err error) Request {
	return Request{Next: StateException, Fault: err}
}

// Query is the per-query execution context: the QST entry's architectural
// content (key address, staged key, parsed header) plus the walker cursor
// kept in the entry's 64 B intermediate-data field.
type Query struct {
	AS         *mem.AddressSpace
	HeaderAddr mem.VAddr
	Header     dstruct.Header
	KeyAddr    mem.VAddr
	Key        []byte // staged by the engine after the key fetch

	// Cursor fields — the contents of the QST "data" scratch field.
	Node    mem.VAddr // current node / bucket / automaton state
	AltNode mem.VAddr // second candidate (cuckoo), fail target (trie)
	Level   int       // skip-list level / bucket slot index
	Pos     int       // input position (trie scan)

	// Matches accumulates trie-scan outputs (result streaming).
	Matches []uint64
}

// Program is the firmware for one data-structure type: a named set of
// state handlers.
type Program interface {
	// TypeCode is the header type byte this CFA serves.
	TypeCode() uint8
	// Name is a human-readable identifier for diagnostics.
	Name() string
	// NumStates reports how many states the CFA defines (≤ 256).
	NumStates() int
	// Step executes the transition out of state for q. The engine calls
	// Step(q, StateStart) after staging the header and key.
	Step(q *Query, state StateID) Request
}

// Registry maps header type codes to CFA programs — the CEE's microcode
// store.
type Registry struct {
	programs map[uint8]Program
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{programs: make(map[uint8]Program)}
}

// DefaultRegistry returns a registry preloaded with the seven built-in
// CFAs (linked list, chained hash, cuckoo, skip list, BST, trie,
// B+-tree).
func DefaultRegistry() *Registry {
	r := NewRegistry()
	for _, p := range []Program{
		LinkedListProgram{}, HashTableProgram{}, CuckooProgram{},
		SkipListProgram{}, BSTProgram{}, TrieProgram{}, BTreeProgram{},
	} {
		if err := r.Register(p); err != nil {
			panic(err)
		}
	}
	return r
}

// Register validates and installs a program (firmware update, Sec. IV-B).
func (r *Registry) Register(p Program) error {
	if err := ValidateProgram(p); err != nil {
		return err
	}
	if _, dup := r.programs[p.TypeCode()]; dup {
		return fmt.Errorf("%w: type code %d already registered", ErrInvalidProgram, p.TypeCode())
	}
	r.programs[p.TypeCode()] = p
	return nil
}

// Lookup finds the program for a type code.
func (r *Registry) Lookup(typeCode uint8) (Program, bool) {
	p, ok := r.programs[typeCode]
	return p, ok
}

// Len reports how many programs are installed.
func (r *Registry) Len() int { return len(r.programs) }

// ValidateProgram enforces the hardware constraints on firmware.
func ValidateProgram(p Program) error {
	if p.TypeCode() == dstruct.TypeInvalid {
		return fmt.Errorf("%w: program %q uses reserved type code 0", ErrInvalidProgram, p.Name())
	}
	if p.NumStates() < 1 || p.NumStates() > 254 {
		return fmt.Errorf("%w: program %q declares %d states; hardware supports 1..254 (+2 reserved)",
			ErrInvalidProgram, p.Name(), p.NumStates())
	}
	return nil
}
