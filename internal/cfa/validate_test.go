package cfa

import (
	"errors"
	"testing"
)

// probeFW is a configurable custom program for exercising the deep
// validation pass. The default behavior (zero fields) terminates
// immediately: one ALU op, then DONE.
type probeFW struct {
	states   int
	behavior func(q *Query, state StateID) Request
}

func (p probeFW) TypeCode() uint8 { return 77 }
func (p probeFW) Name() string    { return "test-probe" }
func (p probeFW) NumStates() int {
	if p.states != 0 {
		return p.states
	}
	return 1
}
func (p probeFW) Step(q *Query, state StateID) Request {
	if p.behavior != nil {
		return p.behavior(q, state)
	}
	return Request{Ops: []Op{ALU(8)}, Next: StateDone}
}

func TestValidateProgramDeepAcceptsMinimalCustom(t *testing.T) {
	if err := ValidateProgramDeep(probeFW{}); err != nil {
		t.Fatalf("minimal terminating program rejected: %v", err)
	}
}

func TestValidateProgramDeepAcceptsBuiltins(t *testing.T) {
	for _, p := range []Program{
		LinkedListProgram{}, HashTableProgram{}, CuckooProgram{},
		SkipListProgram{}, BSTProgram{}, TrieProgram{}, BTreeProgram{},
	} {
		if err := ValidateProgramDeep(p); err != nil {
			t.Fatalf("builtin %s rejected: %v", p.Name(), err)
		}
	}
}

func TestValidateProgramDeepRejectsPathological(t *testing.T) {
	cases := []struct {
		name string
		prog Program
	}{
		{"too-many-states", probeFW{states: 300}},
		{"never-reaches-done", probeFW{behavior: func(q *Query, s StateID) Request {
			return Request{Next: 1} // spins between declared states forever
		}}},
		{"exception-only", probeFW{behavior: func(q *Query, s StateID) Request {
			return Fail(errors.New("no done path"))
		}}},
		{"giant-op-bytes", probeFW{behavior: func(q *Query, s StateID) Request {
			return Request{Ops: []Op{MemRead(q.Header.Root, 1<<30)}, Next: StateDone}
		}}},
		{"panics", probeFW{behavior: func(q *Query, s StateID) Request {
			panic("firmware bug")
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateProgramDeep(tc.prog)
			if err == nil {
				t.Fatal("pathological program accepted")
			}
			if !errors.Is(err, ErrInvalidProgram) {
				t.Fatalf("rejection %v does not wrap ErrInvalidProgram", err)
			}
		})
	}
}

func TestRegisterCollisionWrapsErrInvalidProgram(t *testing.T) {
	r := DefaultRegistry()
	err := r.Register(LinkedListProgram{})
	if err == nil {
		t.Fatal("duplicate type code accepted")
	}
	if !errors.Is(err, ErrInvalidProgram) {
		t.Fatalf("collision error %v does not wrap ErrInvalidProgram", err)
	}
}
