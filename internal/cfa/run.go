package cfa

import (
	"fmt"

	"qei/internal/dstruct"
	"qei/internal/mem"
)

// ExecResult is the outcome of a functional CFA execution.
type ExecResult struct {
	Found bool
	Value uint64
	// Matches holds all trie-scan match values.
	Matches []uint64
	// Transitions counts state-handler invocations (CFA steps).
	Transitions int
	// Ops tallies issued micro-ops by kind.
	Ops map[OpKind]int
	// MemLines is the total cachelines fetched by OpMemRead ops — the
	// accelerator-side analogue of the baseline's load count.
	MemLines int
}

// maxTransitions bounds runaway CFAs (a firmware bug must not hang the
// engine; real hardware would watchdog).
const maxTransitions = 1 << 20

// Run executes a query functionally against the registry: it stages the
// header and key the way the engine does, then steps the CFA to a
// terminal state, tallying micro-ops without timing. The timed engine in
// package qei layers scheduling and latency on the same Step sequence.
func Run(reg *Registry, as *mem.AddressSpace, headerAddr, keyAddr mem.VAddr, keyLen int) (ExecResult, error) {
	res := ExecResult{Ops: make(map[OpKind]int)}
	hdr, err := dstruct.ReadHeader(as, headerAddr)
	if err != nil {
		return res, err
	}
	prog, ok := reg.Lookup(hdr.Type)
	if !ok {
		return res, fmt.Errorf("cfa: no program registered for type %s", dstruct.TypeName(hdr.Type))
	}
	if keyLen == 0 {
		keyLen = int(hdr.KeyLen)
	}
	key := make([]byte, keyLen)
	if err := as.Read(keyAddr, key); err != nil {
		return res, err
	}
	q := &Query{
		AS:         as,
		HeaderAddr: headerAddr,
		Header:     hdr,
		KeyAddr:    keyAddr,
		Key:        key,
	}
	// The engine's metadata fetch is itself one line read.
	res.Ops[OpMemRead]++
	res.MemLines++

	state := StateStart
	for {
		if res.Transitions >= maxTransitions {
			return res, fmt.Errorf("cfa: %s exceeded %d transitions — runaway firmware", prog.Name(), maxTransitions)
		}
		req := prog.Step(q, state)
		res.Transitions++
		for _, op := range req.Ops {
			res.Ops[op.Kind]++
			if op.Kind == OpMemRead {
				res.MemLines += mem.LinesTouched(op.Addr, op.Bytes)
			}
		}
		switch req.Next {
		case StateDone:
			res.Found = req.Found
			res.Value = req.Value
			res.Matches = q.Matches
			return res, nil
		case StateException:
			return res, req.Fault
		default:
			state = req.Next
		}
	}
}
