package cfa

import (
	"strings"
	"testing"
)

func TestExploreAllBuiltins(t *testing.T) {
	for _, p := range []Program{
		LinkedListProgram{}, HashTableProgram{}, CuckooProgram{},
		SkipListProgram{}, BSTProgram{}, TrieProgram{},
	} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			g, err := ExploreBuiltin(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(g.Edges) == 0 {
				t.Fatal("no transitions observed")
			}
			// The explored state count must match (or be below) the
			// program's declared NumStates plus the two terminals.
			nonTerminal := 0
			for _, s := range g.States {
				if s != StateDone && s != StateException {
					nonTerminal++
				}
			}
			if nonTerminal > p.NumStates() {
				t.Fatalf("explored %d non-terminal states, program declares %d",
					nonTerminal, p.NumStates())
			}
		})
	}
}

func TestLinkedListGraphShape(t *testing.T) {
	// Fig. 3: the linked-list CFA alternates COMP and MEM.N with a loop
	// edge on mismatch, entering from START and ending at DONE.
	g, err := ExploreBuiltin(LinkedListProgram{})
	if err != nil {
		t.Fatal(err)
	}
	has := func(from, to StateID) bool {
		for _, e := range g.Edges {
			if e.From == from && e.To == to {
				return true
			}
		}
		return false
	}
	if !has(StateStart, stComp) {
		t.Fatal("missing START->COMP")
	}
	if !has(stComp, stNext) {
		t.Fatal("missing COMP->MEM.N (mismatch loop)")
	}
	if !has(stNext, stComp) {
		t.Fatal("missing MEM.N->COMP")
	}
	if !has(stComp, StateDone) {
		t.Fatal("missing COMP->DONE (match)")
	}
}

func TestDOTRendering(t *testing.T) {
	g, err := ExploreBuiltin(CuckooProgram{})
	if err != nil {
		t.Fatal(err)
	}
	dot := g.ToDOT()
	for _, want := range []string{"digraph", "START", "HASH", "COMP", "DONE", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestValidateCatchesDeadEnd(t *testing.T) {
	g := &Graph{
		Program: "broken",
		States:  []StateID{StateStart, 1, StateDone},
		Edges:   []Edge{{From: StateStart, To: 1, Ops: "mem"}},
		// state 1 has no outgoing edge and DONE unreachable from it
	}
	if err := g.Validate(); err == nil {
		t.Fatal("dead-end state not detected")
	}
}

func TestValidateRequiresDone(t *testing.T) {
	g := &Graph{
		Program: "spinner",
		States:  []StateID{StateStart, 1},
		Edges:   []Edge{{From: StateStart, To: 1}, {From: 1, To: StateStart}},
	}
	if err := g.Validate(); err == nil {
		t.Fatal("DONE-less graph not detected")
	}
}

func TestBTreeGraph(t *testing.T) {
	g, err := ExploreBuiltin(BTreeProgram{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
