package cfa

import (
	"fmt"
	"sort"
	"strings"

	"qei/internal/dstruct"
	"qei/internal/mem"
)

// Firmware static analysis. The CEE is microcoded and firmware-updatable
// (Sec. IV-B); before new transition rules are loaded, the tooling below
// explores a program's reachable state graph by symbolic execution over
// a miniature instance of its data structure and checks the properties
// real microcode validation would insist on: every reachable state can
// reach a terminal state, the state count fits the QST's one-byte
// current_state field, and no transition leaves the declared state set.
// ToDOT renders the explored graph in Graphviz form — the shape of the
// paper's Fig. 3.

// Edge is one observed transition of a CFA.
type Edge struct {
	From, To StateID
	// Ops summarizes the micro-ops issued on this transition, e.g.
	// "mem", "cmp", "mem+cmp".
	Ops string
}

// Graph is the explored state graph of one program.
type Graph struct {
	Program string
	Edges   []Edge
	// States is the set of states observed (including terminals).
	States []StateID
}

// exploreProbe drives prog over the given queries, recording every
// transition taken.
func explore(prog Program, qs []*Query) (*Graph, error) {
	seen := map[Edge]bool{}
	states := map[StateID]bool{}
	g := &Graph{Program: prog.Name()}
	for _, q := range qs {
		state := StateStart
		states[state] = true
		for steps := 0; steps < maxTransitions; steps++ {
			req := prog.Step(q, state)
			var kinds []string
			have := map[string]bool{}
			for _, op := range req.Ops {
				k := op.Kind.String()
				if !have[k] {
					have[k] = true
					kinds = append(kinds, k)
				}
			}
			sort.Strings(kinds)
			e := Edge{From: state, To: req.Next, Ops: strings.Join(kinds, "+")}
			if !seen[e] {
				seen[e] = true
				g.Edges = append(g.Edges, e)
			}
			states[req.Next] = true
			if req.Next == StateDone {
				break
			}
			if req.Next == StateException {
				return nil, fmt.Errorf("cfa: %s faulted during exploration: %v", prog.Name(), req.Fault)
			}
			state = req.Next
		}
	}
	for s := range states {
		g.States = append(g.States, s)
	}
	sort.Slice(g.States, func(i, j int) bool { return g.States[i] < g.States[j] })
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Ops < b.Ops
	})
	return g, nil
}

// ExploreBuiltin builds a miniature instance of the data structure the
// built-in program serves, runs hit and miss queries through it, and
// returns the explored state graph.
func ExploreBuiltin(prog Program) (*Graph, error) {
	as := mem.NewAddressSpace(mem.NewPhysical())
	keys := make([][]byte, 8)
	vals := make([]uint64, 8)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%02d-padddddd", i))[:16]
		vals[i] = uint64(i) + 1
	}
	var header mem.VAddr
	switch prog.TypeCode() {
	case dstruct.TypeLinkedList:
		header = dstruct.BuildLinkedList(as, keys, vals).HeaderAddr
	case dstruct.TypeHashTable:
		header = dstruct.BuildHashTable(as, 4, 3, keys, vals).HeaderAddr
	case dstruct.TypeCuckoo:
		header = dstruct.BuildCuckoo(as, 8, 4, 3, keys, vals).HeaderAddr
	case dstruct.TypeSkipList:
		header = dstruct.BuildSkipList(as, 3, keys, vals).HeaderAddr
	case dstruct.TypeBST:
		header = dstruct.BuildBST(as, 3, 32, keys, vals).HeaderAddr
	case dstruct.TypeTrie:
		header = dstruct.BuildTrie(as, keys, vals).HeaderAddr
	case dstruct.TypeBTree:
		header = dstruct.BuildBTree(as, 4, keys, vals).HeaderAddr
	default:
		return nil, fmt.Errorf("cfa: no miniature builder for type %d", prog.TypeCode())
	}
	hdr, err := dstruct.ReadHeader(as, header)
	if err != nil {
		return nil, err
	}
	mkQuery := func(key []byte) *Query {
		ka := as.AllocLines(uint64(len(key)))
		as.MustWrite(ka, key)
		return &Query{AS: as, HeaderAddr: header, Header: hdr, KeyAddr: ka, Key: key}
	}
	probes := []*Query{
		mkQuery(keys[0]),                    // hit at the front
		mkQuery(keys[7]),                    // hit deeper in
		mkQuery([]byte("absent-key-16byt")), // miss path
	}
	if prog.TypeCode() == dstruct.TypeTrie {
		probes = append(probes, mkQuery([]byte("zz key-03-paddddddzz trailing")))
	}
	return explore(prog, probes)
}

// Validate checks the explored graph's firmware invariants.
func (g *Graph) Validate() error {
	if len(g.States) > 256 {
		return fmt.Errorf("cfa: %s uses %d states; the QST state field holds 256", g.Program, len(g.States))
	}
	reachedDone := false
	for _, s := range g.States {
		if s == StateDone {
			reachedDone = true
		}
	}
	if !reachedDone {
		return fmt.Errorf("cfa: %s never reached DONE during exploration", g.Program)
	}
	// Every non-terminal state must have an outgoing edge.
	out := map[StateID]bool{}
	for _, e := range g.Edges {
		out[e.From] = true
	}
	for _, s := range g.States {
		if s == StateDone || s == StateException {
			continue
		}
		if !out[s] {
			return fmt.Errorf("cfa: %s state %d has no outgoing transition", g.Program, s)
		}
	}
	return nil
}

// stateName renders a StateID using the shared naming convention.
func stateName(s StateID) string {
	switch s {
	case StateStart:
		return "START"
	case StateDone:
		return "DONE"
	case StateException:
		return "EXCEPTION"
	case stFetch:
		return "FETCH"
	case stComp:
		return "COMP"
	case stNext:
		return "MEM.N"
	case stHash:
		return "HASH"
	case stIndex:
		return "INDEX"
	default:
		return fmt.Sprintf("S%d", uint8(s))
	}
}

// ToDOT renders the graph in Graphviz DOT form (Fig. 3 style).
func (g *Graph) ToDOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", g.Program)
	for _, s := range g.States {
		shape := "circle"
		if s == StateDone || s == StateException {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", stateName(s), shape)
	}
	for _, e := range g.Edges {
		label := e.Ops
		if label == "" {
			label = "ε"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", stateName(e.From), stateName(e.To), label)
	}
	b.WriteString("}\n")
	return b.String()
}
