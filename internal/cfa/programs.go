package cfa

import (
	"bytes"
	"fmt"

	"qei/internal/dstruct"
	"qei/internal/mem"
)

// The built-in CFA programs below follow Fig. 3 of the paper: a query
// triggers parallel fetches of the queried key and the starting node,
// then alternates COMP (comparison) and MEM.N (fetch next item) states
// until a match is found or the structure is exhausted, then returns the
// result and goes idle. Each structure adds its characteristic states:
// hash tables insert a HASH state before the first fetch, tries insert an
// index-table search between MEM.N and COMP, skip lists and BSTs extend
// COMP with </> outcomes to steer traversal (Sec. III-A).

// Shared state numbering for the node-walking CFAs.
const (
	stFetch StateID = 1 // MEM.K ∥ MEM.N: stage key and first node
	stComp  StateID = 2 // COMP: compare staged key with current item
	stNext  StateID = 3 // MEM.N: fetch next item
	stHash  StateID = 4 // HASH: compute bucket index (hash structures)
	stIndex StateID = 5 // INDEX: search a node's index table (trie)
)

func errWrongType(name string, h dstruct.Header) error {
	return fmt.Errorf("cfa: %s CFA invoked on %s header", name, dstruct.TypeName(h.Type))
}

func errBadState(name string, s StateID) error {
	return fmt.Errorf("cfa: %s CFA has no state %d", name, s)
}

// nodeLine returns a memory micro-op fetching the single line at addr.
func nodeLine(addr mem.VAddr) Op { return MemRead(addr, mem.LineSize) }

// LinkedListProgram walks the singly linked list of Fig. 3 exactly.
type LinkedListProgram struct{}

func (LinkedListProgram) TypeCode() uint8 { return dstruct.TypeLinkedList }
func (LinkedListProgram) Name() string    { return "linkedlist" }
func (LinkedListProgram) NumStates() int  { return 4 }

func (p LinkedListProgram) Step(q *Query, state StateID) Request {
	switch state {
	case StateStart:
		if q.Header.Type != dstruct.TypeLinkedList {
			return Fail(errWrongType(p.Name(), q.Header))
		}
		q.Node = q.Header.Root
		// 1: issue memory requests for the queried key and starting node.
		ops := []Op{MemRead(q.KeyAddr, uint64(q.Header.KeyLen))}
		if q.Node != 0 {
			ops = append(ops, nodeLine(q.Node))
		}
		return Continue(stComp, true, ops...)

	case stComp:
		if q.Node == 0 {
			return Finish(false, 0)
		}
		k, err := dstruct.ListKey(q.AS, q.Node, q.Header.KeyLen)
		if err != nil {
			return Fail(err)
		}
		cmp := Compare(dstruct.ListKeyAddr(q.Node), uint64(q.Header.KeyLen))
		if bytes.Equal(k, q.Key) {
			v, err := dstruct.ListValue(q.AS, q.Node)
			if err != nil {
				return Fail(err)
			}
			// 7-8: return result, go idle.
			return Finish(true, v, cmp)
		}
		// 6: mismatch — fetch the next node.
		return Continue(stNext, false, cmp)

	case stNext:
		next, err := dstruct.ListNext(q.AS, q.Node)
		if err != nil {
			return Fail(err)
		}
		q.Node = next
		if next == 0 {
			return Finish(false, 0)
		}
		return Continue(stComp, false, nodeLine(next))

	default:
		return Fail(errBadState(p.Name(), state))
	}
}

// HashTableProgram queries the chained hash table: HASH state first, then
// the bucket-head fetch, then the list walk (the "combined structure"
// treatment of Sec. III-A).
type HashTableProgram struct{}

func (HashTableProgram) TypeCode() uint8 { return dstruct.TypeHashTable }
func (HashTableProgram) Name() string    { return "hashtable" }
func (HashTableProgram) NumStates() int  { return 5 }

func (p HashTableProgram) Step(q *Query, state StateID) Request {
	switch state {
	case StateStart:
		if q.Header.Type != dstruct.TypeHashTable {
			return Fail(errWrongType(p.Name(), q.Header))
		}
		// Stage the key first; hashing needs it.
		return Continue(stHash, false, MemRead(q.KeyAddr, uint64(q.Header.KeyLen)))

	case stHash:
		// Hash the staged key, then fetch the bucket head pointer.
		slot := dstruct.HashBucketSlot(q.Header, q.Key)
		q.AltNode = slot
		return Continue(stNext, false,
			HashOp(uint64(q.Header.KeyLen)),
			MemRead(slot, 8))

	case stNext:
		var next mem.VAddr
		if q.Node == 0 && q.AltNode != 0 {
			// First entry: read the bucket head we just fetched.
			headU, err := q.AS.ReadU64(q.AltNode)
			if err != nil {
				return Fail(err)
			}
			next = mem.VAddr(headU)
			q.AltNode = 0
		} else {
			n, err := dstruct.ListNext(q.AS, q.Node)
			if err != nil {
				return Fail(err)
			}
			next = n
		}
		q.Node = next
		if next == 0 {
			return Finish(false, 0)
		}
		return Continue(stComp, false, nodeLine(next))

	case stComp:
		k, err := dstruct.ListKey(q.AS, q.Node, q.Header.KeyLen)
		if err != nil {
			return Fail(err)
		}
		cmp := Compare(dstruct.ListKeyAddr(q.Node), uint64(q.Header.KeyLen))
		if bytes.Equal(k, q.Key) {
			v, err := dstruct.ListValue(q.AS, q.Node)
			if err != nil {
				return Fail(err)
			}
			return Finish(true, v, cmp)
		}
		return Continue(stNext, false, cmp)

	default:
		return Fail(errBadState(p.Name(), state))
	}
}

// CuckooProgram queries the DPDK-style two-choice bucketed table: hash,
// fetch bucket 1, compare its entries; on miss fetch bucket 2 ("6 will
// load the next entry from the same bucket", Sec. III-A, with the
// alternative bucket as the final fallback).
type CuckooProgram struct{}

func (CuckooProgram) TypeCode() uint8 { return dstruct.TypeCuckoo }
func (CuckooProgram) Name() string    { return "cuckoo" }
func (CuckooProgram) NumStates() int  { return 5 }

func (p CuckooProgram) Step(q *Query, state StateID) Request {
	bucketBytes := dstruct.CuckooBucketSize(int(q.Header.KeyLen), int(q.Header.Subtype))
	switch state {
	case StateStart:
		if q.Header.Type != dstruct.TypeCuckoo {
			return Fail(errWrongType(p.Name(), q.Header))
		}
		return Continue(stHash, false, MemRead(q.KeyAddr, uint64(q.Header.KeyLen)))

	case stHash:
		h1, h2 := dstruct.CuckooHashes(q.Key, q.Header.Aux2, q.Header.Aux)
		q.Node = dstruct.EntryAddr(q.Header, h1, 0)
		q.AltNode = dstruct.EntryAddr(q.Header, h2, 0)
		q.Level = 0 // probing bucket 1
		return Continue(stComp, false, HashOp(uint64(q.Header.KeyLen)))

	case stComp:
		// Compare the key against BOTH candidate buckets concurrently,
		// WITHOUT fetching them into the QST: the buckets hold no
		// pointers the CEE needs, so the comparisons run where the data
		// lives — on the comparators in the CHAs owning the buckets
		// (Sec. V-A); the two buckets usually hash to different slices,
		// so the probes proceed in parallel, as HALO's and DPDK's own
		// two-choice lookups do. Schemes without remote comparators
		// fetch the buckets instead (the engine decides).
		ops := []Op{Compare(q.Node, bucketBytes), Compare(q.AltNode, bucketBytes)}
		v, found, err := cuckooFindIn(q, q.Node)
		if err != nil {
			return Fail(err)
		}
		if !found {
			v, found, err = cuckooFindIn(q, q.AltNode)
			if err != nil {
				return Fail(err)
			}
		}
		return Request{Ops: ops, Parallel: true, Next: StateDone, Found: found, Value: v}

	default:
		return Fail(errBadState(p.Name(), state))
	}
}

// SkipListProgram descends the tower with </> comparisons steering the
// traversal direction (the "slight modification to the comparison state"
// of Sec. III-A).
type SkipListProgram struct{}

func (SkipListProgram) TypeCode() uint8 { return dstruct.TypeSkipList }
func (SkipListProgram) Name() string    { return "skiplist" }
func (SkipListProgram) NumStates() int  { return 4 }

func (p SkipListProgram) Step(q *Query, state StateID) Request {
	switch state {
	case StateStart:
		if q.Header.Type != dstruct.TypeSkipList {
			return Fail(errWrongType(p.Name(), q.Header))
		}
		q.Node = q.Header.Root
		q.Level = int(q.Header.Aux) - 1
		return Continue(stNext, true,
			MemRead(q.KeyAddr, uint64(q.Header.KeyLen)),
			nodeLine(q.Node))

	case stNext:
		// Fetch the forward pointer at the current level and the node it
		// leads to.
		slot := dstruct.SkipNextSlot(q.Node, q.Level)
		nextU, err := q.AS.ReadU64(slot)
		if err != nil {
			return Fail(err)
		}
		next := mem.VAddr(nextU)
		if next == 0 {
			if q.Level == 0 {
				return Finish(false, 0, MemRead(slot, 8))
			}
			q.Level--
			return Continue(stNext, false, MemRead(slot, 8))
		}
		q.AltNode = next
		return Continue(stComp, false, MemRead(slot, 8), nodeLine(next))

	case stComp:
		next := q.AltNode
		nh, err := dstruct.SkipHeight(q.AS, next)
		if err != nil {
			return Fail(err)
		}
		keyAddr := dstruct.SkipKeyAddr(next, nh)
		stored := make([]byte, q.Header.KeyLen)
		if err := q.AS.Read(keyAddr, stored); err != nil {
			return Fail(err)
		}
		cmp := Compare(keyAddr, uint64(q.Header.KeyLen))
		c := bytes.Compare(stored, q.Key)
		switch {
		case c < 0:
			q.Node = next
			return Continue(stNext, false, cmp)
		case c == 0 && q.Level == 0:
			v, err := dstruct.SkipValue(q.AS, next)
			if err != nil {
				return Fail(err)
			}
			return Finish(true, v, cmp)
		default:
			if q.Level == 0 {
				if c == 0 {
					// Found above level 0: confirm at level 0 next pass.
					v, err := dstruct.SkipValue(q.AS, next)
					if err != nil {
						return Fail(err)
					}
					return Finish(true, v, cmp)
				}
				return Finish(false, 0, cmp)
			}
			q.Level--
			return Continue(stNext, false, cmp)
		}

	default:
		return Fail(errBadState(p.Name(), state))
	}
}

// BSTProgram walks the object tree with three-way comparisons.
type BSTProgram struct{}

func (BSTProgram) TypeCode() uint8 { return dstruct.TypeBST }
func (BSTProgram) Name() string    { return "bst" }
func (BSTProgram) NumStates() int  { return 4 }

func (p BSTProgram) Step(q *Query, state StateID) Request {
	payload := int(q.Header.Aux)
	switch state {
	case StateStart:
		if q.Header.Type != dstruct.TypeBST {
			return Fail(errWrongType(p.Name(), q.Header))
		}
		q.Node = q.Header.Root
		if q.Node == 0 {
			return Finish(false, 0)
		}
		// Node header line plus the key's lines (payload pushes the key
		// beyond the first line — the multi-access node of the JVM tree).
		return Continue(stComp, true,
			MemRead(q.KeyAddr, uint64(q.Header.KeyLen)),
			nodeLine(q.Node),
			MemRead(dstruct.BSTKeyAddr(q.Node, payload), uint64(q.Header.KeyLen)))

	case stComp:
		keyAddr := dstruct.BSTKeyAddr(q.Node, payload)
		stored := make([]byte, q.Header.KeyLen)
		if err := q.AS.Read(keyAddr, stored); err != nil {
			return Fail(err)
		}
		cmp := Compare(keyAddr, uint64(q.Header.KeyLen))
		c := bytes.Compare(q.Key, stored)
		if c == 0 {
			v, err := dstruct.BSTValue(q.AS, q.Node)
			if err != nil {
				return Fail(err)
			}
			return Finish(true, v, cmp)
		}
		childU, err := q.AS.ReadU64(dstruct.BSTChildSlot(q.Node, c > 0))
		if err != nil {
			return Fail(err)
		}
		q.Node = mem.VAddr(childU)
		if q.Node == 0 {
			return Finish(false, 0, cmp)
		}
		return Continue(stComp, false,
			cmp,
			nodeLine(q.Node),
			MemRead(dstruct.BSTKeyAddr(q.Node, payload), uint64(q.Header.KeyLen)))

	default:
		return Fail(errBadState(p.Name(), state))
	}
}

// TrieProgram scans an input string (the staged "key") through the
// Aho-Corasick automaton. Between MEM.N and COMP it runs the INDEX state
// searching the node's edge table (Sec. III-A). The scan finishes when
// the input is exhausted; the result is the last match value (all match
// values accumulate in q.Matches).
type TrieProgram struct{}

func (TrieProgram) TypeCode() uint8 { return dstruct.TypeTrie }
func (TrieProgram) Name() string    { return "trie" }
func (TrieProgram) NumStates() int  { return 5 }

func (p TrieProgram) Step(q *Query, state StateID) Request {
	switch state {
	case StateStart:
		if q.Header.Type != dstruct.TypeTrie {
			return Fail(errWrongType(p.Name(), q.Header))
		}
		q.Node = q.Header.Root
		q.Pos = 0
		// Stage the whole input string (its lines stream in) and the root.
		return Continue(stIndex, true,
			MemRead(q.KeyAddr, uint64(len(q.Key))),
			nodeLine(q.Node))

	case stIndex:
		if q.Pos >= len(q.Key) {
			var last uint64
			if n := len(q.Matches); n > 0 {
				last = q.Matches[n-1]
			}
			return Finish(len(q.Matches) > 0, last)
		}
		b := q.Key[q.Pos]
		child, probes, slots, err := dstruct.TrieFindEdgeProbes(q.AS, q.Node, b)
		if err != nil {
			return Fail(err)
		}
		// Index-table search: probed edge slots live in the node's lines
		// (dense nodes: one slot line; sparse: the binary-search probes).
		// Charge one memory micro-op per distinct probed line beyond the
		// node header, plus a compare per probe.
		var idxOps []Op
		seen := map[mem.VAddr]bool{}
		for _, s := range slots {
			if l := s.Line(); !seen[l] {
				seen[l] = true
				idxOps = append(idxOps, MemRead(l, 8))
			}
		}
		idxCmp := Compare(q.Node+24, uint64(probes)*8)
		if child != 0 {
			q.Node = child
			q.Pos++
			out, err := dstruct.TrieOutput(q.AS, child)
			if err != nil {
				return Fail(err)
			}
			if out != 0 {
				q.Matches = append(q.Matches, out)
			}
			return Continue(stIndex, false, append(idxOps, idxCmp, nodeLine(child))...)
		}
		if q.Node == q.Header.Root {
			q.Pos++ // no edge from root: consume the byte
			return Continue(stIndex, false, append(idxOps, idxCmp)...)
		}
		fl, err := dstruct.TrieFail(q.AS, q.Node)
		if err != nil {
			return Fail(err)
		}
		q.Node = fl
		return Continue(stIndex, false, append(idxOps, idxCmp, nodeLine(fl))...)

	default:
		return Fail(errBadState(p.Name(), state))
	}
}

// BTreeProgram descends a B+-tree: each level fetches one node and runs
// an INDEX-style binary search over its separators — the "Meet the
// walkers" traversal expressed as a CFA. Inner levels route; the leaf
// level compares for the exact match.
type BTreeProgram struct{}

// TypeCode implements Program.
func (BTreeProgram) TypeCode() uint8 { return dstruct.TypeBTree }

// Name implements Program.
func (BTreeProgram) Name() string { return "btree" }

// NumStates implements Program.
func (BTreeProgram) NumStates() int { return 3 }

// Step implements Program.
func (p BTreeProgram) Step(q *Query, state StateID) Request {
	switch state {
	case StateStart:
		if q.Header.Type != dstruct.TypeBTree {
			return Fail(errWrongType(p.Name(), q.Header))
		}
		q.Node = q.Header.Root
		if q.Node == 0 {
			return Finish(false, 0)
		}
		nodeBytes := uint64(16) + (uint64((int(q.Header.KeyLen)+7)&^7)+8)*uint64(q.Header.Subtype)
		return Continue(stIndex, true,
			MemRead(q.KeyAddr, uint64(q.Header.KeyLen)),
			MemRead(q.Node, nodeBytes))

	case stIndex:
		ptr, leaf, found, probes, err := dstruct.BTreeSearchNode(q.AS, q.Node, int(q.Header.KeyLen), q.Key)
		if err != nil {
			return Fail(err)
		}
		// The binary search compares `probes` separator keys against the
		// staged key; the node's lines were fetched by the previous
		// transition, so the comparison is local to the staged data.
		cmp := Compare(q.Node+16, uint64(probes)*uint64(q.Header.KeyLen))
		if leaf {
			return Finish(found, ptr, cmp)
		}
		q.Node = mem.VAddr(ptr)
		if q.Node == 0 {
			return Finish(false, 0, cmp)
		}
		nodeBytes := uint64(16) + (uint64((int(q.Header.KeyLen)+7)&^7)+8)*uint64(q.Header.Subtype)
		return Continue(stIndex, false, cmp, MemRead(q.Node, nodeBytes))

	default:
		return Fail(errBadState(p.Name(), state))
	}
}
