package cfa

import (
	"errors"
	"fmt"

	"qei/internal/dstruct"
	"qei/internal/mem"
)

// ErrInvalidProgram is the sentinel behind every firmware rejection:
// static-constraint violations, registry type-code collisions, and
// failures of the deep validation probe all wrap it, so callers can
// errors.Is a single error across the whole validation surface.
var ErrInvalidProgram = errors.New("cfa: invalid firmware program")

// MaxOpBytes bounds the Bytes field of a single micro-op. The QST data
// field stages at most a handful of cachelines per transition; an op
// claiming more is firmware nonsense, and the engine rejects it before
// the per-line accounting loop would spin over the claimed range.
const MaxOpBytes = 1 << 24

// deepProbeBudget caps the symbolic probe of ValidateProgramDeep. Real
// firmware terminates a one-element structure within a few transitions;
// 1<<16 leaves three orders of magnitude of slack while keeping
// validation instant.
const deepProbeBudget = 1 << 16

// ValidateProgramDeep runs the full firmware admission pass used by
// RegisterFirmware: the static checks of ValidateProgram, then a
// behavioral probe proving the program can actually reach FirmwareDone
// within hardware bounds. Built-in type codes are explored over a
// miniature instance of their structure (hit, deep-hit, and miss
// probes) and their state graph validated; custom programs are driven
// over a minimal synthetic structure — a single zeroed element — which
// any total walk must terminate on. Every rejection wraps
// ErrInvalidProgram.
func ValidateProgramDeep(p Program) error {
	if err := ValidateProgram(p); err != nil {
		return err
	}
	switch p.TypeCode() {
	case dstruct.TypeLinkedList, dstruct.TypeHashTable, dstruct.TypeCuckoo,
		dstruct.TypeSkipList, dstruct.TypeBST, dstruct.TypeTrie, dstruct.TypeBTree:
		g, err := ExploreBuiltin(p)
		if err != nil {
			return fmt.Errorf("%w: exploration of %q failed: %v", ErrInvalidProgram, p.Name(), err)
		}
		if err := g.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidProgram, err)
		}
		return nil
	default:
		return probeCustom(p)
	}
}

// probeCustom drives a custom program over a minimal synthetic
// structure: a header of the program's own type whose Root points at
// zeroed memory, queried with a non-zero key. Null pointers and
// zero-length fields are exactly what a terminating walk must cope
// with, so a program that panics, faults, or fails to reach
// FirmwareDone here is rejected.
func probeCustom(p Program) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %q panicked during validation probe: %v",
				ErrInvalidProgram, p.Name(), r)
		}
	}()

	as := mem.NewAddressSpace(mem.NewPhysical())
	root := as.AllocLines(512) // zeroed scratch the probe walk may read
	headerAddr := dstruct.WriteHeader(as, dstruct.Header{
		Root: root, Type: p.TypeCode(), Subtype: 1, KeyLen: 16, Size: 1, Aux: 1, Aux2: 1,
	})
	hdr, err := dstruct.ReadHeader(as, headerAddr)
	if err != nil {
		return fmt.Errorf("%w: probe header unreadable: %v", ErrInvalidProgram, err)
	}
	key := []byte("validation-probe")[:16]
	keyAddr := as.AllocLines(uint64(len(key)))
	as.MustWrite(keyAddr, key)
	q := &Query{AS: as, HeaderAddr: headerAddr, Header: hdr, KeyAddr: keyAddr, Key: key}

	state := StateStart
	for steps := 0; steps < deepProbeBudget; steps++ {
		req := p.Step(q, state)
		for _, op := range req.Ops {
			if op.Bytes > MaxOpBytes {
				return fmt.Errorf("%w: %q state %d issues a %d-byte micro-op (max %d)",
					ErrInvalidProgram, p.Name(), state, op.Bytes, MaxOpBytes)
			}
		}
		switch req.Next {
		case StateDone:
			return nil
		case StateException:
			return fmt.Errorf("%w: %q faulted on the minimal probe structure instead of reaching FirmwareDone: %v",
				ErrInvalidProgram, p.Name(), req.Fault)
		default:
			state = req.Next
		}
	}
	return fmt.Errorf("%w: %q did not reach FirmwareDone within %d transitions on a one-element structure",
		ErrInvalidProgram, p.Name(), deepProbeBudget)
}
