package scheme

import "testing"

func TestAllKindsHaveParams(t *testing.T) {
	for _, k := range Kinds() {
		p := ForKind(k)
		if p.Kind != k {
			t.Fatalf("%s: Kind mismatch", k)
		}
		if p.QSTEntriesPerInstance <= 0 || p.Instances <= 0 {
			t.Fatalf("%s: bad capacity %+v", k, p)
		}
		if p.ComparatorsPerSite <= 0 {
			t.Fatalf("%s: no comparators", k)
		}
	}
}

func TestPaperCapacities(t *testing.T) {
	// Sec. VI-A: 10 in-flight per accelerator for CHA/core schemes;
	// 10 x 24 for the device schemes.
	for _, k := range []Kind{CoreIntegrated, CHATLB, CHANoTLB} {
		if got := ForKind(k).QSTEntriesPerInstance; got != 10 {
			t.Fatalf("%s QST entries = %d, want 10", k, got)
		}
	}
	for _, k := range []Kind{DeviceDirect, DeviceIndirect} {
		if got := ForKind(k).QSTEntriesPerInstance; got != 240 {
			t.Fatalf("%s QST entries = %d, want 240", k, got)
		}
	}
	if ForKind(CHATLB).Instances != 24 {
		t.Fatal("CHA schemes should have 24 instances")
	}
}

func TestTranslationPaths(t *testing.T) {
	if ForKind(CoreIntegrated).Translation != TransL2TLB {
		t.Fatal("Core-integrated must share the L2-TLB")
	}
	if ForKind(CHATLB).Translation != TransDedicated {
		t.Fatal("CHA-TLB must use a dedicated TLB")
	}
	if ForKind(CHATLB).DedicatedTLB.Entries != 1024 {
		t.Fatalf("CHA-TLB size = %d, want 1024 (same as L2-TLB)", ForKind(CHATLB).DedicatedTLB.Entries)
	}
	if ForKind(CHANoTLB).Translation != TransCoreMMU {
		t.Fatal("CHA-noTLB must round-trip to the core MMU")
	}
}

func TestRemoteCompareOnlyForIntegratedSchemes(t *testing.T) {
	for _, k := range []Kind{CoreIntegrated, CHATLB, CHANoTLB} {
		if !ForKind(k).RemoteCompare {
			t.Fatalf("%s should have CHA comparators", k)
		}
	}
	for _, k := range []Kind{DeviceDirect, DeviceIndirect} {
		if ForKind(k).RemoteCompare {
			t.Fatalf("%s should not have CHA comparators", k)
		}
	}
}

func TestComparatorCountsMatchTableII(t *testing.T) {
	// Tab. II: two comparators per CHA for CHA-based/Core-integrated,
	// ten per DPU for Device-based.
	for _, k := range []Kind{CoreIntegrated, CHATLB, CHANoTLB} {
		if got := ForKind(k).ComparatorsPerSite; got != 2 {
			t.Fatalf("%s comparators = %d, want 2", k, got)
		}
	}
	for _, k := range []Kind{DeviceDirect, DeviceIndirect} {
		if got := ForKind(k).ComparatorsPerSite; got != 10 {
			t.Fatalf("%s comparators = %d, want 10", k, got)
		}
	}
}

func TestLatencyOverheadOrdering(t *testing.T) {
	ci := ForKind(CoreIntegrated)
	cha := ForKind(CHATLB)
	dd := ForKind(DeviceDirect)
	di := ForKind(DeviceIndirect)
	if !(ci.PortOverhead < cha.PortOverhead && cha.PortOverhead < dd.PortOverhead && dd.PortOverhead < di.PortOverhead) {
		t.Fatal("port overheads must grow Core < CHA < Device-direct < Device-indirect")
	}
	if di.ExtraDataLatency == 0 {
		t.Fatal("Device-indirect must pay interface latency per data access")
	}
	if dd.ExtraDataLatency != 0 {
		t.Fatal("Device-direct accesses cache like a core — no extra data latency")
	}
}

func TestHotspotFlags(t *testing.T) {
	for _, k := range []Kind{DeviceDirect, DeviceIndirect} {
		if !ForKind(k).NoCHotspot {
			t.Fatalf("%s should be flagged as a NoC hotspot", k)
		}
	}
	if ForKind(CoreIntegrated).NoCHotspot {
		t.Fatal("Core-integrated is distributed — no hotspot")
	}
}

func TestTableIShape(t *testing.T) {
	rows := TableI()
	if len(rows) != 5 {
		t.Fatalf("Tab. I has %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Scheme == "" || r.AccelCoreCycles == "" || r.Scalability == "" {
			t.Fatalf("incomplete row %+v", r)
		}
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		CoreIntegrated: "Core-integrated",
		CHATLB:         "CHA-TLB",
		CHANoTLB:       "CHA-noTLB",
		DeviceDirect:   "Device-direct",
		DeviceIndirect: "Device-indirect",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
