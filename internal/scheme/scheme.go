// Package scheme defines the five accelerator integration schemes the
// paper evaluates (Sec. V, Sec. VI-A) as parameter sets: where the
// accelerator sits on the chip, how many in-flight queries it supports,
// how it translates addresses, how it reaches data, and whether it can
// dispatch key comparisons to the CHAs.
package scheme

import (
	"fmt"

	"qei/internal/tlb"
)

// Kind enumerates the integration schemes.
type Kind int

const (
	// CoreIntegrated is the paper's proposal: QST/CEE/DPU beside each
	// core's L2 and L2-TLB, comparators distributed into the CHAs.
	CoreIntegrated Kind = iota
	// CHATLB is the HALO-style scheme: accelerators in every CHA, each
	// with a dedicated 1024-entry TLB.
	CHATLB
	// CHANoTLB places accelerators in the CHAs but routes every
	// translation to the core's MMU.
	CHANoTLB
	// DeviceDirect attaches one accelerator to the NoC as a special core
	// (DASX-style).
	DeviceDirect
	// DeviceIndirect attaches the accelerator behind a standard device
	// interface (CXL/OpenCAPI-style), adding interface latency to every
	// access.
	DeviceIndirect
)

// Kinds lists all schemes in the paper's presentation order.
func Kinds() []Kind {
	return []Kind{CHATLB, CHANoTLB, DeviceDirect, DeviceIndirect, CoreIntegrated}
}

func (k Kind) String() string {
	switch k {
	case CoreIntegrated:
		return "Core-integrated"
	case CHATLB:
		return "CHA-TLB"
	case CHANoTLB:
		return "CHA-noTLB"
	case DeviceDirect:
		return "Device-direct"
	case DeviceIndirect:
		return "Device-indirect"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// TranslationPath selects how the accelerator translates virtual
// addresses (the crux of Challenge 3, Sec. II-B).
type TranslationPath int

const (
	// TransL2TLB shares the core's L2-TLB (Core-integrated).
	TransL2TLB TranslationPath = iota
	// TransDedicated uses a private TLB at the accelerator (CHA-TLB,
	// device schemes' IOMMU-ish TLB).
	TransDedicated
	// TransCoreMMU round-trips every translation to the core's MMU
	// (CHA-noTLB).
	TransCoreMMU
)

func (t TranslationPath) String() string {
	switch t {
	case TransL2TLB:
		return "shared L2-TLB"
	case TransDedicated:
		return "dedicated TLB"
	case TransCoreMMU:
		return "core MMU round-trip"
	default:
		return "?"
	}
}

// DataPath selects how the accelerator's memory micro-ops reach data.
type DataPath int

const (
	// DataViaL2 goes through the issuing core's L2 then the LLC
	// (Core-integrated: shares L2, avoids L1 pollution).
	DataViaL2 DataPath = iota
	// DataViaLLC goes straight to the owning LLC slice from the
	// accelerator's mesh stop (CHA and device schemes).
	DataViaLLC
)

// Params is the complete description of one integration scheme.
type Params struct {
	Kind Kind
	// QSTEntriesPerInstance is the in-flight query capacity of one
	// accelerator instance (10 for CHA/core schemes, 240 for devices —
	// Sec. VI-A).
	QSTEntriesPerInstance int
	// Instances is the number of accelerator instances on the chip (24
	// for CHA schemes, 1 otherwise; the Core-integrated scheme has one
	// per core but a single-threaded workload exercises one).
	Instances int
	// PortOverhead is the fixed cost of handing a request from the core
	// to the accelerator beyond NoC traversal (queueing, protocol).
	PortOverhead uint64
	// ReplyOverhead is the fixed cost of delivering the result back.
	ReplyOverhead uint64
	// Translation picks the translation path; DedicatedTLB holds its
	// geometry when Translation == TransDedicated.
	Translation  TranslationPath
	DedicatedTLB tlb.Config
	// Data picks the data-access path.
	Data DataPath
	// ExtraDataLatency is charged on every accelerator data access
	// (device-interface overhead; the Fig. 8 sweep varies it).
	ExtraDataLatency uint64
	// RemoteCompare enables dispatching comparisons of non-staged data to
	// the CHA owning it (near-data comparison, Sec. V-A).
	RemoteCompare bool
	// ComparatorsPerSite bounds concurrent comparisons per CHA (2) or per
	// device DPU (10) — Tab. II.
	ComparatorsPerSite int
	// HardwareCost is Tab. I's qualitative cost label.
	HardwareCost string
	// NoCHotspot marks schemes that concentrate traffic on one stop.
	NoCHotspot bool
	// Scalability is Tab. I's qualitative scalability label.
	Scalability string
}

// ForKind returns the paper's configuration for a scheme (Sec. VI-A,
// Tab. I, Tab. II).
func ForKind(k Kind) Params {
	switch k {
	case CoreIntegrated:
		return Params{
			Kind:                  k,
			QSTEntriesPerInstance: 10,
			Instances:             1,
			PortOverhead:          8, // Tab. I: 10–25 cycles core↔accel
			ReplyOverhead:         4,
			Translation:           TransL2TLB,
			Data:                  DataViaL2,
			RemoteCompare:         true,
			ComparatorsPerSite:    2,
			HardwareCost:          "Low",
			Scalability:           "Good",
		}
	case CHATLB:
		return Params{
			Kind:                  k,
			QSTEntriesPerInstance: 10,
			Instances:             24,
			PortOverhead:          18, // Tab. I: 40–60 with NoC traversal
			ReplyOverhead:         10,
			Translation:           TransDedicated,
			DedicatedTLB:          tlb.L2TLBConfig(), // "same as the L2-TLB size"
			Data:                  DataViaLLC,
			RemoteCompare:         true,
			ComparatorsPerSite:    2,
			HardwareCost:          "Low (TLB-heavy)",
			Scalability:           "Good",
		}
	case CHANoTLB:
		return Params{
			Kind:                  k,
			QSTEntriesPerInstance: 10,
			Instances:             24,
			PortOverhead:          18,
			ReplyOverhead:         10,
			Translation:           TransCoreMMU,
			Data:                  DataViaLLC,
			RemoteCompare:         true,
			ComparatorsPerSite:    2,
			HardwareCost:          "Low",
			Scalability:           "Good",
		}
	case DeviceDirect:
		return Params{
			Kind:                  k,
			QSTEntriesPerInstance: 240, // 10 × 24 cores, Sec. VI-A
			Instances:             1,
			PortOverhead:          90, // Tab. I: 100–500 core↔accel
			ReplyOverhead:         60,
			Translation:           TransDedicated,
			DedicatedTLB:          tlb.Config{Entries: 1024, Ways: 8, HitLatency: 12},
			Data:                  DataViaLLC,
			RemoteCompare:         false,
			ComparatorsPerSite:    10,
			HardwareCost:          "Medium/High",
			NoCHotspot:            true,
			Scalability:           "Medium",
		}
	case DeviceIndirect:
		return Params{
			Kind:                  k,
			QSTEntriesPerInstance: 240,
			Instances:             1,
			PortOverhead:          280, // device-interface request path
			ReplyOverhead:         180,
			Translation:           TransDedicated,
			DedicatedTLB:          tlb.Config{Entries: 1024, Ways: 8, HitLatency: 16},
			Data:                  DataViaLLC,
			ExtraDataLatency:      300, // swept 50–2000 in Fig. 8
			RemoteCompare:         false,
			ComparatorsPerSite:    10,
			HardwareCost:          "Medium/High",
			NoCHotspot:            true,
			Scalability:           "Medium",
		}
	default:
		panic(fmt.Sprintf("scheme: unknown kind %d", int(k)))
	}
}

// TableIRow summarizes a scheme for the Tab. I reproduction.
type TableIRow struct {
	Scheme          string
	AccelCoreCycles string
	AccelDataCycles string
	HardwareCost    string
	MemMgmt         string
	NoCHotspot      string
	PrivatePollute  string
	Scalability     string
}

// TableI returns the qualitative comparison of Tab. I derived from the
// parameter sets.
func TableI() []TableIRow {
	mk := func(k Kind, coreLat, dataLat, mgmt, pollute string) TableIRow {
		p := ForKind(k)
		hot := "No"
		if p.NoCHotspot {
			hot = "Yes"
		}
		return TableIRow{
			Scheme:          k.String(),
			AccelCoreCycles: coreLat,
			AccelDataCycles: dataLat,
			HardwareCost:    p.HardwareCost,
			MemMgmt:         mgmt,
			NoCHotspot:      hot,
			PrivatePollute:  pollute,
			Scalability:     p.Scalability,
		}
	}
	return []TableIRow{
		mk(CHATLB, "40-60", "10-50", "Dedicated", "No"),
		mk(CHANoTLB, "40-60", "10-50", "Shared", "No"),
		mk(DeviceDirect, "100-500", "100-500", "Dedicated", "No"),
		mk(DeviceIndirect, "100-500", "100-500", "Dedicated", "No"),
		mk(CoreIntegrated, "10-25", "20-40", "Shared", "No"),
	}
}
