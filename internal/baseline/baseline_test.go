package baseline

import (
	"bytes"
	"math/rand"
	"testing"

	"qei/internal/dstruct"
	"qei/internal/isa"
	"qei/internal/mem"
)

func newAS() *mem.AddressSpace {
	return mem.NewAddressSpace(mem.NewPhysical())
}

func genKeys(n, keyLen int, seed int64) ([][]byte, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	keys := make([][]byte, 0, n)
	vals := make([]uint64, 0, n)
	for len(keys) < n {
		k := make([]byte, keyLen)
		rng.Read(k)
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		keys = append(keys, k)
		vals = append(vals, uint64(len(keys))*31+5)
	}
	return keys, vals
}

func TestLinkedListMatchesReference(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(40, 16, 1)
	l := dstruct.BuildLinkedList(as, keys, vals)
	for i, k := range keys {
		r, err := QueryLinkedList(as, l.HeaderAddr, k)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Found || r.Value != vals[i] {
			t.Fatalf("key %d: %+v want %d", i, r, vals[i])
		}
		if len(r.Trace) == 0 {
			t.Fatal("no trace emitted")
		}
	}
	r, err := QueryLinkedList(as, l.HeaderAddr, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if r.Found {
		t.Fatal("absent key found")
	}
	// A full miss walks all nodes: trace must reflect ~40 node loads.
	if r.Trace.Loads() < 40 {
		t.Fatalf("miss trace has %d loads, want >= 40", r.Trace.Loads())
	}
}

func TestLinkedListTraceGrowsWithPosition(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(30, 16, 2)
	l := dstruct.BuildLinkedList(as, keys, vals)
	r0, _ := QueryLinkedList(as, l.HeaderAddr, keys[0])
	r29, _ := QueryLinkedList(as, l.HeaderAddr, keys[29])
	if len(r29.Trace) <= len(r0.Trace) {
		t.Fatalf("tail query trace (%d ops) not longer than head query (%d ops)",
			len(r29.Trace), len(r0.Trace))
	}
}

func TestHashTableMatchesReference(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(300, 16, 3)
	ht := dstruct.BuildHashTable(as, 64, 9, keys, vals)
	for i, k := range keys {
		r, err := QueryHashTable(as, ht.HeaderAddr, k)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Found || r.Value != vals[i] {
			t.Fatalf("key %d: %+v want %d", i, r, vals[i])
		}
	}
}

func TestCuckooMatchesReference(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(1000, 16, 4)
	c := dstruct.BuildCuckoo(as, 512, 4, 11, keys, vals)
	for i, k := range keys {
		r, err := QueryCuckoo(as, c.HeaderAddr, k)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Found || r.Value != vals[i] {
			t.Fatalf("key %d: %+v want %d", i, r, vals[i])
		}
	}
	r, _ := QueryCuckoo(as, c.HeaderAddr, make([]byte, 16))
	if r.Found {
		t.Fatal("absent key found")
	}
}

func TestCuckooBoundedWork(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(1000, 16, 5)
	c := dstruct.BuildCuckoo(as, 512, 4, 11, keys, vals)
	// Hash-table queries have a small, fixed number of memory accesses
	// (Sec. VII-A); with 16 B keys and 4-entry buckets a probe is ~2
	// lines per bucket.
	for _, k := range keys[:50] {
		r, _ := QueryCuckoo(as, c.HeaderAddr, k)
		if n := r.Trace.Loads(); n > 12 {
			t.Fatalf("cuckoo query loaded %d lines, want bounded (<=12)", n)
		}
	}
}

func TestSkipListMatchesReference(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(500, 32, 6)
	sl := dstruct.BuildSkipList(as, 77, keys, vals)
	for i, k := range keys {
		r, err := QuerySkipList(as, sl.HeaderAddr, k)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Found || r.Value != vals[i] {
			t.Fatalf("key %d: found=%v value=%d want %d", i, r.Found, r.Value, vals[i])
		}
	}
	r, _ := QuerySkipList(as, sl.HeaderAddr, bytes.Repeat([]byte{0xff}, 32))
	if r.Found {
		t.Fatal("absent key found")
	}
}

func TestSkipListLogarithmicWork(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(1000, 32, 7)
	sl := dstruct.BuildSkipList(as, 13, keys, vals)
	total := 0
	for _, k := range keys[:100] {
		r, _ := QuerySkipList(as, sl.HeaderAddr, k)
		total += r.Trace.Loads()
	}
	avg := float64(total) / 100
	// log4(1000) ≈ 5 levels of real work + level scans; expect tens of
	// loads, far below the 1000 a linear scan would need.
	if avg > 150 {
		t.Fatalf("skip list averages %.1f loads/query — not logarithmic", avg)
	}
	if avg < 10 {
		t.Fatalf("skip list averages %.1f loads/query — implausibly low", avg)
	}
}

func TestBSTMatchesReference(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(600, 8, 8)
	b := dstruct.BuildBST(as, 3, 64, keys, vals)
	for i, k := range keys {
		r, err := QueryBST(as, b.HeaderAddr, k)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Found || r.Value != vals[i] {
			t.Fatalf("key %d: found=%v value=%d want %d", i, r.Found, r.Value, vals[i])
		}
	}
}

func TestBSTQueryHasDeepDependentChain(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(4000, 8, 9)
	b := dstruct.BuildBST(as, 5, 64, keys, vals)
	// JVM calibration target: tens of memory accesses per query.
	total := 0
	for _, k := range keys[:200] {
		r, _ := QueryBST(as, b.HeaderAddr, k)
		total += r.Trace.Loads()
	}
	avg := float64(total) / 200
	if avg < 15 || avg > 80 {
		t.Fatalf("BST averages %.1f loads/query, want tree-depth-ish (15..80)", avg)
	}
}

func TestScanTrieMatchesReference(t *testing.T) {
	as := newAS()
	kws := [][]byte{[]byte("attack"), []byte("root"), []byte("passwd"), []byte("admin")}
	tr := dstruct.BuildTrie(as, kws, []uint64{1, 2, 3, 4})
	input := []byte("GET /rootkit?admin=1&x=passwd HTTP/1.1")
	want, err := dstruct.ScanTrieRef(as, tr.HeaderAddr, input)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ScanTrie(as, tr.HeaderAddr, input)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Matches) != len(want) {
		t.Fatalf("matches = %v, reference = %v", got.Matches, want)
	}
	for i := range want {
		if got.Matches[i] != want[i] {
			t.Fatalf("match %d = %d, want %d", i, got.Matches[i], want[i])
		}
	}
	if got.Steps < len(input) {
		t.Fatalf("steps = %d, want >= input length %d", got.Steps, len(input))
	}
}

func TestHundredsOfDynamicInstructions(t *testing.T) {
	// Sec. II-A: "each query operation can easily generate hundreds of
	// dynamic instructions". Check the pointer-chasing structures.
	as := newAS()
	keys, vals := genKeys(10000, 32, 10)
	sl := dstruct.BuildSkipList(as, 3, keys, vals)
	r, _ := QuerySkipList(as, sl.HeaderAddr, keys[7000])
	if len(r.Trace) < 100 {
		t.Fatalf("skip list query = %d dynamic ops, want hundreds", len(r.Trace))
	}
}

func TestWrongHeaderTypeRejected(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(5, 16, 11)
	l := dstruct.BuildLinkedList(as, keys, vals)
	if _, err := QueryCuckoo(as, l.HeaderAddr, keys[0]); err == nil {
		t.Fatal("cuckoo walker accepted a linked-list header")
	}
	if _, err := QuerySkipList(as, l.HeaderAddr, keys[0]); err == nil {
		t.Fatal("skiplist walker accepted a linked-list header")
	}
	if _, err := QueryBST(as, l.HeaderAddr, keys[0]); err == nil {
		t.Fatal("bst walker accepted a linked-list header")
	}
	if _, err := QueryHashTable(as, l.HeaderAddr, keys[0]); err == nil {
		t.Fatal("hashtable walker accepted a linked-list header")
	}
	if _, err := ScanTrie(as, l.HeaderAddr, []byte("x")); err == nil {
		t.Fatal("trie walker accepted a linked-list header")
	}
}

func TestTraceHasRealAddresses(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(20, 16, 12)
	l := dstruct.BuildLinkedList(as, keys, vals)
	r, _ := QueryLinkedList(as, l.HeaderAddr, keys[10])
	for _, op := range r.Trace {
		if op.Kind == isa.Load && op.Addr == 0 && op.Size > 1 {
			t.Fatal("load with NULL address in trace")
		}
		if op.Kind == isa.Load {
			if _, err := as.Translate(op.Addr); err != nil {
				t.Fatalf("trace load at unmapped address %#x", uint64(op.Addr))
			}
		}
	}
}
