// Package baseline implements the software query routines the paper
// compares QEI against: -O3-compiled loops running on the out-of-order
// core model.
//
// Each routine plays two roles at once. Functionally, it walks the data
// structure's bytes in simulated memory and produces the query result
// (verified against the dstruct reference implementations). As a side
// effect it emits the dynamic micro-op trace that walk costs on a real
// core: line-granular loads with true addresses and dependences (pointer
// chasing serializes, independent probes overlap), the ALU work of
// hashing and memcmp, and the data-dependent branches that make these
// loops frontend-hostile (Sec. II-A). The traces are then fed to
// cpu.Core for timing.
//
// Branch modelling: loop-back branches predict well; the final
// iteration's exit branch and the key-match branch mispredict, as a
// TAGE-like predictor would on data-dependent exits. This yields roughly
// one to two mispredictions per query, matching the paper's
// characterization of query loops as frontend-bound for linked
// structures.
//
// Two entry points exist per structure: free functions (QueryLinkedList
// et al.) that return a trace owning its storage, and methods on Querier
// — a reusable arena that amortizes the builder, the key scratch buffer,
// and the constant per-structure trace prefix across millions of queries
// on the workload runner's hot path.
package baseline

import (
	"bytes"
	"fmt"

	"qei/internal/dstruct"
	"qei/internal/isa"
	"qei/internal/mem"
)

// Result is the outcome of one software query: the functional answer and
// the dynamic trace it cost.
type Result struct {
	Value uint64
	Found bool
	Trace isa.Trace
}

// callOverheadOps is the per-query scalar overhead of the surrounding
// code (call, argument marshaling, result handling) emitted around every
// query routine. The paper notes each query easily reaches hundreds of
// dynamic instructions; this is the non-loop share.
const callOverheadOps = 12

func emitCallOverhead(b *isa.Builder) {
	b.Nop(callOverheadOps / 2)
	b.ALUN(callOverheadOps/2, 0)
}

// emitKeyCompare emits the memcmp of keyLen bytes against the probe key:
// the stored key's cachelines are loaded (dependent on nodeReady) and
// reduced; the result register carries the comparison outcome.
func emitKeyCompare(b *isa.Builder, keyAddr mem.VAddr, keyLen uint16, nodeReady isa.Reg) isa.Reg {
	r := b.LoadRange(keyAddr, uint64(keyLen), nodeReady)
	// word-wise compare ALU ops
	return b.ALUN((int(keyLen)+7)/8, r)
}

// emitHash emits the software hash computation over the (register-
// resident) probe key.
func emitHash(b *isa.Builder, keyLen int) isa.Reg {
	alu, mul := dstruct.HashOps(keyLen)
	r := b.ALUN(alu, 0)
	for i := 0; i < mul; i++ {
		r = b.Mul(r, 0)
	}
	return r
}

// prefixSkel caches the constant per-query trace prefix for one
// structure: call overhead, the descriptor-line load, and (for hashed
// tables) the key hash and bucket-index arithmetic. These ops depend
// only on the header address and the header's key length — never on
// structure contents, which updates mutate — so replaying the skeleton
// is byte-identical to re-emitting it.
type prefixSkel struct {
	skel isa.Skeleton
	cur  isa.Reg // descriptor-load destination register
	idx  isa.Reg // bucket-index register (hashed prefixes only)
}

// Querier is a reusable arena for the query routines: one trace builder,
// one stored-key scratch buffer, and a per-structure prefix cache. A
// zero Querier is usable (the free functions run on one) but does not
// memoize prefixes; NewQuerier enables memoization for long-lived use.
//
// Traces returned by Querier methods share the arena's storage and are
// valid only until the next query on the same Querier — callers must
// copy (isa.Builder.Append does) or consume them first. A Querier is not
// safe for concurrent use; the workload runner keeps one per plan.
type Querier struct {
	b     isa.Builder
	key   []byte
	skels map[mem.VAddr]prefixSkel
}

// NewQuerier returns a Querier with prefix memoization enabled.
func NewQuerier() *Querier {
	return &Querier{skels: make(map[mem.VAddr]prefixSkel)}
}

// scratch returns the arena's n-byte stored-key buffer, growing it if
// needed. Contents are overwritten by the next scratch call.
func (q *Querier) scratch(n int) []byte {
	if cap(q.key) < n {
		q.key = make([]byte, n)
	}
	q.key = q.key[:n]
	return q.key
}

// emitPrefix emits (or replays) the constant query prologue for the
// structure at headerAddr into the arena's freshly Reset builder:
// call overhead plus the descriptor-line load, and for hashed tables
// also the key hash and bucket-index ALU. It returns the descriptor
// register and, for hashed prefixes, the index register.
func (q *Querier) emitPrefix(headerAddr mem.VAddr, keyLen int, hashed bool) (cur, idx isa.Reg) {
	if q.skels != nil {
		if s, ok := q.skels[headerAddr]; ok {
			q.b.AppendSkeleton(s.skel)
			return s.cur, s.idx
		}
	}
	b := &q.b
	emitCallOverhead(b)
	cur = b.LoadLine(headerAddr, 0)
	if hashed {
		hreg := emitHash(b, keyLen)
		idx = b.ALU(hreg, cur)
	}
	if q.skels != nil {
		// The prefix is the entire builder contents here (every routine
		// emits it first after Reset), so a snapshot captures exactly it.
		q.skels[headerAddr] = prefixSkel{skel: q.b.Snapshot(), cur: cur, idx: idx}
	}
	return cur, idx
}

// QueryLinkedList walks the list per List 1 of the paper.
func (q *Querier) QueryLinkedList(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (Result, error) {
	h, err := dstruct.ReadHeader(as, headerAddr)
	if err != nil {
		return Result{}, err
	}
	if h.Type != dstruct.TypeLinkedList {
		return Result{}, fmt.Errorf("baseline: header at %#x is %s, want linkedlist", uint64(headerAddr), dstruct.TypeName(h.Type))
	}
	q.b.Reset()
	b := &q.b
	// Load the list descriptor (head pointer) — one line.
	cur, _ := q.emitPrefix(headerAddr, 0, false)

	node := h.Root
	for node != 0 {
		// Load the node line (next/value/key share it for short keys).
		nodeReady := b.LoadLine(node, cur)
		cmp := emitKeyCompare(b, dstruct.ListKeyAddr(node), h.KeyLen, nodeReady)

		k := q.scratch(int(h.KeyLen))
		if err := as.Read(dstruct.ListKeyAddr(node), k); err != nil {
			return Result{}, err
		}
		match := bytes.Equal(k, key)
		// Key-match branch: mispredicts when it finally matches.
		b.Branch(cmp, match)
		if match {
			v, err := dstruct.ListValue(as, node)
			if err != nil {
				return Result{}, err
			}
			b.ALU(nodeReady, 0) // move value to return register
			return Result{Value: v, Found: true, Trace: b.Ops()}, nil
		}
		next, err := dstruct.ListNext(as, node)
		if err != nil {
			return Result{}, err
		}
		// Loop branch on next != NULL: mispredicts at the end of the list.
		b.Branch(nodeReady, next == 0)
		cur = nodeReady // the next node address came from this line
		node = next
	}
	return Result{Trace: b.Ops()}, nil
}

// QueryHashTable hashes the key, loads the bucket head, then walks the
// chain (the "hash table of linked lists" combined structure).
func (q *Querier) QueryHashTable(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (Result, error) {
	h, err := dstruct.ReadHeader(as, headerAddr)
	if err != nil {
		return Result{}, err
	}
	if h.Type != dstruct.TypeHashTable {
		return Result{}, fmt.Errorf("baseline: header at %#x is %s, want hashtable", uint64(headerAddr), dstruct.TypeName(h.Type))
	}
	q.b.Reset()
	b := &q.b
	_, idx := q.emitPrefix(headerAddr, int(h.KeyLen), true)

	slot := dstruct.HashBucketSlot(h, key)
	head := b.Load(slot, 8, idx) // bucket head pointer load

	headU, err := as.ReadU64(slot)
	if err != nil {
		return Result{}, err
	}
	node := mem.VAddr(headU)
	cur := head
	for node != 0 {
		nodeReady := b.LoadLine(node, cur)
		cmp := emitKeyCompare(b, dstruct.ListKeyAddr(node), h.KeyLen, nodeReady)
		k := q.scratch(int(h.KeyLen))
		if err := as.Read(dstruct.ListKeyAddr(node), k); err != nil {
			return Result{}, err
		}
		match := bytes.Equal(k, key)
		b.Branch(cmp, match)
		if match {
			v, err := dstruct.ListValue(as, node)
			if err != nil {
				return Result{}, err
			}
			b.ALU(nodeReady, 0)
			return Result{Value: v, Found: true, Trace: b.Ops()}, nil
		}
		next, err := dstruct.ListNext(as, node)
		if err != nil {
			return Result{}, err
		}
		b.Branch(nodeReady, next == 0)
		cur = nodeReady
		node = next
	}
	return Result{Trace: b.Ops()}, nil
}

// QueryCuckoo probes the two candidate buckets of the DPDK-style table.
// The two bucket loads are independent (software issues both probes), so
// the core can overlap them — the baseline is already MLP-friendly here,
// which is why hash tables show the smallest per-query accelerator win
// (Sec. VII-A).
func (q *Querier) QueryCuckoo(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (Result, error) {
	h, err := dstruct.ReadHeader(as, headerAddr)
	if err != nil {
		return Result{}, err
	}
	if h.Type != dstruct.TypeCuckoo {
		return Result{}, fmt.Errorf("baseline: header at %#x is %s, want cuckoo", uint64(headerAddr), dstruct.TypeName(h.Type))
	}
	q.b.Reset()
	b := &q.b
	_, idx := q.emitPrefix(headerAddr, int(h.KeyLen), true)

	h1, h2 := dstruct.CuckooHashes(key, h.Aux2, h.Aux)
	occOff, valOff, keyOff := dstruct.CuckooEntryFieldOffsets()
	_ = valOff

	for bi, bucket := range [2]uint64{h1, h2} {
		// Load the bucket's lines (independent of the other bucket).
		bucketBase := dstruct.EntryAddr(h, bucket, 0)
		bucketSize := dstruct.CuckooBucketSize(int(h.KeyLen), int(h.Subtype))
		ready := b.LoadRange(bucketBase, bucketSize, idx)
		for s := 0; s < int(h.Subtype); s++ {
			ea := dstruct.EntryAddr(h, bucket, s)
			occ, err := as.ReadU64(ea + mem.VAddr(occOff))
			if err != nil {
				return Result{}, err
			}
			// Per-entry signature path, as in DPDK's rte_hash: extract
			// the stored signature, mask, compare, branch (well
			// predicted in a hot table).
			sig := b.ALUN(3, ready)
			b.Branch(sig, false)
			if occ&1 == 0 {
				continue
			}
			stored := q.scratch(int(h.KeyLen))
			if err := as.Read(ea+mem.VAddr(keyOff), stored); err != nil {
				return Result{}, err
			}
			match := bytes.Equal(stored, key)
			if match {
				// Signature hit: fetch the full key through the
				// key-store indirection (rte_hash keeps keys in a
				// separate array) and memcmp it.
				kready := b.Load(ea+mem.VAddr(keyOff), 8, sig)
				cmp := emitKeyCompare(b, ea+mem.VAddr(keyOff), h.KeyLen, kready)
				b.Branch(cmp, true) // final match mispredicts
				v, err := as.ReadU64(ea + mem.VAddr(valOff))
				if err != nil {
					return Result{}, err
				}
				b.ALU(kready, 0)
				return Result{Value: v, Found: true, Trace: b.Ops()}, nil
			}
		}
		// Bucket-exhausted branch: mispredicts when falling to bucket 2.
		b.Branch(ready, bi == 0)
	}
	return Result{Trace: b.Ops()}, nil
}

// QuerySkipList performs a RocksDB-style seek: descend levels, move right
// while the next key is smaller. Every step is a dependent load.
func (q *Querier) QuerySkipList(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (Result, error) {
	h, err := dstruct.ReadHeader(as, headerAddr)
	if err != nil {
		return Result{}, err
	}
	if h.Type != dstruct.TypeSkipList {
		return Result{}, fmt.Errorf("baseline: header at %#x is %s, want skiplist", uint64(headerAddr), dstruct.TypeName(h.Type))
	}
	q.b.Reset()
	b := &q.b
	cur, _ := q.emitPrefix(headerAddr, 0, false)

	node := h.Root
	for l := int(h.Aux) - 1; l >= 0; l-- {
		for {
			// Load the forward pointer at this level (dependent).
			slot := dstruct.SkipNextSlot(node, l)
			ptrReady := b.Load(slot, 8, cur)
			nextU, err := as.ReadU64(slot)
			if err != nil {
				return Result{}, err
			}
			next := mem.VAddr(nextU)
			b.Branch(ptrReady, next == 0) // NULL check: mispredict at level end
			if next == 0 {
				break
			}
			// Load the next node's header+key and compare. A real
			// memtable charges substantial per-node scalar work here:
			// RocksDB dispatches a virtual comparator and decodes the
			// InternalKey (user key + sequence + type) on every visited
			// node.
			nh, err := dstruct.SkipHeight(as, next)
			if err != nil {
				return Result{}, err
			}
			nodeReady := b.LoadLine(next, ptrReady)
			decode := b.ALUN(18, nodeReady) // InternalKey decode + comparator dispatch
			b.Branch(decode, false)
			cmp := emitKeyCompare(b, dstruct.SkipKeyAddr(next, nh), h.KeyLen, decode)
			nk, err := as.ReadU64(dstruct.SkipKeyAddr(next, nh))
			_ = nk
			stored := q.scratch(int(h.KeyLen))
			if err := as.Read(dstruct.SkipKeyAddr(next, nh), stored); err != nil {
				return Result{}, err
			}
			c := bytes.Compare(stored, key)
			// Continue-right branch: data-dependent; mispredicts when the
			// direction changes (end of run at this level).
			b.Branch(cmp, c >= 0)
			if c < 0 {
				node = next
				cur = nodeReady
				continue
			}
			if c == 0 && l == 0 {
				v, err := dstruct.SkipValue(as, next)
				if err != nil {
					return Result{}, err
				}
				b.ALU(nodeReady, 0)
				return Result{Value: v, Found: true, Trace: b.Ops()}, nil
			}
			break
		}
	}
	return Result{Trace: b.Ops()}, nil
}

// QueryBST walks the object tree: one node visit = node line + key lines
// (the payload pushes keys onto a second line), compare, branch left or
// right — a textbook pointer chase.
func (q *Querier) QueryBST(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (Result, error) {
	h, err := dstruct.ReadHeader(as, headerAddr)
	if err != nil {
		return Result{}, err
	}
	if h.Type != dstruct.TypeBST {
		return Result{}, fmt.Errorf("baseline: header at %#x is %s, want bst", uint64(headerAddr), dstruct.TypeName(h.Type))
	}
	payload := int(h.Aux)
	q.b.Reset()
	b := &q.b
	cur, _ := q.emitPrefix(headerAddr, 0, false)

	node := h.Root
	for node != 0 {
		nodeReady := b.LoadLine(node, cur) // header line: children + value
		cmp := emitKeyCompare(b, dstruct.BSTKeyAddr(node, payload), h.KeyLen, nodeReady)

		stored := q.scratch(int(h.KeyLen))
		if err := as.Read(dstruct.BSTKeyAddr(node, payload), stored); err != nil {
			return Result{}, err
		}
		c := bytes.Compare(key, stored)
		b.Branch(cmp, c == 0) // match branch mispredicts on hit
		if c == 0 {
			v, err := dstruct.BSTValue(as, node)
			if err != nil {
				return Result{}, err
			}
			b.ALU(nodeReady, 0)
			return Result{Value: v, Found: true, Trace: b.Ops()}, nil
		}
		// Direction branch: essentially random for lookups → mispredicts
		// about half the time. Model: mispredict when the key byte parity
		// flips direction unpredictably.
		b.Branch(cmp, mispredictDirection(stored, key))
		childU, err := as.ReadU64(dstruct.BSTChildSlot(node, c > 0))
		if err != nil {
			return Result{}, err
		}
		node = mem.VAddr(childU)
		cur = nodeReady
	}
	return Result{Trace: b.Ops()}, nil
}

// QueryBTree descends the B+-tree in software: per level, load the node
// and binary-search its separators — the index-walker loop of in-memory
// databases.
func (q *Querier) QueryBTree(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (Result, error) {
	h, err := dstruct.ReadHeader(as, headerAddr)
	if err != nil {
		return Result{}, err
	}
	if h.Type != dstruct.TypeBTree {
		return Result{}, fmt.Errorf("baseline: header at %#x is %s, want btree", uint64(headerAddr), dstruct.TypeName(h.Type))
	}
	q.b.Reset()
	b := &q.b
	cur, _ := q.emitPrefix(headerAddr, 0, false)

	node := h.Root
	for node != 0 {
		ptr, leaf, found, probes, err := dstruct.BTreeSearchNode(as, node, int(h.KeyLen), key)
		if err != nil {
			return Result{}, err
		}
		// Load the node header line, then one dependent line per binary-
		// search probe (separators scatter across the node's lines), with
		// a compare + branch per probe.
		nodeReady := b.LoadLine(node, cur)
		probeReady := nodeReady
		for i := 0; i < probes; i++ {
			r := b.Load(dstruct.BTreeEntryAddr(node, int(h.KeyLen), i).Line(), 8, nodeReady)
			probeReady = b.ALU(probeReady, r)
			b.ALUN((int(h.KeyLen)+7)/8, probeReady)
			b.Branch(probeReady, i == probes-1 && (key[0]&7) == 0) // final probe occasionally mispredicts
		}
		if leaf {
			b.Branch(probeReady, true) // leaf hit/miss resolution
			if found {
				b.ALU(probeReady, 0)
				return Result{Value: ptr, Found: true, Trace: b.Ops()}, nil
			}
			return Result{Trace: b.Ops()}, nil
		}
		cur = probeReady
		node = mem.VAddr(ptr)
	}
	return Result{Trace: b.Ops()}, nil
}

// ScanTrie runs the Aho-Corasick automaton over input, emitting the
// per-byte goto/fail walk (Snort's literal matcher, Sec. VI-B).
func (q *Querier) ScanTrie(as *mem.AddressSpace, headerAddr mem.VAddr, input []byte) (ScanResult, error) {
	h, err := dstruct.ReadHeader(as, headerAddr)
	if err != nil {
		return ScanResult{}, err
	}
	if h.Type != dstruct.TypeTrie {
		return ScanResult{}, fmt.Errorf("baseline: header at %#x is %s, want trie", uint64(headerAddr), dstruct.TypeName(h.Type))
	}
	q.b.Reset()
	b := &q.b
	cur, _ := q.emitPrefix(headerAddr, 0, false)

	var res ScanResult
	state := h.Root
	for _, ib := range input {
		// Load the input byte (sequential, prefetch-friendly: charged as
		// an independent load).
		inReady := b.Load(mem.VAddr(uint64(headerAddr)), 1, 0)
		for {
			res.Steps++
			// Load the state node and search its index table (one load
			// per probed slot: a single slot for dense nodes, a binary
			// search for sparse ones).
			stReady := b.LoadLine(state, cur)
			child, probes, slots, err := dstruct.TrieFindEdgeProbes(as, state, ib)
			if err != nil {
				return ScanResult{}, err
			}
			probeReady := stReady
			for _, s := range slots {
				r := b.Load(s.Line(), 8, stReady)
				probeReady = b.ALU(probeReady, r)
			}
			cmp := b.ALU(probeReady, inReady)
			// Inner search exit: a trained predictor handles the common
			// shapes; mispredict on ~1/8 of irregular searches.
			b.Branch(cmp, probes > 1 && (int(ib)+probes)%8 == 0)
			if child != 0 {
				state = child
				cur = stReady
				break
			}
			if state == h.Root {
				break
			}
			fl, err := dstruct.TrieFail(as, state)
			if err != nil {
				return ScanResult{}, err
			}
			// Fail-link transitions are frequent on benign traffic; the
			// predictor learns the pattern and misses ~1/4 of the time.
			b.Branch(cmp, int(ib)%4 == 0)
			state = fl
			cur = stReady
		}
		out, err := dstruct.TrieOutput(as, state)
		if err != nil {
			return ScanResult{}, err
		}
		b.Branch(cur, out != 0) // output check
		if out != 0 {
			res.Matches = append(res.Matches, out)
		}
	}
	res.Trace = b.Ops()
	return res, nil
}

// mispredictDirection deterministically marks ~50% of BST direction
// branches as mispredicted, keyed on the comparands so runs reproduce.
func mispredictDirection(a, b []byte) bool {
	var x byte
	for i := range a {
		x ^= a[i]
	}
	for i := range b {
		x ^= b[i]
	}
	return x&1 == 1
}

// ScanResult is the outcome of a trie scan over an input buffer.
type ScanResult struct {
	Matches []uint64
	Trace   isa.Trace
	// Steps is the number of automaton transitions taken (one query per
	// input byte, plus fail-link hops).
	Steps int
}

// QueryLinkedList walks the list per List 1 of the paper. The returned
// trace owns its storage (unlike Querier traces).
func QueryLinkedList(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (Result, error) {
	var q Querier
	r, err := q.QueryLinkedList(as, headerAddr, key)
	if err != nil {
		return Result{}, err
	}
	r.Trace = q.b.Take()
	return r, nil
}

// QueryHashTable hashes the key, loads the bucket head, then walks the
// chain (the "hash table of linked lists" combined structure).
func QueryHashTable(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (Result, error) {
	var q Querier
	r, err := q.QueryHashTable(as, headerAddr, key)
	if err != nil {
		return Result{}, err
	}
	r.Trace = q.b.Take()
	return r, nil
}

// QueryCuckoo probes the two candidate buckets of the DPDK-style table.
func QueryCuckoo(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (Result, error) {
	var q Querier
	r, err := q.QueryCuckoo(as, headerAddr, key)
	if err != nil {
		return Result{}, err
	}
	r.Trace = q.b.Take()
	return r, nil
}

// QuerySkipList performs a RocksDB-style seek.
func QuerySkipList(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (Result, error) {
	var q Querier
	r, err := q.QuerySkipList(as, headerAddr, key)
	if err != nil {
		return Result{}, err
	}
	r.Trace = q.b.Take()
	return r, nil
}

// QueryBST walks the object tree.
func QueryBST(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (Result, error) {
	var q Querier
	r, err := q.QueryBST(as, headerAddr, key)
	if err != nil {
		return Result{}, err
	}
	r.Trace = q.b.Take()
	return r, nil
}

// QueryBTree descends the B+-tree in software.
func QueryBTree(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (Result, error) {
	var q Querier
	r, err := q.QueryBTree(as, headerAddr, key)
	if err != nil {
		return Result{}, err
	}
	r.Trace = q.b.Take()
	return r, nil
}

// ScanTrie runs the Aho-Corasick automaton over input.
func ScanTrie(as *mem.AddressSpace, headerAddr mem.VAddr, input []byte) (ScanResult, error) {
	var q Querier
	res, err := q.ScanTrie(as, headerAddr, input)
	if err != nil {
		return ScanResult{}, err
	}
	res.Trace = q.b.Take()
	return res, nil
}
