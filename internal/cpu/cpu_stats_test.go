package cpu

import (
	"testing"

	"qei/internal/isa"
)

func TestStatsSub(t *testing.T) {
	c := New(DefaultConfig(), &fixedMem{lat: 1}, nil)
	b := isa.NewBuilder()
	for i := 0; i < 20; i++ {
		b.Load(0x1000, 8, 0)
		b.ALU(0, 0)
	}
	c.Run(b.Take())
	snap := c.Stats()

	b2 := isa.NewBuilder()
	for i := 0; i < 5; i++ {
		b2.Load(0x2000, 8, 0)
		b2.Branch(0, true)
	}
	c.Run(b2.Take())
	d := c.Stats().Sub(snap)
	if d.Loads != 5 {
		t.Fatalf("windowed loads = %d, want 5", d.Loads)
	}
	if d.Mispredicts != 5 {
		t.Fatalf("windowed mispredicts = %d, want 5", d.Mispredicts)
	}
	if d.Instructions != 10 {
		t.Fatalf("windowed instructions = %d, want 10", d.Instructions)
	}
	if d.Cycles == 0 {
		t.Fatal("windowed cycles empty")
	}
}

func TestIPCZeroCycles(t *testing.T) {
	var s Stats
	if s.IPC() != 0 {
		t.Fatal("IPC of empty stats should be 0")
	}
}

func TestRetireWidthBoundsThroughput(t *testing.T) {
	// With RetireWidth 1, N single-cycle ops need at least N cycles.
	cfg := DefaultConfig()
	cfg.RetireWidth = 1
	c := New(cfg, &fixedMem{lat: 1}, nil)
	b := isa.NewBuilder()
	for i := 0; i < 100; i++ {
		b.ALU(0, 0)
	}
	end := c.Run(b.Take())
	if end < 99 {
		t.Fatalf("100 ops retired in %d cycles with retire width 1", end)
	}
}
