package cpu

import (
	"errors"
	"testing"

	"qei/internal/isa"
	"qei/internal/mem"
)

// fixedMem returns the same latency for every access.
type fixedMem struct {
	lat      uint64
	accesses int
	failAt   int // fault on the Nth access (1-based); 0 = never
}

func (f *fixedMem) Access(a mem.VAddr, write bool, issue uint64) (uint64, error) {
	f.accesses++
	if f.failAt != 0 && f.accesses == f.failAt {
		return 0, errors.New("injected fault")
	}
	return f.lat, nil
}

// scriptedQuery returns preprogrammed completion cycles.
type scriptedQuery struct {
	blockingLat uint64
	acceptLat   uint64
	issued      []uint64
}

func (s *scriptedQuery) IssueBlocking(q *isa.QueryDesc, issue uint64) (uint64, error) {
	s.issued = append(s.issued, issue)
	return issue + s.blockingLat, nil
}

func (s *scriptedQuery) IssueNonBlocking(q *isa.QueryDesc, issue uint64) (uint64, error) {
	s.issued = append(s.issued, issue)
	return issue + s.acceptLat, nil
}

func TestIndependentLoadsOverlap(t *testing.T) {
	m := &fixedMem{lat: 100}
	c := New(DefaultConfig(), m, nil)
	b := isa.NewBuilder()
	// Eight independent loads: MLP should make total ≈ one latency, not 8x.
	for i := 0; i < 8; i++ {
		b.Load(mem.VAddr(0x1000*(i+1)), 8, 0)
	}
	end := c.Run(b.Take())
	if end > 100+20 {
		t.Fatalf("independent loads took %d cycles; they should overlap (~100)", end)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	m := &fixedMem{lat: 100}
	c := New(DefaultConfig(), m, nil)
	b := isa.NewBuilder()
	// Pointer chase: each load's address depends on the previous value.
	base := isa.Reg(0)
	for i := 0; i < 8; i++ {
		base = b.Load(mem.VAddr(0x1000*(i+1)), 8, base)
	}
	end := c.Run(b.Take())
	if end < 8*100 {
		t.Fatalf("dependent loads took %d cycles; must serialize (>=800)", end)
	}
}

func TestFrontendWidthBoundsALU(t *testing.T) {
	c := New(DefaultConfig(), &fixedMem{lat: 1}, nil)
	b := isa.NewBuilder()
	// 4000 independent single-cycle ops on a 4-wide machine: ~1000 cycles.
	for i := 0; i < 4000; i++ {
		b.ALU(0, 0)
	}
	end := c.Run(b.Take())
	if end < 990 || end > 1100 {
		t.Fatalf("4000 ALU ops on 4-wide core took %d cycles, want ~1000", end)
	}
	if ipc := c.Stats().IPC(); ipc < 3.5 || ipc > 4.1 {
		t.Fatalf("IPC = %.2f, want ~4", ipc)
	}
}

func TestMispredictionStallsFrontend(t *testing.T) {
	run := func(mispredict bool) uint64 {
		c := New(DefaultConfig(), &fixedMem{lat: 1}, nil)
		b := isa.NewBuilder()
		for i := 0; i < 100; i++ {
			r := b.ALU(0, 0)
			b.Branch(r, mispredict)
		}
		return c.Run(b.Take())
	}
	good := run(false)
	bad := run(true)
	if bad <= good+100*DefaultConfig().MispredictPenalty/2 {
		t.Fatalf("mispredicted run (%d) should be far slower than predicted (%d)", bad, good)
	}
}

func TestROBStallOnLongLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBEntries = 8
	m := &fixedMem{lat: 500}
	c := New(cfg, m, nil)
	b := isa.NewBuilder()
	b.Load(0x1000, 8, 0) // long load at ROB head
	for i := 0; i < 100; i++ {
		b.ALU(0, 0) // independent work
	}
	end := c.Run(b.Take())
	// With only 8 ROB entries, dispatch stalls behind the load: the ALU
	// stream cannot finish until the load retires at ~500.
	if end < 500 {
		t.Fatalf("run finished at %d; tiny ROB should stall behind the 500-cycle load", end)
	}
	if c.Stats().ROBStallCycles == 0 {
		t.Fatal("expected ROB stall cycles to be recorded")
	}
}

func TestBigROBHidesLongLoad(t *testing.T) {
	cfg := DefaultConfig() // 224 entries
	m := &fixedMem{lat: 300}
	c := New(cfg, m, nil)
	b := isa.NewBuilder()
	b.Load(0x1000, 8, 0)
	for i := 0; i < 100; i++ {
		b.ALU(0, 0)
	}
	c.Run(b.Take())
	if c.Stats().ROBStallCycles != 0 {
		t.Fatalf("104 ops fit in a 224-entry ROB; got %d stall cycles", c.Stats().ROBStallCycles)
	}
}

func TestLoadQueueLimitsMLP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LoadQueueEntries = 4
	m := &fixedMem{lat: 100}
	c := New(cfg, m, nil)
	b := isa.NewBuilder()
	for i := 0; i < 16; i++ {
		b.Load(mem.VAddr(0x1000*(i+1)), 8, 0)
	}
	end := c.Run(b.Take())
	// 16 loads, 4 at a time, 100 cycles each → at least 4 serial batches.
	if end < 390 {
		t.Fatalf("16 loads with LQ=4 finished at %d; want >= ~400", end)
	}
	if c.Stats().LQStallCycles == 0 {
		t.Fatal("expected LQ stalls")
	}
}

func TestQueryBlockingActsLikeLoad(t *testing.T) {
	q := &scriptedQuery{blockingLat: 200}
	c := New(DefaultConfig(), &fixedMem{lat: 1}, q)
	b := isa.NewBuilder()
	r := b.QueryB(isa.QueryDesc{HeaderAddr: 0x100, KeyAddr: 0x200})
	b.ALU(r, 0) // dependent on the query result
	end := c.Run(b.Take())
	if end < 200 {
		t.Fatalf("dependent op completed at %d, before the query returned", end)
	}
	if len(q.issued) != 1 {
		t.Fatalf("query port saw %d issues", len(q.issued))
	}
}

func TestQueryNonBlockingRetiresEarly(t *testing.T) {
	q := &scriptedQuery{blockingLat: 10_000, acceptLat: 3}
	c := New(DefaultConfig(), &fixedMem{lat: 1}, q)
	b := isa.NewBuilder()
	b.QueryNB(isa.QueryDesc{HeaderAddr: 0x100, KeyAddr: 0x200, ResultAddr: 0x300})
	for i := 0; i < 10; i++ {
		b.ALU(0, 0)
	}
	end := c.Run(b.Take())
	if end > 50 {
		t.Fatalf("non-blocking query stalled the core until %d", end)
	}
}

func TestQueriesOverlapInQSTStyle(t *testing.T) {
	// Several blocking queries in flight at once: the core can issue them
	// back-to-back because each occupies only an LQ slot while pending.
	q := &scriptedQuery{blockingLat: 500}
	c := New(DefaultConfig(), &fixedMem{lat: 1}, q)
	b := isa.NewBuilder()
	for i := 0; i < 8; i++ {
		b.QueryB(isa.QueryDesc{HeaderAddr: 0x100, KeyAddr: mem.VAddr(0x200 + i*64)})
	}
	end := c.Run(b.Take())
	if end > 600 {
		t.Fatalf("8 independent blocking queries took %d; should overlap (~500)", end)
	}
}

func TestFaultStopsCore(t *testing.T) {
	m := &fixedMem{lat: 1, failAt: 3}
	c := New(DefaultConfig(), m, nil)
	b := isa.NewBuilder()
	for i := 0; i < 10; i++ {
		b.Load(mem.VAddr(0x1000*(i+1)), 8, 0)
	}
	c.Run(b.Take())
	if c.Err() == nil {
		t.Fatal("expected core to capture the injected fault")
	}
	if c.Stats().Instructions >= 10 {
		t.Fatal("core kept executing after the fault")
	}
}

func TestStatsCounts(t *testing.T) {
	c := New(DefaultConfig(), &fixedMem{lat: 1}, &scriptedQuery{})
	b := isa.NewBuilder()
	r := b.Load(0x1000, 8, 0)
	b.Store(0x2000, 8, r)
	b.Branch(r, true)
	b.QueryB(isa.QueryDesc{})
	b.QueryNB(isa.QueryDesc{})
	b.Nop(3)
	c.Run(b.Take())
	s := c.Stats()
	if s.Loads != 1 || s.Stores != 1 || s.Branches != 1 || s.Mispredicts != 1 || s.Queries != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Instructions != 8 {
		t.Fatalf("instructions = %d, want 8", s.Instructions)
	}
}
