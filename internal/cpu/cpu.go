// Package cpu implements the trace-driven out-of-order core timing model.
//
// The model is interval-style, in the spirit of the Sniper simulator the
// paper evaluates with [11]: rather than simulating every pipeline stage,
// it computes, for each dynamic micro-op, the cycle at which it can issue
// (frontend slot, ROB/LQ/SQ availability, register dependences) and the
// cycle at which it completes (execution latency, memory latency from the
// cache hierarchy, accelerator latency for QUERY ops). This captures the
// first-order effects the paper's analysis rests on:
//
//   - memory-level parallelism: independent loads overlap;
//   - pointer chasing: dependent loads serialize at full memory latency;
//   - ROB pressure: a blocked load at the head stalls dispatch once the
//     reorder window fills (the QUERY_B saturation effect of Sec. VII-A);
//   - frontend pressure: issue width and branch mispredictions bound
//     throughput of instruction-heavy query loops (Fig. 11's motivation).
package cpu

import (
	"qei/internal/isa"
	"qei/internal/mem"
	"qei/internal/trace"
)

// Config sets the core's microarchitectural parameters (Tab. II).
type Config struct {
	ROBEntries        int
	LoadQueueEntries  int
	StoreQueueEntries int
	IssueWidth        int // micro-ops fetched/renamed per cycle
	RetireWidth       int
	MispredictPenalty uint64
	ALULatency        uint64
	MulLatency        uint64
	QueryIssueCost    uint64 // cycles to deliver a QUERY to the accelerator port
}

// DefaultConfig matches Tab. II: 224 ROB, 72 LQ, 56 SQ, 4-wide, Skylake-ish
// 16-cycle misprediction penalty.
func DefaultConfig() Config {
	return Config{
		ROBEntries:        224,
		LoadQueueEntries:  72,
		StoreQueueEntries: 56,
		IssueWidth:        4,
		RetireWidth:       4,
		MispredictPenalty: 16,
		ALULatency:        1,
		MulLatency:        3,
		QueryIssueCost:    1,
	}
}

// MemPort is the core's window onto the memory system. Implementations
// translate the virtual address and walk the cache hierarchy, returning
// the total access latency.
type MemPort interface {
	// Access performs a data access at the given issue cycle and returns
	// its latency in cycles. Faults are returned as errors (the core
	// model treats them as fatal for the trace).
	Access(a mem.VAddr, write bool, issue uint64) (latency uint64, err error)
}

// QueryPort is the accelerator interface seen by the core's Load-Store
// Unit (Sec. IV-C: blocking queries behave like loads, non-blocking like
// stores).
type QueryPort interface {
	// IssueBlocking hands the query to the accelerator at cycle issue and
	// returns the cycle at which the result register is written back.
	IssueBlocking(q *isa.QueryDesc, issue uint64) (complete uint64, err error)
	// IssueNonBlocking hands the query to the accelerator and returns the
	// cycle at which the accelerator accepted it (the store completes).
	IssueNonBlocking(q *isa.QueryDesc, issue uint64) (accepted uint64, err error)
}

// Stats accumulates execution statistics.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Mispredicts  uint64
	Queries      uint64
	// ROBStallCycles counts cycles dispatch waited on a full ROB.
	ROBStallCycles uint64
	// LQStallCycles counts cycles a load waited for a load-queue slot.
	LQStallCycles uint64
	// FrontendCycles counts cycles lost to misprediction redirects.
	FrontendCycles uint64
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Sub returns the difference s - prev, for measuring a window between
// two snapshots (e.g. excluding a warmup pass).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Instructions:   s.Instructions - prev.Instructions,
		Cycles:         s.Cycles - prev.Cycles,
		Loads:          s.Loads - prev.Loads,
		Stores:         s.Stores - prev.Stores,
		Branches:       s.Branches - prev.Branches,
		Mispredicts:    s.Mispredicts - prev.Mispredicts,
		Queries:        s.Queries - prev.Queries,
		ROBStallCycles: s.ROBStallCycles - prev.ROBStallCycles,
		LQStallCycles:  s.LQStallCycles - prev.LQStallCycles,
		FrontendCycles: s.FrontendCycles - prev.FrontendCycles,
	}
}

// Core is the incremental OoO timing model. Feed ops in program order;
// state (register readiness, ROB occupancy, frontend position) persists
// across calls so independent work in consecutive requests overlaps, as
// it would in a real pipelined loop.
type Core struct {
	cfg   Config
	mem   MemPort
	query QueryPort

	regReady [isa.NumRegs]uint64

	// retire ring: retireCycle of the last ROBEntries instructions.
	retireRing []uint64
	// loadRing: retire cycles of the last LoadQueueEntries loads (LQ slot
	// frees at retire).
	loadRing []uint64
	// storeRing: ditto for stores.
	storeRing []uint64

	seq        uint64 // dynamic instruction index
	loadSeq    uint64
	storeSeq   uint64
	fetchCycle uint64 // cycle the next fetch group is available
	fetchSlots int    // ops already issued in fetchCycle
	lastRetire uint64
	retireInCy int

	stats Stats
	err   error

	// tr/tracePid route pipeline events (query spans, mispredict
	// instants) onto the core's trace track; nil tr disables them.
	tr       *trace.Tracer
	tracePid int
}

// New builds a core over the given memory and accelerator ports. The
// query port may be nil when the trace contains no QUERY ops (pure
// software baseline).
func New(cfg Config, memPort MemPort, queryPort QueryPort) *Core {
	return &Core{
		cfg:        cfg,
		mem:        memPort,
		query:      queryPort,
		retireRing: make([]uint64, cfg.ROBEntries),
		loadRing:   make([]uint64, cfg.LoadQueueEntries),
		storeRing:  make([]uint64, cfg.StoreQueueEntries),
	}
}

// Err returns the first fault encountered, if any.
func (c *Core) Err() error { return c.err }

// Stats returns a copy of the accumulated statistics. Cycles reflects the
// retire time of the last instruction fed so far.
func (c *Core) Stats() Stats {
	s := c.stats
	s.Cycles = c.lastRetire
	return s
}

// Now returns the cycle at which the last fed instruction retired.
func (c *Core) Now() uint64 { return c.lastRetire }

// frontendSlot returns the cycle the next instruction can be dispatched
// by the frontend and consumes one issue slot.
func (c *Core) frontendSlot() uint64 {
	cy := c.fetchCycle
	c.fetchSlots++
	if c.fetchSlots >= c.cfg.IssueWidth {
		c.fetchCycle++
		c.fetchSlots = 0
	}
	return cy
}

// redirectFrontend models a pipeline redirect (branch misprediction): no
// instruction fetches until cycle target.
func (c *Core) redirectFrontend(target uint64) {
	if target > c.fetchCycle {
		c.stats.FrontendCycles += target - c.fetchCycle
		c.fetchCycle = target
		c.fetchSlots = 0
	}
}

func max2(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Feed executes one micro-op, returning its completion cycle.
func (c *Core) Feed(op *isa.Op) uint64 {
	if c.err != nil {
		return c.lastRetire
	}

	// Frontend: claim an issue slot.
	dispatch := c.frontendSlot()

	// ROB: the instruction ROBEntries older must have retired.
	robIdx := c.seq % uint64(len(c.retireRing))
	if free := c.retireRing[robIdx]; free > dispatch {
		c.stats.ROBStallCycles += free - dispatch
		dispatch = free
	}

	// Register dependences.
	start := dispatch
	if op.Src1 != 0 {
		start = max2(start, c.regReady[op.Src1])
	}
	if op.Src2 != 0 {
		start = max2(start, c.regReady[op.Src2])
	}

	var complete uint64
	switch op.Kind {
	case isa.Nop:
		complete = start

	case isa.ALU:
		complete = start + c.cfg.ALULatency

	case isa.MulALU:
		complete = start + c.cfg.MulLatency

	case isa.Load:
		c.stats.Loads++
		lqIdx := c.loadSeq % uint64(len(c.loadRing))
		if free := c.loadRing[lqIdx]; free > start {
			c.stats.LQStallCycles += free - start
			start = free
		}
		lat, err := c.mem.Access(op.Addr, false, start)
		if err != nil {
			c.err = err
			return c.lastRetire
		}
		complete = start + lat

	case isa.Store:
		c.stats.Stores++
		sqIdx := c.storeSeq % uint64(len(c.storeRing))
		if free := c.storeRing[sqIdx]; free > start {
			start = free
		}
		// Stores complete at address+data ready; the writeback drains
		// post-retirement. Charge the access now for cache-state effects.
		if _, err := c.mem.Access(op.Addr, true, start); err != nil {
			c.err = err
			return c.lastRetire
		}
		complete = start + 1

	case isa.Branch:
		c.stats.Branches++
		complete = start + c.cfg.ALULatency
		if op.Mispredict {
			c.stats.Mispredicts++
			c.tr.Point("cpu", "mispredict", complete, c.tracePid, trace.TidCorePipe, nil)
			c.redirectFrontend(complete + c.cfg.MispredictPenalty)
		}

	case isa.QueryB:
		c.stats.Queries++
		// Blocking query: like a load — occupies an LQ slot and the ROB
		// until the accelerator returns the result (Sec. IV-C).
		lqIdx := c.loadSeq % uint64(len(c.loadRing))
		if free := c.loadRing[lqIdx]; free > start {
			c.stats.LQStallCycles += free - start
			start = free
		}
		issue := start + c.cfg.QueryIssueCost
		done, err := c.query.IssueBlocking(op.Query, issue)
		if err != nil {
			c.err = err
			return c.lastRetire
		}
		c.tr.Span("cpu", "query_b", issue, done, c.tracePid, trace.TidCorePipe, nil)
		complete = done

	case isa.QueryNB:
		c.stats.Queries++
		sqIdx := c.storeSeq % uint64(len(c.storeRing))
		if free := c.storeRing[sqIdx]; free > start {
			start = free
		}
		issue := start + c.cfg.QueryIssueCost
		accepted, err := c.query.IssueNonBlocking(op.Query, issue)
		if err != nil {
			c.err = err
			return c.lastRetire
		}
		c.tr.Span("cpu", "query_nb", issue, accepted, c.tracePid, trace.TidCorePipe, nil)
		complete = accepted
	}

	if op.Dst != 0 {
		c.regReady[op.Dst] = complete
	}

	// In-order retire, RetireWidth per cycle.
	retire := max2(complete, c.lastRetire)
	if retire == c.lastRetire {
		c.retireInCy++
		if c.retireInCy >= c.cfg.RetireWidth {
			retire++
			c.retireInCy = 0
		}
	} else {
		c.retireInCy = 1
	}
	c.lastRetire = retire
	c.retireRing[robIdx] = retire
	if op.Kind == isa.Load || op.Kind == isa.QueryB {
		c.loadRing[c.loadSeq%uint64(len(c.loadRing))] = retire
		c.loadSeq++
	}
	if op.Kind == isa.Store || op.Kind == isa.QueryNB {
		c.storeRing[c.storeSeq%uint64(len(c.storeRing))] = retire
		c.storeSeq++
	}
	c.seq++
	c.stats.Instructions++
	return complete
}

// Run feeds an entire trace and returns the cycle the last op retired.
func (c *Core) Run(t isa.Trace) uint64 {
	for i := range t {
		c.Feed(&t[i])
		if c.err != nil {
			break
		}
	}
	return c.lastRetire
}
