package cpu

import (
	"qei/internal/metrics"
	"qei/internal/trace"
)

// RegisterMetrics publishes the core's pipeline counters under r,
// pull-based from the Stats the model already keeps. Callers scope r to
// the core's path (e.g. core0), yielding names like
// core0/rob/stall_cycles and core0/branch/mispredicts.
func (c *Core) RegisterMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.RegisterFunc("instructions", func() uint64 { return c.stats.Instructions })
	r.RegisterFunc("cycles", func() uint64 { return c.lastRetire })
	r.RegisterFunc("loads", func() uint64 { return c.stats.Loads })
	r.RegisterFunc("stores", func() uint64 { return c.stats.Stores })
	r.RegisterFunc("queries", func() uint64 { return c.stats.Queries })
	r.RegisterFunc("rob/stall_cycles", func() uint64 { return c.stats.ROBStallCycles })
	r.RegisterFunc("lq/stall_cycles", func() uint64 { return c.stats.LQStallCycles })
	r.RegisterFunc("frontend/redirect_cycles", func() uint64 { return c.stats.FrontendCycles })
	r.RegisterFunc("branch/executed", func() uint64 { return c.stats.Branches })
	r.RegisterFunc("branch/mispredicts", func() uint64 { return c.stats.Mispredicts })
}

// SetTracer attaches the unified tracer; pid is the core's trace track.
// With a tracer attached, Feed emits query spans (issue → writeback) and
// mispredict instants on the pipeline lane.
func (c *Core) SetTracer(tr *trace.Tracer, pid int) {
	c.tr = tr
	c.tracePid = pid
}
