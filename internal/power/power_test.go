package power

import (
	"math"
	"testing"
)

func within(got, want, tol float64) bool {
	return math.Abs(got-want)/want <= tol
}

func TestTableIIIMatchesPaper(t *testing.T) {
	rows := Default().TableIII()
	if len(rows) != 3 {
		t.Fatalf("TableIII has %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if !within(r.AreaMM2, r.PaperAreaMM2, 0.03) {
			t.Errorf("%s: area %.4f mm², paper %.4f (off by >3%%)", r.Config, r.AreaMM2, r.PaperAreaMM2)
		}
		if !within(r.StaticMW, r.PaperStaticMW, 0.03) {
			t.Errorf("%s: static %.4f mW, paper %.4f (off by >3%%)", r.Config, r.StaticMW, r.PaperStaticMW)
		}
	}
}

func TestTLBDominatesQEI10Area(t *testing.T) {
	m := Default()
	base, _ := m.QEIArea(10, 2, false)
	tlbA, _ := m.TLBArea()
	// Sec. VII-D: "the extra TLB incurs significant overhead" — the TLB
	// is bigger than the whole QEI-10 accelerator.
	if tlbA <= base {
		t.Fatalf("TLB area %.4f should exceed QEI-10 area %.4f", tlbA, base)
	}
}

func TestAreaScalesWithQST(t *testing.T) {
	m := Default()
	a10, p10 := m.QEIArea(10, 2, false)
	a240, p240 := m.QEIArea(240, 10, false)
	if a240 <= a10 || p240 <= p10 {
		t.Fatal("larger configuration must cost more")
	}
	// Total overhead remains negligible vs an 18 mm² core tile (Sec. VII-D).
	if a240 > 18*0.1 {
		t.Fatalf("QEI-240 area %.4f mm² exceeds 10%% of a core tile", a240)
	}
}

func TestDynamicEnergyMonotonic(t *testing.T) {
	m := Default()
	small := m.DynamicEnergyNJ(Activity{Instructions: 100, L1Accesses: 30})
	big := m.DynamicEnergyNJ(Activity{Instructions: 1000, L1Accesses: 300})
	if big <= small {
		t.Fatal("more activity must cost more energy")
	}
	if m.DynamicEnergyNJ(Activity{}) != 0 {
		t.Fatal("no activity should cost nothing")
	}
}

func TestDRAMDominatesPerAccess(t *testing.T) {
	m := Default()
	if !(m.DRAMAccessEnergy > m.LLCAccessEnergy &&
		m.LLCAccessEnergy > m.L2AccessEnergy &&
		m.L2AccessEnergy > m.L1AccessEnergy) {
		t.Fatal("per-access energy must grow down the hierarchy")
	}
}

func TestQEIQueryCheaperThanSoftwareQuery(t *testing.T) {
	m := Default()
	// Representative per-query activity: software spends ~300 µops and
	// ~40 L1 + 10 L2 + 6 LLC accesses; QEI spends ~40 transitions, the
	// same downstream accesses, no L1, no frontend.
	sw := m.DynamicEnergyNJ(Activity{
		Instructions: 300, Mispredicts: 2,
		L1Accesses: 40, L2Accesses: 10, LLCAccesses: 6, DRAMAccesses: 1,
	})
	hw := m.DynamicEnergyNJ(Activity{
		Transitions: 40, Compare8Bs: 8, Hash8Bs: 2, TLBLookups: 12,
		L2Accesses: 10, LLCAccesses: 6, DRAMAccesses: 1, NoCBytes: 200,
	})
	ratio := hw / sw
	// Fig. 12: accelerators cut >60% of per-query dynamic power.
	if ratio > 0.4 {
		t.Fatalf("QEI/software energy ratio = %.2f, want <= 0.4", ratio)
	}
}
