package power

import (
	"math"
	"testing"
)

func within(got, want, tol float64) bool {
	return math.Abs(got-want)/want <= tol
}

func TestTableIIIMatchesPaper(t *testing.T) {
	rows := Default().TableIII()
	if len(rows) != 3 {
		t.Fatalf("TableIII has %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if !within(r.AreaMM2, r.PaperAreaMM2, 0.03) {
			t.Errorf("%s: area %.4f mm², paper %.4f (off by >3%%)", r.Config, r.AreaMM2, r.PaperAreaMM2)
		}
		if !within(r.StaticMW, r.PaperStaticMW, 0.03) {
			t.Errorf("%s: static %.4f mW, paper %.4f (off by >3%%)", r.Config, r.StaticMW, r.PaperStaticMW)
		}
	}
}

func TestTLBDominatesQEI10Area(t *testing.T) {
	m := Default()
	base, _ := m.QEIArea(10, 2, false)
	tlbA, _ := m.TLBArea()
	// Sec. VII-D: "the extra TLB incurs significant overhead" — the TLB
	// is bigger than the whole QEI-10 accelerator.
	if tlbA <= base {
		t.Fatalf("TLB area %.4f should exceed QEI-10 area %.4f", tlbA, base)
	}
}

func TestAreaScalesWithQST(t *testing.T) {
	m := Default()
	a10, p10 := m.QEIArea(10, 2, false)
	a240, p240 := m.QEIArea(240, 10, false)
	if a240 <= a10 || p240 <= p10 {
		t.Fatal("larger configuration must cost more")
	}
	// Total overhead remains negligible vs an 18 mm² core tile (Sec. VII-D).
	if a240 > 18*0.1 {
		t.Fatalf("QEI-240 area %.4f mm² exceeds 10%% of a core tile", a240)
	}
}

func TestDynamicEnergyMonotonic(t *testing.T) {
	m := Default()
	small := m.DynamicEnergyNJ(Activity{Instructions: 100, L1Accesses: 30})
	big := m.DynamicEnergyNJ(Activity{Instructions: 1000, L1Accesses: 300})
	if big <= small {
		t.Fatal("more activity must cost more energy")
	}
	if m.DynamicEnergyNJ(Activity{}) != 0 {
		t.Fatal("no activity should cost nothing")
	}
}

func TestDRAMDominatesPerAccess(t *testing.T) {
	m := Default()
	if !(m.DRAMAccessEnergy > m.LLCAccessEnergy &&
		m.LLCAccessEnergy > m.L2AccessEnergy &&
		m.L2AccessEnergy > m.L1AccessEnergy) {
		t.Fatal("per-access energy must grow down the hierarchy")
	}
}

func TestQEIQueryCheaperThanSoftwareQuery(t *testing.T) {
	m := Default()
	// Representative per-query activity: software spends ~300 µops and
	// ~40 L1 + 10 L2 + 6 LLC accesses; QEI spends ~40 transitions, the
	// same downstream accesses, no L1, no frontend.
	sw := m.DynamicEnergyNJ(Activity{
		Instructions: 300, Mispredicts: 2,
		L1Accesses: 40, L2Accesses: 10, LLCAccesses: 6, DRAMAccesses: 1,
	})
	hw := m.DynamicEnergyNJ(Activity{
		Transitions: 40, Compare8Bs: 8, Hash8Bs: 2, TLBLookups: 12,
		L2Accesses: 10, LLCAccesses: 6, DRAMAccesses: 1, NoCBytes: 200,
	})
	ratio := hw / sw
	// Fig. 12: accelerators cut >60% of per-query dynamic power.
	if ratio > 0.4 {
		t.Fatalf("QEI/software energy ratio = %.2f, want <= 0.4", ratio)
	}
}

// TestQEIAreaDegenerateCounts pins the edge behaviour the sweep engine
// relies on: zero and negative QST/comparator counts cost exactly the
// fixed CEE/DPU logic, never negative silicon.
func TestQEIAreaDegenerateCounts(t *testing.T) {
	m := Default()
	zeroA, zeroP := m.QEIArea(0, 0, false)
	if zeroA != m.CEEDPUFixedArea || zeroP != m.CEEDPUFixedLeak {
		t.Errorf("QEIArea(0,0) = %.4f mm², %.4f mW; want the fixed block %.4f, %.4f",
			zeroA, zeroP, m.CEEDPUFixedArea, m.CEEDPUFixedLeak)
	}
	negA, negP := m.QEIArea(-5, -3, false)
	if negA != zeroA || negP != zeroP {
		t.Errorf("negative counts: got %.4f mm², %.4f mW; want clamped to the zero point %.4f, %.4f",
			negA, negP, zeroA, zeroP)
	}
	if a, p := m.QEIArea(-1, -1, true); a <= zeroA || p <= zeroP {
		t.Errorf("degenerate point with TLB should still pay the TLB: %.4f mm², %.4f mW", a, p)
	}
}

// TestQEIAreaMonotonic is the property test behind the Pareto sweep:
// area and static power never decrease as QST entries or comparators
// grow, across a grid spanning negative to device-sized counts.
func TestQEIAreaMonotonic(t *testing.T) {
	m := Default()
	counts := []int{-4, 0, 1, 2, 8, 10, 64, 240}
	for _, withTLB := range []bool{false, true} {
		for i := 1; i < len(counts); i++ {
			for _, cmp := range counts {
				aLo, pLo := m.QEIArea(counts[i-1], cmp, withTLB)
				aHi, pHi := m.QEIArea(counts[i], cmp, withTLB)
				if aHi < aLo || pHi < pLo {
					t.Errorf("entries %d->%d (cmp %d, tlb %v): area %.4f->%.4f, power %.4f->%.4f not monotonic",
						counts[i-1], counts[i], cmp, withTLB, aLo, aHi, pLo, pHi)
				}
				aLo, pLo = m.QEIArea(cmp, counts[i-1], withTLB)
				aHi, pHi = m.QEIArea(cmp, counts[i], withTLB)
				if aHi < aLo || pHi < pLo {
					t.Errorf("comparators %d->%d (entries %d, tlb %v): area %.4f->%.4f, power %.4f->%.4f not monotonic",
						counts[i-1], counts[i], cmp, withTLB, aLo, aHi, pLo, pHi)
				}
			}
		}
	}
}

func TestDynamicEnergyEmptyActivity(t *testing.T) {
	if e := Default().DynamicEnergyNJ(Activity{}); e != 0 {
		t.Errorf("empty activity costs %.4f nJ, want exactly 0", e)
	}
}

// TestAtNode pins the technology-scaling contract: identity at the
// 22 nm calibration point (and for non-positive nodes), quadratic area
// and dynamic shrink, linear leakage shrink.
func TestAtNode(t *testing.T) {
	m := Default()
	if m.AtNode(22) != m {
		t.Error("AtNode(22) must be the identity")
	}
	if m.AtNode(0) != m || m.AtNode(-3) != m {
		t.Error("non-positive nodes must behave as the 22 nm calibration")
	}
	h := m.AtNode(11)
	s := 0.5
	if !within(h.CEEDPUFixedArea, m.CEEDPUFixedArea*s*s, 1e-12) {
		t.Errorf("area at 11 nm = %.6f, want quarter of %.6f", h.CEEDPUFixedArea, m.CEEDPUFixedArea)
	}
	if !within(h.CEEDPUFixedLeak, m.CEEDPUFixedLeak*s, 1e-12) {
		t.Errorf("leakage at 11 nm = %.6f, want half of %.6f", h.CEEDPUFixedLeak, m.CEEDPUFixedLeak)
	}
	if !within(h.DRAMAccessEnergy, m.DRAMAccessEnergy*s*s, 1e-12) {
		t.Errorf("dynamic energy at 11 nm = %.6f, want quarter of %.6f", h.DRAMAccessEnergy, m.DRAMAccessEnergy)
	}
	// Scaling preserves the Fig. 12 shape: a full-model scale factor
	// cancels in software-vs-QEI energy ratios.
	a := Activity{Instructions: 100, L1Accesses: 10, LLCAccesses: 3, Transitions: 40}
	if !within(h.DynamicEnergyNJ(a), m.DynamicEnergyNJ(a)*s*s, 1e-9) {
		t.Error("DynamicEnergyNJ must scale uniformly with the node")
	}
}
