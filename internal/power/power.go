// Package power provides the analytic area/power model standing in for
// the paper's McPAT [50] + CACTI [6] flow (Sec. VI-A): component-level
// area and static power at 22 nm for the QEI configurations of Tab. III,
// and per-event dynamic energies for the Fig. 12 per-query power
// comparison.
//
// Coefficients are calibrated so the three Tab. III configurations
// reproduce the published numbers to within a few percent:
//
//	QEI-10      0.1752 mm², 10.8984 mW   (one CHA/Core-integrated instance)
//	QEI-10+TLB  0.5730 mm², 30.9049 mW   (adds a dedicated 1024-entry TLB)
//	QEI-240     1.0901 mm², 20.8764 mW   (centralized device accelerator)
//
// The calibration mirrors the paper's incremental methodology: the QST is
// a heavily multi-ported register-file-like array (hence the high per-bit
// cost), the TLB is CAM tags plus SRAM data (hence its outsized area —
// the paper's argument against per-CHA TLBs), and the CEE/DPU are fixed
// logic blocks.
package power

import "fmt"

// Model holds the technology coefficients (22 nm).
type Model struct {
	// QSTBitsPerEntry is the QST entry width: key_address (8 B),
	// result_address (8 B), type (1 B), state (1 B), intermediate data
	// (64 B), query_mode + ready (2 b) — Sec. IV-B.
	QSTBitsPerEntry int
	// RFAreaPerBit is the multi-ported QST array cost (µm²/bit).
	RFAreaPerBit float64
	// RFLeakPerBit is QST leakage (mW/bit).
	RFLeakPerBit float64
	// CEEDPUFixedArea covers the CFA Execution Engine microcode store,
	// scheduler, queues, five ALUs, and the hashing unit (mm²).
	CEEDPUFixedArea float64
	// CEEDPUFixedLeak is the matching static power (mW).
	CEEDPUFixedLeak float64
	// ComparatorArea is one 64-bit comparator with routing (mm²).
	ComparatorArea float64
	// ComparatorLeak is one comparator's static power (mW).
	ComparatorLeak float64
	// BaseComparators is the comparator count included in the fixed DPU
	// (two per site, Tab. II).
	BaseComparators int

	// TLB coefficients: CAM tags (virtual page number, 40 b) and SRAM
	// data (frame number + permissions, 28 b).
	TLBEntries     int
	TLBTagBits     int
	TLBDataBits    int
	CAMAreaPerBit  float64 // µm²/bit
	SRAMAreaPerBit float64 // µm²/bit
	CAMLeakPerBit  float64 // mW/bit
	SRAMLeakPerBit float64 // mW/bit

	// Dynamic energy per event (nJ).
	CoreEnergyPerInstr float64 // frontend+rename+ROB+commit per µop
	ComparatorLineRead float64 // CHA comparator streaming one line from the LLC data array
	TransitionEnergy   float64 // one CEE transition
	CompareEnergyPer8B float64
	HashEnergyPer8B    float64
	L1AccessEnergy     float64
	L2AccessEnergy     float64
	LLCAccessEnergy    float64
	DRAMAccessEnergy   float64
	NoCEnergyPerByte   float64
	TLBLookupEnergy    float64
	PageWalkEnergy     float64
	MispredictEnergy   float64 // wasted fetch/decode on a flush
}

// Default returns the calibrated 22 nm model.
func Default() Model {
	return Model{
		QSTBitsPerEntry: 658,
		RFAreaPerBit:    5.85,    // µm²/bit — ~6-ported array
		RFLeakPerBit:    60e-6,   // mW/bit
		CEEDPUFixedArea: 0.13671, // mm²
		CEEDPUFixedLeak: 10.5036, // mW
		ComparatorArea:  0.004,
		ComparatorLeak:  0.1,
		BaseComparators: 2,

		TLBEntries:     1024,
		TLBTagBits:     40,
		TLBDataBits:    28,
		CAMAreaPerBit:  8.0,
		SRAMAreaPerBit: 2.44,
		CAMLeakPerBit:  0.00043,
		SRAMLeakPerBit: 0.00008,

		CoreEnergyPerInstr: 1.0, // Skylake-class OoO pipeline per µop
		ComparatorLineRead: 0.6, // no tag path, no fill, no transfer
		TransitionEnergy:   0.04,
		CompareEnergyPer8B: 0.008,
		HashEnergyPer8B:    0.03,
		L1AccessEnergy:     0.12,
		L2AccessEnergy:     0.45,
		LLCAccessEnergy:    1.3,
		DRAMAccessEnergy:   18.0,
		NoCEnergyPerByte:   0.0015, // per byte-hop (link traversal)
		TLBLookupEnergy:    0.02,
		PageWalkEnergy:     2.0,
		MispredictEnergy:   1.8,
	}
}

// AtNode returns the model scaled from its 22 nm calibration to the
// given technology node with first-order shrink factors: area scales
// with the square of the feature size, static (leakage) power linearly,
// and dynamic energy per event with the square (capacitance times a
// voltage that tracks the node). The factors are deliberately coarse —
// they rank design points in a sweep, they are not a sign-off flow —
// and AtNode(22) returns the model unchanged. Non-positive nodes are
// treated as the 22 nm calibration point.
func (m Model) AtNode(nm int) Model {
	if nm <= 0 {
		nm = 22
	}
	s := float64(nm) / 22.0
	area, leak, dyn := s*s, s, s*s

	m.RFAreaPerBit *= area
	m.CEEDPUFixedArea *= area
	m.ComparatorArea *= area
	m.CAMAreaPerBit *= area
	m.SRAMAreaPerBit *= area

	m.RFLeakPerBit *= leak
	m.CEEDPUFixedLeak *= leak
	m.ComparatorLeak *= leak
	m.CAMLeakPerBit *= leak
	m.SRAMLeakPerBit *= leak

	m.CoreEnergyPerInstr *= dyn
	m.ComparatorLineRead *= dyn
	m.TransitionEnergy *= dyn
	m.CompareEnergyPer8B *= dyn
	m.HashEnergyPer8B *= dyn
	m.L1AccessEnergy *= dyn
	m.L2AccessEnergy *= dyn
	m.LLCAccessEnergy *= dyn
	m.DRAMAccessEnergy *= dyn
	m.NoCEnergyPerByte *= dyn
	m.TLBLookupEnergy *= dyn
	m.PageWalkEnergy *= dyn
	m.MispredictEnergy *= dyn
	return m
}

// QEIArea returns the silicon area (mm²) and static power (mW) of one
// QEI accelerator with the given QST capacity and comparator count,
// optionally including a dedicated TLB. Negative counts are clamped to
// zero (a degenerate design point costs the fixed logic, never negative
// silicon), so area and power are monotonically non-decreasing in both
// arguments.
func (m Model) QEIArea(qstEntries, comparators int, withTLB bool) (mm2, mW float64) {
	if qstEntries < 0 {
		qstEntries = 0
	}
	if comparators < 0 {
		comparators = 0
	}
	bits := float64(qstEntries * m.QSTBitsPerEntry)
	mm2 = bits*m.RFAreaPerBit/1e6 + m.CEEDPUFixedArea
	mW = bits*m.RFLeakPerBit + m.CEEDPUFixedLeak
	extraComp := comparators - m.BaseComparators
	if extraComp > 0 {
		mm2 += float64(extraComp) * m.ComparatorArea
		mW += float64(extraComp) * m.ComparatorLeak
	}
	if withTLB {
		ta, tp := m.TLBArea()
		mm2 += ta
		mW += tp
	}
	return mm2, mW
}

// TLBArea returns the dedicated 1024-entry TLB's area (mm²) and static
// power (mW) — the hardware the CHA-TLB scheme pays 24 times for.
func (m Model) TLBArea() (mm2, mW float64) {
	cam := float64(m.TLBEntries * m.TLBTagBits)
	data := float64(m.TLBEntries * m.TLBDataBits)
	mm2 = (cam*m.CAMAreaPerBit + data*m.SRAMAreaPerBit) / 1e6
	mW = cam*m.CAMLeakPerBit + data*m.SRAMLeakPerBit
	return mm2, mW
}

// TableIIIRow is one configuration of the Tab. III reproduction.
type TableIIIRow struct {
	Config   string
	AreaMM2  float64
	StaticMW float64
	// Paper columns for side-by-side reporting.
	PaperAreaMM2  float64
	PaperStaticMW float64
}

// TableIII computes the three configurations of Tab. III.
func (m Model) TableIII() []TableIIIRow {
	a10, p10 := m.QEIArea(10, 2, false)
	a10t, p10t := m.QEIArea(10, 2, true)
	a240, p240 := m.QEIArea(240, 10, false)
	return []TableIIIRow{
		{Config: "QEI-10", AreaMM2: a10, StaticMW: p10, PaperAreaMM2: 0.1752, PaperStaticMW: 10.8984},
		{Config: "QEI-10+TLB", AreaMM2: a10t, StaticMW: p10t, PaperAreaMM2: 0.5730, PaperStaticMW: 30.9049},
		{Config: "QEI-240", AreaMM2: a240, StaticMW: p240, PaperAreaMM2: 1.0901, PaperStaticMW: 20.8764},
	}
}

// Activity is the event tally of one measured region, used for dynamic
// energy accounting (Fig. 12).
type Activity struct {
	// Core-side events (software baseline; also the polling/issue work in
	// accelerated runs).
	Instructions uint64
	Mispredicts  uint64
	// Accelerator-side events.
	Transitions uint64
	Compare8Bs  uint64 // 8-byte comparator operations
	// ComparatorLineReads counts LLC data-array lines streamed by CHA
	// comparators (cheaper than a full LLC access: no tag lookup, no
	// fill, no NoC transfer).
	ComparatorLineReads uint64
	Hash8Bs             uint64 // 8-byte hash-unit operations
	TLBLookups          uint64
	PageWalks           uint64
	// Memory-system events, shared vocabulary for both sides.
	L1Accesses   uint64
	L2Accesses   uint64
	LLCAccesses  uint64
	DRAMAccesses uint64
	NoCBytes     uint64
}

// DynamicEnergyNJ returns the total dynamic energy of the activity in
// nanojoules.
func (m Model) DynamicEnergyNJ(a Activity) float64 {
	return float64(a.ComparatorLineReads)*m.ComparatorLineRead +
		float64(a.Instructions)*m.CoreEnergyPerInstr +
		float64(a.Mispredicts)*m.MispredictEnergy +
		float64(a.Transitions)*m.TransitionEnergy +
		float64(a.Compare8Bs)*m.CompareEnergyPer8B +
		float64(a.Hash8Bs)*m.HashEnergyPer8B +
		float64(a.TLBLookups)*m.TLBLookupEnergy +
		float64(a.PageWalks)*m.PageWalkEnergy +
		float64(a.L1Accesses)*m.L1AccessEnergy +
		float64(a.L2Accesses)*m.L2AccessEnergy +
		float64(a.LLCAccesses)*m.LLCAccessEnergy +
		float64(a.DRAMAccesses)*m.DRAMAccessEnergy +
		float64(a.NoCBytes)*m.NoCEnergyPerByte
}

// String renders a Tab. III row.
func (r TableIIIRow) String() string {
	return fmt.Sprintf("%-12s area %.4f mm² (paper %.4f), static %.4f mW (paper %.4f)",
		r.Config, r.AreaMM2, r.PaperAreaMM2, r.StaticMW, r.PaperStaticMW)
}
