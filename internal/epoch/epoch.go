// Package epoch implements epoch-based reclamation for the streaming
// mutation engine: the consistency protocol between simulated-software
// writers and in-flight accelerator queries.
//
// QEI keeps updates in software (Sec. IV-A) while queries run on the
// accelerator, and both sides read the same coherent simulated memory.
// A writer that unlinks a node (delete, cuckoo rehash, tree rebuild)
// must therefore not free or overwrite the node's bytes while a query
// admitted earlier can still dereference them. The classic solution —
// the one Linux RCU and most lock-free stores use — is epoch-based
// reclamation:
//
//   - every query pins the global epoch at QST admission and unpins at
//     completion;
//   - writers retire unlinked extents into the current epoch's limbo
//     list and advance the epoch after each mutation;
//   - an extent retired in epoch e is reclaimed only once every pinned
//     query has epoch > e — i.e. the QST has drained past the epoch.
//
// Reclaimed extents are poisoned (every byte overwritten with 0xDD) so
// a protocol violation corrupts the violator's read deterministically
// instead of silently succeeding, then recycled through a size-bucketed
// free list so a sustained mutation stream reaches a steady-state
// footprint instead of growing the address space forever.
//
// The GC doubles as a read-after-retire detector: installed as the
// address space's ReadWatcher, it counts any simulated read that
// touches a reclaimed-but-not-yet-reused extent. With a correct writer
// protocol the counter stays zero; the tests include a deliberately
// buggy writer to prove the detector has teeth.
//
// Everything is deterministic: given the same sequence of Pin / Retire
// / Bump / Unpin calls, the same extents are reclaimed at the same
// points and the free list hands back the same addresses.
package epoch

import "qei/internal/mem"

// poisonByte fills reclaimed extents. 0xDD mirrors the classic
// freed-memory fill pattern, and — decoded as a pointer — lands in
// unmapped space, so a stale traversal faults instead of wandering.
const poisonByte = 0xDD

// Stats is a snapshot of the reclaimer's counters.
type Stats struct {
	// Epoch is the current global epoch.
	Epoch uint64
	// Pins / Unpins count reader admissions and completions.
	Pins, Unpins uint64
	// PinsOutstanding is Pins - Unpins.
	PinsOutstanding uint64
	// Retired / Reclaimed count extents through the limbo lists;
	// RetiredBytes / ReclaimedBytes the bytes behind them.
	Retired, Reclaimed           uint64
	RetiredBytes, ReclaimedBytes uint64
	// LimboExtents is how many retired extents await reclamation.
	LimboExtents uint64
	// Reused counts allocations served from the free list instead of
	// fresh address space.
	Reused uint64
	// Violations counts reads that touched a reclaimed extent before it
	// was reused — read-after-retire protocol violations.
	Violations uint64
}

// limboBin collects the extents retired during one epoch.
type limboBin struct {
	epoch   uint64
	extents []mem.Extent
}

// GC is the epoch-based reclaimer for one address space. It is not
// safe for concurrent use; the simulator is single-threaded per system
// (parallelism in this codebase is across systems, never within one).
type GC struct {
	as *mem.AddressSpace

	epoch uint64
	// pinned[e] counts outstanding readers pinned at epoch e. The map
	// stays small: entries are deleted when the count drains to zero,
	// so it holds at most the distinct epochs of in-flight queries
	// (bounded by the QST size).
	pinned map[uint64]uint64
	// limbo holds per-epoch retire bins in epoch order (epochs only
	// grow, so appends keep it sorted).
	limbo []limboBin
	// free holds reclaimed extents keyed by size, reused LIFO so the
	// hottest extent comes back first and reuse is deterministic.
	free map[uint64][]mem.Extent
	// watched is the set of reclaimed-but-unreused extents, kept sorted
	// by address for binary-search membership tests in ObserveRead.
	watched []mem.Extent

	stats Stats
}

// New returns a reclaimer over as and installs it as the address
// space's read watcher so read-after-retire violations are counted.
func New(as *mem.AddressSpace) *GC {
	g := &GC{
		as:     as,
		pinned: make(map[uint64]uint64),
		free:   make(map[uint64][]mem.Extent),
	}
	as.SetReadWatch(g)
	return g
}

// Epoch returns the current global epoch.
func (g *GC) Epoch() uint64 { return g.epoch }

// Stats returns a snapshot of the reclaimer's counters.
func (g *GC) Stats() Stats {
	s := g.stats
	s.Epoch = g.epoch
	s.PinsOutstanding = s.Pins - s.Unpins
	for _, bin := range g.limbo {
		s.LimboExtents += uint64(len(bin.extents))
	}
	return s
}

// Pin records a reader entering at the current epoch (QST admission)
// and returns the epoch to pass back to Unpin.
func (g *GC) Pin() uint64 {
	g.pinned[g.epoch]++
	g.stats.Pins++
	return g.epoch
}

// Unpin records the completion of a reader pinned at e and reclaims
// any limbo bins the departure unblocked.
func (g *GC) Unpin(e uint64) {
	n, ok := g.pinned[e]
	if !ok {
		panic("epoch: Unpin without matching Pin")
	}
	if n == 1 {
		delete(g.pinned, e)
	} else {
		g.pinned[e] = n - 1
	}
	g.stats.Unpins++
	g.reclaim()
}

// Retire hands an unlinked extent to the reclaimer: it joins the
// current epoch's limbo bin and will be poisoned and recycled once no
// in-flight reader can still hold a pointer into it. Zero-sized
// extents are ignored so callers can pass "nothing was freed" results
// through unconditionally.
func (g *GC) Retire(e mem.Extent) {
	if e.Size == 0 {
		return
	}
	if n := len(g.limbo); n > 0 && g.limbo[n-1].epoch == g.epoch {
		g.limbo[n-1].extents = append(g.limbo[n-1].extents, e)
	} else {
		g.limbo = append(g.limbo, limboBin{epoch: g.epoch, extents: []mem.Extent{e}})
	}
	g.stats.Retired++
	g.stats.RetiredBytes += e.Size
}

// Bump advances the global epoch — writers call it after publishing a
// mutation — and reclaims whatever the advance unblocked.
func (g *GC) Bump() {
	g.epoch++
	g.reclaim()
}

// minPinned returns the smallest epoch any outstanding reader holds,
// or (current, false) when none are pinned. Map iteration order does
// not matter: the minimum is order-independent.
func (g *GC) minPinned() (uint64, bool) {
	var min uint64
	found := false
	for e := range g.pinned {
		if !found || e < min {
			min, found = e, true
		}
	}
	return min, found
}

// reclaim frees every limbo bin whose epoch is both strictly behind
// the current epoch (so no new reader can pin it) and strictly behind
// every outstanding pin (so no in-flight reader can dereference it).
func (g *GC) reclaim() {
	horizon := g.epoch
	if min, ok := g.minPinned(); ok && min < horizon {
		horizon = min
	}
	i := 0
	for ; i < len(g.limbo) && g.limbo[i].epoch < horizon; i++ {
		for _, e := range g.limbo[i].extents {
			g.reclaimExtent(e)
		}
	}
	if i > 0 {
		g.limbo = append(g.limbo[:0], g.limbo[i:]...)
	}
}

// reclaimExtent poisons one extent and moves it to the free list and
// the read-watch set.
func (g *GC) reclaimExtent(e mem.Extent) {
	poison := make([]byte, e.Size)
	for i := range poison {
		poison[i] = poisonByte
	}
	g.as.MustWrite(e.Addr, poison)
	g.free[e.Size] = append(g.free[e.Size], e)
	g.watchInsert(e)
	g.stats.Reclaimed++
	g.stats.ReclaimedBytes += e.Size
}

// Alloc places size bytes, preferring a reclaimed extent of exactly
// that size (LIFO) over fresh address space. It implements
// mem.Allocator, so the dstruct mutators can run against either a bare
// address space or the reclaimer. Reused extents leave the read-watch
// set: their bytes are live again.
func (g *GC) Alloc(size, align uint64) mem.VAddr {
	if list := g.free[size]; len(list) > 0 {
		e := list[len(list)-1]
		if align != 0 && uint64(e.Addr)&(align-1) != 0 {
			// All structure nodes are line-aligned, so recycled extents
			// almost always fit; a stricter alignment falls through to a
			// fresh allocation rather than serving a misaligned address.
			return g.as.Alloc(size, align)
		}
		g.free[size] = list[:len(list)-1]
		g.watchRemove(e)
		// Hand the extent back zeroed so recycled memory is
		// indistinguishable from a fresh allocation — structure bytes
		// (and thus simulated reads) never depend on reuse history.
		g.as.MustWrite(e.Addr, make([]byte, e.Size))
		g.stats.Reused++
		return e.Addr
	}
	return g.as.Alloc(size, align)
}

// ObserveRead implements mem.ReadWatcher: any read overlapping a
// reclaimed-but-unreused extent is a read-after-retire violation.
func (g *GC) ObserveRead(a mem.VAddr, n uint64) {
	if len(g.watched) == 0 || n == 0 {
		return
	}
	// First watched extent that ends after a.
	lo, hi := 0, len(g.watched)
	for lo < hi {
		mid := (lo + hi) / 2
		e := g.watched[mid]
		if uint64(e.Addr)+e.Size <= uint64(a) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(g.watched) && g.watched[lo].Overlaps(a, n) {
		g.stats.Violations++
	}
}

// Violations returns the read-after-retire violation count.
func (g *GC) Violations() uint64 { return g.stats.Violations }

// watchInsert adds e to the sorted watch set.
func (g *GC) watchInsert(e mem.Extent) {
	lo, hi := 0, len(g.watched)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.watched[mid].Addr < e.Addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	g.watched = append(g.watched, mem.Extent{})
	copy(g.watched[lo+1:], g.watched[lo:])
	g.watched[lo] = e
}

// watchRemove drops e from the sorted watch set.
func (g *GC) watchRemove(e mem.Extent) {
	lo, hi := 0, len(g.watched)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.watched[mid].Addr < e.Addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(g.watched) && g.watched[lo] == e {
		g.watched = append(g.watched[:lo], g.watched[lo+1:]...)
	}
}

// forceReclaimAll reclaims every limbo bin regardless of outstanding
// pins — a test hook that simulates a writer violating the protocol,
// used to prove the read-after-retire detector fires.
func (g *GC) forceReclaimAll() {
	for _, bin := range g.limbo {
		for _, e := range bin.extents {
			g.reclaimExtent(e)
		}
	}
	g.limbo = g.limbo[:0]
}
