package epoch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qei/internal/mem"
)

func newGC() (*GC, *mem.AddressSpace) {
	as := mem.NewAddressSpace(mem.NewPhysical())
	return New(as), as
}

// TestRetireHeldByPin checks the core guarantee: an extent retired
// while a reader is pinned at (or before) the retire epoch is not
// reclaimed until that reader unpins.
func TestRetireHeldByPin(t *testing.T) {
	g, as := newGC()
	e := mem.Extent{Addr: as.Alloc(64, mem.LineSize), Size: 64}
	as.MustWrite(e.Addr, []byte{1, 2, 3, 4})

	pin := g.Pin()
	g.Retire(e)
	g.Bump()
	g.Bump()
	if s := g.Stats(); s.Reclaimed != 0 || s.LimboExtents != 1 {
		t.Fatalf("reclaimed under an outstanding pin: %+v", s)
	}
	// The bytes must be untouched while the reader holds its pin.
	var b [4]byte
	as.MustRead(e.Addr, b[:])
	if b != [4]byte{1, 2, 3, 4} {
		t.Fatalf("retired-but-pinned bytes changed: %v", b)
	}

	g.Unpin(pin)
	if s := g.Stats(); s.Reclaimed != 1 || s.LimboExtents != 0 {
		t.Fatalf("drained pin did not unblock reclamation: %+v", s)
	}
	as.MustRead(e.Addr, b[:])
	if b != [4]byte{0xDD, 0xDD, 0xDD, 0xDD} {
		t.Fatalf("reclaimed extent not poisoned: %v", b)
	}
}

// TestReclaimNeedsEpochAdvance checks an extent retired in the current
// epoch stays in limbo even with no readers: a reader admitted right
// now could still be handed a pointer into it.
func TestReclaimNeedsEpochAdvance(t *testing.T) {
	g, as := newGC()
	e := mem.Extent{Addr: as.Alloc(64, mem.LineSize), Size: 64}
	g.Retire(e)
	g.Unpin(g.Pin()) // a full pin/unpin cycle at the same epoch
	if s := g.Stats(); s.Reclaimed != 0 {
		t.Fatalf("reclaimed an extent retired in the current epoch: %+v", s)
	}
	g.Bump()
	if s := g.Stats(); s.Reclaimed != 1 {
		t.Fatalf("epoch advance with no pins did not reclaim: %+v", s)
	}
}

// TestAllocReusesReclaimedZeroed checks the free list serves reclaimed
// extents LIFO by exact size, zeroed so recycled memory reads like a
// fresh allocation, and that reused extents leave the watch set.
func TestAllocReusesReclaimedZeroed(t *testing.T) {
	g, as := newGC()
	a1 := as.Alloc(128, mem.LineSize)
	a2 := as.Alloc(128, mem.LineSize)
	g.Retire(mem.Extent{Addr: a1, Size: 128})
	g.Retire(mem.Extent{Addr: a2, Size: 128})
	g.Bump()

	if got := g.Alloc(64, mem.LineSize); got == a1 || got == a2 {
		t.Fatal("wrong-size allocation reused a 128-byte extent")
	}
	if got := g.Alloc(128, mem.LineSize); got != a2 {
		t.Fatalf("first reuse = %#x, want LIFO %#x", got, a2)
	}
	var b [8]byte
	as.MustRead(a2, b[:])
	if b != [8]byte{} {
		t.Fatalf("reused extent not zeroed: %v", b)
	}
	// The reused extent must no longer count reads as violations.
	as.MustRead(a2, b[:])
	if g.Violations() != 0 {
		t.Fatal("read of a reused extent counted as a violation")
	}
	if got := g.Alloc(128, mem.LineSize); got != a1 {
		t.Fatalf("second reuse = %#x, want %#x", got, a1)
	}
	if s := g.Stats(); s.Reused != 2 {
		t.Fatalf("Reused = %d, want 2", s.Reused)
	}
}

// TestReadAfterRetireDetectorFires proves the detector has teeth: a
// read overlapping a reclaimed-but-unreused extent is counted.
func TestReadAfterRetireDetectorFires(t *testing.T) {
	g, as := newGC()
	a := as.Alloc(64, mem.LineSize)
	before := as.Alloc(64, mem.LineSize) // live neighbour
	g.Retire(mem.Extent{Addr: a, Size: 64})
	g.Bump()

	var b [8]byte
	as.MustRead(before, b[:])
	if g.Violations() != 0 {
		t.Fatal("read of live memory flagged as violation")
	}
	as.MustRead(a+16, b[:])
	if g.Violations() != 1 {
		t.Fatalf("Violations = %d after stale read, want 1", g.Violations())
	}
	// A spanning read that clips the extent counts too.
	big := make([]byte, 32)
	as.MustRead(a+48, big) // last 16 bytes of extent + 16 past it
	if g.Violations() != 2 {
		t.Fatalf("Violations = %d after spanning read, want 2", g.Violations())
	}
}

// TestForceReclaimViolatesPins exercises the buggy-writer hook: force
// reclamation under an outstanding pin, and the pinned reader's
// subsequent read is flagged.
func TestForceReclaimViolatesPins(t *testing.T) {
	g, as := newGC()
	a := as.Alloc(64, mem.LineSize)
	pin := g.Pin()
	g.Retire(mem.Extent{Addr: a, Size: 64})
	g.forceReclaimAll()
	var b [8]byte
	as.MustRead(a, b[:]) // the pinned reader dereferences its pointer
	if g.Violations() != 1 {
		t.Fatalf("Violations = %d, want 1", g.Violations())
	}
	g.Unpin(pin)
}

// TestUnpinWithoutPinPanics pins the misuse contract.
func TestUnpinWithoutPinPanics(t *testing.T) {
	g, _ := newGC()
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin without Pin did not panic")
		}
	}()
	g.Unpin(0)
}

// TestPropertyNoReclaimUnderPin drives random interleavings of
// pin/unpin/retire/bump and checks the invariant directly: an extent
// retired at epoch e is never reclaimed while any outstanding pin has
// epoch <= e. Reclamation order and free-list reuse must also be
// deterministic for identical call sequences.
func TestPropertyNoReclaimUnderPin(t *testing.T) {
	run := func(seed int64) (violated bool, trace []uint64) {
		rng := rand.New(rand.NewSource(seed))
		g, as := newGC()
		type pinRec struct{ epoch uint64 }
		var pins []pinRec
		retired := map[mem.Extent]uint64{} // extent -> retire epoch
		var live []mem.Extent

		minPin := func() (uint64, bool) {
			var m uint64
			ok := false
			for _, p := range pins {
				if !ok || p.epoch < m {
					m, ok = p.epoch, true
				}
			}
			return m, ok
		}

		for step := 0; step < 400; step++ {
			switch op := rng.Intn(5); {
			case op == 0: // pin
				pins = append(pins, pinRec{epoch: g.Pin()})
			case op == 1 && len(pins) > 0: // unpin a random reader
				i := rng.Intn(len(pins))
				g.Unpin(pins[i].epoch)
				pins = append(pins[:i], pins[i+1:]...)
			case op == 2: // allocate a live extent
				sz := uint64(64 * (1 + rng.Intn(3)))
				live = append(live, mem.Extent{Addr: g.Alloc(sz, mem.LineSize), Size: sz})
			case op == 3 && len(live) > 0: // retire a live extent
				i := rng.Intn(len(live))
				retired[live[i]] = g.Epoch()
				g.Retire(live[i])
				live = append(live[:i], live[i+1:]...)
			default:
				g.Bump()
			}
			// Invariant: reclaimed extents (poisoned first byte, not yet
			// reused — nothing is reused here since Alloc sizes rotate
			// before anything frees) must all have retire epoch strictly
			// below every outstanding pin.
			if m, ok := minPin(); ok {
				var b [1]byte
				for ext, e := range retired {
					as.MustRead(ext.Addr, b[:])
					if b[0] == poisonByte && e >= m {
						return true, trace
					}
				}
				// Those probe reads may themselves hit watched extents;
				// reset the violation counter's influence by ignoring it
				// (the invariant under test is reclamation timing).
			}
			trace = append(trace, g.Stats().Reclaimed)
		}
		return false, trace
	}

	f := func(seed int64) bool {
		violated, t1 := run(seed)
		if violated {
			return false
		}
		// Determinism: same seed, same reclamation trajectory.
		_, t2 := run(seed)
		if len(t1) != len(t2) {
			return false
		}
		for i := range t1 {
			if t1[i] != t2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestStatsAccounting checks the byte counters line up.
func TestStatsAccounting(t *testing.T) {
	g, as := newGC()
	g.Retire(mem.Extent{Addr: as.Alloc(64, mem.LineSize), Size: 64})
	g.Retire(mem.Extent{Addr: as.Alloc(192, mem.LineSize), Size: 192})
	g.Retire(mem.Extent{}) // zero-size: ignored
	s := g.Stats()
	if s.Retired != 2 || s.RetiredBytes != 256 || s.LimboExtents != 2 {
		t.Fatalf("retire accounting: %+v", s)
	}
	g.Bump()
	s = g.Stats()
	if s.Reclaimed != 2 || s.ReclaimedBytes != 256 || s.LimboExtents != 0 {
		t.Fatalf("reclaim accounting: %+v", s)
	}
}
