// Package faultinject is the deterministic, seeded fault-injection
// harness behind the robustness layer (Sec. IV-D of the paper requires
// accelerator exceptions to surface architecturally and queries to be
// replayable; this package manufactures the failures those paths are
// tested against).
//
// Every injection decision is a pure function of (seed, fault kind,
// per-kind opportunity counter): component hot paths call a hook at each
// opportunity, the hook advances the counter and hashes it against the
// kind's configured rate. No time, no math/rand state, no goroutine
// coupling — replaying the same workload with the same Schedule
// reproduces the same fault sequence bit for bit, which is what makes a
// chaos-soak failure debuggable from its seed alone.
//
// The Injector is armed only while the accelerator executes a query
// (package qei brackets execute with Arm/Disarm), so host-side structure
// builders and the software fallback path always see clean memory. Every
// hook is nil-safe and disarmed-safe: a simulation without fault
// injection pays one predictable branch and cannot diverge by a cycle.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// BitFlip corrupts one bit of data read from guest memory while the
	// accelerator walks a structure (a transient single-event upset on
	// the read path; memory itself stays intact).
	BitFlip Kind = iota
	// NoCDelay adds cycles to a mesh transfer (congestion, link retry).
	NoCDelay
	// NoCDrop drops a mesh message, forcing a retransmission: the
	// transfer pays the path twice plus a timeout penalty.
	NoCDrop
	// TLBShootdown invalidates a TLB before a lookup (a concurrent
	// munmap/IPI on another core), forcing a page walk.
	TLBShootdown
	// Spurious raises a spurious CFA exception on a transition — the
	// accelerator-internal soft error the retry path exists for.
	Spurious
	// Evict invalidates the accessed LLC line before lookup (capacity
	// pressure from other tenants), forcing a DRAM fill.
	Evict

	numKinds
)

// kindNames maps kinds to their schedule-spec spellings.
var kindNames = [numKinds]string{
	BitFlip:      "flip",
	NoCDelay:     "nocdelay",
	NoCDrop:      "nocdrop",
	TLBShootdown: "shootdown",
	Spurious:     "spurious",
	Evict:        "evict",
}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// NumKinds reports how many fault kinds exist.
func NumKinds() int { return int(numKinds) }

// Schedule is a replayable fault plan: a seed plus one firing rate per
// kind. Rates are probabilities per opportunity in [0, 1].
type Schedule struct {
	Seed uint64
	Rate [numKinds]float64
}

// ParseSchedule parses the "seed:kind=rate,kind=rate" spec used by the
// qeisim -faults flag, e.g. "7:flip=0.001,spurious=0.01". Kinds are
// flip, nocdelay, nocdrop, shootdown, spurious, evict; omitted kinds
// stay at rate 0. "seed:" alone is a valid all-zero schedule.
func ParseSchedule(spec string) (Schedule, error) {
	var s Schedule
	seedStr, rates, ok := strings.Cut(spec, ":")
	if !ok {
		return s, fmt.Errorf("faultinject: spec %q needs the form seed:kind=rate,...", spec)
	}
	seed, err := strconv.ParseUint(strings.TrimSpace(seedStr), 0, 64)
	if err != nil {
		return s, fmt.Errorf("faultinject: bad seed in %q: %v", spec, err)
	}
	s.Seed = seed
	if strings.TrimSpace(rates) == "" {
		return s, nil
	}
	for _, part := range strings.Split(rates, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return s, fmt.Errorf("faultinject: bad rate %q (want kind=rate)", part)
		}
		r, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || r < 0 || r > 1 {
			return s, fmt.Errorf("faultinject: rate %q must be a probability in [0,1]", part)
		}
		found := false
		for k, kn := range kindNames {
			if kn == strings.ToLower(strings.TrimSpace(name)) {
				s.Rate[k] = r
				found = true
				break
			}
		}
		if !found {
			return s, fmt.Errorf("faultinject: unknown fault kind %q (have %s)",
				name, strings.Join(kindNames[:], ", "))
		}
	}
	return s, nil
}

// String renders the schedule back into ParseSchedule's spec form, with
// kinds in a fixed order so equal schedules print identically.
func (s Schedule) String() string {
	var parts []string
	for k, r := range s.Rate {
		if r > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", kindNames[k], r))
		}
	}
	sort.Strings(parts)
	return fmt.Sprintf("%d:%s", s.Seed, strings.Join(parts, ","))
}

// Enabled reports whether any kind has a non-zero rate.
func (s Schedule) Enabled() bool {
	for _, r := range s.Rate {
		if r > 0 {
			return true
		}
	}
	return false
}

// Injector hands out deterministic injection decisions. The zero of
// *Injector (nil) is a valid, permanently-disabled injector; every
// method no-ops on it, mirroring the repo's nil-safe observability
// pattern so disabled fault injection costs nothing and changes nothing.
type Injector struct {
	sched Schedule
	armed bool

	ops      [numKinds]uint64 // opportunities seen per kind
	hits     [numKinds]uint64 // injections fired per kind
	injected uint64           // total injections fired
}

// New builds an injector from a schedule.
func New(s Schedule) *Injector { return &Injector{sched: s} }

// Schedule returns the injector's fault plan.
func (i *Injector) Schedule() Schedule {
	if i == nil {
		return Schedule{}
	}
	return i.sched
}

// Arm enables injection. The accelerator arms around query execution so
// host-side builders and the software fallback stay uncorrupted.
func (i *Injector) Arm() {
	if i != nil {
		i.armed = true
	}
}

// Disarm disables injection.
func (i *Injector) Disarm() {
	if i != nil {
		i.armed = false
	}
}

// Armed reports whether hooks may fire.
func (i *Injector) Armed() bool { return i != nil && i.armed }

// Injected returns the total number of faults fired so far. The engine
// snapshots it around an execution attempt to classify faults as
// transient (injection happened during the attempt ⇒ worth retrying).
func (i *Injector) Injected() uint64 {
	if i == nil {
		return 0
	}
	return i.injected
}

// Hits returns how many times kind k fired.
func (i *Injector) Hits(k Kind) uint64 {
	if i == nil {
		return 0
	}
	return i.hits[k]
}

// Opportunities returns how many injection opportunities kind k has seen.
func (i *Injector) Opportunities(k Kind) uint64 {
	if i == nil {
		return 0
	}
	return i.ops[k]
}

// splitmix64 is the SplitMix64 finalizer — a strong, allocation-free
// mix of one 64-bit word, the standard choice for counter-based PRNGs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fire decides one injection opportunity for kind k: it advances the
// kind's opportunity counter and hashes (seed, kind, counter) against
// the kind's rate. The returned word is the hash, usable as deterministic
// entropy for the fault's payload (which bit to flip, how long to delay).
func (i *Injector) fire(k Kind) (uint64, bool) {
	if i == nil || !i.armed {
		return 0, false
	}
	n := i.ops[k]
	i.ops[k]++
	r := i.sched.Rate[k]
	if r <= 0 {
		return 0, false
	}
	h := splitmix64(i.sched.Seed ^ (uint64(k)+1)*0xA24BAED4963EE407 ^ n*0x9E3779B97F4A7C15)
	// Compare the hash's upper 53 bits against the rate so r = 1 always
	// fires and r = 0 never does, without uint64 overflow at the edges.
	if float64(h>>11)/float64(1<<53) < r {
		i.hits[k]++
		i.injected++
		return h, true
	}
	return 0, false
}

// MaybeFlip flips one deterministic bit of buf when a BitFlip fires,
// reporting whether it did. addr salts the bit choice so different
// reads corrupt different bits.
func (i *Injector) MaybeFlip(addr uint64, buf []byte) bool {
	if len(buf) == 0 {
		return false
	}
	h, ok := i.fire(BitFlip)
	if !ok {
		return false
	}
	bit := int(splitmix64(h^addr) % uint64(len(buf)*8))
	buf[bit/8] ^= 1 << (bit % 8)
	return true
}

// NoCDelayCycles returns extra transfer cycles (1..16) when a NoCDelay
// fires, else 0.
func (i *Injector) NoCDelayCycles() uint64 {
	h, ok := i.fire(NoCDelay)
	if !ok {
		return 0
	}
	return 1 + (h>>32)%16
}

// NoCDrop reports whether this transfer is dropped and must retransmit.
func (i *Injector) NoCDrop() bool {
	_, ok := i.fire(NoCDrop)
	return ok
}

// TLBShootdown reports whether a shootdown invalidates the TLB before
// this lookup.
func (i *Injector) TLBShootdown() bool {
	_, ok := i.fire(TLBShootdown)
	return ok
}

// SpuriousFault reports whether this CFA transition raises a spurious
// exception.
func (i *Injector) SpuriousFault() bool {
	_, ok := i.fire(Spurious)
	return ok
}

// EvictLine reports whether the accessed LLC line is evicted before
// this lookup.
func (i *Injector) EvictLine() bool {
	_, ok := i.fire(Evict)
	return ok
}
