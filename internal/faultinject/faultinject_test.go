package faultinject

import "testing"

func TestParseScheduleRoundTrip(t *testing.T) {
	s, err := ParseSchedule("42:flip=0.25,spurious=1,nocdrop=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 || s.Rate[BitFlip] != 0.25 || s.Rate[Spurious] != 1 || s.Rate[NoCDrop] != 0.5 {
		t.Fatalf("parsed %+v", s)
	}
	back, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("String() %q does not re-parse: %v", s.String(), err)
	}
	if back != s {
		t.Fatalf("round trip changed schedule: %+v vs %+v", back, s)
	}
	if !s.Enabled() {
		t.Fatal("schedule with rates reports disabled")
	}

	empty, err := ParseSchedule("7:")
	if err != nil {
		t.Fatal(err)
	}
	if empty.Enabled() || empty.Seed != 7 {
		t.Fatalf("bare-seed schedule: %+v", empty)
	}

	for _, bad := range []string{"", "x:flip=1", "1:flip", "1:flip=2", "1:bogus=0.5", "1:flip=-1"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("ParseSchedule(%q) accepted", bad)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	sched, _ := ParseSchedule("99:flip=0.3,nocdelay=0.2,shootdown=0.1,spurious=0.4")
	run := func() []uint64 {
		inj := New(sched)
		inj.Arm()
		var seq []uint64
		buf := make([]byte, 8)
		for n := 0; n < 200; n++ {
			if inj.MaybeFlip(uint64(n)*64, buf) {
				seq = append(seq, uint64(n))
			}
			seq = append(seq, inj.NoCDelayCycles())
			if inj.TLBShootdown() {
				seq = append(seq, 1000+uint64(n))
			}
			if inj.SpuriousFault() {
				seq = append(seq, 2000+uint64(n))
			}
		}
		seq = append(seq, inj.Injected())
		return seq
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if a[len(a)-1] == 0 {
		t.Fatal("schedule with rates up to 0.4 never injected in 200 rounds")
	}
}

func TestInjectorRateExtremes(t *testing.T) {
	always, _ := ParseSchedule("1:spurious=1")
	inj := New(always)
	inj.Arm()
	for n := 0; n < 50; n++ {
		if !inj.SpuriousFault() {
			t.Fatalf("rate-1.0 kind missed at opportunity %d", n)
		}
	}

	never := New(Schedule{Seed: 1})
	never.Arm()
	buf := []byte{0xAA}
	for n := 0; n < 50; n++ {
		if never.MaybeFlip(0, buf) || never.NoCDrop() || never.EvictLine() {
			t.Fatal("zero-rate schedule injected")
		}
	}
	if buf[0] != 0xAA {
		t.Fatal("zero-rate MaybeFlip mutated the buffer")
	}
	if never.Opportunities(BitFlip) != 50 {
		t.Fatalf("opportunities = %d, want 50", never.Opportunities(BitFlip))
	}
}

func TestInjectorDisarmedAndNil(t *testing.T) {
	inj := New(Schedule{Seed: 3, Rate: [numKinds]float64{1, 1, 1, 1, 1, 1}})
	buf := []byte{0x55}
	if inj.MaybeFlip(0, buf) || inj.SpuriousFault() || inj.NoCDrop() {
		t.Fatal("disarmed injector fired")
	}
	if inj.Opportunities(BitFlip) != 0 {
		t.Fatal("disarmed injector consumed an opportunity")
	}
	inj.Arm()
	if !inj.SpuriousFault() {
		t.Fatal("armed rate-1.0 injector did not fire")
	}
	inj.Disarm()
	if inj.SpuriousFault() {
		t.Fatal("re-disarmed injector fired")
	}

	var nilInj *Injector
	if nilInj.Armed() || nilInj.MaybeFlip(0, buf) || nilInj.NoCDrop() ||
		nilInj.TLBShootdown() || nilInj.SpuriousFault() || nilInj.EvictLine() ||
		nilInj.NoCDelayCycles() != 0 || nilInj.Injected() != 0 ||
		nilInj.Hits(BitFlip) != 0 || nilInj.Opportunities(Spurious) != 0 {
		t.Fatal("nil injector is not a no-op")
	}
	nilInj.Arm()
	nilInj.Disarm()
	if buf[0] != 0x55 {
		t.Fatal("buffer mutated by disarmed/nil hooks")
	}
}

func TestMaybeFlipFlipsExactlyOneBit(t *testing.T) {
	sched, _ := ParseSchedule("5:flip=1")
	inj := New(sched)
	inj.Arm()
	buf := make([]byte, 16)
	if !inj.MaybeFlip(0x4000, buf) {
		t.Fatal("rate-1.0 flip missed")
	}
	ones := 0
	for _, b := range buf {
		for ; b != 0; b &= b - 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("flip changed %d bits, want exactly 1", ones)
	}
}
