package hwdesc

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"qei/internal/machine"
	"qei/internal/scheme"
)

// TestGoldenRoundTrip pins the wire format: encode → decode → encode
// must be byte-identical for every preset.
func TestGoldenRoundTrip(t *testing.T) {
	for _, name := range Presets() {
		d, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		first, err := d.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		back, err := Decode(first)
		if err != nil {
			t.Fatalf("%s: decode of own encoding: %v", name, err)
		}
		second, err := back.Encode()
		if err != nil {
			t.Fatalf("%s: re-encode: %v", name, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: round trip not byte-identical:\nfirst:\n%s\nsecond:\n%s", name, first, second)
		}
		if !reflect.DeepEqual(d, back) {
			t.Errorf("%s: decoded value differs: %+v vs %+v", name, d, back)
		}
	}
}

// TestDefaultMatchesMachineDefault pins the materialization of the
// "tab2" description to the literals it replaced: the chip half must
// equal machine.DefaultConfig() and the accelerator half must equal
// scheme.ForKind for every integration scheme.
func TestDefaultMatchesMachineDefault(t *testing.T) {
	got := Default().MachineConfig().Normalized()
	want := machine.DefaultConfig().Normalized()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Default().MachineConfig() = %+v, want %+v", got, want)
	}

	for _, k := range []scheme.Kind{
		scheme.CoreIntegrated, scheme.CHATLB, scheme.CHANoTLB,
		scheme.DeviceDirect, scheme.DeviceIndirect,
	} {
		p, err := ForScheme(k).SchemeParams()
		if err != nil {
			t.Fatalf("%v: SchemeParams: %v", k, err)
		}
		if !reflect.DeepEqual(p, scheme.ForKind(k)) {
			t.Errorf("%v: SchemeParams() = %+v, want scheme.ForKind = %+v", k, p, scheme.ForKind(k))
		}
	}
}

func TestPresetsAndLoad(t *testing.T) {
	if _, err := Preset("nope"); !errors.Is(err, ErrBadConfig) {
		t.Errorf("Preset(nope) error = %v, want ErrBadConfig", err)
	}
	if _, err := Load("no-such-file.json"); !errors.Is(err, ErrBadConfig) {
		t.Errorf("Load(missing file) error = %v, want ErrBadConfig", err)
	}

	// A preset written to disk loads back equal.
	d := ForScheme(scheme.CHATLB)
	data, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load(%s): %v", path, err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Errorf("Load(file) = %+v, want %+v", got, d)
	}

	// Preset names resolve before file paths.
	fromPreset, err := Load("cha-tlb")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromPreset, d) {
		t.Errorf("Load(cha-tlb) = %+v, want ForScheme(CHATLB)", fromPreset)
	}
}

func TestDecodeRejectsUnknownFieldsAndBadValues(t *testing.T) {
	if _, err := Decode([]byte(`{"cores": 24, "bogus": 1}`)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown field: error = %v, want ErrBadConfig", err)
	}
	if _, err := Decode([]byte(`not json`)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad json: error = %v, want ErrBadConfig", err)
	}
}

func TestValidate(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Description)
	}{
		{"zero cores", func(d *Description) { d.Cores = 0 }},
		{"cores exceed stops", func(d *Description) { d.Cores = 25 }},
		{"zero mesh", func(d *Description) { d.Mesh.Cols = 0 }},
		{"no link bandwidth", func(d *Description) { d.Mesh.LinkBytesPerCycle = 0 }},
		{"no mem stops", func(d *Description) { d.MemStops = nil }},
		{"mem stop out of range", func(d *Description) { d.MemStops = []int{24} }},
		{"negative mem stop", func(d *Description) { d.MemStops = []int{-1} }},
		{"l1d not line-divisible", func(d *Description) { d.L1D.SizeBytes = 1000 }},
		{"zero l2 ways", func(d *Description) { d.L2.Ways = 0 }},
		{"llc slice zero size", func(d *Description) { d.LLCSlice.SizeBytes = 0 }},
		{"l1 tlb entries not way-divisible", func(d *Description) { d.L1TLB.Entries = 63 }},
		{"zero l2 tlb", func(d *Description) { d.L2TLB.Entries = 0 }},
		{"bad accel tlb", func(d *Description) { d.AccelTLB = TLB{Entries: 7, Ways: 2, HitLatency: 1} }},
		{"unknown scheme", func(d *Description) { d.Scheme = "warp-drive" }},
		{"zero qst", func(d *Description) { d.QST.Entries = 0 }},
		{"zero comparators", func(d *Description) { d.QST.Comparators = 0 }},
		{"zero node", func(d *Description) { d.TechNodeNM = 0 }},
	}
	for _, tc := range mutations {
		d := Default()
		tc.mut(&d)
		if err := d.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: Validate() = %v, want ErrBadConfig", tc.name, err)
		}
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("Default().Validate() = %v, want nil", err)
	}
}

// TestMachineConfigNoAliasing is the slice-aliasing regression: two
// materializations of one Description must not share MemStops storage,
// and mutating one machine's view must not leak into the other.
func TestMachineConfigNoAliasing(t *testing.T) {
	d := Default()
	a := d.MachineConfig()
	b := d.MachineConfig()
	a.MemStops[0] = 99
	if b.MemStops[0] == 99 {
		t.Fatal("two MachineConfig() calls share MemStops storage")
	}
	if d.MemStops[0] == 99 {
		t.Fatal("MachineConfig() aliases the Description's MemStops")
	}
}

func TestWithDataLatency(t *testing.T) {
	d := ForScheme(scheme.DeviceIndirect).WithDataLatency(500)
	if d.ExtraDataLatency != 500 {
		t.Errorf("ExtraDataLatency = %d, want 500", d.ExtraDataLatency)
	}
	p, err := d.SchemeParams()
	if err != nil {
		t.Fatal(err)
	}
	if p.ExtraDataLatency != 500 {
		t.Errorf("SchemeParams().ExtraDataLatency = %d, want 500", p.ExtraDataLatency)
	}
	if d.Name != "tab2-device-indirect-lat500" {
		t.Errorf("Name = %q", d.Name)
	}
}

// TestCHAInstancesTrackCores pins the placement constraint: distributed
// CHA schemes get one instance per slice tile, so a smaller chip must
// have fewer instances.
func TestCHAInstancesTrackCores(t *testing.T) {
	d := ForScheme(scheme.CHATLB)
	d.Cores = 8
	d.Mesh = Mesh{Cols: 4, Rows: 4, HopLatency: 1, RouterLatency: 2, LinkBytesPerCycle: 32}
	d.MemStops = []int{0, 15}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := d.SchemeParams()
	if err != nil {
		t.Fatal(err)
	}
	if p.Instances != 8 {
		t.Errorf("Instances = %d, want 8 (one per slice tile)", p.Instances)
	}
}

func TestAreaScalesWithNodeAndInstances(t *testing.T) {
	core, _, err := Default().Area()
	if err != nil {
		t.Fatal(err)
	}
	cha, _, err := ForScheme(scheme.CHATLB).Area()
	if err != nil {
		t.Fatal(err)
	}
	if cha <= core*20 {
		t.Errorf("CHA-TLB total area %.4f should dwarf one core-integrated instance %.4f (24 instances + TLBs)", cha, core)
	}
	small := Default()
	small.TechNodeNM = 7
	shrunk, _, err := small.Area()
	if err != nil {
		t.Fatal(err)
	}
	if shrunk >= core {
		t.Errorf("7 nm area %.4f should shrink below 22 nm %.4f", shrunk, core)
	}
}
