// Package hwdesc is the declarative machine + accelerator description:
// one JSON-encodable value that names everything the simulator needs to
// build a chip — core count, mesh geometry and link timing, memory-
// controller placement, cache and TLB sizing, page-walk cost, the QST
// capacity and comparator count of the accelerator, its integration
// scheme, and the technology node for the area/power model.
//
// Until this package existed, the Tab. II chip lived as literals inside
// machine.DefaultConfig(), power.Default(), and per-experiment code, so
// "what if the QST were bigger / the mesh smaller / the node 7 nm" meant
// editing Go. A Description answers those questions as data: presets
// reproduce every topology the experiments hard-code (pinned by tests to
// the previous literals, so no cycle drift), files loaded from disk are
// validated with errors wrapping ErrBadConfig, and the dse package
// sweeps grids of Descriptions through the deterministic runner.
//
// Materialization is aliasing-free by construction: MachineConfig()
// builds fresh slices on every call, so two sweep points evaluated
// concurrently can never share MemStops or mesh state.
package hwdesc

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"qei/internal/cache"
	"qei/internal/machine"
	"qei/internal/mem"
	"qei/internal/noc"
	"qei/internal/power"
	"qei/internal/scheme"
	"qei/internal/tlb"
)

// ErrBadConfig is the sentinel wrapped by every validation and decode
// failure in this package; callers branch with errors.Is.
var ErrBadConfig = errors.New("hwdesc: bad machine description")

// Mesh describes the NoC geometry and link timing.
type Mesh struct {
	Cols              int     `json:"cols"`
	Rows              int     `json:"rows"`
	HopLatency        uint64  `json:"hop_latency"`
	RouterLatency     uint64  `json:"router_latency"`
	LinkBytesPerCycle float64 `json:"link_bytes_per_cycle"`
}

// Cache describes one cache array (line size is fixed at mem.LineSize).
type Cache struct {
	SizeBytes  uint64 `json:"size_bytes"`
	Ways       int    `json:"ways"`
	HitLatency uint64 `json:"hit_latency"`
}

// TLB describes one translation array.
type TLB struct {
	Entries    int    `json:"entries"`
	Ways       int    `json:"ways"`
	HitLatency uint64 `json:"hit_latency"`
}

// QST describes the accelerator's query-status-table capacity and the
// comparator count per site (per CHA for distributed schemes, per DPU
// for device schemes) — the Tab. III area knobs.
type QST struct {
	Entries     int `json:"entries"`
	Comparators int `json:"comparators"`
}

// Description is one complete machine + accelerator design point.
// The zero value is not valid; start from Default(), a preset, or a
// decoded file and adjust.
type Description struct {
	Name  string `json:"name"`
	Cores int    `json:"cores"`
	Mesh  Mesh   `json:"mesh"`
	// MemStops are the mesh stops hosting memory controllers.
	MemStops []int `json:"mem_stops"`
	// PageWalkLatency is the per-level cost of a hardware page walk.
	PageWalkLatency uint64 `json:"page_walk_latency"`
	// ContiguousFrames lays data out physically contiguously (the
	// huge-page ablation); default false (fragmented, Sec. II-B).
	ContiguousFrames bool `json:"contiguous_frames,omitempty"`

	L1D      Cache `json:"l1d"`
	L2       Cache `json:"l2"`
	LLCSlice Cache `json:"llc_slice"`
	L1TLB    TLB   `json:"l1_tlb"`
	L2TLB    TLB   `json:"l2_tlb"`

	// Scheme is the integration scheme by CLI name: "core", "cha-tlb",
	// "cha-notlb", "device-direct", "device-indirect".
	Scheme string `json:"scheme"`
	QST    QST    `json:"qst"`
	// AccelTLB overrides the dedicated accelerator TLB geometry for
	// schemes that have one; the zero value keeps the scheme's default.
	AccelTLB TLB `json:"accel_tlb,omitempty"`
	// ExtraDataLatency is charged on every accelerator data access
	// (device-interface overhead; the Fig. 8 sweep varies it). Zero
	// keeps the scheme's default.
	ExtraDataLatency uint64 `json:"extra_data_latency,omitempty"`

	// TechNodeNM is the process node for the area/power model; the
	// calibration point is 22 (Tab. III).
	TechNodeNM int `json:"tech_node_nm"`
}

// SchemeKind resolves a Description scheme name to its internal kind.
func SchemeKind(name string) (scheme.Kind, error) {
	switch name {
	case "core", "":
		return scheme.CoreIntegrated, nil
	case "cha-tlb":
		return scheme.CHATLB, nil
	case "cha-notlb":
		return scheme.CHANoTLB, nil
	case "device-direct":
		return scheme.DeviceDirect, nil
	case "device-indirect":
		return scheme.DeviceIndirect, nil
	}
	return 0, fmt.Errorf("%w: unknown scheme %q", ErrBadConfig, name)
}

// SchemeName is the inverse of SchemeKind.
func SchemeName(k scheme.Kind) string {
	switch k {
	case scheme.CoreIntegrated:
		return "core"
	case scheme.CHATLB:
		return "cha-tlb"
	case scheme.CHANoTLB:
		return "cha-notlb"
	case scheme.DeviceDirect:
		return "device-direct"
	case scheme.DeviceIndirect:
		return "device-indirect"
	}
	return fmt.Sprintf("scheme(%d)", int(k))
}

// Default returns the Tab. II machine — 24 Skylake-SP-like cores on a
// 6x4 mesh, 6 memory controllers, the paper's cache/TLB hierarchy — with
// the Core-integrated accelerator (QST 10, 2 comparators/CHA) at 22 nm.
// Materializing it reproduces machine.DefaultConfig() and
// scheme.ForKind(CoreIntegrated) exactly (pinned by tests).
func Default() Description {
	return Description{
		Name:  "tab2",
		Cores: 24,
		Mesh: Mesh{
			Cols: 6, Rows: 4,
			// Calibrated per-hop costs (see machine.DefaultConfig): core→CHA
			// round trips land in Tab. I's 40–60 cycle band.
			HopLatency:        1,
			RouterLatency:     2,
			LinkBytesPerCycle: 32,
		},
		MemStops:        []int{0, 5, 9, 14, 18, 23},
		PageWalkLatency: 30,
		L1D:             Cache{SizeBytes: 32 << 10, Ways: 8, HitLatency: 4},
		L2:              Cache{SizeBytes: 1 << 20, Ways: 16, HitLatency: 14},
		LLCSlice:        Cache{SizeBytes: (33 << 20) / 24, Ways: 11, HitLatency: 20},
		L1TLB:           TLB{Entries: 64, Ways: 4, HitLatency: 1},
		L2TLB:           TLB{Entries: 1024, Ways: 8, HitLatency: 7},
		Scheme:          "core",
		QST:             QST{Entries: 10, Comparators: 2},
		TechNodeNM:      22,
	}
}

// ForScheme returns the Tab. II machine with the accelerator integrated
// under the given scheme, matching scheme.ForKind(k) exactly.
func ForScheme(k scheme.Kind) Description {
	d := Default()
	d.Scheme = SchemeName(k)
	d.Name = "tab2-" + d.Scheme
	p := scheme.ForKind(k)
	d.QST = QST{Entries: p.QSTEntriesPerInstance, Comparators: p.ComparatorsPerSite}
	return d
}

// WithDataLatency returns a copy with the device-interface data-access
// latency overridden — the Fig. 8 sweep knob.
func (d Description) WithDataLatency(lat uint64) Description {
	d.ExtraDataLatency = lat
	d.Name = fmt.Sprintf("%s-lat%d", d.Name, lat)
	return d
}

// Presets lists the named machine descriptions, one per topology the
// experiments previously hard-coded.
func Presets() []string {
	return []string{"default", "core", "cha-tlb", "cha-notlb", "device-direct", "device-indirect"}
}

// Preset returns a named description: "default" (== "core") or one of
// the per-scheme Tab. II machines.
func Preset(name string) (Description, error) {
	switch name {
	case "default":
		return Default(), nil
	case "core", "cha-tlb", "cha-notlb", "device-direct", "device-indirect":
		k, err := SchemeKind(name)
		if err != nil {
			return Description{}, err
		}
		return ForScheme(k), nil
	}
	return Description{}, fmt.Errorf("%w: unknown preset %q (have %s)",
		ErrBadConfig, name, strings.Join(Presets(), ", "))
}

// Load resolves a preset name or a JSON file path into a validated
// Description. Decode and validation failures wrap ErrBadConfig.
func Load(presetOrPath string) (Description, error) {
	for _, p := range Presets() {
		if presetOrPath == p {
			return Preset(presetOrPath)
		}
	}
	data, err := os.ReadFile(presetOrPath)
	if err != nil {
		return Description{}, fmt.Errorf("%w: %q is neither a preset (%s) nor a readable file: %v",
			ErrBadConfig, presetOrPath, strings.Join(Presets(), ", "), err)
	}
	return Decode(data)
}

// Decode parses a JSON description, rejecting unknown fields, and
// validates it.
func Decode(data []byte) (Description, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var d Description
	if err := dec.Decode(&d); err != nil {
		return Description{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if err := d.Validate(); err != nil {
		return Description{}, err
	}
	return d, nil
}

// Encode renders the description as indented JSON with a trailing
// newline. Encode∘Decode is byte-identical (the golden round-trip).
func (d Description) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func bad(format string, v ...any) error {
	return fmt.Errorf("%w: %s", ErrBadConfig, fmt.Sprintf(format, v...))
}

func validCache(name string, c Cache) error {
	if c.SizeBytes == 0 || c.Ways <= 0 {
		return bad("%s: size %d bytes / %d ways must be positive", name, c.SizeBytes, c.Ways)
	}
	if c.SizeBytes%(mem.LineSize*uint64(c.Ways)) != 0 {
		return bad("%s: %d bytes not divisible by %d ways of %d-byte lines",
			name, c.SizeBytes, c.Ways, mem.LineSize)
	}
	return nil
}

func validTLB(name string, t TLB) error {
	if t.Entries <= 0 || t.Ways <= 0 {
		return bad("%s: %d entries / %d ways must be positive", name, t.Entries, t.Ways)
	}
	if t.Entries%t.Ways != 0 {
		return bad("%s: %d entries not divisible by %d ways", name, t.Entries, t.Ways)
	}
	return nil
}

// Validate checks the description for internal consistency; every
// failure wraps ErrBadConfig with the offending field spelled out.
func (d Description) Validate() error {
	if d.Cores < 1 {
		return bad("cores %d < 1", d.Cores)
	}
	if d.Mesh.Cols < 1 || d.Mesh.Rows < 1 {
		return bad("mesh %dx%d: dimensions must be positive", d.Mesh.Cols, d.Mesh.Rows)
	}
	stops := d.Mesh.Cols * d.Mesh.Rows
	if d.Cores > stops {
		return bad("cores %d exceed the %dx%d mesh's %d stops", d.Cores, d.Mesh.Cols, d.Mesh.Rows, stops)
	}
	if d.Mesh.LinkBytesPerCycle <= 0 {
		return bad("mesh link bandwidth %.3f bytes/cycle must be positive", d.Mesh.LinkBytesPerCycle)
	}
	if len(d.MemStops) == 0 {
		return bad("no memory-controller stops")
	}
	for _, s := range d.MemStops {
		if s < 0 || s >= stops {
			return bad("memory stop %d outside the %d-stop mesh", s, stops)
		}
	}
	if err := validCache("l1d", d.L1D); err != nil {
		return err
	}
	if err := validCache("l2", d.L2); err != nil {
		return err
	}
	if err := validCache("llc_slice", d.LLCSlice); err != nil {
		return err
	}
	if err := validTLB("l1_tlb", d.L1TLB); err != nil {
		return err
	}
	if err := validTLB("l2_tlb", d.L2TLB); err != nil {
		return err
	}
	if d.AccelTLB != (TLB{}) {
		if err := validTLB("accel_tlb", d.AccelTLB); err != nil {
			return err
		}
	}
	if _, err := SchemeKind(d.Scheme); err != nil {
		return err
	}
	if d.QST.Entries < 1 {
		return bad("qst entries %d < 1", d.QST.Entries)
	}
	if d.QST.Comparators < 1 {
		return bad("qst comparators %d < 1", d.QST.Comparators)
	}
	if d.TechNodeNM < 1 {
		return bad("tech node %d nm < 1", d.TechNodeNM)
	}
	return nil
}

// MachineConfig materializes the chip-topology half of the description.
// Every call builds fresh slices, so concurrently evaluated sweep points
// never alias MemStops or geometry state.
func (d Description) MachineConfig() machine.Config {
	stops := make([]noc.Stop, len(d.MemStops))
	for i, s := range d.MemStops {
		stops[i] = noc.Stop(s)
	}
	return machine.Config{
		Cores: d.Cores,
		Mesh: noc.Config{
			Cols:              d.Mesh.Cols,
			Rows:              d.Mesh.Rows,
			HopLatency:        d.Mesh.HopLatency,
			RouterLatency:     d.Mesh.RouterLatency,
			LinkBytesPerCycle: d.Mesh.LinkBytesPerCycle,
		},
		MemStops:         stops,
		PageWalkLatency:  d.PageWalkLatency,
		ContiguousFrames: d.ContiguousFrames,
		L1D:              cacheConfig(d.L1D),
		L2:               cacheConfig(d.L2),
		LLCSlice:         cacheConfig(d.LLCSlice),
		L1TLB:            tlbConfig(d.L1TLB),
		L2TLB:            tlbConfig(d.L2TLB),
	}
}

func cacheConfig(c Cache) cache.Config {
	return cache.Config{SizeBytes: c.SizeBytes, Ways: c.Ways, LineSize: mem.LineSize, HitLatency: c.HitLatency}
}

func tlbConfig(t TLB) tlb.Config {
	return tlb.Config{Entries: t.Entries, Ways: t.Ways, HitLatency: t.HitLatency}
}

// SchemeParams materializes the accelerator half: the named scheme's
// paper parameter set with the description's QST capacity, comparator
// count, accelerator-TLB geometry, and device-interface latency applied.
// Distributed CHA schemes get one instance per LLC slice, so the
// instance count follows the core count.
func (d Description) SchemeParams() (scheme.Params, error) {
	k, err := SchemeKind(d.Scheme)
	if err != nil {
		return scheme.Params{}, err
	}
	p := scheme.ForKind(k)
	if d.QST.Entries > 0 {
		p.QSTEntriesPerInstance = d.QST.Entries
	}
	if d.QST.Comparators > 0 {
		p.ComparatorsPerSite = d.QST.Comparators
	}
	if d.AccelTLB != (TLB{}) {
		p.DedicatedTLB = tlbConfig(d.AccelTLB)
	}
	if d.ExtraDataLatency > 0 {
		p.ExtraDataLatency = d.ExtraDataLatency
	}
	// One accelerator per CHA/slice tile — and there is one tile per
	// core, so a smaller chip has fewer distributed instances.
	if k == scheme.CHATLB || k == scheme.CHANoTLB {
		p.Instances = d.Cores
	}
	return p, nil
}

// PowerModel materializes the area/power half: the calibrated 22 nm
// model scaled to the description's technology node.
func (d Description) PowerModel() power.Model {
	return power.Default().AtNode(d.TechNodeNM)
}

// Area returns the total accelerator silicon (mm²) and static power
// (mW) of the design point: the per-instance Tab. III cost — including
// a dedicated TLB where the scheme carries one — times the instance
// count, at the description's technology node.
func (d Description) Area() (mm2, mW float64, err error) {
	p, err := d.SchemeParams()
	if err != nil {
		return 0, 0, err
	}
	model := d.PowerModel()
	withTLB := p.Translation == scheme.TransDedicated
	a, w := model.QEIArea(p.QSTEntriesPerInstance, p.ComparatorsPerSite, withTLB)
	return a * float64(p.Instances), w * float64(p.Instances), nil
}
