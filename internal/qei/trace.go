package qei

import (
	"fmt"
	"sort"
	"strings"
)

// Query-timeline tracing. When enabled, the accelerator records one span
// per query (issue to completion, annotated with its QST instance), and
// ExportChromeTrace renders the spans in the Chrome tracing JSON format
// (chrome://tracing, Perfetto) — making the QST's out-of-order overlap
// visible: ten staggered spans per instance, exactly the pipelined-CFA
// picture of Sec. IV-B.

// Span is one traced query.
type Span struct {
	Tag      uint64
	Start    uint64
	End      uint64
	Instance int
	Slot     int
	Fault    bool
}

// EnableTracing starts span collection (cleared of prior spans).
func (a *Accelerator) EnableTracing() {
	a.traceOn = true
	a.spans = nil
}

// Spans returns the collected spans in issue order.
func (a *Accelerator) Spans() []Span {
	out := make([]Span, len(a.spans))
	copy(out, a.spans)
	return out
}

func (a *Accelerator) recordSpan(s Span) {
	if a.traceOn {
		a.spans = append(a.spans, s)
	}
}

// ExportChromeTrace renders spans as a Chrome tracing JSON document.
// Rows (tid) are QST slots within instances (pid), so the viewer shows
// each entry's occupancy timeline.
func ExportChromeTrace(spans []Span) string {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	var b strings.Builder
	b.WriteString("[\n")
	for i, s := range sorted {
		name := fmt.Sprintf("query-%d", s.Tag)
		if s.Fault {
			name += "!EXCEPTION"
		}
		dur := s.End - s.Start
		if dur == 0 {
			dur = 1
		}
		fmt.Fprintf(&b, `  {"name":%q,"cat":"qst","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d}`,
			name, s.Start, dur, s.Instance, s.Slot)
		if i != len(sorted)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("]\n")
	return b.String()
}
