package qei

import (
	"fmt"

	"qei/internal/trace"
)

// Query-timeline tracing. The accelerator's per-query spans ride on the
// simulator-wide tracer (internal/trace): when one is attached via
// SetTracer, every query emits a span on its QST instance's track, CHA
// remote comparisons emit spans on the owning slice's track, and
// dedicated-TLB page walks emit spans from the tlb package — all on one
// interleaved timeline. EnableTracing/Spans remain as a lightweight
// span-only collection mode for callers that want just the QST picture.

// Span is one traced query.
type Span struct {
	Tag      uint64
	Start    uint64
	End      uint64
	Instance int
	Slot     int
	Fault    bool
}

// EnableTracing starts span collection (cleared of prior spans).
func (a *Accelerator) EnableTracing() {
	a.traceOn = true
	a.spans = nil
}

// SetTracer attaches the unified event tracer: query spans, CHA
// remote-compare spans, and dedicated-TLB page walks are emitted on it.
// A nil tracer detaches.
func (a *Accelerator) SetTracer(tr *trace.Tracer) {
	a.tr = tr
	for i, ins := range a.inst {
		if ins.walker != nil {
			ins.walker.SetTracer(tr, trace.PidQST(i), 1)
		}
	}
}

// Spans returns the collected spans in issue order.
func (a *Accelerator) Spans() []Span {
	out := make([]Span, len(a.spans))
	copy(out, a.spans)
	return out
}

func (a *Accelerator) recordSpan(s Span) {
	if a.traceOn {
		a.spans = append(a.spans, s)
	}
	if a.tr != nil {
		name := "query"
		if s.Fault {
			name = "query!EXCEPTION"
		}
		a.tr.Span("qst", name, s.Start, s.End, trace.PidQST(s.Instance), s.Slot, nil)
	}
}

// ExportChromeTrace renders spans as a Chrome trace-event JSON document
// (the {"traceEvents":[...]} object form Perfetto and chrome://tracing
// accept), via the shared exporter in internal/trace. Rows (tid) are QST
// slots within instances (pid), so the viewer shows each entry's
// occupancy timeline; faulting queries carry an !EXCEPTION suffix.
func ExportChromeTrace(spans []Span) string {
	evs := make([]trace.Event, 0, len(spans))
	for _, s := range spans {
		name := fmt.Sprintf("query-%d", s.Tag)
		if s.Fault {
			name += "!EXCEPTION"
		}
		dur := s.End - s.Start
		if dur == 0 {
			dur = 1
		}
		evs = append(evs, trace.Event{
			Name: name, Cat: "qst", Phase: trace.Complete,
			TS: s.Start, Dur: dur,
			Pid: trace.PidQST(s.Instance), Tid: s.Slot,
		})
	}
	return trace.ExportChromeTrace(evs)
}
