package qei

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qei/internal/dstruct"
	"qei/internal/isa"
	"qei/internal/scheme"
)

func TestTracingSpansAndExport(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	a.EnableTracing()
	keys, vals := genKeys(50, 16, 60)
	ck := dstruct.BuildCuckoo(m.AS, 64, 4, 5, keys, vals)
	for i := 0; i < 20; i++ {
		qd := &isa.QueryDesc{HeaderAddr: ck.HeaderAddr, KeyAddr: stage(m, keys[i]), Tag: uint64(i)}
		if _, err := a.IssueBlocking(qd, 0); err != nil {
			t.Fatal(err)
		}
	}
	spans := a.Spans()
	if len(spans) != 20 {
		t.Fatalf("spans = %d, want 20", len(spans))
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Fatalf("span %d ends before start", s.Tag)
		}
		if s.Fault {
			t.Fatalf("span %d unexpectedly faulted", s.Tag)
		}
		if s.Slot < 0 || s.Slot >= 10 {
			t.Fatalf("span %d in slot %d — QST has 10", s.Tag, s.Slot)
		}
	}
	// Overlap: with all 20 issued at cycle 0, at least two spans overlap.
	overlap := false
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].Start < spans[j].End && spans[j].Start < spans[i].End {
				overlap = true
			}
		}
	}
	if !overlap {
		t.Fatal("no overlapping spans — QST parallelism invisible")
	}

	// The export must be valid JSON in the Chrome trace-event object form
	// ({"traceEvents":[...]}, accepted by chrome://tracing and Perfetto).
	doc := ExportChromeTrace(spans)
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(doc), &parsed); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, doc)
	}
	if len(parsed.TraceEvents) != 20 {
		t.Fatalf("trace has %d events", len(parsed.TraceEvents))
	}
	if parsed.TraceEvents[0]["ph"] != "X" {
		t.Fatal("events must be complete spans (ph=X)")
	}
}

func TestTracingFaultMarked(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	a.EnableTracing()
	key := stage(m, make([]byte, 8))
	if _, err := a.IssueBlocking(&isa.QueryDesc{HeaderAddr: 0xbad0000, KeyAddr: key, Tag: 9}, 0); err != nil {
		t.Fatal(err)
	}
	spans := a.Spans()
	if len(spans) != 1 || !spans[0].Fault {
		t.Fatalf("faulting span not recorded: %+v", spans)
	}
	if !strings.Contains(ExportChromeTrace(spans), "EXCEPTION") {
		t.Fatal("fault not visible in export")
	}
}

// TestExportChromeTraceGolden pins the exported bytes for a fixed span
// set: field ordering, the qst category, PidQST track mapping, and the
// EXCEPTION marker must not drift. Regenerate with UPDATE_GOLDEN=1.
func TestExportChromeTraceGolden(t *testing.T) {
	spans := []Span{
		{Tag: 7, Start: 40, End: 95, Instance: 1, Slot: 4},
		{Tag: 3, Start: 10, End: 60, Instance: 0, Slot: 2},
		{Tag: 9, Start: 25, End: 25, Instance: 0, Slot: 3, Fault: true},
	}
	got := ExportChromeTrace(spans)

	golden := filepath.Join("testdata", "chrome_trace_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (set UPDATE_GOLDEN=1 to generate): %v", err)
	}
	if got != string(want) {
		t.Fatalf("export drifted from golden file\n--- got:\n%s--- want:\n%s", got, want)
	}

	// The golden document must itself satisfy the trace-event schema.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(got), &parsed); err != nil {
		t.Fatalf("golden export not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 3 {
		t.Fatalf("golden export has %d events, want 3", len(parsed.TraceEvents))
	}
}

func TestTracingOffByDefault(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(5, 16, 61)
	ck := dstruct.BuildCuckoo(m.AS, 16, 4, 5, keys, vals)
	qd := &isa.QueryDesc{HeaderAddr: ck.HeaderAddr, KeyAddr: stage(m, keys[0]), Tag: 0}
	if _, err := a.IssueBlocking(qd, 0); err != nil {
		t.Fatal(err)
	}
	if len(a.Spans()) != 0 {
		t.Fatal("spans collected without EnableTracing")
	}
}
