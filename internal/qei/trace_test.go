package qei

import (
	"encoding/json"
	"strings"
	"testing"

	"qei/internal/dstruct"
	"qei/internal/isa"
	"qei/internal/scheme"
)

func TestTracingSpansAndExport(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	a.EnableTracing()
	keys, vals := genKeys(50, 16, 60)
	ck := dstruct.BuildCuckoo(m.AS, 64, 4, 5, keys, vals)
	for i := 0; i < 20; i++ {
		qd := &isa.QueryDesc{HeaderAddr: ck.HeaderAddr, KeyAddr: stage(m, keys[i]), Tag: uint64(i)}
		if _, err := a.IssueBlocking(qd, 0); err != nil {
			t.Fatal(err)
		}
	}
	spans := a.Spans()
	if len(spans) != 20 {
		t.Fatalf("spans = %d, want 20", len(spans))
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Fatalf("span %d ends before start", s.Tag)
		}
		if s.Fault {
			t.Fatalf("span %d unexpectedly faulted", s.Tag)
		}
		if s.Slot < 0 || s.Slot >= 10 {
			t.Fatalf("span %d in slot %d — QST has 10", s.Tag, s.Slot)
		}
	}
	// Overlap: with all 20 issued at cycle 0, at least two spans overlap.
	overlap := false
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].Start < spans[j].End && spans[j].Start < spans[i].End {
				overlap = true
			}
		}
	}
	if !overlap {
		t.Fatal("no overlapping spans — QST parallelism invisible")
	}

	// The export must be valid JSON in the Chrome trace array form.
	doc := ExportChromeTrace(spans)
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(doc), &parsed); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, doc)
	}
	if len(parsed) != 20 {
		t.Fatalf("trace has %d events", len(parsed))
	}
	if parsed[0]["ph"] != "X" {
		t.Fatal("events must be complete spans (ph=X)")
	}
}

func TestTracingFaultMarked(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	a.EnableTracing()
	key := stage(m, make([]byte, 8))
	if _, err := a.IssueBlocking(&isa.QueryDesc{HeaderAddr: 0xbad0000, KeyAddr: key, Tag: 9}, 0); err != nil {
		t.Fatal(err)
	}
	spans := a.Spans()
	if len(spans) != 1 || !spans[0].Fault {
		t.Fatalf("faulting span not recorded: %+v", spans)
	}
	if !strings.Contains(ExportChromeTrace(spans), "EXCEPTION") {
		t.Fatal("fault not visible in export")
	}
}

func TestTracingOffByDefault(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(5, 16, 61)
	ck := dstruct.BuildCuckoo(m.AS, 16, 4, 5, keys, vals)
	qd := &isa.QueryDesc{HeaderAddr: ck.HeaderAddr, KeyAddr: stage(m, keys[0]), Tag: 0}
	if _, err := a.IssueBlocking(qd, 0); err != nil {
		t.Fatal(err)
	}
	if len(a.Spans()) != 0 {
		t.Fatal("spans collected without EnableTracing")
	}
}
