// Package qei implements the QEI accelerator microarchitecture of
// Sec. IV: the Query State Table (QST) holding in-flight queries, the
// CFA Execution Engine (CEE) interpreting per-type firmware from package
// cfa, and the Data Processing Unit (DPU) with its ALUs, hashing unit,
// and comparators — including the remote comparators distributed into
// the CHAs by the Core-integrated and CHA-based schemes (Sec. V-A).
//
// Timing is compositional, matching the cpu package: IssueBlocking and
// IssueNonBlocking take the cycle at which the core hands over the query
// and return the cycle at which the result comes back (or is accepted).
// Internally the accelerator books shared resources — QST slots, the
// one-transition-per-cycle CEE, comparator sites — through monotonic
// next-free timelines, which models the paper's "pipelined CFAs in an
// out-of-order fashion": while one query waits on memory, the CEE works
// on another whose data is ready (Sec. IV-B).
package qei

import (
	"errors"
	"fmt"

	"qei/internal/cache"
	"qei/internal/cfa"
	"qei/internal/dstruct"
	"qei/internal/faultinject"
	"qei/internal/isa"
	"qei/internal/machine"
	"qei/internal/mem"
	"qei/internal/metrics"
	"qei/internal/noc"
	"qei/internal/scheme"
	"qei/internal/tlb"
	"qei/internal/trace"
)

// Sentinel errors for the architectural failure modes software is
// expected to handle (List 2's poll loop reissues on both).
var (
	// ErrQSTFull reports that every QST entry is occupied at issue time;
	// software should drain a completion and retry (Sec. IV-B).
	ErrQSTFull = errors.New("qei: QST full")
	// ErrAborted reports a non-blocking query flushed by an interrupt
	// before completing; software should reissue it (Sec. IV-D).
	ErrAborted = errors.New("qei: query aborted by interrupt flush")
	// ErrQueryTimeout reports a query aborted by the per-query cycle
	// budget watchdog (or the transition-count backstop): the CFA walk
	// was stuck or looping. Software should treat the structure as
	// suspect and fall back to the software path.
	ErrQueryTimeout = errors.New("qei: query exceeded its cycle budget")
	// ErrStructCorrupt reports that the guest data structure was
	// inconsistent — a pointer into unmapped memory, a pointer cycle, or
	// bytes the firmware could not interpret. The accelerator surfaces it
	// architecturally instead of wandering or crashing (Sec. IV-D).
	ErrStructCorrupt = errors.New("qei: guest data structure corrupt")
)

// errSpurious is the accelerator-internal soft error raised by fault
// injection on a CFA transition; it is transient by construction and the
// retry path clears it.
var errSpurious = errors.New("qei: spurious CFA exception")

// retryLimit bounds how many times a faulting query is retried from the
// root before the fault is surfaced architecturally (Sec. IV-D allows
// replay; unbounded replay would hide persistent corruption).
const retryLimit = 2

// retryBackoffBase is the cycle backoff before the first retry; it
// doubles per attempt, giving transient conditions time to clear.
const retryBackoffBase = 64

// Stats accumulates accelerator activity for performance and power
// analysis.
type Stats struct {
	Queries        uint64
	NonBlocking    uint64
	Transitions    uint64 // CEE state-handler invocations
	MemOps         uint64 // memory micro-ops
	MemLines       uint64 // cachelines fetched
	LocalCompares  uint64
	RemoteCompares uint64
	CompareBytes   uint64
	HashOps        uint64
	ALUOps         uint64
	Exceptions     uint64
	Flushes        uint64
	AbortedNB      uint64
	// Retries counts retry-from-root re-executions after transient
	// (injected) faults; Timeouts counts watchdog expirations.
	Retries  uint64
	Timeouts uint64
	// QSTStallCycles accumulates cycles queries waited for a free entry.
	QSTStallCycles uint64
	// BusyEntryCycles sums per-query residency; divided by makespan it
	// gives average QST occupancy.
	BusyEntryCycles uint64
	FirstIssue      uint64
	LastFinish      uint64
	// TranslationCycles sums address-translation latency charged.
	TranslationCycles uint64
	// DataAccessCycles sums data-path latency charged.
	DataAccessCycles uint64
	// Level-wise batch engine counters (ExecuteBatch).
	BatchBatches uint64 // batched instructions executed
	BatchQueries uint64 // queries resolved inside a batch
	BatchLevels  uint64 // level-wise rounds executed
	// BatchTranslationsSaved counts per-query page touches that reused a
	// translation another query in the batch already paid for.
	BatchTranslationsSaved uint64
	// BatchLinesDeduped counts node-line fetches coalesced because
	// another query needed the same line in the same round.
	BatchLinesDeduped uint64
	// BatchCoalescedProbes counts duplicate keys folded onto a
	// representative walk instead of probing on their own.
	BatchCoalescedProbes uint64
	// BatchDeferred counts queries the batch engine handed back to the
	// per-query path (faults, watchdog, structural anomalies).
	BatchDeferred uint64
}

// Occupancy returns the average number of busy QST entries over the
// accelerator's active window.
func (s Stats) Occupancy() float64 {
	if s.LastFinish <= s.FirstIssue {
		return 0
	}
	return float64(s.BusyEntryCycles) / float64(s.LastFinish-s.FirstIssue)
}

// Sub returns the counter difference s - prev for windowed measurement.
// The FirstIssue/LastFinish window is left at the later snapshot's span
// beyond the earlier one.
func (s Stats) Sub(prev Stats) Stats {
	d := Stats{
		Queries:           s.Queries - prev.Queries,
		NonBlocking:       s.NonBlocking - prev.NonBlocking,
		Transitions:       s.Transitions - prev.Transitions,
		MemOps:            s.MemOps - prev.MemOps,
		MemLines:          s.MemLines - prev.MemLines,
		LocalCompares:     s.LocalCompares - prev.LocalCompares,
		RemoteCompares:    s.RemoteCompares - prev.RemoteCompares,
		CompareBytes:      s.CompareBytes - prev.CompareBytes,
		HashOps:           s.HashOps - prev.HashOps,
		ALUOps:            s.ALUOps - prev.ALUOps,
		Exceptions:        s.Exceptions - prev.Exceptions,
		Flushes:           s.Flushes - prev.Flushes,
		AbortedNB:         s.AbortedNB - prev.AbortedNB,
		Retries:           s.Retries - prev.Retries,
		Timeouts:          s.Timeouts - prev.Timeouts,
		QSTStallCycles:    s.QSTStallCycles - prev.QSTStallCycles,
		BusyEntryCycles:   s.BusyEntryCycles - prev.BusyEntryCycles,
		TranslationCycles: s.TranslationCycles - prev.TranslationCycles,
		DataAccessCycles:  s.DataAccessCycles - prev.DataAccessCycles,
		FirstIssue:        prev.LastFinish,
		LastFinish:        s.LastFinish,

		BatchBatches:           s.BatchBatches - prev.BatchBatches,
		BatchQueries:           s.BatchQueries - prev.BatchQueries,
		BatchLevels:            s.BatchLevels - prev.BatchLevels,
		BatchTranslationsSaved: s.BatchTranslationsSaved - prev.BatchTranslationsSaved,
		BatchLinesDeduped:      s.BatchLinesDeduped - prev.BatchLinesDeduped,
		BatchCoalescedProbes:   s.BatchCoalescedProbes - prev.BatchCoalescedProbes,
		BatchDeferred:          s.BatchDeferred - prev.BatchDeferred,
	}
	return d
}

// Result is the architectural outcome of one query, delivered through
// the Result Queue (blocking) or the result memory address
// (non-blocking).
type Result struct {
	Found bool
	Value uint64
	// Matches holds trie-scan outputs.
	Matches []uint64
	// Fault carries the exception reported to software (Sec. IV-D).
	Fault error
	// Done is the completion cycle.
	Done uint64
	// Aborted marks non-blocking queries flushed by an interrupt.
	Aborted bool
}

// instance is one accelerator instance (one per CHA for the CHA-based
// schemes, one per core for Core-integrated, one chip-wide for devices).
type instance struct {
	idx     int // position in Accelerator.inst (shared by views)
	stop    noc.Stop
	qstRing []uint64 // completion cycle of entry (seq % size)
	qstSeq  uint64
	// lastCEECycle is the most recent cycle a transition was issued, used
	// to charge a conflict cycle when two entries contend for the CEE.
	lastCEECycle uint64
	tlb          *tlb.TLB    // dedicated TLB (TransDedicated), else nil
	walker       *tlb.Walker // page walker for the dedicated TLB
}

// Accelerator is a QEI accelerator complex configured for one
// integration scheme.
type Accelerator struct {
	m    *machine.Machine
	p    scheme.Params
	reg  *cfa.Registry
	core int // serving core (single-threaded evaluation, Sec. VI-B)

	inst []*instance
	// comparator next-free timelines: [site][unit]. Site = LLC slice for
	// remote comparators, instance index for local DPU comparators.
	remoteComp [][]uint64
	localComp  [][]uint64

	results map[uint64]Result
	// nbInFlight tracks non-blocking queries for interrupt flushes.
	nbInFlight map[uint64]nbRecord

	// traceOn/spans collect query timelines for ExportChromeTrace.
	traceOn bool
	spans   []Span
	// tr is the unified event tracer (SetTracer); nil disables emission.
	tr *trace.Tracer
	// remoteOps are per-slice cha<i>/cmp/remote_ops counters
	// (RegisterMetrics); nil when no registry is attached.
	remoteOps []*metrics.Counter

	// fi is the fault-injection harness, armed only inside execute so
	// host-side code stays exact; nil disables injection entirely.
	fi *faultinject.Injector
	// cycleBudget is the per-attempt watchdog limit; 0 disables it.
	cycleBudget uint64

	// sc is the per-attempt working set (page cache, staged-line set,
	// key buffer), reused across queries — the accelerator computes one
	// attempt at a time. oneOffSc backs dataAccess calls that need an
	// empty page cache (result writes), so they keep the exact timing of
	// a cold translation. pickKey stages the key bytes pickInstance
	// hashes at issue time.
	sc       scratch
	oneOffSc scratch
	pickKey  []byte

	stats Stats
}

// noEntry is the one-entry-cache sentinel: no virtual page or line
// address reaches ^0 (pages are addr>>12, lines are 64-byte-aligned
// addresses below the allocator's brk).
const noEntry = ^uint64(0)

// scratch is the working set of one execution attempt. The maps are
// cleared (not reallocated) per attempt, and one-entry caches in front
// of them catch the page/line locality of structure walks — consecutive
// accesses overwhelmingly hit the page and line just touched. Neither
// map is ever iterated, so reuse cannot perturb determinism.
type scratch struct {
	// pages caches completed translations: virtual page -> physical page
	// base (QEI keeps the current translation in the QST entry, so
	// consecutive lines on one page translate once).
	pages    map[uint64]mem.PAddr
	lastPage uint64
	lastBase mem.PAddr
	// fetched records virtual lines staged into the QST data field.
	fetched  map[uint64]bool
	lastLine uint64
	// key stages the query's key bytes for the attempt.
	key []byte
}

// reset prepares the scratch for a new attempt.
func (s *scratch) reset() {
	if s.pages == nil {
		s.pages = make(map[uint64]mem.PAddr, 16)
		s.fetched = make(map[uint64]bool, 32)
	} else {
		clear(s.pages)
		clear(s.fetched)
	}
	s.lastPage = noEntry
	s.lastLine = noEntry
}

// lookupPage consults the one-entry cache, then the map.
func (s *scratch) lookupPage(page uint64) (mem.PAddr, bool) {
	if page == s.lastPage {
		return s.lastBase, true
	}
	base, ok := s.pages[page]
	if ok {
		s.lastPage, s.lastBase = page, base
	}
	return base, ok
}

// storePage records a completed translation.
func (s *scratch) storePage(page uint64, base mem.PAddr) {
	s.pages[page] = base
	s.lastPage, s.lastBase = page, base
}

// markFetched records a staged line.
func (s *scratch) markFetched(line uint64) {
	s.fetched[line] = true
	s.lastLine = line
}

// wasFetched reports whether a line is staged.
func (s *scratch) wasFetched(line uint64) bool {
	return line == s.lastLine || s.fetched[line]
}

// keyBuf returns the scratch's n-byte key buffer, growing it if needed.
func (s *scratch) keyBuf(n int) []byte {
	if cap(s.key) < n {
		s.key = make([]byte, n)
	}
	s.key = s.key[:n]
	return s.key
}

// New builds an accelerator for the given machine, scheme, firmware
// registry, and serving core.
func New(m *machine.Machine, p scheme.Params, reg *cfa.Registry, core int) *Accelerator {
	a := &Accelerator{
		m: m, p: p, reg: reg, core: core,
		results:    make(map[uint64]Result),
		nbInFlight: make(map[uint64]nbRecord),
	}
	for i := 0; i < p.Instances; i++ {
		ins := &instance{
			idx:     i,
			qstRing: make([]uint64, p.QSTEntriesPerInstance),
		}
		switch p.Kind {
		case scheme.CoreIntegrated:
			ins.stop = m.Hier.CoreStop(core)
		case scheme.CHATLB, scheme.CHANoTLB:
			ins.stop = noc.Stop(i) // one per CHA/slice tile
		default:
			// Device schemes occupy a dedicated stop: the last mesh stop
			// (a corner, maximizing average distance — the hotspot).
			ins.stop = noc.Stop(m.Mesh.Stops() - 1)
		}
		if p.Translation == scheme.TransDedicated {
			ins.tlb = tlb.New(p.DedicatedTLB)
			ins.walker = tlb.NewWalker(m.AS, m.Cfg.PageWalkLatency)
		}
		a.inst = append(a.inst, ins)
	}
	a.remoteComp = make([][]uint64, m.Hier.LLC().Slices())
	for i := range a.remoteComp {
		a.remoteComp[i] = make([]uint64, p.ComparatorsPerSite)
	}
	a.localComp = make([][]uint64, p.Instances)
	for i := range a.localComp {
		a.localComp[i] = make([]uint64, p.ComparatorsPerSite)
	}
	return a
}

// ViewForCore returns an accelerator view bound to another issuing core.
// The view SHARES the underlying hardware — QST instances, CEE
// timelines, dedicated TLBs, and comparators — so queries from multiple
// cores contend for the same resources, but it keeps its own result
// bookkeeping and statistics. This models the CHA-based and Device-based
// schemes, whose accelerators are chip-shared (Sec. V); the
// Core-integrated scheme instead instantiates a private accelerator per
// core (use New per core).
func (a *Accelerator) ViewForCore(core int) *Accelerator {
	return &Accelerator{
		m: a.m, p: a.p, reg: a.reg, core: core,
		inst:        a.inst,
		remoteComp:  a.remoteComp,
		localComp:   a.localComp,
		tr:          a.tr,
		remoteOps:   a.remoteOps,
		fi:          a.fi,
		cycleBudget: a.cycleBudget,
		results:     make(map[uint64]Result),
		nbInFlight:  make(map[uint64]nbRecord),
	}
}

// SetFaultInjector attaches the fault-injection harness. The engine arms
// it for the duration of execute — covering QST/CEE work and every
// memory, NoC, TLB, and cache access the query makes — and disarms it
// around host-visible bookkeeping. Dedicated per-instance TLBs
// (CHA-TLB scheme) are wired here; the shared machine components are
// wired by machine.AttachFaultInjection.
func (a *Accelerator) SetFaultInjector(fi *faultinject.Injector) {
	a.fi = fi
	for _, ins := range a.inst {
		if ins.tlb != nil {
			ins.tlb.SetFaultInjector(fi)
		}
	}
}

// SetCycleBudget sets the per-attempt watchdog limit in cycles; once an
// execution attempt has burned that many cycles it aborts with
// ErrQueryTimeout. 0 (the default) disables the watchdog.
func (a *Accelerator) SetCycleBudget(budget uint64) { a.cycleBudget = budget }

// Params returns the scheme configuration.
func (a *Accelerator) Params() scheme.Params { return a.p }

// Stats returns accumulated statistics.
func (a *Accelerator) Stats() Stats { return a.stats }

// Result returns the architectural result recorded for tag.
func (a *Accelerator) Result(tag uint64) (Result, bool) {
	r, ok := a.results[tag]
	return r, ok
}

// pickInstance distributes queries across instances. Following HALO's
// NUCA-aware dispatch, CHA schemes route each query to the instance in
// the CHA that owns the query's first data access — the primary bucket
// for hash structures, the root node otherwise — so that access is
// slice-local. The issuing core can compute this cheaply: for hash
// structures it is the same hash the query needs anyway. Single-instance
// schemes always use instance 0.
func (a *Accelerator) pickInstance(q *isa.QueryDesc) *instance {
	if len(a.inst) == 1 {
		return a.inst[0]
	}
	target := a.firstDataAddr(q)
	pa, err := a.m.AS.Translate(target)
	if err != nil {
		return a.inst[0]
	}
	return a.inst[a.m.Hier.LLC().SliceFor(pa)%len(a.inst)]
}

// pickKeyBuf returns the issue-time key buffer, growing it if needed.
func (a *Accelerator) pickKeyBuf(n int) []byte {
	if cap(a.pickKey) < n {
		a.pickKey = make([]byte, n)
	}
	a.pickKey = a.pickKey[:n]
	return a.pickKey
}

// firstDataAddr computes the first structure address a query touches.
func (a *Accelerator) firstDataAddr(q *isa.QueryDesc) mem.VAddr {
	hdr, err := dstruct.ReadHeader(a.m.AS, q.HeaderAddr)
	if err != nil {
		return q.KeyAddr
	}
	switch hdr.Type {
	case dstruct.TypeCuckoo:
		keyLen := int(hdr.KeyLen)
		if q.KeyLen != 0 {
			keyLen = int(q.KeyLen)
		}
		key := a.pickKeyBuf(keyLen)
		if err := a.m.AS.Read(q.KeyAddr, key); err != nil {
			return q.KeyAddr
		}
		h1, _ := dstruct.CuckooHashes(key, hdr.Aux2, hdr.Aux)
		return dstruct.EntryAddr(hdr, h1, 0)
	case dstruct.TypeHashTable:
		keyLen := int(hdr.KeyLen)
		key := a.pickKeyBuf(keyLen)
		if err := a.m.AS.Read(q.KeyAddr, key); err != nil {
			return q.KeyAddr
		}
		return dstruct.HashBucketSlot(hdr, key)
	default:
		if hdr.Root != 0 {
			return hdr.Root
		}
		return q.KeyAddr
	}
}

// IssueBlocking implements cpu.QueryPort: QUERY_B behaves like a
// long-latency load (Sec. IV-C).
func (a *Accelerator) IssueBlocking(q *isa.QueryDesc, issue uint64) (uint64, error) {
	ins := a.pickInstance(q)
	arrive := issue + a.p.PortOverhead + a.requestHop(ins, 16, issue+a.p.PortOverhead)
	finish := a.execute(ins, q, arrive)
	ret := finish + a.p.ReplyOverhead + a.responseHop(ins, 16, finish+a.p.ReplyOverhead)
	if r, ok := a.results[q.Tag]; ok {
		r.Done = ret
		a.results[q.Tag] = r
	}
	return ret, nil
}

// IssueNonBlocking implements cpu.QueryPort: QUERY_NB behaves like a
// store and retires once the accelerator accepts it; the result is
// written to q.ResultAddr when the query completes (Sec. IV-A).
func (a *Accelerator) IssueNonBlocking(q *isa.QueryDesc, issue uint64) (uint64, error) {
	if q.ResultAddr == 0 {
		return 0, fmt.Errorf("qei: non-blocking query %d without result address", q.Tag)
	}
	ins := a.pickInstance(q)
	arrive := issue + a.p.PortOverhead + a.requestHop(ins, 24, issue+a.p.PortOverhead)
	accepted := arrive + 1
	a.stats.NonBlocking++
	finish := a.execute(ins, q, arrive)
	// Write the result (flag+value, one line) to the designated address.
	r := a.results[q.Tag]
	wlat, err := a.dataAccess(ins, q.ResultAddr, cache.Write, finish, nil)
	if err == nil {
		var buf [16]byte
		flag := uint64(1) // completion flag
		if r.Fault != nil {
			flag = 0xEE // error code visible to polling software
		} else if r.Found {
			flag = 3
		}
		putLE(buf[0:8], flag)
		putLE(buf[8:16], r.Value)
		a.m.AS.MustWrite(q.ResultAddr, buf[:])
	}
	r.Done = finish + wlat
	a.results[q.Tag] = r
	a.nbInFlight[q.Tag] = nbRecord{done: r.Done, resultAddr: q.ResultAddr}
	return accepted, nil
}

// nbRecord tracks one in-flight non-blocking query for interrupt flushes.
type nbRecord struct {
	done       uint64
	resultAddr mem.VAddr
}

// Capacity returns the total number of QST entries across instances —
// the architectural bound on outstanding non-blocking queries.
func (a *Accelerator) Capacity() int {
	return a.p.QSTEntriesPerInstance * a.p.Instances
}

// InFlightNB counts non-blocking queries still executing at cycle at,
// pruning records of queries that have already completed.
func (a *Accelerator) InFlightNB(at uint64) int {
	n := 0
	for tag, rec := range a.nbInFlight {
		if rec.done > at {
			n++
		} else {
			delete(a.nbInFlight, tag)
		}
	}
	return n
}

// NextNBDone returns the earliest completion cycle among non-blocking
// queries still executing at cycle at. ok is false when none are.
func (a *Accelerator) NextNBDone(at uint64) (uint64, bool) {
	var min uint64
	ok := false
	for _, rec := range a.nbInFlight {
		if rec.done > at && (!ok || rec.done < min) {
			min, ok = rec.done, true
		}
	}
	return min, ok
}

// TryIssueNonBlocking is IssueNonBlocking with the architectural QST
// bound enforced at issue time: when every entry is still occupied it
// fails fast with ErrQSTFull instead of modelling back-pressure as
// waiting, so software can run the List-2 drain-and-retry loop.
func (a *Accelerator) TryIssueNonBlocking(q *isa.QueryDesc, issue uint64) (uint64, error) {
	if a.InFlightNB(issue) >= a.Capacity() {
		return 0, fmt.Errorf("%w: %d queries outstanding at cycle %d", ErrQSTFull, a.Capacity(), issue)
	}
	return a.IssueNonBlocking(q, issue)
}

func putLE(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// requestHop charges the NoC transfer from the serving core to the
// instance at cycle at (zero-distance for Core-integrated, whose QST
// sits by the L2).
func (a *Accelerator) requestHop(ins *instance, bytes, at uint64) uint64 {
	if a.p.Kind == scheme.CoreIntegrated {
		return 0
	}
	return a.m.Mesh.SendAt(a.m.Hier.CoreStop(a.core), ins.stop, bytes, at)
}

func (a *Accelerator) responseHop(ins *instance, bytes, at uint64) uint64 {
	if a.p.Kind == scheme.CoreIntegrated {
		return 0
	}
	return a.m.Mesh.SendAt(ins.stop, a.m.Hier.CoreStop(a.core), bytes, at)
}

// translate resolves a virtual address on the scheme's translation path
// starting at cycle at, using the attempt's page cache (QEI keeps the
// current translation in the QST entry, so consecutive lines on one page
// translate once).
func (a *Accelerator) translate(ins *instance, addr mem.VAddr, at uint64, sc *scratch) (mem.PAddr, uint64, error) {
	page := addr.Page()
	if base, ok := sc.lookupPage(page); ok {
		return base | mem.PAddr(addr.Offset()), 0, nil
	}
	var pa mem.PAddr
	var lat uint64
	var err error
	switch a.p.Translation {
	case scheme.TransL2TLB:
		pa, lat, err = a.m.TLB[a.core].TranslateL2At(addr, at)
	case scheme.TransDedicated:
		if hit, hl := ins.tlb.Lookup(addr); hit {
			pa, err = a.m.AS.Translate(addr)
			lat = hl
		} else {
			var wl uint64
			probe := ins.tlb.Config().HitLatency
			pa, wl, err = ins.walker.WalkAt(addr, at+probe)
			lat = probe + wl
			if err == nil {
				ins.tlb.Insert(addr)
			}
		}
	case scheme.TransCoreMMU:
		// Round trip to the core's MMU across the mesh plus the MMU's
		// request-port handling, then its L2-TLB path (Sec. V: "adds
		// extra round-trip latency to each access and eats into the
		// performance benefits").
		const mmuPortCost = 12
		rt := a.m.Mesh.RoundTrip(ins.stop, a.m.Hier.CoreStop(a.core)) + mmuPortCost
		pa, lat, err = a.m.TLB[a.core].TranslateL2At(addr, at+rt)
		lat += rt
	}
	if err != nil {
		return 0, lat, err
	}
	sc.storePage(page, pa&^(mem.PageSize-1))
	a.stats.TranslationCycles += lat
	return pa, lat, nil
}

// dataAccess performs one cacheline access on the scheme's data path and
// returns its latency. sc may be nil for one-off accesses, which then
// run against an empty page cache (cold-translation timing).
func (a *Accelerator) dataAccess(ins *instance, addr mem.VAddr, kind cache.AccessKind, at uint64, sc *scratch) (uint64, error) {
	if sc == nil {
		a.oneOffSc.reset()
		sc = &a.oneOffSc
	}
	pa, tlat, err := a.translate(ins, addr, at, sc)
	if err != nil {
		return tlat, err
	}
	var r cache.Result
	switch a.p.Data {
	case scheme.DataViaL2:
		r = a.m.Hier.L2AccessAt(a.core, pa, kind, at+tlat)
	case scheme.DataViaLLC:
		r = a.m.Hier.LLCAccessFromAt(ins.stop, pa, kind, at+tlat)
	}
	lat := tlat + r.Latency + a.p.ExtraDataLatency
	a.stats.DataAccessCycles += r.Latency + a.p.ExtraDataLatency
	return lat, nil
}

// bookComparator reserves a comparator unit at site, returning when the
// compare may start given its operands are ready at t.
//
// The simulator computes overlapping queries one at a time, so a strict
// monotonic next-free timeline would let an early-computed query reserve
// slots far in the future and falsely serialize everything behind it.
// Contention is instead modelled locally: if every unit at the site is
// busy in the window around t, the compare queues for one busy period —
// a bounded penalty that matches the sparse per-query comparator usage.
func bookComparator(units []uint64, t, busy uint64) uint64 {
	best := -1
	for i := range units {
		if units[i] <= t {
			if best == -1 || units[i] < units[best] {
				best = i
			}
		}
	}
	if best >= 0 {
		units[best] = t + busy
		return t
	}
	// All units busy at t: wait one busy period on the unit that frees
	// soonest within the window.
	best = 0
	for i := 1; i < len(units); i++ {
		if units[i] < units[best] {
			best = i
		}
	}
	start := t + busy
	units[best] = start + busy
	return start
}

// compareCycles is the comparator cost: 64-bit comparisons per cycle
// (Sec. IV-B).
func compareCycles(bytes uint64) uint64 {
	c := (bytes + 7) / 8
	if c == 0 {
		c = 1
	}
	return c
}

// execute runs one query through the QST/CEE/DPU starting at arrival
// cycle t0, returning the completion cycle at the accelerator. It owns
// the architectural recovery loop: an attempt that faults while fault
// injection fired is transient, and the QST entry retries the walk from
// the root with exponential cycle backoff (Sec. IV-D replayability);
// persistent faults surface architecturally after retryLimit attempts.
func (a *Accelerator) execute(ins *instance, qd *isa.QueryDesc, t0 uint64) uint64 {
	a.stats.Queries++
	if a.stats.FirstIssue == 0 || t0 < a.stats.FirstIssue {
		a.stats.FirstIssue = t0
	}

	// QST allocation: wait for the oldest entry to free (Sec. IV-B —
	// software must not overflow the QST; the engine models back-pressure
	// as waiting).
	slot := ins.qstSeq % uint64(len(ins.qstRing))
	start := t0
	if free := ins.qstRing[slot]; free > start {
		a.stats.QSTStallCycles += free - start
		start = free
	}
	ins.qstSeq++

	// Fault injection fires only while the accelerator itself runs, so
	// structure builders, fallback execution, and result polling stay
	// exact.
	a.fi.Arm()
	defer a.fi.Disarm()

	t := start
	var res Result
	for attempt := 0; ; attempt++ {
		injBefore := a.fi.Injected()
		res, t = a.attempt(ins, qd, t)
		if res.Fault == nil {
			break
		}
		// A fault with injections during the attempt is transient; retry
		// from the root after a backoff. Faults with no injection are
		// persistent (bad pointer, bad firmware) — retrying cannot help.
		if a.fi.Injected() == injBefore || attempt >= retryLimit {
			a.stats.Exceptions++
			if errors.Is(res.Fault, ErrQueryTimeout) {
				a.stats.Timeouts++
			}
			break
		}
		a.stats.Retries++
		t += retryBackoffBase << uint(attempt)
	}

	res.Done = t
	a.results[qd.Tag] = res
	ins.qstRing[slot] = t
	a.noteFinish(start, t)
	a.recordSpan(Span{Tag: qd.Tag, Start: start, End: t,
		Instance: a.instanceIndex(ins), Slot: int(slot), Fault: res.Fault != nil})
	return t
}

// corrupt wraps a guest-access error as an architectural structure
// fault: the pointer or bytes the accelerator followed did not describe
// a valid structure.
func corrupt(err error) error {
	return fmt.Errorf("%w: %w", ErrStructCorrupt, err)
}

// cfaConfig is the complete mutable configuration of a CFA walk: the
// automaton state plus the QST cursor. Step is deterministic given this
// tuple and guest memory, and guest memory is static during a query —
// so an exactly repeated configuration proves an infinite pointer
// cycle. Matches can only grow, so its length stands in for it.
type cfaConfig struct {
	state      cfa.StateID
	node, alt  mem.VAddr
	level, pos int
	matches    int
}

func configOf(state cfa.StateID, q *cfa.Query) cfaConfig {
	return cfaConfig{state: state, node: q.Node, alt: q.AltNode,
		level: q.Level, pos: q.Pos, matches: len(q.Matches)}
}

// safeStep invokes the firmware handler with a panic barrier: firmware
// is untrusted input, and a handler that panics (out-of-range index,
// nil deref) must become an architectural fault, not a process crash.
func safeStep(prog cfa.Program, q *cfa.Query, state cfa.StateID) (req cfa.Request, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: firmware %s panicked in state %d: %v",
				cfa.ErrInvalidProgram, prog.Name(), state, r)
		}
	}()
	return prog.Step(q, state), nil
}

// attempt runs one execution attempt of a query starting at cycle
// start, returning the architectural result (res.Fault != nil on an
// exception) and the cycle the attempt ended. Done is left for the
// caller to stamp.
func (a *Accelerator) attempt(ins *instance, qd *isa.QueryDesc, start uint64) (Result, uint64) {
	t := start
	fail := func(err error) (Result, uint64) {
		return Result{Fault: err}, t
	}

	sc := &a.sc
	sc.reset()

	// Step 1: fetch the metadata header (one line, Sec. IV-C).
	hlat, err := a.dataAccess(ins, qd.HeaderAddr, cache.Read, t, sc)
	a.stats.MemOps++
	a.stats.MemLines++
	t += hlat
	if err != nil {
		return fail(corrupt(err))
	}
	sc.markFetched(uint64(qd.HeaderAddr.Line()))
	hdr, err := dstruct.ReadHeader(a.m.AS, qd.HeaderAddr)
	if err != nil {
		return fail(corrupt(err))
	}
	prog, ok := a.reg.Lookup(hdr.Type)
	if !ok {
		return fail(fmt.Errorf("qei: no CFA firmware for type %s", dstruct.TypeName(hdr.Type)))
	}

	keyLen := int(hdr.KeyLen)
	if qd.KeyLen != 0 {
		keyLen = int(qd.KeyLen)
	}
	key := sc.keyBuf(keyLen)
	if err := a.m.AS.Read(qd.KeyAddr, key); err != nil {
		return fail(corrupt(err))
	}

	q := &cfa.Query{
		AS:         a.m.AS,
		HeaderAddr: qd.HeaderAddr,
		Header:     hdr,
		KeyAddr:    qd.KeyAddr,
		Key:        key,
	}

	state := cfa.StateStart
	// Brent's cycle detection over the walk configuration: O(1) memory,
	// catches corrupt structures whose pointers loop (the walk repeats a
	// configuration exactly) long before the transition-count backstop.
	tortoise := configOf(state, q)
	cyclePow, cycleLen := 1, 0
	const maxTransitions = 1 << 20
	for steps := 0; ; steps++ {
		if steps >= maxTransitions {
			return fail(fmt.Errorf("%w: runaway CFA %s after %d transitions",
				ErrQueryTimeout, prog.Name(), maxTransitions))
		}
		// Watchdog: a stuck or wandering walk must not hold its QST slot
		// forever; past the per-attempt cycle budget it aborts
		// architecturally (Sec. IV-D).
		if a.cycleBudget != 0 && t-start >= a.cycleBudget {
			return fail(fmt.Errorf("%w: %d cycles into firmware %s",
				ErrQueryTimeout, t-start, prog.Name()))
		}
		// CEE: each transition occupies the engine for one cycle. The
		// engine is shared by the instance's in-flight queries, but
		// transitions are sparse relative to memory latencies (one per
		// dependent access), so cross-query CEE conflicts contribute at
		// most a cycle or two; we charge the pipeline cycle and a
		// conflict cycle whenever another query booked this same cycle.
		if ins.lastCEECycle == t {
			t++ // conflict: another entry was selected this cycle
		}
		ins.lastCEECycle = t
		t++ // the transition's own CEE cycle
		a.stats.Transitions++

		if a.fi.SpuriousFault() {
			return fail(errSpurious)
		}

		req, err := safeStep(prog, q, state)
		if err != nil {
			return fail(err)
		}

		// Charge the transition's micro-ops.
		var serial uint64
		var parallel uint64
		for _, op := range req.Ops {
			if op.Bytes > cfa.MaxOpBytes {
				return fail(fmt.Errorf("%w: firmware %s op of %d bytes in state %d",
					cfa.ErrInvalidProgram, prog.Name(), op.Bytes, state))
			}
			lat, err := a.chargeOp(ins, op, t, sc, uint64(len(q.Key)))
			if err != nil {
				return fail(corrupt(err))
			}
			serial += lat
			if lat > parallel {
				parallel = lat
			}
		}
		if req.Parallel {
			t += parallel
		} else {
			t += serial
		}

		switch req.Next {
		case cfa.StateDone:
			return Result{Found: req.Found, Value: req.Value, Matches: q.Matches}, t
		case cfa.StateException:
			return fail(req.Fault)
		default:
			state = req.Next
		}

		cur := configOf(state, q)
		if cur == tortoise {
			return fail(fmt.Errorf("%w: pointer cycle in firmware %s (period ≤ %d)",
				ErrStructCorrupt, prog.Name(), cycleLen+1))
		}
		if cycleLen == cyclePow {
			tortoise, cyclePow, cycleLen = cur, cyclePow*2, 0
		}
		cycleLen++
	}
}

func (a *Accelerator) noteFinish(start, finish uint64) {
	if finish > a.stats.LastFinish {
		a.stats.LastFinish = finish
	}
	a.stats.BusyEntryCycles += finish - start
}

// chargeOp computes the latency of one DPU/memory micro-op starting at
// t. keyBytes is the staged key size (remote-compare request payload).
func (a *Accelerator) chargeOp(ins *instance, op cfa.Op, t uint64, sc *scratch, keyBytes uint64) (uint64, error) {
	switch op.Kind {
	case cfa.OpMemRead:
		a.stats.MemOps++
		first := uint64(op.Addr.Line())
		last := uint64((op.Addr + mem.VAddr(op.Bytes) - 1).Line())
		if op.Bytes == 0 {
			last = first
		}
		var maxLat uint64
		for line := first; line <= last; line += mem.LineSize {
			a.stats.MemLines++
			lat, err := a.dataAccess(ins, mem.VAddr(line), cache.Read, t, sc)
			if err != nil {
				return lat, err
			}
			sc.markFetched(line)
			if lat > maxLat {
				maxLat = lat // lines of one micro-op burst in parallel
			}
		}
		return maxLat, nil

	case cfa.OpCompare:
		a.stats.CompareBytes += op.Bytes
		cycles := compareCycles(op.Bytes)
		// Covered by staged data? Then a local DPU comparator suffices
		// ("a small key comparison can be done in one of the DPU if the
		// key is part of the fetched cacheline", Sec. V-A).
		if a.coveredByStaged(op, sc) {
			a.stats.LocalCompares++
			instIdx := a.instanceIndex(ins)
			startC := bookComparator(a.localComp[instIdx], t, cycles)
			return startC + cycles - t, nil
		}
		if a.p.RemoteCompare {
			return a.remoteCompare(ins, op, t, sc, keyBytes, cycles)
		}
		// No remote comparators (device schemes): fetch the operand lines
		// to the accelerator and compare locally.
		fetchLat, err := a.chargeOp(ins, cfa.MemRead(op.Addr, op.Bytes), t, sc, keyBytes)
		if err != nil {
			return fetchLat, err
		}
		a.stats.LocalCompares++
		instIdx := a.instanceIndex(ins)
		startC := bookComparator(a.localComp[instIdx], t+fetchLat, cycles)
		return startC + cycles - t, nil

	case cfa.OpALU:
		a.stats.ALUOps++
		return (op.Bytes + 7) / 8, nil

	case cfa.OpHash:
		a.stats.HashOps++
		return 2 + (op.Bytes+7)/8, nil
	}
	return 0, fmt.Errorf("qei: unknown micro-op kind %d", int(op.Kind))
}

// coveredByStaged reports whether every line of the compare operand has
// already been fetched into the QST's intermediate-data field.
func (a *Accelerator) coveredByStaged(op cfa.Op, sc *scratch) bool {
	if op.Bytes == 0 {
		return true
	}
	first := uint64(op.Addr.Line())
	last := uint64((op.Addr + mem.VAddr(op.Bytes) - 1).Line())
	for line := first; line <= last; line += mem.LineSize {
		if !sc.wasFetched(line) {
			return false
		}
	}
	return true
}

// remoteCompare dispatches the comparison to the CHA owning the operand:
// the key chunk travels to the slice, the comparator reads the data
// in-place from the LLC, and only the outcome returns (Sec. V-A).
// keyBytes is the size of the key payload carried by the request.
func (a *Accelerator) remoteCompare(ins *instance, op cfa.Op, t uint64, sc *scratch, keyBytes uint64, cycles uint64) (uint64, error) {
	pa, tlat, err := a.translate(ins, op.Addr, t, sc)
	if err != nil {
		return tlat, err
	}
	a.stats.RemoteCompares++
	slice := a.m.Hier.LLC().SliceFor(pa)
	sliceStop := a.m.Hier.LLC().StopFor(pa)
	if a.remoteOps != nil {
		a.remoteOps[slice].Inc()
	}
	// Request carries the remote micro-op + the key chunk to compare.
	reqLat := a.m.Mesh.SendAt(ins.stop, sliceStop, 16+keyBytes, t+tlat)
	arrive := t + tlat + reqLat
	// The CHA comparator pulls the operand lines from its own slice.
	var dataLat uint64
	first := uint64(op.Addr.Line())
	last := uint64((op.Addr + mem.VAddr(op.Bytes) - 1).Line())
	for line := first; line <= last; line += mem.LineSize {
		lpa, _, err := a.translate(ins, mem.VAddr(line), arrive, sc)
		if err != nil {
			return 0, err
		}
		r := a.m.Hier.LLCAccessLocalAt(sliceStop, lpa, cache.Read, arrive)
		if r.Latency > dataLat {
			dataLat = r.Latency
		}
	}
	startC := bookComparator(a.remoteComp[slice], arrive+dataLat, cycles)
	// The CHA-resident comparison itself, on the owning slice's track.
	a.tr.Span("cha", "remote_cmp", startC, startC+cycles, trace.PidCHA(slice), 0, nil)
	// Only the 16 B outcome returns — the data stays in the LLC.
	respLat := a.m.Mesh.SendAt(sliceStop, ins.stop, 16, startC+cycles)
	done := startC + cycles + respLat
	return done - t, nil
}

func (a *Accelerator) instanceIndex(ins *instance) int { return ins.idx }

// Flush aborts in-flight non-blocking queries at an interrupt
// (Sec. IV-D): abort codes are written to their result addresses with
// non-temporal stores, and the core may not run handler code until the
// flush completes. It returns the flush latency in cycles.
func (a *Accelerator) Flush(at uint64) uint64 {
	a.stats.Flushes++
	var pending int
	for tag, rec := range a.nbInFlight {
		if rec.done > at {
			pending++
			r := a.results[tag]
			r.Aborted = true
			r.Fault = fmt.Errorf("qei: query %d: %w", tag, ErrAborted)
			a.results[tag] = r
			a.stats.AbortedNB++
			// Abort code at the result address so polling software can
			// restart the query after the interrupt.
			var buf [8]byte
			putLE(buf[:], 0xAB)
			a.m.AS.MustWrite(rec.resultAddr, buf[:])
		}
		delete(a.nbInFlight, tag)
	}
	// Address translation for the pending stores is the critical path;
	// stores coalesce per line (Sec. IV-D).
	lat := uint64(pending) * 2
	if pending > 0 {
		lat += a.m.TLB[a.core].L2.Config().HitLatency
	}
	return lat
}

// ResetNoCWindow is a hook for experiments measuring NoC utilization
// attributable to the accelerator only.
func (a *Accelerator) ResetNoCWindow() {
	a.m.Mesh.ResetTraffic()
}
