package qei

import (
	"fmt"
	"slices"

	"qei/internal/cache"
	"qei/internal/cfa"
	"qei/internal/dstruct"
	"qei/internal/isa"
	"qei/internal/mem"
	"qei/internal/trace"
)

// Level-wise batched execution (the batch optimizer under QueryBatch).
//
// The windowed path runs each query of a batch as an independent QST
// entry: every query pays its own header fetch, address translations,
// and dependent pointer-chase loads. ExecuteBatch instead treats the
// whole batch as ONE batched instruction against one structure and
// advances every query in lock-step rounds — one CFA transition per
// query per round — so that per-round memory traffic can be grouped
// across the batch, in the spirit of level-wise B+-tree batch search on
// FPGAs:
//
//   - the structure header is fetched once per batch, not per query;
//   - each round's node lines are deduplicated across queries and
//     issued in ascending-address streaming order, one line per cycle;
//   - translations are shared batch-wide: one TLB/page-walk per
//     distinct page per batch instead of per query (the QST entry's
//     page cache covers the whole batch);
//   - duplicate keys are coalesced onto a single representative walk;
//   - programs that opt into cfa.BatchProgram restructure a fan-out
//     transition into phased rounds (cuckoo probes all primary buckets
//     in one round, the misses' alternative buckets in the next).
//
// Functional behaviour is anchored to the per-query path by
// construction: the engine drives the SAME firmware transitions over
// the same guest memory, and any query that deviates from the clean
// walk — injected fault, watchdog, structural anomaly, firmware
// exception — is handed back (deferred) to the caller, who re-executes
// it on the unchanged per-query path with its full retry/fallback
// ladder. A batched query therefore either completes with exactly the
// per-query result or is never resolved by the batch engine at all.
const batchMaxTransitions = 1 << 20

// batchCursor is the lock-step walk state of one representative query.
type batchCursor struct {
	idx   int // position in the submitted batch
	qd    *isa.QueryDesc
	q     *cfa.Query
	state cfa.StateID
	res   Result
	// pages are the virtual pages this query touched — the translations
	// the per-query path would have paid for (saved-translation
	// accounting).
	pages map[uint64]bool
	// Brent's cycle detection over the walk configuration, as in the
	// per-query attempt loop.
	tortoise cfaConfig
	cyclePow int
	cycleLen int
	steps    int
	done     bool
	deferred bool
	// dups are batch positions of duplicate keys coalesced onto this
	// walk.
	dups []int
}

// ExecuteBatch runs a batch of queries against one structure (all
// descriptors share HeaderAddr) through the level-wise engine, starting
// at issue. Every descriptor must carry a ResultAddr; results are
// recorded under each descriptor's Tag and written to its ResultAddr
// exactly as the non-blocking path does. It returns the cycle the
// batched instruction completed and the batch positions of queries the
// engine deferred to the per-query path.
func (a *Accelerator) ExecuteBatch(qds []*isa.QueryDesc, issue uint64) (uint64, []int, error) {
	if len(qds) == 0 {
		return issue, nil, nil
	}
	for _, qd := range qds {
		if qd.ResultAddr == 0 {
			return 0, nil, fmt.Errorf("qei: batched query %d without result address", qd.Tag)
		}
		if qd.HeaderAddr != qds[0].HeaderAddr {
			return 0, nil, fmt.Errorf("qei: batched query %d targets a different structure", qd.Tag)
		}
	}

	ins := a.pickInstance(qds[0])
	a.stats.BatchBatches++

	// One batched issue transaction carries every descriptor.
	payload := 24 * uint64(len(qds))
	arrive := issue + a.p.PortOverhead + a.requestHop(ins, payload, issue+a.p.PortOverhead)
	if a.stats.FirstIssue == 0 || arrive < a.stats.FirstIssue {
		a.stats.FirstIssue = arrive
	}

	// The batch occupies one QST entry for its whole duration.
	slot := ins.qstSeq % uint64(len(ins.qstRing))
	start := arrive
	if free := ins.qstRing[slot]; free > start {
		a.stats.QSTStallCycles += free - start
		start = free
	}
	ins.qstSeq++

	a.fi.Arm()
	defer a.fi.Disarm()

	sc := &a.sc
	sc.reset()
	// batchPages tracks pages translated (or queued for translation) by
	// the batch so far; a query touching one of them saved a translation
	// the per-query path would have performed.
	batchPages := make(map[uint64]bool, 64)
	touchPage := func(pages map[uint64]bool, line uint64) {
		page := mem.VAddr(line).Page()
		if pages != nil {
			if pages[page] {
				return
			}
			pages[page] = true
		}
		if batchPages[page] {
			a.stats.BatchTranslationsSaved++
		} else {
			batchPages[page] = true
		}
	}

	deferAll := func(t uint64) (uint64, []int, error) {
		all := make([]int, len(qds))
		for i := range qds {
			all[i] = i
		}
		a.stats.BatchDeferred += uint64(len(all))
		ins.qstRing[slot] = t
		a.noteFinish(start, t)
		return t, all, nil
	}

	// The structure header is fetched ONCE for the whole batch.
	t := start
	hlat, err := a.dataAccess(ins, qds[0].HeaderAddr, cache.Read, t, sc)
	a.stats.MemOps++
	a.stats.MemLines++
	t += hlat
	if err != nil {
		return deferAll(t)
	}
	sc.markFetched(uint64(qds[0].HeaderAddr.Line()))
	hdr, err := dstruct.ReadHeader(a.m.AS, qds[0].HeaderAddr)
	if err != nil {
		return deferAll(t)
	}
	prog, ok := a.reg.Lookup(hdr.Type)
	if !ok {
		return deferAll(t)
	}
	step := cfa.BatchStepper(prog)
	for _, qd := range qds {
		touchPage(nil, uint64(qd.HeaderAddr.Line()))
	}

	// Stage the keys and coalesce duplicates onto representative walks.
	var cursors []*batchCursor
	repOf := make(map[string]*batchCursor, len(qds))
	cursorAt := make([]*batchCursor, len(qds)) // rep resolving each position
	var deferred []int
	for i, qd := range qds {
		keyLen := int(hdr.KeyLen)
		if qd.KeyLen != 0 {
			keyLen = int(qd.KeyLen)
		}
		key := make([]byte, keyLen)
		if err := a.m.AS.Read(qd.KeyAddr, key); err != nil {
			deferred = append(deferred, i)
			continue
		}
		if rep, ok := repOf[string(key)]; ok {
			rep.dups = append(rep.dups, i)
			cursorAt[i] = rep
			a.stats.BatchCoalescedProbes++
			continue
		}
		c := &batchCursor{
			idx: i,
			qd:  qd,
			q: &cfa.Query{
				AS:         a.m.AS,
				HeaderAddr: qd.HeaderAddr,
				Header:     hdr,
				KeyAddr:    qd.KeyAddr,
				Key:        key,
			},
			state: cfa.StateStart,
			pages: make(map[uint64]bool, 8),
		}
		c.tortoise = configOf(c.state, c.q)
		c.cyclePow = 1
		repOf[string(key)] = c
		cursorAt[i] = c
		cursors = append(cursors, c)
	}

	active := cursors
	round := 0
	for len(active) > 0 {
		round++
		a.stats.BatchLevels++
		roundStart := t

		// Phase 1: CEE transitions, one active query per cycle. Compute
		// micro-ops (compares, hashes, ALU) operate on data staged by the
		// previous round and are charged at the query's transition slot;
		// memory reads are collected for the batched fetch phase.
		var lines []uint64
		lineSeen := make(map[uint64]bool, 64)
		lineOwners := make(map[uint64][]*batchCursor, 64)
		next := make([]*batchCursor, 0, len(active))
		computeEnd := t
		for k, c := range active {
			ceeT := t + uint64(k)
			c.steps++
			if c.steps >= batchMaxTransitions ||
				(a.cycleBudget != 0 && ceeT-start >= a.cycleBudget) {
				c.deferred = true
				continue
			}
			if a.fi.SpuriousFault() {
				c.deferred = true
				continue
			}
			ins.lastCEECycle = ceeT
			a.stats.Transitions++
			req, err := safeBatchStep(step, prog, c.q, c.state)
			if err != nil {
				c.deferred = true
				continue
			}

			var serial, parallel uint64
			for _, op := range req.Ops {
				if op.Bytes > cfa.MaxOpBytes {
					c.deferred = true
					break
				}
				if op.Kind == cfa.OpMemRead {
					a.stats.MemOps++
					first := uint64(op.Addr.Line())
					last := uint64((op.Addr + mem.VAddr(op.Bytes) - 1).Line())
					if op.Bytes == 0 {
						last = first
					}
					for line := first; line <= last; line += mem.LineSize {
						touchPage(c.pages, line)
						if sc.wasFetched(line) {
							// Staged by an earlier round; the QST batch
							// entry still holds it.
							a.stats.BatchLinesDeduped++
							continue
						}
						if lineSeen[line] {
							a.stats.BatchLinesDeduped++
						} else {
							lineSeen[line] = true
							lines = append(lines, line)
						}
						lineOwners[line] = append(lineOwners[line], c)
					}
					continue
				}
				if op.Kind == cfa.OpCompare && !a.coveredByStaged(op, sc) {
					// The per-query path translates the remote operand per
					// query; the batch shares the page cache.
					first := uint64(op.Addr.Line())
					last := uint64((op.Addr + mem.VAddr(op.Bytes) - 1).Line())
					if op.Bytes == 0 {
						last = first
					}
					for line := first; line <= last; line += mem.LineSize {
						touchPage(c.pages, line)
					}
				}
				lat, err := a.chargeOp(ins, op, ceeT+1, sc, uint64(len(c.q.Key)))
				if err != nil {
					c.deferred = true
					break
				}
				serial += lat
				if lat > parallel {
					parallel = lat
				}
			}
			if c.deferred {
				continue
			}
			opsLat := serial
			if req.Parallel {
				opsLat = parallel
			}
			if end := ceeT + 1 + opsLat; end > computeEnd {
				computeEnd = end
			}

			switch req.Next {
			case cfa.StateDone:
				c.res = Result{Found: req.Found, Value: req.Value, Matches: c.q.Matches}
				c.done = true
			case cfa.StateException:
				// Architectural faults go through the per-query path so the
				// full retry/backoff/fallback ladder applies.
				c.deferred = true
			default:
				c.state = req.Next
				cur := configOf(c.state, c.q)
				if cur == c.tortoise {
					c.deferred = true // pointer cycle: per-query path reports it
					continue
				}
				if c.cycleLen == c.cyclePow {
					c.tortoise, c.cyclePow, c.cycleLen = cur, c.cyclePow*2, 0
				}
				c.cycleLen++
				next = append(next, c)
			}
		}

		// Phase 2: the round's fetch set, deduplicated above, streams in
		// ascending address order at one line per cycle; each distinct
		// page translates once batch-wide.
		slices.Sort(lines)
		fetchStart := t + uint64(len(active))
		fetchEnd := fetchStart
		for j, line := range lines {
			at := fetchStart + uint64(j)
			lat, err := a.dataAccess(ins, mem.VAddr(line), cache.Read, at, sc)
			a.stats.MemLines++
			if err != nil {
				for _, c := range lineOwners[line] {
					c.deferred = true
				}
				continue
			}
			sc.markFetched(line)
			if end := at + lat; end > fetchEnd {
				fetchEnd = end
			}
		}
		if computeEnd > fetchEnd {
			t = computeEnd
		} else {
			t = fetchEnd
		}

		if a.tr != nil {
			a.tr.Span("qst", fmt.Sprintf("batch/level%d", round), roundStart, t,
				trace.PidQST(a.instanceIndex(ins)), int(slot), nil)
		}

		// next is freshly allocated each round, so filtering it in place
		// cannot alias the cursors list.
		filtered := next[:0]
		for _, c := range next {
			if !c.deferred && !c.done {
				filtered = append(filtered, c)
			}
		}
		active = filtered
	}

	// Result writeback: one 16-byte flag+value record per query
	// (duplicates included), streamed in ascending address order — the
	// same encoding the non-blocking path uses, so polling software sees
	// no difference.
	type wreq struct {
		addr mem.VAddr
		tag  uint64
		c    *batchCursor
		dup  bool
	}
	var writes []wreq
	for _, c := range cursors {
		if c.deferred || !c.done {
			continue
		}
		writes = append(writes, wreq{addr: c.qd.ResultAddr, tag: c.qd.Tag, c: c})
		for _, di := range c.dups {
			writes = append(writes, wreq{addr: qds[di].ResultAddr, tag: qds[di].Tag, c: c, dup: true})
		}
	}
	slices.SortFunc(writes, func(x, y wreq) int {
		switch {
		case x.addr < y.addr:
			return -1
		case x.addr > y.addr:
			return 1
		}
		return 0
	})
	batchDone := t
	for j, w := range writes {
		at := t + uint64(j)
		if w.dup {
			touchPage(nil, uint64(w.addr.Line()))
		} else {
			touchPage(w.c.pages, uint64(w.addr.Line()))
		}
		wlat, err := a.dataAccess(ins, w.addr, cache.Write, at, sc)
		if err == nil {
			var buf [16]byte
			flag := uint64(1)
			if w.c.res.Found {
				flag = 3
			}
			putLE(buf[0:8], flag)
			putLE(buf[8:16], w.c.res.Value)
			a.m.AS.MustWrite(w.addr, buf[:])
		}
		res := w.c.res
		res.Done = at + wlat
		a.results[w.tag] = res
		a.stats.Queries++
		a.stats.BatchQueries++
		if res.Done > batchDone {
			batchDone = res.Done
		}
		a.recordSpan(Span{Tag: w.tag, Start: start, End: res.Done,
			Instance: a.instanceIndex(ins), Slot: int(slot)})
	}

	ins.qstRing[slot] = batchDone
	a.noteFinish(start, batchDone)

	// Deferred positions, in submission order: representatives that
	// deviated plus duplicates riding on a deviated representative.
	for i := range qds {
		c := cursorAt[i]
		if c == nil {
			continue // key staging failed; already recorded
		}
		if c.deferred || !c.done {
			deferred = append(deferred, i)
		}
	}
	slices.Sort(deferred)
	a.stats.BatchDeferred += uint64(len(deferred))
	return batchDone, deferred, nil
}

// safeBatchStep invokes the batch-mode stepping function under the same
// panic barrier as the per-query safeStep.
func safeBatchStep(step func(*cfa.Query, cfa.StateID) cfa.Request, prog cfa.Program,
	q *cfa.Query, state cfa.StateID) (req cfa.Request, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: firmware %s panicked in state %d: %v",
				cfa.ErrInvalidProgram, prog.Name(), state, r)
		}
	}()
	return step(q, state), nil
}
