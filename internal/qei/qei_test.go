package qei

import (
	"math/rand"
	"testing"

	"qei/internal/cfa"
	"qei/internal/dstruct"
	"qei/internal/isa"
	"qei/internal/machine"
	"qei/internal/mem"
	"qei/internal/scheme"
)

func genKeys(n, keyLen int, seed int64) ([][]byte, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	keys := make([][]byte, 0, n)
	vals := make([]uint64, 0, n)
	for len(keys) < n {
		k := make([]byte, keyLen)
		rng.Read(k)
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		keys = append(keys, k)
		vals = append(vals, uint64(len(keys))*17+3)
	}
	return keys, vals
}

func stage(m *machine.Machine, key []byte) mem.VAddr {
	a := m.AS.AllocLines(uint64(len(key)))
	m.AS.MustWrite(a, key)
	return a
}

func newAccel(t *testing.T, k scheme.Kind) (*machine.Machine, *Accelerator) {
	t.Helper()
	m := machine.NewDefault()
	return m, New(m, scheme.ForKind(k), cfa.DefaultRegistry(), 3)
}

func TestBlockingQueryCorrectAllSchemes(t *testing.T) {
	for _, k := range scheme.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			m, a := newAccel(t, k)
			keys, vals := genKeys(200, 16, 1)
			ht := dstruct.BuildCuckoo(m.AS, 128, 4, 7, keys, vals)
			cycle := uint64(100)
			for i, key := range keys {
				qd := &isa.QueryDesc{
					HeaderAddr: ht.HeaderAddr,
					KeyAddr:    stage(m, key),
					Tag:        uint64(i),
				}
				done, err := a.IssueBlocking(qd, cycle)
				if err != nil {
					t.Fatal(err)
				}
				if done <= cycle {
					t.Fatalf("query %d completed at %d, issued at %d", i, done, cycle)
				}
				r, ok := a.Result(uint64(i))
				if !ok || !r.Found || r.Value != vals[i] {
					t.Fatalf("query %d result = %+v, want value %d", i, r, vals[i])
				}
				cycle = done
			}
		})
	}
}

func TestAllStructuresThroughAccelerator(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(100, 16, 2)
	headers := map[string]mem.VAddr{
		"linkedlist": dstruct.BuildLinkedList(m.AS, keys[:20], vals[:20]).HeaderAddr,
		"hashtable":  dstruct.BuildHashTable(m.AS, 32, 3, keys, vals).HeaderAddr,
		"cuckoo":     dstruct.BuildCuckoo(m.AS, 64, 4, 3, keys, vals).HeaderAddr,
		"skiplist":   dstruct.BuildSkipList(m.AS, 3, keys, vals).HeaderAddr,
		"bst":        dstruct.BuildBST(m.AS, 3, 64, keys, vals).HeaderAddr,
	}
	tag := uint64(0)
	for name, hdr := range headers {
		n := len(keys)
		if name == "linkedlist" {
			n = 20
		}
		for i := 0; i < n; i++ {
			qd := &isa.QueryDesc{HeaderAddr: hdr, KeyAddr: stage(m, keys[i]), Tag: tag}
			if _, err := a.IssueBlocking(qd, 10); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			r, _ := a.Result(tag)
			if !r.Found || r.Value != vals[i] {
				t.Fatalf("%s key %d: %+v want %d", name, i, r, vals[i])
			}
			tag++
		}
	}
}

func TestTrieScanThroughAccelerator(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	kws := [][]byte{[]byte("attack"), []byte("root"), []byte("admin")}
	tr := dstruct.BuildTrie(m.AS, kws, []uint64{1, 2, 3})
	input := []byte("GET /rootkit?admin=1")
	want, err := dstruct.ScanTrieRef(m.AS, tr.HeaderAddr, input)
	if err != nil {
		t.Fatal(err)
	}
	qd := &isa.QueryDesc{
		HeaderAddr: tr.HeaderAddr,
		KeyAddr:    stage(m, input),
		KeyLen:     uint32(len(input)),
		Tag:        77,
	}
	if _, err := a.IssueBlocking(qd, 0); err != nil {
		t.Fatal(err)
	}
	r, _ := a.Result(77)
	if len(r.Matches) != len(want) {
		t.Fatalf("matches %v, want %v", r.Matches, want)
	}
}

func TestOverlappingQueriesBeatSerial(t *testing.T) {
	// Ten independent queries issued back-to-back must finish far sooner
	// than ten queries issued serially (QST MLP, Sec. IV-B).
	build := func() (*machine.Machine, *Accelerator, []mem.VAddr, mem.VAddr) {
		m, a := newAccel(t, scheme.CoreIntegrated)
		keys, vals := genKeys(2000, 32, 3)
		sl := dstruct.BuildSkipList(m.AS, 3, keys, vals)
		var kaddrs []mem.VAddr
		for i := 0; i < 10; i++ {
			kaddrs = append(kaddrs, stage(m, keys[i*20]))
		}
		return m, a, kaddrs, sl.HeaderAddr
	}

	// Overlapped: all issued at cycle 0.
	_, a1, kaddrs1, hdr1 := build()
	var lastOverlap uint64
	for i, ka := range kaddrs1 {
		done, err := a1.IssueBlocking(&isa.QueryDesc{HeaderAddr: hdr1, KeyAddr: ka, Tag: uint64(i)}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if done > lastOverlap {
			lastOverlap = done
		}
	}

	// Serial: each issued after the previous finishes.
	_, a2, kaddrs2, hdr2 := build()
	var cycle uint64
	for i, ka := range kaddrs2 {
		done, err := a2.IssueBlocking(&isa.QueryDesc{HeaderAddr: hdr2, KeyAddr: ka, Tag: uint64(i)}, cycle)
		if err != nil {
			t.Fatal(err)
		}
		cycle = done
	}

	if lastOverlap >= cycle {
		t.Fatalf("overlapped makespan %d not better than serial %d", lastOverlap, cycle)
	}
	if float64(cycle)/float64(lastOverlap) < 1.5 {
		t.Fatalf("overlap speedup only %.2fx; QST should extract real MLP", float64(cycle)/float64(lastOverlap))
	}
}

func TestQSTBackPressure(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(500, 32, 4)
	sl := dstruct.BuildSkipList(m.AS, 7, keys, vals)
	// Issue 50 queries at cycle 0 against a 10-entry QST: stalls must occur.
	for i := 0; i < 50; i++ {
		qd := &isa.QueryDesc{HeaderAddr: sl.HeaderAddr, KeyAddr: stage(m, keys[i*5]), Tag: uint64(i)}
		if _, err := a.IssueBlocking(qd, 0); err != nil {
			t.Fatal(err)
		}
	}
	if a.Stats().QSTStallCycles == 0 {
		t.Fatal("50 simultaneous queries against QST=10 recorded no stalls")
	}
}

func TestNonBlockingWritesResult(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(50, 16, 5)
	ck := dstruct.BuildCuckoo(m.AS, 64, 4, 9, keys, vals)
	resAddr := m.AS.AllocLines(64)
	qd := &isa.QueryDesc{
		HeaderAddr: ck.HeaderAddr,
		KeyAddr:    stage(m, keys[7]),
		ResultAddr: resAddr,
		Tag:        7,
	}
	accepted, err := a.IssueNonBlocking(qd, 100)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := a.Result(7)
	if accepted >= r.Done {
		t.Fatalf("accepted at %d, result done at %d — acceptance must precede completion", accepted, r.Done)
	}
	if !r.Found || r.Value != vals[7] {
		t.Fatalf("result %+v, want %d", r, vals[7])
	}
	// The completion flag and value must be visible in memory (polling).
	flag, err := m.AS.ReadU64(resAddr)
	if err != nil {
		t.Fatal(err)
	}
	if flag != 3 {
		t.Fatalf("completion flag = %d, want 3 (found)", flag)
	}
	val, _ := m.AS.ReadU64(resAddr + 8)
	if val != vals[7] {
		t.Fatalf("polled value = %d, want %d", val, vals[7])
	}
}

func TestNonBlockingRejectsMissingResultAddr(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(5, 16, 6)
	ck := dstruct.BuildCuckoo(m.AS, 16, 4, 9, keys, vals)
	qd := &isa.QueryDesc{HeaderAddr: ck.HeaderAddr, KeyAddr: stage(m, keys[0])}
	if _, err := a.IssueNonBlocking(qd, 0); err == nil {
		t.Fatal("non-blocking query without result address accepted")
	}
}

func TestExceptionOnUnmappedStructure(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	// A header whose root points into unmapped memory.
	hdr := dstruct.WriteHeader(m.AS, dstruct.Header{
		Root: 0xdead0000, Type: dstruct.TypeLinkedList, KeyLen: 8, Size: 1,
	})
	key := stage(m, make([]byte, 8))
	done, err := a.IssueBlocking(&isa.QueryDesc{HeaderAddr: hdr, KeyAddr: key, Tag: 1}, 0)
	if err != nil {
		t.Fatalf("exception should be architectural, not a simulator error: %v", err)
	}
	if done == 0 {
		t.Fatal("exception query has no completion cycle")
	}
	r, _ := a.Result(1)
	if r.Fault == nil {
		t.Fatal("fault not recorded in result")
	}
	if a.Stats().Exceptions != 1 {
		t.Fatalf("Exceptions = %d, want 1", a.Stats().Exceptions)
	}
}

func TestFlushAbortsInFlightNB(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(50, 16, 7)
	ck := dstruct.BuildCuckoo(m.AS, 64, 4, 9, keys, vals)
	resAddr := m.AS.AllocLines(64)
	qd := &isa.QueryDesc{
		HeaderAddr: ck.HeaderAddr, KeyAddr: stage(m, keys[3]),
		ResultAddr: resAddr, Tag: 3,
	}
	if _, err := a.IssueNonBlocking(qd, 0); err != nil {
		t.Fatal(err)
	}
	// Interrupt arrives at cycle 1, long before completion.
	lat := a.Flush(1)
	if lat == 0 {
		t.Fatal("flush with pending NB queries should cost cycles")
	}
	r, _ := a.Result(3)
	if !r.Aborted {
		t.Fatal("in-flight NB query not aborted")
	}
	code, _ := m.AS.ReadU64(resAddr)
	if code != 0xAB {
		t.Fatalf("abort code = %#x, want 0xAB", code)
	}
	if a.Stats().AbortedNB != 1 {
		t.Fatalf("AbortedNB = %d", a.Stats().AbortedNB)
	}
}

func TestFlushAfterCompletionIsFree(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(10, 16, 8)
	ck := dstruct.BuildCuckoo(m.AS, 16, 4, 9, keys, vals)
	resAddr := m.AS.AllocLines(64)
	qd := &isa.QueryDesc{HeaderAddr: ck.HeaderAddr, KeyAddr: stage(m, keys[0]), ResultAddr: resAddr, Tag: 0}
	if _, err := a.IssueNonBlocking(qd, 0); err != nil {
		t.Fatal(err)
	}
	r, _ := a.Result(0)
	if lat := a.Flush(r.Done + 100); lat != 0 {
		t.Fatalf("flush after completion cost %d cycles, want 0", lat)
	}
	if r2, _ := a.Result(0); r2.Aborted {
		t.Fatal("completed query marked aborted")
	}
}

func TestCoreIntegratedAvoidsL1Pollution(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(400, 32, 9)
	sl := dstruct.BuildSkipList(m.AS, 3, keys, vals)
	for i := 0; i < 100; i++ {
		qd := &isa.QueryDesc{HeaderAddr: sl.HeaderAddr, KeyAddr: stage(m, keys[i*3]), Tag: uint64(i)}
		if _, err := a.IssueBlocking(qd, 0); err != nil {
			t.Fatal(err)
		}
	}
	// The serving core's L1D must be untouched by accelerator traffic.
	hits, misses, _, _ := m.Hier.L1D[3].Stats()
	if hits+misses != 0 {
		t.Fatalf("accelerator touched the L1D (%d accesses)", hits+misses)
	}
	// And the L2 must have been used (DataViaL2).
	h2, m2, _, _ := m.Hier.L2[3].Stats()
	if h2+m2 == 0 {
		t.Fatal("Core-integrated scheme did not use the shared L2")
	}
}

func TestCHASchemesAvoidPrivateCachesEntirely(t *testing.T) {
	m, a := newAccel(t, scheme.CHATLB)
	keys, vals := genKeys(200, 16, 10)
	ck := dstruct.BuildCuckoo(m.AS, 128, 4, 5, keys, vals)
	for i := 0; i < 100; i++ {
		qd := &isa.QueryDesc{HeaderAddr: ck.HeaderAddr, KeyAddr: stage(m, keys[i]), Tag: uint64(i)}
		if _, err := a.IssueBlocking(qd, 0); err != nil {
			t.Fatal(err)
		}
	}
	for core := 0; core < m.Cfg.Cores; core++ {
		h1, m1, _, _ := m.Hier.L1D[core].Stats()
		h2, m2, _, _ := m.Hier.L2[core].Stats()
		if h1+m1+h2+m2 != 0 {
			t.Fatalf("CHA scheme touched private caches of core %d", core)
		}
	}
}

func TestRemoteCompareUsedForLargeKeys(t *testing.T) {
	// RocksDB-style 100 B keys are not inline in the fetched node line,
	// so Core-integrated must compare remotely at the CHAs.
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(300, 100, 11)
	sl := dstruct.BuildSkipList(m.AS, 3, keys, vals)
	for i := 0; i < 50; i++ {
		qd := &isa.QueryDesc{HeaderAddr: sl.HeaderAddr, KeyAddr: stage(m, keys[i*2]), Tag: uint64(i)}
		if _, err := a.IssueBlocking(qd, 0); err != nil {
			t.Fatal(err)
		}
		r, _ := a.Result(uint64(i))
		if !r.Found || r.Value != vals[i*2] {
			t.Fatalf("query %d wrong: %+v", i, r)
		}
	}
	s := a.Stats()
	if s.RemoteCompares == 0 {
		t.Fatal("no remote compares recorded for 100 B keys")
	}
}

func TestDeviceSchemesFetchInsteadOfRemoteCompare(t *testing.T) {
	m, a := newAccel(t, scheme.DeviceIndirect)
	keys, vals := genKeys(100, 100, 12)
	sl := dstruct.BuildSkipList(m.AS, 3, keys, vals)
	qd := &isa.QueryDesc{HeaderAddr: sl.HeaderAddr, KeyAddr: stage(m, keys[10]), Tag: 0}
	if _, err := a.IssueBlocking(qd, 0); err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.RemoteCompares != 0 {
		t.Fatal("device scheme performed remote compares")
	}
	if s.LocalCompares == 0 {
		t.Fatal("no local compares recorded")
	}
}

func TestSchemeLatencyOrdering(t *testing.T) {
	// For a single dependent-heavy query, Tab. I predicts:
	// Core-integrated < CHA-TLB < Device-direct < Device-indirect.
	latency := func(k scheme.Kind) uint64 {
		m, a := newAccel(t, k)
		keys, vals := genKeys(500, 32, 13)
		sl := dstruct.BuildSkipList(m.AS, 3, keys, vals)
		qd := &isa.QueryDesc{HeaderAddr: sl.HeaderAddr, KeyAddr: stage(m, keys[250]), Tag: 0}
		done, err := a.IssueBlocking(qd, 0)
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	ci := latency(scheme.CoreIntegrated)
	ct := latency(scheme.CHATLB)
	dd := latency(scheme.DeviceDirect)
	di := latency(scheme.DeviceIndirect)
	if !(ci < dd && ct < dd && dd < di) {
		t.Fatalf("latency ordering violated: CI=%d CHA-TLB=%d DD=%d DI=%d", ci, ct, dd, di)
	}
}

func TestCHANoTLBSlowerThanCHATLB(t *testing.T) {
	// At steady state the dedicated TLBs hit almost always ("few TLB
	// misses in our tests", Sec. VII-A) and the core-MMU round trip of
	// CHA-noTLB shows. Enough queries are needed to amortize warming all
	// 24 per-CHA TLBs, so measure only after a warmup pass.
	run := func(k scheme.Kind) uint64 {
		m, a := newAccel(t, k)
		keys, vals := genKeys(500, 32, 14)
		sl := dstruct.BuildSkipList(m.AS, 9, keys, vals)
		var cycle uint64
		for i := 0; i < 200; i++ { // warmup: touch every page from every instance
			qd := &isa.QueryDesc{HeaderAddr: sl.HeaderAddr, KeyAddr: stage(m, keys[(i*13)%500]), Tag: uint64(i)}
			done, err := a.IssueBlocking(qd, cycle)
			if err != nil {
				t.Fatal(err)
			}
			cycle = done
		}
		start := cycle
		for i := 0; i < 200; i++ {
			qd := &isa.QueryDesc{HeaderAddr: sl.HeaderAddr, KeyAddr: stage(m, keys[(i*7)%500]), Tag: uint64(1000 + i)}
			done, err := a.IssueBlocking(qd, cycle)
			if err != nil {
				t.Fatal(err)
			}
			cycle = done
		}
		return cycle - start
	}
	withTLB := run(scheme.CHATLB)
	without := run(scheme.CHANoTLB)
	if without <= withTLB {
		t.Fatalf("CHA-noTLB (%d) should be slower than CHA-TLB (%d) at steady state", without, withTLB)
	}
	// Paper: the gap is 0.5%–17.9%, "not as much as we initially
	// expected" — it must not be an order of magnitude.
	if ratio := float64(without) / float64(withTLB); ratio > 1.6 {
		t.Fatalf("CHA-noTLB/CHA-TLB = %.2f — gap implausibly large", ratio)
	}
}

func TestOccupancyTracked(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(300, 32, 15)
	sl := dstruct.BuildSkipList(m.AS, 5, keys, vals)
	for i := 0; i < 100; i++ {
		qd := &isa.QueryDesc{HeaderAddr: sl.HeaderAddr, KeyAddr: stage(m, keys[i*2]), Tag: uint64(i)}
		if _, err := a.IssueBlocking(qd, 0); err != nil {
			t.Fatal(err)
		}
	}
	occ := a.Stats().Occupancy()
	if occ <= 0 {
		t.Fatalf("occupancy = %f, want > 0", occ)
	}
	if occ > float64(a.Params().QSTEntriesPerInstance)+0.01 {
		t.Fatalf("occupancy %f exceeds QST capacity %d", occ, a.Params().QSTEntriesPerInstance)
	}
}
