package qei

import (
	"fmt"

	"qei/internal/metrics"
)

// RegisterMetrics publishes the accelerator's counters under r: the
// aggregate QST/CEE/DPU statistics as pull-based qei/… metrics plus one
// live cha<i>/cmp/remote_ops counter per LLC slice, fed by
// remoteCompare, so the paper's remote-comparator distribution (Sec.
// V-A) is visible per CHA. Occupancy is published fixed-point
// (milli-entries) so snapshots stay uint64 and merge deterministically.
func (a *Accelerator) RegisterMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	q := r.Scoped("qei")
	q.RegisterFunc("queries", func() uint64 { return a.stats.Queries })
	q.RegisterFunc("nonblocking", func() uint64 { return a.stats.NonBlocking })
	q.RegisterFunc("cee/transitions", func() uint64 { return a.stats.Transitions })
	q.RegisterFunc("mem/ops", func() uint64 { return a.stats.MemOps })
	q.RegisterFunc("mem/lines", func() uint64 { return a.stats.MemLines })
	q.RegisterFunc("cmp/local", func() uint64 { return a.stats.LocalCompares })
	q.RegisterFunc("cmp/remote", func() uint64 { return a.stats.RemoteCompares })
	q.RegisterFunc("cmp/bytes", func() uint64 { return a.stats.CompareBytes })
	q.RegisterFunc("dpu/hash_ops", func() uint64 { return a.stats.HashOps })
	q.RegisterFunc("dpu/alu_ops", func() uint64 { return a.stats.ALUOps })
	q.RegisterFunc("exceptions", func() uint64 { return a.stats.Exceptions })
	q.RegisterFunc("retries", func() uint64 { return a.stats.Retries })
	q.RegisterFunc("timeouts", func() uint64 { return a.stats.Timeouts })
	q.RegisterFunc("flushes", func() uint64 { return a.stats.Flushes })
	q.RegisterFunc("aborted_nb", func() uint64 { return a.stats.AbortedNB })
	q.RegisterFunc("qst/stall_cycles", func() uint64 { return a.stats.QSTStallCycles })
	q.RegisterFunc("qst/busy_entry_cycles", func() uint64 { return a.stats.BusyEntryCycles })
	q.RegisterFunc("qst/occupancy_milli", func() uint64 { return uint64(a.stats.Occupancy() * 1000) })
	q.RegisterFunc("translation_cycles", func() uint64 { return a.stats.TranslationCycles })
	q.RegisterFunc("data_access_cycles", func() uint64 { return a.stats.DataAccessCycles })
	q.RegisterFunc("batch/batches", func() uint64 { return a.stats.BatchBatches })
	q.RegisterFunc("batch/queries", func() uint64 { return a.stats.BatchQueries })
	q.RegisterFunc("batch/levels", func() uint64 { return a.stats.BatchLevels })
	q.RegisterFunc("batch/translations_saved", func() uint64 { return a.stats.BatchTranslationsSaved })
	q.RegisterFunc("batch/lines_deduped", func() uint64 { return a.stats.BatchLinesDeduped })
	q.RegisterFunc("batch/coalesced_probes", func() uint64 { return a.stats.BatchCoalescedProbes })
	q.RegisterFunc("batch/deferred", func() uint64 { return a.stats.BatchDeferred })

	a.remoteOps = make([]*metrics.Counter, len(a.remoteComp))
	for i := range a.remoteOps {
		a.remoteOps[i] = r.Counter(fmt.Sprintf("cha%d/cmp/remote_ops", i))
	}
}
