package qei

import (
	"strings"
	"testing"

	"qei/internal/dstruct"
	"qei/internal/isa"
	"qei/internal/mem"
	"qei/internal/scheme"
)

// Failure-injection tests for the exception machinery of Sec. IV-D: all
// faults must surface architecturally (recorded in the Result, counted
// in stats) without wedging the accelerator.

func TestFaultHeaderUnmapped(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	key := stage(m, make([]byte, 8))
	done, err := a.IssueBlocking(&isa.QueryDesc{
		HeaderAddr: mem.VAddr(0xbad0000), KeyAddr: key, Tag: 1,
	}, 0)
	if err != nil {
		t.Fatalf("architectural fault leaked as simulator error: %v", err)
	}
	if done == 0 {
		t.Fatal("no completion cycle for faulting query")
	}
	r, _ := a.Result(1)
	if r.Fault == nil {
		t.Fatal("fault not recorded")
	}
}

func TestFaultKeyUnmapped(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(10, 16, 31)
	ck := dstruct.BuildCuckoo(m.AS, 16, 4, 3, keys, vals)
	if _, err := a.IssueBlocking(&isa.QueryDesc{
		HeaderAddr: ck.HeaderAddr, KeyAddr: mem.VAddr(0xbad0000), Tag: 2,
	}, 0); err != nil {
		t.Fatal(err)
	}
	r, _ := a.Result(2)
	if r.Fault == nil {
		t.Fatal("unmapped key address did not fault")
	}
	if a.Stats().Exceptions != 1 {
		t.Fatalf("exceptions = %d", a.Stats().Exceptions)
	}
}

func TestFaultUnknownFirmware(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	hdr := dstruct.WriteHeader(m.AS, dstruct.Header{Type: 200, KeyLen: 8, Size: 1})
	key := stage(m, make([]byte, 8))
	if _, err := a.IssueBlocking(&isa.QueryDesc{HeaderAddr: hdr, KeyAddr: key, Tag: 3}, 0); err != nil {
		t.Fatal(err)
	}
	r, _ := a.Result(3)
	if r.Fault == nil || !strings.Contains(r.Fault.Error(), "firmware") {
		t.Fatalf("unknown type code fault = %v", r.Fault)
	}
}

func TestAcceleratorSurvivesFaultBurst(t *testing.T) {
	// Faulting queries release their QST entries; good queries issued
	// after a burst of faults must still succeed.
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(50, 16, 32)
	ck := dstruct.BuildCuckoo(m.AS, 64, 4, 3, keys, vals)
	for i := 0; i < 30; i++ {
		if _, err := a.IssueBlocking(&isa.QueryDesc{
			HeaderAddr: mem.VAddr(0xbad0000 + uint64(i)*mem.PageSize),
			KeyAddr:    stage(m, keys[0]),
			Tag:        uint64(100 + i),
		}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().Exceptions; got != 30 {
		t.Fatalf("exceptions = %d, want 30", got)
	}
	for i := 0; i < 20; i++ {
		qd := &isa.QueryDesc{HeaderAddr: ck.HeaderAddr, KeyAddr: stage(m, keys[i]), Tag: uint64(i)}
		if _, err := a.IssueBlocking(qd, 100000); err != nil {
			t.Fatal(err)
		}
		r, _ := a.Result(uint64(i))
		if r.Fault != nil || !r.Found || r.Value != vals[i] {
			t.Fatalf("post-fault query %d broken: %+v", i, r)
		}
	}
}

func TestViewForCoreSharesHardware(t *testing.T) {
	m, base := newAccel(t, scheme.CHATLB)
	view := base.ViewForCore(7)
	keys, vals := genKeys(100, 16, 33)
	ck := dstruct.BuildCuckoo(m.AS, 64, 4, 5, keys, vals)

	// Queries through both views must both succeed and keep results
	// separate.
	if _, err := base.IssueBlocking(&isa.QueryDesc{HeaderAddr: ck.HeaderAddr, KeyAddr: stage(m, keys[1]), Tag: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := view.IssueBlocking(&isa.QueryDesc{HeaderAddr: ck.HeaderAddr, KeyAddr: stage(m, keys[2]), Tag: 1}, 0); err != nil {
		t.Fatal(err)
	}
	rb, okb := base.Result(1)
	rv, okv := view.Result(1)
	if !okb || !okv {
		t.Fatal("results missing")
	}
	if rb.Value == rv.Value {
		t.Fatal("views share result maps — they must not")
	}
	if rb.Value != vals[1] || rv.Value != vals[2] {
		t.Fatalf("wrong values: %d / %d", rb.Value, rv.Value)
	}
}

func TestStatsSubWindows(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(40, 16, 34)
	ck := dstruct.BuildCuckoo(m.AS, 64, 4, 5, keys, vals)
	for i := 0; i < 10; i++ {
		a.IssueBlocking(&isa.QueryDesc{HeaderAddr: ck.HeaderAddr, KeyAddr: stage(m, keys[i]), Tag: uint64(i)}, 0)
	}
	snap := a.Stats()
	for i := 10; i < 25; i++ {
		a.IssueBlocking(&isa.QueryDesc{HeaderAddr: ck.HeaderAddr, KeyAddr: stage(m, keys[i]), Tag: uint64(i)}, 100000)
	}
	d := a.Stats().Sub(snap)
	if d.Queries != 15 {
		t.Fatalf("windowed queries = %d, want 15", d.Queries)
	}
	if d.Transitions == 0 || d.MemLines == 0 {
		t.Fatal("windowed counters empty")
	}
	if d.Queries > snap.Queries+d.Queries {
		t.Fatal("window exceeded total")
	}
}
