package qei

import (
	"errors"
	"testing"

	"qei/internal/cfa"
	"qei/internal/dstruct"
	"qei/internal/faultinject"
	"qei/internal/isa"
	"qei/internal/machine"
	"qei/internal/mem"
	"qei/internal/scheme"
)

// Robustness tests for the Sec. IV-D recovery layer: watchdog, pointer-
// cycle guard, firmware panic barrier, and retry-from-root.

func TestWatchdogCycleBudget(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(400, 16, 41)
	ll := dstruct.BuildLinkedList(m.AS, keys, vals)

	// A miss on a 400-node list walks every node — hundreds of dependent
	// memory accesses, far beyond a 2000-cycle budget (a hit at the head
	// costs ~400 cold cycles and fits).
	a.SetCycleBudget(2000)
	absent := stage(m, []byte("absent-key-16byt"))
	if _, err := a.IssueBlocking(&isa.QueryDesc{HeaderAddr: ll.HeaderAddr, KeyAddr: absent, Tag: 1}, 0); err != nil {
		t.Fatal(err)
	}
	r, _ := a.Result(1)
	if !errors.Is(r.Fault, ErrQueryTimeout) {
		t.Fatalf("fault = %v, want ErrQueryTimeout", r.Fault)
	}
	if s := a.Stats(); s.Timeouts != 1 || s.Exceptions != 1 {
		t.Fatalf("timeouts/exceptions = %d/%d, want 1/1", s.Timeouts, s.Exceptions)
	}

	// A front-of-list hit completes within the same budget: the watchdog
	// only kills walks that actually burn it.
	hit := stage(m, keys[0])
	if _, err := a.IssueBlocking(&isa.QueryDesc{HeaderAddr: ll.HeaderAddr, KeyAddr: hit, Tag: 2}, 0); err != nil {
		t.Fatal(err)
	}
	if r, _ := a.Result(2); r.Fault != nil || !r.Found || r.Value != vals[0] {
		t.Fatalf("budgeted hit broke: %+v", r)
	}
}

func TestPointerCycleDetected(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(8, 16, 42)
	ll := dstruct.BuildLinkedList(m.AS, keys, vals)

	// Corrupt the list: make the third node's next pointer loop back to
	// the head. A miss query then walks the cycle forever.
	node := ll.Head
	for i := 0; i < 2; i++ {
		next, err := m.AS.ReadU64(node)
		if err != nil {
			t.Fatal(err)
		}
		node = mem.VAddr(next)
	}
	var buf [8]byte
	putLE(buf[:], uint64(ll.Head))
	m.AS.MustWrite(node, buf[:])

	absent := stage(m, []byte("absent-key-16byt"))
	if _, err := a.IssueBlocking(&isa.QueryDesc{HeaderAddr: ll.HeaderAddr, KeyAddr: absent, Tag: 1}, 0); err != nil {
		t.Fatal(err)
	}
	r, _ := a.Result(1)
	if !errors.Is(r.Fault, ErrStructCorrupt) {
		t.Fatalf("fault = %v, want ErrStructCorrupt (pointer cycle)", r.Fault)
	}
	// Brent's detector must fire well before the transition backstop: a
	// 3-node cycle repeats its configuration within a few dozen steps.
	if s := a.Stats(); s.Transitions > 1000 {
		t.Fatalf("cycle took %d transitions to detect", s.Transitions)
	}
}

// panicFW is firmware whose handler panics — the firmware-bug shape the
// engine's panic barrier must convert into an architectural fault.
type panicFW struct{}

func (panicFW) TypeCode() uint8 { return 60 }
func (panicFW) Name() string    { return "panic-fw" }
func (panicFW) NumStates() int  { return 1 }
func (panicFW) Step(q *cfa.Query, s cfa.StateID) cfa.Request {
	panic("firmware bug: unchecked index")
}

func TestFirmwarePanicBecomesArchitecturalFault(t *testing.T) {
	m := machine.NewDefault()
	reg := cfa.NewRegistry()
	if err := reg.Register(panicFW{}); err != nil {
		t.Fatal(err)
	}
	a := New(m, scheme.ForKind(scheme.CoreIntegrated), reg, 3)

	hdr := dstruct.WriteHeader(m.AS, dstruct.Header{Type: 60, KeyLen: 8, Size: 1})
	key := stage(m, make([]byte, 8))
	if _, err := a.IssueBlocking(&isa.QueryDesc{HeaderAddr: hdr, KeyAddr: key, Tag: 1}, 0); err != nil {
		t.Fatal(err)
	}
	r, _ := a.Result(1)
	if !errors.Is(r.Fault, cfa.ErrInvalidProgram) {
		t.Fatalf("fault = %v, want wrapped ErrInvalidProgram", r.Fault)
	}
	if a.Stats().Exceptions != 1 {
		t.Fatalf("exceptions = %d", a.Stats().Exceptions)
	}
}

func TestSpuriousFaultRetryExhaustion(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(10, 16, 43)
	ck := dstruct.BuildCuckoo(m.AS, 16, 4, 3, keys, vals)

	sched, err := faultinject.ParseSchedule("11:spurious=1")
	if err != nil {
		t.Fatal(err)
	}
	a.SetFaultInjector(faultinject.New(sched))

	if _, err := a.IssueBlocking(&isa.QueryDesc{HeaderAddr: ck.HeaderAddr, KeyAddr: stage(m, keys[0]), Tag: 1}, 0); err != nil {
		t.Fatal(err)
	}
	r, _ := a.Result(1)
	if r.Fault == nil {
		t.Fatal("rate-1.0 spurious schedule produced no fault")
	}
	s := a.Stats()
	if s.Retries != retryLimit {
		t.Fatalf("retries = %d, want the full retry budget %d", s.Retries, retryLimit)
	}
	if s.Exceptions != 1 {
		t.Fatalf("exceptions = %d, want 1 (only the final attempt surfaces)", s.Exceptions)
	}
}

func TestTransientFaultRetryRecovers(t *testing.T) {
	m, a := newAccel(t, scheme.CoreIntegrated)
	keys, vals := genKeys(100, 16, 44)
	ll := dstruct.BuildLinkedList(m.AS, keys, vals)

	sched, err := faultinject.ParseSchedule("5:spurious=0.002")
	if err != nil {
		t.Fatal(err)
	}
	a.SetFaultInjector(faultinject.New(sched))

	succeeded, faulted := 0, 0
	for i, k := range keys {
		if _, err := a.IssueBlocking(&isa.QueryDesc{HeaderAddr: ll.HeaderAddr, KeyAddr: stage(m, k), Tag: uint64(i)}, 0); err != nil {
			t.Fatal(err)
		}
		r, _ := a.Result(uint64(i))
		if r.Fault != nil {
			faulted++
			continue
		}
		succeeded++
		if !r.Found || r.Value != vals[i] {
			t.Fatalf("query %d returned wrong result after faults: %+v", i, r)
		}
	}
	s := a.Stats()
	if s.Retries == 0 {
		t.Fatal("low-rate spurious schedule never triggered a retry")
	}
	if succeeded == 0 {
		t.Fatal("no query recovered via retry")
	}
	if uint64(faulted) != s.Exceptions {
		t.Fatalf("faulted queries %d != exceptions %d", faulted, s.Exceptions)
	}
}
