package qei

import (
	"testing"
	"testing/quick"

	"qei/internal/cfa"
	"qei/internal/dstruct"
	"qei/internal/isa"
	"qei/internal/machine"
	"qei/internal/mem"
	"qei/internal/scheme"
)

// Equivalence: the timed accelerator and the untimed functional CFA
// interpreter must produce identical architectural results for the same
// queries — timing must never change answers. This is the key
// functional/timing separation invariant of the whole engine.
func TestTimedEngineMatchesFunctionalInterpreter(t *testing.T) {
	f := func(seed int64) bool {
		m := machine.NewDefault()
		a := New(m, scheme.ForKind(scheme.CoreIntegrated), cfa.DefaultRegistry(), 0)
		n := 60 + int(uint64(seed)%60)
		keys, vals := genKeys(n, 16, seed)

		headers := []mem.VAddr{
			dstruct.BuildCuckoo(m.AS, uint64(n), 4, 3, keys, vals).HeaderAddr,
			dstruct.BuildHashTable(m.AS, uint64(n/4), 3, keys, vals).HeaderAddr,
			dstruct.BuildSkipList(m.AS, seed, keys, vals).HeaderAddr,
			dstruct.BuildBST(m.AS, seed, 32, keys, vals).HeaderAddr,
			dstruct.BuildBTree(m.AS, 8, keys, vals).HeaderAddr,
		}
		// A second registry for the functional interpreter so TLB/cache
		// state mutations cannot leak between the two paths (they share
		// the address space, which is read-only here).
		reg := cfa.DefaultRegistry()

		tag := uint64(0)
		for _, hdr := range headers {
			for i := 0; i < n; i += 7 {
				ka := stage(m, keys[i])
				want, err := cfa.Run(reg, m.AS, hdr, ka, 0)
				if err != nil {
					return false
				}
				if _, err := a.IssueBlocking(&isa.QueryDesc{
					HeaderAddr: hdr, KeyAddr: ka, Tag: tag,
				}, uint64(tag)*17); err != nil {
					return false
				}
				got, ok := a.Result(tag)
				tag++
				if !ok || got.Fault != nil {
					return false
				}
				if got.Found != want.Found || got.Value != want.Value {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: two identical accelerated runs over a fresh machine must
// produce bit-identical timing and results.
func TestEngineDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		m := machine.NewDefault()
		a := New(m, scheme.ForKind(scheme.CHATLB), cfa.DefaultRegistry(), 0)
		keys, vals := genKeys(150, 32, 99)
		sl := dstruct.BuildSkipList(m.AS, 3, keys, vals)
		var lastDone, checksum uint64
		for i := 0; i < 100; i++ {
			done, err := a.IssueBlocking(&isa.QueryDesc{
				HeaderAddr: sl.HeaderAddr,
				KeyAddr:    stage(m, keys[i]),
				Tag:        uint64(i),
			}, uint64(i)*3)
			if err != nil {
				t.Fatal(err)
			}
			r, _ := a.Result(uint64(i))
			lastDone = done
			checksum = checksum*31 + r.Value + done
		}
		return lastDone, checksum
	}
	d1, c1 := run()
	d2, c2 := run()
	if d1 != d2 || c1 != c2 {
		t.Fatalf("runs differ: (%d,%d) vs (%d,%d)", d1, c1, d2, c2)
	}
}
