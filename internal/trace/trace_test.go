package trace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// None of these may panic.
	tr.Emit(Event{Name: "x"})
	tr.Span("cpu", "query", 0, 10, 0, 0, nil)
	tr.Point("mem", "page_map", 5, 0, 0, nil)
	if tr.Events() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer recorded events")
	}
}

func TestSpanAndPoint(t *testing.T) {
	tr := New(8)
	tr.Span("qst", "query", 100, 150, 1, 2, map[string]string{"slot": "2"})
	tr.Point("tlb", "page_walk", 120, 1, 0, nil)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("len(events) = %d, want 2", len(evs))
	}
	if evs[0].Phase != Complete || evs[0].Dur != 50 {
		t.Fatalf("span event = %+v", evs[0])
	}
	if evs[1].Phase != Instant || evs[1].TS != 120 {
		t.Fatalf("point event = %+v", evs[1])
	}
	// End before start clamps to zero duration rather than underflowing.
	tr.Span("qst", "clamped", 10, 5, 0, 0, nil)
	evs = tr.Events()
	if evs[2].Dur != 0 {
		t.Fatalf("clamped dur = %d, want 0", evs[2].Dur)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Point("cpu", "e", uint64(i), 0, 0, nil)
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	for i, e := range evs {
		want := uint64(6 + i)
		if e.TS != want {
			t.Fatalf("event[%d].TS = %d, want %d (oldest-first after wrap)", i, e.TS, want)
		}
	}
}

func TestExportValidJSONSchema(t *testing.T) {
	tr := New(0)
	tr.Span("qst", "query", 10, 60, 0, 3, map[string]string{"instance": "0"})
	tr.Span("cha", "remote_cmp", 20, 35, 102, 0, nil)
	tr.Point("tlb", "page_walk", 15, 0, 0, map[string]string{"addr": "0x1000"})
	out := tr.Export()

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, out)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("exported %d events, want 3", len(doc.TraceEvents))
	}
	for _, e := range doc.TraceEvents {
		for _, key := range []string{"name", "cat", "ph", "ts", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("event missing %q: %v", key, e)
			}
		}
		switch e["ph"] {
		case "X":
			if _, ok := e["dur"]; !ok {
				t.Fatalf("complete event missing dur: %v", e)
			}
		case "i":
			if e["s"] != "t" {
				t.Fatalf("instant event missing scope: %v", e)
			}
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
}

func TestExportSortedByTimestamp(t *testing.T) {
	tr := New(0)
	tr.Point("cpu", "late", 300, 0, 0, nil)
	tr.Point("cpu", "early", 100, 0, 0, nil)
	tr.Point("cpu", "mid", 200, 0, 0, nil)
	out := tr.Export()
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	prev := float64(-1)
	for _, e := range doc.TraceEvents {
		if e.TS < prev {
			t.Fatalf("events not sorted by ts: %v", doc.TraceEvents)
		}
		prev = e.TS
	}
}

// TestExportGolden pins the exact export bytes: field order, arg-key
// order, and event sort must never drift, or previously saved traces
// would stop diffing cleanly. Regenerate with -update after an
// intentional format change.
var update = os.Getenv("UPDATE_GOLDEN") != ""

func TestExportGolden(t *testing.T) {
	tr := New(0)
	tr.Span("qst", "query", 10, 60, 0, 3, map[string]string{"instance": "0", "slot": "3"})
	tr.Point("tlb", "page_walk", 15, 0, 1, map[string]string{"addr": "0x7f001000"})
	tr.Span("cha", "remote_cmp", 20, 35, 102, 0, map[string]string{"slice": "2"})
	tr.Span("noc", "xfer", 22, 26, 200, 0, nil)
	tr.Point("mem", "page_map", 40, 300, 0, nil)
	got := tr.Export()

	golden := filepath.Join("testdata", "export_golden.json")
	if update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (set UPDATE_GOLDEN=1 to generate): %v", err)
	}
	if got != string(want) {
		t.Fatalf("export drifted from golden file\n--- got:\n%s--- want:\n%s", got, want)
	}
}
