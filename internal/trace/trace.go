// Package trace is the simulator's unified cycle-stamped event trace.
// Every component — cores, caches, TLBs, the NoC, memory, and the QEI
// accelerator — emits events into one ring-buffered Tracer, stamped with
// simulated cycles, and the whole interleaved timeline exports as Chrome
// trace-event JSON that chrome://tracing and Perfetto open directly.
//
// Like internal/metrics, the disabled path is free: a nil *Tracer
// accepts every emit call as a no-op, so instrumentation sites need no
// guards. The ring buffer bounds memory for long runs — once capacity is
// reached the oldest events are overwritten and Dropped() reports how
// many were lost.
//
// Simulated cycles map 1:1 onto trace-event microseconds ("ts"/"dur"),
// so one Perfetto microsecond is one simulated cycle. Track identity
// follows the trace-event model: Pid groups a component class (a core, a
// CHA slice, the DPU), Tid separates concurrent lanes within it (QST
// slots, comparator lanes).
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Phase is the trace-event phase character.
type Phase byte

const (
	// Complete is a duration event ("ph":"X") with start + dur.
	Complete Phase = 'X'
	// Instant is a point event ("ph":"i").
	Instant Phase = 'i'
)

// Event is one cycle-stamped trace entry.
type Event struct {
	// Name labels the event in the viewer, e.g. "query", "page_walk".
	Name string
	// Cat is the component category: "cpu", "cache", "tlb", "noc",
	// "mem", "qst", "cha".
	Cat string
	// Phase is Complete (has Dur) or Instant.
	Phase Phase
	// TS is the start time in simulated cycles.
	TS uint64
	// Dur is the duration in cycles (Complete events only).
	Dur uint64
	// Pid/Tid pick the Perfetto track: Pid is the component instance,
	// Tid the lane within it.
	Pid int
	Tid int
	// Args renders as the event's args object; keys are emitted in
	// sorted order so exports are byte-stable.
	Args map[string]string
}

// Tracer is a fixed-capacity ring buffer of events. A nil *Tracer is a
// valid disabled tracer: all emit methods are no-ops and Events returns
// nil.
type Tracer struct {
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
}

// DefaultCapacity bounds trace memory for long runs (~1M events).
const DefaultCapacity = 1 << 20

// New creates a tracer holding at most capacity events; capacity <= 0
// selects DefaultCapacity.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records a fully specified event. No-op on a nil tracer.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
		return
	}
	// Ring: overwrite the oldest event.
	t.buf[t.next] = e
	t.next++
	if t.next == cap(t.buf) {
		t.next = 0
	}
	t.wrapped = true
	t.dropped++
}

// Span records a Complete event covering cycles [start, end). No-op on a
// nil tracer.
func (t *Tracer) Span(cat, name string, start, end uint64, pid, tid int, args map[string]string) {
	if t == nil {
		return
	}
	dur := uint64(0)
	if end > start {
		dur = end - start
	}
	t.Emit(Event{Name: name, Cat: cat, Phase: Complete, TS: start, Dur: dur, Pid: pid, Tid: tid, Args: args})
}

// Point records an Instant event at cycle ts. No-op on a nil tracer.
func (t *Tracer) Point(cat, name string, ts uint64, pid, tid int, args map[string]string) {
	if t == nil {
		return
	}
	t.Emit(Event{Name: name, Cat: cat, Phase: Instant, TS: ts, Pid: pid, Tid: tid, Args: args})
}

// Events returns the recorded events in emit order (oldest first when
// the ring has wrapped). The returned slice is a copy.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		out := make([]Event, len(t.buf))
		copy(out, t.buf)
		return out
	}
	out := make([]Event, 0, cap(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Dropped returns how many events were overwritten after the ring
// filled.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// ExportChromeTrace serializes events as a Chrome trace-event JSON
// document ({"traceEvents":[...]}) accepted by chrome://tracing and
// Perfetto. Events are ordered by (TS, Pid, Tid, Name) and fields are
// written in a fixed order, so identical traces export to identical
// bytes — the property the golden-file tests pin down.
func ExportChromeTrace(events []Event) string {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.Name < b.Name
	})

	var b strings.Builder
	b.WriteString("{\"traceEvents\":[\n")
	for i, e := range sorted {
		if i > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, `{"name":%q,"cat":%q,"ph":%q,"ts":%d`,
			e.Name, e.Cat, string(e.Phase), e.TS)
		if e.Phase == Complete {
			fmt.Fprintf(&b, `,"dur":%d`, e.Dur)
		}
		if e.Phase == Instant {
			// Thread-scoped instants render as small arrows on the track.
			b.WriteString(`,"s":"t"`)
		}
		fmt.Fprintf(&b, `,"pid":%d,"tid":%d`, e.Pid, e.Tid)
		if len(e.Args) > 0 {
			keys := make([]string, 0, len(e.Args))
			for k := range e.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteString(`,"args":{`)
			for j, k := range keys {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%q:%q", k, e.Args[k])
			}
			b.WriteByte('}')
		}
		b.WriteByte('}')
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	return b.String()
}

// Export serializes the tracer's buffered events; see ExportChromeTrace.
func (t *Tracer) Export() string {
	return ExportChromeTrace(t.Events())
}
