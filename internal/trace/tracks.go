package trace

// Track identity conventions shared by every instrumented component, so
// one exported trace lays out consistently in Perfetto:
//
//	pid 0..99    core tiles (pid = core index); tids per TidCore*
//	pid 100..199 CHA / LLC slices (PidCHA + slice index)
//	pid 200      the mesh NoC (tid = source stop)
//	pid 300      memory system (page mapping, DRAM)
//	pid 400..499 QST accelerator instances (PidQST + instance; tid = slot)
//	pid 500      serving frontend (shed/failover/breaker; tid = tenant)
const (
	PidCHABase = 100
	PidNoC     = 200
	PidMem     = 300
	PidQSTBase = 400
	PidServe   = 500
)

// Tids within a core tile's pid.
const (
	TidCorePipe = 0 // pipeline events: queries, mispredicts
	TidCoreMem  = 1 // cache-hierarchy accesses
	TidCoreTLB  = 2 // translation: TLB misses, page walks
)

// PidCHA returns the pid of LLC slice / CHA i.
func PidCHA(slice int) int { return PidCHABase + slice }

// PidQST returns the pid of accelerator instance i.
func PidQST(instance int) int { return PidQSTBase + instance }
