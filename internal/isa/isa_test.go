package isa

import (
	"testing"

	"qei/internal/mem"
)

func TestBuilderLoadDeps(t *testing.T) {
	b := NewBuilder()
	r1 := b.Load(0x1000, 8, 0)
	r2 := b.Load(0x2000, 8, r1)
	tr := b.Take()
	if len(tr) != 2 {
		t.Fatalf("trace length = %d", len(tr))
	}
	if tr[1].Src1 != r1 || tr[1].Dst != r2 {
		t.Fatalf("dependency not recorded: %+v", tr[1])
	}
}

func TestLoadRangeCoversLines(t *testing.T) {
	b := NewBuilder()
	// 100 bytes starting mid-line at 0x1020 touches lines 0x1000..0x1080.
	b.LoadRange(0x1020, 100, 0)
	tr := b.Take()
	if got := tr.Loads(); got != 3 {
		t.Fatalf("LoadRange emitted %d loads, want 3", got)
	}
	seen := map[mem.VAddr]bool{}
	for _, op := range tr {
		if op.Kind == Load {
			if op.Addr != op.Addr.Line() {
				t.Fatalf("load address %#x not line-aligned", uint64(op.Addr))
			}
			seen[op.Addr] = true
		}
	}
	for _, want := range []mem.VAddr{0x1000, 0x1040, 0x1080} {
		if !seen[want] {
			t.Fatalf("line %#x not loaded", uint64(want))
		}
	}
}

func TestLoadRangeZero(t *testing.T) {
	b := NewBuilder()
	r := b.LoadRange(0x1000, 0, 5)
	if r != 5 {
		t.Fatalf("zero-size LoadRange should return base reg, got %d", r)
	}
	if b.Len() != 0 {
		t.Fatal("zero-size LoadRange emitted ops")
	}
}

func TestTempWrapsSkippingZero(t *testing.T) {
	b := NewBuilder()
	seen := map[Reg]bool{}
	for i := 0; i < 3*NumRegs; i++ {
		r := b.Temp()
		if r == 0 {
			t.Fatal("Temp() returned the zero register")
		}
		seen[r] = true
	}
	if len(seen) != NumRegs-1 {
		t.Fatalf("Temp cycled through %d registers, want %d", len(seen), NumRegs-1)
	}
}

func TestQueryDescCopied(t *testing.T) {
	b := NewBuilder()
	q := QueryDesc{HeaderAddr: 1, KeyAddr: 2, ResultAddr: 3, Tag: 9}
	b.QueryNB(q)
	q.Tag = 42 // mutate the original
	tr := b.Take()
	if tr[0].Query.Tag != 9 {
		t.Fatal("builder aliased the caller's QueryDesc")
	}
}

func TestCounts(t *testing.T) {
	b := NewBuilder()
	b.Load(0x10, 8, 0)
	b.ALU(0, 0)
	b.ALUN(4, 0)
	b.Mul(0, 0)
	b.Branch(0, false)
	b.Nop(2)
	tr := b.Take()
	c := tr.Counts()
	if c[Load] != 1 || c[ALU] != 5 || c[MulALU] != 1 || c[Branch] != 1 || c[Nop] != 2 {
		t.Fatalf("counts = %v", c)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Nop: "nop", ALU: "alu", MulALU: "mul", Load: "load", Store: "store",
		Branch: "branch", QueryB: "query_b", QueryNB: "query_nb",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
