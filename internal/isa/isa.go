// Package isa defines the dynamic micro-operation format consumed by the
// simulated out-of-order core (package cpu).
//
// The software baselines in this reproduction are not compiled x86
// binaries; they are query routines that walk the simulated data
// structures functionally and, as a side effect, emit the dynamic
// instruction stream a compiled -O3 loop would execute: dependent loads
// for pointer chasing, ALU ops for hashing and index arithmetic, compare
// and branch ops for the loop control flow the paper identifies as the
// frontend bottleneck (Sec. II-A). QEI's QUERY_B/QUERY_NB instructions
// (Sec. IV-A) are two additional micro-op kinds.
package isa

import "qei/internal/mem"

// Reg is an architectural register number. The trace generators use a
// small conventional file; register 0 is hardwired zero/unused.
type Reg uint8

// NumRegs is the size of the architectural register file visible to
// traces.
const NumRegs = 64

// Kind enumerates micro-op classes.
type Kind uint8

const (
	// Nop consumes a frontend slot only.
	Nop Kind = iota
	// ALU is a single-cycle integer operation.
	ALU
	// MulALU is a multi-cycle integer operation (multiplies in hash
	// functions).
	MulALU
	// Load reads from memory into Dst.
	Load
	// Store writes a register to memory.
	Store
	// Branch is a conditional branch; Mispredict marks dynamic instances
	// the predictor gets wrong.
	Branch
	// QueryB is the blocking QEI query instruction: behaves like a
	// long-latency load whose value is produced by the accelerator.
	QueryB
	// QueryNB is the non-blocking QEI query instruction: behaves like a
	// store and retires once the accelerator accepts it.
	QueryNB
)

func (k Kind) String() string {
	switch k {
	case Nop:
		return "nop"
	case ALU:
		return "alu"
	case MulALU:
		return "mul"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	case QueryB:
		return "query_b"
	case QueryNB:
		return "query_nb"
	default:
		return "unknown"
	}
}

// QueryDesc carries the operands of a QUERY micro-op to the accelerator:
// the data-structure header address, the key address, and (non-blocking
// only) the result address (Sec. IV-A).
type QueryDesc struct {
	HeaderAddr mem.VAddr
	KeyAddr    mem.VAddr
	ResultAddr mem.VAddr // zero for blocking queries
	// KeyLen overrides the header's key length when non-zero — used for
	// variable-length probes such as trie scans over packet payloads.
	KeyLen uint32
	// Tag is an opaque identifier the workload uses to match results.
	Tag uint64
}

// Op is one dynamic micro-operation.
type Op struct {
	Kind Kind
	// Dst is the destination register (0 = none).
	Dst Reg
	// Src1, Src2 are source registers (0 = none).
	Src1, Src2 Reg
	// Addr is the effective virtual address for Load/Store.
	Addr mem.VAddr
	// Size is the access size in bytes for Load/Store (for stats; timing
	// is per line).
	Size uint8
	// Mispredict marks a branch the predictor missed.
	Mispredict bool
	// Query carries QUERY operands; nil otherwise.
	Query *QueryDesc
}

// Trace is a dynamic instruction sequence.
type Trace []Op

// Counts summarizes a trace by kind.
func (t Trace) Counts() map[Kind]int {
	m := make(map[Kind]int)
	for i := range t {
		m[t[i].Kind]++
	}
	return m
}

// Loads returns the number of memory-read micro-ops (the paper's
// "memory accesses per query" metric counts these).
func (t Trace) Loads() int {
	n := 0
	for i := range t {
		if t[i].Kind == Load {
			n++
		}
	}
	return n
}

// Builder accumulates a trace with a tiny register-allocation convention,
// making the query-routine generators readable.
type Builder struct {
	ops     Trace
	nextReg Reg
}

// NewBuilder returns an empty trace builder.
func NewBuilder() *Builder {
	return &Builder{nextReg: 1}
}

// Temp allocates a fresh register, wrapping within the file (past results
// that far back are dead in these loop bodies).
func (b *Builder) Temp() Reg {
	r := b.nextReg
	b.nextReg++
	if b.nextReg >= NumRegs {
		b.nextReg = 1
	}
	return r
}

// Load appends a load of size bytes at addr depending on base, returning
// the destination register.
func (b *Builder) Load(addr mem.VAddr, size uint8, base Reg) Reg {
	dst := b.Temp()
	b.ops = append(b.ops, Op{Kind: Load, Dst: dst, Src1: base, Addr: addr, Size: size})
	return dst
}

// LoadLine appends a whole-cacheline load (QEI granularity) at addr.
func (b *Builder) LoadLine(addr mem.VAddr, base Reg) Reg {
	return b.Load(addr.Line(), mem.LineSize, base)
}

// LoadRange appends loads covering [addr, addr+size) one cacheline at a
// time, each depending on base, and returns a register that depends on
// all of them (modelling a memcmp-style reduction).
func (b *Builder) LoadRange(addr mem.VAddr, size uint64, base Reg) Reg {
	if size == 0 {
		return base
	}
	acc := base
	first := uint64(addr) &^ (mem.LineSize - 1)
	last := (uint64(addr) + size - 1) &^ (mem.LineSize - 1)
	for line := first; line <= last; line += mem.LineSize {
		r := b.Load(mem.VAddr(line), mem.LineSize, base)
		acc = b.ALU(acc, r)
	}
	return acc
}

// Store appends a store of src to addr.
func (b *Builder) Store(addr mem.VAddr, size uint8, src Reg) {
	b.ops = append(b.ops, Op{Kind: Store, Src1: src, Addr: addr, Size: size})
}

// ALU appends a single-cycle op combining two registers.
func (b *Builder) ALU(a, c Reg) Reg {
	dst := b.Temp()
	b.ops = append(b.ops, Op{Kind: ALU, Dst: dst, Src1: a, Src2: c})
	return dst
}

// ALUN appends n dependent single-cycle ops seeded by src.
func (b *Builder) ALUN(n int, src Reg) Reg {
	r := src
	for i := 0; i < n; i++ {
		r = b.ALU(r, 0)
	}
	return r
}

// Mul appends a multi-cycle integer op.
func (b *Builder) Mul(a, c Reg) Reg {
	dst := b.Temp()
	b.ops = append(b.ops, Op{Kind: MulALU, Dst: dst, Src1: a, Src2: c})
	return dst
}

// Branch appends a conditional branch depending on cond.
func (b *Builder) Branch(cond Reg, mispredict bool) {
	b.ops = append(b.ops, Op{Kind: Branch, Src1: cond, Mispredict: mispredict})
}

// QueryB appends a blocking QEI query and returns the result register.
func (b *Builder) QueryB(q QueryDesc) Reg {
	dst := b.Temp()
	qd := q
	b.ops = append(b.ops, Op{Kind: QueryB, Dst: dst, Query: &qd})
	return dst
}

// QueryNB appends a non-blocking QEI query.
func (b *Builder) QueryNB(q QueryDesc) {
	qd := q
	b.ops = append(b.ops, Op{Kind: QueryNB, Query: &qd})
}

// Nop appends n frontend-only micro-ops (models surrounding scalar work
// with no memory behaviour).
func (b *Builder) Nop(n int) {
	for i := 0; i < n; i++ {
		b.ops = append(b.ops, Op{Kind: Nop})
	}
}

// Append concatenates a prebuilt trace.
func (b *Builder) Append(t Trace) {
	b.ops = append(b.ops, t...)
}

// Take returns the accumulated trace and resets the builder.
func (b *Builder) Take() Trace {
	t := b.ops
	b.ops = nil
	return t
}

// Ops returns the accumulated trace without giving up its backing
// array: the caller may read it until the next Reset, after which the
// storage is reused. This is the reuse-path twin of Take for callers
// that consume the trace synchronously (cpu.Core.Run does).
func (b *Builder) Ops() Trace { return b.ops }

// Reset empties the builder for reuse, keeping the trace's backing
// array and restarting register numbering exactly as a fresh builder
// would (NewBuilder starts at register 1, and register numbering feeds
// the core's dependence tracking — so a Reset builder emits
// byte-identical traces to a new one). Any Trace previously obtained
// from Ops is invalidated.
func (b *Builder) Reset() {
	b.ops = b.ops[:0]
	b.nextReg = 1
}

// Len reports the number of ops accumulated so far.
func (b *Builder) Len() int { return len(b.ops) }

// Skeleton is a memoized builder prefix: the ops emitted so far plus the
// register-allocation state they leave behind. Replaying a skeleton into
// a freshly Reset builder is byte-identical to re-emitting the same
// calls, which is what makes per-structure trace-prefix caching safe
// under the determinism contract.
type Skeleton struct {
	Ops     Trace
	NextReg Reg
}

// Snapshot captures the builder's current contents as a Skeleton. The
// ops are copied, so the skeleton stays valid across Reset.
func (b *Builder) Snapshot() Skeleton {
	return Skeleton{Ops: append(Trace(nil), b.ops...), NextReg: b.nextReg}
}

// AppendSkeleton replays a memoized prefix: the ops are appended and the
// register allocator is advanced to the state it had when the skeleton
// was captured.
func (b *Builder) AppendSkeleton(s Skeleton) {
	b.ops = append(b.ops, s.Ops...)
	b.nextReg = s.NextReg
}
