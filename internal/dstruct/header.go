// Package dstruct lays queryable data structures out in the simulated
// address space and provides host-side reference implementations used to
// verify both the software-baseline walkers and the QEI accelerator.
//
// Every structure is fronted by the single-cacheline (64 B) metadata
// header of Fig. 4: the software populates it once, and the accelerator's
// CFA parses it as the first step of every query (Sec. III-B). Keys are
// arbitrary byte strings and query results are 64-bit values (in real
// applications, pointers to the actual data — Sec. III).
//
// Layouts are little-endian and cacheline-conscious: node sizes and field
// offsets are chosen the way a performance-tuned C implementation would
// choose them, because the number of cachelines touched per query step is
// precisely what the paper's evaluation measures.
package dstruct

import (
	"fmt"

	"qei/internal/mem"
)

// Type codes for the header's type field, one per supported CFA
// (Sec. III-A: each data structure gets a distinct configurable finite
// automaton; combined structures get their own subtype).
const (
	TypeInvalid    uint8 = 0
	TypeLinkedList uint8 = 1
	TypeHashTable  uint8 = 2 // chained hash table
	TypeCuckoo     uint8 = 3 // DPDK-style two-choice bucketed cuckoo
	TypeSkipList   uint8 = 4
	TypeBST        uint8 = 5 // binary search tree / object tree
	TypeTrie       uint8 = 6 // Aho-Corasick automaton
)

// TypeName returns a printable name for a header type code.
func TypeName(t uint8) string {
	switch t {
	case TypeLinkedList:
		return "linkedlist"
	case TypeHashTable:
		return "hashtable"
	case TypeCuckoo:
		return "cuckoo"
	case TypeSkipList:
		return "skiplist"
	case TypeBST:
		return "bst"
	case TypeTrie:
		return "trie"
	default:
		return fmt.Sprintf("type%d", t)
	}
}

// HeaderSize is the metadata header size: one cacheline (Fig. 4).
const HeaderSize = mem.LineSize

// Header field offsets within the 64 B block.
const (
	hdrOffRoot    = 0  // 8 B pointer to the data structure
	hdrOffType    = 8  // 1 B type
	hdrOffSubtype = 9  // 1 B subtype (e.g. bucket entries)
	hdrOffKeyLen  = 10 // 2 B key length
	hdrOffFlags   = 12 // 4 B flags
	hdrOffSize    = 16 // 8 B element count / capacity
	hdrOffAux     = 24 // 8 B structure-specific (bucket count, levels, ...)
	hdrOffAux2    = 32 // 8 B structure-specific (hash seed, ...)
	// 40..63 reserved for future extension
)

// Header is the decoded form of the Fig. 4 metadata block.
type Header struct {
	Root    mem.VAddr // pointer to the data structure
	Type    uint8     // data structure type (selects the CFA)
	Subtype uint8     // e.g. entries per bucket for hash tables
	KeyLen  uint16    // length of stored keys in bytes
	Flags   uint32
	Size    uint64 // element count (static structures) or capacity
	Aux     uint64 // structure-specific: bucket count, max level, ...
	Aux2    uint64 // structure-specific: hash seed, ...
}

// WriteHeader allocates a cacheline-aligned header block, encodes h into
// it, and returns its address.
func WriteHeader(as *mem.AddressSpace, h Header) mem.VAddr {
	addr := as.Alloc(HeaderSize, mem.LineSize)
	EncodeHeader(as, addr, h)
	return addr
}

// EncodeHeader stores h at addr (which must be mapped).
func EncodeHeader(as *mem.AddressSpace, addr mem.VAddr, h Header) {
	var buf [HeaderSize]byte
	putU64(buf[hdrOffRoot:], uint64(h.Root))
	buf[hdrOffType] = h.Type
	buf[hdrOffSubtype] = h.Subtype
	putU16(buf[hdrOffKeyLen:], h.KeyLen)
	putU32(buf[hdrOffFlags:], h.Flags)
	putU64(buf[hdrOffSize:], h.Size)
	putU64(buf[hdrOffAux:], h.Aux)
	putU64(buf[hdrOffAux2:], h.Aux2)
	as.MustWrite(addr, buf[:])
}

// ReadHeader decodes the header at addr.
func ReadHeader(as *mem.AddressSpace, addr mem.VAddr) (Header, error) {
	var buf [HeaderSize]byte
	if err := as.Read(addr, buf[:]); err != nil {
		return Header{}, err
	}
	return Header{
		Root:    mem.VAddr(getU64(buf[hdrOffRoot:])),
		Type:    buf[hdrOffType],
		Subtype: buf[hdrOffSubtype],
		KeyLen:  getU16(buf[hdrOffKeyLen:]),
		Flags:   getU32(buf[hdrOffFlags:]),
		Size:    getU64(buf[hdrOffSize:]),
		Aux:     getU64(buf[hdrOffAux:]),
		Aux2:    getU64(buf[hdrOffAux2:]),
	}, nil
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU16(b []byte, v uint16) {
	_ = b[1]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}

func getU16(b []byte) uint16 {
	_ = b[1]
	return uint16(b[0]) | uint16(b[1])<<8
}

// readKey fetches keyLen bytes at addr.
func readKey(as *mem.AddressSpace, addr mem.VAddr, keyLen uint16) ([]byte, error) {
	k := make([]byte, keyLen)
	if err := as.Read(addr, k); err != nil {
		return nil, err
	}
	return k, nil
}

// Hash is the hashing primitive shared by the host-side builders, the
// software-baseline traces, and the accelerator's hashing unit
// (Sec. IV-B: "the hashing unit supports common hash functions").
// It is a 64-bit FNV-1a over the key bytes mixed with a seed.
func Hash(key []byte, seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ seed
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	// Final avalanche so low bits are usable as bucket indices.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// HashOps is the number of ALU/MulALU micro-ops a software implementation
// of Hash spends per 8 bytes of key (xor+mul per byte amortized to word
// granularity, plus the avalanche) — used by the baseline trace
// generators to charge realistic frontend work for hashing.
func HashOps(keyLen int) (alu, mul int) {
	words := (keyLen + 7) / 8
	return 2*words + 3, words + 2
}
