package dstruct

import (
	"bytes"

	"qei/internal/mem"
)

// Linked-list node layout (List 1 of the paper, laid out for cacheline
// friendliness: pointers first, key inline so short keys share the node's
// first line):
//
//	offset 0:  next pointer (8 B, 0 = NULL)
//	offset 8:  value (8 B; in real applications a pointer to the data)
//	offset 16: key bytes (KeyLen)
const (
	listOffNext  = 0
	listOffValue = 8
	listOffKey   = 16
)

// ListNodeSize returns the allocation size for one node with keyLen keys,
// rounded to a cacheline so nodes never share lines (the malloc behaviour
// of a slab allocator for fixed-size nodes).
func ListNodeSize(keyLen int) uint64 {
	sz := uint64(listOffKey + keyLen)
	return (sz + mem.LineSize - 1) &^ (mem.LineSize - 1)
}

// LinkedList is the host handle to a simulated-memory linked list.
type LinkedList struct {
	HeaderAddr mem.VAddr
	Head       mem.VAddr
	KeyLen     uint16
	Len        int
}

// BuildLinkedList materializes keys/values as a singly linked list in as,
// in the given order, and writes its Fig. 4 header. All keys must have
// identical length (the header records one KeyLen, as in the paper).
func BuildLinkedList(as *mem.AddressSpace, keys [][]byte, values []uint64) *LinkedList {
	if len(keys) != len(values) {
		panic("dstruct: keys/values length mismatch")
	}
	keyLen := 0
	if len(keys) > 0 {
		keyLen = len(keys[0])
	}
	nodeSize := ListNodeSize(keyLen)
	var head mem.VAddr
	var prev mem.VAddr
	for i, k := range keys {
		if len(k) != keyLen {
			panic("dstruct: inconsistent key lengths in linked list")
		}
		node := as.Alloc(nodeSize, mem.LineSize)
		if i == 0 {
			head = node
		} else {
			as.MustWrite(prev+listOffNext, encodeU64(uint64(node)))
		}
		as.MustWrite(node+listOffNext, encodeU64(0))
		as.MustWrite(node+listOffValue, encodeU64(values[i]))
		as.MustWrite(node+listOffKey, k)
		prev = node
	}
	hdr := Header{
		Root:   head,
		Type:   TypeLinkedList,
		KeyLen: uint16(keyLen),
		Size:   uint64(len(keys)),
	}
	return &LinkedList{
		HeaderAddr: WriteHeader(as, hdr),
		Head:       head,
		KeyLen:     uint16(keyLen),
		Len:        len(keys),
	}
}

// ListNext reads a node's next pointer.
func ListNext(as *mem.AddressSpace, node mem.VAddr) (mem.VAddr, error) {
	v, err := as.ReadU64(node + listOffNext)
	return mem.VAddr(v), err
}

// ListValue reads a node's value field.
func ListValue(as *mem.AddressSpace, node mem.VAddr) (uint64, error) {
	return as.ReadU64(node + listOffValue)
}

// ListKey reads a node's key.
func ListKey(as *mem.AddressSpace, node mem.VAddr, keyLen uint16) ([]byte, error) {
	return readKey(as, node+listOffKey, keyLen)
}

// ListKeyAddr returns the address of a node's key bytes.
func ListKeyAddr(node mem.VAddr) mem.VAddr { return node + listOffKey }

// QueryLinkedListRef is the host-side reference lookup: it walks the
// simulated bytes exactly as List 1 does and returns (value, found).
func QueryLinkedListRef(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (uint64, bool, error) {
	h, err := ReadHeader(as, headerAddr)
	if err != nil {
		return 0, false, err
	}
	node := h.Root
	for node != 0 {
		k, err := ListKey(as, node, h.KeyLen)
		if err != nil {
			return 0, false, err
		}
		if bytes.Equal(k, key) {
			v, err := ListValue(as, node)
			return v, err == nil, err
		}
		node, err = ListNext(as, node)
		if err != nil {
			return 0, false, err
		}
	}
	return 0, false, nil
}

func encodeU64(v uint64) []byte {
	b := make([]byte, 8)
	putU64(b, v)
	return b
}
