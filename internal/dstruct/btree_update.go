package dstruct

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"qei/internal/mem"
)

// B+-tree software mutators: insert with leaf/inner splits and delete
// with borrow-else-merge, the split/merge churn the streaming workload
// exercises. Like every mutator in this package the routines run in
// host software against the simulated bytes; new nodes come from the
// caller's allocator and unlinked nodes are returned as extents for
// epoch-based retirement.
//
// Invariants maintained (matching BuildBTree's bulk-loaded shape):
//   - inner nodes hold at most Fanout-1 separators (Fanout children),
//     leaves at most Fanout entries;
//   - child i of an inner node covers keys >= separator i, the link
//     child covers keys below every separator;
//   - leaves form a singly linked chain through their link slots;
//   - the header's Root, Size, and Aux (height) fields track every
//     structural change, since both the reference walker and the
//     accelerator CFA start from the header.

// btNode is one node's bytes staged in host memory for mutation.
type btNode struct {
	addr   mem.VAddr
	keyLen int
	fanout int
	buf    []byte
}

func (t *BTree) loadNode(as *mem.AddressSpace, addr mem.VAddr) (*btNode, error) {
	n := &btNode{
		addr:   addr,
		keyLen: int(t.KeyLen),
		fanout: t.Fanout,
		buf:    make([]byte, btreeNodeSize(int(t.KeyLen), t.Fanout)),
	}
	if err := as.Read(addr, n.buf); err != nil {
		return nil, err
	}
	return n, nil
}

func (n *btNode) store(as *mem.AddressSpace) { as.MustWrite(n.addr, n.buf) }

func (n *btNode) leaf() bool { return n.buf[btreeOffKind] == btreeKindLeaf }

func (n *btNode) setLeaf(v bool) {
	if v {
		n.buf[btreeOffKind] = btreeKindLeaf
	} else {
		n.buf[btreeOffKind] = btreeKindInner
	}
}

func (n *btNode) count() int {
	return int(binary.LittleEndian.Uint16(n.buf[btreeOffCount:]))
}

func (n *btNode) setCount(c int) {
	binary.LittleEndian.PutUint16(n.buf[btreeOffCount:], uint16(c))
}

func (n *btNode) link() mem.VAddr {
	return mem.VAddr(binary.LittleEndian.Uint64(n.buf[btreeOffLink:]))
}

func (n *btNode) setLink(a mem.VAddr) {
	binary.LittleEndian.PutUint64(n.buf[btreeOffLink:], uint64(a))
}

func (n *btNode) entryOff(i int) int {
	return btreeOffEntries + i*int(btreeEntrySize(n.keyLen))
}

func (n *btNode) key(i int) []byte {
	off := n.entryOff(i)
	return n.buf[off : off+n.keyLen]
}

func (n *btNode) ptr(i int) uint64 {
	return binary.LittleEndian.Uint64(n.buf[n.entryOff(i)+(n.keyLen+7)&^7:])
}

func (n *btNode) setEntry(i int, key []byte, ptr uint64) {
	off := n.entryOff(i)
	copy(n.buf[off:off+n.keyLen], key)
	binary.LittleEndian.PutUint64(n.buf[off+(n.keyLen+7)&^7:], ptr)
}

// insertEntry shifts entries i.. one slot right and writes (key, ptr)
// at i. The caller checks capacity.
func (n *btNode) insertEntry(i int, key []byte, ptr uint64) {
	esz := int(btreeEntrySize(n.keyLen))
	base := n.entryOff(i)
	copy(n.buf[base+esz:n.entryOff(n.count()+1)], n.buf[base:n.entryOff(n.count())])
	n.setEntry(i, key, ptr)
	n.setCount(n.count() + 1)
}

// removeEntry shifts entries i+1.. one slot left over i.
func (n *btNode) removeEntry(i int) {
	copy(n.buf[n.entryOff(i):], n.buf[n.entryOff(i+1):n.entryOff(n.count())])
	n.setCount(n.count() - 1)
}

// child returns child i of an inner node, where child 0 is the link
// slot and child i (i >= 1) is entry i-1's pointer.
func (n *btNode) child(i int) mem.VAddr {
	if i == 0 {
		return n.link()
	}
	return mem.VAddr(n.ptr(i - 1))
}

// childIndexFor returns the index (0 = link child) of the child
// covering key: one past the rightmost separator <= key.
func (n *btNode) childIndexFor(key []byte) int {
	idx := 0
	for i := 0; i < n.count(); i++ {
		if bytes.Compare(n.key(i), key) <= 0 {
			idx = i + 1
		} else {
			break
		}
	}
	return idx
}

func (t *BTree) nodeSize() uint64 { return btreeNodeSize(int(t.KeyLen), t.Fanout) }

func (t *BTree) newNode(as *mem.AddressSpace, al mem.Allocator, leaf bool) *btNode {
	n := &btNode{
		addr:   al.Alloc(t.nodeSize(), mem.LineSize),
		keyLen: int(t.KeyLen),
		fanout: t.Fanout,
		buf:    make([]byte, t.nodeSize()),
	}
	n.setLeaf(leaf)
	return n
}

// writeHeaderBack publishes Root/Size/Aux after a structural change.
func (t *BTree) writeHeaderBack(as *mem.AddressSpace) error {
	hdr, err := ReadHeader(as, t.HeaderAddr)
	if err != nil {
		return err
	}
	hdr.Root = t.Root
	hdr.Size = uint64(t.Len)
	hdr.Aux = uint64(t.Height)
	// An empty bulk load had no keys to take the length from; the first
	// insert fixes the header's KeyLen along with the root.
	hdr.KeyLen = t.KeyLen
	EncodeHeader(as, t.HeaderAddr, hdr)
	return nil
}

// Insert adds or updates key in the tree, splitting nodes as needed.
// It reports whether a structural split occurred.
func (t *BTree) Insert(as *mem.AddressSpace, al mem.Allocator, key []byte, value uint64) (bool, error) {
	if len(key) != int(t.KeyLen) {
		return false, fmt.Errorf("dstruct: key length %d, tree stores %d", len(key), t.KeyLen)
	}
	if t.Root == 0 {
		n := t.newNode(as, al, true)
		n.setEntry(0, key, value)
		n.setCount(1)
		n.store(as)
		t.Root = n.addr
		t.Height = 1
		t.Len = 1
		return false, t.writeHeaderBack(as)
	}

	splitsBefore := t.Splits
	promoKey, promoRight, grew, err := t.insertRec(as, al, t.Root, key, value)
	if err != nil {
		return false, err
	}
	if promoRight != 0 {
		// Root split: a fresh inner root with the old root as link child.
		root := t.newNode(as, al, false)
		root.setLink(t.Root)
		root.setEntry(0, promoKey, uint64(promoRight))
		root.setCount(1)
		root.store(as)
		t.Root = root.addr
		t.Height++
	}
	if grew {
		t.Len++
	}
	if grew || promoRight != 0 {
		if err := t.writeHeaderBack(as); err != nil {
			return false, err
		}
	}
	return t.Splits > splitsBefore, nil
}

// insertRec descends to the leaf, inserting on the way back up. A
// non-zero promoRight means node split: promoKey/promoRight must be
// inserted into the parent.
func (t *BTree) insertRec(as *mem.AddressSpace, al mem.Allocator, addr mem.VAddr, key []byte, value uint64) (promoKey []byte, promoRight mem.VAddr, grew bool, err error) {
	n, err := t.loadNode(as, addr)
	if err != nil {
		return nil, 0, false, err
	}

	if n.leaf() {
		pos := 0
		for pos < n.count() {
			c := bytes.Compare(n.key(pos), key)
			if c == 0 {
				n.setEntry(pos, key, value) // update in place
				n.store(as)
				return nil, 0, false, nil
			}
			if c > 0 {
				break
			}
			pos++
		}
		if n.count() < t.Fanout {
			n.insertEntry(pos, key, value)
			n.store(as)
			return nil, 0, true, nil
		}
		// Leaf split: stage the fanout+1 entries, keep the lower half.
		keys, ptrs := n.stageInsert(pos, key, value)
		half := (len(keys) + 1) / 2
		right := t.newNode(as, al, true)
		right.setLink(n.link())
		for i := half; i < len(keys); i++ {
			right.setEntry(i-half, keys[i], ptrs[i])
		}
		right.setCount(len(keys) - half)
		right.store(as)
		n.setLink(right.addr)
		for i := 0; i < half; i++ {
			n.setEntry(i, keys[i], ptrs[i])
		}
		n.setCount(half)
		n.store(as)
		t.Splits++
		return append([]byte(nil), keys[half]...), right.addr, true, nil
	}

	idx := n.childIndexFor(key)
	promoKey, promoRight, grew, err = t.insertRec(as, al, n.child(idx), key, value)
	if err != nil || promoRight == 0 {
		return nil, 0, grew, err
	}
	// Insert the promoted separator right after the descended child.
	if n.count() < t.Fanout-1 {
		n.insertEntry(idx, promoKey, uint64(promoRight))
		n.store(as)
		return nil, 0, grew, nil
	}
	// Inner split: children c[0..m], separators s[0..m-1] after the
	// conceptual insert; the middle separator moves up.
	seps, childs := n.stageInnerInsert(idx, promoKey, promoRight)
	mid := len(seps) / 2
	right := t.newNode(as, al, false)
	right.setLink(childs[mid+1])
	for i := mid + 1; i < len(seps); i++ {
		right.setEntry(i-mid-1, seps[i], uint64(childs[i+1]))
	}
	right.setCount(len(seps) - mid - 1)
	right.store(as)
	n.setLink(childs[0])
	for i := 0; i < mid; i++ {
		n.setEntry(i, seps[i], uint64(childs[i+1]))
	}
	n.setCount(mid)
	n.store(as)
	t.Splits++
	return append([]byte(nil), seps[mid]...), right.addr, grew, nil
}

// stageInsert returns the leaf's entries with (key, ptr) inserted at
// pos, as host-side copies.
func (n *btNode) stageInsert(pos int, key []byte, ptr uint64) ([][]byte, []uint64) {
	keys := make([][]byte, 0, n.count()+1)
	ptrs := make([]uint64, 0, n.count()+1)
	for i := 0; i < n.count(); i++ {
		if i == pos {
			keys = append(keys, append([]byte(nil), key...))
			ptrs = append(ptrs, ptr)
		}
		keys = append(keys, append([]byte(nil), n.key(i)...))
		ptrs = append(ptrs, n.ptr(i))
	}
	if pos == n.count() {
		keys = append(keys, append([]byte(nil), key...))
		ptrs = append(ptrs, ptr)
	}
	return keys, ptrs
}

// stageInnerInsert returns the inner node's separators and children
// with (sep, child) inserted after child position idx.
func (n *btNode) stageInnerInsert(idx int, sep []byte, child mem.VAddr) ([][]byte, []mem.VAddr) {
	seps := make([][]byte, 0, n.count()+1)
	childs := make([]mem.VAddr, 0, n.count()+2)
	childs = append(childs, n.link())
	for i := 0; i < n.count(); i++ {
		seps = append(seps, append([]byte(nil), n.key(i)...))
		childs = append(childs, mem.VAddr(n.ptr(i)))
	}
	// The new separator slots in at separator index idx (child idx+1).
	seps = append(seps, nil)
	copy(seps[idx+1:], seps[idx:])
	seps[idx] = append([]byte(nil), sep...)
	childs = append(childs, 0)
	copy(childs[idx+2:], childs[idx+1:])
	childs[idx+1] = child
	return seps, childs
}

// Delete removes key, rebalancing with borrow-else-merge. It reports
// whether the key existed and returns the extents of nodes the
// rebalance unlinked (merged-away siblings, a collapsed root).
func (t *BTree) Delete(as *mem.AddressSpace, key []byte) (bool, []mem.Extent, error) {
	if len(key) != int(t.KeyLen) {
		return false, nil, fmt.Errorf("dstruct: key length %d, tree stores %d", len(key), t.KeyLen)
	}
	if t.Root == 0 {
		return false, nil, nil
	}
	var freed []mem.Extent
	found, _, err := t.deleteRec(as, t.Root, key, &freed)
	if err != nil || !found {
		return false, nil, err
	}
	t.Len--

	// Collapse the root while it is an inner node with a single child.
	for {
		root, err := t.loadNode(as, t.Root)
		if err != nil {
			return false, nil, err
		}
		if root.leaf() || root.count() > 0 {
			break
		}
		freed = append(freed, mem.Extent{Addr: t.Root, Size: t.nodeSize()})
		t.Root = root.link()
		t.Height--
	}
	return true, freed, t.writeHeaderBack(as)
}

// deleteRec removes key under addr, reporting whether the node is now
// underfull (the parent rebalances it).
func (t *BTree) deleteRec(as *mem.AddressSpace, addr mem.VAddr, key []byte, freed *[]mem.Extent) (found, underflow bool, err error) {
	n, err := t.loadNode(as, addr)
	if err != nil {
		return false, false, err
	}
	if n.leaf() {
		for i := 0; i < n.count(); i++ {
			if bytes.Equal(n.key(i), key) {
				n.removeEntry(i)
				n.store(as)
				return true, n.count() < t.minLeaf(), nil
			}
		}
		return false, false, nil
	}

	idx := n.childIndexFor(key)
	found, childUnder, err := t.deleteRec(as, n.child(idx), key, freed)
	if err != nil || !found {
		return found, false, err
	}
	if childUnder {
		if err := t.rebalanceChild(as, n, idx, freed); err != nil {
			return false, false, err
		}
	}
	return true, n.count() < t.minSep(), nil
}

// minLeaf and minSep are the underflow thresholds: half-full leaves,
// half the separator capacity for inner nodes. Sized so a merge of an
// underfull node with a non-lendable sibling always fits.
func (t *BTree) minLeaf() int { return t.Fanout / 2 }
func (t *BTree) minSep() int  { return (t.Fanout - 1) / 2 }

// rebalanceChild fixes underfull child pos of parent p: borrow one
// entry from an adjacent sibling that can spare it, else merge the
// child with a sibling. p is stored back; the caller re-checks p's own
// occupancy.
func (t *BTree) rebalanceChild(as *mem.AddressSpace, p *btNode, pos int, freed *[]mem.Extent) error {
	c, err := t.loadNode(as, p.child(pos))
	if err != nil {
		return err
	}
	min := t.minLeaf()
	if !c.leaf() {
		min = t.minSep()
	}

	var left, right *btNode
	if pos > 0 {
		if left, err = t.loadNode(as, p.child(pos-1)); err != nil {
			return err
		}
	}
	if pos < p.count() {
		if right, err = t.loadNode(as, p.child(pos+1)); err != nil {
			return err
		}
	}

	switch {
	case left != nil && left.count() > min:
		t.borrowFromLeft(p, pos, left, c)
		left.store(as)
		c.store(as)
		p.store(as)
	case right != nil && right.count() > min:
		t.borrowFromRight(p, pos, c, right)
		right.store(as)
		c.store(as)
		p.store(as)
	case left != nil:
		t.mergeInto(p, pos-1, left, c)
		left.store(as)
		p.store(as)
		*freed = append(*freed, mem.Extent{Addr: c.addr, Size: t.nodeSize()})
		t.Merges++
	case right != nil:
		t.mergeInto(p, pos, c, right)
		c.store(as)
		p.store(as)
		*freed = append(*freed, mem.Extent{Addr: right.addr, Size: t.nodeSize()})
		t.Merges++
	}
	return nil
}

// borrowFromLeft moves left's last entry into c (child pos of p). The
// separator between them is p's entry pos-1.
func (t *BTree) borrowFromLeft(p *btNode, pos int, left, c *btNode) {
	last := left.count() - 1
	if c.leaf() {
		c.insertEntry(0, left.key(last), left.ptr(last))
		p.setEntry(pos-1, c.key(0), p.ptr(pos-1))
	} else {
		// Rotate through the parent: the separator comes down in front
		// of c's children, left's last separator goes up.
		c.insertEntry(0, p.key(pos-1), uint64(c.link()))
		c.setLink(mem.VAddr(left.ptr(last)))
		p.setEntry(pos-1, left.key(last), p.ptr(pos-1))
	}
	left.removeEntry(last)
}

// borrowFromRight moves right's first entry into c (child pos of p).
// The separator between them is p's entry pos.
func (t *BTree) borrowFromRight(p *btNode, pos int, c, right *btNode) {
	if c.leaf() {
		c.insertEntry(c.count(), right.key(0), right.ptr(0))
		right.removeEntry(0)
		p.setEntry(pos, right.key(0), p.ptr(pos))
	} else {
		c.insertEntry(c.count(), p.key(pos), uint64(right.link()))
		p.setEntry(pos, right.key(0), p.ptr(pos))
		right.setLink(mem.VAddr(right.ptr(0)))
		right.removeEntry(0)
	}
}

// mergeInto folds right into left, where left is child sepIdx of p and
// right is child sepIdx+1; p's entry sepIdx (the separator and the
// pointer to right) disappears.
func (t *BTree) mergeInto(p *btNode, sepIdx int, left, right *btNode) {
	if left.leaf() {
		base := left.count()
		for i := 0; i < right.count(); i++ {
			left.setEntry(base+i, right.key(i), right.ptr(i))
		}
		left.setCount(base + right.count())
		left.setLink(right.link()) // keep the leaf chain intact
	} else {
		base := left.count()
		left.setEntry(base, p.key(sepIdx), uint64(right.link()))
		for i := 0; i < right.count(); i++ {
			left.setEntry(base+1+i, right.key(i), right.ptr(i))
		}
		left.setCount(base + 1 + right.count())
	}
	p.removeEntry(sepIdx)
}
