package dstruct

import (
	"bytes"

	"qei/internal/mem"
)

// Chained hash table layout: a power-of-two array of 8 B head pointers,
// each the head of a linked list of nodes in the package's list layout.
// This is the "hash table of linked lists" combined structure the paper
// calls out explicitly (Sec. III-A): it gets its own type/subtype and a
// dedicated CFA that chains the hash state into the list-walk states.
//
// Header fields: Root = bucket array base, Aux = bucket count (power of
// two), Aux2 = hash seed, KeyLen = key length, Size = element count.

// HashTable is the host handle to a simulated chained hash table.
type HashTable struct {
	HeaderAddr mem.VAddr
	Buckets    mem.VAddr
	NBuckets   uint64
	Seed       uint64
	KeyLen     uint16
	Len        int
}

// BuildHashTable materializes a chained hash table with nBuckets buckets
// (rounded up to a power of two) holding the given keys and values.
func BuildHashTable(as *mem.AddressSpace, nBuckets uint64, seed uint64, keys [][]byte, values []uint64) *HashTable {
	if len(keys) != len(values) {
		panic("dstruct: keys/values length mismatch")
	}
	nBuckets = ceilPow2(nBuckets)
	keyLen := 0
	if len(keys) > 0 {
		keyLen = len(keys[0])
	}
	bucketArr := as.Alloc(nBuckets*8, mem.LineSize)
	nodeSize := ListNodeSize(keyLen)
	for i, k := range keys {
		if len(k) != keyLen {
			panic("dstruct: inconsistent key lengths in hash table")
		}
		b := Hash(k, seed) & (nBuckets - 1)
		slot := bucketArr + mem.VAddr(b*8)
		head, err := as.ReadU64(slot)
		if err != nil {
			panic(err)
		}
		node := as.Alloc(nodeSize, mem.LineSize)
		as.MustWrite(node+listOffNext, encodeU64(head))
		as.MustWrite(node+listOffValue, encodeU64(values[i]))
		as.MustWrite(node+listOffKey, k)
		as.MustWrite(slot, encodeU64(uint64(node)))
	}
	hdr := Header{
		Root:   bucketArr,
		Type:   TypeHashTable,
		KeyLen: uint16(keyLen),
		Size:   uint64(len(keys)),
		Aux:    nBuckets,
		Aux2:   seed,
	}
	return &HashTable{
		HeaderAddr: WriteHeader(as, hdr),
		Buckets:    bucketArr,
		NBuckets:   nBuckets,
		Seed:       seed,
		KeyLen:     uint16(keyLen),
		Len:        len(keys),
	}
}

// HashBucketSlot returns the address of the bucket head pointer for key.
func HashBucketSlot(h Header, key []byte) mem.VAddr {
	b := Hash(key, h.Aux2) & (h.Aux - 1)
	return h.Root + mem.VAddr(b*8)
}

// QueryHashTableRef is the host-side reference lookup.
func QueryHashTableRef(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (uint64, bool, error) {
	h, err := ReadHeader(as, headerAddr)
	if err != nil {
		return 0, false, err
	}
	head, err := as.ReadU64(HashBucketSlot(h, key))
	if err != nil {
		return 0, false, err
	}
	node := mem.VAddr(head)
	for node != 0 {
		k, err := ListKey(as, node, h.KeyLen)
		if err != nil {
			return 0, false, err
		}
		if bytes.Equal(k, key) {
			v, err := ListValue(as, node)
			return v, err == nil, err
		}
		node, err = ListNext(as, node)
		if err != nil {
			return 0, false, err
		}
	}
	return 0, false, nil
}

func ceilPow2(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}
