package dstruct

import (
	"bytes"
	"fmt"

	"qei/internal/mem"
)

// B+-tree — the index structure of in-memory databases (the paper's
// related work accelerates exactly these traversals in "Meet the
// walkers" [45]; the tree category of Sec. II-A includes them). Inner
// nodes hold sorted separator keys and child pointers; leaves hold
// sorted key/value pairs. All keys are fixed-length.
//
// Node layout (one allocation per node, line-aligned):
//
//	offset 0:  kind (1 B: 0 inner, 1 leaf) | pad (1 B) | count (2 B) | pad (4 B)
//	offset 8:  for leaves: next-leaf pointer (8 B); inner: first child (8 B)
//	offset 16: entries
//	  inner: count entries of [key (KeyLen, padded to 8) | child (8 B)]
//	         — child i covers keys >= key i (first child covers the rest)
//	  leaf:  count entries of [key (KeyLen, padded to 8) | value (8 B)]
const (
	btreeOffKind    = 0
	btreeOffCount   = 2
	btreeOffLink    = 8
	btreeOffEntries = 16

	btreeKindInner = 0
	btreeKindLeaf  = 1
)

// TypeBTree is the header type code for B+-trees (a built-in CFA).
const TypeBTree uint8 = 7

// BTree is the host handle to a simulated B+-tree.
type BTree struct {
	HeaderAddr mem.VAddr
	Root       mem.VAddr
	KeyLen     uint16
	Fanout     int
	Height     int
	Len        int
	// Splits and Merges count structural rebalances performed by the
	// software mutators (btree_update.go); the streaming experiment
	// asserts both paths were exercised.
	Splits int
	Merges int
}

// btreeEntrySize returns the stride of one node entry.
func btreeEntrySize(keyLen int) uint64 {
	return uint64((keyLen+7)&^7) + 8
}

// btreeNodeSize returns a node's allocation size for the given fanout.
func btreeNodeSize(keyLen, fanout int) uint64 {
	sz := uint64(btreeOffEntries) + btreeEntrySize(keyLen)*uint64(fanout)
	return (sz + mem.LineSize - 1) &^ (mem.LineSize - 1)
}

// BTreeEntryAddr returns the address of entry i in a node.
func BTreeEntryAddr(node mem.VAddr, keyLen, i int) mem.VAddr {
	return node + btreeOffEntries + mem.VAddr(uint64(i)*btreeEntrySize(keyLen))
}

// BTreeNodeMeta reads a node's kind and entry count.
func BTreeNodeMeta(as *mem.AddressSpace, node mem.VAddr) (leaf bool, count int, err error) {
	var buf [4]byte
	if err := as.Read(node, buf[:]); err != nil {
		return false, 0, err
	}
	return buf[0] == btreeKindLeaf, int(uint16(buf[2]) | uint16(buf[3])<<8), nil
}

// BuildBTree bulk-loads sorted keys into a B+-tree with the given fanout
// (entries per node). Keys are sorted internally; duplicates are
// rejected by construction (genUnique inputs upstream).
func BuildBTree(as *mem.AddressSpace, fanout int, keys [][]byte, values []uint64) *BTree {
	if len(keys) != len(values) {
		panic("dstruct: keys/values length mismatch")
	}
	if fanout < 2 {
		panic("dstruct: B+-tree fanout must be >= 2")
	}
	keyLen := 0
	if len(keys) > 0 {
		keyLen = len(keys[0])
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sortIdxByKey(idx, keys)

	entrySize := btreeEntrySize(keyLen)
	writeEntry := func(node mem.VAddr, i int, key []byte, ptr uint64) {
		ea := BTreeEntryAddr(node, keyLen, i)
		as.MustWrite(ea, key)
		as.MustWrite(ea+mem.VAddr(uint64((keyLen+7)&^7)), encodeU64(ptr))
	}
	writeMeta := func(node mem.VAddr, leaf bool, count int) {
		var buf [4]byte
		if leaf {
			buf[0] = btreeKindLeaf
		}
		buf[2] = byte(count)
		buf[3] = byte(count >> 8)
		as.MustWrite(node, buf[:])
	}
	_ = entrySize

	// Build the leaf level.
	type levelNode struct {
		addr mem.VAddr
		// sep is the smallest key in the subtree (router key upward).
		sep []byte
	}
	var level []levelNode
	var prevLeaf mem.VAddr
	for start := 0; start < len(idx); start += fanout {
		end := start + fanout
		if end > len(idx) {
			end = len(idx)
		}
		node := as.Alloc(btreeNodeSize(keyLen, fanout), mem.LineSize)
		writeMeta(node, true, end-start)
		for i := start; i < end; i++ {
			k := keys[idx[i]]
			if len(k) != keyLen {
				panic("dstruct: inconsistent key lengths in B+-tree")
			}
			writeEntry(node, i-start, k, values[idx[i]])
		}
		if prevLeaf != 0 {
			as.MustWrite(prevLeaf+btreeOffLink, encodeU64(uint64(node)))
		}
		prevLeaf = node
		level = append(level, levelNode{addr: node, sep: keys[idx[start]]})
	}
	height := 1

	// Build inner levels until a single root remains.
	for len(level) > 1 {
		var next []levelNode
		for start := 0; start < len(level); start += fanout {
			end := start + fanout
			if end > len(level) {
				end = len(level)
			}
			node := as.Alloc(btreeNodeSize(keyLen, fanout), mem.LineSize)
			// First child in the link slot, separators for the rest.
			writeMeta(node, false, end-start-1)
			as.MustWrite(node+btreeOffLink, encodeU64(uint64(level[start].addr)))
			for i := start + 1; i < end; i++ {
				writeEntry(node, i-start-1, level[i].sep, uint64(level[i].addr))
			}
			next = append(next, levelNode{addr: node, sep: level[start].sep})
		}
		level = next
		height++
	}

	var root mem.VAddr
	if len(level) == 1 {
		root = level[0].addr
	}
	hdr := Header{
		Root:    root,
		Type:    TypeBTree,
		Subtype: uint8(fanout),
		KeyLen:  uint16(keyLen),
		Size:    uint64(len(keys)),
		Aux:     uint64(height),
	}
	return &BTree{
		HeaderAddr: WriteHeader(as, hdr),
		Root:       root,
		KeyLen:     uint16(keyLen),
		Fanout:     fanout,
		Height:     height,
		Len:        len(keys),
	}
}

// BTreeSearchNode finds, within one node, the entry governing key: for
// leaves the matching entry (or -1), for inner nodes the child to
// descend into. It returns the child/value, whether it's a leaf match,
// and the number of entries probed (binary search).
func BTreeSearchNode(as *mem.AddressSpace, node mem.VAddr, keyLen int, key []byte) (ptr uint64, leaf bool, found bool, probes int, err error) {
	leaf, count, err := BTreeNodeMeta(as, node)
	if err != nil {
		return 0, false, false, 0, err
	}
	readKeyAt := func(i int) ([]byte, error) {
		return readKey(as, BTreeEntryAddr(node, keyLen, i), uint16(keyLen))
	}
	readPtr := func(i int) (uint64, error) {
		return as.ReadU64(BTreeEntryAddr(node, keyLen, i) + mem.VAddr(uint64((keyLen+7)&^7)))
	}
	if leaf {
		lo, hi := 0, count-1
		for lo <= hi {
			mid := (lo + hi) / 2
			probes++
			k, err := readKeyAt(mid)
			if err != nil {
				return 0, leaf, false, probes, err
			}
			switch c := bytes.Compare(k, key); {
			case c == 0:
				v, err := readPtr(mid)
				return v, leaf, err == nil, probes, err
			case c < 0:
				lo = mid + 1
			default:
				hi = mid - 1
			}
		}
		return 0, leaf, false, probes, nil
	}
	// Inner: find the rightmost separator <= key; descend its child, or
	// the link (first child) when key precedes all separators.
	lo, hi, best := 0, count-1, -1
	for lo <= hi {
		mid := (lo + hi) / 2
		probes++
		k, err := readKeyAt(mid)
		if err != nil {
			return 0, leaf, false, probes, err
		}
		if bytes.Compare(k, key) <= 0 {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if best == -1 {
		first, err := as.ReadU64(node + btreeOffLink)
		return first, leaf, false, probes, err
	}
	child, err := readPtr(best)
	return child, leaf, false, probes, err
}

// QueryBTreeRef is the host-side reference lookup.
func QueryBTreeRef(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (uint64, bool, error) {
	h, err := ReadHeader(as, headerAddr)
	if err != nil {
		return 0, false, err
	}
	if h.Type != TypeBTree {
		return 0, false, fmt.Errorf("dstruct: header is %s, want btree", TypeName(h.Type))
	}
	node := h.Root
	for i := 0; node != 0 && i <= int(h.Aux); i++ {
		ptr, leaf, found, _, err := BTreeSearchNode(as, node, int(h.KeyLen), key)
		if err != nil {
			return 0, false, err
		}
		if leaf {
			return ptr, found, nil
		}
		node = mem.VAddr(ptr)
	}
	return 0, false, nil
}

// BTreeScanFrom walks leaf links collecting up to n values starting at
// the first key >= start (range scans, the other classic index query).
func BTreeScanFrom(as *mem.AddressSpace, headerAddr mem.VAddr, start []byte, n int) ([]uint64, error) {
	h, err := ReadHeader(as, headerAddr)
	if err != nil {
		return nil, err
	}
	node := h.Root
	// Descend to the leaf that would hold start.
	for {
		leaf, _, err := BTreeNodeMeta(as, node)
		if err != nil {
			return nil, err
		}
		if leaf {
			break
		}
		ptr, _, _, _, err := BTreeSearchNode(as, node, int(h.KeyLen), start)
		if err != nil {
			return nil, err
		}
		node = mem.VAddr(ptr)
	}
	var out []uint64
	for node != 0 && len(out) < n {
		leaf, count, err := BTreeNodeMeta(as, node)
		if err != nil {
			return nil, err
		}
		if !leaf {
			return nil, fmt.Errorf("dstruct: leaf chain reached an inner node")
		}
		for i := 0; i < count && len(out) < n; i++ {
			k, err := readKey(as, BTreeEntryAddr(node, int(h.KeyLen), i), h.KeyLen)
			if err != nil {
				return nil, err
			}
			if bytes.Compare(k, start) < 0 {
				continue
			}
			v, err := as.ReadU64(BTreeEntryAddr(node, int(h.KeyLen), i) + mem.VAddr(uint64((int(h.KeyLen)+7)&^7)))
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		nextU, err := as.ReadU64(node + btreeOffLink)
		if err != nil {
			return nil, err
		}
		node = mem.VAddr(nextU)
	}
	return out, nil
}
