package dstruct

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"qei/internal/mem"
)

func newAS() *mem.AddressSpace {
	return mem.NewAddressSpace(mem.NewPhysical())
}

func genKeys(n, keyLen int, seed int64) ([][]byte, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	keys := make([][]byte, 0, n)
	vals := make([]uint64, 0, n)
	for len(keys) < n {
		k := make([]byte, keyLen)
		rng.Read(k)
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		keys = append(keys, k)
		vals = append(vals, uint64(len(keys))*1000+7)
	}
	return keys, vals
}

func TestHeaderRoundTrip(t *testing.T) {
	as := newAS()
	h := Header{
		Root: 0x123456, Type: TypeCuckoo, Subtype: 8, KeyLen: 16,
		Flags: 0xf00d, Size: 42, Aux: 1024, Aux2: 0xdeadbeef,
	}
	addr := WriteHeader(as, h)
	got, err := ReadHeader(as, addr)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header round trip: got %+v want %+v", got, h)
	}
}

func TestHeaderIsOneCacheline(t *testing.T) {
	if HeaderSize != 64 {
		t.Fatalf("HeaderSize = %d, want 64 (Fig. 4: single cacheline)", HeaderSize)
	}
}

func TestHashDeterministicAndSeeded(t *testing.T) {
	k := []byte("hello world key!")
	if Hash(k, 1) != Hash(k, 1) {
		t.Fatal("Hash not deterministic")
	}
	if Hash(k, 1) == Hash(k, 2) {
		t.Fatal("seed does not affect Hash")
	}
	// Spread check: bucket distribution over 256 buckets shouldn't have
	// any empty quarter with 10k keys.
	counts := make([]int, 4)
	for i := 0; i < 10000; i++ {
		counts[Hash([]byte(fmt.Sprintf("key-%d", i)), 0)&3]++
	}
	for q, c := range counts {
		if c < 2000 || c > 3000 {
			t.Fatalf("hash quarter %d has %d of 10000", q, c)
		}
	}
}

func TestLinkedListQuery(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(50, 16, 1)
	l := BuildLinkedList(as, keys, vals)
	for i, k := range keys {
		v, found, err := QueryLinkedListRef(as, l.HeaderAddr, k)
		if err != nil {
			t.Fatal(err)
		}
		if !found || v != vals[i] {
			t.Fatalf("key %d: found=%v v=%d want %d", i, found, v, vals[i])
		}
	}
	if _, found, _ := QueryLinkedListRef(as, l.HeaderAddr, make([]byte, 16)); found {
		t.Fatal("absent key reported found")
	}
}

func TestLinkedListPreservesOrder(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(10, 8, 2)
	l := BuildLinkedList(as, keys, vals)
	node := l.Head
	for i := 0; i < len(keys); i++ {
		k, err := ListKey(as, node, l.KeyLen)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(k, keys[i]) {
			t.Fatalf("node %d holds wrong key", i)
		}
		node, err = ListNext(as, node)
		if err != nil {
			t.Fatal(err)
		}
	}
	if node != 0 {
		t.Fatal("list does not end in NULL")
	}
}

func TestHashTableQuery(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(500, 16, 3)
	ht := BuildHashTable(as, 128, 99, keys, vals)
	for i, k := range keys {
		v, found, err := QueryHashTableRef(as, ht.HeaderAddr, k)
		if err != nil {
			t.Fatal(err)
		}
		if !found || v != vals[i] {
			t.Fatalf("key %d: found=%v v=%d want %d", i, found, v, vals[i])
		}
	}
	absent := make([]byte, 16)
	if _, found, _ := QueryHashTableRef(as, ht.HeaderAddr, absent); found {
		t.Fatal("absent key reported found")
	}
}

func TestHashTableBucketsPowerOfTwo(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(10, 8, 4)
	ht := BuildHashTable(as, 100, 0, keys, vals)
	if ht.NBuckets != 128 {
		t.Fatalf("NBuckets = %d, want 128", ht.NBuckets)
	}
}

func TestCuckooQuery(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(2000, 16, 5)
	// 1024 buckets x 4 entries = 4096 slots for 2000 keys (~49% load).
	c := BuildCuckoo(as, 1024, 4, 7, keys, vals)
	if c.Len != 2000 {
		t.Fatalf("inserted %d keys", c.Len)
	}
	for i, k := range keys {
		v, found, err := QueryCuckooRef(as, c.HeaderAddr, k)
		if err != nil {
			t.Fatal(err)
		}
		if !found || v != vals[i] {
			t.Fatalf("key %d: found=%v v=%d want %d", i, found, v, vals[i])
		}
	}
	if _, found, _ := QueryCuckooRef(as, c.HeaderAddr, make([]byte, 16)); found {
		t.Fatal("absent key reported found")
	}
}

func TestCuckooUpdateInPlace(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(10, 16, 6)
	c := BuildCuckoo(as, 64, 4, 7, keys, vals)
	_ = c
	// Rebuild with same key twice: second insert must update, not dup.
	as2 := newAS()
	k := keys[0]
	c2 := BuildCuckoo(as2, 64, 4, 7, [][]byte{k, k}, []uint64{11, 22})
	v, found, err := QueryCuckooRef(as2, c2.HeaderAddr, k)
	if err != nil || !found {
		t.Fatalf("lookup failed: %v %v", found, err)
	}
	if v != 22 {
		t.Fatalf("duplicate insert returned %d, want updated value 22", v)
	}
}

func TestCuckooKicksUnderPressure(t *testing.T) {
	as := newAS()
	// 64 slots, 56 keys (~88% load): kicks must occur and all keys remain
	// findable.
	keys, vals := genKeys(56, 16, 7)
	c := BuildCuckoo(as, 16, 4, 3, keys, vals)
	for i, k := range keys {
		v, found, err := QueryCuckooRef(as, c.HeaderAddr, k)
		if err != nil || !found || v != vals[i] {
			t.Fatalf("key %d lost after kicks: found=%v v=%d err=%v", i, found, v, err)
		}
	}
}

func TestSkipListQuery(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(1000, 32, 8)
	sl := BuildSkipList(as, 42, keys, vals)
	for i, k := range keys {
		v, found, err := QuerySkipListRef(as, sl.HeaderAddr, k)
		if err != nil {
			t.Fatal(err)
		}
		if !found || v != vals[i] {
			t.Fatalf("key %d: found=%v v=%d want %d", i, found, v, vals[i])
		}
	}
	absent := bytes.Repeat([]byte{0xff}, 32)
	if _, found, _ := QuerySkipListRef(as, sl.HeaderAddr, absent); found {
		t.Fatal("absent key reported found")
	}
}

func TestSkipListSortedAtLevelZero(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(200, 16, 9)
	sl := BuildSkipList(as, 1, keys, vals)
	node := sl.Head
	var prev []byte
	count := 0
	for {
		nextU, err := as.ReadU64(SkipNextSlot(node, 0))
		if err != nil {
			t.Fatal(err)
		}
		if nextU == 0 {
			break
		}
		node = mem.VAddr(nextU)
		h, err := SkipHeight(as, node)
		if err != nil {
			t.Fatal(err)
		}
		k, err := as.ReadU64(SkipKeyAddr(node, h)) // peek first 8 bytes
		_ = k
		full := make([]byte, 16)
		as.MustRead(SkipKeyAddr(node, h), full)
		if prev != nil && bytes.Compare(prev, full) >= 0 {
			t.Fatal("level-0 chain not strictly sorted")
		}
		prev = full
		count++
	}
	if count != 200 {
		t.Fatalf("level-0 chain has %d nodes, want 200", count)
	}
}

func TestSkipListHeightsWithinBound(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(500, 16, 10)
	sl := BuildSkipList(as, 3, keys, vals)
	node := sl.Head
	for {
		nextU, err := as.ReadU64(SkipNextSlot(node, 0))
		if err != nil {
			t.Fatal(err)
		}
		if nextU == 0 {
			break
		}
		node = mem.VAddr(nextU)
		h, err := SkipHeight(as, node)
		if err != nil {
			t.Fatal(err)
		}
		if h < 1 || h > SkipMaxLevel {
			t.Fatalf("node height %d out of range", h)
		}
	}
}

func TestBSTQuery(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(800, 8, 11)
	b := BuildBST(as, 13, 64, keys, vals)
	for i, k := range keys {
		v, found, err := QueryBSTRef(as, b.HeaderAddr, k)
		if err != nil {
			t.Fatal(err)
		}
		if !found || v != vals[i] {
			t.Fatalf("key %d: found=%v v=%d want %d", i, found, v, vals[i])
		}
	}
	if _, found, _ := QueryBSTRef(as, b.HeaderAddr, make([]byte, 8)); found {
		t.Fatal("absent key reported found")
	}
}

func TestBSTDepthStats(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(1000, 8, 12)
	b := BuildBST(as, 17, 64, keys, vals)
	nodes, maxDepth, avgDepth, err := BSTDepthStats(as, b.HeaderAddr)
	if err != nil {
		t.Fatal(err)
	}
	if nodes != 1000 {
		t.Fatalf("nodes = %d, want 1000", nodes)
	}
	// Random insertion: expected depth ~ 2 ln n ≈ 13.8, max ~ 4.3 ln n.
	if avgDepth < 8 || avgDepth > 20 {
		t.Fatalf("avgDepth = %.1f, outside random-BST expectations", avgDepth)
	}
	if maxDepth < int(avgDepth) {
		t.Fatalf("maxDepth %d < avgDepth %.1f", maxDepth, avgDepth)
	}
}

func TestTrieScan(t *testing.T) {
	as := newAS()
	kws := [][]byte{[]byte("he"), []byte("she"), []byte("his"), []byte("hers")}
	tr := BuildTrie(as, kws, []uint64{1, 2, 3, 4})
	matches, err := ScanTrieRef(as, tr.HeaderAddr, []byte("ushers"))
	if err != nil {
		t.Fatal(err)
	}
	// "ushers": she@3 (and he via fail output), hers@6.
	if len(matches) < 2 {
		t.Fatalf("matches = %v, want at least [she-ish, hers]", matches)
	}
	has := func(v uint64) bool {
		for _, m := range matches {
			if m == v {
				return true
			}
		}
		return false
	}
	if !has(2) && !has(1) {
		t.Fatalf("matches = %v missing she/he", matches)
	}
	if !has(4) {
		t.Fatalf("matches = %v missing hers", matches)
	}
}

func TestTrieNoMatch(t *testing.T) {
	as := newAS()
	tr := BuildTrie(as, [][]byte{[]byte("needle")}, []uint64{9})
	matches, err := ScanTrieRef(as, tr.HeaderAddr, []byte("plain haystack text"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("unexpected matches %v", matches)
	}
}

func TestTrieStatesCount(t *testing.T) {
	as := newAS()
	tr := BuildTrie(as, [][]byte{[]byte("ab"), []byte("ac")}, []uint64{1, 2})
	// root + a + b + c = 4 states.
	if tr.States != 4 {
		t.Fatalf("States = %d, want 4", tr.States)
	}
}

func TestTrieFindEdgeSortedEarlyExit(t *testing.T) {
	as := newAS()
	tr := BuildTrie(as, [][]byte{[]byte("az"), []byte("aa"), []byte("am")}, []uint64{1, 2, 3})
	// Root's child 'a' has edges a, m, z sorted; probing 'b' should stop
	// after seeing 'm' (2 probes).
	child, _, err := TrieFindEdge(as, tr.Root, 'a')
	if err != nil || child == 0 {
		t.Fatalf("edge a missing: %v", err)
	}
	_, probes, err := TrieFindEdge(as, child, 'b')
	if err != nil {
		t.Fatal(err)
	}
	if probes != 2 {
		t.Fatalf("probes for absent 'b' = %d, want 2 (early exit at 'm')", probes)
	}
}

// Property: for random key sets, every structure agrees with a Go map.
func TestPropertyAllStructuresMatchMap(t *testing.T) {
	f := func(seed int64) bool {
		n := 100 + int(uint64(seed)%100)
		keys, vals := genKeys(n, 16, seed)
		ref := map[string]uint64{}
		for i, k := range keys {
			ref[string(k)] = vals[i]
		}
		as := newAS()
		ht := BuildHashTable(as, uint64(n/4), 5, keys, vals)
		ck := BuildCuckoo(as, uint64(n), 4, 5, keys, vals)
		sl := BuildSkipList(as, seed, keys, vals)
		bt := BuildBST(as, seed, 32, keys, vals)
		for _, k := range keys {
			want := ref[string(k)]
			if v, ok, _ := QueryHashTableRef(as, ht.HeaderAddr, k); !ok || v != want {
				return false
			}
			if v, ok, _ := QueryCuckooRef(as, ck.HeaderAddr, k); !ok || v != want {
				return false
			}
			if v, ok, _ := QuerySkipListRef(as, sl.HeaderAddr, k); !ok || v != want {
				return false
			}
			if v, ok, _ := QueryBSTRef(as, bt.HeaderAddr, k); !ok || v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: trie scan agrees with a naive substring matcher for single-
// keyword dictionaries.
func TestPropertyTrieVsNaive(t *testing.T) {
	f := func(kw, input []byte) bool {
		if len(kw) == 0 || len(kw) > 8 {
			return true
		}
		as := newAS()
		tr := BuildTrie(as, [][]byte{kw}, []uint64{77})
		matches, err := ScanTrieRef(as, tr.HeaderAddr, input)
		if err != nil {
			return false
		}
		naive := 0
		for i := 0; i+len(kw) <= len(input); i++ {
			if bytes.Equal(input[i:i+len(kw)], kw) {
				naive++
			}
		}
		return len(matches) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
