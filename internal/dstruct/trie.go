package dstruct

import (
	"qei/internal/mem"
)

// Trie with Aho-Corasick links — the Snort literal-matching structure
// (Sec. VI-B): a dictionary of keywords is compiled into an automaton;
// scanning an input string queries the trie once per input byte,
// following goto edges on match and fail links on mismatch. Within a
// node, the child edge is found by searching a small sorted index table,
// matching the paper's CFA description ("between MEM.N and COMP, we can
// insert a state to search the index table", Sec. III-A).
//
// Node layout:
//
//	offset 0:  fail link (8 B)
//	offset 8:  output value (8 B; 0 = no keyword ends here, else value)
//	offset 16: edge count (2 B) | kind (1 B: 0 sparse, 1 dense) | pad (5 B)
//	offset 24: edges
//
// Sparse nodes store count entries of [byte (1 B) | pad (7 B) | child
// (8 B)], sorted by byte and searched with binary search. High-fanout
// nodes (more than denseThreshold children — the root and shallow states
// of a big dictionary) use a dense 256-slot child-pointer array instead,
// the classic "full matrix for shallow states" layout real Aho-Corasick
// implementations use for speed: one probe per input byte.
const (
	trieOffFail   = 0
	trieOffOutput = 8
	trieOffCount  = 16
	trieOffKind   = 18
	trieOffEdges  = 24
	trieEdgeSize  = 16

	trieKindSparse = 0
	trieKindDense  = 1

	denseThreshold = 16
)

// Trie is the host handle to a compiled Aho-Corasick automaton in
// simulated memory.
type Trie struct {
	HeaderAddr mem.VAddr
	Root       mem.VAddr
	Keywords   int
	States     int
}

// hostTrieNode is the build-time (host-side) representation.
type hostTrieNode struct {
	children map[byte]*hostTrieNode
	fail     *hostTrieNode
	output   uint64
	addr     mem.VAddr
}

// BuildTrie compiles the keyword dictionary into an Aho-Corasick
// automaton laid out in as. values[i] is reported when keywords[i]
// matches; values must be non-zero.
func BuildTrie(as *mem.AddressSpace, keywords [][]byte, values []uint64) *Trie {
	if len(keywords) != len(values) {
		panic("dstruct: keywords/values length mismatch")
	}
	root := &hostTrieNode{children: map[byte]*hostTrieNode{}}
	states := 1
	for i, w := range keywords {
		if values[i] == 0 {
			panic("dstruct: trie values must be non-zero")
		}
		cur := root
		for _, b := range w {
			next, ok := cur.children[b]
			if !ok {
				next = &hostTrieNode{children: map[byte]*hostTrieNode{}}
				cur.children[b] = next
				states++
			}
			cur = next
		}
		cur.output = values[i]
	}

	// BFS to set fail links (classic Aho-Corasick construction).
	queue := []*hostTrieNode{}
	for _, c := range root.children {
		c.fail = root
		queue = append(queue, c)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for b, c := range n.children {
			f := n.fail
			for f != nil {
				if fc, ok := f.children[b]; ok {
					c.fail = fc
					break
				}
				f = f.fail
			}
			if c.fail == nil {
				c.fail = root
			}
			if c.output == 0 && c.fail.output != 0 {
				// Propagate outputs along fail chains so a single output
				// check per state suffices.
				c.output = c.fail.output
			}
			queue = append(queue, c)
		}
	}

	// Lay out nodes: allocate, then fill (children need addresses first).
	var all []*hostTrieNode
	var collect func(n *hostTrieNode)
	collect = func(n *hostTrieNode) {
		all = append(all, n)
		// Deterministic order: sorted bytes.
		for b := 0; b < 256; b++ {
			if c, ok := n.children[byte(b)]; ok {
				collect(c)
			}
		}
	}
	collect(root)
	for _, n := range all {
		var size uint64
		if len(n.children) > denseThreshold {
			size = trieOffEdges + 256*8
		} else {
			size = uint64(trieOffEdges + trieEdgeSize*len(n.children))
		}
		size = (size + mem.LineSize - 1) &^ (mem.LineSize - 1)
		n.addr = as.Alloc(size, mem.LineSize)
	}
	for _, n := range all {
		fail := uint64(0)
		if n.fail != nil {
			fail = uint64(n.fail.addr)
		}
		as.MustWrite(n.addr+trieOffFail, encodeU64(fail))
		as.MustWrite(n.addr+trieOffOutput, encodeU64(n.output))
		dense := len(n.children) > denseThreshold
		cnt := make([]byte, 8)
		putU16(cnt, uint16(len(n.children)))
		if dense {
			cnt[2] = trieKindDense
		}
		as.MustWrite(n.addr+trieOffCount, cnt)
		if dense {
			for b := 0; b < 256; b++ {
				c, ok := n.children[byte(b)]
				if !ok {
					continue
				}
				as.MustWrite(n.addr+trieOffEdges+mem.VAddr(b*8), encodeU64(uint64(c.addr)))
			}
			continue
		}
		i := 0
		for b := 0; b < 256; b++ {
			c, ok := n.children[byte(b)]
			if !ok {
				continue
			}
			edge := make([]byte, trieEdgeSize)
			edge[0] = byte(b)
			putU64(edge[8:], uint64(c.addr))
			as.MustWrite(n.addr+trieOffEdges+mem.VAddr(i*trieEdgeSize), edge)
			i++
		}
	}

	hdr := Header{
		Root:   root.addr,
		Type:   TypeTrie,
		KeyLen: 1, // queries advance one byte at a time
		Size:   uint64(states),
	}
	return &Trie{
		HeaderAddr: WriteHeader(as, hdr),
		Root:       root.addr,
		Keywords:   len(keywords),
		States:     states,
	}
}

// TrieEdgeCount reads a node's edge count.
func TrieEdgeCount(as *mem.AddressSpace, node mem.VAddr) (int, error) {
	c, err := as.ReadU16(node + trieOffCount)
	return int(c), err
}

// TrieNodeDense reports whether the node uses the dense child array.
func TrieNodeDense(as *mem.AddressSpace, node mem.VAddr) (bool, error) {
	var buf [1]byte
	if err := as.Read(node+trieOffKind, buf[:]); err != nil {
		return false, err
	}
	return buf[0] == trieKindDense, nil
}

// TrieEdgeSlot returns the address probed for input byte b at probe step
// i (dense nodes probe exactly one slot).
func TrieEdgeSlot(node mem.VAddr, dense bool, i int, b byte) mem.VAddr {
	if dense {
		return node + trieOffEdges + mem.VAddr(int(b)*8)
	}
	return node + trieOffEdges + mem.VAddr(i*trieEdgeSize)
}

// TrieFindEdge searches node's index table for byte b, returning the
// child address (0 if absent), the number of edge slots examined (the
// index-table search cost charged by walkers: 1 for dense nodes, a
// binary search for sparse ones), and the probed slot addresses.
func TrieFindEdge(as *mem.AddressSpace, node mem.VAddr, b byte) (child mem.VAddr, probes int, err error) {
	child, probes, _, err = TrieFindEdgeProbes(as, node, b)
	return child, probes, err
}

// TrieFindEdgeProbes is TrieFindEdge, additionally returning the probed
// slot addresses so walkers can charge the exact lines touched.
func TrieFindEdgeProbes(as *mem.AddressSpace, node mem.VAddr, b byte) (child mem.VAddr, probes int, slots []mem.VAddr, err error) {
	dense, err := TrieNodeDense(as, node)
	if err != nil {
		return 0, 0, nil, err
	}
	if dense {
		slot := TrieEdgeSlot(node, true, 0, b)
		v, err := as.ReadU64(slot)
		if err != nil {
			return 0, 1, nil, err
		}
		return mem.VAddr(v), 1, []mem.VAddr{slot}, nil
	}
	n, err := TrieEdgeCount(as, node)
	if err != nil {
		return 0, 0, nil, err
	}
	lo, hi := 0, n-1
	for lo <= hi {
		mid := (lo + hi) / 2
		ea := node + trieOffEdges + mem.VAddr(mid*trieEdgeSize)
		var buf [trieEdgeSize]byte
		if err := as.Read(ea, buf[:]); err != nil {
			return 0, probes + 1, slots, err
		}
		probes++
		slots = append(slots, ea)
		switch {
		case buf[0] == b:
			return mem.VAddr(getU64(buf[8:])), probes, slots, nil
		case buf[0] < b:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return 0, probes, slots, nil
}

// TrieFail reads a node's fail link.
func TrieFail(as *mem.AddressSpace, node mem.VAddr) (mem.VAddr, error) {
	f, err := as.ReadU64(node + trieOffFail)
	return mem.VAddr(f), err
}

// TrieOutput reads a node's output value.
func TrieOutput(as *mem.AddressSpace, node mem.VAddr) (uint64, error) {
	return as.ReadU64(node + trieOffOutput)
}

// ScanTrieRef is the host-side reference scan: it feeds input through the
// automaton and returns the values of all matched keywords, in match
// order.
func ScanTrieRef(as *mem.AddressSpace, headerAddr mem.VAddr, input []byte) ([]uint64, error) {
	h, err := ReadHeader(as, headerAddr)
	if err != nil {
		return nil, err
	}
	var matches []uint64
	state := h.Root
	for _, b := range input {
		for {
			child, _, err := TrieFindEdge(as, state, b)
			if err != nil {
				return nil, err
			}
			if child != 0 {
				state = child
				break
			}
			if state == h.Root {
				break
			}
			state, err = TrieFail(as, state)
			if err != nil {
				return nil, err
			}
		}
		out, err := TrieOutput(as, state)
		if err != nil {
			return nil, err
		}
		if out != 0 {
			matches = append(matches, out)
		}
	}
	return matches, nil
}
