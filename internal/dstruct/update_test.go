package dstruct

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"qei/internal/mem"
)

func TestListInsertFrontAndRemove(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(10, 16, 1)
	l := BuildLinkedList(as, keys, vals)

	newKey := bytes.Repeat([]byte{0x42}, 16)
	if err := l.InsertFront(as, as, newKey, 999); err != nil {
		t.Fatal(err)
	}
	v, found, err := QueryLinkedListRef(as, l.HeaderAddr, newKey)
	if err != nil || !found || v != 999 {
		t.Fatalf("inserted key: v=%d found=%v err=%v", v, found, err)
	}
	// Header must have been republished with the new root.
	hdr, _ := ReadHeader(as, l.HeaderAddr)
	if hdr.Root != l.Head || hdr.Size != 11 {
		t.Fatalf("header not updated: %+v vs head %#x", hdr, uint64(l.Head))
	}

	// Remove a middle key.
	ok, _, err := l.Remove(as, keys[5])
	if err != nil || !ok {
		t.Fatalf("remove failed: %v %v", ok, err)
	}
	if _, found, _ := QueryLinkedListRef(as, l.HeaderAddr, keys[5]); found {
		t.Fatal("removed key still found")
	}
	// Remove the (new) head.
	ok, _, err = l.Remove(as, newKey)
	if err != nil || !ok {
		t.Fatalf("head remove failed: %v %v", ok, err)
	}
	if _, found, _ := QueryLinkedListRef(as, l.HeaderAddr, newKey); found {
		t.Fatal("removed head still found")
	}
	// Absent key removal is a no-op.
	if ok, _, _ := l.Remove(as, bytes.Repeat([]byte{0xEE}, 16)); ok {
		t.Fatal("absent key reported removed")
	}
}

func TestListWrongKeyLengthRejected(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(3, 16, 2)
	l := BuildLinkedList(as, keys, vals)
	if err := l.InsertFront(as, as, []byte{1, 2, 3}, 1); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestCuckooInsertDelete(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(100, 16, 3)
	c := BuildCuckoo(as, 128, 4, 7, keys, vals)

	extra, extraVals := genKeys(50, 16, 77)
	for i, k := range extra {
		if err := c.Insert(as, k, extraVals[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range extra {
		v, found, _ := QueryCuckooRef(as, c.HeaderAddr, k)
		if !found || v != extraVals[i] {
			t.Fatalf("inserted key %d missing", i)
		}
	}
	// Delete half the originals and verify.
	for i := 0; i < 50; i++ {
		ok, err := c.Delete(as, keys[i])
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, found, _ := QueryCuckooRef(as, c.HeaderAddr, keys[i]); found {
			t.Fatalf("deleted key %d still found", i)
		}
	}
	for i := 50; i < 100; i++ {
		v, found, _ := QueryCuckooRef(as, c.HeaderAddr, keys[i])
		if !found || v != vals[i] {
			t.Fatalf("undeleted key %d lost", i)
		}
	}
	if ok, _ := c.Delete(as, bytes.Repeat([]byte{9}, 16)); ok {
		t.Fatal("absent delete reported success")
	}
}

func TestCuckooInsertOverflowReported(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(8, 16, 4)
	c := BuildCuckoo(as, 1, 4, 7, keys[:4], vals[:4]) // 1 bucket... rounded to pow2
	// Fill until it reports full; must not loop forever.
	errs := 0
	for i := 4; i < 8; i++ {
		if err := c.Insert(as, keys[i], vals[i]); err != nil {
			errs++
		}
	}
	if errs == 0 {
		t.Skip("table absorbed all keys — geometry too generous for overflow")
	}
}

func TestSkipListInsert(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(100, 32, 5)
	sl := BuildSkipList(as, 9, keys, vals)
	rng := rand.New(rand.NewSource(10))

	extra, extraVals := genKeys(60, 32, 88)
	for i, k := range extra {
		if err := sl.Insert(as, as, rng, k, extraVals[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range extra {
		v, found, _ := QuerySkipListRef(as, sl.HeaderAddr, k)
		if !found || v != extraVals[i] {
			t.Fatalf("inserted key %d missing", i)
		}
	}
	// Level-0 chain must remain sorted after inserts.
	node := sl.Head
	var prev []byte
	count := 0
	for {
		nextU, err := as.ReadU64(SkipNextSlot(node, 0))
		if err != nil {
			t.Fatal(err)
		}
		if nextU == 0 {
			break
		}
		node = mem.VAddr(nextU)
		h, _ := SkipHeight(as, node)
		k := make([]byte, 32)
		as.MustRead(SkipKeyAddr(node, h), k)
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatal("chain unsorted after inserts")
		}
		prev = k
		count++
	}
	if count != 160 {
		t.Fatalf("chain has %d nodes, want 160", count)
	}
	// Duplicate insert updates in place.
	if err := sl.Insert(as, as, rng, extra[0], 4242); err != nil {
		t.Fatal(err)
	}
	v, _, _ := QuerySkipListRef(as, sl.HeaderAddr, extra[0])
	if v != 4242 {
		t.Fatalf("in-place update: got %d", v)
	}
}

func TestBSTInsert(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(50, 8, 6)
	b := BuildBST(as, 3, 32, keys, vals)
	extra, extraVals := genKeys(30, 8, 99)
	for i, k := range extra {
		if err := b.Insert(as, as, k, extraVals[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range extra {
		v, found, _ := QueryBSTRef(as, b.HeaderAddr, k)
		if !found || v != extraVals[i] {
			t.Fatalf("inserted key %d missing", i)
		}
	}
	// In-place update.
	if err := b.Insert(as, as, keys[0], 777); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := QueryBSTRef(as, b.HeaderAddr, keys[0]); v != 777 {
		t.Fatal("BST update in place failed")
	}
}

// Property: a random interleaving of cuckoo inserts/deletes matches a Go
// map.
func TestPropertyCuckooUpdatesMatchMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		as := newAS()
		keys, vals := genKeys(64, 16, seed)
		c := BuildCuckoo(as, 64, 4, 3, keys[:32], vals[:32])
		ref := map[string]uint64{}
		for i := 0; i < 32; i++ {
			ref[string(keys[i])] = vals[i]
		}
		for op := 0; op < 100; op++ {
			i := rng.Intn(64)
			if rng.Intn(2) == 0 {
				if err := c.Insert(as, keys[i], vals[i]^uint64(op)); err == nil {
					ref[string(keys[i])] = vals[i] ^ uint64(op)
				}
			} else {
				ok, _ := c.Delete(as, keys[i])
				_, inRef := ref[string(keys[i])]
				if ok != inRef {
					return false
				}
				delete(ref, string(keys[i]))
			}
		}
		for i := 0; i < 64; i++ {
			v, found, _ := QueryCuckooRef(as, c.HeaderAddr, keys[i])
			want, inRef := ref[string(keys[i])]
			if found != inRef || (found && v != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListDelete(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(80, 32, 11)
	sl := BuildSkipList(as, 9, keys, vals)

	for i := 0; i < 40; i++ {
		ok, ext, err := sl.Delete(as, keys[i])
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
		if ext.Size == 0 || ext.Addr == 0 {
			t.Fatalf("delete %d returned empty extent", i)
		}
	}
	for i := 0; i < 40; i++ {
		if _, found, _ := QuerySkipListRef(as, sl.HeaderAddr, keys[i]); found {
			t.Fatalf("deleted key %d still found", i)
		}
	}
	for i := 40; i < 80; i++ {
		v, found, _ := QuerySkipListRef(as, sl.HeaderAddr, keys[i])
		if !found || v != vals[i] {
			t.Fatalf("surviving key %d lost", i)
		}
	}
	if ok, _, _ := sl.Delete(as, bytes.Repeat([]byte{0xEE}, 32)); ok {
		t.Fatal("absent delete reported success")
	}
	if sl.Len != 40 {
		t.Fatalf("Len = %d, want 40", sl.Len)
	}
}

func TestBSTDelete(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(60, 8, 12)
	b := BuildBST(as, 3, 16, keys, vals)

	// Delete in an order that exercises leaf, one-child, and two-child
	// cases (the shuffled build makes the shapes vary).
	for i := 0; i < 30; i++ {
		ok, ext, err := b.Delete(as, keys[i])
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
		if ext.Size == 0 {
			t.Fatalf("delete %d returned empty extent", i)
		}
	}
	for i := 0; i < 30; i++ {
		if _, found, _ := QueryBSTRef(as, b.HeaderAddr, keys[i]); found {
			t.Fatalf("deleted key %d still found", i)
		}
	}
	for i := 30; i < 60; i++ {
		v, found, _ := QueryBSTRef(as, b.HeaderAddr, keys[i])
		if !found || v != vals[i] {
			t.Fatalf("surviving key %d lost", i)
		}
	}
	if b.Len != 30 {
		t.Fatalf("Len = %d, want 30", b.Len)
	}
}

func TestBSTDeleteToEmptyAndRefill(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(10, 8, 13)
	b := BuildBST(as, 3, 0, keys, vals)
	for i := range keys {
		if ok, _, err := b.Delete(as, keys[i]); err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	if b.Len != 0 || b.Root != 0 {
		t.Fatalf("tree not empty: len=%d root=%#x", b.Len, uint64(b.Root))
	}
	if err := b.Insert(as, as, keys[0], 5); err != nil {
		t.Fatal(err)
	}
	if v, found, _ := QueryBSTRef(as, b.HeaderAddr, keys[0]); !found || v != 5 {
		t.Fatal("refill after empty failed")
	}
}

func TestBSTRebuildBalances(t *testing.T) {
	as := newAS()
	// Insert in sorted order to degenerate the tree into a list.
	keys, vals := genKeys(64, 8, 14)
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sortIdxByKey(idx, keys)
	b := BuildBST(as, 3, 8, keys[:1], vals[:1])
	for _, i := range idx {
		if err := b.Insert(as, as, keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !b.NeedsRebuild() {
		t.Fatalf("degenerate tree (depth %d, len %d) not flagged", b.MaxDepth, b.Len)
	}
	old, err := b.Rebuild(as, as)
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != b.Len {
		t.Fatalf("rebuild freed %d nodes, tree has %d", len(old), b.Len)
	}
	if b.NeedsRebuild() {
		t.Fatalf("rebuilt tree still flagged: depth %d len %d", b.MaxDepth, b.Len)
	}
	_, maxDepth, _, err := BSTDepthStats(as, b.HeaderAddr)
	if err != nil {
		t.Fatal(err)
	}
	if maxDepth != b.MaxDepth {
		t.Fatalf("tracked depth %d, measured %d", b.MaxDepth, maxDepth)
	}
	for i, k := range keys {
		v, found, _ := QueryBSTRef(as, b.HeaderAddr, k)
		if !found || v != vals[i] {
			t.Fatalf("key %d lost in rebuild", i)
		}
	}
}

func TestCuckooRehashDoubles(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(100, 16, 15)
	c := BuildCuckoo(as, 32, 4, 7, keys, vals)
	oldArr := c.Buckets
	oldN := c.NBuckets

	ext, err := c.Rehash(as, as, oldN*2)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Addr != oldArr || ext.Size != oldN*CuckooBucketSize(16, 4) {
		t.Fatalf("rehash returned extent %+v, want old array %#x", ext, uint64(oldArr))
	}
	if c.NBuckets != oldN*2 || c.Len != 100 {
		t.Fatalf("rehash geometry: %d buckets, %d entries", c.NBuckets, c.Len)
	}
	hdr, _ := ReadHeader(as, c.HeaderAddr)
	if hdr.Root != c.Buckets || hdr.Aux != c.NBuckets {
		t.Fatalf("header not republished: %+v", hdr)
	}
	for i, k := range keys {
		v, found, _ := QueryCuckooRef(as, c.HeaderAddr, k)
		if !found || v != vals[i] {
			t.Fatalf("key %d lost in rehash", i)
		}
	}
	if lf := c.LoadFactor(); lf <= 0 || lf >= 1 {
		t.Fatalf("load factor %f out of range", lf)
	}
}
