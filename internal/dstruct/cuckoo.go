package dstruct

import (
	"bytes"
	"fmt"

	"qei/internal/mem"
)

// DPDK-style two-choice bucketed cuckoo hash (the library behind the
// paper's DPDK L3-FIB benchmark, Sec. VI-B). The table is one array of
// buckets; each key has two candidate buckets derived from its hash and
// signature, and each bucket holds Subtype entries.
//
// Bucket layout (entries packed back to back, bucket padded to lines):
//
//	entry: occupied (1 B) | pad (7 B) | value (8 B) | key (KeyLen B)
//
// Header fields: Root = bucket array, Subtype = entries per bucket,
// Aux = bucket count (power of two), Aux2 = hash seed.

const (
	cuckooOffOccupied = 0
	cuckooOffValue    = 8
	cuckooOffKey      = 16
)

// CuckooEntrySize returns the stride of one bucket entry.
func CuckooEntrySize(keyLen int) uint64 {
	sz := uint64(cuckooOffKey + keyLen)
	return (sz + 7) &^ 7 // 8-byte aligned entries
}

// CuckooBucketSize returns the allocation stride of one bucket, padded to
// a cacheline multiple so each bucket read is a bounded number of lines.
func CuckooBucketSize(keyLen, entries int) uint64 {
	sz := CuckooEntrySize(keyLen) * uint64(entries)
	return (sz + mem.LineSize - 1) &^ (mem.LineSize - 1)
}

// Cuckoo is the host handle to a simulated cuckoo hash table.
type Cuckoo struct {
	HeaderAddr mem.VAddr
	Buckets    mem.VAddr
	NBuckets   uint64
	Entries    int
	Seed       uint64
	KeyLen     uint16
	Len        int
}

// CuckooHashes derives the two candidate bucket indices for key: the
// primary from the key hash, the alternative by mixing the signature, as
// the DPDK hash library does.
func CuckooHashes(key []byte, seed, nBuckets uint64) (h1, h2 uint64) {
	h := Hash(key, seed)
	sig := h >> 16
	h1 = h & (nBuckets - 1)
	h2 = (h1 ^ (sig * 0x5bd1e995)) & (nBuckets - 1)
	return h1, h2
}

// BuildCuckoo materializes a cuckoo table sized for the keys with the
// given entries-per-bucket, performing displacement ("kick") insertion.
// It panics if the table cannot place a key after a bounded kick chain —
// callers size nBuckets generously, as DPDK deployments do.
func BuildCuckoo(as *mem.AddressSpace, nBuckets uint64, entries int, seed uint64, keys [][]byte, values []uint64) *Cuckoo {
	if len(keys) != len(values) {
		panic("dstruct: keys/values length mismatch")
	}
	if entries <= 0 || entries > 255 {
		panic("dstruct: cuckoo entries per bucket must be 1..255")
	}
	nBuckets = ceilPow2(nBuckets)
	keyLen := 0
	if len(keys) > 0 {
		keyLen = len(keys[0])
	}
	bucketSize := CuckooBucketSize(keyLen, entries)
	arr := as.Alloc(nBuckets*bucketSize, mem.LineSize)

	c := &Cuckoo{
		Buckets:  arr,
		NBuckets: nBuckets,
		Entries:  entries,
		Seed:     seed,
		KeyLen:   uint16(keyLen),
	}

	for i, k := range keys {
		if len(k) != keyLen {
			panic("dstruct: inconsistent key lengths in cuckoo table")
		}
		if !c.insert(as, k, values[i], 0) {
			panic(fmt.Sprintf("dstruct: cuckoo insertion failed for key %d — table too full", i))
		}
		c.Len++
	}

	hdr := Header{
		Root:    arr,
		Type:    TypeCuckoo,
		Subtype: uint8(entries),
		KeyLen:  uint16(keyLen),
		Size:    uint64(len(keys)),
		Aux:     nBuckets,
		Aux2:    seed,
	}
	c.HeaderAddr = WriteHeader(as, hdr)
	return c
}

func (c *Cuckoo) entryAddr(bucket uint64, slot int) mem.VAddr {
	return c.Buckets + mem.VAddr(bucket*CuckooBucketSize(int(c.KeyLen), c.Entries)+uint64(slot)*CuckooEntrySize(int(c.KeyLen)))
}

// EntryAddr exposes entry addressing for the baseline/accelerator walkers.
func EntryAddr(h Header, bucket uint64, slot int) mem.VAddr {
	return h.Root + mem.VAddr(bucket*CuckooBucketSize(int(h.KeyLen), int(h.Subtype))+uint64(slot)*CuckooEntrySize(int(h.KeyLen)))
}

func (c *Cuckoo) readEntry(as *mem.AddressSpace, bucket uint64, slot int) (occupied bool, key []byte, value uint64) {
	ea := c.entryAddr(bucket, slot)
	occ, err := as.ReadU64(ea + cuckooOffOccupied)
	if err != nil {
		panic(err)
	}
	if occ&1 == 0 {
		return false, nil, 0
	}
	k, err := readKey(as, ea+cuckooOffKey, c.KeyLen)
	if err != nil {
		panic(err)
	}
	v, err := as.ReadU64(ea + cuckooOffValue)
	if err != nil {
		panic(err)
	}
	return true, k, v
}

func (c *Cuckoo) writeEntry(as *mem.AddressSpace, bucket uint64, slot int, key []byte, value uint64) {
	ea := c.entryAddr(bucket, slot)
	as.MustWrite(ea+cuckooOffOccupied, encodeU64(1))
	as.MustWrite(ea+cuckooOffValue, encodeU64(value))
	as.MustWrite(ea+cuckooOffKey, key)
}

const maxKicks = 128

func (c *Cuckoo) insert(as *mem.AddressSpace, key []byte, value uint64, depth int) bool {
	if depth > maxKicks {
		return false
	}
	h1, h2 := CuckooHashes(key, c.Seed, c.NBuckets)
	// Update in place if present; otherwise take any free slot.
	for _, b := range [2]uint64{h1, h2} {
		for s := 0; s < c.Entries; s++ {
			occ, k, _ := c.readEntry(as, b, s)
			if occ && bytes.Equal(k, key) {
				c.writeEntry(as, b, s, key, value)
				return true
			}
		}
	}
	for _, b := range [2]uint64{h1, h2} {
		for s := 0; s < c.Entries; s++ {
			if occ, _, _ := c.readEntry(as, b, s); !occ {
				c.writeEntry(as, b, s, key, value)
				return true
			}
		}
	}
	// Kick: displace a deterministic victim from the primary bucket.
	victimSlot := depth % c.Entries
	_, vk, vv := c.readEntry(as, h1, victimSlot)
	c.writeEntry(as, h1, victimSlot, key, value)
	return c.insert(as, vk, vv, depth+1)
}

// QueryCuckooRef is the host-side reference lookup: probe the two
// candidate buckets, compare occupied entries.
func QueryCuckooRef(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (uint64, bool, error) {
	h, err := ReadHeader(as, headerAddr)
	if err != nil {
		return 0, false, err
	}
	h1, h2 := CuckooHashes(key, h.Aux2, h.Aux)
	for _, b := range [2]uint64{h1, h2} {
		for s := 0; s < int(h.Subtype); s++ {
			ea := EntryAddr(h, b, s)
			occ, err := as.ReadU64(ea + cuckooOffOccupied)
			if err != nil {
				return 0, false, err
			}
			if occ&1 == 0 {
				continue
			}
			k, err := readKey(as, ea+cuckooOffKey, h.KeyLen)
			if err != nil {
				return 0, false, err
			}
			if bytes.Equal(k, key) {
				v, err := as.ReadU64(ea + cuckooOffValue)
				return v, err == nil, err
			}
		}
	}
	return 0, false, nil
}

// CuckooEntryFieldOffsets exposes the entry layout to walkers.
func CuckooEntryFieldOffsets() (occupied, value, key int) {
	return cuckooOffOccupied, cuckooOffValue, cuckooOffKey
}
