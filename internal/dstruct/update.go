package dstruct

import (
	"bytes"
	"fmt"
	"math/rand"

	"qei/internal/mem"
)

// Update operations. QEI accelerates queries only; inserts and deletes
// stay in software (Sec. IV-A: "Update operations (e.g., insert, delete)
// are still in software ... QEI targets read-intensive cases"). These
// mutators work directly on the simulated bytes, so a query issued to
// the accelerator right after an update observes it — both sides read
// the same coherent memory, exactly the property the paper's
// cache-coherent integration provides.

// ListInsertFront prepends a key/value node to a linked list and updates
// the structure's header.
func (l *LinkedList) InsertFront(as *mem.AddressSpace, key []byte, value uint64) error {
	if len(key) != int(l.KeyLen) {
		return fmt.Errorf("dstruct: key length %d, list stores %d", len(key), l.KeyLen)
	}
	node := as.Alloc(ListNodeSize(int(l.KeyLen)), mem.LineSize)
	as.MustWrite(node+listOffNext, encodeU64(uint64(l.Head)))
	as.MustWrite(node+listOffValue, encodeU64(value))
	as.MustWrite(node+listOffKey, key)
	l.Head = node
	l.Len++
	// Publish the new head through the Fig. 4 header.
	hdr, err := ReadHeader(as, l.HeaderAddr)
	if err != nil {
		return err
	}
	hdr.Root = node
	hdr.Size = uint64(l.Len)
	EncodeHeader(as, l.HeaderAddr, hdr)
	return nil
}

// Remove unlinks the first node whose key matches, reporting whether a
// node was removed.
func (l *LinkedList) Remove(as *mem.AddressSpace, key []byte) (bool, error) {
	var prev mem.VAddr
	node := l.Head
	for node != 0 {
		k, err := ListKey(as, node, l.KeyLen)
		if err != nil {
			return false, err
		}
		if bytes.Equal(k, key) {
			next, err := ListNext(as, node)
			if err != nil {
				return false, err
			}
			if prev == 0 {
				l.Head = next
				hdr, err := ReadHeader(as, l.HeaderAddr)
				if err != nil {
					return false, err
				}
				hdr.Root = next
				hdr.Size = uint64(l.Len - 1)
				EncodeHeader(as, l.HeaderAddr, hdr)
			} else {
				as.MustWrite(prev+listOffNext, encodeU64(uint64(next)))
			}
			l.Len--
			return true, nil
		}
		prev = node
		node, err = ListNext(as, node)
		if err != nil {
			return false, err
		}
	}
	return false, nil
}

// Insert adds or updates a key in the cuckoo table, performing
// displacement as needed. It returns an error when the table cannot
// place the key (software would resize; the fixed-capacity hardware view
// reports the overflow).
func (c *Cuckoo) Insert(as *mem.AddressSpace, key []byte, value uint64) error {
	if len(key) != int(c.KeyLen) {
		return fmt.Errorf("dstruct: key length %d, table stores %d", len(key), c.KeyLen)
	}
	if !c.insert(as, key, value, 0) {
		return fmt.Errorf("dstruct: cuckoo table full (len %d)", c.Len)
	}
	c.Len++
	return nil
}

// Delete clears the entry holding key, reporting whether it existed.
func (c *Cuckoo) Delete(as *mem.AddressSpace, key []byte) (bool, error) {
	h1, h2 := CuckooHashes(key, c.Seed, c.NBuckets)
	for _, b := range [2]uint64{h1, h2} {
		for s := 0; s < c.Entries; s++ {
			occ, k, _ := c.readEntry(as, b, s)
			if occ && bytes.Equal(k, key) {
				as.MustWrite(c.entryAddr(b, s)+cuckooOffOccupied, encodeU64(0))
				c.Len--
				return true, nil
			}
		}
	}
	return false, nil
}

// Insert adds a key to the skip list with a deterministic tower height
// drawn from rng. The list remains sorted; duplicate keys update the
// existing node's value in place.
func (sl *SkipList) Insert(as *mem.AddressSpace, rng *rand.Rand, key []byte, value uint64) error {
	if len(key) != int(sl.KeyLen) {
		return fmt.Errorf("dstruct: key length %d, list stores %d", len(key), sl.KeyLen)
	}
	// Find predecessors at every level.
	update := make([]mem.VAddr, sl.MaxLevel)
	node := sl.Head
	for l := sl.MaxLevel - 1; l >= 0; l-- {
		for {
			nextU, err := as.ReadU64(SkipNextSlot(node, l))
			if err != nil {
				return err
			}
			next := mem.VAddr(nextU)
			if next == 0 {
				break
			}
			nh, err := SkipHeight(as, next)
			if err != nil {
				return err
			}
			nk, err := readKey(as, SkipKeyAddr(next, nh), sl.KeyLen)
			if err != nil {
				return err
			}
			c := bytes.Compare(nk, key)
			if c < 0 {
				node = next
				continue
			}
			if c == 0 {
				// Update in place.
				as.MustWrite(next+skipOffValue, encodeU64(value))
				return nil
			}
			break
		}
		update[l] = node
	}
	height := 1
	for height < sl.MaxLevel && rng.Intn(4) == 0 {
		height++
	}
	n := as.Alloc(skipNodeSize(int(sl.KeyLen), height), mem.LineSize)
	as.MustWrite(n+skipOffHeight, encodeU64(uint64(height)))
	as.MustWrite(n+skipOffValue, encodeU64(value))
	as.MustWrite(SkipKeyAddr(n, height), key)
	for l := 0; l < height; l++ {
		prevNextU, err := as.ReadU64(SkipNextSlot(update[l], l))
		if err != nil {
			return err
		}
		as.MustWrite(SkipNextSlot(n, l), encodeU64(prevNextU))
		as.MustWrite(SkipNextSlot(update[l], l), encodeU64(uint64(n)))
	}
	sl.Len++
	return nil
}

// Insert adds a key to the BST (no rebalancing, as an object graph grows
// by allocation order).
func (b *BST) Insert(as *mem.AddressSpace, key []byte, value uint64) error {
	if len(key) != int(b.KeyLen) {
		return fmt.Errorf("dstruct: key length %d, tree stores %d", len(key), b.KeyLen)
	}
	node := as.Alloc(bstNodeSize(int(b.KeyLen), b.PayloadBytes), mem.LineSize)
	as.MustWrite(node+bstOffValue, encodeU64(value))
	as.MustWrite(BSTKeyAddr(node, b.PayloadBytes), key)
	if b.Root == 0 {
		b.Root = node
		hdr, err := ReadHeader(as, b.HeaderAddr)
		if err != nil {
			return err
		}
		hdr.Root = node
		EncodeHeader(as, b.HeaderAddr, hdr)
		b.Len++
		return nil
	}
	cur := b.Root
	for {
		ck, err := readKey(as, BSTKeyAddr(cur, b.PayloadBytes), b.KeyLen)
		if err != nil {
			return err
		}
		c := bytes.Compare(key, ck)
		if c == 0 {
			as.MustWrite(cur+bstOffValue, encodeU64(value))
			return nil
		}
		slot := BSTChildSlot(cur, c > 0)
		childU, err := as.ReadU64(slot)
		if err != nil {
			return err
		}
		if childU == 0 {
			as.MustWrite(slot, encodeU64(uint64(node)))
			b.Len++
			return nil
		}
		cur = mem.VAddr(childU)
	}
}
