package dstruct

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"qei/internal/mem"
)

// Update operations. QEI accelerates queries only; inserts and deletes
// stay in software (Sec. IV-A: "Update operations (e.g., insert, delete)
// are still in software ... QEI targets read-intensive cases"). These
// mutators work directly on the simulated bytes, so a query issued to
// the accelerator right after an update observes it — both sides read
// the same coherent memory, exactly the property the paper's
// cache-coherent integration provides.
//
// Mutators that place new nodes take a mem.Allocator so epoch-aware
// callers can route allocations through a reclaiming allocator
// (internal/epoch), and mutators that unlink nodes return the freed
// mem.Extent so the caller can retire it instead of leaking it — the
// streaming engine's whole consistency story hangs on those two hooks.

// ErrTableFull reports a cuckoo insertion that could not place its key
// after the bounded kick chain. Software responds by rehashing into a
// larger bucket array (Rehash).
var ErrTableFull = errors.New("dstruct: cuckoo table full")

// InsertFront prepends a key/value node to a linked list and updates
// the structure's header.
func (l *LinkedList) InsertFront(as *mem.AddressSpace, al mem.Allocator, key []byte, value uint64) error {
	if len(key) != int(l.KeyLen) {
		return fmt.Errorf("dstruct: key length %d, list stores %d", len(key), l.KeyLen)
	}
	node := al.Alloc(ListNodeSize(int(l.KeyLen)), mem.LineSize)
	as.MustWrite(node+listOffNext, encodeU64(uint64(l.Head)))
	as.MustWrite(node+listOffValue, encodeU64(value))
	as.MustWrite(node+listOffKey, key)
	l.Head = node
	l.Len++
	// Publish the new head through the Fig. 4 header.
	hdr, err := ReadHeader(as, l.HeaderAddr)
	if err != nil {
		return err
	}
	hdr.Root = node
	hdr.Size = uint64(l.Len)
	EncodeHeader(as, l.HeaderAddr, hdr)
	return nil
}

// Remove unlinks the first node whose key matches, reporting whether a
// node was removed and, if so, the extent it occupied (for the caller
// to retire).
func (l *LinkedList) Remove(as *mem.AddressSpace, key []byte) (bool, mem.Extent, error) {
	var prev mem.VAddr
	node := l.Head
	for node != 0 {
		k, err := ListKey(as, node, l.KeyLen)
		if err != nil {
			return false, mem.Extent{}, err
		}
		if bytes.Equal(k, key) {
			next, err := ListNext(as, node)
			if err != nil {
				return false, mem.Extent{}, err
			}
			if prev == 0 {
				l.Head = next
				hdr, err := ReadHeader(as, l.HeaderAddr)
				if err != nil {
					return false, mem.Extent{}, err
				}
				hdr.Root = next
				hdr.Size = uint64(l.Len - 1)
				EncodeHeader(as, l.HeaderAddr, hdr)
			} else {
				as.MustWrite(prev+listOffNext, encodeU64(uint64(next)))
			}
			l.Len--
			return true, mem.Extent{Addr: node, Size: ListNodeSize(int(l.KeyLen))}, nil
		}
		prev = node
		node, err = ListNext(as, node)
		if err != nil {
			return false, mem.Extent{}, err
		}
	}
	return false, mem.Extent{}, nil
}

// Insert adds or updates a key in the cuckoo table, performing
// displacement as needed. It returns ErrTableFull when the bounded
// kick chain cannot place the key — software then resizes with Rehash.
func (c *Cuckoo) Insert(as *mem.AddressSpace, key []byte, value uint64) error {
	if len(key) != int(c.KeyLen) {
		return fmt.Errorf("dstruct: key length %d, table stores %d", len(key), c.KeyLen)
	}
	if !c.insert(as, key, value, 0) {
		return fmt.Errorf("%w (len %d, %d buckets)", ErrTableFull, c.Len, c.NBuckets)
	}
	c.Len++
	return nil
}

// Delete clears the entry holding key, reporting whether it existed.
// Entries live inside the bucket array, so deletion frees no extent.
func (c *Cuckoo) Delete(as *mem.AddressSpace, key []byte) (bool, error) {
	h1, h2 := CuckooHashes(key, c.Seed, c.NBuckets)
	for _, b := range [2]uint64{h1, h2} {
		for s := 0; s < c.Entries; s++ {
			occ, k, _ := c.readEntry(as, b, s)
			if occ && bytes.Equal(k, key) {
				as.MustWrite(c.entryAddr(b, s)+cuckooOffOccupied, encodeU64(0))
				c.Len--
				return true, nil
			}
		}
	}
	return false, nil
}

// LoadFactor reports the table's fill ratio.
func (c *Cuckoo) LoadFactor() float64 {
	return float64(c.Len) / float64(c.NBuckets*uint64(c.Entries))
}

// Rehash moves every entry into a fresh bucket array of at least
// nBuckets buckets (rounded up to a power of two) — the online resize
// DPDK performs when the load factor breaches its threshold. The new
// array comes from al; the old array is returned for the caller to
// retire once no in-flight query can still probe it. On the (for a
// doubling, practically impossible) chance reinsertion overflows, the
// table is left unchanged and the abandoned new array is returned with
// ErrTableFull — the caller retires it and may retry larger.
func (c *Cuckoo) Rehash(as *mem.AddressSpace, al mem.Allocator, nBuckets uint64) (mem.Extent, error) {
	nBuckets = ceilPow2(nBuckets)
	bucketSize := CuckooBucketSize(int(c.KeyLen), c.Entries)
	old := mem.Extent{Addr: c.Buckets, Size: c.NBuckets * bucketSize}

	var keys [][]byte
	var vals []uint64
	for b := uint64(0); b < c.NBuckets; b++ {
		for s := 0; s < c.Entries; s++ {
			if occ, k, v := c.readEntry(as, b, s); occ {
				keys = append(keys, k)
				vals = append(vals, v)
			}
		}
	}

	newArr := al.Alloc(nBuckets*bucketSize, mem.LineSize)
	oldBuckets, oldN, oldLen := c.Buckets, c.NBuckets, c.Len
	c.Buckets, c.NBuckets, c.Len = newArr, nBuckets, 0
	for i, k := range keys {
		if !c.insert(as, k, vals[i], 0) {
			c.Buckets, c.NBuckets, c.Len = oldBuckets, oldN, oldLen
			return mem.Extent{Addr: newArr, Size: nBuckets * bucketSize},
				fmt.Errorf("%w during rehash to %d buckets", ErrTableFull, nBuckets)
		}
		c.Len++
	}

	// Publish the new array through the header; queries admitted from
	// here on probe the new buckets.
	hdr, err := ReadHeader(as, c.HeaderAddr)
	if err != nil {
		return mem.Extent{}, err
	}
	hdr.Root = newArr
	hdr.Aux = nBuckets
	hdr.Size = uint64(c.Len)
	EncodeHeader(as, c.HeaderAddr, hdr)
	return old, nil
}

// Insert adds a key to the skip list with a deterministic tower height
// drawn from rng. The list remains sorted; duplicate keys update the
// existing node's value in place.
func (sl *SkipList) Insert(as *mem.AddressSpace, al mem.Allocator, rng *rand.Rand, key []byte, value uint64) error {
	if len(key) != int(sl.KeyLen) {
		return fmt.Errorf("dstruct: key length %d, list stores %d", len(key), sl.KeyLen)
	}
	// Find predecessors at every level.
	update := make([]mem.VAddr, sl.MaxLevel)
	node := sl.Head
	for l := sl.MaxLevel - 1; l >= 0; l-- {
		for {
			nextU, err := as.ReadU64(SkipNextSlot(node, l))
			if err != nil {
				return err
			}
			next := mem.VAddr(nextU)
			if next == 0 {
				break
			}
			nh, err := SkipHeight(as, next)
			if err != nil {
				return err
			}
			nk, err := readKey(as, SkipKeyAddr(next, nh), sl.KeyLen)
			if err != nil {
				return err
			}
			c := bytes.Compare(nk, key)
			if c < 0 {
				node = next
				continue
			}
			if c == 0 {
				// Update in place.
				as.MustWrite(next+skipOffValue, encodeU64(value))
				return nil
			}
			break
		}
		update[l] = node
	}
	height := 1
	for height < sl.MaxLevel && rng.Intn(4) == 0 {
		height++
	}
	n := al.Alloc(skipNodeSize(int(sl.KeyLen), height), mem.LineSize)
	as.MustWrite(n+skipOffHeight, encodeU64(uint64(height)))
	as.MustWrite(n+skipOffValue, encodeU64(value))
	as.MustWrite(SkipKeyAddr(n, height), key)
	for l := 0; l < height; l++ {
		prevNextU, err := as.ReadU64(SkipNextSlot(update[l], l))
		if err != nil {
			return err
		}
		as.MustWrite(SkipNextSlot(n, l), encodeU64(prevNextU))
		as.MustWrite(SkipNextSlot(update[l], l), encodeU64(uint64(n)))
	}
	sl.Len++
	return nil
}

// Delete unlinks the node holding key from every level it appears on,
// reporting whether it existed and the extent it occupied.
func (sl *SkipList) Delete(as *mem.AddressSpace, key []byte) (bool, mem.Extent, error) {
	if len(key) != int(sl.KeyLen) {
		return false, mem.Extent{}, fmt.Errorf("dstruct: key length %d, list stores %d", len(key), sl.KeyLen)
	}
	update := make([]mem.VAddr, sl.MaxLevel)
	node := sl.Head
	for l := sl.MaxLevel - 1; l >= 0; l-- {
		for {
			nextU, err := as.ReadU64(SkipNextSlot(node, l))
			if err != nil {
				return false, mem.Extent{}, err
			}
			next := mem.VAddr(nextU)
			if next == 0 {
				break
			}
			nh, err := SkipHeight(as, next)
			if err != nil {
				return false, mem.Extent{}, err
			}
			nk, err := readKey(as, SkipKeyAddr(next, nh), sl.KeyLen)
			if err != nil {
				return false, mem.Extent{}, err
			}
			if bytes.Compare(nk, key) < 0 {
				node = next
				continue
			}
			break
		}
		update[l] = node
	}
	targetU, err := as.ReadU64(SkipNextSlot(update[0], 0))
	if err != nil {
		return false, mem.Extent{}, err
	}
	target := mem.VAddr(targetU)
	if target == 0 {
		return false, mem.Extent{}, nil
	}
	th, err := SkipHeight(as, target)
	if err != nil {
		return false, mem.Extent{}, err
	}
	tk, err := readKey(as, SkipKeyAddr(target, th), sl.KeyLen)
	if err != nil {
		return false, mem.Extent{}, err
	}
	if !bytes.Equal(tk, key) {
		return false, mem.Extent{}, nil
	}
	for l := 0; l < th; l++ {
		nextU, err := as.ReadU64(SkipNextSlot(target, l))
		if err != nil {
			return false, mem.Extent{}, err
		}
		as.MustWrite(SkipNextSlot(update[l], l), encodeU64(nextU))
	}
	sl.Len--
	return true, mem.Extent{Addr: target, Size: skipNodeSize(int(sl.KeyLen), th)}, nil
}

// Insert adds a key to the BST (no rebalancing — an object graph grows
// by allocation order; see NeedsRebuild/Rebuild for the explicit
// rebalance writers run when the tree degenerates).
func (b *BST) Insert(as *mem.AddressSpace, al mem.Allocator, key []byte, value uint64) error {
	if len(key) != int(b.KeyLen) {
		return fmt.Errorf("dstruct: key length %d, tree stores %d", len(key), b.KeyLen)
	}
	if b.Root == 0 {
		node := al.Alloc(bstNodeSize(int(b.KeyLen), b.PayloadBytes), mem.LineSize)
		as.MustWrite(node+bstOffValue, encodeU64(value))
		as.MustWrite(BSTKeyAddr(node, b.PayloadBytes), key)
		b.Root = node
		hdr, err := ReadHeader(as, b.HeaderAddr)
		if err != nil {
			return err
		}
		hdr.Root = node
		EncodeHeader(as, b.HeaderAddr, hdr)
		b.Len++
		if b.MaxDepth < 1 {
			b.MaxDepth = 1
		}
		return nil
	}
	cur := b.Root
	depth := 1
	for {
		ck, err := readKey(as, BSTKeyAddr(cur, b.PayloadBytes), b.KeyLen)
		if err != nil {
			return err
		}
		c := bytes.Compare(key, ck)
		if c == 0 {
			as.MustWrite(cur+bstOffValue, encodeU64(value))
			return nil
		}
		slot := BSTChildSlot(cur, c > 0)
		childU, err := as.ReadU64(slot)
		if err != nil {
			return err
		}
		depth++
		if childU == 0 {
			node := al.Alloc(bstNodeSize(int(b.KeyLen), b.PayloadBytes), mem.LineSize)
			as.MustWrite(node+bstOffValue, encodeU64(value))
			as.MustWrite(BSTKeyAddr(node, b.PayloadBytes), key)
			as.MustWrite(slot, encodeU64(uint64(node)))
			b.Len++
			if depth > b.MaxDepth {
				b.MaxDepth = depth
			}
			return nil
		}
		cur = mem.VAddr(childU)
	}
}

// Delete removes key from the BST by the classic delete-by-copy:
// a two-child node receives its in-order successor's key and value and
// the successor node is spliced out instead. It reports whether the
// key existed and the extent of the physically removed node.
func (b *BST) Delete(as *mem.AddressSpace, key []byte) (bool, mem.Extent, error) {
	if len(key) != int(b.KeyLen) {
		return false, mem.Extent{}, fmt.Errorf("dstruct: key length %d, tree stores %d", len(key), b.KeyLen)
	}
	var parent mem.VAddr
	var fromRight bool
	cur := b.Root
	for cur != 0 {
		ck, err := readKey(as, BSTKeyAddr(cur, b.PayloadBytes), b.KeyLen)
		if err != nil {
			return false, mem.Extent{}, err
		}
		c := bytes.Compare(key, ck)
		if c == 0 {
			break
		}
		parent, fromRight = cur, c > 0
		childU, err := as.ReadU64(BSTChildSlot(cur, c > 0))
		if err != nil {
			return false, mem.Extent{}, err
		}
		cur = mem.VAddr(childU)
	}
	if cur == 0 {
		return false, mem.Extent{}, nil
	}
	leftU, err := as.ReadU64(BSTChildSlot(cur, false))
	if err != nil {
		return false, mem.Extent{}, err
	}
	rightU, err := as.ReadU64(BSTChildSlot(cur, true))
	if err != nil {
		return false, mem.Extent{}, err
	}

	var victim mem.VAddr
	if leftU != 0 && rightU != 0 {
		// Two children: splice out the in-order successor after copying
		// its key and value into cur.
		sparent, s := cur, mem.VAddr(rightU)
		for {
			slU, err := as.ReadU64(BSTChildSlot(s, false))
			if err != nil {
				return false, mem.Extent{}, err
			}
			if slU == 0 {
				break
			}
			sparent, s = s, mem.VAddr(slU)
		}
		sk, err := readKey(as, BSTKeyAddr(s, b.PayloadBytes), b.KeyLen)
		if err != nil {
			return false, mem.Extent{}, err
		}
		sv, err := BSTValue(as, s)
		if err != nil {
			return false, mem.Extent{}, err
		}
		as.MustWrite(BSTKeyAddr(cur, b.PayloadBytes), sk)
		as.MustWrite(cur+bstOffValue, encodeU64(sv))
		srU, err := as.ReadU64(BSTChildSlot(s, true))
		if err != nil {
			return false, mem.Extent{}, err
		}
		// The successor is its parent's left child unless it is cur's
		// immediate right child.
		as.MustWrite(BSTChildSlot(sparent, sparent == cur), encodeU64(srU))
		victim = s
	} else {
		child := leftU | rightU // at most one is non-zero
		if parent == 0 {
			b.Root = mem.VAddr(child)
			hdr, err := ReadHeader(as, b.HeaderAddr)
			if err != nil {
				return false, mem.Extent{}, err
			}
			hdr.Root = mem.VAddr(child)
			EncodeHeader(as, b.HeaderAddr, hdr)
		} else {
			as.MustWrite(BSTChildSlot(parent, fromRight), encodeU64(child))
		}
		victim = cur
	}
	b.Len--
	return true, mem.Extent{Addr: victim, Size: bstNodeSize(int(b.KeyLen), b.PayloadBytes)}, nil
}

// NeedsRebuild reports whether the tree has degenerated past the
// scapegoat bound — max depth above twice the balanced depth — and a
// Rebuild would pay off.
func (b *BST) NeedsRebuild() bool {
	if b.Len < 8 {
		return false
	}
	balanced := 0
	for n := b.Len; n > 0; n >>= 1 {
		balanced++
	}
	return b.MaxDepth > 2*balanced
}

// Rebuild replaces the whole tree with a perfectly balanced copy built
// from fresh nodes — the scapegoat-style whole-tree rebalance writers
// run when NeedsRebuild fires. Every old node is returned for the
// caller to retire; in-flight queries keep traversing the old nodes
// until reclamation, while queries admitted after the header write see
// the balanced tree.
func (b *BST) Rebuild(as *mem.AddressSpace, al mem.Allocator) ([]mem.Extent, error) {
	nodeSize := bstNodeSize(int(b.KeyLen), b.PayloadBytes)
	type kv struct {
		key   []byte
		value uint64
	}
	var items []kv
	var old []mem.Extent
	// Iterative in-order traversal.
	var stack []mem.VAddr
	cur := b.Root
	for cur != 0 || len(stack) > 0 {
		for cur != 0 {
			stack = append(stack, cur)
			lU, err := as.ReadU64(BSTChildSlot(cur, false))
			if err != nil {
				return nil, err
			}
			cur = mem.VAddr(lU)
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		k, err := readKey(as, BSTKeyAddr(n, b.PayloadBytes), b.KeyLen)
		if err != nil {
			return nil, err
		}
		v, err := BSTValue(as, n)
		if err != nil {
			return nil, err
		}
		items = append(items, kv{key: k, value: v})
		old = append(old, mem.Extent{Addr: n, Size: nodeSize})
		rU, err := as.ReadU64(BSTChildSlot(n, true))
		if err != nil {
			return nil, err
		}
		cur = mem.VAddr(rU)
	}

	var buildRange func(lo, hi int) mem.VAddr
	buildRange = func(lo, hi int) mem.VAddr {
		if lo > hi {
			return 0
		}
		mid := (lo + hi) / 2
		node := al.Alloc(nodeSize, mem.LineSize)
		as.MustWrite(node+bstOffValue, encodeU64(items[mid].value))
		as.MustWrite(BSTKeyAddr(node, b.PayloadBytes), items[mid].key)
		as.MustWrite(BSTChildSlot(node, false), encodeU64(uint64(buildRange(lo, mid-1))))
		as.MustWrite(BSTChildSlot(node, true), encodeU64(uint64(buildRange(mid+1, hi))))
		return node
	}
	root := buildRange(0, len(items)-1)

	hdr, err := ReadHeader(as, b.HeaderAddr)
	if err != nil {
		return nil, err
	}
	hdr.Root = root
	hdr.Size = uint64(len(items))
	EncodeHeader(as, b.HeaderAddr, hdr)
	b.Root = root
	b.Len = len(items)
	depth := 0
	for n := len(items); n > 0; n >>= 1 {
		depth++
	}
	b.MaxDepth = depth
	return old, nil
}
