package dstruct

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"qei/internal/mem"
)

// btreeCheckInvariants walks the whole tree and verifies the B+-tree
// shape: sorted keys, child/separator agreement, consistent depth, and
// an intact, sorted leaf chain covering exactly Len entries.
func btreeCheckInvariants(t *testing.T, as *mem.AddressSpace, bt *BTree) {
	t.Helper()
	if bt.Root == 0 {
		if bt.Len != 0 {
			t.Fatalf("rootless tree with Len %d", bt.Len)
		}
		return
	}
	var leafDepth int
	var walk func(node mem.VAddr, depth int, lower, upper []byte)
	walk = func(node mem.VAddr, depth int, lower, upper []byte) {
		n, err := bt.loadNode(as, node)
		if err != nil {
			t.Fatal(err)
		}
		var prev []byte
		for i := 0; i < n.count(); i++ {
			k := n.key(i)
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("unsorted keys in node %#x", uint64(node))
			}
			if lower != nil && bytes.Compare(k, lower) < 0 {
				t.Fatalf("key below subtree bound in node %#x", uint64(node))
			}
			if upper != nil && bytes.Compare(k, upper) >= 0 {
				t.Fatalf("key above subtree bound in node %#x", uint64(node))
			}
			prev = append([]byte(nil), k...)
		}
		if n.leaf() {
			if leafDepth == 0 {
				leafDepth = depth
			} else if depth != leafDepth {
				t.Fatalf("leaves at depths %d and %d", leafDepth, depth)
			}
			return
		}
		for i := 0; i <= n.count(); i++ {
			lo, hi := lower, upper
			if i > 0 {
				lo = append([]byte(nil), n.key(i-1)...)
			}
			if i < n.count() {
				hi = append([]byte(nil), n.key(i)...)
			}
			walk(n.child(i), depth+1, lo, hi)
		}
	}
	walk(bt.Root, 1, nil, nil)
	if leafDepth != bt.Height {
		t.Fatalf("leaf depth %d, handle Height %d", leafDepth, bt.Height)
	}

	// Leaf chain: find leftmost leaf, walk links, count entries.
	node := bt.Root
	for {
		n, err := bt.loadNode(as, node)
		if err != nil {
			t.Fatal(err)
		}
		if n.leaf() {
			break
		}
		node = n.child(0)
	}
	total := 0
	var prev []byte
	for node != 0 {
		n, err := bt.loadNode(as, node)
		if err != nil {
			t.Fatal(err)
		}
		if !n.leaf() {
			t.Fatalf("leaf chain reached inner node %#x", uint64(node))
		}
		for i := 0; i < n.count(); i++ {
			if prev != nil && bytes.Compare(prev, n.key(i)) >= 0 {
				t.Fatal("leaf chain unsorted")
			}
			prev = append([]byte(nil), n.key(i)...)
			total++
		}
		node = n.link()
	}
	if total != bt.Len {
		t.Fatalf("leaf chain has %d entries, handle Len %d", total, bt.Len)
	}

	// The header must agree with the handle (the walkers trust it).
	hdr, err := ReadHeader(as, bt.HeaderAddr)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Root != bt.Root || hdr.Aux != uint64(bt.Height) || hdr.Size != uint64(bt.Len) {
		t.Fatalf("header %+v disagrees with handle root=%#x h=%d len=%d",
			hdr, uint64(bt.Root), bt.Height, bt.Len)
	}
}

func TestBTreeInsertSplitsAndGrows(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(8, 16, 21)
	bt := BuildBTree(as, 4, keys, vals) // fanout 4: splits come fast

	extra, extraVals := genKeys(60, 16, 22)
	for i, k := range extra {
		if _, err := bt.Insert(as, as, k, extraVals[i]); err != nil {
			t.Fatal(err)
		}
	}
	if bt.Splits == 0 {
		t.Fatal("60 inserts into a fanout-4 tree caused no splits")
	}
	if bt.Height < 2 {
		t.Fatalf("tree did not grow: height %d", bt.Height)
	}
	btreeCheckInvariants(t, as, bt)
	for i, k := range extra {
		v, found, err := QueryBTreeRef(as, bt.HeaderAddr, k)
		if err != nil || !found || v != extraVals[i] {
			t.Fatalf("inserted key %d: v=%d found=%v err=%v", i, v, found, err)
		}
	}
	// Update in place.
	if _, err := bt.Insert(as, as, extra[0], 31337); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := QueryBTreeRef(as, bt.HeaderAddr, extra[0]); v != 31337 {
		t.Fatal("in-place update failed")
	}
	if bt.Len != 68 {
		t.Fatalf("Len = %d, want 68", bt.Len)
	}
}

func TestBTreeInsertIntoEmpty(t *testing.T) {
	as := newAS()
	bt := BuildBTree(as, 4, nil, nil)
	bt.KeyLen = 8 // empty build has no keys to take the length from
	k := []byte("aaaabbbb")
	if _, err := bt.Insert(as, as, k, 7); err != nil {
		t.Fatal(err)
	}
	if v, found, _ := QueryBTreeRef(as, bt.HeaderAddr, k); !found || v != 7 {
		t.Fatal("insert into empty tree not queryable")
	}
}

func TestBTreeDeleteMergesAndShrinks(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(128, 16, 23)
	bt := BuildBTree(as, 4, keys, vals)
	startHeight := bt.Height

	var freedTotal int
	for i := 0; i < 120; i++ {
		ok, freed, err := bt.Delete(as, keys[i])
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
		freedTotal += len(freed)
		for _, e := range freed {
			if e.Size != bt.nodeSize() {
				t.Fatalf("freed extent %+v, want node size %d", e, bt.nodeSize())
			}
		}
	}
	if bt.Merges == 0 {
		t.Fatal("120 deletes from a fanout-4 tree caused no merges")
	}
	if freedTotal == 0 {
		t.Fatal("merges freed no extents")
	}
	if bt.Height >= startHeight {
		t.Fatalf("height %d did not shrink from %d", bt.Height, startHeight)
	}
	btreeCheckInvariants(t, as, bt)
	for i := 0; i < 120; i++ {
		if _, found, _ := QueryBTreeRef(as, bt.HeaderAddr, keys[i]); found {
			t.Fatalf("deleted key %d still found", i)
		}
	}
	for i := 120; i < 128; i++ {
		v, found, _ := QueryBTreeRef(as, bt.HeaderAddr, keys[i])
		if !found || v != vals[i] {
			t.Fatalf("surviving key %d lost", i)
		}
	}
	if ok, _, _ := bt.Delete(as, bytes.Repeat([]byte{0xEE}, 16)); ok {
		t.Fatal("absent delete reported success")
	}
}

// Property: a random interleaving of B+-tree inserts/deletes matches a
// Go map, and the structural invariants hold throughout.
func TestPropertyBTreeUpdatesMatchMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		as := newAS()
		keys, vals := genKeys(96, 16, seed)
		bt := BuildBTree(as, 4, keys[:48], vals[:48])
		ref := map[string]uint64{}
		for i := 0; i < 48; i++ {
			ref[string(keys[i])] = vals[i]
		}
		for op := 0; op < 300; op++ {
			i := rng.Intn(96)
			if rng.Intn(2) == 0 {
				v := vals[i] ^ uint64(op+1)
				if _, err := bt.Insert(as, as, keys[i], v); err != nil {
					return false
				}
				ref[string(keys[i])] = v
			} else {
				ok, _, err := bt.Delete(as, keys[i])
				if err != nil {
					return false
				}
				_, inRef := ref[string(keys[i])]
				if ok != inRef {
					return false
				}
				delete(ref, string(keys[i]))
			}
		}
		if bt.Len != len(ref) {
			return false
		}
		for i := 0; i < 96; i++ {
			v, found, err := QueryBTreeRef(as, bt.HeaderAddr, keys[i])
			if err != nil {
				return false
			}
			want, inRef := ref[string(keys[i])]
			if found != inRef || (found && v != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
