package dstruct

import (
	"bytes"
	"math/rand"

	"qei/internal/mem"
)

// Binary search tree, standing in for the JVM object tree (Sec. VI-B):
// the paper's JVM benchmark extracts OpenJDK's serial mark-and-sweep
// collector and queries the tree of live objects. Object-tree nodes are
// larger than a cacheline (object header + fields), so each visit costs
// multiple memory accesses — the paper measures 39.9 accesses per query
// on average.
//
// Node layout:
//
//	offset 0:   left child (8 B)
//	offset 8:   right child (8 B)
//	offset 16:  value (8 B)
//	offset 24:  object payload (PayloadBytes, inflates node footprint)
//	offset 24 + payload: key bytes (KeyLen)
const (
	bstOffLeft    = 0
	bstOffRight   = 8
	bstOffValue   = 16
	bstOffPayload = 24
)

// BST is the host handle to a simulated binary search tree.
type BST struct {
	HeaderAddr   mem.VAddr
	Root         mem.VAddr
	KeyLen       uint16
	PayloadBytes int
	Len          int
	// MaxDepth tracks the deepest node ever linked (builder and Insert
	// both maintain it); NeedsRebuild compares it against the scapegoat
	// bound. Rebuild resets it to the balanced depth.
	MaxDepth int
}

// bstNodeSize returns a node's allocation size.
func bstNodeSize(keyLen, payload int) uint64 {
	sz := uint64(bstOffPayload + payload + keyLen)
	return (sz + mem.LineSize - 1) &^ (mem.LineSize - 1)
}

// BSTKeyAddr returns the address of a node's key bytes.
func BSTKeyAddr(node mem.VAddr, payload int) mem.VAddr {
	return node + bstOffPayload + mem.VAddr(payload)
}

// BSTChildSlot returns the address of the left (0) or right (1) child
// pointer.
func BSTChildSlot(node mem.VAddr, right bool) mem.VAddr {
	if right {
		return node + bstOffRight
	}
	return node + bstOffLeft
}

// BSTValue reads a node's value.
func BSTValue(as *mem.AddressSpace, node mem.VAddr) (uint64, error) {
	return as.ReadU64(node + bstOffValue)
}

// BuildBST materializes the keys as an unbalanced binary search tree
// (insertion in shuffled order controlled by seed — mimicking allocation
// order of a real object graph, which is neither sorted nor balanced).
// payload is the per-node object body size in bytes; the header's Aux
// field records it so walkers know the key offset.
func BuildBST(as *mem.AddressSpace, seed int64, payload int, keys [][]byte, values []uint64) *BST {
	if len(keys) != len(values) {
		panic("dstruct: keys/values length mismatch")
	}
	keyLen := 0
	if len(keys) > 0 {
		keyLen = len(keys[0])
	}
	order := rand.New(rand.NewSource(seed)).Perm(len(keys))
	var root mem.VAddr
	nodeSize := bstNodeSize(keyLen, payload)
	maxDepth := 0

	for _, i := range order {
		k := keys[i]
		if len(k) != keyLen {
			panic("dstruct: inconsistent key lengths in BST")
		}
		node := as.Alloc(nodeSize, mem.LineSize)
		as.MustWrite(node+bstOffValue, encodeU64(values[i]))
		as.MustWrite(BSTKeyAddr(node, payload), k)
		if root == 0 {
			root = node
			maxDepth = 1
			continue
		}
		cur := root
		depth := 1
		for {
			ck, err := readKey(as, BSTKeyAddr(cur, payload), uint16(keyLen))
			if err != nil {
				panic(err)
			}
			right := bytes.Compare(k, ck) > 0
			slot := BSTChildSlot(cur, right)
			childU, err := as.ReadU64(slot)
			if err != nil {
				panic(err)
			}
			depth++
			if childU == 0 {
				as.MustWrite(slot, encodeU64(uint64(node)))
				if depth > maxDepth {
					maxDepth = depth
				}
				break
			}
			cur = mem.VAddr(childU)
		}
	}

	hdr := Header{
		Root:   root,
		Type:   TypeBST,
		KeyLen: uint16(keyLen),
		Size:   uint64(len(keys)),
		Aux:    uint64(payload),
	}
	return &BST{
		HeaderAddr:   WriteHeader(as, hdr),
		Root:         root,
		KeyLen:       uint16(keyLen),
		PayloadBytes: payload,
		Len:          len(keys),
		MaxDepth:     maxDepth,
	}
}

// QueryBSTRef is the host-side reference lookup.
func QueryBSTRef(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (uint64, bool, error) {
	h, err := ReadHeader(as, headerAddr)
	if err != nil {
		return 0, false, err
	}
	payload := int(h.Aux)
	node := h.Root
	for node != 0 {
		k, err := readKey(as, BSTKeyAddr(node, payload), h.KeyLen)
		if err != nil {
			return 0, false, err
		}
		c := bytes.Compare(key, k)
		if c == 0 {
			v, err := BSTValue(as, node)
			return v, err == nil, err
		}
		childU, err := as.ReadU64(BSTChildSlot(node, c > 0))
		if err != nil {
			return 0, false, err
		}
		node = mem.VAddr(childU)
	}
	return 0, false, nil
}

// BSTDepthStats walks the whole tree and returns node count, max depth,
// and average depth — used to validate the "≈39.9 memory accesses per
// query" calibration of the JVM workload.
func BSTDepthStats(as *mem.AddressSpace, headerAddr mem.VAddr) (nodes int, maxDepth int, avgDepth float64, err error) {
	h, err := ReadHeader(as, headerAddr)
	if err != nil {
		return 0, 0, 0, err
	}
	var sumDepth int
	type frame struct {
		node  mem.VAddr
		depth int
	}
	stack := []frame{{h.Root, 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.node == 0 {
			continue
		}
		nodes++
		sumDepth += f.depth
		if f.depth > maxDepth {
			maxDepth = f.depth
		}
		lu, err := as.ReadU64(BSTChildSlot(f.node, false))
		if err != nil {
			return 0, 0, 0, err
		}
		ru, err := as.ReadU64(BSTChildSlot(f.node, true))
		if err != nil {
			return 0, 0, 0, err
		}
		stack = append(stack, frame{mem.VAddr(lu), f.depth + 1}, frame{mem.VAddr(ru), f.depth + 1})
	}
	if nodes > 0 {
		avgDepth = float64(sumDepth) / float64(nodes)
	}
	return nodes, maxDepth, avgDepth, nil
}
