package dstruct

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreeQuery(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(3000, 16, 40)
	bt := BuildBTree(as, 16, keys, vals)
	if bt.Len != 3000 {
		t.Fatalf("Len = %d", bt.Len)
	}
	for i, k := range keys {
		v, found, err := QueryBTreeRef(as, bt.HeaderAddr, k)
		if err != nil {
			t.Fatal(err)
		}
		if !found || v != vals[i] {
			t.Fatalf("key %d: found=%v v=%d want %d", i, found, v, vals[i])
		}
	}
	if _, found, _ := QueryBTreeRef(as, bt.HeaderAddr, make([]byte, 16)); found {
		t.Fatal("absent key reported found")
	}
}

func TestBTreeHeightLogarithmic(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(4096, 8, 41)
	bt := BuildBTree(as, 16, keys, vals)
	// 4096 keys at fanout 16: 256 leaves, 16 inner, 1 root = height 3.
	if bt.Height != 3 {
		t.Fatalf("height = %d, want 3", bt.Height)
	}
}

func TestBTreeSingleLeaf(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(5, 8, 42)
	bt := BuildBTree(as, 16, keys, vals)
	if bt.Height != 1 {
		t.Fatalf("height = %d, want 1 (single leaf)", bt.Height)
	}
	for i, k := range keys {
		v, found, _ := QueryBTreeRef(as, bt.HeaderAddr, k)
		if !found || v != vals[i] {
			t.Fatalf("key %d wrong", i)
		}
	}
}

func TestBTreeScanFrom(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(500, 16, 43)
	bt := BuildBTree(as, 8, keys, vals)

	// Sort host-side to know the expected order.
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return bytes.Compare(keys[idx[a]], keys[idx[b]]) < 0 })

	// Scan 20 values from the 100th key.
	start := keys[idx[100]]
	got, err := BTreeScanFrom(as, bt.HeaderAddr, start, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("scan returned %d values", len(got))
	}
	for i := 0; i < 20; i++ {
		if got[i] != vals[idx[100+i]] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], vals[idx[100+i]])
		}
	}
	// Scan past the end clamps.
	tail, err := BTreeScanFrom(as, bt.HeaderAddr, keys[idx[495]], 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 5 {
		t.Fatalf("tail scan = %d values, want 5", len(tail))
	}
}

func TestBTreeLeafChainSorted(t *testing.T) {
	as := newAS()
	keys, vals := genKeys(300, 16, 44)
	bt := BuildBTree(as, 8, keys, vals)
	all, err := BTreeScanFrom(as, bt.HeaderAddr, make([]byte, 16), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 300 {
		t.Fatalf("full scan = %d values", len(all))
	}
}

// Property: B+-tree agrees with a Go map for arbitrary key sets.
func TestPropertyBTreeMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		n := 50 + int(uint64(seed)%400)
		keys, vals := genKeys(n, 16, seed)
		as := newAS()
		bt := BuildBTree(as, 8, keys, vals)
		for i, k := range keys {
			v, found, err := QueryBTreeRef(as, bt.HeaderAddr, k)
			if err != nil || !found || v != vals[i] {
				return false
			}
		}
		_, found, _ := QueryBTreeRef(as, bt.HeaderAddr, bytes.Repeat([]byte{0}, 16))
		return !found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
