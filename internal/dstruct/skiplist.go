package dstruct

import (
	"bytes"
	"math/rand"
	"sort"

	"qei/internal/mem"
)

// Skip list (the RocksDB memtable structure, Sec. VI-B). Keys are sorted
// byte strings; the list keeps multiple levels of forward pointers so a
// query can skip nodes during traversal [65].
//
// Node layout:
//
//	offset 0:              height (8 B)
//	offset 8:              value (8 B)
//	offset 16:             next[0..height-1] (8 B each)
//	offset 16 + 8*height:  key bytes (KeyLen)
//
// The head node is a full-height node with an all-zero key that holds no
// value. Header fields: Root = head node, Aux = max level, KeyLen, Size.

const (
	skipOffHeight = 0
	skipOffValue  = 8
	skipOffNext   = 16
)

// SkipMaxLevel is the tallest tower the builder creates (RocksDB uses 12).
const SkipMaxLevel = 12

// SkipList is the host handle to a simulated skip list.
type SkipList struct {
	HeaderAddr mem.VAddr
	Head       mem.VAddr
	MaxLevel   int
	KeyLen     uint16
	Len        int
}

// skipNodeSize returns the allocation size for a node of the given height.
func skipNodeSize(keyLen, height int) uint64 {
	sz := uint64(skipOffNext + 8*height + keyLen)
	return (sz + mem.LineSize - 1) &^ (mem.LineSize - 1)
}

// SkipNextSlot returns the address of a node's level-l forward pointer.
func SkipNextSlot(node mem.VAddr, l int) mem.VAddr {
	return node + skipOffNext + mem.VAddr(8*l)
}

// SkipKeyAddr returns the address of a node's key, given its height.
func SkipKeyAddr(node mem.VAddr, height int) mem.VAddr {
	return node + skipOffNext + mem.VAddr(8*height)
}

// SkipHeight reads a node's height.
func SkipHeight(as *mem.AddressSpace, node mem.VAddr) (int, error) {
	h, err := as.ReadU64(node + skipOffHeight)
	return int(h), err
}

// SkipValue reads a node's value.
func SkipValue(as *mem.AddressSpace, node mem.VAddr) (uint64, error) {
	return as.ReadU64(node + skipOffValue)
}

// BuildSkipList materializes the given keys (must be unique; builder
// sorts them) with geometric tower heights from the deterministic seed.
func BuildSkipList(as *mem.AddressSpace, seed int64, keys [][]byte, values []uint64) *SkipList {
	if len(keys) != len(values) {
		panic("dstruct: keys/values length mismatch")
	}
	keyLen := 0
	if len(keys) > 0 {
		keyLen = len(keys[0])
	}
	// Sort key/value pairs by key.
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sortIdxByKey(idx, keys)

	rng := rand.New(rand.NewSource(seed))
	head := as.Alloc(skipNodeSize(keyLen, SkipMaxLevel), mem.LineSize)
	as.MustWrite(head+skipOffHeight, encodeU64(SkipMaxLevel))
	// update[l] tracks the rightmost node at level l during construction.
	update := make([]mem.VAddr, SkipMaxLevel)
	for l := range update {
		update[l] = head
	}

	for _, i := range idx {
		k := keys[i]
		if len(k) != keyLen {
			panic("dstruct: inconsistent key lengths in skip list")
		}
		height := 1
		for height < SkipMaxLevel && rng.Intn(4) == 0 { // RocksDB branching 1/4
			height++
		}
		node := as.Alloc(skipNodeSize(keyLen, height), mem.LineSize)
		as.MustWrite(node+skipOffHeight, encodeU64(uint64(height)))
		as.MustWrite(node+skipOffValue, encodeU64(values[i]))
		as.MustWrite(SkipKeyAddr(node, height), k)
		for l := 0; l < height; l++ {
			as.MustWrite(SkipNextSlot(update[l], l), encodeU64(uint64(node)))
			update[l] = node
		}
	}

	hdr := Header{
		Root:   head,
		Type:   TypeSkipList,
		KeyLen: uint16(keyLen),
		Size:   uint64(len(keys)),
		Aux:    SkipMaxLevel,
	}
	return &SkipList{
		HeaderAddr: WriteHeader(as, hdr),
		Head:       head,
		MaxLevel:   SkipMaxLevel,
		KeyLen:     uint16(keyLen),
		Len:        len(keys),
	}
}

func sortIdxByKey(idx []int, keys [][]byte) {
	sort.Slice(idx, func(a, b int) bool {
		return bytes.Compare(keys[idx[a]], keys[idx[b]]) < 0
	})
}

// QuerySkipListRef is the host-side reference lookup (RocksDB-style
// seek + exact match).
func QuerySkipListRef(as *mem.AddressSpace, headerAddr mem.VAddr, key []byte) (uint64, bool, error) {
	h, err := ReadHeader(as, headerAddr)
	if err != nil {
		return 0, false, err
	}
	node := h.Root
	for l := int(h.Aux) - 1; l >= 0; l-- {
		for {
			nextU, err := as.ReadU64(SkipNextSlot(node, l))
			if err != nil {
				return 0, false, err
			}
			next := mem.VAddr(nextU)
			if next == 0 {
				break
			}
			nh, err := SkipHeight(as, next)
			if err != nil {
				return 0, false, err
			}
			nk, err := readKey(as, SkipKeyAddr(next, nh), h.KeyLen)
			if err != nil {
				return 0, false, err
			}
			c := bytes.Compare(nk, key)
			if c < 0 {
				node = next
				continue
			}
			if c == 0 && l == 0 {
				v, err := SkipValue(as, next)
				return v, err == nil, err
			}
			break
		}
	}
	return 0, false, nil
}
