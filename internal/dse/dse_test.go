package dse

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"qei/internal/hwdesc"
)

func TestParseAxes(t *testing.T) {
	a, err := ParseAxes("qst=8,16;cores=8,24;mesh=6x4,4x4;scheme=core,cha-tlb;node=22,7")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.QST) != 2 || a.QST[0] != 8 || a.QST[1] != 16 {
		t.Errorf("QST = %v", a.QST)
	}
	if len(a.Mesh) != 2 || a.Mesh[1] != [2]int{4, 4} {
		t.Errorf("Mesh = %v", a.Mesh)
	}
	if len(a.Schemes) != 2 || a.Schemes[1] != "cha-tlb" {
		t.Errorf("Schemes = %v", a.Schemes)
	}
	if len(a.Nodes) != 2 || a.Nodes[1] != 7 {
		t.Errorf("Nodes = %v", a.Nodes)
	}

	empty, err := ParseAxes("  ")
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.QST)+len(empty.Cores)+len(empty.Mesh)+len(empty.Schemes)+len(empty.Nodes) != 0 {
		t.Errorf("empty spec produced %+v", empty)
	}

	for _, bad := range []string{
		"qst=ten", "mesh=6by4", "scheme=warp", "unknown=1", "qst",
	} {
		if _, err := ParseAxes(bad); !errors.Is(err, hwdesc.ErrBadConfig) {
			t.Errorf("ParseAxes(%q) error = %v, want ErrBadConfig", bad, err)
		}
	}
}

func TestExpandSkipsInvalidAndNamesPoints(t *testing.T) {
	a := Axes{
		Cores: []int{8, 32},
		Mesh:  [][2]int{{6, 4}, {4, 4}},
	}
	points, skipped := a.Expand(hwdesc.Default())
	// 32 cores fit neither the 24-stop 6x4 mesh nor the 16-stop 4x4:
	// 2 valid, 2 skipped.
	if len(points) != 2 || skipped != 2 {
		t.Fatalf("got %d points, %d skipped; want 2 and 2", len(points), skipped)
	}
	seen := map[string]bool{}
	for _, d := range points {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if seen[d.Name] {
			t.Errorf("duplicate point name %q", d.Name)
		}
		seen[d.Name] = true
		if !strings.Contains(d.Name, "core/") {
			t.Errorf("name %q should encode the scheme", d.Name)
		}
	}
}

func TestExpandPointsDoNotAliasMemStops(t *testing.T) {
	points, _ := Axes{QST: []int{8, 16}}.Expand(hwdesc.Default())
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	points[0].MemStops[0] = 99
	if points[1].MemStops[0] == 99 {
		t.Fatal("sweep points share MemStops storage")
	}
}

func TestDefaultAxesGridSize(t *testing.T) {
	points, skipped := DefaultAxes().Expand(hwdesc.Default())
	if len(points) < 100 {
		t.Errorf("default sweep has %d valid points, want >= 100", len(points))
	}
	if skipped == 0 {
		t.Errorf("default sweep should skip the 24/32-core x 4x4-mesh cells")
	}
	if len(points)+skipped != 2*4*4*2*3 {
		t.Errorf("points %d + skipped %d != grid %d", len(points), skipped, 2*4*4*2*3)
	}
}

func TestMemStopsFor(t *testing.T) {
	for _, tc := range []struct {
		stops int
		want  int
	}{{16, 4}, {24, 6}, {4, 2}, {2, 2}, {1, 1}} {
		got := memStopsFor(tc.stops)
		if len(got) != tc.want {
			t.Errorf("memStopsFor(%d) = %v, want %d stops", tc.stops, got, tc.want)
		}
		for _, s := range got {
			if s < 0 || s >= tc.stops {
				t.Errorf("memStopsFor(%d) stop %d out of range", tc.stops, s)
			}
		}
	}
}

func TestDominates(t *testing.T) {
	base := Point{SpeedupX: 2, AreaMM2: 1, EnergyNJPerQuery: 10}
	cases := []struct {
		name string
		a, b Point
		want bool
	}{
		{"strictly better on one axis", Point{SpeedupX: 3, AreaMM2: 1, EnergyNJPerQuery: 10}, base, true},
		{"better everywhere", Point{SpeedupX: 3, AreaMM2: 0.5, EnergyNJPerQuery: 5}, base, true},
		{"equal", base, base, false},
		{"tradeoff", Point{SpeedupX: 3, AreaMM2: 2, EnergyNJPerQuery: 10}, base, false},
		{"worse", Point{SpeedupX: 1, AreaMM2: 2, EnergyNJPerQuery: 20}, base, false},
	}
	for _, tc := range cases {
		if got := dominates(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: dominates = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMarkPareto(t *testing.T) {
	pts := []Point{
		{SpeedupX: 2, AreaMM2: 1, EnergyNJPerQuery: 10},  // frontier
		{SpeedupX: 3, AreaMM2: 2, EnergyNJPerQuery: 12},  // frontier (fastest)
		{SpeedupX: 1, AreaMM2: 2, EnergyNJPerQuery: 15},  // dominated by 0
		{SpeedupX: 2, AreaMM2: 1, EnergyNJPerQuery: 10},  // duplicate of 0: neither dominates
		{SpeedupX: 1, AreaMM2: 0.5, EnergyNJPerQuery: 9}, // frontier (cheapest)
	}
	markPareto(pts)
	wantDominated := []bool{false, false, true, false, false}
	for i, p := range pts {
		if p.Dominated != wantDominated[i] {
			t.Errorf("point %d: Dominated = %v, want %v", i, p.Dominated, wantDominated[i])
		}
	}
}

// TestSweepSerialParallelIdentical is the determinism pin: the same
// tiny sweep at one worker and at eight must render byte-identical
// JSON, and its frontier must be non-empty and correct.
func TestSweepSerialParallelIdentical(t *testing.T) {
	axes := Axes{QST: []int{8, 16}, Cores: []int{16, 24}}
	ctx := context.Background()

	serial, err := Sweep(ctx, Config{Workload: "dpdk", Axes: axes, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(ctx, Config{Workload: "dpdk", Axes: axes, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	sj, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	pj, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatal("serial and parallel sweep JSON differ")
	}

	if len(serial.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(serial.Points))
	}
	if len(serial.Frontier) == 0 {
		t.Fatal("empty Pareto frontier")
	}
	if serial.DominatedCount != len(serial.Points)-len(serial.Frontier) {
		t.Errorf("DominatedCount %d inconsistent with %d points / %d frontier",
			serial.DominatedCount, len(serial.Points), len(serial.Frontier))
	}
	for _, p := range serial.Points {
		if p.SpeedupX <= 1 {
			t.Errorf("%s: speedup %.2fx, want > 1 (QEI beats software)", p.Desc.Name, p.SpeedupX)
		}
		if p.AreaMM2 <= 0 || p.EnergyNJPerQuery <= 0 || p.Queries == 0 {
			t.Errorf("%s: degenerate point %+v", p.Desc.Name, p)
		}
	}
	// Bigger QSTs cost more silicon at equal core count.
	var q8, q16 *Point
	for i := range serial.Points {
		p := &serial.Points[i]
		if p.Desc.Cores == 24 {
			switch p.Desc.QST.Entries {
			case 8:
				q8 = p
			case 16:
				q16 = p
			}
		}
	}
	if q8 == nil || q16 == nil {
		t.Fatal("missing expected sweep points")
	}
	if q16.AreaMM2 <= q8.AreaMM2 {
		t.Errorf("area should grow with QST: q16 %.4f <= q8 %.4f", q16.AreaMM2, q8.AreaMM2)
	}
}

func TestSweepBaselineSharing(t *testing.T) {
	// Points differing only in QST share a chip topology, so their
	// baseline cycles must be identical.
	res, err := Sweep(context.Background(), Config{
		Workload: "dpdk",
		Axes:     Axes{QST: []int{8, 32}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points", len(res.Points))
	}
	if res.Points[0].BaselineCycles != res.Points[1].BaselineCycles {
		t.Errorf("same-chip points measured different baselines: %d vs %d",
			res.Points[0].BaselineCycles, res.Points[1].BaselineCycles)
	}
}

func TestSweepErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := Sweep(ctx, Config{Workload: "quake"}); !errors.Is(err, hwdesc.ErrBadConfig) {
		t.Errorf("unknown workload: error = %v, want ErrBadConfig", err)
	}
	bad := hwdesc.Default()
	bad.Cores = 1000
	if _, err := Sweep(ctx, Config{Base: bad}); !errors.Is(err, hwdesc.ErrBadConfig) {
		t.Errorf("invalid base: error = %v, want ErrBadConfig", err)
	}
	// A grid whose every cell is invalid must error, not return empty.
	if _, err := Sweep(ctx, Config{Axes: Axes{Cores: []int{1000}}}); !errors.Is(err, hwdesc.ErrBadConfig) {
		t.Errorf("all-invalid grid: error = %v, want ErrBadConfig", err)
	}
}

func TestBenchFor(t *testing.T) {
	for _, name := range []string{"", "dpdk", "jvm", "rocksdb", "snort", "flann"} {
		if _, err := BenchFor(name, false); err != nil {
			t.Errorf("BenchFor(%q): %v", name, err)
		}
		if _, err := BenchFor(name, true); err != nil {
			t.Errorf("BenchFor(%q, full): %v", name, err)
		}
	}
	if _, err := BenchFor("quake", false); !errors.Is(err, hwdesc.ErrBadConfig) {
		t.Errorf("BenchFor(quake) error = %v, want ErrBadConfig", err)
	}
}
