// Package dse is the design-space-exploration engine: it expands an
// axis grid (QST capacity, core count, mesh geometry, integration
// scheme, technology node) into concrete hwdesc machine descriptions,
// evaluates every valid point through the deterministic runner worker
// pool — one simulated machine per point, software baseline vs QEI on
// the same chip — and scores each point on three objectives: lookup
// speedup over the software baseline, total accelerator silicon (mm²),
// and dynamic energy per query (nJ). The non-dominated points form the
// Pareto frontier the cloud-provisioning argument of the paper turns
// on: which design points buy speedup without paying for silicon or
// energy that a cheaper point already delivers.
//
// Determinism contract: the grid expands in a fixed axis order, results
// are collected at their grid index by runner.Map, and nothing in a
// Point depends on wall clock — so the sweep's JSON output is
// byte-identical at any worker count (TestSweepSerialParallelIdentical
// pins it, and ci.sh's dse-smoke stage re-checks end to end).
package dse

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"qei/internal/hwdesc"
	"qei/internal/power"
	"qei/internal/runner"
	"qei/internal/workload"
)

// Axes is the sweep grid: the cross product of every non-empty axis,
// applied to a base description. An empty axis keeps the base value.
type Axes struct {
	// QST sweeps the per-instance QST entry count.
	QST []int `json:"qst,omitempty"`
	// Cores sweeps the core count (bounded above by each mesh's stops).
	Cores []int `json:"cores,omitempty"`
	// Mesh sweeps the NoC geometry as {cols, rows} pairs.
	Mesh [][2]int `json:"mesh,omitempty"`
	// Schemes sweeps integration schemes by name ("core", "cha-tlb", ...).
	Schemes []string `json:"schemes,omitempty"`
	// Nodes sweeps the technology node in nm.
	Nodes []int `json:"nodes,omitempty"`
}

// DefaultAxes is the standard provisioning sweep: two integration
// schemes, four QST depths, chips from 8 to 32 cores on two mesh
// geometries, at three technology nodes — 120 valid design points out
// of 192 grid cells (24 cores do not fit the 4x4 mesh and 32 cores fit
// neither, so 72 cells are skipped as invalid; a core needs a mesh stop
// of its own).
func DefaultAxes() Axes {
	return Axes{
		QST:     []int{8, 16, 32, 64},
		Cores:   []int{8, 16, 24, 32},
		Mesh:    [][2]int{{6, 4}, {4, 4}},
		Schemes: []string{"core", "cha-tlb"},
		Nodes:   []int{22, 14, 7},
	}
}

// ParseAxes parses a compact axis spec of the form
//
//	"qst=8,16,32;cores=8,24;mesh=6x4,4x4;scheme=core,cha-tlb;node=22,7"
//
// Unknown axis names and malformed values are errors wrapping
// hwdesc.ErrBadConfig. An empty spec returns empty Axes (base only).
func ParseAxes(spec string) (Axes, error) {
	var a Axes
	if strings.TrimSpace(spec) == "" {
		return a, nil
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, vals, ok := strings.Cut(part, "=")
		if !ok {
			return a, fmt.Errorf("%w: axis %q is not name=v1,v2,...", hwdesc.ErrBadConfig, part)
		}
		items := strings.Split(vals, ",")
		switch strings.TrimSpace(name) {
		case "qst":
			ints, err := parseInts("qst", items)
			if err != nil {
				return a, err
			}
			a.QST = ints
		case "cores":
			ints, err := parseInts("cores", items)
			if err != nil {
				return a, err
			}
			a.Cores = ints
		case "node":
			ints, err := parseInts("node", items)
			if err != nil {
				return a, err
			}
			a.Nodes = ints
		case "mesh":
			for _, it := range items {
				c, r, ok := strings.Cut(strings.TrimSpace(it), "x")
				if !ok {
					return a, fmt.Errorf("%w: mesh %q is not COLSxROWS", hwdesc.ErrBadConfig, it)
				}
				cols, err1 := strconv.Atoi(c)
				rows, err2 := strconv.Atoi(r)
				if err1 != nil || err2 != nil {
					return a, fmt.Errorf("%w: mesh %q is not COLSxROWS", hwdesc.ErrBadConfig, it)
				}
				a.Mesh = append(a.Mesh, [2]int{cols, rows})
			}
		case "scheme":
			for _, it := range items {
				s := strings.TrimSpace(it)
				if _, err := hwdesc.SchemeKind(s); err != nil {
					return a, err
				}
				a.Schemes = append(a.Schemes, s)
			}
		default:
			return a, fmt.Errorf("%w: unknown axis %q (have qst, cores, mesh, scheme, node)",
				hwdesc.ErrBadConfig, name)
		}
	}
	return a, nil
}

func parseInts(axis string, items []string) ([]int, error) {
	out := make([]int, 0, len(items))
	for _, it := range items {
		v, err := strconv.Atoi(strings.TrimSpace(it))
		if err != nil {
			return nil, fmt.Errorf("%w: %s value %q is not an integer", hwdesc.ErrBadConfig, axis, it)
		}
		out = append(out, v)
	}
	return out, nil
}

// memStopsFor spreads n memory controllers evenly over a stops-stop
// mesh — the deterministic placement used when a swept mesh geometry
// invalidates the base description's controller stops.
func memStopsFor(stops int) []int {
	n := stops / 4
	if n < 2 {
		n = 2
	}
	if n > stops {
		n = stops
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i * stops / n
	}
	return out
}

// Expand applies the grid to base in a fixed axis order — scheme, node,
// mesh, cores, QST, innermost last — and returns every valid design
// point plus the count of grid cells skipped because they do not
// validate (e.g. more cores than mesh stops). Each point gets a
// deterministic name encoding its coordinates.
func (a Axes) Expand(base hwdesc.Description) (points []hwdesc.Description, skipped int) {
	orBase := func(vals []int, b int) []int {
		if len(vals) == 0 {
			return []int{b}
		}
		return vals
	}
	schemes := a.Schemes
	if len(schemes) == 0 {
		schemes = []string{base.Scheme}
	}
	meshes := a.Mesh
	if len(meshes) == 0 {
		meshes = [][2]int{{base.Mesh.Cols, base.Mesh.Rows}}
	}
	for _, sch := range schemes {
		for _, node := range orBase(a.Nodes, base.TechNodeNM) {
			for _, mesh := range meshes {
				for _, cores := range orBase(a.Cores, base.Cores) {
					for _, qst := range orBase(a.QST, base.QST.Entries) {
						d := base
						d.Scheme = sch
						d.TechNodeNM = node
						d.Mesh.Cols, d.Mesh.Rows = mesh[0], mesh[1]
						d.Cores = cores
						d.QST.Entries = qst
						if mesh[0] != base.Mesh.Cols || mesh[1] != base.Mesh.Rows {
							d.MemStops = memStopsFor(mesh[0] * mesh[1])
						} else {
							// Fresh slice even when geometry matches: sweep
							// points must never share MemStops storage.
							d.MemStops = append([]int(nil), base.MemStops...)
						}
						d.Name = fmt.Sprintf("%s/q%d/c%d/m%dx%d/n%d",
							sch, qst, cores, mesh[0], mesh[1], node)
						if d.Validate() != nil {
							skipped++
							continue
						}
						points = append(points, d)
					}
				}
			}
		}
	}
	return points, skipped
}

// Config selects what a sweep evaluates.
type Config struct {
	// Workload names the benchmark: dpdk, jvm, rocksdb, snort, flann.
	Workload string
	// FullScale uses the paper-scale benchmark population (default is
	// the small, fast population).
	FullScale bool
	// Base is the description the axes mutate; the zero value means
	// hwdesc.Default().
	Base hwdesc.Description
	// Axes is the sweep grid; the zero value evaluates only Base.
	Axes Axes
	// Parallelism is the worker count (<= 0 means GOMAXPROCS; 1 forces
	// the serial path). Output is byte-identical at any value.
	Parallelism int
}

// BenchFor resolves a workload name for sweeping.
func BenchFor(name string, full bool) (workload.Benchmark, error) {
	pick := func(f, s workload.Benchmark) workload.Benchmark {
		if full {
			return f
		}
		return s
	}
	switch name {
	case "dpdk", "":
		return pick(workload.DefaultDPDK(), workload.SmallDPDK()), nil
	case "jvm":
		return pick(workload.DefaultJVM(), workload.SmallJVM()), nil
	case "rocksdb":
		return pick(workload.DefaultRocksDB(), workload.SmallRocksDB()), nil
	case "snort":
		return pick(workload.DefaultSnort(), workload.SmallSnort()), nil
	case "flann":
		return pick(workload.DefaultFLANN(), workload.SmallFLANN()), nil
	}
	return nil, fmt.Errorf("%w: unknown workload %q (have dpdk, jvm, rocksdb, snort, flann)",
		hwdesc.ErrBadConfig, name)
}

// Point is one evaluated design point.
type Point struct {
	Desc hwdesc.Description `json:"desc"`
	// SpeedupX is ROI (lookup) speedup over the software baseline on
	// the same chip. Higher is better.
	SpeedupX float64 `json:"speedup_x"`
	// AreaMM2 / StaticMW are the total accelerator cost across all
	// instances at the point's technology node. Lower is better.
	AreaMM2  float64 `json:"area_mm2"`
	StaticMW float64 `json:"static_mw"`
	// EnergyNJPerQuery is the dynamic energy of one accelerated query.
	// Lower is better.
	EnergyNJPerQuery float64 `json:"energy_nj_per_query"`
	BaselineCycles   uint64  `json:"baseline_cycles"`
	QEICycles        uint64  `json:"qei_cycles"`
	Queries          int     `json:"queries"`
	// Dominated marks points some other point beats on every objective.
	Dominated bool `json:"dominated"`
}

// Result is a completed sweep.
type Result struct {
	Workload string `json:"workload"`
	// Points holds every evaluated design point in grid order.
	Points []Point `json:"points"`
	// Frontier indexes the non-dominated points, ascending.
	Frontier []int `json:"frontier"`
	// DominatedCount is len(Points) - len(Frontier).
	DominatedCount int `json:"dominated_count"`
	// SkippedInvalid counts grid cells that failed validation.
	SkippedInvalid int `json:"skipped_invalid"`
}

// FrontierPoints returns the Pareto-optimal points in grid order.
func (r *Result) FrontierPoints() []Point {
	out := make([]Point, 0, len(r.Frontier))
	for _, i := range r.Frontier {
		out = append(out, r.Points[i])
	}
	return out
}

// JSON renders the result as indented, deterministic JSON.
func (r *Result) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// machineKey identifies the chip-topology half of a description — the
// part the software baseline depends on. Scheme, QST, and node are
// excluded: points differing only there share one baseline measurement.
func machineKey(d hwdesc.Description) string {
	d.Name = ""
	d.Scheme = "core"
	d.QST = hwdesc.QST{Entries: 1, Comparators: 1}
	d.AccelTLB = hwdesc.TLB{}
	d.ExtraDataLatency = 0
	d.TechNodeNM = 22
	data, err := json.Marshal(d)
	if err != nil {
		panic(err) // plain struct of scalars and int slices cannot fail
	}
	return string(data)
}

// Sweep expands cfg's grid and evaluates every valid point: phase one
// measures the software baseline once per distinct chip topology, phase
// two runs QEI on every point, both fanned across the worker pool in
// grid order. Points with result mismatches fail the sweep.
func Sweep(ctx context.Context, cfg Config) (*Result, error) {
	base := cfg.Base
	if base.Cores == 0 {
		base = hwdesc.Default()
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	bench, err := BenchFor(cfg.Workload, cfg.FullScale)
	if err != nil {
		return nil, err
	}
	points, skipped := cfg.Axes.Expand(base)
	if len(points) == 0 {
		return nil, fmt.Errorf("%w: sweep grid is empty after validation (%d cells skipped)",
			hwdesc.ErrBadConfig, skipped)
	}

	// Phase 1: one baseline run per distinct chip topology, in order of
	// first appearance (deterministic).
	var keys []string
	keyIdx := make(map[string]int)
	for _, d := range points {
		k := machineKey(d)
		if _, ok := keyIdx[k]; !ok {
			keyIdx[k] = len(keys)
			keys = append(keys, k)
		}
	}
	firstDesc := make([]hwdesc.Description, len(keys))
	seen := make(map[string]bool)
	for _, d := range points {
		k := machineKey(d)
		if !seen[k] {
			seen[k] = true
			firstDesc[keyIdx[k]] = d
		}
	}
	baselines, err := runner.Map(ctx, cfg.Parallelism, firstDesc,
		func(_ context.Context, _ int, d hwdesc.Description) (workload.Run, error) {
			return workload.RunBaseline(bench, workload.ROIOnly,
				workload.WithWarmup(), workload.WithMachine(d.MachineConfig()))
		})
	if err != nil {
		return nil, err
	}

	// Phase 2: QEI on every point, scored against its chip's baseline.
	evaluated, err := runner.Map(ctx, cfg.Parallelism, points,
		func(_ context.Context, _ int, d hwdesc.Description) (Point, error) {
			params, err := d.SchemeParams()
			if err != nil {
				return Point{}, err
			}
			hw, err := workload.RunQEIWithParams(bench, params, workload.ROIOnly,
				workload.WithWarmup(), workload.WithMachine(d.MachineConfig()))
			if err != nil {
				return Point{}, fmt.Errorf("dse %s: %w", d.Name, err)
			}
			if hw.Mismatches != 0 {
				return Point{}, fmt.Errorf("dse %s: %d wrong results", d.Name, hw.Mismatches)
			}
			sw := baselines[keyIdx[machineKey(d)]]
			area, static, err := d.Area()
			if err != nil {
				return Point{}, err
			}
			p := Point{
				Desc:           d,
				AreaMM2:        area,
				StaticMW:       static,
				BaselineCycles: sw.Cycles,
				QEICycles:      hw.Cycles,
				Queries:        hw.Queries,
			}
			if hw.Cycles > 0 {
				p.SpeedupX = float64(sw.Cycles) / float64(hw.Cycles)
			}
			if hw.Queries > 0 {
				p.EnergyNJPerQuery = dynamicEnergy(d.PowerModel(), hw) / float64(hw.Queries)
			}
			return p, nil
		})
	if err != nil {
		return nil, err
	}

	res := &Result{Workload: bench.Name(), Points: evaluated, SkippedInvalid: skipped}
	markPareto(res.Points)
	for i, p := range res.Points {
		if !p.Dominated {
			res.Frontier = append(res.Frontier, i)
		}
	}
	sort.Ints(res.Frontier)
	res.DominatedCount = len(res.Points) - len(res.Frontier)
	return res, nil
}

// dynamicEnergy charges the accelerated run's activity to the power
// model — the Fig. 12 accounting, including the cheaper comparator
// line-stream path for CHA remote compares.
func dynamicEnergy(model power.Model, hw workload.Run) float64 {
	a := power.Activity{
		Instructions: hw.Core.Instructions,
		Mispredicts:  hw.Core.Mispredicts,
		L1Accesses:   hw.L1Accesses,
		L2Accesses:   hw.L2Accesses,
		LLCAccesses:  hw.LLCAccesses,
		DRAMAccesses: hw.DRAMAccesses,
		NoCBytes:     hw.NoCBytes,
		TLBLookups:   hw.TLBLookups,
		PageWalks:    hw.PageWalks,
	}
	if hw.Accel != nil {
		cmpLines := hw.Accel.CompareBytes / 64
		if cmpLines > a.LLCAccesses {
			cmpLines = a.LLCAccesses
		}
		a.Transitions = hw.Accel.Transitions
		a.Compare8Bs = (hw.Accel.CompareBytes + 7) / 8
		a.ComparatorLineReads = cmpLines
		a.Hash8Bs = hw.Accel.HashOps * 2
		a.LLCAccesses -= cmpLines
	}
	return model.DynamicEnergyNJ(a)
}

// dominates reports whether a beats b: no worse on all three
// objectives and strictly better on at least one.
func dominates(a, b Point) bool {
	if a.SpeedupX < b.SpeedupX || a.AreaMM2 > b.AreaMM2 || a.EnergyNJPerQuery > b.EnergyNJPerQuery {
		return false
	}
	return a.SpeedupX > b.SpeedupX || a.AreaMM2 < b.AreaMM2 || a.EnergyNJPerQuery < b.EnergyNJPerQuery
}

// markPareto flags dominated points in place (O(n²), n is sweep-sized).
func markPareto(points []Point) {
	for i := range points {
		for j := range points {
			if i != j && dominates(points[j], points[i]) {
				points[i].Dominated = true
				break
			}
		}
	}
}
