package cache

import (
	"fmt"

	"qei/internal/faultinject"
	"qei/internal/mem"
	"qei/internal/noc"
	"qei/internal/trace"
)

// DRAMConfig models the memory subsystem: six DDR4-2666 channels per
// Tab. II. Latency is the device access time; channel selection is by
// address interleave at cacheline granularity.
type DRAMConfig struct {
	Channels      int
	AccessLatency uint64 // device cycles per access (CPU-clock cycles)
}

// DefaultDRAMConfig gives ~170 CPU cycles of device latency, six channels.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{Channels: 6, AccessLatency: 170}
}

// DRAM is the memory backend.
type DRAM struct {
	cfg      DRAMConfig
	accesses []uint64 // per channel
}

// NewDRAM builds the DRAM model.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if cfg.Channels <= 0 {
		panic("cache: DRAM needs at least one channel")
	}
	return &DRAM{cfg: cfg, accesses: make([]uint64, cfg.Channels)}
}

// Access records an access to the channel owning a and returns its latency.
func (d *DRAM) Access(a mem.PAddr) uint64 {
	ch := (uint64(a) >> mem.LineShift) % uint64(d.cfg.Channels)
	d.accesses[ch]++
	return d.cfg.AccessLatency
}

// Accesses reports the total number of DRAM accesses.
func (d *DRAM) Accesses() uint64 {
	var t uint64
	for _, n := range d.accesses {
		t += n
	}
	return t
}

// ChannelAccesses reports per-channel access counts.
func (d *DRAM) ChannelAccesses() []uint64 {
	out := make([]uint64, len(d.accesses))
	copy(out, d.accesses)
	return out
}

// LLC is the shared NUCA last-level cache: one slice per CHA, each slice
// pinned to a mesh stop. The slice owning a line is chosen by a hash of
// the physical line address, as in real Xeon NUCA designs.
type LLC struct {
	slices []*Cache
	stops  []noc.Stop
}

// NewLLC builds n slices with cfg each, mapped to the given mesh stops.
func NewLLC(n int, cfg Config, stops []noc.Stop) *LLC {
	if len(stops) != n {
		panic(fmt.Sprintf("cache: %d slices need %d stops, got %d", n, n, len(stops)))
	}
	l := &LLC{stops: stops}
	for i := 0; i < n; i++ {
		l.slices = append(l.slices, New(cfg))
	}
	return l
}

// Slices returns the number of LLC slices.
func (l *LLC) Slices() int { return len(l.slices) }

// SliceFor returns the slice index owning physical address a. The hash
// mixes upper address bits so consecutive lines spread across slices.
func (l *LLC) SliceFor(a mem.PAddr) int {
	line := uint64(a) >> mem.LineShift
	// Fibonacci hashing for a deterministic, well-spread NUCA hash.
	h := line * 0x9E3779B97F4A7C15
	return int(h % uint64(len(l.slices)))
}

// StopFor returns the mesh stop of the slice owning a.
func (l *LLC) StopFor(a mem.PAddr) noc.Stop {
	return l.stops[l.SliceFor(a)]
}

// Slice returns slice i's cache array.
func (l *LLC) Slice(i int) *Cache { return l.slices[i] }

// Stats sums hit/miss counters over all slices.
func (l *LLC) Stats() (hits, misses uint64) {
	for _, s := range l.slices {
		h, m, _, _ := s.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// AccessKind distinguishes reads from writes for dirty-bit handling.
type AccessKind int

const (
	Read AccessKind = iota
	Write
)

// Result describes a completed hierarchy access.
type Result struct {
	Latency  uint64
	Hit      Level // level that satisfied the access
	NoCBytes uint64
}

// Hierarchy wires the per-core private caches to the shared LLC, mesh,
// and DRAM. One Hierarchy instance serves the whole chip; per-core
// private arrays are indexed by core.
type Hierarchy struct {
	L1D  []*Cache
	L2   []*Cache
	llc  *LLC
	mesh *noc.Mesh
	dram *DRAM
	// coreStops maps core index to its mesh stop.
	coreStops []noc.Stop
	// memStops are the mesh stops of the memory controllers.
	memStops []noc.Stop

	// reqBytes / lineBytes are the message sizes used for NoC accounting.
	reqBytes  uint64
	lineBytes uint64

	// tr receives per-access spans from the *At access variants; nil
	// (the default) keeps the hot paths free of tracing cost.
	tr *trace.Tracer
	// fi may evict the accessed LLC line ahead of a lookup (see
	// SetFaultInjector); nil disables injection.
	fi *faultinject.Injector
}

// NewHierarchy builds the chip: nCores private hierarchies, an LLC slice
// at every core stop (tile = core + CHA/slice, as on Skylake-SP), and
// memory controllers at the given stops.
func NewHierarchy(nCores int, mesh *noc.Mesh, memStops []noc.Stop) *Hierarchy {
	return NewHierarchyGeom(nCores, mesh, memStops, L1DConfig(), L2Config(), LLCSliceConfig())
}

// NewHierarchyGeom is NewHierarchy with explicit cache geometry — the
// materialization path for declarative machine descriptions (hwdesc).
func NewHierarchyGeom(nCores int, mesh *noc.Mesh, memStops []noc.Stop, l1d, l2, llcSlice Config) *Hierarchy {
	if nCores > mesh.Stops() {
		panic("cache: more cores than mesh stops")
	}
	coreStops := make([]noc.Stop, nCores)
	for i := range coreStops {
		coreStops[i] = noc.Stop(i)
	}
	h := &Hierarchy{
		mesh:      mesh,
		dram:      NewDRAM(DefaultDRAMConfig()),
		coreStops: coreStops,
		memStops:  append([]noc.Stop(nil), memStops...),
		reqBytes:  16,
		lineBytes: mem.LineSize + 16,
	}
	for i := 0; i < nCores; i++ {
		h.L1D = append(h.L1D, New(l1d))
		h.L2 = append(h.L2, New(l2))
	}
	h.llc = NewLLC(nCores, llcSlice, coreStops)
	return h
}

// LLC exposes the shared last-level cache.
func (h *Hierarchy) LLC() *LLC { return h.llc }

// DRAM exposes the memory backend.
func (h *Hierarchy) DRAM() *DRAM { return h.dram }

// Mesh exposes the NoC.
func (h *Hierarchy) Mesh() *noc.Mesh { return h.mesh }

// CoreStop returns the mesh stop of core i.
func (h *Hierarchy) CoreStop(i int) noc.Stop { return h.coreStops[i] }

// memStopFor picks the memory controller stop serving address a.
func (h *Hierarchy) memStopFor(a mem.PAddr) noc.Stop {
	idx := (uint64(a) >> mem.LineShift) % uint64(len(h.memStops))
	return h.memStops[idx]
}

// llcAccess satisfies a request at the LLC slice owning a, fetching from
// DRAM on a slice miss, and returns (latency beyond the requester's hop
// to the slice, level satisfied).
func (h *Hierarchy) llcAccess(a mem.PAddr, kind AccessKind) (uint64, Level) {
	slice := h.llc.Slice(h.llc.SliceFor(a))
	sliceStop := h.llc.StopFor(a)
	// Injected capacity pressure (another tenant's working set) evicts
	// the line just before the probe, turning this access into a miss.
	if h.fi.EvictLine() {
		slice.Invalidate(a)
	}
	if slice.Lookup(a) {
		if kind == Write {
			slice.MarkDirty(a)
		}
		return slice.Config().HitLatency, LevelLLC
	}
	// Miss: CHA forwards to the memory controller, DRAM access, fill.
	memStop := h.memStopFor(a)
	lat := slice.Config().HitLatency // tag probe before miss detected
	lat += h.mesh.Send(sliceStop, memStop, h.reqBytes)
	lat += h.dram.Access(a)
	lat += h.mesh.Send(memStop, sliceStop, h.lineBytes)
	slice.Insert(a, kind == Write)
	return lat, LevelDRAM
}

// CoreAccess performs a load or store from core's pipeline at physical
// address a through L1D → L2 → LLC → DRAM, filling on the way back.
func (h *Hierarchy) CoreAccess(core int, a mem.PAddr, kind AccessKind) Result {
	l1 := h.L1D[core]
	l2 := h.L2[core]
	if l1.Lookup(a) {
		if kind == Write {
			l1.MarkDirty(a)
		}
		return Result{Latency: l1.Config().HitLatency, Hit: LevelL1}
	}
	lat := l1.Config().HitLatency
	if l2.Lookup(a) {
		lat += l2.Config().HitLatency
		l1.Insert(a, kind == Write)
		return Result{Latency: lat, Hit: LevelL2}
	}
	lat += l2.Config().HitLatency
	// Go over the mesh to the owning CHA.
	sliceStop := h.llc.StopFor(a)
	coreStop := h.coreStops[core]
	lat += h.mesh.Send(coreStop, sliceStop, h.reqBytes)
	llcLat, level := h.llcAccess(a, kind)
	lat += llcLat
	lat += h.mesh.Send(sliceStop, coreStop, h.lineBytes)
	l2.Insert(a, kind == Write)
	l1.Insert(a, kind == Write)
	return Result{Latency: lat, Hit: level}
}

// L2Access performs an access that starts at a core's L2 (QEI's
// Core-integrated scheme sits beside the L2 and does not touch the L1,
// avoiding private-cache pollution of the L1).
func (h *Hierarchy) L2Access(core int, a mem.PAddr, kind AccessKind) Result {
	l2 := h.L2[core]
	if l2.Lookup(a) {
		if kind == Write {
			l2.MarkDirty(a)
		}
		return Result{Latency: l2.Config().HitLatency, Hit: LevelL2}
	}
	lat := l2.Config().HitLatency
	sliceStop := h.llc.StopFor(a)
	coreStop := h.coreStops[core]
	lat += h.mesh.Send(coreStop, sliceStop, h.reqBytes)
	llcLat, level := h.llcAccess(a, kind)
	lat += llcLat
	lat += h.mesh.Send(sliceStop, coreStop, h.lineBytes)
	l2.Insert(a, kind == Write)
	return Result{Latency: lat, Hit: level}
}

// LLCAccessFrom performs an access issued from an arbitrary mesh stop
// directly against the LLC (no private-cache fill). This is the path of a
// CHA-resident accelerator or a device-attached accelerator: request
// travels from the issuing stop to the owning slice and the line comes
// back.
func (h *Hierarchy) LLCAccessFrom(from noc.Stop, a mem.PAddr, kind AccessKind) Result {
	sliceStop := h.llc.StopFor(a)
	lat := h.mesh.Send(from, sliceStop, h.reqBytes)
	llcLat, level := h.llcAccess(a, kind)
	lat += llcLat
	lat += h.mesh.Send(sliceStop, from, h.lineBytes)
	return Result{Latency: lat, Hit: level}
}

// LLCAccessLocal performs an access at the slice owning a, as issued by a
// comparator that lives in that very CHA (QEI remote comparison): no
// request/response traversal is charged beyond the slice access itself.
// If the line belongs to a different slice, the inter-CHA hop is charged.
func (h *Hierarchy) LLCAccessLocal(at noc.Stop, a mem.PAddr, kind AccessKind) Result {
	sliceStop := h.llc.StopFor(a)
	var lat uint64
	if sliceStop != at {
		lat += h.mesh.Send(at, sliceStop, h.reqBytes)
	}
	llcLat, level := h.llcAccess(a, kind)
	lat += llcLat
	if sliceStop != at {
		lat += h.mesh.Send(sliceStop, at, h.lineBytes)
	}
	return Result{Latency: lat, Hit: level}
}

// FlushPrivate invalidates core's L1D and L2 (used on context switches in
// some experiments).
func (h *Hierarchy) FlushPrivate(core int) {
	h.L1D[core] = New(L1DConfig())
	h.L2[core] = New(L2Config())
}

// PrivateFootprint reports how many lines of the given address set are
// resident in core's private caches — the cache-pollution metric used by
// the remote-vs-local comparison ablation.
func (h *Hierarchy) PrivateFootprint(core int, lines []mem.PAddr) (inL1, inL2 int) {
	for _, a := range lines {
		if h.L1D[core].Contains(a) {
			inL1++
		}
		if h.L2[core].Contains(a) {
			inL2++
		}
	}
	return inL1, inL2
}
