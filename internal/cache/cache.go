// Package cache models the on-chip cache hierarchy of the simulated
// Skylake-SP-style CPU from Tab. II of the QEI paper: per-core 32 KB L1D
// and 1 MB L2, and a 33 MB shared non-uniform (NUCA) last-level cache
// split into 24 slices, each fronted by a Caching and Home Agent (CHA)
// sitting on a mesh NoC stop. A DRAM model with six DDR4 channels backs
// the LLC.
//
// Caches here are tag-accurate: sets, ways, and true-LRU replacement are
// simulated so hit rates are real, while data bytes live in the simulated
// physical memory (package mem). Timing is compositional: an access
// returns the number of cycles it took, and the requester (OoO core model
// or QEI accelerator) decides how much of that latency overlaps other
// work.
package cache

import (
	"fmt"

	"qei/internal/mem"
)

// Level identifies where an access was satisfied.
type Level int

const (
	LevelL1 Level = iota
	LevelL2
	LevelLLC
	LevelDRAM
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Config describes one cache array.
type Config struct {
	SizeBytes  uint64
	Ways       int
	LineSize   uint64
	HitLatency uint64
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int {
	return int(c.SizeBytes / (c.LineSize * uint64(c.Ways)))
}

// L1DConfig is an 8-way 32 KB L1 data cache, 4-cycle hit.
func L1DConfig() Config {
	return Config{SizeBytes: 32 << 10, Ways: 8, LineSize: mem.LineSize, HitLatency: 4}
}

// L2Config is a 16-way 1 MB private L2, 14-cycle hit.
func L2Config() Config {
	return Config{SizeBytes: 1 << 20, Ways: 16, LineSize: mem.LineSize, HitLatency: 14}
}

// LLCSliceConfig is one of 24 slices of the 33 MB 11-way shared LLC:
// 1.375 MB per slice, ~20-cycle array access (NoC hops are separate).
func LLCSliceConfig() Config {
	return Config{SizeBytes: (33 << 20) / 24, Ways: 11, LineSize: mem.LineSize, HitLatency: 20}
}

// Cache is a single set-associative cache array with true-LRU replacement.
//
// Tag, dirty, and LRU state live in flat arrays indexed set*ways+way
// (three allocations per cache instead of three per set), and the set
// index is a shift+mask when the geometry is a power of two — which
// every configuration in this repo is; the division path is kept for
// odd geometries. Lookup/Insert sit under every simulated memory
// access, so this layout is what the hierarchy's throughput rides on.
type Cache struct {
	cfg  Config
	sets uint64
	ways int
	// lineShift/setMask implement setIndex without div/mod when the
	// line size and set count are powers of two (linePow2/setsPow2).
	lineShift uint
	setMask   uint64
	linePow2  bool
	setsPow2  bool

	tags  []uint64 // line addresses; ^0 = invalid
	dirty []bool
	lru   []uint64
	stamp uint64

	hits, misses, evictions, writebacks uint64
}

// New builds a cache array.
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || cfg.SizeBytes%(cfg.LineSize*uint64(cfg.Ways)) != 0 {
		panic(fmt.Sprintf("cache: bad geometry %+v", cfg))
	}
	c := &Cache{cfg: cfg, sets: uint64(sets), ways: cfg.Ways}
	if cfg.LineSize&(cfg.LineSize-1) == 0 {
		c.linePow2 = true
		for l := cfg.LineSize; l > 1; l >>= 1 {
			c.lineShift++
		}
	}
	if c.sets&(c.sets-1) == 0 {
		c.setsPow2 = true
		c.setMask = c.sets - 1
	}
	n := sets * cfg.Ways
	c.tags = make([]uint64, n)
	c.dirty = make([]bool, n)
	c.lru = make([]uint64, n)
	for i := range c.tags {
		c.tags[i] = ^uint64(0)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setIndex(line uint64) uint64 {
	if c.linePow2 {
		line >>= c.lineShift
	} else {
		line /= c.cfg.LineSize
	}
	if c.setsPow2 {
		return line & c.setMask
	}
	return line % c.sets
}

// Lookup probes for the line containing a, updating LRU and stats.
func (c *Cache) Lookup(a mem.PAddr) bool {
	line := uint64(a.Line())
	base := int(c.setIndex(line)) * c.ways
	for i, tag := range c.tags[base : base+c.ways] {
		if tag == line {
			c.stamp++
			c.lru[base+i] = c.stamp
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Contains probes without touching LRU or stats (for invariant checks).
func (c *Cache) Contains(a mem.PAddr) bool {
	line := uint64(a.Line())
	base := int(c.setIndex(line)) * c.ways
	for _, tag := range c.tags[base : base+c.ways] {
		if tag == line {
			return true
		}
	}
	return false
}

// Insert fills the line containing a, evicting the LRU way if the set is
// full. It returns the evicted line address and whether an eviction of a
// dirty line (writeback) occurred. evicted is ^0 when nothing was evicted.
func (c *Cache) Insert(a mem.PAddr, dirtyFill bool) (evicted uint64, writeback bool) {
	line := uint64(a.Line())
	base := int(c.setIndex(line)) * c.ways
	set := c.tags[base : base+c.ways]
	for i, tag := range set {
		if tag == line {
			c.stamp++
			c.lru[base+i] = c.stamp
			if dirtyFill {
				c.dirty[base+i] = true
			}
			return ^uint64(0), false
		}
	}
	// Prefer an invalid way; otherwise evict true-LRU.
	victim := -1
	oldest := ^uint64(0)
	for i, tag := range set {
		if tag == ^uint64(0) {
			victim = i
			break
		}
		if c.lru[base+i] < oldest {
			oldest = c.lru[base+i]
			victim = i
		}
	}
	evicted = set[victim]
	writeback = evicted != ^uint64(0) && c.dirty[base+victim]
	if evicted != ^uint64(0) {
		c.evictions++
		if writeback {
			c.writebacks++
		}
	}
	c.stamp++
	set[victim] = line
	c.dirty[base+victim] = dirtyFill
	c.lru[base+victim] = c.stamp
	return evicted, writeback
}

// MarkDirty sets the dirty bit of the line containing a if present.
func (c *Cache) MarkDirty(a mem.PAddr) {
	line := uint64(a.Line())
	base := int(c.setIndex(line)) * c.ways
	for i, tag := range c.tags[base : base+c.ways] {
		if tag == line {
			c.dirty[base+i] = true
			return
		}
	}
}

// Invalidate drops the line containing a if present, reporting whether it
// was dirty.
func (c *Cache) Invalidate(a mem.PAddr) (present, wasDirty bool) {
	line := uint64(a.Line())
	base := int(c.setIndex(line)) * c.ways
	for i, tag := range c.tags[base : base+c.ways] {
		if tag == line {
			wasDirty = c.dirty[base+i]
			c.tags[base+i] = ^uint64(0)
			c.dirty[base+i] = false
			c.lru[base+i] = 0
			return true, wasDirty
		}
	}
	return false, false
}

// Stats reports accumulated counters.
func (c *Cache) Stats() (hits, misses, evictions, writebacks uint64) {
	return c.hits, c.misses, c.evictions, c.writebacks
}

// HitRate returns hits/(hits+misses).
func (c *Cache) HitRate() float64 {
	t := c.hits + c.misses
	if t == 0 {
		return 0
	}
	return float64(c.hits) / float64(t)
}

// ResetStats zeroes the counters without touching contents.
func (c *Cache) ResetStats() {
	c.hits, c.misses, c.evictions, c.writebacks = 0, 0, 0, 0
}
