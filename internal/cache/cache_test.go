package cache

import (
	"testing"
	"testing/quick"

	"qei/internal/mem"
	"qei/internal/noc"
)

func lineAddr(i uint64) mem.PAddr { return mem.PAddr(i * mem.LineSize) }

func TestCacheMissThenHit(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Ways: 2, LineSize: 64, HitLatency: 3})
	a := lineAddr(7)
	if c.Lookup(a) {
		t.Fatal("cold cache should miss")
	}
	c.Insert(a, false)
	if !c.Lookup(a) {
		t.Fatal("inserted line should hit")
	}
	hits, misses, _, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats: %d hits %d misses", hits, misses)
	}
}

func TestCacheSameSetDifferentLines(t *testing.T) {
	// 8 sets, 2 ways: lines 0, 8, 16 map to set 0.
	c := New(Config{SizeBytes: 1024, Ways: 2, LineSize: 64, HitLatency: 1})
	c.Insert(lineAddr(0), false)
	c.Insert(lineAddr(8), false)
	if !c.Contains(lineAddr(0)) || !c.Contains(lineAddr(8)) {
		t.Fatal("both ways should hold lines")
	}
	// Third conflicting line evicts LRU (line 0).
	evicted, wb := c.Insert(lineAddr(16), false)
	if evicted != uint64(lineAddr(0)) {
		t.Fatalf("evicted %#x, want line 0", evicted)
	}
	if wb {
		t.Fatal("clean line should not write back")
	}
	if c.Contains(lineAddr(0)) {
		t.Fatal("line 0 should be gone")
	}
}

func TestLRUUpdatedByLookup(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Ways: 2, LineSize: 64, HitLatency: 1})
	c.Insert(lineAddr(0), false)
	c.Insert(lineAddr(8), false)
	c.Lookup(lineAddr(0)) // 8 becomes LRU
	c.Insert(lineAddr(16), false)
	if !c.Contains(lineAddr(0)) {
		t.Fatal("recently used line 0 was evicted")
	}
	if c.Contains(lineAddr(8)) {
		t.Fatal("LRU line 8 survived")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New(Config{SizeBytes: 128, Ways: 1, LineSize: 64, HitLatency: 1})
	c.Insert(lineAddr(0), true) // dirty fill into set 0
	evicted, wb := c.Insert(lineAddr(2), false)
	if evicted != uint64(lineAddr(0)) || !wb {
		t.Fatalf("dirty eviction: evicted=%#x wb=%v", evicted, wb)
	}
	_, _, ev, wbs := c.Stats()
	if ev != 1 || wbs != 1 {
		t.Fatalf("evictions=%d writebacks=%d", ev, wbs)
	}
}

func TestMarkDirtyThenEvict(t *testing.T) {
	c := New(Config{SizeBytes: 128, Ways: 1, LineSize: 64, HitLatency: 1})
	c.Insert(lineAddr(0), false)
	c.MarkDirty(lineAddr(0))
	_, wb := c.Insert(lineAddr(2), false)
	if !wb {
		t.Fatal("marked-dirty line should write back")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Ways: 2, LineSize: 64, HitLatency: 1})
	c.Insert(lineAddr(3), true)
	present, dirty := c.Invalidate(lineAddr(3))
	if !present || !dirty {
		t.Fatalf("Invalidate = %v, %v", present, dirty)
	}
	if c.Contains(lineAddr(3)) {
		t.Fatal("line survived invalidation")
	}
	present, _ = c.Invalidate(lineAddr(3))
	if present {
		t.Fatal("double invalidate reported present")
	}
}

func TestConfigSets(t *testing.T) {
	if got := L1DConfig().Sets(); got != 64 {
		t.Fatalf("L1D sets = %d, want 64", got)
	}
	if got := L2Config().Sets(); got != 1024 {
		t.Fatalf("L2 sets = %d, want 1024", got)
	}
}

// Property: cache never holds more than Ways lines of one set, and a line
// inserted is present until Ways distinct same-set lines displace it.
func TestPropertySetBounded(t *testing.T) {
	f := func(lines []uint8) bool {
		c := New(Config{SizeBytes: 512, Ways: 2, LineSize: 64, HitLatency: 1})
		for _, l := range lines {
			a := lineAddr(uint64(l))
			c.Insert(a, false)
			if !c.Contains(a) {
				return false
			}
		}
		// Count resident lines per set by probing the universe.
		perSet := map[uint64]int{}
		for l := uint64(0); l < 256; l++ {
			a := lineAddr(l)
			if c.Contains(a) {
				perSet[(uint64(a)/64)%4]++
			}
		}
		for _, n := range perSet {
			if n > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func newTestHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	mesh := noc.New(noc.DefaultConfig())
	memStops := []noc.Stop{0, 5, 18, 23, 2, 21}
	return NewHierarchy(24, mesh, memStops)
}

func TestHierarchyColdAccessGoesToDRAM(t *testing.T) {
	h := newTestHierarchy(t)
	a := mem.PAddr(0x100000)
	r := h.CoreAccess(0, a, Read)
	if r.Hit != LevelDRAM {
		t.Fatalf("cold access satisfied at %v, want DRAM", r.Hit)
	}
	if r.Latency <= DefaultDRAMConfig().AccessLatency {
		t.Fatalf("latency %d should exceed bare DRAM latency", r.Latency)
	}
	if h.DRAM().Accesses() != 1 {
		t.Fatalf("DRAM accesses = %d, want 1", h.DRAM().Accesses())
	}
}

func TestHierarchyFillPath(t *testing.T) {
	h := newTestHierarchy(t)
	a := mem.PAddr(0x200000)
	h.CoreAccess(3, a, Read)
	r := h.CoreAccess(3, a, Read)
	if r.Hit != LevelL1 {
		t.Fatalf("second access hit %v, want L1", r.Hit)
	}
	if r.Latency != L1DConfig().HitLatency {
		t.Fatalf("L1 hit latency = %d, want %d", r.Latency, L1DConfig().HitLatency)
	}
	// Another core misses privately but hits in the shared LLC.
	r2 := h.CoreAccess(7, a, Read)
	if r2.Hit != LevelLLC {
		t.Fatalf("other-core access hit %v, want LLC", r2.Hit)
	}
	if h.DRAM().Accesses() != 1 {
		t.Fatalf("DRAM accesses = %d, want 1 (LLC should filter)", h.DRAM().Accesses())
	}
}

func TestL2AccessSkipsL1(t *testing.T) {
	h := newTestHierarchy(t)
	a := mem.PAddr(0x300000)
	h.L2Access(0, a, Read)
	if h.L1D[0].Contains(a) {
		t.Fatal("L2Access polluted the L1")
	}
	if !h.L2[0].Contains(a) {
		t.Fatal("L2Access did not fill the L2")
	}
	r := h.L2Access(0, a, Read)
	if r.Hit != LevelL2 || r.Latency != L2Config().HitLatency {
		t.Fatalf("warm L2 access: %+v", r)
	}
}

func TestLLCAccessFromDoesNotFillPrivate(t *testing.T) {
	h := newTestHierarchy(t)
	a := mem.PAddr(0x400000)
	r := h.LLCAccessFrom(noc.Stop(10), a, Read)
	if r.Hit != LevelDRAM {
		t.Fatalf("cold LLC access hit %v", r.Hit)
	}
	for core := 0; core < 24; core++ {
		if h.L1D[core].Contains(a) || h.L2[core].Contains(a) {
			t.Fatalf("LLCAccessFrom polluted private cache of core %d", core)
		}
	}
	r2 := h.LLCAccessFrom(noc.Stop(10), a, Read)
	if r2.Hit != LevelLLC {
		t.Fatalf("warm LLC access hit %v", r2.Hit)
	}
	if r2.Latency >= r.Latency {
		t.Fatal("LLC hit should be cheaper than DRAM fill")
	}
}

func TestLLCAccessLocalCheaperThanRemote(t *testing.T) {
	h := newTestHierarchy(t)
	a := mem.PAddr(0x500000)
	owner := h.LLC().StopFor(a)
	h.LLCAccessFrom(owner, a, Read) // warm the slice
	local := h.LLCAccessLocal(owner, a, Read)
	var far noc.Stop
	for s := noc.Stop(0); int(s) < h.Mesh().Stops(); s++ {
		if h.Mesh().Hops(s, owner) > h.Mesh().Hops(far, owner) {
			far = s
		}
	}
	remote := h.LLCAccessFrom(far, a, Read)
	if local.Latency >= remote.Latency {
		t.Fatalf("local CHA access (%d) should beat remote (%d)", local.Latency, remote.Latency)
	}
	if local.Latency != LLCSliceConfig().HitLatency {
		t.Fatalf("local hit latency = %d, want %d", local.Latency, LLCSliceConfig().HitLatency)
	}
}

func TestSliceHashSpreads(t *testing.T) {
	h := newTestHierarchy(t)
	counts := make([]int, h.LLC().Slices())
	for i := uint64(0); i < 24000; i++ {
		counts[h.LLC().SliceFor(mem.PAddr(i*mem.LineSize))]++
	}
	for s, n := range counts {
		if n < 500 || n > 1500 {
			t.Fatalf("slice %d got %d of 24000 lines — NUCA hash is skewed", s, n)
		}
	}
}

func TestDRAMChannelInterleave(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	for i := uint64(0); i < 600; i++ {
		d.Access(mem.PAddr(i * mem.LineSize))
	}
	for ch, n := range d.ChannelAccesses() {
		if n != 100 {
			t.Fatalf("channel %d got %d accesses, want 100", ch, n)
		}
	}
}

func TestPrivateFootprint(t *testing.T) {
	h := newTestHierarchy(t)
	lines := []mem.PAddr{0x1000, 0x2000, 0x3000}
	h.CoreAccess(0, lines[0], Read)
	h.CoreAccess(0, lines[1], Read)
	inL1, inL2 := h.PrivateFootprint(0, lines)
	if inL1 != 2 || inL2 != 2 {
		t.Fatalf("footprint = %d/%d, want 2/2", inL1, inL2)
	}
}
