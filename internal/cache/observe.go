package cache

import (
	"fmt"

	"qei/internal/faultinject"
	"qei/internal/mem"
	"qei/internal/metrics"
	"qei/internal/noc"
	"qei/internal/trace"
)

// RegisterMetrics publishes the hierarchy's counters into r, pull-based
// so the access hot paths are untouched: per-core private-cache
// hit/miss/eviction counts, per-slice LLC counts, and DRAM traffic
// per channel. Names follow the component-path scheme:
// core3/l1d/misses, cha5/llc/hits, dram/ch2/accesses.
func (h *Hierarchy) RegisterMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	for i := range h.L1D {
		core := i
		registerCache(r.Scoped(fmt.Sprintf("core%d/l1d", core)), func() *Cache { return h.L1D[core] })
		registerCache(r.Scoped(fmt.Sprintf("core%d/l2", core)), func() *Cache { return h.L2[core] })
	}
	for i := 0; i < h.llc.Slices(); i++ {
		slice := i
		registerCache(r.Scoped(fmt.Sprintf("cha%d/llc", slice)), func() *Cache { return h.llc.Slice(slice) })
	}
	dram := r.Scoped("dram")
	dram.RegisterFunc("accesses", h.dram.Accesses)
	for ch := range h.dram.accesses {
		ch := ch
		dram.RegisterFunc(fmt.Sprintf("ch%d/accesses", ch), func() uint64 { return h.dram.accesses[ch] })
	}
}

// registerCache publishes one cache array's stats under r. The cache is
// fetched through get at snapshot time because FlushPrivate replaces the
// *Cache values wholesale.
func registerCache(r *metrics.Registry, get func() *Cache) {
	r.RegisterFunc("hits", func() uint64 { h, _, _, _ := get().Stats(); return h })
	r.RegisterFunc("misses", func() uint64 { _, m, _, _ := get().Stats(); return m })
	r.RegisterFunc("evictions", func() uint64 { _, _, e, _ := get().Stats(); return e })
	r.RegisterFunc("writebacks", func() uint64 { _, _, _, w := get().Stats(); return w })
}

// SetTracer attaches the unified event tracer; the *At access variants
// emit one span per access on it. A nil tracer keeps them free.
func (h *Hierarchy) SetTracer(tr *trace.Tracer) { h.tr = tr }

// SetFaultInjector attaches the fault-injection harness; while fi is
// armed, an LLC access may find its line freshly evicted. A nil
// injector keeps accesses exact and free.
func (h *Hierarchy) SetFaultInjector(fi *faultinject.Injector) { h.fi = fi }

// levelEventName maps the satisfying level to a static event name (no
// per-event allocation).
func levelEventName(l Level) string {
	switch l {
	case LevelL1:
		return "l1_hit"
	case LevelL2:
		return "l2_hit"
	case LevelLLC:
		return "llc_hit"
	default:
		return "dram_fill"
	}
}

// CoreAccessAt is CoreAccess with the issue cycle threaded through so
// the access lands on the core's memory track in the trace.
func (h *Hierarchy) CoreAccessAt(core int, a mem.PAddr, kind AccessKind, at uint64) Result {
	r := h.CoreAccess(core, a, kind)
	h.tr.Span("cache", levelEventName(r.Hit), at, at+r.Latency, core, trace.TidCoreMem, nil)
	return r
}

// L2AccessAt is L2Access with the issue cycle threaded through (the
// Core-integrated accelerator's data path).
func (h *Hierarchy) L2AccessAt(core int, a mem.PAddr, kind AccessKind, at uint64) Result {
	r := h.L2Access(core, a, kind)
	h.tr.Span("cache", levelEventName(r.Hit), at, at+r.Latency, core, trace.TidCoreMem, nil)
	return r
}

// LLCAccessFromAt is LLCAccessFrom with the issue cycle threaded
// through; the span lands on the owning CHA slice's track.
func (h *Hierarchy) LLCAccessFromAt(from noc.Stop, a mem.PAddr, kind AccessKind, at uint64) Result {
	r := h.LLCAccessFrom(from, a, kind)
	h.tr.Span("cache", levelEventName(r.Hit), at, at+r.Latency, trace.PidCHA(h.llc.SliceFor(a)), 0, nil)
	return r
}

// LLCAccessLocalAt is LLCAccessLocal with the issue cycle threaded
// through; the span lands on the owning CHA slice's track.
func (h *Hierarchy) LLCAccessLocalAt(at noc.Stop, a mem.PAddr, kind AccessKind, cycle uint64) Result {
	r := h.LLCAccessLocal(at, a, kind)
	h.tr.Span("cache", levelEventName(r.Hit), cycle, cycle+r.Latency, trace.PidCHA(h.llc.SliceFor(a)), 0, nil)
	return r
}
