// Package metrics is the simulator-wide metrics registry: a hierarchical
// namespace of typed counters, gauges, and histograms that every
// simulated component (cores, caches, TLBs, NoC, memory, the QEI
// accelerator) publishes its activity into, so experiments can ask
// "where did the cycles go" with one snapshot instead of reaching into
// package-specific stats structs.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Handles are nil-safe: methods on a nil
//     *Counter/*Gauge/*Histogram are no-ops, and a nil *Registry hands
//     out nil handles, so instrumented hot paths pay only a predicted
//     branch when observability is off. Pull-based metrics
//     (RegisterFunc) cost nothing at all until Snapshot is taken.
//  2. Determinism. All values are uint64 and Snapshot/Merge aggregate
//     by summation, which is associative and commutative — merging
//     per-worker snapshots in any completion order yields byte-identical
//     results, preserving the parallel runner's serial-equivalence
//     guarantee. Float-valued metrics are stored fixed-point (e.g.
//     occupancy in milli-units) for the same reason.
//  3. Single-goroutine confinement. A Registry and its handles belong to
//     one simulation goroutine (each runner job owns its machine and its
//     registry); cross-goroutine aggregation goes through Snapshot +
//     Merge, never through shared handles.
//
// Names are component paths: "core0/rob/stall_cycles",
// "cha5/cmp/remote_ops", "llc/slice3/misses". Scoped returns a view that
// prefixes every registration, so a component registers relative names
// and the caller decides where it mounts.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Kind distinguishes the metric types in a Snapshot.
type Kind uint8

const (
	// KindCounter is a monotonically increasing event count.
	KindCounter Kind = iota
	// KindGauge is a point-in-time level (merged by summation, like the
	// counters, so parallel merges stay order-independent).
	KindGauge
	// KindHistogram is a bucketed distribution of uint64 observations.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing uint64. A nil Counter is a valid
// no-op handle — the disabled fast path.
type Counter struct {
	name string
	v    uint64
}

// Add increments the counter by n. No-op on a nil handle.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one. No-op on a nil handle.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Value returns the current count (0 for a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a settable uint64 level. A nil Gauge is a valid no-op handle.
type Gauge struct {
	name string
	v    uint64
}

// Set stores v. No-op on a nil handle.
func (g *Gauge) Set(v uint64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current level (0 for a nil handle).
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a bucketed distribution: Observe(v) increments the bucket
// of the first bound >= v, or the overflow bucket. A nil Histogram is a
// valid no-op handle.
type Histogram struct {
	name    string
	bounds  []uint64 // ascending upper bounds; len(buckets) = len(bounds)+1
	buckets []uint64
	count   uint64
	sum     uint64
}

// Observe records one value. No-op on a nil handle.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(h.bounds)]++
}

// Count returns the number of observations (0 for a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// funcMetric is a pull-based counter: fn is read at Snapshot time, so
// components with existing stats fields publish them without touching
// their hot paths at all.
type funcMetric struct {
	name string
	fn   func() uint64
}

// registryCore holds the actual metric storage; Registry values are
// cheap prefix views over one core.
type registryCore struct {
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	funcs    []funcMetric
}

// Registry is a hierarchical metric namespace. The zero-value pointer
// (nil) is a valid disabled registry: every constructor returns a nil
// handle and Snapshot returns nil.
type Registry struct {
	core   *registryCore
	prefix string
}

// NewRegistry creates an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{core: &registryCore{}}
}

// Enabled reports whether the registry collects anything.
func (r *Registry) Enabled() bool { return r != nil }

// Scoped returns a view of r that prefixes every registered name with
// name + "/". Scoping a nil registry stays nil, so component wiring code
// needs no guards.
func (r *Registry) Scoped(name string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{core: r.core, prefix: r.join(name)}
}

func (r *Registry) join(name string) string {
	if r.prefix == "" {
		return name
	}
	return r.prefix + "/" + name
}

// Counter registers and returns a counter handle (nil on a nil
// registry). Registering the same name twice yields independent handles
// whose values are summed at Snapshot — deliberate, so several machines
// or instances can share one namespace.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{name: r.join(name)}
	r.core.counters = append(r.core.counters, c)
	return c
}

// Gauge registers and returns a gauge handle (nil on a nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{name: r.join(name)}
	r.core.gauges = append(r.core.gauges, g)
	return g
}

// Histogram registers and returns a histogram with the given ascending
// bucket bounds (nil on a nil registry).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	bs := make([]uint64, len(bounds))
	copy(bs, bounds)
	h := &Histogram{name: r.join(name), bounds: bs, buckets: make([]uint64, len(bs)+1)}
	r.core.hists = append(r.core.hists, h)
	return h
}

// RegisterFunc registers a pull-based counter evaluated at Snapshot
// time. This is how components expose pre-existing stats fields with
// zero hot-path changes. No-op on a nil registry.
func (r *Registry) RegisterFunc(name string, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	r.core.funcs = append(r.core.funcs, funcMetric{name: r.join(name), fn: fn})
}

// Sample is one named value in a Snapshot.
type Sample struct {
	Name string
	Kind Kind
	// Value is the counter/gauge value, or the histogram observation
	// count.
	Value uint64
	// Sum is the histogram's sum of observations (0 otherwise).
	Sum uint64
	// Bounds/Buckets carry the histogram shape (nil otherwise).
	Bounds  []uint64
	Buckets []uint64
}

// Snapshot is a point-in-time reading of a registry, sorted by name.
type Snapshot []Sample

// Snapshot reads every registered metric, summing same-named entries,
// and returns the samples sorted by name. A nil registry snapshots to
// nil.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	var s Snapshot
	for _, c := range r.core.counters {
		s = append(s, Sample{Name: c.name, Kind: KindCounter, Value: c.v})
	}
	for _, g := range r.core.gauges {
		s = append(s, Sample{Name: g.name, Kind: KindGauge, Value: g.v})
	}
	for _, f := range r.core.funcs {
		s = append(s, Sample{Name: f.name, Kind: KindCounter, Value: f.fn()})
	}
	for _, h := range r.core.hists {
		bounds := make([]uint64, len(h.bounds))
		copy(bounds, h.bounds)
		buckets := make([]uint64, len(h.buckets))
		copy(buckets, h.buckets)
		s = append(s, Sample{Name: h.name, Kind: KindHistogram,
			Value: h.count, Sum: h.sum, Bounds: bounds, Buckets: buckets})
	}
	return Merge(s)
}

// Merge combines snapshots by summing same-named samples. Summation is
// commutative and associative, so the result is identical for any input
// order — the property the parallel experiment runner relies on.
// Histograms merge bucket-wise when their bounds match; mismatched
// bounds fall back to count/sum merging with the first-seen shape.
func Merge(snaps ...Snapshot) Snapshot {
	byName := make(map[string]*Sample)
	var names []string
	for _, snap := range snaps {
		for i := range snap {
			in := snap[i]
			acc, ok := byName[in.Name]
			if !ok {
				cp := in
				cp.Bounds = append([]uint64(nil), in.Bounds...)
				cp.Buckets = append([]uint64(nil), in.Buckets...)
				byName[in.Name] = &cp
				names = append(names, in.Name)
				continue
			}
			acc.Value += in.Value
			acc.Sum += in.Sum
			if len(acc.Buckets) == len(in.Buckets) && boundsEqual(acc.Bounds, in.Bounds) {
				for b := range in.Buckets {
					acc.Buckets[b] += in.Buckets[b]
				}
			}
		}
	}
	sort.Strings(names)
	out := make(Snapshot, 0, len(names))
	for _, n := range names {
		out = append(out, *byName[n])
	}
	return out
}

func boundsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Get returns the sample with the given name.
func (s Snapshot) Get(name string) (Sample, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].Name >= name })
	if i < len(s) && s[i].Name == name {
		return s[i], true
	}
	return Sample{}, false
}

// Value returns the value of the named sample (0 if absent).
func (s Snapshot) Value(name string) uint64 {
	sm, _ := s.Get(name)
	return sm.Value
}

// NonZero returns the samples with non-zero values — the useful subset
// for human-facing listings on a mostly idle 24-core machine.
func (s Snapshot) NonZero() Snapshot {
	var out Snapshot
	for _, sm := range s {
		if sm.Value != 0 || sm.Sum != 0 {
			out = append(out, sm)
		}
	}
	return out
}

// String renders the snapshot one "name value" line at a time, in name
// order — a deterministic serialization used by the byte-identity tests.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, sm := range s {
		switch sm.Kind {
		case KindHistogram:
			fmt.Fprintf(&b, "%s count=%d sum=%d\n", sm.Name, sm.Value, sm.Sum)
		default:
			fmt.Fprintf(&b, "%s %d\n", sm.Name, sm.Value)
		}
	}
	return b.String()
}
