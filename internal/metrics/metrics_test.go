package metrics

import (
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("core0/rob/stall_cycles")
	c.Add(10)
	c.Inc()
	if got := c.Value(); got != 11 {
		t.Fatalf("counter value = %d, want 11", got)
	}
	g := r.Gauge("qst/occupancy_milli")
	g.Set(375)
	if got := g.Value(); got != 375 {
		t.Fatalf("gauge value = %d, want 375", got)
	}
	h := r.Histogram("qei/query_latency", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	if got := h.Count(); got != 3 {
		t.Fatalf("histogram count = %d, want 3", got)
	}
	s := r.Snapshot()
	sm, ok := s.Get("qei/query_latency")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if sm.Sum != 555 {
		t.Fatalf("histogram sum = %d, want 555", sm.Sum)
	}
	want := []uint64{1, 1, 1}
	for i, b := range sm.Buckets {
		if b != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d", i, b, want[i])
		}
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []uint64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	// None of these may panic.
	c.Add(1)
	c.Inc()
	g.Set(2)
	h.Observe(3)
	r.RegisterFunc("f", func() uint64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles returned non-zero values")
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", snap)
	}
	if r.Scoped("sub") != nil {
		t.Fatal("scoping a nil registry must stay nil")
	}
}

func TestScopedPrefixes(t *testing.T) {
	r := NewRegistry()
	core := r.Scoped("core0").Scoped("rob")
	core.Counter("stall_cycles").Add(7)
	s := r.Snapshot()
	if got := s.Value("core0/rob/stall_cycles"); got != 7 {
		t.Fatalf("scoped counter = %d, want 7\nsnapshot:\n%s", got, s)
	}
}

func TestRegisterFuncPulledAtSnapshot(t *testing.T) {
	r := NewRegistry()
	var n uint64
	r.RegisterFunc("llc/misses", func() uint64 { return n })
	n = 42
	if got := r.Snapshot().Value("llc/misses"); got != 42 {
		t.Fatalf("pull counter = %d, want 42", got)
	}
	n = 99
	if got := r.Snapshot().Value("llc/misses"); got != 99 {
		t.Fatalf("pull counter after update = %d, want 99", got)
	}
}

func TestDuplicateNamesSumAtSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("mem/lines").Add(3)
	r.Counter("mem/lines").Add(4)
	r.RegisterFunc("mem/lines", func() uint64 { return 5 })
	if got := r.Snapshot().Value("mem/lines"); got != 12 {
		t.Fatalf("duplicate-name sum = %d, want 12", got)
	}
}

func TestMergeOrderIndependent(t *testing.T) {
	a := Snapshot{
		{Name: "a", Kind: KindCounter, Value: 1},
		{Name: "h", Kind: KindHistogram, Value: 2, Sum: 30, Bounds: []uint64{10}, Buckets: []uint64{1, 1}},
	}
	b := Snapshot{
		{Name: "a", Kind: KindCounter, Value: 10},
		{Name: "b", Kind: KindCounter, Value: 5},
		{Name: "h", Kind: KindHistogram, Value: 1, Sum: 5, Bounds: []uint64{10}, Buckets: []uint64{1, 0}},
	}
	ab := Merge(a, b).String()
	ba := Merge(b, a).String()
	if ab != ba {
		t.Fatalf("merge is order-dependent:\n--- a,b:\n%s--- b,a:\n%s", ab, ba)
	}
	m := Merge(a, b)
	if got := m.Value("a"); got != 11 {
		t.Fatalf("merged a = %d, want 11", got)
	}
	hm, _ := m.Get("h")
	if hm.Value != 3 || hm.Sum != 35 || hm.Buckets[0] != 2 || hm.Buckets[1] != 1 {
		t.Fatalf("merged histogram = %+v", hm)
	}
	// Merge must not mutate its inputs.
	if a[0].Value != 1 || b[0].Value != 10 {
		t.Fatal("Merge mutated its inputs")
	}
}

func TestSnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Inc()
	r.Counter("a").Inc()
	r.Gauge("m").Set(1)
	s := r.Snapshot()
	for i := 1; i < len(s); i++ {
		if s[i-1].Name >= s[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", s[i-1].Name, s[i].Name)
		}
	}
	if s.String() != r.Snapshot().String() {
		t.Fatal("repeated snapshots of an unchanged registry differ")
	}
}

func TestNonZero(t *testing.T) {
	r := NewRegistry()
	r.Counter("used").Add(1)
	r.Counter("unused")
	nz := r.Snapshot().NonZero()
	if len(nz) != 1 || nz[0].Name != "used" {
		t.Fatalf("NonZero = %v, want just 'used'", nz)
	}
}

// The zero-overhead contract: incrementing a nil handle must cost no
// more than the branch. These benchmarks let a human eyeball nil-handle
// vs raw-uint64 cost; the CI-enforced guard is the deterministic
// cycle-count assertion in the root package (TestObservabilityZeroCycleImpact).
var sinkU64 uint64

func BenchmarkCounterAddNilHandle(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddLive(b *testing.B) {
	c := NewRegistry().Counter("bench")
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	sinkU64 = c.Value()
}

func BenchmarkRawUint64Baseline(b *testing.B) {
	var v uint64
	for i := 0; i < b.N; i++ {
		v++
	}
	sinkU64 = v
}
