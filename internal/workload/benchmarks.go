package workload

import (
	"fmt"
	"math/rand"

	"qei/internal/baseline"
	"qei/internal/dstruct"
	"qei/internal/isa"
	"qei/internal/machine"
	"qei/internal/mem"
)

// genUniqueKeys produces n distinct keyLen-byte keys and values from a
// deterministic seed.
func genUniqueKeys(n, keyLen int, seed int64) ([][]byte, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	keys := make([][]byte, 0, n)
	vals := make([]uint64, 0, n)
	for len(keys) < n {
		k := make([]byte, keyLen)
		rng.Read(k)
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		keys = append(keys, k)
		vals = append(vals, rng.Uint64()|1)
	}
	return keys, vals
}

// stageKeys writes the probe keys into simulated memory (the
// application's request buffers) and returns their addresses.
func stageKeys(m *machine.Machine, keys [][]byte) []mem.VAddr {
	addrs := make([]mem.VAddr, len(keys))
	for i, k := range keys {
		a := m.AS.AllocLines(uint64(len(k)))
		m.AS.MustWrite(a, k)
		addrs[i] = a
	}
	return addrs
}

// DPDK is the L3 Forwarding Information Base benchmark (Sec. VI-B): an
// optimized cuckoo hash table with 16-byte keys modeling TCP/IP headers;
// every request is one packet lookup that hits.
type DPDK struct {
	Keys    int   // table population
	Queries int   // packets
	Seed    int64 // layout/stream seed
}

// DefaultDPDK sizes the table like the paper's FIB experiments.
func DefaultDPDK() DPDK { return DPDK{Keys: 16384, Queries: 2000, Seed: 101} }

// SmallDPDK is a fast configuration for unit tests.
func SmallDPDK() DPDK { return DPDK{Keys: 1024, Queries: 200, Seed: 101} }

func (d DPDK) Name() string { return "DPDK" }

// Build lays out the FIB and the packet stream.
func (d DPDK) Build(m *machine.Machine) (*Plan, error) {
	keys, vals := genUniqueKeys(d.Keys, 16, d.Seed)
	table := dstruct.BuildCuckoo(m.AS, uint64(d.Keys/2), 8, uint64(d.Seed), keys, vals)
	rng := rand.New(rand.NewSource(d.Seed + 1))
	// 2x queries: the first half is the warmup stream, disjointly drawn.
	n := 2 * d.Queries
	probeKeys := make([][]byte, n)
	want := make([]int, n)
	for i := range probeKeys {
		j := rng.Intn(len(keys))
		probeKeys[i] = keys[j]
		want[i] = j
	}
	addrs := stageKeys(m, probeKeys)
	var keyBuf []byte
	plan := &Plan{
		Name: d.Name(),
		// Packet RX/parse/TX around each lookup: header parsing, checksum
		// and descriptor work. Calibrated so queries are ~40% of time.
		NonROIOps:       1500,
		NonROILoadEvery: 8,
		Scratch:         m.AS.AllocLines(4096),
		scratchSize:     4096,
		BaselineTrace: func(mm *machine.Machine, q *baseline.Querier, p Probe) (isa.Trace, foundValue, error) {
			r, err := q.QueryCuckoo(mm.AS, p.Header, readKeyAt(mm, p, &keyBuf))
			return r.Trace, foundValue{r.Found, r.Value}, err
		},
	}
	for i := 0; i < n; i++ {
		req := Request{Probes: []Probe{{
			Header:    table.HeaderAddr,
			Key:       addrs[i],
			WantFound: true,
			WantValue: vals[want[i]],
		}}}
		if i < d.Queries {
			plan.WarmupRequests = append(plan.WarmupRequests, req)
		} else {
			plan.Requests = append(plan.Requests, req)
		}
	}
	return plan, nil
}

// readKeyAt fetches a probe's key bytes back out of simulated memory
// into a caller-owned buffer (grown as needed). Each plan's
// BaselineTrace closure captures its own buffer, so the key stays valid
// while the query routine runs — distinct from the Querier's internal
// stored-key scratch.
func readKeyAt(m *machine.Machine, p Probe, buf *[]byte) []byte {
	n := int(p.KeyLen)
	if n == 0 {
		h, err := dstruct.ReadHeader(m.AS, p.Header)
		if err != nil {
			return nil
		}
		n = int(h.KeyLen)
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	k := (*buf)[:n]
	m.AS.MustRead(p.Key, k)
	return k
}

// JVM is the garbage-collection benchmark (Sec. VI-B): the live-object
// tree dumped from a running database, queried during the mark phase.
// Nodes carry an object payload so each visit costs multiple lines; the
// paper measures ≈39.9 memory accesses per query on this workload.
type JVM struct {
	Objects int
	Queries int
	Seed    int64
}

// DefaultJVM approximates the Derby object-tree dump.
func DefaultJVM() JVM { return JVM{Objects: 50000, Queries: 1500, Seed: 202} }

// SmallJVM is a fast configuration for unit tests.
func SmallJVM() JVM { return JVM{Objects: 4000, Queries: 200, Seed: 202} }

func (j JVM) Name() string { return "JVM" }

// Build lays out the object tree and the mark-phase query stream.
func (j JVM) Build(m *machine.Machine) (*Plan, error) {
	keys, vals := genUniqueKeys(j.Objects, 8, j.Seed)
	tree := dstruct.BuildBST(m.AS, j.Seed, 128, keys, vals)
	rng := rand.New(rand.NewSource(j.Seed + 1))
	n := 2 * j.Queries
	probeKeys := make([][]byte, n)
	want := make([]int, n)
	for i := range probeKeys {
		k := rng.Intn(len(keys))
		probeKeys[i] = keys[k]
		want[i] = k
	}
	addrs := stageKeys(m, probeKeys)
	var keyBuf []byte
	plan := &Plan{
		Name: j.Name(),
		// Mutator work interleaved between GC mark queries (allocation,
		// barriers, application progress) plus mark bookkeeping.
		NonROIOps:       11000,
		NonROILoadEvery: 10,
		Scratch:         m.AS.AllocLines(4096),
		scratchSize:     4096,
		BaselineTrace: func(mm *machine.Machine, q *baseline.Querier, p Probe) (isa.Trace, foundValue, error) {
			r, err := q.QueryBST(mm.AS, p.Header, readKeyAt(mm, p, &keyBuf))
			return r.Trace, foundValue{r.Found, r.Value}, err
		},
	}
	for i := 0; i < n; i++ {
		req := Request{Probes: []Probe{{
			Header:    tree.HeaderAddr,
			Key:       addrs[i],
			WantFound: true,
			WantValue: vals[want[i]],
		}}}
		if i < j.Queries {
			plan.WarmupRequests = append(plan.WarmupRequests, req)
		} else {
			plan.Requests = append(plan.Requests, req)
		}
	}
	return plan, nil
}

// RocksDB is the persistent key-value store benchmark (Sec. VI-B): the
// in-memory memtable (a skip list) populated with 10 K items of 100 B
// keys and 900 B values, then queried randomly (db_bench-style).
type RocksDB struct {
	Items   int
	Queries int
	Seed    int64
}

// DefaultRocksDB matches the paper's 10 K-item db_bench setup.
func DefaultRocksDB() RocksDB { return RocksDB{Items: 10000, Queries: 1000, Seed: 303} }

// SmallRocksDB is a fast configuration for unit tests.
func SmallRocksDB() RocksDB { return RocksDB{Items: 1500, Queries: 150, Seed: 303} }

func (r RocksDB) Name() string { return "RocksDB" }

// Build lays out the memtable and the get() stream.
func (r RocksDB) Build(m *machine.Machine) (*Plan, error) {
	keys, vals := genUniqueKeys(r.Items, 100, r.Seed)
	// 900 B values live in their own allocations; the skip list stores
	// pointers to them, as RocksDB stores handles.
	valPtrs := make([]uint64, len(vals))
	for i := range vals {
		va := m.AS.AllocLines(900)
		valPtrs[i] = uint64(va)
	}
	table := dstruct.BuildSkipList(m.AS, r.Seed, keys, valPtrs)
	rng := rand.New(rand.NewSource(r.Seed + 1))
	n := 2 * r.Queries
	probeKeys := make([][]byte, n)
	want := make([]int, n)
	for i := range probeKeys {
		k := rng.Intn(len(keys))
		probeKeys[i] = keys[k]
		want[i] = k
	}
	addrs := stageKeys(m, probeKeys)
	var keyBuf []byte
	plan := &Plan{
		Name: r.Name(),
		// The paper singles RocksDB out: its seek loop carries a lot of
		// other work (key preprocessing, memcpy, thread management), so
		// the core's ROB fills before much query parallelism is exposed.
		NonROIOps:       23000,
		NonROILoadEvery: 6,
		Scratch:         m.AS.AllocLines(8192),
		scratchSize:     8192,
		BaselineTrace: func(mm *machine.Machine, q *baseline.Querier, p Probe) (isa.Trace, foundValue, error) {
			res, err := q.QuerySkipList(mm.AS, p.Header, readKeyAt(mm, p, &keyBuf))
			return res.Trace, foundValue{res.Found, res.Value}, err
		},
	}
	for i := 0; i < n; i++ {
		req := Request{Probes: []Probe{{
			Header:    table.HeaderAddr,
			Key:       addrs[i],
			WantFound: true,
			WantValue: valPtrs[want[i]],
		}}}
		if i < r.Queries {
			plan.WarmupRequests = append(plan.WarmupRequests, req)
		} else {
			plan.Requests = append(plan.Requests, req)
		}
	}
	return plan, nil
}

// Snort is the intrusion-prevention benchmark (Sec. VI-B): a ~40 K
// keyword dictionary compiled into an Aho-Corasick trie; each request
// scans a 1 KB payload.
type Snort struct {
	Keywords   int
	PayloadLen int
	Queries    int
	Seed       int64
}

// DefaultSnort matches the paper's dictionary and payload sizes.
func DefaultSnort() Snort {
	return Snort{Keywords: 40000, PayloadLen: 1024, Queries: 12, Seed: 404}
}

// SmallSnort is a fast configuration for unit tests.
func SmallSnort() Snort {
	return Snort{Keywords: 2000, PayloadLen: 512, Queries: 8, Seed: 404}
}

func (s Snort) Name() string { return "Snort" }

// Build compiles the dictionary and synthesizes payloads that mix
// innocuous bytes with planted keywords.
func (s Snort) Build(m *machine.Machine) (*Plan, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	seen := map[string]bool{}
	var kws [][]byte
	var vals []uint64
	for len(kws) < s.Keywords {
		l := 4 + rng.Intn(12)
		w := make([]byte, l)
		for i := range w {
			w[i] = byte('a' + rng.Intn(26))
		}
		if seen[string(w)] {
			continue
		}
		seen[string(w)] = true
		kws = append(kws, w)
		vals = append(vals, uint64(len(kws)))
	}
	trie := dstruct.BuildTrie(m.AS, kws, vals)

	var keyBuf []byte
	plan := &Plan{
		Name: s.Name(),
		// Per-payload packet handling around the scan: decode,
		// preprocessing, and rule evaluation scale with payload size.
		NonROIOps:       s.PayloadLen * 1000,
		NonROILoadEvery: 8,
		Scratch:         m.AS.AllocLines(8192),
		scratchSize:     8192,
		BaselineTrace: func(mm *machine.Machine, q *baseline.Querier, p Probe) (isa.Trace, foundValue, error) {
			input := readKeyAt(mm, p, &keyBuf)
			res, err := q.ScanTrie(mm.AS, p.Header, input)
			var last uint64
			if n := len(res.Matches); n > 0 {
				last = res.Matches[n-1]
			}
			return res.Trace, foundValue{len(res.Matches) > 0, last}, err
		},
	}

	for qi := 0; qi < 2*s.Queries; qi++ {
		payload := make([]byte, s.PayloadLen)
		for i := range payload {
			payload[i] = byte('a' + rng.Intn(26))
		}
		// Plant a couple of dictionary keywords.
		for p := 0; p < 2; p++ {
			w := kws[rng.Intn(len(kws))]
			pos := rng.Intn(len(payload) - len(w))
			copy(payload[pos:], w)
		}
		ref, err := dstruct.ScanTrieRef(m.AS, trie.HeaderAddr, payload)
		if err != nil {
			return nil, err
		}
		var wantVal uint64
		if len(ref) > 0 {
			wantVal = ref[len(ref)-1]
		}
		addr := m.AS.AllocLines(uint64(len(payload)))
		m.AS.MustWrite(addr, payload)
		req := Request{Probes: []Probe{{
			Header:    trie.HeaderAddr,
			Key:       addr,
			KeyLen:    uint32(len(payload)),
			WantFound: len(ref) > 0,
			WantValue: wantVal,
		}}}
		if qi < s.Queries {
			plan.WarmupRequests = append(plan.WarmupRequests, req)
		} else {
			plan.Requests = append(plan.Requests, req)
		}
	}
	return plan, nil
}

// FLANN is the similarity-search benchmark (Sec. VI-B): locality-
// sensitive hashing over 12 hash tables with 20-byte keys; each query
// probes every table (the probes are independent — ideal QEI MLP).
type FLANN struct {
	Items   int // total items spread over the tables
	Tables  int
	Queries int
	Seed    int64
}

// DefaultFLANN matches the paper's 100 K-item, 12-table LSH setup.
func DefaultFLANN() FLANN { return FLANN{Items: 100000, Tables: 12, Queries: 300, Seed: 505} }

// SmallFLANN is a fast configuration for unit tests.
func SmallFLANN() FLANN { return FLANN{Items: 6000, Tables: 12, Queries: 60, Seed: 505} }

func (f FLANN) Name() string { return "FLANN" }

// Build populates the table group and the query stream. Each LSH table
// indexes the dataset under a different hash seed; a query key is
// present in a subset of tables (modelling bucket collisions).
func (f FLANN) Build(m *machine.Machine) (*Plan, error) {
	perTable := f.Items / f.Tables
	if perTable == 0 {
		return nil, fmt.Errorf("workload: FLANN needs at least %d items", f.Tables)
	}
	keys, vals := genUniqueKeys(perTable, 20, f.Seed)
	headers := make([]mem.VAddr, f.Tables)
	// Which tables contain each key: all of them here (the same dataset
	// hashed 12 ways), so probes hit in every table.
	for t := 0; t < f.Tables; t++ {
		ht := dstruct.BuildHashTable(m.AS, uint64(perTable/2), uint64(f.Seed)+uint64(t)*7919, keys, vals)
		headers[t] = ht.HeaderAddr
	}
	rng := rand.New(rand.NewSource(f.Seed + 1))
	var keyBuf []byte
	plan := &Plan{
		Name: f.Name(),
		// Feature extraction and exact-distance verification of the
		// candidates gathered from the 12 probes.
		NonROIOps:       57000,
		NonROILoadEvery: 7,
		Scratch:         m.AS.AllocLines(8192),
		scratchSize:     8192,
		BaselineTrace: func(mm *machine.Machine, q *baseline.Querier, p Probe) (isa.Trace, foundValue, error) {
			r, err := q.QueryHashTable(mm.AS, p.Header, readKeyAt(mm, p, &keyBuf))
			return r.Trace, foundValue{r.Found, r.Value}, err
		},
	}
	for qi := 0; qi < 2*f.Queries; qi++ {
		k := rng.Intn(len(keys))
		addr := stageKeys(m, [][]byte{keys[k]})[0]
		probes := make([]Probe, f.Tables)
		for t := 0; t < f.Tables; t++ {
			probes[t] = Probe{
				Header:    headers[t],
				Key:       addr,
				WantFound: true,
				WantValue: vals[k],
			}
		}
		if qi < f.Queries {
			plan.WarmupRequests = append(plan.WarmupRequests, Request{Probes: probes})
		} else {
			plan.Requests = append(plan.Requests, Request{Probes: probes})
		}
	}
	return plan, nil
}

// TupleSpace is the tuple-space-search workload of Sec. VII-B: a packet
// classifier probing T independent cuckoo tables per key. Queries to
// different tuples are independent, so QUERY_NB exposes T-way
// parallelism per key.
type TupleSpace struct {
	Tuples  int // 5, 10, or 15 in Fig. 10
	Keys    int // per-table population
	Queries int
	Seed    int64
}

// DefaultTupleSpace returns the workload with the given tuple count.
func DefaultTupleSpace(tuples int) TupleSpace {
	return TupleSpace{Tuples: tuples, Keys: 4096, Queries: 600, Seed: 606}
}

// SmallTupleSpace is a fast configuration for unit tests.
func SmallTupleSpace(tuples int) TupleSpace {
	return TupleSpace{Tuples: tuples, Keys: 512, Queries: 96, Seed: 606}
}

func (t TupleSpace) Name() string { return fmt.Sprintf("TupleSpace-%d", t.Tuples) }

// Build lays out the tuple tables. Each key is inserted into exactly one
// tuple's table (its matching rule); the classifier must probe all of
// them.
func (t TupleSpace) Build(m *machine.Machine) (*Plan, error) {
	keys, vals := genUniqueKeys(t.Keys*t.Tuples, 16, t.Seed)
	headers := make([]mem.VAddr, t.Tuples)
	for ti := 0; ti < t.Tuples; ti++ {
		ks := keys[ti*t.Keys : (ti+1)*t.Keys]
		vs := vals[ti*t.Keys : (ti+1)*t.Keys]
		ck := dstruct.BuildCuckoo(m.AS, uint64(t.Keys/2), 8, uint64(t.Seed)+uint64(ti), ks, vs)
		headers[ti] = ck.HeaderAddr
	}
	rng := rand.New(rand.NewSource(t.Seed + 1))
	var keyBuf []byte
	plan := &Plan{
		Name:            t.Name(),
		NonROIOps:       100,
		NonROILoadEvery: 8,
		Scratch:         m.AS.AllocLines(4096),
		scratchSize:     4096,
		BaselineTrace: func(mm *machine.Machine, q *baseline.Querier, p Probe) (isa.Trace, foundValue, error) {
			r, err := q.QueryCuckoo(mm.AS, p.Header, readKeyAt(mm, p, &keyBuf))
			return r.Trace, foundValue{r.Found, r.Value}, err
		},
	}
	for qi := 0; qi < 2*t.Queries; qi++ {
		owner := rng.Intn(t.Tuples)
		ki := rng.Intn(t.Keys)
		keyIdx := owner*t.Keys + ki
		addr := stageKeys(m, [][]byte{keys[keyIdx]})[0]
		probes := make([]Probe, t.Tuples)
		for ti := 0; ti < t.Tuples; ti++ {
			probes[ti] = Probe{
				Header:    headers[ti],
				Key:       addr,
				WantFound: ti == owner,
			}
			if ti == owner {
				probes[ti].WantValue = vals[keyIdx]
			}
		}
		if qi < t.Queries {
			plan.WarmupRequests = append(plan.WarmupRequests, Request{Probes: probes})
		} else {
			plan.Requests = append(plan.Requests, Request{Probes: probes})
		}
	}
	return plan, nil
}

// All returns the five paper benchmarks at full scale.
func All() []Benchmark {
	return []Benchmark{DefaultDPDK(), DefaultJVM(), DefaultRocksDB(), DefaultSnort(), DefaultFLANN()}
}

// AllSmall returns the five benchmarks at test scale.
func AllSmall() []Benchmark {
	return []Benchmark{SmallDPDK(), SmallJVM(), SmallRocksDB(), SmallSnort(), SmallFLANN()}
}
