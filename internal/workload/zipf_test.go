package workload

import (
	"testing"

	"qei/internal/scheme"
)

func TestZipfPickerSkewed(t *testing.T) {
	z := NewZipfPicker(1000, 0.99, 1)
	counts := make([]int, 1000)
	for i := 0; i < 20000; i++ {
		counts[z.Next()]++
	}
	// Rank-0 must dominate rank-100 by a large factor under s=0.99.
	if counts[0] < counts[100]*5 {
		t.Fatalf("rank-0 drawn %d times vs rank-100 %d — not skewed", counts[0], counts[100])
	}
	// Every draw in range.
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 20000 {
		t.Fatalf("draws = %d", total)
	}
}

func TestZipfPickerUniformAtZero(t *testing.T) {
	z := NewZipfPicker(10, 0, 2)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[z.Next()]++
	}
	for r, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("rank %d drawn %d/10000 under uniform exponent", r, c)
		}
	}
}

func TestSkewedDPDKRuns(t *testing.T) {
	b := SmallSkewedDPDK()
	sw, err := RunBaseline(b, ROIOnly, WithWarmup())
	if err != nil {
		t.Fatal(err)
	}
	if sw.Mismatches != 0 {
		t.Fatalf("%d mismatches", sw.Mismatches)
	}
	hw, err := RunQEI(b, scheme.CoreIntegrated, ROIOnly, WithWarmup())
	if err != nil {
		t.Fatal(err)
	}
	if hw.Mismatches != 0 {
		t.Fatalf("%d accelerated mismatches", hw.Mismatches)
	}
}

func TestSkewShrinksBaselineCost(t *testing.T) {
	// Hot keys keep the software baseline in its private caches, so the
	// skewed stream must be cheaper per query than the uniform one.
	uni, err := RunBaseline(SmallDPDK(), ROIOnly, WithWarmup())
	if err != nil {
		t.Fatal(err)
	}
	skew, err := RunBaseline(SmallSkewedDPDK(), ROIOnly, WithWarmup())
	if err != nil {
		t.Fatal(err)
	}
	uniCPQ := float64(uni.Cycles) / float64(uni.Queries)
	skewCPQ := float64(skew.Cycles) / float64(skew.Queries)
	if skewCPQ >= uniCPQ {
		t.Fatalf("skewed baseline %.1f cyc/q should beat uniform %.1f cyc/q", skewCPQ, uniCPQ)
	}
}
