package workload

import (
	"testing"

	"qei/internal/scheme"
)

func TestOpenLoopLatencyBasics(t *testing.T) {
	b := SmallDPDK()
	p, err := OpenLoopLatency(b, scheme.CoreIntegrated, 500, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Queries != 100 {
		t.Fatalf("queries = %d", p.Queries)
	}
	if p.AvgLatency <= 0 || p.P99 < p.P50 || p.Max < p.P99 {
		t.Fatalf("inconsistent profile: %+v", p)
	}
}

func TestOpenLoopTailGrowsUnderLoad(t *testing.T) {
	// At arrival intervals far below the per-query service rate the QST
	// saturates and queueing delay pushes the tail out; at relaxed
	// arrival rates the tail stays near the unloaded latency.
	b := SmallDPDK()
	relaxed, err := OpenLoopLatency(b, scheme.CoreIntegrated, 2000, 150)
	if err != nil {
		t.Fatal(err)
	}
	slammed, err := OpenLoopLatency(b, scheme.CoreIntegrated, 5, 150)
	if err != nil {
		t.Fatal(err)
	}
	if slammed.P99 <= relaxed.P99 {
		t.Fatalf("p99 under overload (%d) should exceed relaxed p99 (%d)",
			slammed.P99, relaxed.P99)
	}
	if slammed.AvgLatency <= relaxed.AvgLatency {
		t.Fatal("average latency should grow under overload")
	}
}

func TestOpenLoopDeviceTailWorse(t *testing.T) {
	// The device schemes' long access latency shows directly in the
	// unloaded latency distribution (Sec. II-B, Challenge 2).
	b := SmallDPDK()
	core, err := OpenLoopLatency(b, scheme.CoreIntegrated, 3000, 100)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := OpenLoopLatency(b, scheme.DeviceIndirect, 3000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if dev.P50 <= core.P50 {
		t.Fatalf("device median latency (%d) should exceed core-integrated (%d)", dev.P50, core.P50)
	}
}

func TestOpenLoopValidation(t *testing.T) {
	if _, err := OpenLoopLatency(SmallDPDK(), scheme.CoreIntegrated, 0, 10); err == nil {
		t.Fatal("zero interarrival accepted")
	}
}
