// Package workload implements the five data-center benchmarks of
// Sec. VI-B — DPDK L3-FIB (cuckoo hash), JVM garbage-collection object
// tree (BST), RocksDB memtable (skip list), Snort literal matching
// (Aho-Corasick trie), FLANN locality-sensitive hashing (hash-table
// group) — plus the tuple-space-search workload of Sec. VII-B, and a
// runner that executes each of them in three configurations: pure
// software on the OoO core, QEI-accelerated with blocking QUERY_B, and
// QEI-accelerated with non-blocking QUERY_NB batches.
//
// Each benchmark builds its data structures in a fresh simulated machine
// (deterministic layouts from fixed seeds), then plays a query stream.
// Requests carry a calibrated amount of non-ROI work (parsing, memcpy,
// bookkeeping) so that the query share of total time lands in the
// 23–44% band the paper profiles in Fig. 1.
package workload

import (
	"fmt"

	"qei/internal/baseline"
	"qei/internal/cfa"
	"qei/internal/cpu"
	"qei/internal/isa"
	"qei/internal/machine"
	"qei/internal/mem"
	"qei/internal/metrics"
	"qei/internal/qei"
	"qei/internal/scheme"
	"qei/internal/trace"
)

// Probe is one data-structure lookup within a request.
type Probe struct {
	Header mem.VAddr
	Key    mem.VAddr
	KeyLen uint32 // non-zero overrides the header's key length (trie)

	WantFound bool
	WantValue uint64
}

// Request is one application-level unit of work (a packet, a GC mark
// step, a DB get, a scanned payload, a similarity query): some non-ROI
// work plus one or more probes.
type Request struct {
	Probes []Probe
}

// Plan is a fully built benchmark instance inside one machine.
type Plan struct {
	Name     string
	Requests []Request
	// WarmupRequests is a disjoint stream with the same distribution,
	// played by the warmup pass so the measured stream does not reuse
	// exactly the lines warmup pulled into the private caches.
	WarmupRequests []Request
	// Batch is the QUERY_B issue batch used by the accelerated ROI
	// rewrite (Sec. IV-A: "QUERY_B ... can be used in small batches,
	// determined by the resource limitations of the accelerator and the
	// core pipeline, to maximize the parallelism"). Zero means the QST
	// depth (10).
	Batch int
	// NonROIOps is the per-request op count of surrounding work.
	NonROIOps int
	// NonROILoadEvery makes every Nth non-ROI op a load into Scratch
	// (cache-resident application state); 0 disables loads.
	NonROILoadEvery int
	Scratch         mem.VAddr
	scratchSize     uint64
	// BaselineTrace renders the software routine for one probe through
	// the run's baseline.Querier arena. The returned trace shares the
	// arena's storage and is only valid until the next probe — callers
	// append (copy) it immediately.
	BaselineTrace func(m *machine.Machine, q *baseline.Querier, p Probe) (isa.Trace, foundValue, error)
}

// foundValue is a probe outcome for verification.
type foundValue struct {
	Found bool
	Value uint64
}

// Benchmark builds a Plan into a machine.
type Benchmark interface {
	Name() string
	Build(m *machine.Machine) (*Plan, error)
}

// Mode selects which part of each request runs.
type Mode int

const (
	// Full runs non-ROI work and queries (end-to-end, Fig. 9).
	Full Mode = iota
	// ROIOnly runs just the queries (lookup speedup, Fig. 7).
	ROIOnly
	// NonROIOnly runs just the surrounding work (Fig. 1 calibration).
	NonROIOnly
)

// Run captures one execution's metrics.
type Run struct {
	Name    string
	Mode    Mode
	Scheme  string
	Queries int
	// Cycles is the makespan: last core retirement or last accelerator
	// completion, whichever is later.
	Cycles uint64
	Core   cpu.Stats
	Accel  *qei.Stats
	// Memory-system activity (for the power model).
	L1Accesses, L2Accesses, LLCAccesses, DRAMAccesses uint64
	NoCBytes                                          uint64
	TLBLookups, PageWalks                             uint64
	// Mismatches counts probes whose result disagreed with the expected
	// value — must be zero in a correct run.
	Mismatches int
	// PeakLinkUtil / MeanUtil are the mesh utilization of the measured
	// window, filled when the run used WithNoCWindow.
	PeakLinkUtil float64
	MeanUtil     float64
	// Metrics is the registry snapshot taken at the end of the run when
	// WithMetrics attached one. It covers the whole run including any
	// warmup pass (component counters are cumulative).
	Metrics metrics.Snapshot
}

// QueriesPerKilocycle is the throughput metric used by Fig. 9/10.
func (r Run) QueriesPerKilocycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Queries) * 1000 / float64(r.Cycles)
}

// RunOption configures a runner.
type RunOption func(*runCfg)

type runCfg struct {
	warmup   bool
	batch    int
	nocReset bool
	reg      *metrics.Registry
	tr       *trace.Tracer
	mach     *machine.Config
}

// newMachine builds the run's machine: the configured topology
// (WithMachine) or the Tab. II default. machine.New deep-copies the
// Config, so one Config value can feed many concurrent runs.
func (c *runCfg) newMachine() *machine.Machine {
	if c.mach != nil {
		return machine.New(*c.mach)
	}
	return machine.NewDefault()
}

// attach wires the run's machine (and, for accelerated runs, the
// accelerator) into the configured observability sinks; both may be nil.
func (c *runCfg) attach(m *machine.Machine, accel *qei.Accelerator) {
	if accel != nil {
		accel.RegisterMetrics(c.reg)
		accel.SetTracer(c.tr)
		return
	}
	m.AttachObservability(c.reg, c.tr)
}

// WithWarmup plays the request stream once before the measured pass, so
// caches and TLBs reach steady state — the regime the paper evaluates
// ("there are few TLB misses in our tests", Sec. VII-A). Reported
// cycles/stats cover only the measured pass.
func WithWarmup() RunOption {
	return func(c *runCfg) { c.warmup = true }
}

// WithBatch overrides the QUERY_NB issue batch size.
func WithBatch(n int) RunOption {
	return func(c *runCfg) { c.batch = n }
}

// WithNoCWindow clears accumulated NoC traffic at the start of the
// measured pass so Run.PeakLinkUtil / Run.MeanUtil reflect the measured
// window only (implies a warmup pass).
func WithNoCWindow() RunOption {
	return func(c *runCfg) { c.warmup = true; c.nocReset = true }
}

// WithMetrics attaches a metrics registry: every component of the run's
// machine (and the accelerator, for QEI runs) registers its counters
// into reg, and Run.Metrics carries reg's final snapshot.
func WithMetrics(reg *metrics.Registry) RunOption {
	return func(c *runCfg) { c.reg = reg }
}

// WithTrace attaches the unified event tracer: all components emit
// cycle-stamped events into tr during the run.
func WithTrace(tr *trace.Tracer) RunOption {
	return func(c *runCfg) { c.tr = tr }
}

// WithMachine runs the workload on the given chip topology instead of
// the Tab. II default — the design-space-exploration knob. The Config
// is captured by value and deep-copied by machine.New, so sweep points
// sharing a base Config never alias.
func WithMachine(cfg machine.Config) RunOption {
	return func(c *runCfg) { c.mach = &cfg }
}

// memSnapshot captures machine-wide memory-system counters for delta
// measurement around a warmup pass.
type memSnapshot struct {
	l1, l2, llc, dram, noc, tlbs, walks uint64
}

func snapshotMemory(m *machine.Machine) memSnapshot {
	var s memSnapshot
	for core := 0; core < m.Cfg.Cores; core++ {
		h, mi, _, _ := m.Hier.L1D[core].Stats()
		s.l1 += h + mi
		h2, m2, _, _ := m.Hier.L2[core].Stats()
		s.l2 += h2 + m2
		th, tm, _ := m.TLB[core].L1.Stats()
		s.tlbs += th + tm
		t2h, t2m, _ := m.TLB[core].L2.Stats()
		s.tlbs += t2h + t2m
		w, _, _ := m.TLB[core].Walker.Stats()
		s.walks += w
	}
	lh, lm := m.Hier.LLC().Stats()
	s.llc = lh + lm
	s.dram = m.Hier.DRAM().Accesses()
	s.noc = m.Hier.Mesh().TotalBytes()
	return s
}

func applyMemoryDelta(r *Run, before, after memSnapshot) {
	r.L1Accesses = after.l1 - before.l1
	r.L2Accesses = after.l2 - before.l2
	r.LLCAccesses = after.llc - before.llc
	r.DRAMAccesses = after.dram - before.dram
	r.NoCBytes = after.noc - before.noc
	r.TLBLookups = after.tlbs - before.tlbs
	r.PageWalks = after.walks - before.walks
}

// emitNonROI appends the request's surrounding work to b: parsing,
// copying, and bookkeeping modelled as short dependent chains seeded by
// cache-resident loads, the IPC≈1.5 shape of real protocol-processing
// code. seed, when non-zero, makes the work depend on a query result
// register (the accelerated rewrite consumes results, List 2).
func emitNonROI(b *isa.Builder, plan *Plan, reqIdx int, seed isa.Reg) {
	if plan.NonROIOps <= 0 {
		return
	}
	chain := seed
	for i := 0; i < plan.NonROIOps; i++ {
		switch {
		case plan.NonROILoadEvery > 0 && i%plan.NonROILoadEvery == 0 && plan.Scratch != 0:
			off := uint64(reqIdx*64+i*8) % plan.scratchSize
			chain = b.Load(plan.Scratch+mem.VAddr(off&^7), 8, 0)
		case i%3 == 0:
			chain = b.ALU(chain, 0) // dependent on the running chain
		case i%7 == 6:
			b.Branch(chain, false) // well-predicted control flow
		default:
			b.ALU(0, 0) // independent scalar work
		}
	}
	// A data-dependent branch per request mispredicts occasionally.
	b.Branch(chain, reqIdx%24 == 0)
}

// warmupStream picks the warmup request stream for a plan.
func warmupStream(plan *Plan) []Request {
	if len(plan.WarmupRequests) > 0 {
		return plan.WarmupRequests
	}
	return plan.Requests
}

// RunBaseline executes bench in pure software on core 0 of a fresh
// machine.
func RunBaseline(bench Benchmark, mode Mode, opts ...RunOption) (Run, error) {
	var cfg runCfg
	for _, o := range opts {
		o(&cfg)
	}
	m := cfg.newMachine()
	cfg.attach(m, nil)
	buildStart := m.AS.Brk()
	plan, err := bench.Build(m)
	if err != nil {
		return Run{}, err
	}
	buildEnd := m.AS.Brk()
	core := m.NewCore(0, nil)
	run := Run{Name: plan.Name, Mode: mode, Scheme: "software"}

	// One builder and one querier arena serve every request: the core
	// consumes each trace synchronously in Run, so the builder's storage
	// is reusable immediately after (Reset keeps register numbering
	// byte-identical to a fresh builder).
	b := isa.NewBuilder()
	q := baseline.NewQuerier()
	pass := func(reqs []Request, count bool) error {
		for i, req := range reqs {
			b.Reset()
			if mode != ROIOnly {
				emitNonROI(b, plan, i, 0)
			}
			if mode != NonROIOnly {
				for _, p := range req.Probes {
					tr, want, err := plan.BaselineTrace(m, q, p)
					if err != nil {
						return err
					}
					if count {
						if want.Found != p.WantFound || (want.Found && want.Value != p.WantValue) {
							run.Mismatches++
						}
						run.Queries++
					}
					b.Append(tr)
				}
			}
			core.Run(b.Ops())
			if core.Err() != nil {
				return core.Err()
			}
		}
		return nil
	}

	var startCycle uint64
	var startStats cpu.Stats
	var startMem memSnapshot
	if cfg.warmup {
		m.WarmLLC(buildStart, buildEnd)
		if err := pass(warmupStream(plan), false); err != nil {
			return run, err
		}
		startCycle = core.Now()
		startStats = core.Stats()
		startMem = snapshotMemory(m)
	}
	if err := pass(plan.Requests, true); err != nil {
		return run, err
	}
	run.Cycles = core.Now() - startCycle
	run.Core = core.Stats().Sub(startStats)
	m.Hier.Mesh().ObserveWindow(core.Now())
	applyMemoryDelta(&run, startMem, snapshotMemory(m))
	run.Metrics = cfg.reg.Snapshot()
	return run, nil
}

// RunQEI executes bench with QEI under the given integration scheme
// using blocking QUERY_B instructions.
func RunQEI(bench Benchmark, kind scheme.Kind, mode Mode, opts ...RunOption) (Run, error) {
	return RunQEIWithParams(bench, scheme.ForKind(kind), mode, opts...)
}

// RunQEIWithParams is RunQEI with an explicit (possibly modified) scheme
// parameter set — used by the Fig. 8 latency sweep and the ablations.
func RunQEIWithParams(bench Benchmark, params scheme.Params, mode Mode, opts ...RunOption) (Run, error) {
	var cfg runCfg
	for _, o := range opts {
		o(&cfg)
	}
	m := cfg.newMachine()
	cfg.attach(m, nil)
	buildStart := m.AS.Brk()
	plan, err := bench.Build(m)
	if err != nil {
		return Run{}, err
	}
	buildEnd := m.AS.Brk()
	accel := qei.New(m, params, cfa.DefaultRegistry(), 0)
	cfg.attach(m, accel)
	core := m.NewCore(0, accel)
	run := Run{Name: plan.Name, Mode: mode, Scheme: params.Kind.String()}
	tag := uint64(0)
	type expect struct {
		tag uint64
		p   Probe
	}
	var pending []expect

	// The accelerated ROI issues QUERY_B in small batches and then
	// consumes the batch's results in the per-request work — the List 2
	// usage pattern that fills (but does not overflow) the QST.
	batch := plan.Batch
	if cfg.batch > 0 {
		batch = cfg.batch
	}
	if batch <= 0 {
		batch = params.QSTEntriesPerInstance
		if batch > 10 {
			batch = 10 // software batches to the common QST depth
		}
	}
	prevFound := true
	// One builder and one result-register scratch serve every batch; the
	// core consumes each trace synchronously, so both are reusable as
	// soon as Run returns.
	b := isa.NewBuilder()
	var resultScratch []isa.Reg
	pass := func(reqs []Request, count bool) error {
		for start := 0; start < len(reqs); start += batch {
			end := start + batch
			if end > len(reqs) {
				end = len(reqs)
			}
			b.Reset()
			if cap(resultScratch) < end-start {
				resultScratch = make([]isa.Reg, end-start)
			}
			resultReg := resultScratch[:end-start]
			clear(resultReg)
			if mode != NonROIOnly {
				for ri := start; ri < end; ri++ {
					for _, p := range reqs[ri].Probes {
						// Per-query software shell of the rewritten ROI:
						// key pointer setup before the instruction,
						// result check after (List 2). This is what keeps
						// the ROB's in-flight query count near the QST
						// depth — the "bounded by the core" effect of
						// Sec. VII-A.
						b.ALUN(6, 0)
						r := b.QueryB(isa.QueryDesc{
							HeaderAddr: p.Header,
							KeyAddr:    p.Key,
							KeyLen:     p.KeyLen,
							Tag:        tag,
						})
						check := b.ALU(r, 0)
						// Result-dependent check: the predictor learns the
						// dominant outcome and mispredicts only when a
						// probe's found-ness flips (a miss after a run of
						// hits, or vice versa).
						b.Branch(check, p.WantFound != prevFound)
						prevFound = p.WantFound
						b.ALUN(4, 0) // loop bookkeeping
						resultReg[ri-start] = r
						if count {
							pending = append(pending, expect{tag: tag, p: p})
							run.Queries++
						}
						tag++
					}
				}
			}
			if mode != ROIOnly {
				for ri := start; ri < end; ri++ {
					emitNonROI(b, plan, ri, resultReg[ri-start])
				}
			}
			core.Run(b.Ops())
			if core.Err() != nil {
				return core.Err()
			}
		}
		return nil
	}

	var startCycle uint64
	var startStats cpu.Stats
	var startAccel qei.Stats
	var startMem memSnapshot
	if cfg.warmup {
		m.WarmLLC(buildStart, buildEnd)
		if err := pass(warmupStream(plan), false); err != nil {
			return run, err
		}
		startCycle = core.Now()
		if fin := accel.Stats().LastFinish; fin > startCycle {
			startCycle = fin
		}
		startStats = core.Stats()
		startAccel = accel.Stats()
		if cfg.nocReset {
			m.Hier.Mesh().ResetTraffic()
		}
		startMem = snapshotMemory(m)
	}
	if err := pass(plan.Requests, true); err != nil {
		return run, err
	}
	for _, e := range pending {
		r, ok := accel.Result(e.tag)
		if !ok || r.Fault != nil || r.Found != e.p.WantFound || (r.Found && r.Value != e.p.WantValue) {
			run.Mismatches++
		}
	}
	endCycle := core.Now()
	as := accel.Stats()
	if as.LastFinish > endCycle {
		endCycle = as.LastFinish
	}
	run.Cycles = endCycle - startCycle
	asd := as.Sub(startAccel)
	run.Core = core.Stats().Sub(startStats)
	run.Accel = &asd
	if cfg.nocReset {
		m.Hier.Mesh().ObserveWindow(run.Cycles)
		run.PeakLinkUtil, _ = m.Hier.Mesh().LinkUtilization()
		run.MeanUtil = m.Hier.Mesh().MeanUtilization()
	} else {
		m.Hier.Mesh().ObserveWindow(endCycle)
	}
	applyMemoryDelta(&run, startMem, snapshotMemory(m))
	run.Metrics = cfg.reg.Snapshot()
	return run, nil
}

// RunQEINonBlocking executes bench with QUERY_NB in batches: each batch
// issues batch requests' probes non-blocking, then polls their result
// lines (the SNAPSHOT_READ loop of List 2).
func RunQEINonBlocking(bench Benchmark, kind scheme.Kind, batch int, opts ...RunOption) (Run, error) {
	var cfg runCfg
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.batch > 0 {
		batch = cfg.batch
	}
	if batch <= 0 {
		batch = 32
	}
	m := cfg.newMachine()
	cfg.attach(m, nil)
	buildStart := m.AS.Brk()
	plan, err := bench.Build(m)
	if err != nil {
		return Run{}, err
	}
	buildEnd := m.AS.Brk()
	accel := qei.New(m, scheme.ForKind(kind), cfa.DefaultRegistry(), 0)
	cfg.attach(m, accel)
	core := m.NewCore(0, accel)
	run := Run{Name: plan.Name, Mode: Full, Scheme: kind.String() + "+NB"}

	// Result area: one line per in-flight probe slot.
	maxProbes := 0
	for _, req := range plan.Requests {
		if len(req.Probes) > maxProbes {
			maxProbes = len(req.Probes)
		}
	}
	slots := batch * maxProbes
	resultArea := m.AS.AllocLines(uint64(slots) * mem.LineSize)

	tag := uint64(0)
	type expect struct {
		tag uint64
		p   Probe
	}
	var pending []expect

	// One builder serves every batch (the core consumes each trace
	// synchronously in Run).
	b := isa.NewBuilder()
	flushBatch := func(batchReqs []Request, firstIdx int, count bool) error {
		b.Reset()
		slot := 0
		for ri, req := range batchReqs {
			emitNonROI(b, plan, firstIdx+ri, 0)
			for _, p := range req.Probes {
				resAddr := resultArea + mem.VAddr(slot*mem.LineSize)
				b.QueryNB(isa.QueryDesc{
					HeaderAddr: p.Header,
					KeyAddr:    p.Key,
					KeyLen:     p.KeyLen,
					ResultAddr: resAddr,
					Tag:        tag,
				})
				if count {
					pending = append(pending, expect{tag: tag, p: p})
					run.Queries++
				}
				tag++
				slot++
			}
		}
		// Polling loop: SNAPSHOT_READ-style wide loads over the result
		// lines until completion flags are set (List 2). Each poll pass
		// reads every 8th line (a 512-bit gather per 8 slots).
		for pass := 0; pass < 2; pass++ {
			for s := 0; s < slot; s += 8 {
				r := b.Load(resultArea+mem.VAddr(s*mem.LineSize), 64, 0)
				b.Branch(r, pass == 1 && s+8 >= slot)
			}
		}
		core.Run(b.Ops())
		return core.Err()
	}

	pass := func(reqs []Request, count bool) error {
		for start := 0; start < len(reqs); start += batch {
			end := start + batch
			if end > len(reqs) {
				end = len(reqs)
			}
			if err := flushBatch(reqs[start:end], start, count); err != nil {
				return err
			}
		}
		return nil
	}

	var startCycle uint64
	var startStats cpu.Stats
	var startAccel qei.Stats
	var startMem memSnapshot
	if cfg.warmup {
		m.WarmLLC(buildStart, buildEnd)
		if err := pass(warmupStream(plan), false); err != nil {
			return run, err
		}
		startCycle = core.Now()
		if fin := accel.Stats().LastFinish; fin > startCycle {
			startCycle = fin
		}
		startStats = core.Stats()
		startAccel = accel.Stats()
		startMem = snapshotMemory(m)
	}
	if err := pass(plan.Requests, true); err != nil {
		return run, err
	}
	var lastAccelDone uint64
	for _, e := range pending {
		r, ok := accel.Result(e.tag)
		if !ok || r.Fault != nil || r.Found != e.p.WantFound || (r.Found && r.Value != e.p.WantValue) {
			run.Mismatches++
		}
		if ok && r.Done > lastAccelDone {
			lastAccelDone = r.Done
		}
	}
	endCycle := core.Now()
	if lastAccelDone > endCycle {
		endCycle = lastAccelDone
	}
	run.Cycles = endCycle - startCycle
	as := accel.Stats()
	asd := as.Sub(startAccel)
	run.Core = core.Stats().Sub(startStats)
	run.Accel = &asd
	m.Hier.Mesh().ObserveWindow(endCycle)
	applyMemoryDelta(&run, startMem, snapshotMemory(m))
	run.Metrics = cfg.reg.Snapshot()
	return run, nil
}

// ROIShare computes Fig. 1's metric: the fraction of software time spent
// in query operations, from a full run and a non-ROI-only run of the
// same benchmark.
func ROIShare(bench Benchmark) (float64, error) {
	full, err := RunBaseline(bench, Full)
	if err != nil {
		return 0, err
	}
	nonROI, err := RunBaseline(bench, NonROIOnly)
	if err != nil {
		return 0, err
	}
	if full.Cycles == 0 {
		return 0, fmt.Errorf("workload: empty run")
	}
	roi := float64(full.Cycles-nonROI.Cycles) / float64(full.Cycles)
	if roi < 0 {
		roi = 0
	}
	return roi, nil
}

// RunQEIUtilization measures the mesh utilization attributable to one
// accelerator under a dense query stream (ROI only, no idle gaps) — the
// Sec. V hotspot analysis: "each QEI accelerator can saturate as much as
// 8% of the mesh NoC bandwidth".
func RunQEIUtilization(bench Benchmark, kind scheme.Kind) (Run, error) {
	return RunQEI(bench, kind, ROIOnly, WithNoCWindow())
}
