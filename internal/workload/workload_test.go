package workload

import (
	"testing"

	"qei/internal/scheme"
)

func TestBaselineRunsCleanAllBenchmarks(t *testing.T) {
	for _, b := range AllSmall() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			run, err := RunBaseline(b, Full)
			if err != nil {
				t.Fatal(err)
			}
			if run.Mismatches != 0 {
				t.Fatalf("%d result mismatches", run.Mismatches)
			}
			if run.Queries == 0 || run.Cycles == 0 {
				t.Fatalf("empty run: %+v", run)
			}
			if run.Core.Instructions == 0 {
				t.Fatal("no instructions retired")
			}
		})
	}
}

func TestQEIRunsCleanAllBenchmarks(t *testing.T) {
	for _, b := range AllSmall() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			run, err := RunQEI(b, scheme.CoreIntegrated, Full)
			if err != nil {
				t.Fatal(err)
			}
			if run.Mismatches != 0 {
				t.Fatalf("%d result mismatches", run.Mismatches)
			}
			if run.Accel == nil || run.Accel.Queries == 0 {
				t.Fatal("accelerator saw no queries")
			}
		})
	}
}

func TestQEIBeatsBaselineROI(t *testing.T) {
	for _, b := range []Benchmark{SmallDPDK(), SmallJVM(), SmallRocksDB()} {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			sw, err := RunBaseline(b, ROIOnly)
			if err != nil {
				t.Fatal(err)
			}
			hw, err := RunQEI(b, scheme.CoreIntegrated, ROIOnly)
			if err != nil {
				t.Fatal(err)
			}
			speedup := float64(sw.Cycles) / float64(hw.Cycles)
			if speedup < 1.5 {
				t.Fatalf("ROI speedup = %.2fx — QEI should clearly beat software", speedup)
			}
		})
	}
}

func TestROISharesInProfileBand(t *testing.T) {
	// Fig. 1: query operations take 23–44% of CPU time. Allow some slack
	// around the band for the small test configurations.
	for _, b := range AllSmall() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			share, err := ROIShare(b)
			if err != nil {
				t.Fatal(err)
			}
			if share < 0.15 || share > 0.60 {
				t.Fatalf("ROI share = %.2f, want within the profiled band (~0.23-0.44)", share)
			}
		})
	}
}

func TestInstructionCountReduction(t *testing.T) {
	// Fig. 11: QEI eliminates most dynamic instructions in the ROI.
	b := SmallDPDK()
	sw, err := RunBaseline(b, ROIOnly)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := RunQEI(b, scheme.CoreIntegrated, ROIOnly)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(hw.Core.Instructions) / float64(sw.Core.Instructions)
	// Hash-table queries are the shortest software routines, so they show
	// the smallest relative reduction; even there most dynamic
	// instructions must disappear (Fig. 11).
	if ratio > 0.40 {
		t.Fatalf("QEI retains %.0f%% of baseline instructions; want <40%%", ratio*100)
	}
}

func TestNonBlockingTupleSpace(t *testing.T) {
	b := SmallTupleSpace(5)
	run, err := RunQEINonBlocking(b, scheme.CoreIntegrated, 32)
	if err != nil {
		t.Fatal(err)
	}
	if run.Mismatches != 0 {
		t.Fatalf("%d mismatches", run.Mismatches)
	}
	if run.Accel.NonBlocking == 0 {
		t.Fatal("no non-blocking queries issued")
	}
	if run.Queries != 96*5 {
		t.Fatalf("queries = %d, want %d", run.Queries, 96*5)
	}
}

func TestNonBlockingHelpsDeviceSchemesMost(t *testing.T) {
	// Sec. VII-B: with QUERY_NB "the performance of the Device-based
	// schemes becomes much better than using the blocking instruction"
	// because hundreds of in-flight operations amortize the long access
	// latency; the Core-integrated scheme is capped at its 10-entry QST.
	b := SmallTupleSpace(10)
	blocking, err := RunQEI(b, scheme.DeviceDirect, Full)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := RunQEINonBlocking(b, scheme.DeviceDirect, 32)
	if err != nil {
		t.Fatal(err)
	}
	gain := float64(blocking.Cycles) / float64(nb.Cycles)
	if gain < 1.3 {
		t.Fatalf("device NB gain = %.2fx over blocking; want a clear win", gain)
	}

	// Core-integrated: NB cannot add much beyond the QST bound.
	ciB, err := RunQEI(b, scheme.CoreIntegrated, Full)
	if err != nil {
		t.Fatal(err)
	}
	ciNB, err := RunQEINonBlocking(b, scheme.CoreIntegrated, 32)
	if err != nil {
		t.Fatal(err)
	}
	ciGain := float64(ciB.Cycles) / float64(ciNB.Cycles)
	if ciGain > gain {
		t.Fatalf("Core-integrated NB gain (%.2fx) should not exceed the device gain (%.2fx)", ciGain, gain)
	}
}

func TestTupleSpeedupGrowsWithTuples(t *testing.T) {
	// Fig. 10: "as the number of tuples increases, the speedup also
	// increases due to the increasing parallelism."
	speedup := func(tuples int) float64 {
		b := SmallTupleSpace(tuples)
		sw, err := RunBaseline(b, Full)
		if err != nil {
			t.Fatal(err)
		}
		nb, err := RunQEINonBlocking(b, scheme.CoreIntegrated, 32)
		if err != nil {
			t.Fatal(err)
		}
		return float64(sw.Cycles) / float64(nb.Cycles)
	}
	s5 := speedup(5)
	s15 := speedup(15)
	if s15 <= s5 {
		t.Fatalf("speedup should grow with tuple count: 5 tuples %.2fx, 15 tuples %.2fx", s5, s15)
	}
}

func TestJVMAccessesPerQueryNearPaper(t *testing.T) {
	// Paper: 39.9 memory accesses per query on the JVM benchmark.
	b := DefaultJVM()
	b.Objects = 20000 // keep the test quick; depth ~2ln(20000) ≈ 19.8
	b.Queries = 100
	run, err := RunQEI(b, scheme.CoreIntegrated, ROIOnly)
	if err != nil {
		t.Fatal(err)
	}
	perQuery := float64(run.Accel.MemLines) / float64(run.Accel.Queries)
	if perQuery < 20 || perQuery > 70 {
		t.Fatalf("JVM memory accesses per query = %.1f, want near the paper's ~39.9", perQuery)
	}
}

func TestDeterministicRuns(t *testing.T) {
	b := SmallDPDK()
	r1, err := RunBaseline(b, Full)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunBaseline(b, Full)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Core.Instructions != r2.Core.Instructions {
		t.Fatalf("runs not deterministic: %d/%d vs %d/%d cycles/instrs",
			r1.Cycles, r1.Core.Instructions, r2.Cycles, r2.Core.Instructions)
	}
}

func TestFLANNProbesAllTables(t *testing.T) {
	b := SmallFLANN()
	run, err := RunQEI(b, scheme.CoreIntegrated, ROIOnly)
	if err != nil {
		t.Fatal(err)
	}
	if run.Queries != 60*12 {
		t.Fatalf("queries = %d, want %d (12 tables per request)", run.Queries, 60*12)
	}
	if run.Mismatches != 0 {
		t.Fatalf("%d mismatches", run.Mismatches)
	}
}
