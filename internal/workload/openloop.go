package workload

import (
	"fmt"
	"sort"
	"sync"

	"qei/internal/cfa"
	"qei/internal/isa"
	"qei/internal/machine"
	"qei/internal/qei"
	"qei/internal/scheme"
	"qei/internal/sim"
)

// enginePool recycles event engines across open-loop jobs so the
// parallel runner's workers schedule on warmed queue arrays instead of
// growing fresh ones per point. Engines are interchangeable after
// Reset (sim.TestResetReuseMatchesFreshEngine pins this), so which
// worker gets which engine cannot affect results.
var enginePool = struct {
	sync.Mutex
	free []*sim.Engine
}{}

func getEngine() *sim.Engine {
	enginePool.Lock()
	defer enginePool.Unlock()
	if n := len(enginePool.free); n > 0 {
		e := enginePool.free[n-1]
		enginePool.free = enginePool.free[:n-1]
		return e
	}
	return sim.NewEngine()
}

func putEngine(e *sim.Engine) {
	e.Reset()
	enginePool.Lock()
	defer enginePool.Unlock()
	enginePool.free = append(enginePool.free, e)
}

// Open-loop latency experiment. The paper motivates QEI with
// latency-sensitive serving (Sec. II-B, Challenge 2: "the jitters and
// latency to serve each query are critical to the observed quality of
// service"), and argues that batching to hide device latency "can lead
// to much worse average latency and tail latency". This experiment
// drives the accelerator with an open-loop arrival process on the
// discrete-event engine: queries arrive every interarrival cycles
// whether or not earlier ones finished, and per-query latency is
// recorded — average and tails.

// LatencyProfile summarizes an open-loop run.
type LatencyProfile struct {
	Scheme        string
	Interarrival  uint64
	Queries       int
	AvgLatency    float64
	P50, P95, P99 uint64
	Max           uint64
}

func (p LatencyProfile) String() string {
	return fmt.Sprintf("%s @1/%d: avg %.0f p50 %d p95 %d p99 %d max %d",
		p.Scheme, p.Interarrival, p.AvgLatency, p.P50, p.P95, p.P99, p.Max)
}

// OpenLoopLatency runs an arrival-driven query stream against a fresh
// machine: queries arrive every interarrival cycles (an open loop — the
// arrival process does not wait for completions, like traffic hitting a
// NIC), each probing the benchmark's structures. It returns the latency
// distribution observed at the accelerator's result queue.
func OpenLoopLatency(bench Benchmark, kind scheme.Kind, interarrival uint64, queries int) (LatencyProfile, error) {
	if interarrival == 0 {
		return LatencyProfile{}, fmt.Errorf("workload: zero interarrival")
	}
	m := machine.NewDefault()
	buildStart := m.AS.Brk()
	plan, err := bench.Build(m)
	if err != nil {
		return LatencyProfile{}, err
	}
	buildEnd := m.AS.Brk()
	m.WarmLLC(buildStart, buildEnd)
	accel := qei.New(m, scheme.ForKind(kind), cfa.DefaultRegistry(), 0)

	// Flatten the probe stream.
	var probes []Probe
	for _, req := range plan.Requests {
		probes = append(probes, req.Probes...)
	}
	if len(probes) == 0 {
		return LatencyProfile{}, fmt.Errorf("workload: no probes")
	}
	if queries <= 0 || queries > len(probes) {
		queries = len(probes)
	}

	eng := getEngine()
	defer putEngine(eng)
	latencies := make([]uint64, 0, queries)
	profile := LatencyProfile{Scheme: kind.String(), Interarrival: interarrival, Queries: queries}

	var issueErr error
	for i := 0; i < queries; i++ {
		i := i
		arrive := sim.Cycle(uint64(i) * interarrival)
		eng.At(arrive, func() {
			p := probes[i]
			done, err := accel.IssueBlocking(&isa.QueryDesc{
				HeaderAddr: p.Header,
				KeyAddr:    p.Key,
				KeyLen:     p.KeyLen,
				Tag:        uint64(i),
			}, uint64(eng.Now()))
			if err != nil {
				issueErr = err
				return
			}
			latencies = append(latencies, done-uint64(eng.Now()))
		})
	}
	eng.Run()
	if issueErr != nil {
		return profile, issueErr
	}

	var sum uint64
	for _, l := range latencies {
		sum += l
	}
	profile.AvgLatency = float64(sum) / float64(len(latencies))
	sorted := append([]uint64(nil), latencies...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	pct := func(p float64) uint64 {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	profile.P50 = pct(0.50)
	profile.P95 = pct(0.95)
	profile.P99 = pct(0.99)
	profile.Max = sorted[len(sorted)-1]
	return profile, nil
}
