package workload

import (
	"fmt"

	"qei/internal/cfa"
	"qei/internal/cpu"
	"qei/internal/isa"
	"qei/internal/machine"
	"qei/internal/qei"
	"qei/internal/scheme"
)

// Multi-core scalability experiment, backing the Scalability column of
// Tab. I: K cores issue independent query streams concurrently. The
// Core-integrated scheme instantiates one private accelerator per core
// (its QST scales with the core count); the CHA-based schemes share the
// 24 distributed instances; the Device-based schemes funnel every core
// into one centralized accelerator whose comparators and QST become the
// chokepoint.

// MultiCoreResult summarizes a scalability run.
type MultiCoreResult struct {
	Scheme  string
	Cores   int
	Queries int
	// Makespan is the slowest core's finishing cycle.
	Makespan uint64
	// Throughput is aggregate queries per kilocycle.
	Throughput float64
	Mismatches int
}

// RunMultiCore runs bench's query stream split across the given number
// of cores under one integration scheme, ROI-only, with warmup.
func RunMultiCore(bench Benchmark, kind scheme.Kind, cores int) (MultiCoreResult, error) {
	if cores < 1 {
		return MultiCoreResult{}, fmt.Errorf("workload: need at least one core")
	}
	m := machine.NewDefault()
	if cores > m.Cfg.Cores {
		return MultiCoreResult{}, fmt.Errorf("workload: %d cores exceed the chip's %d", cores, m.Cfg.Cores)
	}
	buildStart := m.AS.Brk()
	plan, err := bench.Build(m)
	if err != nil {
		return MultiCoreResult{}, err
	}
	buildEnd := m.AS.Brk()
	m.WarmLLC(buildStart, buildEnd)

	reg := cfa.DefaultRegistry()
	res := MultiCoreResult{Scheme: kind.String(), Cores: cores}

	// Accelerators: private per core for Core-integrated, shared views
	// otherwise.
	accels := make([]*qei.Accelerator, cores)
	if kind == scheme.CoreIntegrated {
		for c := 0; c < cores; c++ {
			accels[c] = qei.New(m, scheme.ForKind(kind), reg, c)
		}
	} else {
		base := qei.New(m, scheme.ForKind(kind), reg, 0)
		accels[0] = base
		for c := 1; c < cores; c++ {
			accels[c] = base.ViewForCore(c)
		}
	}
	cpus := make([]*cpu.Core, cores)
	for c := 0; c < cores; c++ {
		cpus[c] = m.NewCore(c, accels[c])
	}

	// Split requests across cores, flatten to probes.
	perCore := make([][]Probe, cores)
	for i, req := range plan.Requests {
		c := i % cores
		perCore[c] = append(perCore[c], req.Probes...)
	}

	type pend struct {
		core int
		tag  uint64
		p    Probe
	}
	var pending []pend
	tag := uint64(0)

	// Round-robin across cores in QST-sized batches so the shared
	// accelerator sees interleaved issue times, as concurrent cores
	// would produce.
	batch := 10
	offsets := make([]int, cores)
	remaining := res.Queries
	_ = remaining
	for {
		progress := false
		for c := 0; c < cores; c++ {
			probes := perCore[c]
			if offsets[c] >= len(probes) {
				continue
			}
			progress = true
			end := offsets[c] + batch
			if end > len(probes) {
				end = len(probes)
			}
			b := isa.NewBuilder()
			for _, p := range probes[offsets[c]:end] {
				b.ALUN(6, 0)
				r := b.QueryB(isa.QueryDesc{
					HeaderAddr: p.Header,
					KeyAddr:    p.Key,
					KeyLen:     p.KeyLen,
					Tag:        tag,
				})
				check := b.ALU(r, 0)
				b.Branch(check, false)
				b.ALUN(4, 0)
				pending = append(pending, pend{core: c, tag: tag, p: p})
				tag++
				res.Queries++
			}
			offsets[c] = end
			cpus[c].Run(b.Take())
			if err := cpus[c].Err(); err != nil {
				return res, err
			}
		}
		if !progress {
			break
		}
	}

	for _, e := range pending {
		r, ok := accels[e.core].Result(e.tag)
		if !ok || r.Fault != nil || r.Found != e.p.WantFound || (r.Found && r.Value != e.p.WantValue) {
			res.Mismatches++
		}
	}
	for c := 0; c < cores; c++ {
		if now := cpus[c].Now(); now > res.Makespan {
			res.Makespan = now
		}
		if fin := accels[c].Stats().LastFinish; fin > res.Makespan {
			res.Makespan = fin
		}
	}
	if res.Makespan > 0 {
		res.Throughput = float64(res.Queries) * 1000 / float64(res.Makespan)
	}
	return res, nil
}
