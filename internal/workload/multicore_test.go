package workload

import (
	"testing"

	"qei/internal/scheme"
)

func TestMultiCoreCorrectness(t *testing.T) {
	for _, k := range []scheme.Kind{scheme.CoreIntegrated, scheme.CHATLB, scheme.DeviceDirect} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			r, err := RunMultiCore(SmallDPDK(), k, 4)
			if err != nil {
				t.Fatal(err)
			}
			if r.Mismatches != 0 {
				t.Fatalf("%d mismatches", r.Mismatches)
			}
			if r.Queries != 200 {
				t.Fatalf("queries = %d", r.Queries)
			}
			if r.Throughput <= 0 {
				t.Fatal("no throughput measured")
			}
		})
	}
}

func TestMultiCoreScalingCoreIntegrated(t *testing.T) {
	// Core-integrated accelerators are private per core: 4 cores must
	// deliver clearly more throughput than 1.
	one, err := RunMultiCore(SmallJVM(), scheme.CoreIntegrated, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunMultiCore(SmallJVM(), scheme.CoreIntegrated, 4)
	if err != nil {
		t.Fatal(err)
	}
	if four.Throughput < one.Throughput*2 {
		t.Fatalf("4-core throughput %.2f q/kcyc should be >= 2x 1-core %.2f",
			four.Throughput, one.Throughput)
	}
}

func TestMultiCoreDeviceScalesWorseThanCHA(t *testing.T) {
	// Tab. I: CHA-based schemes scale "Good", Device-based "Medium" —
	// every core funnels into one centralized accelerator.
	cha, err := RunMultiCore(SmallDPDK(), scheme.CHATLB, 8)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := RunMultiCore(SmallDPDK(), scheme.DeviceIndirect, 8)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Throughput >= cha.Throughput {
		t.Fatalf("centralized device throughput (%.2f) should trail distributed CHA (%.2f) at 8 cores",
			dev.Throughput, cha.Throughput)
	}
}

func TestMultiCoreValidation(t *testing.T) {
	if _, err := RunMultiCore(SmallDPDK(), scheme.CHATLB, 0); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := RunMultiCore(SmallDPDK(), scheme.CHATLB, 100); err == nil {
		t.Fatal("more cores than the chip accepted")
	}
}
