package workload

import (
	"math"
	"math/rand"

	"qei/internal/machine"
)

// Zipf-skewed key selection. Cloud query streams are rarely uniform:
// a few hot keys dominate (the classic YCSB/memcached pattern). Skew
// changes the accelerator trade-off — hot structures live in the private
// caches, where the software baseline is strongest — so the skew
// ablation quantifies where QEI's advantage comes from.

// ZipfPicker draws indexes in [0, n) with Zipf(s) popularity using a
// precomputed CDF (deterministic given the seed).
type ZipfPicker struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipfPicker builds a picker over n items with exponent s (s = 0 is
// uniform; s ≈ 0.99 is the YCSB default).
func NewZipfPicker(n int, s float64, seed int64) *ZipfPicker {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &ZipfPicker{cdf: cdf, rng: rand.New(rand.NewSource(seed))}
}

// Next draws one index.
func (z *ZipfPicker) Next() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SkewedDPDK is the DPDK benchmark with a Zipf-distributed flow
// popularity (a realistic traffic mix) instead of uniform lookups.
type SkewedDPDK struct {
	DPDK
	Skew float64
}

// DefaultSkewedDPDK uses the YCSB-like 0.99 exponent.
func DefaultSkewedDPDK() SkewedDPDK {
	return SkewedDPDK{DPDK: DefaultDPDK(), Skew: 0.99}
}

// SmallSkewedDPDK is the test-scale variant.
func SmallSkewedDPDK() SkewedDPDK {
	return SkewedDPDK{DPDK: SmallDPDK(), Skew: 0.99}
}

// Name implements Benchmark.
func (d SkewedDPDK) Name() string { return "DPDK-zipf" }

// Build lays out the same FIB as DPDK but draws the query stream from a
// Zipf distribution over flows.
func (d SkewedDPDK) Build(m *machine.Machine) (*Plan, error) {
	plan, err := d.DPDK.Build(m)
	if err != nil {
		return nil, err
	}
	plan.Name = d.Name()
	// Re-aim the probes at Zipf-selected flows. The original plan's
	// probes each carry a staged random key; reuse their staged
	// addresses but gather them per popularity rank.
	z := NewZipfPicker(len(plan.Requests), d.Skew, d.Seed+99)
	reordered := make([]Request, len(plan.Requests))
	for i := range reordered {
		reordered[i] = plan.Requests[z.Next()]
	}
	plan.Requests = reordered
	zw := NewZipfPicker(len(plan.WarmupRequests), d.Skew, d.Seed+100)
	rewarm := make([]Request, len(plan.WarmupRequests))
	for i := range rewarm {
		rewarm[i] = plan.WarmupRequests[zw.Next()]
	}
	plan.WarmupRequests = rewarm
	return plan, nil
}
