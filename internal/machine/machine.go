// Package machine assembles the simulated chip: physical memory and a
// process address space, the mesh NoC, the cache hierarchy with its NUCA
// LLC, and per-core TLB hierarchies. Both the software baseline (via
// CoreMemPort) and the QEI accelerator (via the scheme-specific ports in
// package qei) run against one Machine instance, so they contend for and
// warm the same caches — the property the paper's speedups depend on.
package machine

import (
	"fmt"

	"qei/internal/cache"
	"qei/internal/cpu"
	"qei/internal/faultinject"
	"qei/internal/mem"
	"qei/internal/metrics"
	"qei/internal/noc"
	"qei/internal/tlb"
	"qei/internal/trace"
)

// Config selects the chip parameters (defaults follow Tab. II).
type Config struct {
	Cores int
	// NoC geometry/timing.
	Mesh noc.Config
	// MemStops are the mesh stops hosting memory controllers.
	MemStops []noc.Stop
	// PageWalkLatency is the per-level cost of a hardware page walk.
	PageWalkLatency uint64
	// ContiguousFrames lays data out physically contiguously (the
	// huge-page ablation); default false (fragmented, Sec. II-B).
	ContiguousFrames bool

	// Cache and TLB geometry. Zero values fall back to the Tab. II
	// defaults (cache.L1DConfig etc.), so literal Configs predating
	// these fields build the same chip they always did.
	L1D      cache.Config
	L2       cache.Config
	LLCSlice cache.Config
	L1TLB    tlb.Config
	L2TLB    tlb.Config
}

// Clone returns a deep copy: the MemStops slice is duplicated, so
// mutating one copy's stops can never alias another's — the guarantee
// design-space sweeps rely on when many Configs derive from one value.
func (c Config) Clone() Config {
	c.MemStops = append([]noc.Stop(nil), c.MemStops...)
	return c
}

// Normalized returns a deep copy with every zero-valued cache/TLB
// geometry replaced by its Tab. II default — the form New builds from.
func (c Config) Normalized() Config {
	c = c.Clone()
	if c.L1D == (cache.Config{}) {
		c.L1D = cache.L1DConfig()
	}
	if c.L2 == (cache.Config{}) {
		c.L2 = cache.L2Config()
	}
	if c.LLCSlice == (cache.Config{}) {
		c.LLCSlice = cache.LLCSliceConfig()
	}
	if c.L1TLB == (tlb.Config{}) {
		c.L1TLB = tlb.L1TLBConfig()
	}
	if c.L2TLB == (tlb.Config{}) {
		c.L2TLB = tlb.L2TLBConfig()
	}
	return c
}

// DefaultConfig is the 24-core Skylake-SP-like chip of Tab. II.
func DefaultConfig() Config {
	m := noc.DefaultConfig()
	// Calibrate per-hop costs so core→CHA round trips land in Tab. I's
	// 40–60 cycle band for CHA-based schemes (avg ~4 hops from a corner
	// core: 2×(4×1 + 5×2) ≈ 28 cycles round trip + port overheads).
	m.HopLatency = 1
	m.RouterLatency = 2
	return Config{
		Cores:           24,
		Mesh:            m,
		MemStops:        []noc.Stop{0, 5, 9, 14, 18, 23},
		PageWalkLatency: 30,
	}
}

// Machine is one simulated chip plus the process under test.
type Machine struct {
	Cfg  Config
	Phys *mem.Physical
	AS   *mem.AddressSpace
	Mesh *noc.Mesh
	Hier *cache.Hierarchy
	// TLB holds one translation hierarchy per core.
	TLB []*tlb.Hierarchy

	// reg/tr are the observability sinks attached by
	// AttachObservability; both may be nil (the default), in which case
	// every instrumentation site degrades to a no-op.
	reg *metrics.Registry
	tr  *trace.Tracer
}

// New builds a machine from cfg. The stored Cfg is a normalized deep
// copy, so callers may reuse or mutate their Config (including its
// MemStops slice) without affecting a built machine.
func New(cfg Config) *Machine {
	cfg = cfg.Normalized()
	phys := mem.NewPhysical()
	var as *mem.AddressSpace
	if cfg.ContiguousFrames {
		as = mem.NewAddressSpace(phys, mem.WithContiguousFrames())
	} else {
		as = mem.NewAddressSpace(phys)
	}
	mesh := noc.New(cfg.Mesh)
	hier := cache.NewHierarchyGeom(cfg.Cores, mesh, cfg.MemStops, cfg.L1D, cfg.L2, cfg.LLCSlice)
	m := &Machine{
		Cfg:  cfg,
		Phys: phys,
		AS:   as,
		Mesh: mesh,
		Hier: hier,
	}
	for i := 0; i < cfg.Cores; i++ {
		m.TLB = append(m.TLB, tlb.NewHierarchyGeom(as, cfg.PageWalkLatency, cfg.L1TLB, cfg.L2TLB))
	}
	return m
}

// NewDefault builds a machine with DefaultConfig.
func NewDefault() *Machine { return New(DefaultConfig()) }

// AttachObservability wires every component of the machine into the
// given metrics registry and event tracer. Either (or both) may be nil:
// component registration is nil-safe and instrumented hot paths fall
// back to their free no-op branches. Cores built afterwards via NewCore
// are wired automatically; call this before running simulation.
func (m *Machine) AttachObservability(reg *metrics.Registry, tr *trace.Tracer) {
	m.reg = reg
	m.tr = tr
	m.Hier.RegisterMetrics(reg)
	m.Hier.SetTracer(tr)
	m.Mesh.RegisterMetrics(reg.Scoped("noc"))
	m.Mesh.SetTracer(tr)
	m.Phys.RegisterMetrics(reg.Scoped("mem"))
	m.AS.RegisterMetrics(reg.Scoped("mem"))
	m.AS.SetTracer(tr)
	for i, t := range m.TLB {
		t.RegisterMetrics(reg.Scoped(fmt.Sprintf("core%d/tlb", i)))
		t.SetTracer(tr, i, trace.TidCoreTLB)
	}
}

// AttachFaultInjection wires the fault-injection harness into every
// component of the machine: guest-memory reads (bit-flips), the mesh
// (delays/drops), the LLC (evictions), and every core TLB hierarchy
// (shootdowns). A nil injector is valid and leaves every hook a no-op.
// The injector only fires while armed, which the accelerator does
// around query execution — so host-side builders stay exact.
func (m *Machine) AttachFaultInjection(fi *faultinject.Injector) {
	m.AS.SetFaultInjector(fi)
	m.Mesh.SetFaultInjector(fi)
	m.Hier.SetFaultInjector(fi)
	for _, t := range m.TLB {
		t.SetFaultInjector(fi)
	}
}

// Metrics returns the attached registry (nil when observability is off).
func (m *Machine) Metrics() *metrics.Registry { return m.reg }

// Tracer returns the attached tracer (nil when observability is off).
func (m *Machine) Tracer() *trace.Tracer { return m.tr }

// corePort adapts a core's TLB + cache path to cpu.MemPort.
type corePort struct {
	m    *Machine
	core int
}

// Access translates a through the core's L1/L2 TLBs and performs the
// cache access; latency composes translation and hierarchy costs.
func (p corePort) Access(a mem.VAddr, write bool, issue uint64) (uint64, error) {
	pa, tlat, err := p.m.TLB[p.core].TranslateAt(a, issue)
	if err != nil {
		return 0, err
	}
	kind := cache.Read
	if write {
		kind = cache.Write
	}
	r := p.m.Hier.CoreAccessAt(p.core, pa, kind, issue+tlat)
	return tlat + r.Latency, nil
}

// CoreMemPort returns the cpu.MemPort for the given core.
func (m *Machine) CoreMemPort(core int) cpu.MemPort {
	return corePort{m: m, core: core}
}

// NewCore builds a cpu.Core wired to this machine's memory system, with
// the given accelerator port (nil for pure software runs). If
// observability is attached, the core registers its pipeline counters
// under core<i>/ and emits events on the core's trace track.
func (m *Machine) NewCore(core int, q cpu.QueryPort) *cpu.Core {
	c := cpu.New(cpu.DefaultConfig(), m.CoreMemPort(core), q)
	if m.reg != nil {
		c.RegisterMetrics(m.reg.Scoped(fmt.Sprintf("core%d", core)))
	}
	if m.tr != nil {
		c.SetTracer(m.tr, core)
	}
	return c
}

// Translate resolves a virtual address without charging TLB state
// (host-side utility for layout/debug purposes).
func (m *Machine) Translate(a mem.VAddr) (mem.PAddr, error) {
	return m.AS.Translate(a)
}

// WarmLLC brings every mapped cacheline in [start, end) into the shared
// LLC, modelling the steady state of a long-running service whose data
// structures are LLC-resident (the regime the paper evaluates). Private
// caches are not touched. Unmapped pages in the range are skipped.
func (m *Machine) WarmLLC(start, end mem.VAddr) {
	llc := m.Hier.LLC()
	for line := start.Line(); line < end; line += mem.LineSize {
		pa, err := m.AS.Translate(line)
		if err != nil {
			// Skip the rest of this unmapped page.
			line = mem.VAddr((line.Page()+1)<<mem.PageShift) - mem.LineSize
			continue
		}
		llc.Slice(llc.SliceFor(pa)).Insert(pa, false)
	}
}
