package machine

import (
	"testing"

	"qei/internal/isa"
	"qei/internal/mem"
	"qei/internal/noc"
)

func TestNewDefaultGeometry(t *testing.T) {
	m := NewDefault()
	if m.Cfg.Cores != 24 {
		t.Fatalf("cores = %d, want 24", m.Cfg.Cores)
	}
	if got := m.Mesh.Stops(); got != 24 {
		t.Fatalf("mesh stops = %d, want 24", got)
	}
	if got := m.Hier.LLC().Slices(); got != 24 {
		t.Fatalf("LLC slices = %d, want 24", got)
	}
	if len(m.TLB) != 24 {
		t.Fatalf("TLB hierarchies = %d, want 24", len(m.TLB))
	}
}

func TestCoreMemPortColdVsWarm(t *testing.T) {
	m := NewDefault()
	a := m.AS.AllocLines(64)
	port := m.CoreMemPort(0)
	cold, err := port.Access(a, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := port.Access(a, false, cold)
	if err != nil {
		t.Fatal(err)
	}
	if warm >= cold {
		t.Fatalf("warm access (%d) not faster than cold (%d)", warm, cold)
	}
	// Warm = L1 TLB hit (1) + L1D hit (4).
	if warm != 5 {
		t.Fatalf("warm access = %d cycles, want 5", warm)
	}
}

func TestCoreMemPortFaults(t *testing.T) {
	m := NewDefault()
	if _, err := m.CoreMemPort(0).Access(mem.VAddr(0xbad0000), false, 0); err == nil {
		t.Fatal("unmapped access did not fault")
	}
}

func TestNewCoreRunsTrace(t *testing.T) {
	m := NewDefault()
	c := m.NewCore(1, nil)
	b := isa.NewBuilder()
	addr := m.AS.AllocLines(256)
	for i := 0; i < 4; i++ {
		b.Load(addr+mem.VAddr(i*64), 8, 0)
	}
	end := c.Run(b.Take())
	if end == 0 || c.Err() != nil {
		t.Fatalf("trace run failed: end=%d err=%v", end, c.Err())
	}
	if c.Stats().Loads != 4 {
		t.Fatalf("loads = %d", c.Stats().Loads)
	}
}

func TestCHALatencyBandMatchesTableI(t *testing.T) {
	// Tab. I: core↔CHA accel latency 40-60 cycles. Check that a round
	// trip between a core and a mid-distance slice plus the scheme's
	// port overhead lands in that band.
	m := NewDefault()
	var total, n uint64
	for s := 0; s < m.Mesh.Stops(); s++ {
		total += m.Mesh.RoundTrip(0, noc.Stop(s))
		n++
	}
	avg := total / n
	// Average round trip plus the CHA port+reply overhead (18+10) should
	// be in the 40-60 band.
	withOverhead := avg + 28
	if withOverhead < 40 || withOverhead > 60 {
		t.Fatalf("CHA accel-core latency = %d, want within Tab. I band 40-60", withOverhead)
	}
}

func TestContiguousOption(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ContiguousFrames = true
	m := New(cfg)
	a := m.AS.Alloc(64*mem.PageSize, mem.PageSize)
	if !m.AS.Contiguous(a, 64*mem.PageSize) {
		t.Fatal("ContiguousFrames config not honored")
	}
}

func TestWarmLLCBringsLinesIn(t *testing.T) {
	m := NewDefault()
	a := m.AS.AllocLines(64 * mem.LineSize)
	m.WarmLLC(a, a+64*mem.LineSize)
	llc := m.Hier.LLC()
	for i := 0; i < 64; i++ {
		pa, err := m.AS.Translate(a + mem.VAddr(i*mem.LineSize))
		if err != nil {
			t.Fatal(err)
		}
		if !llc.Slice(llc.SliceFor(pa)).Contains(pa) {
			t.Fatalf("line %d not resident after WarmLLC", i)
		}
	}
	// Private caches must stay untouched.
	for c := 0; c < m.Cfg.Cores; c++ {
		h, mi, _, _ := m.Hier.L1D[c].Stats()
		if h+mi != 0 {
			t.Fatal("WarmLLC touched a private cache")
		}
	}
}

func TestWarmLLCSkipsUnmappedHoles(t *testing.T) {
	m := NewDefault()
	a := m.AS.AllocLines(mem.PageSize)
	// Range extends past the mapped page into unmapped space; must not
	// panic and must warm the mapped part.
	m.WarmLLC(a, a+mem.VAddr(4*mem.PageSize))
	pa, _ := m.AS.Translate(a)
	llc := m.Hier.LLC()
	if !llc.Slice(llc.SliceFor(pa)).Contains(pa) {
		t.Fatal("mapped prefix not warmed")
	}
}

// TestConfigMemStopsNoAliasing is the slice-aliasing regression for the
// hwdesc/dse materialization path: a built machine must own its
// MemStops, so mutating the caller's slice — or evaluating two machines
// built from one Config concurrently — cannot corrupt routing.
func TestConfigMemStopsNoAliasing(t *testing.T) {
	cfg := DefaultConfig()
	m1 := New(cfg)
	cfg.MemStops[0] = 23 // caller reuses and mutates its slice
	m2 := New(cfg)
	if m1.Cfg.MemStops[0] == 23 {
		t.Fatal("machine aliases the caller's MemStops slice")
	}
	if m2.Cfg.MemStops[0] != 23 {
		t.Fatal("second machine missed the caller's update")
	}
	m2.Cfg.MemStops[0] = 5
	if cfg.MemStops[0] != 23 {
		t.Fatal("mutating a machine's stored Cfg leaked into the caller's slice")
	}
}

func TestConfigClone(t *testing.T) {
	cfg := DefaultConfig()
	cl := cfg.Clone()
	cl.MemStops[1] = 0
	if cfg.MemStops[1] == 0 {
		t.Fatal("Clone shares MemStops storage")
	}
}

// TestNormalizedFillsGeometryDefaults pins the zero-value contract that
// keeps golden cycles stable: a Config without explicit cache/TLB
// geometry normalizes to exactly the Tab. II arrays.
func TestNormalizedFillsGeometryDefaults(t *testing.T) {
	n := Config{Cores: 24, Mesh: DefaultConfig().Mesh,
		MemStops: DefaultConfig().MemStops, PageWalkLatency: 30}.Normalized()
	d := DefaultConfig().Normalized()
	if n.L1D != d.L1D || n.L2 != d.L2 || n.LLCSlice != d.LLCSlice {
		t.Errorf("cache defaults: %+v vs %+v", n, d)
	}
	if n.L1TLB != d.L1TLB || n.L2TLB != d.L2TLB {
		t.Errorf("TLB defaults: %+v vs %+v", n, d)
	}
	// Explicit geometry survives normalization.
	c := DefaultConfig()
	c.L1D.SizeBytes = 64 << 10
	if got := c.Normalized().L1D.SizeBytes; got != 64<<10 {
		t.Errorf("explicit L1D size normalized away: %d", got)
	}
}
