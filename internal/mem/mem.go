// Package mem implements the simulated memory system underneath the QEI
// reproduction: a sparse physical memory, per-process virtual address
// spaces with 4 KB pages, a deliberately fragmenting frame allocator, and
// hierarchical page tables.
//
// The memory is functional, not just a timing fiction: every data
// structure the workloads query is laid out in these bytes, and both the
// software baseline and the QEI accelerator read the same bytes, so query
// results can be checked against host-side reference implementations.
//
// Fragmentation matters to the paper: QEI argues that queried data
// structures rarely sit in one contiguous huge page [8, 26], which is why
// the accelerator needs a real address-translation path. AddressSpace
// therefore hands out physical frames in a shuffled order by default so
// that virtually contiguous allocations are physically scattered.
package mem

import (
	"encoding/binary"
	"fmt"

	"qei/internal/faultinject"
	"qei/internal/trace"
)

const (
	// PageSize is the size of a virtual memory page (4 KB, matching the
	// paper's assumption that structures span many base pages).
	PageSize = 4096
	// PageShift is log2(PageSize).
	PageShift = 12
	// LineSize is the cacheline size (64 B), the granularity of QEI memory
	// micro-operations (Sec. IV-B).
	LineSize = 64
	// LineShift is log2(LineSize).
	LineShift = 6
)

// VAddr is a virtual address in a simulated address space.
type VAddr uint64

// PAddr is a physical address in simulated DRAM.
type PAddr uint64

// Line returns the address of the cacheline containing a.
func (a VAddr) Line() VAddr { return a &^ (LineSize - 1) }

// Extent is a contiguous virtual range: the unit the epoch-based
// reclaimer retires, poisons, and recycles (internal/epoch), and the
// unit the dstruct mutators report when they unlink a node.
type Extent struct {
	Addr VAddr
	Size uint64
}

// Overlaps reports whether the extent intersects [a, a+n).
func (e Extent) Overlaps(a VAddr, n uint64) bool {
	return uint64(a) < uint64(e.Addr)+e.Size && uint64(e.Addr) < uint64(a)+n
}

// Allocator is the subset of AddressSpace the structure mutators need
// to place new nodes. epoch.GC implements it too, recycling reclaimed
// extents instead of growing the address space forever.
type Allocator interface {
	Alloc(size, align uint64) VAddr
}

// ReadWatcher observes every successful virtual read (see
// SetReadWatch). The epoch reclaimer uses it to flag dereferences of
// reclaimed-but-not-yet-reused extents — the read-after-retire bug
// class the epoch protocol exists to prevent.
type ReadWatcher interface {
	ObserveRead(a VAddr, n uint64)
}

// Page returns the virtual page number containing a.
func (a VAddr) Page() uint64 { return uint64(a) >> PageShift }

// Offset returns the offset of a within its page.
func (a VAddr) Offset() uint64 { return uint64(a) & (PageSize - 1) }

// Line returns the address of the cacheline containing p.
func (p PAddr) Line() PAddr { return p &^ (LineSize - 1) }

// Frame returns the physical frame number containing p.
func (p PAddr) Frame() uint64 { return uint64(p) >> PageShift }

// physChunkShift sizes the chunks of the two-level frame table: 1024
// frames (4 MB of simulated memory) per chunk.
const (
	physChunkShift = 10
	physChunkSize  = 1 << physChunkShift
	physChunkMask  = physChunkSize - 1
)

// Physical is the machine's sparse physical memory: a pool of 4 KB frames
// allocated on demand. Frames live in a two-level flat table — a slice
// of fixed-size chunks — so the per-access path is two array index
// operations instead of a map lookup (this sits under every simulated
// byte the workloads touch).
type Physical struct {
	chunks    [][][]byte
	nextFrame uint64
}

// NewPhysical returns an empty physical memory. Frame 0 is reserved so a
// zero PAddr can act as "unmapped".
func NewPhysical() *Physical {
	return &Physical{nextFrame: 1}
}

// AllocFrame reserves the next physical frame and returns its number.
func (p *Physical) AllocFrame() uint64 {
	f := p.nextFrame
	p.nextFrame++
	return f
}

// FramesAllocated reports how many frames have been reserved.
func (p *Physical) FramesAllocated() uint64 { return p.nextFrame - 1 }

func (p *Physical) frame(f uint64) []byte {
	c := f >> physChunkShift
	if c < uint64(len(p.chunks)) {
		if ch := p.chunks[c]; ch != nil {
			if b := ch[f&physChunkMask]; b != nil {
				return b
			}
		}
	}
	return p.growFrame(f)
}

// growFrame is the cold path of frame: materialize the chunk and/or the
// frame's backing bytes.
func (p *Physical) growFrame(f uint64) []byte {
	c := f >> physChunkShift
	for uint64(len(p.chunks)) <= c {
		p.chunks = append(p.chunks, nil)
	}
	if p.chunks[c] == nil {
		p.chunks[c] = make([][]byte, physChunkSize)
	}
	b := p.chunks[c][f&physChunkMask]
	if b == nil {
		b = make([]byte, PageSize)
		p.chunks[c][f&physChunkMask] = b
	}
	return b
}

// ByteAt returns the byte at physical address a.
func (p *Physical) ByteAt(a PAddr) byte {
	return p.frame(a.Frame())[uint64(a)&(PageSize-1)]
}

// SetByteAt stores b at physical address a.
func (p *Physical) SetByteAt(a PAddr, b byte) {
	p.frame(a.Frame())[uint64(a)&(PageSize-1)] = b
}

// Read copies len(dst) bytes starting at physical address a. The range may
// cross frame boundaries.
func (p *Physical) Read(a PAddr, dst []byte) {
	for len(dst) > 0 {
		off := uint64(a) & (PageSize - 1)
		n := copy(dst, p.frame(a.Frame())[off:])
		dst = dst[n:]
		a += PAddr(n)
	}
}

// Write copies src into physical memory starting at address a.
func (p *Physical) Write(a PAddr, src []byte) {
	for len(src) > 0 {
		off := uint64(a) & (PageSize - 1)
		n := copy(p.frame(a.Frame())[off:], src)
		src = src[n:]
		a += PAddr(n)
	}
}

// PageFaultError reports an access to an unmapped virtual page. QEI
// surfaces these to the core through its EXCEPTION state (Sec. IV-D).
type PageFaultError struct {
	Addr VAddr
}

func (e *PageFaultError) Error() string {
	return fmt.Sprintf("mem: page fault at virtual address %#x", uint64(e.Addr))
}

// pageChunkShift sizes the chunks of the two-level page table: 512
// pages (2 MB of virtual address space) per chunk.
const (
	pageChunkShift = 9
	pageChunkSize  = 1 << pageChunkShift
	pageChunkMask  = pageChunkSize - 1
)

// unmappedFrame marks an unmapped page-table entry (frame numbers are
// small positive integers, so all-ones is free).
const unmappedFrame = ^uint64(0)

// AddressSpace is a per-process virtual address space: a page table over
// shared physical memory plus a simple bump allocator for virtual ranges.
type AddressSpace struct {
	phys *Physical
	// pt maps virtual page number to physical frame number through a
	// two-level flat table: pt[vp>>pageChunkShift][vp&pageChunkMask].
	// A nil chunk or an unmappedFrame entry means unmapped. Pages are
	// only ever added (there is no unmap), which is what makes the
	// last-page cache below safe without invalidation.
	pt     [][]uint64
	mapped int
	// lastVP/lastFrame cache the most recent successful translation;
	// dependent pointer chases hit the same page repeatedly, so this
	// answers most Translate calls with one comparison. lastVP starts
	// as unmappedFrame, which no valid page number equals.
	lastVP    uint64
	lastFrame uint64
	// brk is the next unallocated virtual address.
	brk VAddr
	// frameStride scatters consecutive virtual pages across physical
	// frames. A stride of 1 would be the contiguous (huge-page-friendly)
	// layout prior accelerators assume; the default of a large odd stride
	// models the fragmented layouts cloud workloads actually see.
	frameStride uint64
	walkLevels  int
	// tr receives page_map instants (see SetTracer); nil disables them.
	tr *trace.Tracer
	// fi may corrupt data returned by Read while armed (see
	// SetFaultInjector); nil disables injection.
	fi *faultinject.Injector
	// watch observes successful reads (see SetReadWatch); nil disables
	// the hook, so read-only systems pay one comparison.
	watch ReadWatcher
}

// SetReadWatch installs (or clears, with nil) a watcher that sees every
// successful Read. The hook fires after the copy, on both the
// single-page fast path and the multi-page path, so a watcher observes
// exactly the ranges the simulated machine dereferenced.
func (as *AddressSpace) SetReadWatch(w ReadWatcher) { as.watch = w }

// ASOption configures an AddressSpace.
type ASOption func(*AddressSpace)

// WithContiguousFrames lays virtual pages out over physically consecutive
// frames — the huge-page assumption made by HALO-style designs. Used by
// ablation experiments.
func WithContiguousFrames() ASOption {
	return func(as *AddressSpace) { as.frameStride = 1 }
}

// WithBase sets the first virtual address handed out by Alloc.
func WithBase(base VAddr) ASOption {
	return func(as *AddressSpace) { as.brk = base }
}

// NewAddressSpace creates an address space over phys. By default virtual
// allocations begin at 0x10000 (so that VAddr 0 is an unmapped NULL) and
// physical frames are fragmented.
func NewAddressSpace(phys *Physical, opts ...ASOption) *AddressSpace {
	as := &AddressSpace{
		phys:        phys,
		lastVP:      unmappedFrame,
		brk:         0x10000,
		frameStride: 0, // 0 = on-demand, naturally interleaved
		walkLevels:  4, // x86-64 style 4-level walk
	}
	for _, o := range opts {
		o(as)
	}
	return as
}

// WalkLevels reports the number of page-table levels a hardware walker
// traverses on a TLB miss (4, x86-64 style).
func (as *AddressSpace) WalkLevels() int { return as.walkLevels }

// Brk returns the next virtual address the allocator would hand out.
func (as *AddressSpace) Brk() VAddr { return as.brk }

// MappedPages reports how many virtual pages are mapped.
func (as *AddressSpace) MappedPages() int { return as.mapped }

// frameOf looks up the frame backing virtual page vp.
func (as *AddressSpace) frameOf(vp uint64) (uint64, bool) {
	c := vp >> pageChunkShift
	if c < uint64(len(as.pt)) {
		if ch := as.pt[c]; ch != nil {
			if f := ch[vp&pageChunkMask]; f != unmappedFrame {
				return f, true
			}
		}
	}
	return 0, false
}

// setFrame installs vp → frame, growing the table as needed.
func (as *AddressSpace) setFrame(vp, frame uint64) {
	c := vp >> pageChunkShift
	for uint64(len(as.pt)) <= c {
		as.pt = append(as.pt, nil)
	}
	if as.pt[c] == nil {
		ch := make([]uint64, pageChunkSize)
		for i := range ch {
			ch[i] = unmappedFrame
		}
		as.pt[c] = ch
	}
	as.pt[c][vp&pageChunkMask] = frame
}

// Alloc reserves size bytes of virtual memory aligned to align (which must
// be a power of two, at least 1) and maps the backing pages. It returns
// the starting virtual address.
func (as *AddressSpace) Alloc(size uint64, align uint64) VAddr {
	if align == 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	base := (uint64(as.brk) + align - 1) &^ (align - 1)
	as.brk = VAddr(base + size)
	if size == 0 {
		return VAddr(base)
	}
	firstPage := base >> PageShift
	lastPage := (base + size - 1) >> PageShift
	for vp := firstPage; vp <= lastPage; vp++ {
		as.mapPage(vp)
	}
	return VAddr(base)
}

// AllocLines reserves size bytes aligned to a cacheline boundary.
func (as *AddressSpace) AllocLines(size uint64) VAddr {
	return as.Alloc(size, LineSize)
}

func (as *AddressSpace) mapPage(vp uint64) {
	if _, ok := as.frameOf(vp); ok {
		return
	}
	if as.tr != nil {
		as.tr.Point("mem", "page_map", uint64(as.mapped), trace.PidMem, 0, nil)
	}
	var frame uint64
	if as.frameStride == 1 {
		frame = as.phys.AllocFrame()
	} else {
		// Scatter: allocate a fresh frame but interleave with a second
		// allocation every few pages so consecutive virtual pages land on
		// non-consecutive frames. Deterministic, no RNG required.
		frame = as.phys.AllocFrame()
		if vp%3 == 1 {
			// Burn a frame to create a hole; models other allocations
			// interleaving in a long-running server.
			as.phys.AllocFrame()
		}
	}
	as.setFrame(vp, frame)
	as.mapped++
}

// Translate converts a virtual address to a physical address, or reports a
// page fault if the page is unmapped.
func (as *AddressSpace) Translate(a VAddr) (PAddr, error) {
	vp := a.Page()
	if vp == as.lastVP {
		return PAddr(as.lastFrame<<PageShift | a.Offset()), nil
	}
	frame, ok := as.frameOf(vp)
	if !ok {
		return 0, &PageFaultError{Addr: a}
	}
	as.lastVP, as.lastFrame = vp, frame
	return PAddr(frame<<PageShift | a.Offset()), nil
}

// Contiguous reports whether the size-byte range at base maps to
// physically consecutive frames (i.e. would fit a huge-page assumption).
func (as *AddressSpace) Contiguous(base VAddr, size uint64) bool {
	if size == 0 {
		return true
	}
	first := base.Page()
	last := (uint64(base) + size - 1) >> PageShift
	prev, ok := as.frameOf(first)
	if !ok {
		return false
	}
	for vp := first + 1; vp <= last; vp++ {
		f, ok := as.frameOf(vp)
		if !ok || f != prev+1 {
			return false
		}
		prev = f
	}
	return true
}

// Read copies len(dst) bytes from virtual address a, faulting if any page
// in the range is unmapped. Ranges within one page — every dstruct
// field decode and almost every key read — take a single-translate,
// single-copy fast path.
func (as *AddressSpace) Read(a VAddr, dst []byte) error {
	if n := uint64(len(dst)); n > 0 && n <= PageSize-a.Offset() {
		pa, err := as.Translate(a)
		if err != nil {
			return err
		}
		copy(dst, as.phys.frame(pa.Frame())[a.Offset():])
		// The injector sees the same post-range address the multi-page
		// path below would hand it.
		as.fi.MaybeFlip(uint64(a)+n, dst)
		if as.watch != nil {
			as.watch.ObserveRead(a, n)
		}
		return nil
	}
	origDst := dst
	for len(dst) > 0 {
		pa, err := as.Translate(a)
		if err != nil {
			return err
		}
		n := int(PageSize - a.Offset())
		if n > len(dst) {
			n = len(dst)
		}
		as.phys.Read(pa, dst[:n])
		dst = dst[n:]
		a += VAddr(n)
	}
	// A bit-flip corrupts only this read's view of the data — stored
	// memory stays intact, modelling a transient upset on the read path.
	as.fi.MaybeFlip(uint64(a), origDst)
	if as.watch != nil {
		as.watch.ObserveRead(a-VAddr(len(origDst)), uint64(len(origDst)))
	}
	return nil
}

// Write copies src to virtual address a, faulting if unmapped.
func (as *AddressSpace) Write(a VAddr, src []byte) error {
	if n := uint64(len(src)); n > 0 && n <= PageSize-a.Offset() {
		pa, err := as.Translate(a)
		if err != nil {
			return err
		}
		copy(as.phys.frame(pa.Frame())[a.Offset():], src)
		return nil
	}
	for len(src) > 0 {
		pa, err := as.Translate(a)
		if err != nil {
			return err
		}
		n := int(PageSize - a.Offset())
		if n > len(src) {
			n = len(src)
		}
		as.phys.Write(pa, src[:n])
		src = src[n:]
		a += VAddr(n)
	}
	return nil
}

// MustRead is Read but panics on fault; for use by builders that have just
// allocated the range themselves.
func (as *AddressSpace) MustRead(a VAddr, dst []byte) {
	if err := as.Read(a, dst); err != nil {
		panic(err)
	}
}

// MustWrite is Write but panics on fault.
func (as *AddressSpace) MustWrite(a VAddr, src []byte) {
	if err := as.Write(a, src); err != nil {
		panic(err)
	}
}

// ReadU64 reads a little-endian uint64 at a.
func (as *AddressSpace) ReadU64(a VAddr) (uint64, error) {
	var buf [8]byte
	if err := as.Read(a, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// WriteU64 writes a little-endian uint64 at a.
func (as *AddressSpace) WriteU64(a VAddr, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return as.Write(a, buf[:])
}

// ReadU32 reads a little-endian uint32 at a.
func (as *AddressSpace) ReadU32(a VAddr) (uint32, error) {
	var buf [4]byte
	if err := as.Read(a, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

// WriteU32 writes a little-endian uint32 at a.
func (as *AddressSpace) WriteU32(a VAddr, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return as.Write(a, buf[:])
}

// ReadU16 reads a little-endian uint16 at a.
func (as *AddressSpace) ReadU16(a VAddr) (uint16, error) {
	var buf [2]byte
	if err := as.Read(a, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(buf[:]), nil
}

// WriteU16 writes a little-endian uint16 at a.
func (as *AddressSpace) WriteU16(a VAddr, v uint16) error {
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], v)
	return as.Write(a, buf[:])
}

// LinesTouched returns how many distinct cachelines the byte range
// [a, a+size) spans — the number of memory micro-operations QEI needs to
// stream it.
func LinesTouched(a VAddr, size uint64) int {
	if size == 0 {
		return 0
	}
	first := uint64(a) >> LineShift
	last := (uint64(a) + size - 1) >> LineShift
	return int(last - first + 1)
}
