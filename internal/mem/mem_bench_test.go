package mem

import "testing"

// BenchmarkMemAccessReadU64 measures the dependent-load pattern of the
// dstruct decoders: repeated 8-byte reads spread over a structure.
func BenchmarkMemAccessReadU64(b *testing.B) {
	b.ReportAllocs()
	phys := NewPhysical()
	as := NewAddressSpace(phys)
	base := as.Alloc(1<<20, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := base + VAddr((uint64(i)*4096+uint64(i)*8)%(1<<20-8))
		if _, err := as.ReadU64(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemAccessReadKey measures small in-page range reads (key
// compares) through the single-page fast path.
func BenchmarkMemAccessReadKey(b *testing.B) {
	b.ReportAllocs()
	phys := NewPhysical()
	as := NewAddressSpace(phys)
	base := as.Alloc(1<<20, 64)
	var key [16]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := base + VAddr((uint64(i)*64)%(1<<20-16))
		if err := as.Read(a, key[:]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemAccessTranslate measures raw translation with the page
// locality real pointer chases exhibit (several hits per page).
func BenchmarkMemAccessTranslate(b *testing.B) {
	b.ReportAllocs()
	phys := NewPhysical()
	as := NewAddressSpace(phys)
	base := as.Alloc(1<<22, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := base + VAddr((uint64(i)*1024)%(1<<22))
		if _, err := as.Translate(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemAccessCrossPage measures multi-page range reads (the slow
// path the fast path must not regress).
func BenchmarkMemAccessCrossPage(b *testing.B) {
	b.ReportAllocs()
	phys := NewPhysical()
	as := NewAddressSpace(phys)
	base := as.Alloc(1<<20, 4096)
	buf := make([]byte, 3*PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := base + VAddr((uint64(i)*128)%(1<<19))
		if err := as.Read(a, buf); err != nil {
			b.Fatal(err)
		}
	}
}
