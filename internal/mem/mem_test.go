package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPhysicalReadWriteRoundTrip(t *testing.T) {
	p := NewPhysical()
	data := []byte("the quick brown fox jumps over the lazy dog")
	// Straddle a frame boundary deliberately.
	addr := PAddr(PageSize - 10)
	p.Write(addr, data)
	got := make([]byte, len(data))
	p.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: got %q want %q", got, data)
	}
}

func TestPhysicalZeroFill(t *testing.T) {
	p := NewPhysical()
	if b := p.ByteAt(PAddr(12345)); b != 0 {
		t.Fatalf("fresh memory reads %d, want 0", b)
	}
}

func TestAllocMapsPages(t *testing.T) {
	p := NewPhysical()
	as := NewAddressSpace(p)
	a := as.Alloc(3*PageSize+100, 64)
	if a == 0 {
		t.Fatal("Alloc returned NULL")
	}
	if uint64(a)%64 != 0 {
		t.Fatalf("Alloc returned unaligned address %#x", uint64(a))
	}
	// Every page of the range must translate.
	for off := uint64(0); off < 3*PageSize+100; off += PageSize {
		if _, err := as.Translate(a + VAddr(off)); err != nil {
			t.Fatalf("Translate(%#x): %v", uint64(a)+off, err)
		}
	}
}

func TestUnmappedPageFaults(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	_, err := as.Translate(VAddr(0xdead0000))
	var pf *PageFaultError
	if err == nil {
		t.Fatal("expected page fault")
	}
	if !asPageFault(err, &pf) {
		t.Fatalf("error %v is not a PageFaultError", err)
	}
	if pf.Addr != VAddr(0xdead0000) {
		t.Fatalf("fault address %#x, want 0xdead0000", uint64(pf.Addr))
	}
}

func asPageFault(err error, out **PageFaultError) bool {
	pf, ok := err.(*PageFaultError)
	if ok {
		*out = pf
	}
	return ok
}

func TestVirtualReadWriteAcrossPages(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	a := as.Alloc(4*PageSize, PageSize)
	data := make([]byte, 2*PageSize+37)
	for i := range data {
		data[i] = byte(i * 7)
	}
	start := a + VAddr(PageSize-19)
	if err := as.Write(start, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.Read(start, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip mismatch")
	}
}

func TestFragmentedByDefault(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	a := as.Alloc(64*PageSize, PageSize)
	if as.Contiguous(a, 64*PageSize) {
		t.Fatal("default allocation should be physically fragmented")
	}
}

func TestContiguousOption(t *testing.T) {
	as := NewAddressSpace(NewPhysical(), WithContiguousFrames())
	a := as.Alloc(64*PageSize, PageSize)
	if !as.Contiguous(a, 64*PageSize) {
		t.Fatal("WithContiguousFrames allocation should be physically contiguous")
	}
}

func TestScalarAccessors(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	a := as.Alloc(64, 8)
	if err := as.WriteU64(a, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := as.ReadU64(a)
	if err != nil || v != 0x1122334455667788 {
		t.Fatalf("ReadU64 = %#x, %v", v, err)
	}
	if err := as.WriteU32(a+8, 0xcafebabe); err != nil {
		t.Fatal(err)
	}
	v32, err := as.ReadU32(a + 8)
	if err != nil || v32 != 0xcafebabe {
		t.Fatalf("ReadU32 = %#x, %v", v32, err)
	}
	if err := as.WriteU16(a+12, 0xbeef); err != nil {
		t.Fatal(err)
	}
	v16, err := as.ReadU16(a + 12)
	if err != nil || v16 != 0xbeef {
		t.Fatalf("ReadU16 = %#x, %v", v16, err)
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	a := as.Alloc(100, 1)
	b := as.Alloc(100, 1)
	if uint64(b) < uint64(a)+100 {
		t.Fatalf("allocations overlap: a=%#x b=%#x", uint64(a), uint64(b))
	}
	as.MustWrite(a, bytes.Repeat([]byte{0xaa}, 100))
	as.MustWrite(b, bytes.Repeat([]byte{0xbb}, 100))
	got := make([]byte, 100)
	as.MustRead(a, got)
	for _, c := range got {
		if c != 0xaa {
			t.Fatal("write to b clobbered a")
		}
	}
}

func TestLinesTouched(t *testing.T) {
	cases := []struct {
		addr VAddr
		size uint64
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 64, 1},
		{0, 65, 2},
		{63, 2, 2},
		{64, 64, 1},
		{10, 128, 3},
	}
	for _, c := range cases {
		if got := LinesTouched(c.addr, c.size); got != c.want {
			t.Errorf("LinesTouched(%d, %d) = %d, want %d", c.addr, c.size, got, c.want)
		}
	}
}

func TestLineAndPageHelpers(t *testing.T) {
	a := VAddr(0x12345)
	if a.Line() != VAddr(0x12340) {
		t.Fatalf("Line() = %#x", uint64(a.Line()))
	}
	if a.Page() != 0x12 {
		t.Fatalf("Page() = %#x", a.Page())
	}
	if a.Offset() != 0x345 {
		t.Fatalf("Offset() = %#x", a.Offset())
	}
	p := PAddr(0x54321)
	if p.Line() != PAddr(0x54300) {
		t.Fatalf("PAddr.Line() = %#x", uint64(p.Line()))
	}
	if p.Frame() != 0x54 {
		t.Fatalf("PAddr.Frame() = %#x", p.Frame())
	}
}

// Property: any written payload at any in-range offset reads back intact.
func TestPropertyRoundTrip(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	region := as.Alloc(1<<20, PageSize) // 1 MiB playground
	f := func(off uint32, payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		start := region + VAddr(uint64(off)%(1<<20-uint64(len(payload))%(1<<20)))
		if uint64(start)+uint64(len(payload)) > uint64(region)+1<<20 {
			return true // skip out-of-range combos
		}
		if err := as.Write(start, payload); err != nil {
			return false
		}
		got := make([]byte, len(payload))
		if err := as.Read(start, got); err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: translation is a bijection per page — two distinct mapped
// virtual pages never share a physical frame.
func TestPropertyNoFrameAliasing(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	seen := map[uint64]uint64{}
	for i := 0; i < 200; i++ {
		a := as.Alloc(PageSize, PageSize)
		pa, err := as.Translate(a)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[pa.Frame()]; dup {
			t.Fatalf("frame %d backs both vpage %d and vpage %d", pa.Frame(), prev, a.Page())
		}
		seen[pa.Frame()] = a.Page()
	}
}

// recordingWatcher collects every observed read range.
type recordingWatcher struct {
	ranges []Extent
}

func (w *recordingWatcher) ObserveRead(a VAddr, n uint64) {
	w.ranges = append(w.ranges, Extent{Addr: a, Size: n})
}

// TestReadWatchObservesBothPaths checks the read-watch hook reports the
// exact dereferenced range on the single-page fast path and on the
// multi-page slow path, and that clearing it silences the hook.
func TestReadWatchObservesBothPaths(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	w := &recordingWatcher{}
	as.SetReadWatch(w)

	small := as.Alloc(64, LineSize)
	var buf8 [8]byte
	if err := as.Read(small, buf8[:]); err != nil {
		t.Fatal(err)
	}
	big := as.Alloc(3*PageSize, PageSize)
	span := make([]byte, 2*PageSize+100)
	if err := as.Read(big+50, span); err != nil {
		t.Fatal(err)
	}
	want := []Extent{
		{Addr: small, Size: 8},
		{Addr: big + 50, Size: uint64(len(span))},
	}
	if len(w.ranges) != len(want) {
		t.Fatalf("observed %d reads, want %d: %+v", len(w.ranges), len(want), w.ranges)
	}
	for i, r := range w.ranges {
		if r != want[i] {
			t.Fatalf("read %d observed as %+v, want %+v", i, r, want[i])
		}
	}

	as.SetReadWatch(nil)
	if err := as.Read(small, buf8[:]); err != nil {
		t.Fatal(err)
	}
	if len(w.ranges) != len(want) {
		t.Fatal("cleared watcher still observed a read")
	}
}

// TestExtentOverlaps pins the half-open overlap arithmetic the epoch
// reclaimer's read watch depends on.
func TestExtentOverlaps(t *testing.T) {
	e := Extent{Addr: 100, Size: 50}
	cases := []struct {
		a    VAddr
		n    uint64
		want bool
	}{
		{0, 100, false},  // ends exactly at the extent
		{0, 101, true},   // one byte in
		{149, 1, true},   // last byte
		{150, 10, false}, // starts exactly past it
		{120, 5, true},   // inside
		{90, 200, true},  // covers
		{100, 50, true},  // exact
	}
	for _, c := range cases {
		if got := e.Overlaps(c.a, c.n); got != c.want {
			t.Fatalf("Overlaps(%d,%d) = %v, want %v", c.a, c.n, got, c.want)
		}
	}
}
