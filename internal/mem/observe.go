package mem

import (
	"qei/internal/faultinject"
	"qei/internal/metrics"
	"qei/internal/trace"
)

// RegisterMetrics publishes physical-memory occupancy under r.
func (p *Physical) RegisterMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.RegisterFunc("frames_allocated", p.FramesAllocated)
}

// RegisterMetrics publishes address-space shape under r.
func (as *AddressSpace) RegisterMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.RegisterFunc("mapped_pages", func() uint64 { return uint64(as.MappedPages()) })
	r.RegisterFunc("brk", func() uint64 { return uint64(as.brk) })
}

// SetTracer attaches the unified tracer; every subsequent page mapping
// emits a "page_map" instant on the memory track. Page mappings happen
// during workload setup, before simulated time starts, so they are
// stamped with a mapping sequence number rather than a cycle — they
// cluster at the left edge of the timeline.
func (as *AddressSpace) SetTracer(tr *trace.Tracer) { as.tr = tr }

// SetFaultInjector attaches the fault-injection harness; while fi is
// armed, Read may flip one bit of the returned data (the stored bytes
// stay intact). A nil injector keeps reads exact and free.
func (as *AddressSpace) SetFaultInjector(fi *faultinject.Injector) { as.fi = fi }
