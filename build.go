package qei

import (
	"fmt"

	"qei/internal/dstruct"
	"qei/internal/mem"
)

// BuildOption configures the generic Build entrypoint for the structure
// kinds that take extra parameters.
type BuildOption func(*buildConfig)

type buildConfig struct {
	payload int
}

// WithBSTPayload sets the per-node object-body byte count of a KindBST
// build (the JVM object-tree shape). Other kinds ignore it. Default 0.
func WithBSTPayload(n int) BuildOption {
	return func(c *buildConfig) { c.payload = n }
}

// Build is the generic table constructor: one entrypoint for every
// built-in structure kind, selected by StructKind — the serving layer's
// backend adapters and any kind-parameterized caller use it instead of
// switching over the seven typed Build* methods (which are thin
// wrappers around this).
//
// keys must share one length; values[i] is reported when keys[i]
// matches. For KindTrie the keys are the dictionary's keywords
// (variable length, values non-zero) and the table answers Scan
// queries. KindBST takes WithBSTPayload. KindCustom has no generic
// builder — register firmware and lay the structure out explicitly —
// and unknown kinds return ErrUnknownKind.
func (s *System) Build(kind StructKind, keys [][]byte, values []uint64, opts ...BuildOption) (Table, error) {
	cfg := buildConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	if kind == KindTrie {
		return s.buildTrie(keys, values)
	}
	if kind == KindCustom {
		return Table{}, fmt.Errorf("qei: %w: custom firmware tables have no generic builder", ErrUnknownKind)
	}
	if err := validateKV(keys, values); err != nil {
		return Table{}, err
	}
	var header mem.VAddr
	var keyLen uint16
	switch kind {
	case KindCuckoo:
		c := dstruct.BuildCuckoo(s.m.AS, uint64(len(keys)/2), 8, 0x9E37, keys, values)
		header, keyLen = c.HeaderAddr, c.KeyLen
	case KindHashTable:
		h := dstruct.BuildHashTable(s.m.AS, uint64(len(keys)/4), 0x51ED, keys, values)
		header, keyLen = h.HeaderAddr, h.KeyLen
	case KindSkipList:
		sl := dstruct.BuildSkipList(s.m.AS, 7, keys, values)
		header, keyLen = sl.HeaderAddr, sl.KeyLen
	case KindBST:
		if cfg.payload < 0 {
			return Table{}, fmt.Errorf("qei: negative payload %d", cfg.payload)
		}
		b := dstruct.BuildBST(s.m.AS, 7, cfg.payload, keys, values)
		header, keyLen = b.HeaderAddr, b.KeyLen
	case KindLinkedList:
		l := dstruct.BuildLinkedList(s.m.AS, keys, values)
		header, keyLen = l.HeaderAddr, l.KeyLen
	case KindBTree:
		bt := dstruct.BuildBTree(s.m.AS, 16, keys, values)
		header, keyLen = bt.HeaderAddr, bt.KeyLen
	default:
		return Table{}, fmt.Errorf("qei: %w: %s", ErrUnknownKind, kind)
	}
	return Table{header: header, Kind: kind, KeyLen: int(keyLen)}, nil
}

// buildTrie is the trie arm of Build (and the body of BuildTrie): keys
// are the dictionary keywords, values the non-zero match reports.
func (s *System) buildTrie(keywords [][]byte, values []uint64) (Table, error) {
	if len(keywords) != len(values) {
		return Table{}, fmt.Errorf("qei: %d keywords but %d values", len(keywords), len(values))
	}
	if len(keywords) == 0 {
		return Table{}, fmt.Errorf("qei: empty dictionary")
	}
	for i, v := range values {
		if v == 0 {
			return Table{}, fmt.Errorf("qei: value %d is zero (reserved for no-match)", i)
		}
	}
	tr := dstruct.BuildTrie(s.m.AS, keywords, values)
	return Table{header: tr.HeaderAddr, Kind: KindTrie, KeyLen: 1}, nil
}
