// KV store: a RocksDB-memtable-style scenario — a skip list of sorted
// string keys pointing at large values, read through the accelerator
// while the host thread does other work (get-heavy serving, Sec. VI-B).
//
// The example also demonstrates the exception path of Sec. IV-D: a query
// against a corrupted header faults architecturally, software observes
// the error, and the system keeps serving.
package main

import (
	"fmt"
	"math/rand"

	"qei"
)

func main() {
	sys := qei.NewSystem(qei.CoreIntegrated)
	rng := rand.New(rand.NewSource(3))

	// 10k items, 100-byte keys — the paper's db_bench configuration.
	const items = 10000
	keys := make([][]byte, items)
	valuePtrs := make([]uint64, items)
	for i := range keys {
		keys[i] = make([]byte, 100)
		rng.Read(keys[i])
		// The 900-byte values live in simulated memory; the memtable
		// stores pointers to them.
		payload := make([]byte, 900)
		rng.Read(payload)
		valuePtrs[i] = sys.Write(payload)
	}
	memtable, err := sys.BuildSkipList(keys, valuePtrs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("memtable ready: %d items, 100B keys / 900B values\n", items)

	// Random gets.
	var hits int
	var totalLatency uint64
	const gets = 200
	for i := 0; i < gets; i++ {
		k := keys[rng.Intn(items)]
		res, err := sys.Query(memtable, k)
		if err != nil {
			panic(err)
		}
		if res.Found {
			hits++
			totalLatency += res.Latency
		}
	}
	fmt.Printf("%d gets, %d hits, avg latency %.1f cycles\n",
		gets, hits, float64(totalLatency)/float64(hits))

	// Range-adjacent misses: probe keys not in the table.
	misses := 0
	for i := 0; i < 50; i++ {
		k := make([]byte, 100)
		rng.Read(k)
		res, err := sys.Query(memtable, k)
		if err != nil {
			panic(err)
		}
		if !res.Found {
			misses++
		}
	}
	fmt.Printf("50 random probes: %d correctly reported absent\n", misses)

	// Exception path: a header pointing into unmapped memory. The
	// accelerator transitions the query to its EXCEPTION state and
	// reports the fault to software through the result queue; the
	// process is not killed and the store keeps serving.
	bad := qei.Table{Kind: qei.KindSkipList, KeyLen: 100}
	_ = bad // a zero Table has a NULL header — query it via a corrupt copy
	res, err := sys.Query(qei.Table{}, keys[0])
	if err == nil && res.Err == nil {
		panic("corrupt header did not fault")
	}
	fmt.Println("query against corrupt header: fault reported to software, store still live")

	// Prove the store is still live.
	res, err = sys.Query(memtable, keys[0])
	if err != nil || !res.Found {
		panic("store unusable after exception")
	}
	fmt.Println("post-exception get verified")

	st := sys.Stats()
	fmt.Printf("accelerator: %d queries, %d exceptions, %d remote compares (100B keys compare near-data)\n",
		st.Queries, st.Exceptions, st.RemoteCompares)
}
