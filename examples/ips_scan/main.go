// IPS scan: the Snort-style intrusion-prevention scenario — a keyword
// dictionary compiled into an Aho-Corasick trie, scanning packet
// payloads for malicious literals (Sec. VI-B). One accelerated query
// scans a whole payload; the match list streams back to software.
package main

import (
	"fmt"
	"math/rand"

	"qei"
)

func main() {
	sys := qei.NewSystem(qei.CoreIntegrated)
	rng := rand.New(rand.NewSource(11))

	// A dictionary of suspicious literals plus random filler keywords
	// (real rule sets mix short tokens and long signatures).
	signatures := [][]byte{
		[]byte("etc/passwd"), []byte("cmd.exe"), []byte("SELECT *"),
		[]byte("../../"), []byte("<script>"), []byte("eval("),
	}
	values := make([]uint64, 0, len(signatures)+2000)
	dict := make([][]byte, 0, len(signatures)+2000)
	for i, s := range signatures {
		dict = append(dict, s)
		values = append(values, uint64(i)+1)
	}
	for len(dict) < 2006 {
		w := make([]byte, 4+rng.Intn(10))
		for i := range w {
			w[i] = byte('a' + rng.Intn(26))
		}
		dict = append(dict, w)
		values = append(values, uint64(len(dict)))
	}
	trie, err := sys.BuildTrie(dict, values)
	if err != nil {
		panic(err)
	}
	fmt.Printf("IPS ready: %d keywords compiled into an Aho-Corasick trie\n", len(dict))

	// Benign traffic.
	benign := make([]byte, 1024)
	for i := range benign {
		benign[i] = byte('A' + rng.Intn(26))
	}
	res, err := sys.Scan(trie, benign)
	if err != nil {
		panic(err)
	}
	fmt.Printf("benign 1KB payload: %d matches, scanned in %d cycles (%.1f cycles/byte)\n",
		len(res.Matches), res.Latency, float64(res.Latency)/1024)

	// Malicious request.
	attack := []byte("GET /download?file=../../etc/passwd&run=cmd.exe HTTP/1.1")
	res, err = sys.Scan(trie, attack)
	if err != nil {
		panic(err)
	}
	fmt.Printf("attack payload: %d signature hits:", len(res.Matches))
	for _, m := range res.Matches {
		if int(m) <= len(signatures) {
			fmt.Printf(" %q", signatures[m-1])
		}
	}
	fmt.Println()
	if len(res.Matches) < 3 {
		panic("planted signatures not all detected")
	}

	// Throughput sweep: scan a batch of mixed payloads.
	var totalBytes int
	start := sys.Now()
	for i := 0; i < 24; i++ {
		p := make([]byte, 512)
		for j := range p {
			p[j] = byte('a' + rng.Intn(26))
		}
		if i%4 == 0 { // plant a signature in every 4th payload
			sig := signatures[rng.Intn(len(signatures))]
			copy(p[rng.Intn(len(p)-len(sig)):], sig)
		}
		if _, err := sys.Scan(trie, p); err != nil {
			panic(err)
		}
		totalBytes += len(p)
	}
	cycles := sys.Now() - start
	fmt.Printf("scanned %d bytes of traffic in %d cycles (%.2f cycles/byte)\n",
		totalBytes, cycles, float64(cycles)/float64(totalBytes))

	st := sys.Stats()
	fmt.Printf("accelerator: %d scans, %d CFA transitions, %d cachelines fetched\n",
		st.Queries, st.Transitions, st.MemLines)
}
