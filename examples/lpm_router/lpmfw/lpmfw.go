// Package lpmfw is the IPv4 longest-prefix-match firmware from the
// lpm_router example, split into an importable package so tests (and
// other programs) can register or validate it without running the demo.
// See examples/lpm_router for the full walkthrough, node layout, and a
// host-side reference implementation.
//
// The structure is a binary trie over address bits. Each 32-byte node:
//
//	offset 0:  child[0] pointer (8 B)
//	offset 8:  child[1] pointer (8 B)
//	offset 16: next-hop value (8 B)
//	offset 24: has-route flag (8 B)
//
// A lookup walks one bit per level, remembering the deepest node with a
// route — the longest matching prefix. Unlike the built-in exact-match
// CFAs, the result is a best-effort match, which the firmware tracks in
// the QST scratch fields.
package lpmfw

import (
	"encoding/binary"
	"fmt"

	"qei"
)

// TypeCode is the header type byte the LPM firmware claims.
const TypeCode uint8 = 40

// lpmWalk is the single walking state.
const lpmWalk qei.FirmwareState = 1

// Firmware is the CFA for the binary LPM trie.
type Firmware struct{}

// TypeCode implements qei.Firmware.
func (Firmware) TypeCode() uint8 { return TypeCode }

// Name implements qei.Firmware.
func (Firmware) Name() string { return "lpm" }

// NumStates implements qei.Firmware.
func (Firmware) NumStates() int { return 2 }

// Step implements qei.Firmware.
func (Firmware) Step(q *qei.FirmwareQuery, state qei.FirmwareState) qei.FirmwareRequest {
	switch state {
	case qei.FirmwareStart:
		if q.Header.Type != TypeCode {
			return qei.FirmwareFail(fmt.Errorf("lpm firmware on %d header", q.Header.Type))
		}
		q.Node = q.Header.Root // current trie node
		q.Pos = 0              // bit position
		q.AltNode = 0          // best-match value so far (reuse scratch)
		q.Level = 0            // best-match valid flag
		return qei.FirmwareContinue(lpmWalk, true,
			qei.FirmwareMemRead(uint64(q.KeyAddr), 4),
			qei.FirmwareMemRead(uint64(q.Header.Root), 32))

	case lpmWalk:
		if q.Node == 0 || q.Pos >= 32 {
			return qei.FirmwareFinish(q.Level != 0, uint64(q.AltNode))
		}
		node := uint64(q.Node)
		// Functional read of the node.
		hasRoute, err := q.AS.ReadU64(q.Node + 24)
		if err != nil {
			return qei.FirmwareFail(err)
		}
		if hasRoute != 0 {
			v, err := q.AS.ReadU64(q.Node + 16)
			if err != nil {
				return qei.FirmwareFail(err)
			}
			q.AltNode = qei.Addr(v) // remember deepest route
			q.Level = 1
		}
		ip := binary.BigEndian.Uint32(q.Key[:4])
		bit := (ip >> (31 - q.Pos)) & 1
		childU, err := q.AS.ReadU64(q.Node + qei.Addr(8*bit))
		if err != nil {
			return qei.FirmwareFail(err)
		}
		q.Pos++
		q.Node = qei.Addr(childU)
		if q.Node == 0 {
			return qei.FirmwareFinish(q.Level != 0, uint64(q.AltNode),
				qei.FirmwareCompare(node, 8))
		}
		// One compare (the bit test) and the next node's line.
		return qei.FirmwareContinue(lpmWalk, false,
			qei.FirmwareCompare(node, 8),
			qei.FirmwareMemRead(uint64(q.Node), 32))

	default:
		return qei.FirmwareFail(fmt.Errorf("lpm: unknown state %d", state))
	}
}
