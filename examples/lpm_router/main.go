// LPM router: extends QEI with a NEW data-structure type — an IPv4
// longest-prefix-match routing table — entirely through the public
// firmware API, without touching the accelerator engine. This is the
// paper's extensibility story (Sec. IV-B: the CEE is microcoded, and "a
// firmware update, with new state transition rules, can be applied to
// support emerging data structures and query algorithms").
//
// The firmware itself lives in the lpmfw subpackage (importable by
// tests and other programs); this demo builds a routing table in
// simulated memory, routes packets through the accelerator, and checks
// every answer against a host-side reference.
package main

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"qei"
	"qei/examples/lpm_router/lpmfw"
)

// route is one routing-table entry.
type route struct {
	prefix uint32
	length int
	hop    uint64
}

func main() {
	sys := qei.NewSystem(qei.CoreIntegrated)
	if err := sys.RegisterFirmware(lpmfw.Firmware{}); err != nil {
		panic(err)
	}
	fmt.Println("LPM firmware registered with the CEE")

	rng := rand.New(rand.NewSource(5))

	// Build a routing table: default route, some /8s, /16s, /24s.
	routes := []route{{0, 0, 1}} // default route -> hop 1
	for i := 0; i < 64; i++ {
		routes = append(routes, route{uint32(rng.Intn(223)+1) << 24, 8, uint64(1000 + i)})
	}
	for i := 0; i < 256; i++ {
		routes = append(routes, route{rng.Uint32() &^ 0xffff, 16, uint64(2000 + i)})
	}
	for i := 0; i < 512; i++ {
		routes = append(routes, route{rng.Uint32() &^ 0xff, 24, uint64(3000 + i)})
	}

	builder := newTrieBuilder(sys)
	for _, r := range routes {
		builder.add(r.prefix, r.length, r.hop)
	}
	root := builder.finish()
	table, err := sys.WriteTableHeader("lpm", lpmfw.TypeCode, root, 4, uint64(len(routes)), 0, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("routing table built: %d routes, %d trie nodes\n", len(routes), builder.nodes)

	// Route random packets and verify against a host-side reference.
	var hits, defaults int
	for i := 0; i < 500; i++ {
		ip := rng.Uint32()
		var key [4]byte
		binary.BigEndian.PutUint32(key[:], ip)
		res, err := sys.Query(table, key[:])
		if err != nil {
			panic(err)
		}
		want, wantOK := referenceLPM(routes, ip)
		if res.Found != wantOK || (res.Found && res.Value != want) {
			panic(fmt.Sprintf("ip %08x: accelerator hop %d/%v, reference %d/%v",
				ip, res.Value, res.Found, want, wantOK))
		}
		if res.Found {
			hits++
			if res.Value == 1 {
				defaults++
			}
		}
	}
	fmt.Printf("routed 500 packets via the accelerator: %d matched (%d default route), all verified\n",
		hits, defaults)
	st := sys.Stats()
	fmt.Printf("accelerator: %d queries, %d CFA transitions through CUSTOM firmware\n",
		st.Queries, st.Transitions)
}

// trieBuilder lays the binary trie out in simulated memory.
type trieBuilder struct {
	sys   *qei.System
	root  *hostNode
	nodes int
}

type hostNode struct {
	child [2]*hostNode
	hop   uint64
	has   bool
}

func newTrieBuilder(sys *qei.System) *trieBuilder {
	return &trieBuilder{sys: sys, root: &hostNode{}, nodes: 1}
}

func (b *trieBuilder) add(prefix uint32, length int, hop uint64) {
	n := b.root
	for i := 0; i < length; i++ {
		bit := (prefix >> (31 - i)) & 1
		if n.child[bit] == nil {
			n.child[bit] = &hostNode{}
			b.nodes++
		}
		n = n.child[bit]
	}
	n.hop = hop
	n.has = true
}

// finish serializes the trie bottom-up and returns the root's address.
func (b *trieBuilder) finish() uint64 {
	var emit func(n *hostNode) uint64
	emit = func(n *hostNode) uint64 {
		var c0, c1 uint64
		if n.child[0] != nil {
			c0 = emit(n.child[0])
		}
		if n.child[1] != nil {
			c1 = emit(n.child[1])
		}
		buf := make([]byte, 32)
		binary.LittleEndian.PutUint64(buf[0:], c0)
		binary.LittleEndian.PutUint64(buf[8:], c1)
		binary.LittleEndian.PutUint64(buf[16:], n.hop)
		if n.has {
			binary.LittleEndian.PutUint64(buf[24:], 1)
		}
		return b.sys.Write(buf)
	}
	return emit(b.root)
}

// referenceLPM computes the expected longest-prefix match host-side.
func referenceLPM(routes []route, ip uint32) (uint64, bool) {
	best := -1
	var hop uint64
	for _, r := range routes {
		if r.length == 0 {
			if best <= 0 {
				best, hop = 0, r.hop
			}
			continue
		}
		mask := ^uint32(0) << (32 - r.length)
		// >= so a duplicate prefix keeps the LAST inserted hop, matching
		// the trie builder's overwrite semantics.
		if ip&mask == r.prefix&mask && r.length >= best {
			best, hop = r.length, r.hop
		}
	}
	return hop, best >= 0
}
