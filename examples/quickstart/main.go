// Quickstart: build a cuckoo hash table in the simulated machine, query
// it through the QEI accelerator, and print per-query latencies and
// accelerator statistics.
package main

import (
	"fmt"
	"math/rand"

	"qei"
)

func main() {
	// A system is one simulated 24-core chip with a QEI accelerator
	// attached under the paper's proposed Core-integrated scheme.
	sys := qei.NewSystem(qei.CoreIntegrated)

	// 4096 random 16-byte keys (the shape of TCP/IP flow tuples).
	rng := rand.New(rand.NewSource(7))
	keys := make([][]byte, 4096)
	values := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = make([]byte, 16)
		rng.Read(keys[i])
		values[i] = uint64(i)*10 + 1
	}

	table := sys.MustBuildCuckoo(keys, values)
	fmt.Printf("built %s table, header at %#x\n", table.Kind, table.HeaderAddr())

	// Blocking QUERY_B lookups.
	var totalLatency uint64
	for i := 0; i < 32; i++ {
		res, err := sys.Query(table, keys[rng.Intn(len(keys))])
		if err != nil {
			panic(err)
		}
		if !res.Found {
			panic("present key not found")
		}
		totalLatency += res.Latency
	}
	fmt.Printf("32 blocking queries: avg latency %.1f cycles\n", float64(totalLatency)/32)

	// A miss.
	res, err := sys.Query(table, make([]byte, 16))
	if err != nil {
		panic(err)
	}
	fmt.Printf("absent key: found=%v (latency %d cycles)\n", res.Found, res.Latency)

	// Non-blocking QUERY_NB: issue a burst, then collect.
	handles := make([]qei.AsyncHandle, 10)
	for i := range handles {
		h, err := sys.QueryAsync(table, keys[i])
		if err != nil {
			panic(err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		r, err := sys.Wait(h)
		if err != nil {
			panic(err)
		}
		if !r.Found || r.Value != values[i] {
			panic("async result mismatch")
		}
	}
	fmt.Println("10 non-blocking queries completed and verified")

	st := sys.Stats()
	fmt.Printf("accelerator: %d queries, %d CFA transitions, %d cachelines, %d remote compares\n",
		st.Queries, st.Transitions, st.MemLines, st.RemoteCompares)
}
