// NFV router: the DPDK-style motivating scenario from the paper's
// introduction — a virtual switch classifying packets with tuple-space
// search over several flow tables, accelerated with non-blocking
// QUERY_NB bursts (Sec. VII-B).
//
// Each incoming packet carries a 16-byte 5-tuple-like header; the
// classifier must probe every tuple table because it cannot know which
// rule set a flow matches. The probes are independent, so a burst of
// packets times the tuple count can be in flight at once.
package main

import (
	"errors"
	"fmt"
	"math/rand"

	"qei"
)

const (
	tuples       = 8
	flowsPerT    = 2048
	packetBurst  = 16
	totalPackets = 256
)

func main() {
	sys := qei.NewSystem(qei.CoreIntegrated)
	rng := rand.New(rand.NewSource(99))

	// Build one flow table per tuple. Each flow lives in exactly one
	// table (its matching rule's tuple).
	tables := make([]qei.Table, tuples)
	flows := make([][][]byte, tuples)
	actions := make([][]uint64, tuples)
	for t := 0; t < tuples; t++ {
		keys := make([][]byte, flowsPerT)
		vals := make([]uint64, flowsPerT)
		for i := range keys {
			keys[i] = make([]byte, 16)
			rng.Read(keys[i])
			vals[i] = uint64(t)<<32 | uint64(i) | 1 // action id
		}
		tables[t] = sys.MustBuildCuckoo(keys, vals)
		flows[t] = keys
		actions[t] = vals
	}
	fmt.Printf("classifier ready: %d tuple tables x %d flows\n", tuples, flowsPerT)

	type packet struct {
		header []byte
		owner  int // tuple whose table holds the flow
		idx    int
	}

	classified := 0
	var totalCycles uint64
	start := sys.Now()

	for sent := 0; sent < totalPackets; sent += packetBurst {
		// Receive a burst.
		burst := make([]packet, packetBurst)
		for i := range burst {
			t := rng.Intn(tuples)
			k := rng.Intn(flowsPerT)
			burst[i] = packet{header: flows[t][k], owner: t, idx: k}
		}

		// Issue the burst's probes non-blocking, up to the QST bound.
		// burst x tuples exceeds the QST, so the issue loop runs List 2's
		// drain-and-reissue: on ErrQSTFull, retire the oldest outstanding
		// probe and retry.
		type probe struct{ pkt, tup int }
		handles := make([][]qei.AsyncHandle, len(burst))
		results := make([][]qei.Result, len(burst))
		var fifo []probe
		drain := func() {
			pr := fifo[0]
			fifo = fifo[1:]
			r, err := sys.Wait(handles[pr.pkt][pr.tup])
			if err != nil {
				panic(err)
			}
			results[pr.pkt][pr.tup] = r
		}
		for i, p := range burst {
			handles[i] = make([]qei.AsyncHandle, tuples)
			results[i] = make([]qei.Result, tuples)
			for t := 0; t < tuples; t++ {
				h, err := sys.QueryAsync(tables[t], p.header)
				for errors.Is(err, qei.ErrQSTFull) {
					drain()
					h, err = sys.QueryAsync(tables[t], p.header)
				}
				if err != nil {
					panic(err)
				}
				handles[i][t] = h
				fifo = append(fifo, probe{i, t})
			}
		}
		for len(fifo) > 0 {
			drain()
		}

		// Pick each packet's action from the retired probes.
		for i, p := range burst {
			var matched uint64
			for t := 0; t < tuples; t++ {
				if r := results[i][t]; r.Found {
					if t != p.owner {
						panic("matched in the wrong tuple table")
					}
					matched = r.Value
				}
			}
			want := actions[p.owner][p.idx]
			if matched != want {
				panic(fmt.Sprintf("packet %d: action %#x, want %#x", i, matched, want))
			}
			classified++
		}
	}
	totalCycles = sys.Now() - start

	fmt.Printf("classified %d packets (%d probes) in %d cycles — %.1f cycles/packet\n",
		classified, classified*tuples, totalCycles, float64(totalCycles)/float64(classified))
	st := sys.Stats()
	fmt.Printf("accelerator occupancy %.2f entries, %d remote compares\n",
		st.Occupancy, st.RemoteCompares)
}
