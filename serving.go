package qei

import (
	"context"
	"errors"
	"fmt"
	"os"

	"qei/internal/serve"
)

// This file wires the multi-tenant serving frontend (internal/serve)
// to the simulated machine: the two Backend adapters — the QEI
// accelerator and the software baseline walker — over one *System, plus
// the ServingConfig runner and the "serving" experiment. Both adapters
// build tenant tables through the generic System.Build entrypoint, so a
// backend is chosen by name, never by divergent call paths (the
// Tailwind framing: accelerator vs software is a placement decision
// behind one interface).

// ServingBackends lists the registered serving backend names.
func ServingBackends() []string { return []string{"qei", "baseline"} }

// NewServingBackend wraps sys as the named serving backend adapter:
// "qei" drives the accelerator through QueryAsync/Poll/Wait under the
// QST bound; "baseline" executes every query on the software walker
// timed on a simulated core (QuerySoftware). Both share sys's address
// space, memory system, and issue clock.
func NewServingBackend(name string, sys *System) (serve.Backend, error) {
	switch name {
	case "qei":
		return &qeiServeBackend{servingMutator{sys: sys}}, nil
	case "baseline":
		return &baselineServeBackend{servingMutator: servingMutator{sys: sys}}, nil
	default:
		return nil, fmt.Errorf("qei: unknown serving backend %q (have %v)", name, ServingBackends())
	}
}

// servingTable unwraps a serving-layer table handle for the query path:
// mutable tables (built when the stream writes) expose their embedded
// immutable view, which tracks in-place structural maintenance.
func servingTable(t serve.Table) Table {
	if mt, ok := t.(*MutableTable); ok {
		return mt.Table
	}
	return t.(Table)
}

// servingMutator implements serve.Mutator for both adapters: mutations
// are software routines on the shared machine (QEI accelerates queries
// only), so the write path is backend-independent.
type servingMutator struct {
	sys *System
}

func (m *servingMutator) BuildMutable(kind string, keys [][]byte, values []uint64) (serve.Table, error) {
	k, err := ParseStructKind(kind)
	if err != nil {
		return nil, err
	}
	return m.sys.BuildMutable(k, keys, values)
}

func (m *servingMutator) Insert(t serve.Table, key []byte, value uint64) error {
	mt, ok := t.(*MutableTable)
	if !ok {
		return fmt.Errorf("qei: serving write against an immutable table")
	}
	return mt.Insert(key, value)
}

func (m *servingMutator) Delete(t serve.Table, key []byte) (bool, error) {
	mt, ok := t.(*MutableTable)
	if !ok {
		return false, fmt.Errorf("qei: serving write against an immutable table")
	}
	return mt.Delete(key)
}

// qeiServeBackend adapts the accelerator path: async issues occupy QST
// entries and overlap; ErrQSTFull maps to the serve layer's
// ErrBackendFull so the server drains and reissues.
type qeiServeBackend struct {
	servingMutator
}

func (b *qeiServeBackend) Name() string { return "qei" }

func (b *qeiServeBackend) Build(kind string, keys [][]byte, values []uint64) (serve.Table, error) {
	k, err := ParseStructKind(kind)
	if err != nil {
		return nil, err
	}
	return b.sys.Build(k, keys, values)
}

func (b *qeiServeBackend) Query(t serve.Table, key []byte) (serve.Result, error) {
	res, err := b.sys.Query(servingTable(t), key)
	if err != nil {
		return serve.Result{}, err
	}
	return serve.Result{Found: res.Found, Value: res.Value, Done: b.sys.Now(), Err: res.Err}, nil
}

func (b *qeiServeBackend) QueryAsync(t serve.Table, key []byte) (serve.Handle, error) {
	h, err := b.sys.QueryAsync(servingTable(t), key)
	if errors.Is(err, ErrQSTFull) {
		return nil, fmt.Errorf("%w: %w", serve.ErrBackendFull, err)
	}
	if err != nil {
		return nil, err
	}
	return h, nil
}

func (b *qeiServeBackend) Poll(h serve.Handle) (serve.Result, error) {
	ah := h.(AsyncHandle)
	res, err := b.sys.Poll(ah)
	if errors.Is(err, ErrResultPending) {
		return serve.Result{}, serve.ErrPending
	}
	if err != nil {
		return serve.Result{}, err
	}
	return asyncResult(ah, res), nil
}

func (b *qeiServeBackend) Wait(h serve.Handle) (serve.Result, error) {
	ah := h.(AsyncHandle)
	res, err := b.sys.Wait(ah)
	if err != nil {
		return serve.Result{}, err
	}
	return asyncResult(ah, res), nil
}

// asyncResult converts an async query result: its completion cycle is
// the acceptance point plus the observed latency.
func asyncResult(h AsyncHandle, res Result) serve.Result {
	return serve.Result{
		Found: res.Found,
		Value: res.Value,
		Done:  h.accepted + res.Latency,
		Err:   res.Err,
	}
}

// QueryBatch runs one tenant's buffered lookups through the level-wise
// batch engine (serve.BatchBackend). The clock advances to the batch's
// completion; every result reports that completion cycle, since the
// batch retires as a unit.
func (b *qeiServeBackend) QueryBatch(t serve.Table, keys [][]byte) ([]serve.Result, error) {
	rs, err := b.sys.QueryBatch(servingTable(t), keys, WithBatchMode(BatchLevelWise))
	if err != nil {
		return nil, err
	}
	done := b.sys.Now()
	out := make([]serve.Result, len(rs))
	for i, r := range rs {
		out[i] = serve.Result{Found: r.Found, Value: r.Value, Done: done, Err: r.Err}
	}
	return out, nil
}

func (b *qeiServeBackend) Now() uint64      { return b.sys.Now() }
func (b *qeiServeBackend) Advance(n uint64) { b.sys.Advance(n) }
func (b *qeiServeBackend) Capacity() int    { return b.sys.QSTCapacity() }

func (b *qeiServeBackend) Stats() serve.Stats {
	st := b.sys.Stats()
	return serve.Stats{Queries: st.Queries, Exceptions: st.Exceptions}
}

// baselineServeBackend adapts the software path: queries execute
// eagerly and serially on the baseline walker (QuerySoftware), so an
// async handle is already complete when issued — queueing then shows up
// as end-to-end latency exactly as a single-threaded software server
// would exhibit it.
type baselineServeBackend struct {
	servingMutator
	queries    uint64
	exceptions uint64
}

// baselineHandle is an already-complete async handle.
type baselineHandle struct {
	res serve.Result
}

func (b *baselineServeBackend) Name() string { return "baseline" }

func (b *baselineServeBackend) Build(kind string, keys [][]byte, values []uint64) (serve.Table, error) {
	k, err := ParseStructKind(kind)
	if err != nil {
		return nil, err
	}
	return b.sys.Build(k, keys, values)
}

func (b *baselineServeBackend) Query(t serve.Table, key []byte) (serve.Result, error) {
	res, err := b.sys.QuerySoftware(servingTable(t), key)
	if errors.Is(err, ErrUnknownKind) {
		return serve.Result{}, err
	}
	b.queries++
	if err != nil {
		// Walker errors are per-query architectural faults, mirroring
		// accelerator exceptions riding in Result.Err.
		b.exceptions++
		return serve.Result{Done: b.sys.Now(), Err: err}, nil
	}
	return serve.Result{Found: res.Found, Value: res.Value, Done: b.sys.Now()}, nil
}

func (b *baselineServeBackend) QueryAsync(t serve.Table, key []byte) (serve.Handle, error) {
	res, err := b.Query(t, key)
	if err != nil {
		return nil, err
	}
	return &baselineHandle{res: res}, nil
}

func (b *baselineServeBackend) Poll(h serve.Handle) (serve.Result, error) {
	return h.(*baselineHandle).res, nil
}

func (b *baselineServeBackend) Wait(h serve.Handle) (serve.Result, error) {
	return h.(*baselineHandle).res, nil
}

func (b *baselineServeBackend) Now() uint64      { return b.sys.Now() }
func (b *baselineServeBackend) Advance(n uint64) { b.sys.Advance(n) }

// Capacity is 1: the software path executes one query at a time.
func (b *baselineServeBackend) Capacity() int { return 1 }

func (b *baselineServeBackend) Stats() serve.Stats {
	return serve.Stats{Queries: b.queries, Exceptions: b.exceptions}
}

// ServingConfig describes one serving run end to end: the synthetic
// multi-tenant stream, the machine and backend that serve it, and the
// QoS knobs. The zero value is not runnable; DefaultServingConfig gives
// a small, fast configuration.
type ServingConfig struct {
	// Backend selects the adapter: "qei" or "baseline".
	Backend string
	// Scheme is the accelerator integration scheme of the simulated
	// machine (the baseline backend still shares its memory system).
	Scheme Scheme
	// Tenants, Requests, KeysPerTenant, KeyLen, Kind, TenantSkew,
	// KeySkew, MeanGap and Seed mirror serve.GenConfig.
	Tenants       int
	Requests      int
	KeysPerTenant int
	KeyLen        int
	Kind          StructKind
	TenantSkew    float64
	KeySkew       float64
	MeanGap       uint64
	Seed          int64
	// WriteFraction and DeleteFraction mix software mutations into the
	// stream (serve.GenConfig semantics); 0 keeps it read-only and
	// byte-identical to pre-write streams.
	WriteFraction  float64
	DeleteFraction float64
	// WriteCost is the simulated-cycle charge per mutation (0 uses the
	// serve-layer default).
	WriteCost uint64
	// SLO is the per-request latency objective in cycles (0 = off).
	SLO uint64
	// SlotsPerTenant bounds each tenant's in-flight QST slots (<= 0
	// derives capacity / tenants).
	SlotsPerTenant int
	// BatchAdmit, when > 1, turns on batched admission (serve.Config
	// semantics): lookups buffer per tenant and flush through the
	// level-wise batch engine in groups of up to BatchAdmit keys.
	// Requires the "qei" backend.
	BatchAdmit int
	// GenWorkers parallelizes trace generation (<= 0 = GOMAXPROCS;
	// output is byte-identical at any value).
	GenWorkers int
	// Machine serves on the given chip instead of the Tab. II default
	// (see LoadMachineSpec); nil keeps the default.
	Machine *MachineSpec
	// Metrics attaches the simulator metrics registry and registers the
	// per-tenant serving counters in it.
	Metrics bool
	// KeepResults retains per-request results (tests).
	KeepResults bool
	// Faults arms the deterministic fault-injection harness on the
	// serving machine (WithFaultInjection semantics: seeded, counter-
	// based, accelerator-path only — software walks stay clean). nil
	// serves without chaos. Without Resilient, injected faults surface
	// as per-request Result.Err and count in TenantStats.Faults.
	Faults *FaultSpec
	// QueryBudget arms the per-query cycle-budget watchdog
	// (WithQueryCycleBudget): accelerator executions over budget fault
	// with ErrQueryTimeout and enter the resilience ladder like any
	// other fault. 0 disables the watchdog.
	QueryBudget uint64
	// Resilient enables the serving resilience layer: per-request
	// deadlines with load shedding, bounded retry of faulting queries,
	// per-request failover to the software walker, and a circuit
	// breaker that routes around a misbehaving accelerator wholesale
	// (serve.Resilience). Off, faults ride in the report and admission
	// waits are unbounded, exactly as before.
	Resilient bool
	// Deadline is the per-request completion budget in cycles from
	// arrival (requests past it are shed). 0 derives 4x the SLO; with
	// the SLO also 0, shedding is off. Ignored without Resilient.
	Deadline uint64
	// MaxRetries and RetryBackoff tune the pre-failover retry loop
	// (serve.Resilience semantics; zero values use the serve defaults).
	MaxRetries   int
	RetryBackoff uint64
	// Breaker overrides the circuit-breaker tuning; nil uses the
	// serve-layer defaults. Ignored without Resilient.
	Breaker *serve.BreakerConfig
	// Timeline, when non-empty, arms the unified cycle-stamped tracer
	// and writes the Chrome trace-event JSON document (component tracks
	// plus the serving track's shed/failover/breaker events) to this
	// file after the run.
	Timeline string
}

// DefaultServingConfig returns a small, fast serving configuration:
// 4 Zipf(0.99) tenants each owning a BST table (the pointer-chasing
// shape where offload pays) under an open-loop arrival process fast
// enough that the software path falls behind while the accelerator
// keeps up.
func DefaultServingConfig() ServingConfig {
	return ServingConfig{
		Backend:       "qei",
		Scheme:        CoreIntegrated,
		Tenants:       4,
		Requests:      240,
		KeysPerTenant: 128,
		KeyLen:        16,
		Kind:          KindBST,
		TenantSkew:    0.99,
		KeySkew:       0.99,
		MeanGap:       400,
		Seed:          7,
		SLO:           10000,
		GenWorkers:    1,
	}
}

// GenConfig renders the stream-generation part of the config.
func (c ServingConfig) GenConfig() serve.GenConfig {
	return serve.GenConfig{
		Tenants:        c.Tenants,
		Requests:       c.Requests,
		KeysPerTenant:  c.KeysPerTenant,
		KeyLen:         c.KeyLen,
		Kind:           c.Kind.String(),
		TenantSkew:     c.TenantSkew,
		KeySkew:        c.KeySkew,
		MeanGap:        c.MeanGap,
		Seed:           c.Seed,
		WriteFraction:  c.WriteFraction,
		DeleteFraction: c.DeleteFraction,
	}
}

// RunServing generates the seeded open-loop stream and serves it on a
// fresh simulated machine through the configured backend, returning the
// per-tenant percentile report. The run is deterministic: equal configs
// yield equal reports at any GenWorkers value.
func RunServing(cfg ServingConfig) (*serve.Report, error) {
	reqs, err := serve.GenerateParallel(cfg.GenConfig(), cfg.GenWorkers)
	if err != nil {
		return nil, err
	}
	return ReplayServing(cfg, cfg.GenConfig(), reqs)
}

// ReplayServing serves an explicit request stream (a recorded trace, or
// a freshly generated one) under gen's table layout on a fresh machine.
// Replaying a recorded trace is byte-identical to the live run that
// recorded it.
func ReplayServing(cfg ServingConfig, gen serve.GenConfig, reqs []serve.Request) (*serve.Report, error) {
	opts := []Option{WithSeed(cfg.Seed)}
	if cfg.Machine != nil {
		opts = append(opts, WithMachineSpec(*cfg.Machine))
	}
	if cfg.Metrics {
		opts = append(opts, WithMetrics())
	}
	if cfg.Faults != nil {
		opts = append(opts, WithFaultInjection(*cfg.Faults))
	}
	if cfg.QueryBudget > 0 {
		opts = append(opts, WithQueryCycleBudget(cfg.QueryBudget))
	}
	if cfg.Timeline != "" {
		opts = append(opts, WithTimeline())
	}
	sys := NewSystem(cfg.Scheme, opts...)
	backend, err := NewServingBackend(cfg.Backend, sys)
	if err != nil {
		return nil, err
	}
	scfg := serve.Config{
		Gen:            gen,
		SlotsPerTenant: cfg.SlotsPerTenant,
		SLO:            cfg.SLO,
		Metrics:        sys.mreg,
		Trace:          sys.tracer,
		KeepResults:    cfg.KeepResults,
		WriteCost:      cfg.WriteCost,
		BatchAdmit:     cfg.BatchAdmit,
	}
	if cfg.Resilient {
		res := &serve.Resilience{
			Deadline:     cfg.Deadline,
			MaxRetries:   cfg.MaxRetries,
			RetryBackoff: cfg.RetryBackoff,
		}
		if res.Deadline == 0 && cfg.SLO > 0 {
			res.Deadline = 4 * cfg.SLO
		}
		if cfg.Breaker != nil {
			res.Breaker = *cfg.Breaker
		}
		// The safety net is the software walker over the same machine:
		// tables the primary built are queried directly, on the shared
		// clock. A baseline primary is its own safety net — it still
		// gets deadlines and shedding, but failover would be a no-op.
		if cfg.Backend != "baseline" {
			fo, err := NewServingBackend("baseline", sys)
			if err != nil {
				return nil, err
			}
			res.Failover = fo
		}
		scfg.Resilience = res
	}
	rep, err := serve.Run(backend, scfg, reqs)
	if err != nil {
		return nil, err
	}
	// Machine-level outcomes the serving layer cannot see: chaos volume
	// and the epoch GC's read-after-retire count (always asserted 0).
	rep.FaultsInjected = sys.FaultsInjected()
	rep.EpochViolations = sys.EpochViolations()
	if rep.Batch != nil {
		// Engine-side amortization counters the serving layer cannot see.
		st := sys.accel.Stats()
		rep.Batch.Levels = st.BatchLevels
		rep.Batch.TranslationsSaved = st.BatchTranslationsSaved
		rep.Batch.CoalescedProbes = st.BatchCoalescedProbes
		rep.Batch.Deferred = st.BatchDeferred
	}
	if cfg.Timeline != "" {
		if err := os.WriteFile(cfg.Timeline, []byte(sys.ExportTrace()), 0o644); err != nil {
			return nil, fmt.Errorf("qei: serving timeline: %w", err)
		}
	}
	return rep, nil
}

// ServingPercentiles is the "serving" experiment: the same seeded
// multi-tenant open-loop trace served by the software baseline and the
// QEI accelerator behind the shared Backend interface, reported as
// per-tenant latency percentiles and SLO violations.
func ServingPercentiles(s Scale, opts ...ExpOption) (TableData, error) {
	t := TableData{
		Title: "Serving — multi-tenant open-loop latency per backend (cycles)",
		Headers: []string{"backend", "tenant", "requests", "throttled",
			"slo_viol", "p50", "p99", "p999"},
	}
	base := DefaultServingConfig()
	if s == FullScale {
		base.Tenants = 16
		base.Requests = 4000
		base.KeysPerTenant = 256
		base.MeanGap = 200
	}
	rows, err := expRows(expConfigFor(opts), ServingBackends(),
		func(_ context.Context, _ int, backend string) ([][]string, error) {
			cfg := base
			cfg.Backend = backend
			rep, err := RunServing(cfg)
			if err != nil {
				return nil, err
			}
			var rows [][]string
			row := func(ts serve.TenantStats) []string {
				tenant := "all"
				if ts.Tenant >= 0 {
					tenant = f("%d", ts.Tenant)
				}
				return []string{backend, tenant, f("%d", ts.Requests),
					f("%d", ts.Throttled), f("%d", ts.SLOViolations),
					f("%d", ts.P50), f("%d", ts.P99), f("%d", ts.P999)}
			}
			for _, ts := range rep.Tenants {
				rows = append(rows, row(ts))
			}
			rows = append(rows, row(rep.Total))
			return rows, nil
		})
	t.Rows = rows
	return t, err
}
