package qei

import (
	"encoding/json"
	"os"
	"testing"
)

// TestBenchGoldenCycles pins the "bench" experiment's simulated outputs
// to the committed BENCH_bench.json. The performance work on the hot
// path (PR 5) must leave every simulated quantity — cycle counts,
// speedups, and the counter profile of each run — byte-identical; only
// host wall-clock fields may differ, so they are zeroed before
// comparison. If this test fails after an intentional model change,
// regenerate the file with:
//
//	go run ./cmd/qeibench -exp bench -scale small -json -out .
func TestBenchGoldenCycles(t *testing.T) {
	data, err := os.ReadFile("BENCH_bench.json")
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	var all []BenchResult
	if err := json.Unmarshal(data, &all); err != nil {
		t.Fatalf("golden file: %v", err)
	}
	// The file also carries "batch" experiment records (host wall/alloc
	// measurements for the batch engine, pinned for determinism by the
	// batch tests); the golden cycle comparison covers the "bench" rows.
	var want []BenchResult
	for _, w := range all {
		if w.Experiment == "bench" {
			want = append(want, w)
		}
	}
	got, err := RunBench(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, golden has %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		clearWallClock(&g)
		clearWallClock(&w)
		gj, _ := json.Marshal(g)
		wj, _ := json.Marshal(w)
		if string(gj) != string(wj) {
			t.Errorf("record %d (%s/%s) diverges from golden:\n got: %s\nwant: %s",
				i, g.Workload, g.Scheme, gj, wj)
		}
	}
}
