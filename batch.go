package qei

import (
	"errors"
	"fmt"
)

// BatchOption configures a QueryBatch call.
type BatchOption func(*batchConfig)

type batchConfig struct {
	window int
}

// WithWindow caps the number of queries QueryBatch keeps outstanding,
// below the QST capacity — the knob the Fig. 10 tuple-space sweep
// varies. n <= 0 or n above capacity means the full QST.
func WithWindow(n int) BatchOption {
	return func(c *batchConfig) { c.window = n }
}

// QueryBatch looks up every key in t through non-blocking QUERY_NB
// issues, keeping up to a QST's worth of queries in flight and running
// the List-2 poll loop to drain completions — the batch shape of the
// paper's Fig. 10 evaluation, packaged as one call. Results are
// returned in key order; per-query faults are reported in Result.Err,
// and the issue clock ends at the last completion.
//
// Over-capacity contract: len(keys) may exceed the QST capacity by any
// factor. The batch admits at most min(capacity, WithWindow) queries at
// a time and drains its own oldest completion before each further
// issue, so QueryBatch never returns ErrQSTFull for its own queries —
// the bound is handled internally, and every key gets exactly one
// result, in key order (pinned by TestQueryBatchOverCapacity). When
// queries outside the batch already occupy QST entries, the batch
// additionally waits for those foreign completions as needed; ErrQSTFull
// can then surface only if the foreign entries can never complete.
func (s *System) QueryBatch(t Table, keys [][]byte, opts ...BatchOption) ([]Result, error) {
	cfg := batchConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	window := s.QSTCapacity()
	if cfg.window > 0 && cfg.window < window {
		window = cfg.window
	}

	results := make([]Result, len(keys))
	type inflight struct {
		idx int
		h   AsyncHandle
	}
	queue := make([]inflight, 0, window)
	drain := func() error {
		q := queue[0]
		queue = queue[1:]
		r, err := s.Wait(q.h)
		if err != nil {
			return fmt.Errorf("qei: batch query %d: %w", q.idx, err)
		}
		results[q.idx] = r
		return nil
	}

	for i, k := range keys {
		if len(queue) >= window {
			if err := drain(); err != nil {
				return nil, err
			}
		}
		h, err := s.QueryAsync(t, k)
		for errors.Is(err, ErrQSTFull) {
			// Queries outside this batch may occupy QST entries: drain
			// our oldest completion (or, with none of ours in flight,
			// spin the clock to the next foreign completion), then
			// reissue.
			if len(queue) > 0 {
				if derr := drain(); derr != nil {
					return nil, derr
				}
			} else if next, ok := s.accel.NextNBDone(s.now); ok {
				s.now = next
			} else {
				break
			}
			h, err = s.QueryAsync(t, k)
		}
		if err != nil {
			return nil, fmt.Errorf("qei: batch query %d: %w", i, err)
		}
		queue = append(queue, inflight{idx: i, h: h})
	}
	for len(queue) > 0 {
		if err := drain(); err != nil {
			return nil, err
		}
	}
	return results, nil
}
