package qei

import (
	"errors"
	"fmt"

	"qei/internal/isa"
	"qei/internal/mem"
)

// BatchMode selects how QueryBatch executes a batch.
type BatchMode int

const (
	// BatchAuto picks per structure kind and batch size (PlanBatch).
	BatchAuto BatchMode = iota
	// BatchWindowed runs the batch as independent non-blocking queries,
	// keeping up to a QST window in flight (the original path).
	BatchWindowed
	// BatchLevelWise runs the batch through the level-wise engine: one
	// batched instruction that walks the whole batch level by level,
	// amortizing translations and streaming deduplicated node lines.
	BatchLevelWise
)

func (m BatchMode) String() string {
	switch m {
	case BatchWindowed:
		return "windowed"
	case BatchLevelWise:
		return "level-wise"
	default:
		return "auto"
	}
}

// BatchOption configures a QueryBatch call.
type BatchOption func(*batchConfig)

type batchConfig struct {
	window int
	mode   BatchMode
}

// WithWindow caps the number of queries QueryBatch keeps outstanding,
// below the QST capacity — the knob the Fig. 10 tuple-space sweep
// varies. n <= 0 or n above capacity means the full QST. The knob
// belongs to the windowed path, so a positive window also pins an
// otherwise-auto batch to windowed execution.
func WithWindow(n int) BatchOption {
	return func(c *batchConfig) { c.window = n }
}

// WithBatchMode overrides the automatic windowed/level-wise choice.
func WithBatchMode(m BatchMode) BatchOption {
	return func(c *batchConfig) { c.mode = m }
}

// BatchPlan describes how a batch over one structure kind executes.
type BatchPlan struct {
	Kind StructKind
	// Mode is the resolved execution mode (never BatchAuto).
	Mode BatchMode
	// Grouping names the level-wise rounds' shape: tree and skip-list
	// batches group by level, hash batches by bucket phase, list batches
	// by scan chunk; windowed batches have no grouping.
	Grouping string
}

// minLevelWiseBatch is the batch size below which level-wise grouping
// has nothing to amortize and the windowed path wins.
const minLevelWiseBatch = 4

// PlanBatch resolves the execution plan for a batch of n keys against a
// structure of the given kind. Pointer-chasing kinds group level-wise:
// trees and skip lists walk one level per round (the FPGA level-wise
// B+-tree batch shape), hash structures phase their bucket probes
// (cuckoo's two candidate buckets become two batched rounds), linked
// lists advance in lock-step chunks. Tries (variable-length scans with
// little cross-query sharing), custom firmware, and tiny batches stay
// on the windowed path.
func PlanBatch(kind StructKind, n int) BatchPlan {
	if n < minLevelWiseBatch {
		return BatchPlan{Kind: kind, Mode: BatchWindowed, Grouping: "windowed"}
	}
	switch kind {
	case KindBTree, KindBST, KindSkipList:
		return BatchPlan{Kind: kind, Mode: BatchLevelWise, Grouping: "levels"}
	case KindCuckoo, KindHashTable:
		return BatchPlan{Kind: kind, Mode: BatchLevelWise, Grouping: "bucket phases"}
	case KindLinkedList:
		return BatchPlan{Kind: kind, Mode: BatchLevelWise, Grouping: "chunked scan"}
	default:
		return BatchPlan{Kind: kind, Mode: BatchWindowed, Grouping: "windowed"}
	}
}

// QueryBatch looks up every key in t as one batch. Results are returned
// in key order; per-query faults are reported in Result.Err, and the
// issue clock ends at the last completion. The execution strategy is
// chosen by PlanBatch (override with WithBatchMode):
//
//   - The windowed path issues non-blocking QUERY_NB queries, keeping up
//     to a QST's worth in flight and running the List-2 poll loop to
//     drain completions — the batch shape of the paper's Fig. 10
//     evaluation.
//   - The level-wise path submits the whole batch as one batched
//     instruction: the accelerator walks every query in lock-step
//     rounds, translating each distinct page once per batch, streaming
//     each round's deduplicated node lines in ascending address order,
//     and coalescing duplicate keys onto one probe. Results are
//     byte-identical to the per-query path — any query that deviates
//     (fault, watchdog, corrupt pointer) is transparently re-executed on
//     the per-query path with its full retry/fallback ladder.
//
// Over-capacity contract (windowed path): len(keys) may exceed the QST
// capacity by any factor. The batch admits at most min(capacity,
// WithWindow) queries at a time and drains its own oldest completion
// before each further issue, so QueryBatch never returns ErrQSTFull for
// its own queries — the bound is handled internally, and every key gets
// exactly one result, in key order (pinned by TestQueryBatchOverCapacity).
// When queries outside the batch already occupy QST entries, the batch
// additionally waits for those foreign completions as needed; ErrQSTFull
// surfaces (satisfying errors.Is) only if the foreign entries can never
// complete.
func (s *System) QueryBatch(t Table, keys [][]byte, opts ...BatchOption) ([]Result, error) {
	cfg := batchConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	mode := cfg.mode
	if mode == BatchAuto {
		if cfg.window > 0 {
			// An explicit window is a windowed-path knob (the Fig. 10
			// sweep varies it), so it pins the mode.
			mode = BatchWindowed
		} else {
			mode = PlanBatch(t.Kind, len(keys)).Mode
		}
	}
	if mode == BatchLevelWise {
		return s.queryBatchLevelWise(t, keys)
	}
	return s.queryBatchWindowed(t, keys, cfg)
}

// queryBatchLevelWise submits the batch as one batched instruction to
// the level-wise engine, then re-executes any queries the engine
// deferred on the standard per-query path (preserving its exact
// retry/backoff/fallback semantics).
func (s *System) queryBatchLevelWise(t Table, keys [][]byte) ([]Result, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	// The whole batch is one in-flight window: pin the epoch at
	// admission, release once every result is architectural.
	if pinned, ok := s.pinQuery(); ok {
		defer s.gc.Unpin(pinned)
	}

	descs := make([]*isa.QueryDesc, len(keys))
	tags := make([]uint64, len(keys))
	issue := s.now
	for i, k := range keys {
		keyAddr := s.Write(k)
		resAddr := s.m.AS.AllocLines(mem.LineSize)
		tag := s.nextTag()
		d := &isa.QueryDesc{
			HeaderAddr: mem.VAddr(t.HeaderAddr()),
			KeyAddr:    mem.VAddr(keyAddr),
			ResultAddr: resAddr,
			Tag:        tag,
		}
		if t.Kind == KindTrie {
			d.KeyLen = uint32(len(k))
		}
		descs[i] = d
		tags[i] = tag
	}

	done, deferred, err := s.accel.ExecuteBatch(descs, issue)
	if err != nil {
		return nil, fmt.Errorf("qei: batch: %w", err)
	}
	if done > s.now {
		s.now = done
	}

	results := make([]Result, len(keys))
	inBatch := make([]bool, len(keys))
	for i := range keys {
		inBatch[i] = true
	}
	for _, i := range deferred {
		inBatch[i] = false
	}
	for i := range keys {
		if !inBatch[i] {
			continue
		}
		r, ok := s.accel.Result(tags[i])
		if !ok {
			return nil, fmt.Errorf("qei: batch result for key %d missing", i)
		}
		results[i] = Result{
			Found:   r.Found,
			Value:   r.Value,
			Matches: r.Matches,
			Latency: r.Done - issue,
			Err:     r.Fault,
		}
	}
	// Deferred queries re-run on the unchanged per-query path, key order
	// preserved.
	for _, i := range deferred {
		r, err := s.QueryAt(t, uint64(descs[i].KeyAddr), len(keys[i]))
		if err != nil {
			return nil, fmt.Errorf("qei: batch query %d: %w", i, err)
		}
		results[i] = r
	}
	return results, nil
}

// queryBatchWindowed is the original windowed non-blocking path.
func (s *System) queryBatchWindowed(t Table, keys [][]byte, cfg batchConfig) ([]Result, error) {
	window := s.QSTCapacity()
	if cfg.window > 0 && cfg.window < window {
		window = cfg.window
	}
	if window < 1 {
		// A zero-capacity QST (every entry foreign, or a degenerate
		// machine description) still reaches the issue path below, where
		// ErrQSTFull surfaces with its documented errors.Is contract
		// instead of panicking on an empty drain.
		window = 1
	}

	results := make([]Result, len(keys))
	type inflight struct {
		idx int
		h   AsyncHandle
	}
	queue := make([]inflight, 0, window)
	drain := func() error {
		q := queue[0]
		queue = queue[1:]
		r, err := s.Wait(q.h)
		if err != nil {
			return fmt.Errorf("qei: batch query %d: %w", q.idx, err)
		}
		results[q.idx] = r
		return nil
	}

	for i, k := range keys {
		if len(queue) >= window {
			if err := drain(); err != nil {
				return nil, err
			}
		}
		h, err := s.QueryAsync(t, k)
		for errors.Is(err, ErrQSTFull) {
			// Queries outside this batch may occupy QST entries: drain
			// our oldest completion (or, with none of ours in flight,
			// spin the clock to the next foreign completion), then
			// reissue.
			if len(queue) > 0 {
				if derr := drain(); derr != nil {
					return nil, derr
				}
			} else if next, ok := s.accel.NextNBDone(s.now); ok {
				s.now = next
			} else {
				// Every QST entry is held by foreign queries that can
				// never complete: surface the architectural condition with
				// its context. The wrapped chain keeps the documented
				// errors.Is(err, ErrQSTFull) contract (pinned by
				// TestQueryBatchForeignStall).
				return nil, fmt.Errorf("qei: batch query %d: QST held by foreign entries that never complete: %w", i, err)
			}
			h, err = s.QueryAsync(t, k)
		}
		if err != nil {
			return nil, fmt.Errorf("qei: batch query %d: %w", i, err)
		}
		queue = append(queue, inflight{idx: i, h: h})
	}
	for len(queue) > 0 {
		if err := drain(); err != nil {
			return nil, err
		}
	}
	return results, nil
}
