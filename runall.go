package qei

import (
	"context"
	"sync"

	"qei/internal/metrics"
	"qei/internal/runner"
	"qei/internal/workload"
)

// ExpOption configures how an experiment executes (not what it
// measures): cancellation, worker-pool parallelism, and metric
// collection.
type ExpOption func(*expConfig)

type expConfig struct {
	ctx       context.Context
	par       int
	collector *MetricsCollector
}

func expConfigFor(opts []ExpOption) expConfig {
	cfg := expConfig{ctx: context.Background()}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithContext attaches a cancellation context to an experiment run;
// cancelling it stops the remaining jobs promptly.
func WithContext(ctx context.Context) ExpOption {
	return func(c *expConfig) { c.ctx = ctx }
}

// WithParallelism sets the experiment's worker count: each independent
// job (one workload × scheme × ablation point, owning its own simulated
// machine) runs on its own worker. n <= 0 means GOMAXPROCS; 1 forces
// the serial path. Results are collected in input order, so the
// rendered tables are byte-identical at any worker count.
func WithParallelism(n int) ExpOption {
	return func(c *expConfig) { c.par = n }
}

// MetricsCollector accumulates the metric snapshots of an experiment's
// jobs. Each job simulates on its own machine with its own registry
// (registries are single-goroutine); the collector merges the finished
// snapshots under a mutex. Merging is a commutative sum by name, so the
// merged result is identical at any worker count and completion order.
type MetricsCollector struct {
	mu    sync.Mutex
	snaps []metrics.Snapshot
}

// NewMetricsCollector creates an empty collector for
// WithMetricsCollector.
func NewMetricsCollector() *MetricsCollector { return &MetricsCollector{} }

// add records one job's snapshot; safe for concurrent workers and a nil
// collector.
func (c *MetricsCollector) add(s metrics.Snapshot) {
	if c == nil || len(s) == 0 {
		return
	}
	c.mu.Lock()
	c.snaps = append(c.snaps, s)
	c.mu.Unlock()
}

// Merged sums every collected snapshot and returns the totals sorted by
// metric name.
func (c *MetricsCollector) Merged() []Metric {
	c.mu.Lock()
	snaps := append([]metrics.Snapshot(nil), c.snaps...)
	c.mu.Unlock()
	merged := metrics.Merge(snaps...)
	out := make([]Metric, 0, len(merged))
	for _, sm := range merged {
		out = append(out, Metric{Name: sm.Name, Value: sm.Value})
	}
	return out
}

// String renders the merged totals one "name value" line per metric.
func (c *MetricsCollector) String() string {
	c.mu.Lock()
	snaps := append([]metrics.Snapshot(nil), c.snaps...)
	c.mu.Unlock()
	return metrics.Merge(snaps...).String()
}

// WithMetricsCollector attaches a collector to an experiment run: every
// job that supports metrics simulates with its own registry and merges
// its end-of-run snapshot into c. Read the totals with c.Merged() after
// the experiment returns.
func WithMetricsCollector(c *MetricsCollector) ExpOption {
	return func(cfg *expConfig) { cfg.collector = c }
}

// collect files a finished run's snapshot with the attached collector,
// if any.
func (c expConfig) collect(r workload.Run) { c.collector.add(r.Metrics) }

// expRows fans one job per item across the runner pool; each job
// returns its group of table rows, and the groups are concatenated in
// input order so the table matches the serial run byte for byte.
func expRows[J any](cfg expConfig, jobs []J, fn func(ctx context.Context, i int, job J) ([][]string, error)) ([][]string, error) {
	groups, err := runner.Map(cfg.ctx, cfg.par, jobs, fn)
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for _, g := range groups {
		rows = append(rows, g...)
	}
	return rows, nil
}

// Experiment is one registered figure/table reproduction.
type Experiment struct {
	// Name is the CLI selector (fig7, tab1, ...).
	Name string
	// Title is a one-line description.
	Title string
	// Run produces the experiment's table at the given scale.
	Run func(s Scale, opts ...ExpOption) (TableData, error)
}

// wrapStatic adapts the parameterless static tables to the registry
// signature.
func wrapStatic(fn func() TableData) func(Scale, ...ExpOption) (TableData, error) {
	return func(Scale, ...ExpOption) (TableData, error) { return fn(), nil }
}

// Experiments lists every figure/table reproduction in paper order —
// the registry behind RunAll and cmd/qeibench.
func Experiments() []Experiment {
	return []Experiment{
		{Name: "fig1", Title: "query share of CPU time", Run: Fig1QueryTimeShare},
		{Name: "tab1", Title: "integration scheme comparison", Run: wrapStatic(TabI)},
		{Name: "tab2", Title: "simulated CPU configuration", Run: wrapStatic(TabII)},
		{Name: "fig7", Title: "lookup speedup per scheme", Run: Fig7Speedup},
		{Name: "fig8", Title: "device-indirect latency sensitivity", Run: Fig8LatencySweep},
		{Name: "fig9", Title: "end-to-end throughput improvement", Run: Fig9EndToEnd},
		{Name: "fig10", Title: "tuple-space search with QUERY_NB", Run: Fig10TupleSpace},
		{Name: "fig11", Title: "dynamic instruction reduction", Run: Fig11InstrReduction},
		{Name: "tab3", Title: "area and static power", Run: wrapStatic(TabIII)},
		{Name: "fig12", Title: "dynamic energy per query", Run: Fig12DynamicPower},
		{Name: "tail", Title: "open-loop latency percentiles", Run: TailLatency},
		{Name: "scale", Title: "multi-core scalability", Run: Scalability},
		{Name: "noc", Title: "NoC bandwidth utilization", Run: NoCUtilization},
		{Name: "serving", Title: "multi-tenant serving percentiles per backend", Run: ServingPercentiles},
		{Name: "dse", Title: "design-space Pareto frontier", Run: DSEFrontier},
		{Name: "streaming", Title: "epoch-consistent read-write streams", Run: StreamingConsistency},
		{Name: "batch", Title: "level-wise vs windowed batch execution", Run: BatchSpeedup},
		// bench must stay last: earlier entries are indexed by position in
		// tests and scripts.
		{Name: "bench", Title: "machine-readable benchmark matrix", Run: BenchMatrix},
	}
}

// RunAll reproduces every registered experiment at the given scale,
// fanning each experiment's independent jobs across parallelism
// workers (<= 0 means GOMAXPROCS). Experiments run in paper order and
// tables are returned in that order; output is byte-identical to a
// serial run. On error the tables completed so far are returned with
// it.
func RunAll(ctx context.Context, s Scale, parallelism int) ([]TableData, error) {
	var out []TableData
	for _, e := range Experiments() {
		t, err := e.Run(s, WithContext(ctx), WithParallelism(parallelism))
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
