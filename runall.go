package qei

import (
	"context"

	"qei/internal/runner"
)

// ExpOption configures how an experiment executes (not what it
// measures): cancellation and worker-pool parallelism.
type ExpOption func(*expConfig)

type expConfig struct {
	ctx context.Context
	par int
}

func expConfigFor(opts []ExpOption) expConfig {
	cfg := expConfig{ctx: context.Background()}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithContext attaches a cancellation context to an experiment run;
// cancelling it stops the remaining jobs promptly.
func WithContext(ctx context.Context) ExpOption {
	return func(c *expConfig) { c.ctx = ctx }
}

// WithParallelism sets the experiment's worker count: each independent
// job (one workload × scheme × ablation point, owning its own simulated
// machine) runs on its own worker. n <= 0 means GOMAXPROCS; 1 forces
// the serial path. Results are collected in input order, so the
// rendered tables are byte-identical at any worker count.
func WithParallelism(n int) ExpOption {
	return func(c *expConfig) { c.par = n }
}

// expRows fans one job per item across the runner pool; each job
// returns its group of table rows, and the groups are concatenated in
// input order so the table matches the serial run byte for byte.
func expRows[J any](cfg expConfig, jobs []J, fn func(ctx context.Context, i int, job J) ([][]string, error)) ([][]string, error) {
	groups, err := runner.Map(cfg.ctx, cfg.par, jobs, fn)
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for _, g := range groups {
		rows = append(rows, g...)
	}
	return rows, nil
}

// Experiment is one registered figure/table reproduction.
type Experiment struct {
	// Name is the CLI selector (fig7, tab1, ...).
	Name string
	// Title is a one-line description.
	Title string
	// Run produces the experiment's table at the given scale.
	Run func(s Scale, opts ...ExpOption) (TableData, error)
}

// wrapStatic adapts the parameterless static tables to the registry
// signature.
func wrapStatic(fn func() TableData) func(Scale, ...ExpOption) (TableData, error) {
	return func(Scale, ...ExpOption) (TableData, error) { return fn(), nil }
}

// Experiments lists every figure/table reproduction in paper order —
// the registry behind RunAll and cmd/qeibench.
func Experiments() []Experiment {
	return []Experiment{
		{Name: "fig1", Title: "query share of CPU time", Run: Fig1QueryTimeShare},
		{Name: "tab1", Title: "integration scheme comparison", Run: wrapStatic(TabI)},
		{Name: "tab2", Title: "simulated CPU configuration", Run: wrapStatic(TabII)},
		{Name: "fig7", Title: "lookup speedup per scheme", Run: Fig7Speedup},
		{Name: "fig8", Title: "device-indirect latency sensitivity", Run: Fig8LatencySweep},
		{Name: "fig9", Title: "end-to-end throughput improvement", Run: Fig9EndToEnd},
		{Name: "fig10", Title: "tuple-space search with QUERY_NB", Run: Fig10TupleSpace},
		{Name: "fig11", Title: "dynamic instruction reduction", Run: Fig11InstrReduction},
		{Name: "tab3", Title: "area and static power", Run: wrapStatic(TabIII)},
		{Name: "fig12", Title: "dynamic energy per query", Run: Fig12DynamicPower},
		{Name: "tail", Title: "open-loop latency percentiles", Run: TailLatency},
		{Name: "scale", Title: "multi-core scalability", Run: Scalability},
		{Name: "noc", Title: "NoC bandwidth utilization", Run: NoCUtilization},
	}
}

// RunAll reproduces every registered experiment at the given scale,
// fanning each experiment's independent jobs across parallelism
// workers (<= 0 means GOMAXPROCS). Experiments run in paper order and
// tables are returned in that order; output is byte-identical to a
// serial run. On error the tables completed so far are returned with
// it.
func RunAll(ctx context.Context, s Scale, parallelism int) ([]TableData, error) {
	var out []TableData
	for _, e := range Experiments() {
		t, err := e.Run(s, WithContext(ctx), WithParallelism(parallelism))
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
