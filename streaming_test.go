package qei

import (
	"bytes"
	"testing"

	"qei/internal/stream"
)

func TestStreamingSerialParallelIdentical(t *testing.T) {
	serial, err := StreamingConsistency(Small, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := StreamingConsistency(Small, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != par.String() {
		t.Fatalf("parallel run diverged from serial:\n%s\nvs\n%s", serial, par)
	}
	if len(serial.Rows) != 4 {
		t.Fatalf("%d rows, want 4 structure kinds", len(serial.Rows))
	}
}

func TestStreamLiveReplayTraceIdentical(t *testing.T) {
	cfg := DefaultStreamConfig()
	live, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if live.Mismatches != 0 || live.Epoch.Violations != 0 {
		t.Fatalf("live run inconsistent: %+v", live.Report)
	}

	// Replaying the same generated workload reproduces the digest.
	wl, err := stream.Generate(cfg.streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	replay, err := ReplayStream(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Digest != live.Digest {
		t.Fatalf("replay digest %016x, live %016x", replay.Digest, live.Digest)
	}

	// And so does a trace round-tripped through the JSONL codec.
	var buf bytes.Buffer
	if err := stream.WriteTrace(&buf, wl); err != nil {
		t.Fatal(err)
	}
	loaded, err := stream.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromTrace, err := ReplayStream(cfg, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if fromTrace.Digest != live.Digest {
		t.Fatalf("trace replay digest %016x, live %016x", fromTrace.Digest, live.Digest)
	}
	if *fromTrace != *live {
		t.Fatalf("trace replay report diverged: %+v vs %+v", fromTrace, live)
	}
}

// Property: across seeds and structure kinds, no in-flight query ever
// dereferences a reclaimed address (the read watcher would count a
// violation), even under a write-heavy stream that reuses memory.
func TestStreamNoReadAfterRetireProperty(t *testing.T) {
	kinds := []StructKind{KindSkipList, KindBST, KindBTree}
	var reused uint64
	for _, kind := range kinds {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := DefaultStreamConfig()
			cfg.Kind = kind
			cfg.Seed = seed
			cfg.WriteFraction = 0.5
			cfg.DeleteFraction = 0.5
			rep, err := RunStream(cfg)
			if err != nil {
				t.Fatalf("%s seed %d: %v", kind, seed, err)
			}
			if rep.Epoch.Violations != 0 {
				t.Fatalf("%s seed %d: %d read-after-retire violations", kind, seed, rep.Epoch.Violations)
			}
			if rep.Mismatches != 0 {
				t.Fatalf("%s seed %d: %d model mismatches", kind, seed, rep.Mismatches)
			}
			if rep.Epoch.Retired == 0 {
				t.Fatalf("%s seed %d: write-heavy stream retired nothing", kind, seed)
			}
			if rep.MaxOutstanding < 2 {
				t.Fatalf("%s seed %d: no queries overlapped mutations", kind, seed)
			}
			reused += rep.Epoch.Reused
		}
	}
	if reused == 0 {
		t.Fatal("no run ever reused reclaimed memory; the property was vacuous")
	}
}

// Chaos soak: the deterministic fault injector fires while the stream
// mutates and queries concurrently. Architectural faults and corrupted
// lookups are tolerated (counted, not fatal); the run itself must stay
// deterministic and complete every operation.
func TestStreamChaosSoakWithFaults(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.Kind = KindSkipList
	cfg.WriteFraction = 0.4
	faults := MustParseFaultSpec("11:flip=0.002,spurious=0.02,nocdelay=0.01")
	cfg.Faults = &faults

	soak, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if soak.Ops != cfg.Ops {
		t.Fatalf("soak completed %d/%d ops", soak.Ops, cfg.Ops)
	}
	again, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != soak.Digest {
		t.Fatalf("chaos soak not deterministic: %016x vs %016x", again.Digest, soak.Digest)
	}

	// The same stream without faults must behave differently — proof
	// the injector actually engaged the overlapped read-write path.
	cfg.Faults = nil
	clean, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Digest == soak.Digest {
		t.Fatal("fault injection changed nothing; soak was vacuous")
	}
	if clean.Mismatches != 0 || clean.Epoch.Violations != 0 {
		t.Fatalf("clean run inconsistent: %+v", clean.Report)
	}
}
