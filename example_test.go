package qei_test

import (
	"fmt"

	"qei"
)

// Example demonstrates the library's core flow: build a structure in the
// simulated machine, query it through the accelerator, inspect stats.
func Example() {
	sys := qei.NewSystem(qei.CoreIntegrated)

	keys := [][]byte{
		[]byte("flow-0000-abcdef"),
		[]byte("flow-0001-abcdef"),
		[]byte("flow-0002-abcdef"),
	}
	values := []uint64{100, 200, 300}
	table := sys.MustBuildCuckoo(keys, values)

	res, err := sys.Query(table, keys[1])
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Found, res.Value)

	miss, _ := sys.Query(table, []byte("flow-9999-abcdef"))
	fmt.Println(miss.Found)

	// Output:
	// true 200
	// false
}

// Example_firmware shows the runtime firmware-extension path with a
// one-entry structure: the header's type code selects the custom CFA.
func Example_firmware() {
	sys := qei.NewSystem(qei.CoreIntegrated)
	if err := sys.RegisterFirmware(singleCell{}); err != nil {
		panic(err)
	}
	body := make([]byte, 8)
	body[0] = 42
	root := sys.Write(body)
	table, err := sys.WriteTableHeader("cell", 77, root, 1, 1, 0, 0)
	if err != nil {
		panic(err)
	}
	res, err := sys.Query(table, []byte{42})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Found, res.Value)
	// Output:
	// true 42
}

// singleCell is the smallest possible firmware: one stored byte, one
// comparison.
type singleCell struct{}

func (singleCell) TypeCode() uint8 { return 77 }
func (singleCell) Name() string    { return "cell" }
func (singleCell) NumStates() int  { return 2 }

func (singleCell) Step(q *qei.FirmwareQuery, state qei.FirmwareState) qei.FirmwareRequest {
	const check qei.FirmwareState = 1
	switch state {
	case qei.FirmwareStart:
		return qei.FirmwareContinue(check, true,
			qei.FirmwareMemRead(uint64(q.KeyAddr), 1),
			qei.FirmwareMemRead(uint64(q.Header.Root), 1))
	case check:
		stored := make([]byte, 1)
		if err := q.AS.Read(q.Header.Root, stored); err != nil {
			return qei.FirmwareFail(err)
		}
		cmp := qei.FirmwareCompare(uint64(q.Header.Root), 1)
		if stored[0] == q.Key[0] {
			return qei.FirmwareFinish(true, uint64(stored[0]), cmp)
		}
		return qei.FirmwareFinish(false, 0, cmp)
	default:
		return qei.FirmwareFail(fmt.Errorf("cell: bad state %d", state))
	}
}
