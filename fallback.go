package qei

import (
	"errors"
	"fmt"

	"qei/internal/baseline"
	"qei/internal/cpu"
	"qei/internal/isa"
	"qei/internal/mem"
	"qei/internal/trace"
)

// FallbackPolicy configures graceful degradation for blocking queries
// (WithFallback): after AfterFaults faulting accelerator executions of
// the same query, the System transparently re-executes it on the
// software baseline walker, timed on a simulated core — the Tailwind
// shape: the accelerator is an optimization, never a single point of
// failure. Fallback results carry FellBack=true and are counted in the
// qei/fallback_total metric.
type FallbackPolicy struct {
	// AfterFaults is the number of faulting accelerator executions
	// tolerated (each may already include the engine's internal
	// retry-from-root attempts) before the software path takes over.
	// Values below 1 are treated as 1: fall back on the first fault.
	AfterFaults int
}

func (p FallbackPolicy) afterFaults() int {
	if p.AfterFaults < 1 {
		return 1
	}
	return p.AfterFaults
}

// QuerySoftware executes one query on the software baseline walker,
// timed on a simulated core that shares the machine's memory system —
// the reference path the accelerator is compared against, and the
// "baseline" serving backend's execution engine. The issue clock
// advances by the software execution's cycle count. Walker errors
// (corrupt structure bytes) are returned as errors; tables of custom
// firmware kinds have no software walker and return ErrUnknownKind.
func (s *System) QuerySoftware(t Table, key []byte) (Result, error) {
	// The software walker reads the structure too: pin the epoch across
	// the walk so writers cannot reclaim nodes under it.
	if pinned, ok := s.pinQuery(); ok {
		defer s.gc.Unpin(pinned)
	}
	var res Result
	var tr isa.Trace
	switch t.Kind {
	case KindLinkedList, KindHashTable, KindCuckoo, KindSkipList, KindBST, KindBTree:
		var br baseline.Result
		var err error
		switch t.Kind {
		case KindLinkedList:
			br, err = baseline.QueryLinkedList(s.m.AS, t.header, key)
		case KindHashTable:
			br, err = baseline.QueryHashTable(s.m.AS, t.header, key)
		case KindCuckoo:
			br, err = baseline.QueryCuckoo(s.m.AS, t.header, key)
		case KindSkipList:
			br, err = baseline.QuerySkipList(s.m.AS, t.header, key)
		case KindBST:
			br, err = baseline.QueryBST(s.m.AS, t.header, key)
		case KindBTree:
			br, err = baseline.QueryBTree(s.m.AS, t.header, key)
		}
		if err != nil {
			return Result{}, err
		}
		res = Result{Found: br.Found, Value: br.Value}
		tr = br.Trace
	case KindTrie:
		sr, err := baseline.ScanTrie(s.m.AS, t.header, key)
		if err != nil {
			return Result{}, err
		}
		res = Result{Found: len(sr.Matches) > 0, Matches: sr.Matches}
		tr = sr.Trace
	default:
		return Result{}, fmt.Errorf("qei: %w: %s has no software walker", ErrUnknownKind, t.Name())
	}

	// Time the software path on a simulated core sharing the machine's
	// memory system — architecturally ordinary code.
	core := cpu.New(cpu.DefaultConfig(), s.m.CoreMemPort(0), nil)
	res.Latency = core.Run(tr)
	if err := core.Err(); err != nil {
		return Result{}, err
	}
	s.now += res.Latency
	return res, nil
}

// softwareFallback re-executes a faulted query on the software baseline
// walker, advancing the issue clock by the software execution's cycle
// count. accelRes is the accelerator's final faulting result; it is
// returned unchanged when the software path cannot serve the query
// (custom firmware has no baseline walker, or the key is unreadable).
func (s *System) softwareFallback(t Table, keyAddr uint64, keyLen int, accelRes Result) (Result, error) {
	key := make([]byte, keyLen)
	if err := s.m.AS.Read(mem.VAddr(keyAddr), key); err != nil {
		return accelRes, nil
	}

	start := s.now
	res, err := s.QuerySoftware(t, key)
	if errors.Is(err, ErrUnknownKind) {
		// Custom firmware has no software baseline walker; the
		// accelerator fault is the final architectural outcome.
		return accelRes, nil
	}
	s.fallbacks++
	if err != nil {
		// The software walker hit the same corruption: surface it as
		// the architectural outcome of the fallback.
		return Result{FellBack: true, Err: fmt.Errorf("qei: software fallback: %w", err)}, nil
	}
	res.FellBack = true
	s.tracer.Span("qei", "fallback", start, s.now, trace.PidQST(0), 0,
		map[string]string{"table": t.Name()})
	return res, nil
}
