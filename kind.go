package qei

import (
	"fmt"
	"strings"
)

// StructKind identifies the data-structure type of a Table. For the
// built-in structures the numeric value equals the Fig. 4 header type
// code, so a StructKind doubles as the firmware selector byte.
type StructKind uint8

// The built-in structure kinds (header type codes 1–7) plus KindCustom
// for application firmware registered through RegisterFirmware.
const (
	KindInvalid    StructKind = 0
	KindLinkedList StructKind = 1
	KindHashTable  StructKind = 2
	KindCuckoo     StructKind = 3
	KindSkipList   StructKind = 4
	KindBST        StructKind = 5
	KindTrie       StructKind = 6
	KindBTree      StructKind = 7
	KindCustom     StructKind = 255
)

var kindNames = map[StructKind]string{
	KindInvalid:    "invalid",
	KindLinkedList: "linkedlist",
	KindHashTable:  "hashtable",
	KindCuckoo:     "cuckoo",
	KindSkipList:   "skiplist",
	KindBST:        "bst",
	KindTrie:       "trie",
	KindBTree:      "btree",
	KindCustom:     "custom",
}

// StructKinds lists the built-in kinds in header-type-code order.
func StructKinds() []StructKind {
	return []StructKind{
		KindLinkedList, KindHashTable, KindCuckoo, KindSkipList,
		KindBST, KindTrie, KindBTree,
	}
}

func (k StructKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("structkind(%d)", uint8(k))
}

// TypeCode returns the header type byte the kind maps to, or 0 when the
// kind has no fixed code (custom firmware chooses its own).
func (k StructKind) TypeCode() uint8 {
	if k >= KindLinkedList && k <= KindBTree {
		return uint8(k)
	}
	return 0
}

var kindNormalizer = strings.NewReplacer(" ", "", "-", "", "_", "")

// ParseStructKind maps a structure name ("cuckoo", "skiplist", …) back
// to its StructKind; it accepts any case, ignores spaces, hyphens, and
// underscores ("skip list", "b-tree"), and takes the aliases "list"
// (linkedlist) and "hash" (hashtable).
func ParseStructKind(s string) (StructKind, error) {
	switch strings.ToLower(kindNormalizer.Replace(s)) {
	case "linkedlist", "list":
		return KindLinkedList, nil
	case "hashtable", "hash":
		return KindHashTable, nil
	case "cuckoo":
		return KindCuckoo, nil
	case "skiplist":
		return KindSkipList, nil
	case "bst":
		return KindBST, nil
	case "trie":
		return KindTrie, nil
	case "btree":
		return KindBTree, nil
	case "custom":
		return KindCustom, nil
	default:
		return KindInvalid, fmt.Errorf("qei: unknown structure kind %q", s)
	}
}
