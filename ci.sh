#!/bin/sh
# CI gate: formatting, vet, and the full test suite under the race
# detector (the parallel experiment runner must be race-clean).
set -eu

cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
# The root package's experiment-band tests run minutes of simulation;
# under the race detector on few cores they outlast go test's default
# 10m per-package budget, so give them room.
go test -race -timeout 90m ./...

# Bench smoke: one iteration of the Tab. I benchmark proves the bench
# harness still assembles and logs its table.
go test -run '^$' -bench BenchmarkTab1 -benchtime 1x -short .

# Zero-overhead guard: attaching metrics + tracing — and the disabled
# fault-injection/watchdog/fallback apparatus — must not move a single
# simulated cycle (deterministic cycle-count assertion — no flaky
# wall-clock thresholds).
go test -run '^(TestObservabilityZeroCycleImpact|TestFaultInjectionZeroCycleImpact)$' -count=1 .

# Bench guard: benchmark the end-to-end runners and compare against the
# committed BENCH_guard.json envelope. Allocations are the hard gate
# (>2x allocs/op fails — machine-independent, so any excursion is a real
# hot-path regression); wall time gets a generous 5x to absorb machine
# variation. See bench_guard_test.go for how to regenerate the envelope
# after an intentional performance change.
QEI_BENCH_GUARD=1 go test -run '^TestBenchGuard$' -count=1 -short .

# Fault-injection smoke: a replayable chaos schedule through every
# structure kind must resolve every query without panicking the
# process (qeisim exits non-zero otherwise).
go run ./cmd/qeisim -faults "7:flip=0.05,nocdelay=0.1,nocdrop=0.05,shootdown=0.1,spurious=0.05,evict=0.1"

# Serve smoke: a small multi-tenant run through BOTH serving backends
# must emit machine-readable per-tenant percentiles. Checks that the
# JSON carries p99 fields and one report per backend.
serve_json=$(go run ./cmd/qeiserve -backend both -tenants 2 -requests 60 -keys 32 -json)
for needle in '"p99"' '"backend": "qei"' '"backend": "baseline"' '"slo_violations"'; do
	case "$serve_json" in
	*"$needle"*) ;;
	*)
		echo "serve-smoke: missing $needle in qeiserve -json output" >&2
		exit 1
		;;
	esac
done

# Stream smoke: a short mixed read-write stream through the epoch-
# consistent mutation engine must retire every op with zero model
# mismatches and zero read-after-retire violations (qeiserve exits
# non-zero otherwise), report non-zero stream/ counters, and replay its
# recorded trace byte-identically.
stream_trace=$(mktemp)
stream_out=$(go run ./cmd/qeiserve -stream -kind btree -writes 0.3 -requests 200 -keys 64 -record "$stream_trace")
for counter in stream/ops_total stream/puts stream/dels stream/hits; do
	case "$stream_out" in
	*"$counter 0"*)
		echo "stream-smoke: $counter is zero" >&2
		rm -f "$stream_trace"
		exit 1
		;;
	*"$counter "*) ;;
	*)
		echo "stream-smoke: missing $counter in qeiserve -stream output" >&2
		rm -f "$stream_trace"
		exit 1
		;;
	esac
done
stream_replay=$(go run ./cmd/qeiserve -stream -kind btree -replay "$stream_trace")
rm -f "$stream_trace"
live_digest=$(echo "$stream_out" | grep '^digest')
replay_digest=$(echo "$stream_replay" | grep '^digest')
if [ -z "$live_digest" ] || [ "$live_digest" != "$replay_digest" ]; then
	echo "stream-smoke: trace replay diverged ($live_digest vs $replay_digest)" >&2
	exit 1
fi

# Resilience smoke: a chaos schedule plus a tight SLO through the
# resilient serving path must complete (exit 0 — qeiserve fails on any
# read-after-retire epoch violation), degrade at least one request to
# the software safety net, and replay its recorded trace byte-
# identically under the same fault schedule. "failed_over" is an
# omitempty field, so its mere presence in the JSON means >= 1.
res_trace=$(mktemp)
res_flags="-resilient -faults 9:spurious=0.3,flip=0.03,shootdown=0.05 -writes 0.1 -slo 4000 -tenants 3 -requests 300 -keys 64"
res_live=$(go run ./cmd/qeiserve $res_flags -record "$res_trace" -json)
res_replay=$(go run ./cmd/qeiserve $res_flags -replay "$res_trace" -json)
rm -f "$res_trace"
case "$res_live" in
*'"failed_over"'*) ;;
*)
	echo "resilience-smoke: no failover under chaos" >&2
	exit 1
	;;
esac
case "$res_live" in
*'"faults_injected"'*) ;;
*)
	echo "resilience-smoke: chaos schedule injected nothing" >&2
	exit 1
	;;
esac
if [ "$res_live" != "$res_replay" ]; then
	echo "resilience-smoke: chaos replay diverged from live run" >&2
	exit 1
fi

# Batch smoke: the level-wise batch demo parity-checks every kind
# against the per-query path (qeibench exits non-zero on any
# divergence) and must amortize real work — a zero translations-saved
# counter means the level-wise grouping did nothing. Then a batched-
# admission serving run must flush through the engine and retire every
# request (qeiserve exits non-zero on epoch violations).
batch_out=$(go run ./cmd/qeibench -batch 64 -scale small)
case "$batch_out" in
*'batch/translations_saved 0 '*)
	echo "batch-smoke: level-wise engine saved zero translations" >&2
	exit 1
	;;
*'batch/translations_saved '*) ;;
*)
	echo "batch-smoke: missing batch/translations_saved counter line" >&2
	exit 1
	;;
esac
bserve_out=$(go run ./cmd/qeiserve -batchmode -tenants 2 -requests 80 -keys 64)
case "$bserve_out" in
*'batch/batches 0 '*)
	echo "batch-smoke: batched admission flushed no batches" >&2
	exit 1
	;;
*'batch/batches '*) ;;
*)
	echo "batch-smoke: missing batch/batches counter line in qeiserve output" >&2
	exit 1
	;;
esac

# DSE smoke: a tiny 2x2 design-space sweep must produce a non-empty
# Pareto frontier, and the serial sweep must be byte-identical to the
# parallel one (the determinism contract of internal/dse).
dse_axes='qst=8,32;cores=16,24'
dse_serial=$(go run ./cmd/qeidse -axes "$dse_axes" -parallel 1 -json)
dse_par=$(go run ./cmd/qeidse -axes "$dse_axes" -parallel 8 -json)
if [ "$dse_serial" != "$dse_par" ]; then
	echo "dse-smoke: serial and parallel sweep output differ" >&2
	exit 1
fi
case "$dse_serial" in
*'"frontier": ['*) ;;
*)
	echo "dse-smoke: no frontier array in qeidse -json output" >&2
	exit 1
	;;
esac
case "$dse_serial" in
*'"frontier": []'*)
	echo "dse-smoke: empty Pareto frontier" >&2
	exit 1
	;;
esac

echo "ci: ok"
