#!/bin/sh
# CI gate: formatting, vet, and the full test suite under the race
# detector (the parallel experiment runner must be race-clean).
set -eu

cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
# The root package's experiment-band tests run minutes of simulation;
# under the race detector on few cores they outlast go test's default
# 10m per-package budget, so give them room.
go test -race -timeout 90m ./...

echo "ci: ok"
