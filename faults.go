package qei

import "qei/internal/faultinject"

// FaultSpec is a replayable fault-injection plan: a seed plus a firing
// rate per fault kind. Pass it to WithFaultInjection; the same spec
// replayed over the same workload reproduces the same fault sequence
// exactly, so any chaos-test failure is debuggable from its spec alone.
type FaultSpec struct {
	sched faultinject.Schedule
}

// ParseFaultSpec parses the textual "seed:kind=rate,kind=rate" form
// shared with the qeisim -faults flag, e.g. "7:flip=0.001,spurious=0.01".
// Kinds: flip (guest-memory bit-flips), nocdelay / nocdrop (mesh
// transfer delays and drops), shootdown (TLB invalidations), spurious
// (CFA exceptions), evict (LLC line evictions). Rates are probabilities
// per opportunity in [0,1]; omitted kinds stay at 0.
func ParseFaultSpec(spec string) (FaultSpec, error) {
	sched, err := faultinject.ParseSchedule(spec)
	if err != nil {
		return FaultSpec{}, err
	}
	return FaultSpec{sched: sched}, nil
}

// MustParseFaultSpec is ParseFaultSpec, panicking on a malformed spec.
func MustParseFaultSpec(spec string) FaultSpec {
	f, err := ParseFaultSpec(spec)
	if err != nil {
		panic(err)
	}
	return f
}

// String renders the spec back into ParseFaultSpec's form.
func (f FaultSpec) String() string { return f.sched.String() }

// Enabled reports whether any fault kind has a non-zero rate.
func (f FaultSpec) Enabled() bool { return f.sched.Enabled() }

// Seed returns the spec's replay seed.
func (f FaultSpec) Seed() uint64 { return f.sched.Seed }
