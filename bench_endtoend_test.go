package qei

// End-to-end wall-clock benchmarks for the simulator hot path. Unlike
// the figure benches (bench_test.go) these are sized for -benchmem
// iteration during performance work and back the ci.sh bench-guard
// stage: BENCH_guard.json pins their allocs/op envelope.

import (
	"testing"

	"qei/internal/scheme"
	"qei/internal/workload"
)

// BenchmarkEndToEndBaseline runs the software baseline end to end on
// the small DPDK workload: trace synthesis through the OoO core model,
// caches, TLBs, and mesh.
func BenchmarkEndToEndBaseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.RunBaseline(workload.SmallDPDK(), workload.Full,
			workload.WithWarmup()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndQEI runs the accelerated path (CHA-TLB scheme) end
// to end on the small DPDK workload: QST issue, CEE walks, comparator
// booking, NoC accounting.
func BenchmarkEndToEndQEI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		run, err := workload.RunQEI(workload.SmallDPDK(), scheme.CHATLB,
			workload.Full, workload.WithWarmup())
		if err != nil {
			b.Fatal(err)
		}
		if run.Mismatches != 0 {
			b.Fatalf("%d wrong results", run.Mismatches)
		}
	}
}

// BenchmarkEndToEndBench runs one full cell of the "bench" experiment
// matrix — baseline plus every integration scheme — exactly as
// qeibench -exp bench does, on one workload.
func BenchmarkEndToEndBench(b *testing.B) {
	b.ReportAllocs()
	benches := []workload.Benchmark{workload.SmallDPDK()}
	for i := 0; i < b.N; i++ {
		if _, err := runBenchOn(benches, nil); err != nil {
			b.Fatal(err)
		}
	}
}
