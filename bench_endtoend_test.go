package qei

// End-to-end wall-clock benchmarks for the simulator hot path. Unlike
// the figure benches (bench_test.go) these are sized for -benchmem
// iteration during performance work and back the ci.sh bench-guard
// stage: BENCH_guard.json pins their allocs/op envelope.

import (
	"testing"

	"qei/internal/scheme"
	"qei/internal/workload"
)

// BenchmarkEndToEndBaseline runs the software baseline end to end on
// the small DPDK workload: trace synthesis through the OoO core model,
// caches, TLBs, and mesh.
func BenchmarkEndToEndBaseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.RunBaseline(workload.SmallDPDK(), workload.Full,
			workload.WithWarmup()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndQEI runs the accelerated path (CHA-TLB scheme) end
// to end on the small DPDK workload: QST issue, CEE walks, comparator
// booking, NoC accounting.
func BenchmarkEndToEndQEI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		run, err := workload.RunQEI(workload.SmallDPDK(), scheme.CHATLB,
			workload.Full, workload.WithWarmup())
		if err != nil {
			b.Fatal(err)
		}
		if run.Mismatches != 0 {
			b.Fatalf("%d wrong results", run.Mismatches)
		}
	}
}

// benchBatchSetup builds the batch benchmarks' shared fixture: a
// 4096-key B+ tree and a shuffled 64-probe set with duplicates and
// misses (the level-wise engine's acceptance workload).
func benchBatchSetup(b *testing.B) (*System, Table, [][]byte) {
	b.Helper()
	keys, vals := batchGenKeys(4096, 16, 42)
	absent, _ := batchGenKeys(64, 16, 43)
	probes := batchProbeSet(keys, absent, 64, 44)
	s := NewSystem(CoreIntegrated)
	tb, err := s.Build(KindBTree, keys, vals)
	if err != nil {
		b.Fatal(err)
	}
	return s, tb, probes
}

// BenchmarkQueryBatch runs a 64-key batch through the level-wise
// engine — the batched hot path the BENCH_guard envelope pins.
func BenchmarkQueryBatch(b *testing.B) {
	b.ReportAllocs()
	s, tb, probes := benchBatchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.QueryBatch(tb, probes, WithBatchMode(BatchLevelWise)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryBatchWindowed runs the identical batch on the windowed
// non-blocking path, for side-by-side wall-clock comparison.
func BenchmarkQueryBatchWindowed(b *testing.B) {
	b.ReportAllocs()
	s, tb, probes := benchBatchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.QueryBatch(tb, probes, WithBatchMode(BatchWindowed)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryBatchPerQuery runs the identical probes as sequential
// blocking queries — the unbatched reference.
func BenchmarkQueryBatchPerQuery(b *testing.B) {
	b.ReportAllocs()
	s, tb, probes := benchBatchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range probes {
			if _, err := s.Query(tb, p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEndToEndBench runs one full cell of the "bench" experiment
// matrix — baseline plus every integration scheme — exactly as
// qeibench -exp bench does, on one workload.
func BenchmarkEndToEndBench(b *testing.B) {
	b.ReportAllocs()
	benches := []workload.Benchmark{workload.SmallDPDK()}
	for i := 0; i < b.N; i++ {
		if _, err := runBenchOn(benches, nil); err != nil {
			b.Fatal(err)
		}
	}
}
