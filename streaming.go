package qei

import (
	"context"
	"fmt"

	"qei/internal/epoch"
	"qei/internal/stream"
)

// This file wires the streaming mutation engine (internal/stream) to
// the simulated machine: a seeded read-write operation stream drives a
// MutableTable while accelerated lookups stay in flight across the
// mutations, exercising the epoch-based reclamation protocol end to
// end. Live runs and trace replays are byte-identical, as are serial
// and parallel experiment executions.

// StreamConfig describes one streaming run end to end: the operation
// mix, the structure under mutation, and the machine serving the
// lookups. The zero value is not runnable; DefaultStreamConfig gives a
// small, fast configuration.
type StreamConfig struct {
	// Scheme is the accelerator integration scheme of the simulated
	// machine.
	Scheme Scheme
	// Kind is the mutable structure the stream drives (one of the
	// BuildMutable kinds).
	Kind StructKind
	// InitialKeys, Ops, KeyLen, WriteFraction, DeleteFraction, KeySkew,
	// Window and Seed mirror stream.Config.
	InitialKeys    int
	Ops            int
	KeyLen         int
	WriteFraction  float64
	DeleteFraction float64
	KeySkew        float64
	Window         int
	Seed           int64
	// MaxLoadFactor overrides the cuckoo online-rehash ceiling (0 keeps
	// the default; see MutableTable.SetMaxLoadFactor).
	MaxLoadFactor float64
	// Faults arms the deterministic fault-injection harness for the
	// run (chaos soaks); nil keeps every hook a free no-op.
	Faults *FaultSpec
	// Machine runs on the given chip instead of the Tab. II default.
	Machine *MachineSpec
	// Metrics attaches the simulator metrics registry; the stream's
	// counters register under stream/ alongside it.
	Metrics bool
}

// DefaultStreamConfig returns a small, fast streaming configuration: a
// B+-tree under a 30%-write Zipf(0.99) stream with eight lookups in
// flight.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		Scheme:         CoreIntegrated,
		Kind:           KindBTree,
		InitialKeys:    96,
		Ops:            420,
		KeyLen:         16,
		WriteFraction:  0.3,
		DeleteFraction: 0.4,
		KeySkew:        0.99,
		Window:         8,
		Seed:           7,
	}
}

// streamConfig renders the workload-generation part of the config.
func (c StreamConfig) streamConfig() stream.Config {
	return stream.Config{
		InitialKeys:    c.InitialKeys,
		Ops:            c.Ops,
		KeyLen:         c.KeyLen,
		WriteFraction:  c.WriteFraction,
		DeleteFraction: c.DeleteFraction,
		KeySkew:        c.KeySkew,
		Window:         c.Window,
		Seed:           c.Seed,
	}
}

// StreamReport is one streaming run's outcome: the engine's
// verification report plus the table's mutation counters and the epoch
// GC's reclamation accounting.
type StreamReport struct {
	stream.Report
	Mut   MutStats
	Epoch epoch.Stats
}

// streamTarget adapts a System+MutableTable pair to the stream engine:
// mutations run in software immediately, lookups ride the accelerator's
// non-blocking path so the window stays in flight across writes.
type streamTarget struct {
	sys *System
	mt  *MutableTable
}

func (t *streamTarget) Insert(key []byte, value uint64) error { return t.mt.Insert(key, value) }
func (t *streamTarget) Delete(key []byte) (bool, error)       { return t.mt.Delete(key) }

func (t *streamTarget) QueryAsync(key []byte) (stream.Handle, error) {
	return t.sys.QueryAsync(t.mt.Table, key)
}

func (t *streamTarget) Wait(h stream.Handle) (stream.Outcome, error) {
	res, err := t.sys.Wait(h.(AsyncHandle))
	if err != nil {
		return stream.Outcome{}, err
	}
	return stream.Outcome{
		Found:   res.Found,
		Value:   res.Value,
		Latency: res.Latency,
		Faulted: res.Err != nil,
	}, nil
}

// RunStream generates the seeded operation stream and drives it on a
// fresh simulated machine. The run is deterministic: equal configs
// yield equal reports, digest included.
func RunStream(cfg StreamConfig) (*StreamReport, error) {
	wl, err := stream.Generate(cfg.streamConfig())
	if err != nil {
		return nil, err
	}
	return ReplayStream(cfg, wl)
}

// ReplayStream drives an explicit workload (a recorded trace, or a
// freshly generated one) on a fresh machine. Replaying a recorded
// trace is byte-identical to the live run that recorded it.
func ReplayStream(cfg StreamConfig, wl *stream.Workload) (*StreamReport, error) {
	opts := []Option{WithSeed(cfg.Seed)}
	if cfg.Machine != nil {
		opts = append(opts, WithMachineSpec(*cfg.Machine))
	}
	if cfg.Metrics {
		opts = append(opts, WithMetrics())
	}
	if cfg.Faults != nil {
		opts = append(opts, WithFaultInjection(*cfg.Faults))
	}
	sys := NewSystem(cfg.Scheme, opts...)
	if wl.Cfg.Window > sys.QSTCapacity() {
		return nil, fmt.Errorf("qei: stream window %d exceeds QST capacity %d",
			wl.Cfg.Window, sys.QSTCapacity())
	}
	keys, values := wl.InitialTable()
	mt, err := sys.BuildMutable(cfg.Kind, keys, values)
	if err != nil {
		return nil, err
	}
	if cfg.MaxLoadFactor > 0 {
		mt.SetMaxLoadFactor(cfg.MaxLoadFactor)
	}
	rep, err := stream.Run(wl, &streamTarget{sys: sys, mt: mt}, sys.mreg)
	if err != nil {
		return nil, err
	}
	return &StreamReport{Report: *rep, Mut: mt.MutStats(), Epoch: sys.EpochStats()}, nil
}

// streamingJob is one structure kind's slot in the streaming
// experiment, with the per-kind rehash ceiling that guarantees the
// cuckoo row exercises an online rehash at experiment scale.
type streamingJob struct {
	kind    StructKind
	maxLoad float64
}

// StreamingConsistency is the "streaming" experiment: the same seeded
// read-write stream driven against each mutable structure kind, with
// lookups pinned in flight across mutations. The row set proves the
// consistency story: zero model mismatches, zero read-after-retire
// violations, and the structural-maintenance paths (online rehash,
// B+-tree splits and merges) actually exercised.
func StreamingConsistency(s Scale, opts ...ExpOption) (TableData, error) {
	t := TableData{
		Title: "Streaming — epoch-consistent read-write streams (30% writes)",
		Headers: []string{"kind", "ops", "puts", "dels", "hits", "mismatch",
			"rehash", "split", "merge", "rebuild", "retired", "reclaimed",
			"reused", "viol", "p50", "p99", "digest"},
	}
	base := DefaultStreamConfig()
	cuckooLoad := 0.10
	if s == FullScale {
		base.InitialKeys = 512
		base.Ops = 4000
		cuckooLoad = 0.15
	}
	jobs := []streamingJob{
		{KindCuckoo, cuckooLoad},
		{KindSkipList, 0},
		{KindBST, 0},
		{KindBTree, 0},
	}
	rows, err := expRows(expConfigFor(opts), jobs,
		func(_ context.Context, _ int, j streamingJob) ([][]string, error) {
			cfg := base
			cfg.Kind = j.kind
			cfg.MaxLoadFactor = j.maxLoad
			rep, err := RunStream(cfg)
			if err != nil {
				return nil, err
			}
			if rep.Mismatches != 0 {
				return nil, fmt.Errorf("qei: streaming %s: %d lookups disagreed with the host model",
					j.kind, rep.Mismatches)
			}
			if rep.Epoch.Violations != 0 {
				return nil, fmt.Errorf("qei: streaming %s: %d read-after-retire violations",
					j.kind, rep.Epoch.Violations)
			}
			if j.kind == KindCuckoo && rep.Mut.Rehashes == 0 {
				return nil, fmt.Errorf("qei: streaming cuckoo run exercised no online rehash")
			}
			if j.kind == KindBTree && rep.Mut.Splits == 0 {
				return nil, fmt.Errorf("qei: streaming btree run exercised no node split")
			}
			return [][]string{{j.kind.String(), f("%d", rep.Ops), f("%d", rep.Puts),
				f("%d", rep.Dels), f("%d", rep.Hits), f("%d", rep.Mismatches),
				f("%d", rep.Mut.Rehashes), f("%d", rep.Mut.Splits), f("%d", rep.Mut.Merges),
				f("%d", rep.Mut.Rebuilds), f("%d", rep.Epoch.Retired), f("%d", rep.Epoch.Reclaimed),
				f("%d", rep.Epoch.Reused), f("%d", rep.Epoch.Violations),
				f("%d", rep.P50), f("%d", rep.P99), f("%016x", rep.Digest)}}, nil
		})
	t.Rows = rows
	return t, err
}
