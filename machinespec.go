package qei

import "qei/internal/hwdesc"

// MachineSpec is a validated, declarative machine + accelerator
// description: the chip the simulator builds (cores, mesh, memory
// controllers, cache/TLB hierarchy) and the accelerator sitting on it
// (QST capacity, comparators, integration scheme, technology node).
// Specs come from DefaultMachineSpec, a named preset, or a JSON file
// (LoadMachineSpec) — every constructor validates, so a MachineSpec in
// hand always materializes. The zero value acts like
// DefaultMachineSpec().
type MachineSpec struct {
	d hwdesc.Description
}

// DefaultMachineSpec returns the Tab. II machine — the same chip every
// experiment simulates by default.
func DefaultMachineSpec() MachineSpec {
	return MachineSpec{d: hwdesc.Default()}
}

// MachinePresets lists the named machine descriptions accepted by
// LoadMachineSpec (and the CLIs' -machine flag): "default" plus one per
// integration scheme.
func MachinePresets() []string { return hwdesc.Presets() }

// LoadMachineSpec resolves a preset name or a JSON file path into a
// validated spec. Unknown presets, unreadable files, unknown fields,
// and inconsistent geometry all fail with errors wrapping ErrBadConfig.
func LoadMachineSpec(presetOrPath string) (MachineSpec, error) {
	d, err := hwdesc.Load(presetOrPath)
	if err != nil {
		return MachineSpec{}, err
	}
	return MachineSpec{d: d}, nil
}

// Name returns the description's name ("tab2" for the default).
func (s MachineSpec) Name() string { return s.desc().Name }

// Cores returns the spec's core count.
func (s MachineSpec) Cores() int { return s.desc().Cores }

// JSON renders the spec in the hwdesc wire format — what LoadMachineSpec
// reads back, byte-identical round trip.
func (s MachineSpec) JSON() ([]byte, error) { return s.desc().Encode() }

// desc resolves the zero value to the default description.
func (s MachineSpec) desc() hwdesc.Description {
	if s.d.Cores == 0 {
		return hwdesc.Default()
	}
	return s.d
}

// WithMachineSpec builds the System on the spec's chip instead of the
// Tab. II default. The integration scheme remains NewSystem's argument;
// the spec contributes the topology, the QST sizing (unless WithQSTSize
// also given, which wins), and the accelerator-TLB/device-latency
// overrides.
func WithMachineSpec(spec MachineSpec) Option {
	return func(c *sysConfig) { c.spec = &spec }
}
