// Command qeifw inspects the CEE firmware: it explores every built-in
// CFA program's state graph by symbolic execution over a miniature data
// structure, validates the firmware invariants (state budget, no dead
// ends, DONE reachable), and optionally emits Graphviz DOT for Fig. 3
// style diagrams.
//
// Usage:
//
//	qeifw            # validate all built-in programs, print summaries
//	qeifw -dot trie  # emit the trie CFA's state graph as DOT
package main

import (
	"flag"
	"fmt"
	"os"

	"qei/internal/cfa"
)

func main() {
	dotFlag := flag.String("dot", "", "emit DOT for one program (linkedlist, hashtable, cuckoo, skiplist, bst, trie)")
	flag.Parse()

	programs := []cfa.Program{
		cfa.LinkedListProgram{}, cfa.HashTableProgram{}, cfa.CuckooProgram{},
		cfa.SkipListProgram{}, cfa.BSTProgram{}, cfa.TrieProgram{},
	}

	if *dotFlag != "" {
		for _, p := range programs {
			if p.Name() == *dotFlag {
				g, err := cfa.ExploreBuiltin(p)
				if err != nil {
					fmt.Fprintf(os.Stderr, "qeifw: %v\n", err)
					os.Exit(1)
				}
				fmt.Print(g.ToDOT())
				return
			}
		}
		fmt.Fprintf(os.Stderr, "qeifw: unknown program %q\n", *dotFlag)
		os.Exit(2)
	}

	fmt.Printf("%-12s %-8s %-8s %s\n", "program", "states", "edges", "status")
	failed := false
	for _, p := range programs {
		g, err := cfa.ExploreBuiltin(p)
		if err != nil {
			fmt.Printf("%-12s %-8s %-8s explore failed: %v\n", p.Name(), "-", "-", err)
			failed = true
			continue
		}
		status := "ok"
		if err := g.Validate(); err != nil {
			status = err.Error()
			failed = true
		}
		fmt.Printf("%-12s %-8d %-8d %s\n", p.Name(), len(g.States), len(g.Edges), status)
	}
	if failed {
		os.Exit(1)
	}
}
