// Command qeisim runs one workload under one configuration and prints a
// detailed report: cycles, instruction counts, cache/TLB behaviour,
// accelerator activity, and verification status.
//
// Usage:
//
//	qeisim -workload dpdk|jvm|rocksdb|snort|flann|tuple5|tuple10|tuple15 \
//	       -scheme software|core|cha-tlb|cha-notlb|device-direct|device-indirect|all \
//	       [-mode full|roi|nonroi] [-nb] [-scale small|full] [-warm] [-parallel N] \
//	       [-machine preset|file.json] [-metrics] [-trace out.json]
//	qeisim -faults "7:flip=0.05,spurious=0.1"
//	qeisim -stream [-scheme core] [-machine preset|file.json]
//
// -faults skips the workload entirely and runs the fault-injection
// chaos smoke: a replayable fault schedule driven through every
// built-in structure kind via the public API, asserting that every
// query resolves to a result, an architectural fault, or a software
// fallback. It exits non-zero if any query fails to resolve.
//
// -stream runs the streaming epoch-consistency smoke instead: the
// default mixed read-write stream against every mutable structure kind
// on the selected scheme and machine, verified op-for-op against a host
// model, with a replay proving determinism. It exits non-zero on any
// mismatch, read-after-retire violation, or replay divergence.
//
// -scheme all runs the software baseline plus every integration scheme
// and prints a side-by-side comparison, fanning the runs across
// -parallel workers.
//
// -metrics appends the run's full counter snapshot (component-path
// names, one per line); -trace writes the unified cycle-stamped event
// timeline as Chrome trace-event JSON (open in Perfetto or
// chrome://tracing). Both apply to single-scheme, single-core runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"qei/internal/hwdesc"
	"qei/internal/metrics"
	"qei/internal/runner"
	"qei/internal/scheme"
	"qei/internal/trace"
	"qei/internal/workload"
)

func main() {
	wlFlag := flag.String("workload", "dpdk", "workload: dpdk, jvm, rocksdb, snort, flann, tuple5, tuple10, tuple15")
	schemeFlag := flag.String("scheme", "core", "scheme: software, core, cha-tlb, cha-notlb, device-direct, device-indirect, all")
	modeFlag := flag.String("mode", "full", "mode: full, roi, nonroi")
	nbFlag := flag.Bool("nb", false, "use non-blocking QUERY_NB (batch 32)")
	scaleFlag := flag.String("scale", "small", "scale: small or full")
	warmFlag := flag.Bool("warm", true, "run a warmup pass before measuring")
	coresFlag := flag.Int("cores", 1, "issue the query stream from this many cores (scalability mode)")
	parFlag := flag.Int("parallel", 0, "workers for -scheme all; 0 = GOMAXPROCS")
	metricsFlag := flag.Bool("metrics", false, "print the full metric snapshot after the run")
	traceFlag := flag.String("trace", "", "write the unified event trace to this file (Chrome trace-event JSON)")
	machineFlag := flag.String("machine", "", "machine description: a preset name (default, core, cha-tlb, ...) or a JSON file; empty = the Tab. II default")
	faultsFlag := flag.String("faults", "", "run the fault-injection chaos smoke with this seed:kind=rate,... spec and exit")
	streamFlag := flag.Bool("stream", false, "run the streaming epoch-consistency smoke (honors -scheme and -machine) and exit")
	flag.Parse()

	if *faultsFlag != "" {
		runFaultSmoke(*faultsFlag)
		return
	}
	if *streamFlag {
		runStreamSmoke(*schemeFlag, *machineFlag)
		return
	}

	full := *scaleFlag == "full"
	var bench workload.Benchmark
	switch *wlFlag {
	case "dpdk":
		bench = pick(full, workload.DefaultDPDK(), workload.SmallDPDK())
	case "jvm":
		bench = pick(full, workload.DefaultJVM(), workload.SmallJVM())
	case "rocksdb":
		bench = pick(full, workload.DefaultRocksDB(), workload.SmallRocksDB())
	case "snort":
		bench = pick(full, workload.DefaultSnort(), workload.SmallSnort())
	case "flann":
		bench = pick(full, workload.DefaultFLANN(), workload.SmallFLANN())
	case "tuple5":
		bench = pick(full, workload.DefaultTupleSpace(5), workload.SmallTupleSpace(5))
	case "tuple10":
		bench = pick(full, workload.DefaultTupleSpace(10), workload.SmallTupleSpace(10))
	case "tuple15":
		bench = pick(full, workload.DefaultTupleSpace(15), workload.SmallTupleSpace(15))
	default:
		fail("unknown workload %q", *wlFlag)
	}

	mode := workload.Full
	switch *modeFlag {
	case "full":
	case "roi":
		mode = workload.ROIOnly
	case "nonroi":
		mode = workload.NonROIOnly
	default:
		fail("unknown mode %q", *modeFlag)
	}

	var opts []workload.RunOption
	if *warmFlag {
		opts = append(opts, workload.WithWarmup())
	}

	// -machine swaps the simulated chip; the accelerator's integration
	// scheme stays -scheme. Bad descriptions fail here with the offending
	// field spelled out (hwdesc.ErrBadConfig).
	var desc *hwdesc.Description
	if *machineFlag != "" {
		d, err := hwdesc.Load(*machineFlag)
		if err != nil {
			fail("-machine: %v", err)
		}
		desc = &d
		opts = append(opts, workload.WithMachine(d.MachineConfig()))
	}

	if *coresFlag > 1 {
		if desc != nil {
			fail("-machine is not supported with -cores > 1")
		}
		runMultiCore(bench, *schemeFlag, *coresFlag)
		return
	}
	if *schemeFlag == "all" {
		runAllSchemes(bench, mode, *nbFlag, *parFlag, opts)
		return
	}

	var reg *metrics.Registry
	if *metricsFlag {
		reg = metrics.NewRegistry()
		opts = append(opts, workload.WithMetrics(reg))
	}
	var tr *trace.Tracer
	if *traceFlag != "" {
		tr = trace.New(0)
		opts = append(opts, workload.WithTrace(tr))
	}

	var run workload.Run
	var err error
	switch *schemeFlag {
	case "software":
		run, err = workload.RunBaseline(bench, mode, opts...)
	default:
		k, ok := parseKind(*schemeFlag)
		if !ok {
			fail("unknown scheme %q", *schemeFlag)
		}
		if *nbFlag {
			run, err = workload.RunQEINonBlocking(bench, k, 32, opts...)
		} else if desc != nil {
			// The description also sizes the accelerator (QST entries,
			// comparators, TLB, device latency) under the chosen scheme.
			d := *desc
			d.Scheme = hwdesc.SchemeName(k)
			params, perr := d.SchemeParams()
			if perr != nil {
				fail("-machine: %v", perr)
			}
			run, err = workload.RunQEIWithParams(bench, params, mode, opts...)
		} else {
			run, err = workload.RunQEI(bench, k, mode, opts...)
		}
	}
	if err != nil {
		fail("run failed: %v", err)
	}

	fmt.Printf("workload   %s\n", run.Name)
	fmt.Printf("scheme     %s\n", run.Scheme)
	fmt.Printf("queries    %d (mismatches: %d)\n", run.Queries, run.Mismatches)
	fmt.Printf("cycles     %d\n", run.Cycles)
	if run.Queries > 0 {
		fmt.Printf("cyc/query  %.1f\n", float64(run.Cycles)/float64(run.Queries))
	}
	fmt.Printf("core       %d instrs, IPC %.2f, %d loads, %d mispredicts\n",
		run.Core.Instructions, run.Core.IPC(), run.Core.Loads, run.Core.Mispredicts)
	fmt.Printf("memory     L1 %d, L2 %d, LLC %d, DRAM %d accesses; %d NoC bytes\n",
		run.L1Accesses, run.L2Accesses, run.LLCAccesses, run.DRAMAccesses, run.NoCBytes)
	fmt.Printf("tlb        %d lookups, %d walks\n", run.TLBLookups, run.PageWalks)
	if run.Accel != nil {
		a := run.Accel
		fmt.Printf("qei        %d queries, %d transitions, %d lines, %d local / %d remote compares\n",
			a.Queries, a.Transitions, a.MemLines, a.LocalCompares, a.RemoteCompares)
		fmt.Printf("qei        occupancy %.2f, %d QST-stall cycles, %d exceptions\n",
			a.Occupancy(), a.QSTStallCycles, a.Exceptions)
	}
	if reg != nil {
		fmt.Printf("\nmetrics (%d non-zero counters)\n", len(run.Metrics.NonZero()))
		fmt.Print(run.Metrics.NonZero().String())
	}
	if tr != nil {
		doc := tr.Export()
		if err := os.WriteFile(*traceFlag, []byte(doc), 0o644); err != nil {
			fail("write trace: %v", err)
		}
		fmt.Printf("\nwrote %d trace events to %s (%d dropped)\n", tr.Len(), *traceFlag, tr.Dropped())
	}
	if run.Mismatches != 0 {
		os.Exit(1)
	}
}

func parseKind(name string) (scheme.Kind, bool) {
	switch name {
	case "core":
		return scheme.CoreIntegrated, true
	case "cha-tlb":
		return scheme.CHATLB, true
	case "cha-notlb":
		return scheme.CHANoTLB, true
	case "device-direct":
		return scheme.DeviceDirect, true
	case "device-indirect":
		return scheme.DeviceIndirect, true
	}
	return 0, false
}

// runAllSchemes fans the software baseline and every integration scheme
// across the worker pool and prints a side-by-side comparison; results
// are collected in a fixed order, so the table is deterministic.
func runAllSchemes(bench workload.Benchmark, mode workload.Mode, nb bool, par int, opts []workload.RunOption) {
	type job struct {
		name string
		kind scheme.Kind
		sw   bool
	}
	jobs := []job{{name: "software", sw: true}}
	for _, k := range scheme.Kinds() {
		jobs = append(jobs, job{name: k.String(), kind: k})
	}
	runs, err := runner.Map(context.Background(), par, jobs,
		func(_ context.Context, _ int, j job) (workload.Run, error) {
			if j.sw {
				return workload.RunBaseline(bench, mode, opts...)
			}
			if nb {
				return workload.RunQEINonBlocking(bench, j.kind, 32, opts...)
			}
			return workload.RunQEI(bench, j.kind, mode, opts...)
		})
	if err != nil {
		fail("run failed: %v", err)
	}
	base := runs[0]
	fmt.Printf("workload %s — %d queries\n", bench.Name(), base.Queries)
	fmt.Printf("%-16s %14s %10s %10s %12s\n", "scheme", "cycles", "cyc/query", "speedup_x", "mismatches")
	bad := false
	for i, r := range runs {
		sp := float64(base.Cycles) / float64(r.Cycles)
		q := r.Queries
		if q < 1 {
			q = 1
		}
		fmt.Printf("%-16s %14d %10.1f %10.2f %12d\n",
			jobs[i].name, r.Cycles, float64(r.Cycles)/float64(q), sp, r.Mismatches)
		if r.Mismatches != 0 {
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

func runMultiCore(bench workload.Benchmark, schemeName string, cores int) {
	k, ok := parseKind(schemeName)
	if !ok {
		fail("multi-core mode needs an accelerator scheme, got %q", schemeName)
	}
	r, err := workload.RunMultiCore(bench, k, cores)
	if err != nil {
		fail("multi-core run failed: %v", err)
	}
	fmt.Printf("workload    %s\n", bench.Name())
	fmt.Printf("scheme      %s x %d cores\n", r.Scheme, r.Cores)
	fmt.Printf("queries     %d (mismatches: %d)\n", r.Queries, r.Mismatches)
	fmt.Printf("makespan    %d cycles\n", r.Makespan)
	fmt.Printf("throughput  %.2f queries/kilocycle\n", r.Throughput)
	if r.Mismatches != 0 {
		os.Exit(1)
	}
}

func pick(full bool, f, s workload.Benchmark) workload.Benchmark {
	if full {
		return f
	}
	return s
}

func fail(format string, v ...any) {
	fmt.Fprintf(os.Stderr, "qeisim: "+format+"\n", v...)
	os.Exit(2)
}
