// Command qeisim runs one workload under one configuration and prints a
// detailed report: cycles, instruction counts, cache/TLB behaviour,
// accelerator activity, and verification status.
//
// Usage:
//
//	qeisim -workload dpdk|jvm|rocksdb|snort|flann|tuple5|tuple10|tuple15 \
//	       -scheme software|core|cha-tlb|cha-notlb|device-direct|device-indirect \
//	       [-mode full|roi|nonroi] [-nb] [-scale small|full] [-warm]
package main

import (
	"flag"
	"fmt"
	"os"

	"qei/internal/scheme"
	"qei/internal/workload"
)

func main() {
	wlFlag := flag.String("workload", "dpdk", "workload: dpdk, jvm, rocksdb, snort, flann, tuple5, tuple10, tuple15")
	schemeFlag := flag.String("scheme", "core", "scheme: software, core, cha-tlb, cha-notlb, device-direct, device-indirect")
	modeFlag := flag.String("mode", "full", "mode: full, roi, nonroi")
	nbFlag := flag.Bool("nb", false, "use non-blocking QUERY_NB (batch 32)")
	scaleFlag := flag.String("scale", "small", "scale: small or full")
	warmFlag := flag.Bool("warm", true, "run a warmup pass before measuring")
	coresFlag := flag.Int("cores", 1, "issue the query stream from this many cores (scalability mode)")
	flag.Parse()

	full := *scaleFlag == "full"
	var bench workload.Benchmark
	switch *wlFlag {
	case "dpdk":
		bench = pick(full, workload.DefaultDPDK(), workload.SmallDPDK())
	case "jvm":
		bench = pick(full, workload.DefaultJVM(), workload.SmallJVM())
	case "rocksdb":
		bench = pick(full, workload.DefaultRocksDB(), workload.SmallRocksDB())
	case "snort":
		bench = pick(full, workload.DefaultSnort(), workload.SmallSnort())
	case "flann":
		bench = pick(full, workload.DefaultFLANN(), workload.SmallFLANN())
	case "tuple5":
		bench = pick(full, workload.DefaultTupleSpace(5), workload.SmallTupleSpace(5))
	case "tuple10":
		bench = pick(full, workload.DefaultTupleSpace(10), workload.SmallTupleSpace(10))
	case "tuple15":
		bench = pick(full, workload.DefaultTupleSpace(15), workload.SmallTupleSpace(15))
	default:
		fail("unknown workload %q", *wlFlag)
	}

	mode := workload.Full
	switch *modeFlag {
	case "full":
	case "roi":
		mode = workload.ROIOnly
	case "nonroi":
		mode = workload.NonROIOnly
	default:
		fail("unknown mode %q", *modeFlag)
	}

	var opts []workload.RunOption
	if *warmFlag {
		opts = append(opts, workload.WithWarmup())
	}

	if *coresFlag > 1 {
		runMultiCore(bench, *schemeFlag, *coresFlag)
		return
	}

	var run workload.Run
	var err error
	switch *schemeFlag {
	case "software":
		run, err = workload.RunBaseline(bench, mode, opts...)
	default:
		var k scheme.Kind
		switch *schemeFlag {
		case "core":
			k = scheme.CoreIntegrated
		case "cha-tlb":
			k = scheme.CHATLB
		case "cha-notlb":
			k = scheme.CHANoTLB
		case "device-direct":
			k = scheme.DeviceDirect
		case "device-indirect":
			k = scheme.DeviceIndirect
		default:
			fail("unknown scheme %q", *schemeFlag)
		}
		if *nbFlag {
			run, err = workload.RunQEINonBlocking(bench, k, 32, opts...)
		} else {
			run, err = workload.RunQEI(bench, k, mode, opts...)
		}
	}
	if err != nil {
		fail("run failed: %v", err)
	}

	fmt.Printf("workload   %s\n", run.Name)
	fmt.Printf("scheme     %s\n", run.Scheme)
	fmt.Printf("queries    %d (mismatches: %d)\n", run.Queries, run.Mismatches)
	fmt.Printf("cycles     %d\n", run.Cycles)
	if run.Queries > 0 {
		fmt.Printf("cyc/query  %.1f\n", float64(run.Cycles)/float64(run.Queries))
	}
	fmt.Printf("core       %d instrs, IPC %.2f, %d loads, %d mispredicts\n",
		run.Core.Instructions, run.Core.IPC(), run.Core.Loads, run.Core.Mispredicts)
	fmt.Printf("memory     L1 %d, L2 %d, LLC %d, DRAM %d accesses; %d NoC bytes\n",
		run.L1Accesses, run.L2Accesses, run.LLCAccesses, run.DRAMAccesses, run.NoCBytes)
	fmt.Printf("tlb        %d lookups, %d walks\n", run.TLBLookups, run.PageWalks)
	if run.Accel != nil {
		a := run.Accel
		fmt.Printf("qei        %d queries, %d transitions, %d lines, %d local / %d remote compares\n",
			a.Queries, a.Transitions, a.MemLines, a.LocalCompares, a.RemoteCompares)
		fmt.Printf("qei        occupancy %.2f, %d QST-stall cycles, %d exceptions\n",
			a.Occupancy(), a.QSTStallCycles, a.Exceptions)
	}
	if run.Mismatches != 0 {
		os.Exit(1)
	}
}

func runMultiCore(bench workload.Benchmark, schemeName string, cores int) {
	var k scheme.Kind
	switch schemeName {
	case "core":
		k = scheme.CoreIntegrated
	case "cha-tlb":
		k = scheme.CHATLB
	case "cha-notlb":
		k = scheme.CHANoTLB
	case "device-direct":
		k = scheme.DeviceDirect
	case "device-indirect":
		k = scheme.DeviceIndirect
	default:
		fail("multi-core mode needs an accelerator scheme, got %q", schemeName)
	}
	r, err := workload.RunMultiCore(bench, k, cores)
	if err != nil {
		fail("multi-core run failed: %v", err)
	}
	fmt.Printf("workload    %s\n", bench.Name())
	fmt.Printf("scheme      %s x %d cores\n", r.Scheme, r.Cores)
	fmt.Printf("queries     %d (mismatches: %d)\n", r.Queries, r.Mismatches)
	fmt.Printf("makespan    %d cycles\n", r.Makespan)
	fmt.Printf("throughput  %.2f queries/kilocycle\n", r.Throughput)
	if r.Mismatches != 0 {
		os.Exit(1)
	}
}

func pick(full bool, f, s workload.Benchmark) workload.Benchmark {
	if full {
		return f
	}
	return s
}

func fail(format string, v ...any) {
	fmt.Fprintf(os.Stderr, "qeisim: "+format+"\n", v...)
	os.Exit(2)
}
