package main

import (
	"fmt"

	"qei"
)

// runFaultSmoke is the -faults mode: a standalone chaos smoke that
// drives a replayable fault schedule through every built-in structure
// kind via the public API and checks the architectural contract — no
// panic escapes the System and every blocking query resolves to exactly
// one of {accelerator result, architectural fault, fallback result}.
// It exits non-zero (via fail) on any unresolved query.
func runFaultSmoke(spec string) {
	fs, err := qei.ParseFaultSpec(spec)
	if err != nil {
		fail("bad -faults spec: %v", err)
	}
	sys := qei.NewSystem(qei.CoreIntegrated,
		qei.WithMetrics(),
		qei.WithFaultInjection(fs),
		qei.WithQueryCycleBudget(2_000_000),
		qei.WithFallback(qei.FallbackPolicy{AfterFaults: 2}))

	keys, vals := smokeKeys(48, 16)
	absent, _ := smokeKeys(8, 17) // distinct stream: misses by construction

	var ok, faulted, fellBack, queries int
	classify := func(label string, res qei.Result, err error) {
		queries++
		if err != nil {
			fail("%s query did not resolve: %v", label, err)
		}
		switch {
		case res.FellBack:
			fellBack++
		case res.Err != nil:
			faulted++
		default:
			ok++
		}
	}

	builders := []struct {
		label string
		build func() (qei.Table, error)
	}{
		{"linkedlist", func() (qei.Table, error) { return sys.BuildLinkedList(keys, vals) }},
		{"cuckoo", func() (qei.Table, error) { return sys.BuildCuckoo(keys, vals) }},
		{"skiplist", func() (qei.Table, error) { return sys.BuildSkipList(keys, vals) }},
		{"bst", func() (qei.Table, error) { return sys.BuildBST(keys, vals, 0) }},
	}
	for _, b := range builders {
		table, err := b.build()
		if err != nil {
			fail("build %s: %v", b.label, err)
		}
		for _, k := range keys {
			res, err := sys.Query(table, k)
			classify(b.label, res, err)
		}
		for _, k := range absent {
			res, err := sys.Query(table, k)
			classify(b.label, res, err)
		}
	}

	trie, err := sys.BuildTrie(
		[][]byte{[]byte("fault"), []byte("inject"), []byte("chaos")},
		[]uint64{1, 2, 3})
	if err != nil {
		fail("build trie: %v", err)
	}
	for _, in := range [][]byte{
		[]byte("chaos smoke injects faults into the walk"),
		[]byte("clean input"),
	} {
		res, err := sys.Scan(trie, in)
		classify("trie", res, err)
	}

	if ok+faulted+fellBack != queries {
		fail("outcome classes overlap: %d+%d+%d != %d", ok, faulted, fellBack, queries)
	}
	st := sys.Stats()
	fmt.Printf("fault smoke  %s\n", fs)
	fmt.Printf("queries      %d (%d ok, %d faulted, %d fell back)\n", queries, ok, faulted, fellBack)
	fmt.Printf("injection    %d faults injected, %d retries, %d timeouts, %d exceptions\n",
		sys.FaultsInjected(), st.Retries, st.Timeouts, st.Exceptions)
	fmt.Printf("fallback     %d software re-executions\n", sys.Fallbacks())
}

// smokeKeys generates n deterministic fixed-length keys with distinct
// values, seeded by stream.
func smokeKeys(n, stream int) ([][]byte, []uint64) {
	keys := make([][]byte, n)
	vals := make([]uint64, n)
	for i := range keys {
		k := make([]byte, 16)
		x := uint64(i+1) * 0x9E3779B97F4A7C15 >> 1
		x ^= uint64(stream) * 0xA24BAED4963EE407
		for j := range k {
			k[j] = byte(x >> (uint(j%8) * 8))
			if j == 7 {
				x *= 0xD6E8FEB86659FD93
			}
		}
		keys[i] = k
		vals[i] = uint64(i + 1)
	}
	return keys, vals
}
