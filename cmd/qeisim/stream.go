package main

import (
	"fmt"

	"qei"
)

// runStreamSmoke is the -stream mode: a short epoch-consistency smoke
// that drives the default mixed read-write stream through every mutable
// structure kind on the selected scheme and machine, then replays one
// configuration to prove determinism. It exits non-zero (via fail) on
// any model mismatch, read-after-retire violation, or replay
// divergence.
func runStreamSmoke(schemeName, machine string) {
	scheme, ok := parseRootScheme(schemeName)
	if !ok {
		fail("-stream needs an accelerator scheme, got %q", schemeName)
	}
	base := qei.DefaultStreamConfig()
	base.Scheme = scheme
	if machine != "" {
		spec, err := qei.LoadMachineSpec(machine)
		if err != nil {
			fail("-machine: %v", err)
		}
		base.Machine = &spec
	}

	kinds := []struct {
		kind    qei.StructKind
		maxLoad float64
	}{
		// The lowered cuckoo ceiling forces an online rehash at smoke
		// scale (the build leaves the table far under the default 0.85).
		{qei.KindCuckoo, 0.10},
		{qei.KindSkipList, 0},
		{qei.KindBST, 0},
		{qei.KindBTree, 0},
	}
	fmt.Printf("stream smoke  scheme=%s ops=%d writes=%.0f%% window=%d\n",
		scheme, base.Ops, base.WriteFraction*100, base.Window)
	var last *qei.StreamReport
	var lastCfg qei.StreamConfig
	for _, k := range kinds {
		cfg := base
		cfg.Kind = k.kind
		cfg.MaxLoadFactor = k.maxLoad
		rep, err := qei.RunStream(cfg)
		if err != nil {
			fail("stream %s: %v", k.kind, err)
		}
		if rep.Mismatches != 0 || rep.Epoch.Violations != 0 {
			fail("stream %s inconsistent: %d mismatches, %d violations",
				k.kind, rep.Mismatches, rep.Epoch.Violations)
		}
		fmt.Printf("%-10s hits=%-4d misses=%-4d retired=%-4d reclaimed=%-4d p99=%-6d digest=%016x\n",
			k.kind, rep.Hits, rep.Misses, rep.Epoch.Retired, rep.Epoch.Reclaimed,
			rep.P99, rep.Digest)
		last, lastCfg = rep, cfg
	}

	again, err := qei.RunStream(lastCfg)
	if err != nil {
		fail("stream replay: %v", err)
	}
	if again.Digest != last.Digest {
		fail("stream not deterministic: %016x vs %016x", again.Digest, last.Digest)
	}
	fmt.Printf("replay        digest identical (%016x)\n", again.Digest)
}

// parseRootScheme maps a scheme name to the public API's Scheme (the
// rest of qeisim uses the internal scheme.Kind).
func parseRootScheme(name string) (qei.Scheme, bool) {
	switch name {
	case "core":
		return qei.CoreIntegrated, true
	case "cha-tlb":
		return qei.CHATLB, true
	case "cha-notlb":
		return qei.CHANoTLB, true
	case "device-direct":
		return qei.DeviceDirect, true
	case "device-indirect":
		return qei.DeviceIndirect, true
	}
	return 0, false
}
