// Command qeidse runs a design-space-exploration sweep: it expands an
// axis grid over the machine description (QST capacity, core count,
// mesh geometry, integration scheme, technology node), simulates every
// valid design point — software baseline vs QEI on the same chip — and
// reports the Pareto frontier over (lookup speedup, accelerator silicon
// mm², dynamic energy nJ/query).
//
// Usage:
//
//	qeidse [-axes "qst=8,16,32,64;cores=8,16,24,32;mesh=6x4,4x4;scheme=core,cha-tlb;node=22,14,7"] \
//	       [-workload dpdk|jvm|rocksdb|snort|flann] [-scale small|full] \
//	       [-preset NAME|file.json] [-parallel N] [-json [-out FILE]] [-frontier]
//
// The default grid is the standard 120-point provisioning sweep. Output
// is byte-identical at any -parallel value: the sweep fans design
// points across the deterministic worker pool and collects results in
// grid order. -json emits the full machine-readable result (every
// point, the frontier indices, dominated and skipped counts); -frontier
// restricts the human-readable table to Pareto-optimal points.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"qei"
)

func fail(format string, v ...any) {
	fmt.Fprintf(os.Stderr, "qeidse: "+format+"\n", v...)
	os.Exit(1)
}

func main() {
	axesFlag := flag.String("axes", "", `sweep grid, e.g. "qst=8,32;cores=16,24;scheme=core,cha-tlb"; empty = the standard 120-point grid`)
	wlFlag := flag.String("workload", "dpdk", "workload scoring each point: dpdk, jvm, rocksdb, snort, flann")
	scaleFlag := flag.String("scale", "small", "benchmark population: small or full")
	presetFlag := flag.String("preset", "", "base machine description the axes mutate: a preset name or JSON file; empty = the Tab. II default")
	parFlag := flag.Int("parallel", 0, "sweep workers; 0 = GOMAXPROCS (output identical at any value)")
	jsonFlag := flag.Bool("json", false, "emit the full machine-readable result as JSON")
	outFlag := flag.String("out", "", "write the JSON result to this file instead of stdout (implies -json)")
	frontierFlag := flag.Bool("frontier", false, "print only Pareto-optimal points in the table")
	flag.Parse()

	if *scaleFlag != "small" && *scaleFlag != "full" {
		fail("unknown scale %q (want small or full)", *scaleFlag)
	}
	res, err := qei.RunDSE(context.Background(), qei.DSEConfig{
		Workload:    *wlFlag,
		FullScale:   *scaleFlag == "full",
		Axes:        *axesFlag,
		Base:        *presetFlag,
		Parallelism: *parFlag,
	})
	if err != nil {
		fail("%v", err)
	}

	if *jsonFlag || *outFlag != "" {
		data, err := res.JSON()
		if err != nil {
			fail("%v", err)
		}
		if *outFlag != "" {
			if err := os.WriteFile(*outFlag, data, 0o644); err != nil {
				fail("%v", err)
			}
			fmt.Fprintf(os.Stderr, "qeidse: wrote %d points (%d on the frontier) to %s\n",
				len(res.Points), len(res.Frontier), *outFlag)
		} else {
			os.Stdout.Write(data)
		}
		return
	}

	fmt.Printf("workload %s — %d design points evaluated, %d dominated, %d invalid grid cells skipped\n",
		res.Workload, len(res.Points), res.DominatedCount, res.SkippedInvalid)
	fmt.Printf("%-28s %10s %10s %10s %12s  %s\n",
		"design", "speedup_x", "area_mm2", "static_mw", "nj/query", "pareto")
	for _, p := range res.Points {
		verdict := "frontier"
		if p.Dominated {
			if *frontierFlag {
				continue
			}
			verdict = "-"
		}
		fmt.Printf("%-28s %10.2f %10.4f %10.4f %12.2f  %s\n",
			p.Desc.Name, p.SpeedupX, p.AreaMM2, p.StaticMW, p.EnergyNJPerQuery, verdict)
	}
	fmt.Printf("frontier: %d of %d points\n", len(res.Frontier), len(res.Points))
}
