// Command qeitrace records the accelerator's query timeline for a short
// run and writes it as Chrome tracing JSON (load in chrome://tracing or
// Perfetto). Each row is one QST slot; the staggered spans show the
// out-of-order, pipelined CFA execution of Sec. IV-B.
//
// Usage:
//
//	qeitrace [-queries 64] [-scheme core|cha-tlb|...] [-o trace.json]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"qei"
)

func main() {
	nFlag := flag.Int("queries", 64, "queries to trace")
	schemeFlag := flag.String("scheme", "core", "integration scheme")
	outFlag := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var sch qei.Scheme
	switch *schemeFlag {
	case "core":
		sch = qei.CoreIntegrated
	case "cha-tlb":
		sch = qei.CHATLB
	case "cha-notlb":
		sch = qei.CHANoTLB
	case "device-direct":
		sch = qei.DeviceDirect
	case "device-indirect":
		sch = qei.DeviceIndirect
	default:
		fmt.Fprintf(os.Stderr, "qeitrace: unknown scheme %q\n", *schemeFlag)
		os.Exit(2)
	}

	sys := qei.NewSystem(sch)
	rng := rand.New(rand.NewSource(1))
	keys := make([][]byte, 2048)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = make([]byte, 32)
		rng.Read(keys[i])
		vals[i] = uint64(i) + 1
	}
	table, err := sys.BuildSkipList(keys, vals)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qeitrace: %v\n", err)
		os.Exit(1)
	}

	sys.EnableTracing()
	// Issue everything at the same cycle so the QST fills and the viewer
	// shows the ten-deep overlap.
	handles := make([]qei.AsyncHandle, 0, *nFlag)
	for i := 0; i < *nFlag; i++ {
		h, err := sys.QueryAsync(table, keys[rng.Intn(len(keys))])
		if err != nil {
			fmt.Fprintf(os.Stderr, "qeitrace: %v\n", err)
			os.Exit(1)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		if _, err := sys.Wait(h); err != nil {
			fmt.Fprintf(os.Stderr, "qeitrace: %v\n", err)
			os.Exit(1)
		}
	}

	doc := sys.ExportTrace()
	if *outFlag == "" {
		fmt.Print(doc)
		return
	}
	if err := os.WriteFile(*outFlag, []byte(doc), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "qeitrace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d query spans to %s\n", *nFlag, *outFlag)
}
